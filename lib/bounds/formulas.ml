(* The closed forms of Figure 1, the paper's results table, plus the
   corollaries discussed in Sections 1 and 7.  The bench harness prints
   these next to the measured register counts. *)

type cell = {
  label : string;
  lower : Agreement.Params.t -> float;  (* registers, as a real (√ bounds) *)
  upper : Agreement.Params.t -> float;
}

let fi = float_of_int

(* Row 1: non-anonymous, repeated.  Lower: Theorem 2.  Upper: Thm 8. *)
let repeated_non_anonymous =
  {
    label = "non-anonymous repeated";
    lower = (fun p -> fi (Agreement.Params.registers_lower p));
    upper = (fun p -> fi (Agreement.Params.registers_upper p));
  }

(* Row 1': non-anonymous one-shot.  Lower: 2 (from [4]).  Upper: Thm 7. *)
let oneshot_non_anonymous =
  {
    label = "non-anonymous one-shot";
    lower = (fun _ -> 2.);
    upper = (fun p -> fi (Agreement.Params.registers_upper p));
  }

(* Row 2: anonymous repeated.  Lower: Theorem 2 applies verbatim (the
   table lists n+m−k for anonymous repeated too).  Upper: Theorem 11. *)
let repeated_anonymous =
  {
    label = "anonymous repeated";
    lower = (fun p -> fi (Agreement.Params.registers_lower p));
    upper = (fun p -> fi (Agreement.Params.r_anonymous p + 1));
  }

(* Row 2': anonymous one-shot.  Lower: Theorem 10 (strictly more than
   √(m(n/k − 2)), for D = IN).  Upper: Theorem 11 without H. *)
let oneshot_anonymous =
  {
    label = "anonymous one-shot";
    lower = (fun p -> Agreement.Params.anon_lower_bound p);
    upper = (fun p -> fi (Agreement.Params.r_anonymous p));
  }

(* §4.1 baseline row: the DFGR'13 algorithm itself (m = 1 only) — the
   register count the paper improves on.  Lower = upper = 2(n−k): the
   cell records the baseline's own cost, not a bound of this paper. *)
let dfgr13_baseline =
  {
    label = "DFGR'13 baseline (m = 1)";
    lower = (fun p -> fi (Agreement.Params.r_dfgr13 p));
    upper = (fun p -> fi (Agreement.Params.r_dfgr13 p));
  }

let all = [ repeated_non_anonymous; oneshot_non_anonymous; repeated_anonymous; oneshot_anonymous ]

(* Lookup by registry algorithm name (see Analyze.Registry). *)
let for_algorithm = function
  | "oneshot" -> Some oneshot_non_anonymous
  | "repeated" -> Some repeated_non_anonymous
  | "anonymous" | "anonymous-repeated" -> Some repeated_anonymous
  | "anonymous-oneshot" -> Some oneshot_anonymous
  | "baseline" | "dfgr13" -> Some dfgr13_baseline
  | _ -> None

(* Headline corollaries. *)

(* §1: "obstruction-free repeated consensus requires exactly n
   registers" (m = k = 1): both bounds below collapse to n. *)
let repeated_consensus_exact ~n =
  let p = Agreement.Params.make ~n ~m:1 ~k:1 in
  (Agreement.Params.registers_lower p, Agreement.Params.registers_upper p)

(* §4.1: improvement over DFGR'13 at m = 1: 2(n−k) vs n−k+2. *)
let dfgr13_comparison ~n ~k =
  let p = Agreement.Params.make ~n ~m:1 ~k in
  (Agreement.Params.r_dfgr13 p, Agreement.Params.registers_upper p)
