(** The closed forms of Figure 1, the paper's results table, plus the
    corollaries of Sections 1 and 4.1.  The bench harness prints these
    next to measured register counts. *)

type cell = {
  label : string;
  lower : Agreement.Params.t -> float;  (** registers (real-valued: √ bounds) *)
  upper : Agreement.Params.t -> float;
}

(** Row 1: Theorem 2 lower, Theorem 8 upper. *)
val repeated_non_anonymous : cell

(** Row 1': lower 2 (from DFGR'13), upper Theorem 7. *)
val oneshot_non_anonymous : cell

(** Row 2: Theorem 2 lower, Theorem 11 upper. *)
val repeated_anonymous : cell

(** Row 2': Theorem 10 lower, Theorem 11 (minus H) upper. *)
val oneshot_anonymous : cell

(** Section 4.1's comparison row: the DFGR'13 algorithm's own cost,
    2(n−k) registers, m = 1 only (lower = upper — a baseline, not a
    bound of this paper). *)
val dfgr13_baseline : cell

val all : cell list

(** The cell a registry algorithm ({!Analyze.Registry}) is measured
    against: ["oneshot"], ["repeated"], ["anonymous"] (alias
    ["anonymous-repeated"]), ["anonymous-oneshot"], ["baseline"] (alias
    ["dfgr13"]).  [None] on unknown names. *)
val for_algorithm : string -> cell option

(** m = k = 1: both bounds collapse to n ("repeated consensus requires
    exactly n registers"). *)
val repeated_consensus_exact : n:int -> int * int

(** Section 4.1: (2(n−k), n−k+2) at m = 1. *)
val dfgr13_comparison : n:int -> k:int -> int * int
