(* Non-blocking multi-writer snapshot by double collect.

   Each component register holds [Pair (tag, v)] where [tag] is unique
   per write.  A scan repeatedly collects all components one register
   read at a time until two consecutive collects are identical
   (including tags); the scan then linearizes between those collects:
   identical unique tags imply no write touched any component in the
   window.  Updates are single writes and linearize there.

   Scans are only non-blocking: a concurrent writer can starve a
   scanner.  This is the behaviour the paper designs around in Figure 5
   (the extra register H rescues starving processes), and our tests
   exercise exactly that.

   Tag uniqueness comes either from the writer's process id plus a local
   sequence number ([make]) or — for anonymous systems, where programs
   may not mention ids — from a per-process deterministic PRNG nonce
   plus a local sequence number ([make_anonymous]).  The latter is the
   standard practical realization of Guerraoui–Ruppert [7]-style
   anonymous snapshots: identical program text, uniqueness with
   overwhelming probability.  See DESIGN.md, substitution 5. *)

let same_view a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Shm.Value.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let encode ~tag v = Shm.Value.pair tag v

let decode v =
  match Shm.Value.view v with
  | Shm.Value.Bot -> Shm.Value.bot
  | Shm.Value.Pair (_, v) -> v
  | _ -> invalid_arg (Fmt.str "Double_collect.decode: %a" Shm.Value.pp v)

(* One collect: read the [len] component registers one at a time (each
   read is a separate simulator step, so writers can interleave). *)
let collect ~off ~len k =
  let rec go i acc =
    if i >= len then k (Array.of_list (List.rev acc))
    else Shm.Program.read (off + i) (fun v -> go (i + 1) (v :: acc))
  in
  go 0 []

(* [max_retries]: a scan fails loudly after this many unequal double
   collects, surfacing livelock in tests rather than spinning the
   simulator forever.  [None] retries forever (honest non-blocking). *)
let make_with_tag ~off ~len ?max_retries fresh_tag seed0 : Snap_api.t =
  let rec api state : Snap_api.t =
    let update i v k =
      if i < 0 || i >= len then invalid_arg "Double_collect.update: component out of range";
      let tag, state' = fresh_tag state in
      Shm.Program.write (off + i) (encode ~tag v) (fun () -> k (api state'))
    in
    let scan k =
      let rec attempt tries prev =
        (match max_retries with
        | Some b when tries > b ->
          failwith
            (Fmt.str "Double_collect.scan: no clean double collect after %d attempts" b)
        | Some _ | None -> ());
        collect ~off ~len (fun cur ->
            match prev with
            | Some p when same_view p cur -> k (api state) (Array.map decode cur)
            | Some _ | None -> attempt (tries + 1) (Some cur))
      in
      attempt 0 None
    in
    { Snap_api.components = len; update; scan }
  in
  api seed0

let make ~off ~len ~pid ?max_retries () =
  let fresh_tag seq = (Shm.Value.pair (Shm.Value.int pid) (Shm.Value.int seq), seq + 1) in
  make_with_tag ~off ~len ?max_retries fresh_tag 0

let make_anonymous ~off ~len ~seed ?max_retries () =
  let fresh_tag (state, seq) =
    let nonce, state' = Shm.Rng.pure_step state in
    (Shm.Value.pair (Shm.Value.int (Int64.to_int nonce)) (Shm.Value.int seq), (state', seq + 1))
  in
  make_with_tag ~off ~len ?max_retries fresh_tag (Int64.of_int seed, 0)

let footprint ~len =
  {
    Snap_api.registers = len;
    wait_free = false;
    description = "double-collect snapshot (non-blocking, r registers)";
  }
