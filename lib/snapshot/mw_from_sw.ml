(* Wait-free r-component multi-writer snapshot from n single-writer
   registers — the [min(n+2m−k, n)] branch of Theorems 7 and 8: when
   n < n+2m−k, "the snapshot can be implemented from n single-writer
   registers [1, 13]".

   Construction (standard, cf. Vitányi–Awerbuch timestamps layered under
   an Afek et al. single-writer snapshot):

   - process p's SW segment holds p's *row*: for every component j, the
     timestamped value (ts, p, v) of p's last update to j;
   - update(j, v): take an SW scan, compute ts = 1 + max timestamp seen
     for j, install the new row with an SW update (which itself embeds a
     scan for helping — we reuse one scan for both purposes is unsound,
     Afek's update performs its own embedded scan);
   - scan(): one SW scan; component j's value is the maximum-(ts, pid)
     entry among all rows.

   Writes are totally ordered by (ts, pid); a write beginning after
   another's end sees its timestamp in the SW scan and exceeds it, and
   scans are atomic SW scans, so the simulated object is linearizable
   and wait-free.  Register footprint: exactly n. *)

type slot = { ts : int; owner : int; v : Shm.Value.t }

let encode_slot { ts; owner; v } =
  Shm.Value.pair (Shm.Value.pair (Shm.Value.int ts) (Shm.Value.int owner)) v

let decode_slot s =
  match Shm.Value.view s with
  | Shm.Value.Pair (stamp, v) -> (
    match Shm.Value.view stamp with
    | Shm.Value.Pair (ts, owner) ->
      { ts = Shm.Value.to_int ts; owner = Shm.Value.to_int owner; v }
    | _ -> invalid_arg (Fmt.str "Mw_from_sw.decode_slot: %a" Shm.Value.pp s))
  | _ -> invalid_arg (Fmt.str "Mw_from_sw.decode_slot: %a" Shm.Value.pp s)

let empty_slot = { ts = 0; owner = -1; v = Shm.Value.bot }

let encode_row row = Shm.Value.list (Array.to_list (Array.map encode_slot row))

let decode_row ~components v =
  match Shm.Value.view v with
  | Shm.Value.Bot -> Array.make components empty_slot
  | Shm.Value.List slots -> Array.of_list (List.map decode_slot slots)
  | _ -> invalid_arg (Fmt.str "Mw_from_sw.decode_row: %a" Shm.Value.pp v)

let slot_newer a b = a.ts > b.ts || (a.ts = b.ts && a.owner > b.owner)

(* The freshest entry for component [j] across all rows. *)
let freshest rows j =
  Array.fold_left
    (fun best row -> if slot_newer row.(j) best then row.(j) else best)
    empty_slot rows

let make ~off ~n ~components ~pid : Snap_api.t =
  let decode_all segments = Array.map (decode_row ~components) segments in
  let rec api (seq, row) : Snap_api.t =
    let update j v k =
      if j < 0 || j >= components then invalid_arg "Mw_from_sw.update: component out of range";
      Afek.scan ~off ~n (fun segments ->
          let rows = decode_all segments in
          let ts = 1 + (freshest rows j).ts in
          let row' = Array.copy row in
          row'.(j) <- { ts; owner = pid; v };
          Afek.update ~off ~n ~pid ~seq (encode_row row') (fun seq' ->
              k (api (seq', row'))))
    in
    let scan k =
      Afek.scan ~off ~n (fun segments ->
          let rows = decode_all segments in
          let view = Array.init components (fun j -> (freshest rows j).v) in
          k (api (seq, row)) view)
    in
    { Snap_api.components; update; scan }
  in
  api (0, Array.make components empty_slot)

let footprint ~n =
  {
    Snap_api.registers = n;
    wait_free = true;
    description = "wait-free MW snapshot from n single-writer registers";
  }
