(* Single-writer atomic snapshot of Afek, Attiya, Dolev, Gafni, Merritt
   and Shavit [1], unbounded-sequence-number version, over n single-
   writer registers.

   Register [off+p] is written only by process p and holds
   [List [Int seq; data; List view]]: p's sequence number, p's current
   segment, and the data view p embedded at its last update (the
   "helping" view).

   scan: collect repeatedly.  Two identical consecutive collects (same
   sequence numbers everywhere) form a direct scan.  Otherwise, a
   register observed with three distinct sequence numbers belongs to a
   process whose entire update — including its embedded scan — ran
   within our scan interval, so we may borrow (and linearize at) its
   embedded view.  At most 2n+1 collects are needed: wait-free.

   update(p, d): scan, then write (seq+1, d, view). *)

type cell = { seq : int; data : Shm.Value.t; view : Shm.Value.t array }

let decode ~n v =
  match Shm.Value.view v with
  | Shm.Value.Bot ->
    { seq = 0; data = Shm.Value.bot; view = Array.make n Shm.Value.bot }
  | Shm.Value.List [ seq; data; view ]
    when (match Shm.Value.view seq with Shm.Value.Int _ -> true | _ -> false)
         && (match Shm.Value.view view with Shm.Value.List _ -> true | _ -> false) ->
    {
      seq = Shm.Value.to_int seq;
      data;
      view = Array.of_list (Shm.Value.to_list view);
    }
  | _ -> invalid_arg (Fmt.str "Afek.decode: %a" Shm.Value.pp v)

let encode { seq; data; view } =
  Shm.Value.list
    [ Shm.Value.int seq; data; Shm.Value.list (Array.to_list view) ]

let collect ~off ~n k =
  let rec go p acc =
    if p >= n then k (Array.of_list (List.rev acc))
    else Shm.Program.read (off + p) (fun v -> go (p + 1) (decode ~n v :: acc))
  in
  go 0 []

(* [scan ~off ~n k]: pass the atomic data view (n segments) to [k]. *)
let scan ~off ~n k =
  (* [seen.(q)] is the list of distinct seqs observed for register q. *)
  let rec attempt prev seen =
    collect ~off ~n (fun cur ->
        let direct =
          match prev with
          | None -> false
          | Some p ->
            Array.for_all2 (fun (a : cell) (b : cell) -> a.seq = b.seq) p cur
        in
        if direct then k (Array.map (fun c -> c.data) cur)
        else begin
          let seen =
            Array.mapi
              (fun q seqs ->
                if List.mem cur.(q).seq seqs then seqs else cur.(q).seq :: seqs)
              seen
          in
          (* A register with >= 3 distinct observed seqs: its latest
             writer's update ran entirely inside our interval. *)
          match
            Array.to_list seen
            |> List.mapi (fun q seqs -> (q, List.length seqs))
            |> List.find_opt (fun (_, c) -> c >= 3)
          with
          | Some (q, _) -> k cur.(q).view
          | None -> attempt (Some cur) seen
        end)
  in
  attempt None (Array.make n [])

(* [update ~off ~n ~pid ~seq data k]: install [data] as process [pid]'s
   segment; passes the new sequence number to [k]. *)
let update ~off ~n ~pid ~seq data k =
  scan ~off ~n (fun view ->
      let cell = { seq = seq + 1; data; view } in
      Shm.Program.write (off + pid) (encode cell) (fun () -> k (seq + 1)))

let footprint ~n =
  {
    Snap_api.registers = n;
    wait_free = true;
    description = "Afek et al. single-writer snapshot (n registers)";
  }
