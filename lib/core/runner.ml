(* High-level run helpers: one call from parameters to a finished
   execution, for tests, examples and the bench harness. *)

open Shm

(* Default inputs: process pid proposes the integer pid+1 in instance 1,
   and 100·instance + pid in later instances, so that instances have
   disjoint input domains (handy when eyeballing traces). *)
let default_input ~pid ~instance =
  if instance = 1 then Value.int (pid + 1) else Value.int ((100 * instance) + pid)

let run_oneshot ?record ?impl ?r ?sched ?sink ?(max_steps = 200_000) ?inputs (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let inputs =
    Option.value inputs ~default:(Array.init n (fun pid -> Value.int (pid + 1)))
  in
  let config = Instances.oneshot ?impl ?r p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.oneshot_inputs inputs) ~max_steps config

let run_repeated ?record ?impl ?r ?sched ?sink ?(max_steps = 500_000) ?(rounds = 3) ?input_fn
    (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let input_fn =
    Option.value input_fn ~default:(fun pid instance -> default_input ~pid ~instance)
  in
  let config = Instances.repeated ?impl ?r p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.repeated_inputs ~rounds input_fn) ~max_steps config

let run_baseline ?record ?impl ?sched ?sink ?(max_steps = 200_000) ?inputs (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let inputs =
    Option.value inputs ~default:(Array.init n (fun pid -> Value.int (pid + 1)))
  in
  let config = Instances.baseline ?impl p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.oneshot_inputs inputs) ~max_steps config

let run_anonymous ?record ?r ?anonymous_collect ?seed ?sched ?sink ?(max_steps = 500_000)
    ?(rounds = 1) ?input_fn (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let input_fn =
    Option.value input_fn ~default:(fun pid instance -> default_input ~pid ~instance)
  in
  let config = Instances.anonymous ?r ?anonymous_collect ?seed p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.repeated_inputs ~rounds input_fn) ~max_steps config

(* Outputs of instance [i], with multiplicity, in completion order. *)
let outputs_of_instance result ~instance =
  Config.outputs result.Exec.config
  |> List.filter_map (fun (_, inst, v) -> if inst = instance then Some v else None)

(* Registers actually written during the run — the space measure. *)
let registers_used result = Memory.num_written (Config.mem result.Exec.config)
