(* High-level run helpers: one call from parameters to a finished
   execution, for tests, examples and the bench harness. *)

open Shm

(* Default inputs: process pid proposes the integer pid+1 in instance 1,
   and 100·instance + pid in later instances, so that instances have
   disjoint input domains (handy when eyeballing traces). *)
let default_input ~pid ~instance =
  if instance = 1 then Value.int (pid + 1) else Value.int ((100 * instance) + pid)

let run_oneshot ?record ?impl ?r ?sched ?sink ?(max_steps = 200_000) ?inputs (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let inputs =
    Option.value inputs ~default:(Array.init n (fun pid -> Value.int (pid + 1)))
  in
  let config = Instances.oneshot ?impl ?r p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.oneshot_inputs inputs) ~max_steps config

let run_repeated ?record ?impl ?r ?sched ?sink ?(max_steps = 500_000) ?(rounds = 3) ?input_fn
    (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let input_fn =
    Option.value input_fn ~default:(fun pid instance -> default_input ~pid ~instance)
  in
  let config = Instances.repeated ?impl ?r p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.repeated_inputs ~rounds input_fn) ~max_steps config

let run_baseline ?record ?impl ?sched ?sink ?(max_steps = 200_000) ?inputs (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let inputs =
    Option.value inputs ~default:(Array.init n (fun pid -> Value.int (pid + 1)))
  in
  let config = Instances.baseline ?impl p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.oneshot_inputs inputs) ~max_steps config

let run_anonymous ?record ?r ?anonymous_collect ?seed ?sched ?sink ?(max_steps = 500_000)
    ?(rounds = 1) ?input_fn (p : Params.t) =
  let n = p.Params.n in
  let sched = Option.value sched ~default:(Schedule.round_robin n) in
  let input_fn =
    Option.value input_fn ~default:(fun pid instance -> default_input ~pid ~instance)
  in
  let config = Instances.anonymous ?r ?anonymous_collect ?seed p in
  Exec.run ?record ?sink ~sched ~inputs:(Exec.repeated_inputs ~rounds input_fn) ~max_steps config

(* ------------------------------------------------------------------ *)
(* First-order protocols run under either engine: the free-monad
   interpreter (the reference) or the bytecode vm.  Both see the same
   schedule and inputs; the result is the engine-neutral summary. *)

type engine = Interp | Vm

let engine_name = function Interp -> "interp" | Vm -> "vm"

let engine_of_string s =
  match String.lowercase_ascii s with
  | "interp" | "interpreter" -> Some Interp
  | "vm" | "bytecode" -> Some Vm
  | _ -> None

type proto_result = {
  steps : int;
  stopped : Exec.stop_reason;
  trace : Event.t list;
  memory : Value.t array;
  written : int list;
  io_inputs : (int * int * Value.t) list;
  io_outputs : (int * int * Value.t) list;
}

(* One invocation per process, [default_input] — the fuzzer's input
   space, so [analyze --protocol] and the oracles judge the same runs. *)
let proto_inputs ~pid ~instance =
  if instance = 1 then Some (default_input ~pid ~instance) else None

let run_proto ?(engine = Interp) ?backend ?record ?sched ?sink
    ?(max_steps = 200_000) ?(inputs = proto_inputs) (p : Vm.proto) =
  let sched = Option.value sched ~default:(Schedule.round_robin p.Vm.n) in
  match engine with
  | Interp ->
    let res =
      Exec.run ?record ?sink ~sched ~inputs ~max_steps (Vm.config ?backend p)
    in
    let mem = Config.mem res.Exec.config in
    {
      steps = res.Exec.steps;
      stopped = res.Exec.stopped;
      trace = res.Exec.trace;
      memory = Memory.scan mem ~off:0 ~len:(Memory.size mem);
      written =
        (let module S = Set.Make (Int) in
         S.elements (Memory.written_set mem));
      io_inputs = Config.inputs res.Exec.config;
      io_outputs = Config.outputs res.Exec.config;
    }
  | Vm ->
    let e = Vm.env (Vm.compile p) ~inputs in
    let r = Vm.run ?record ?sink ~max_steps ~sched e in
    {
      steps = r.Vm.steps;
      stopped = r.Vm.stopped;
      trace = r.Vm.trace;
      memory = r.Vm.final.Vm.memory;
      written = r.Vm.final.Vm.written;
      io_inputs = r.Vm.final.Vm.inputs;
      io_outputs = r.Vm.final.Vm.outputs;
    }

(* Outputs of instance [i], with multiplicity, in completion order. *)
let outputs_of_instance result ~instance =
  Config.outputs result.Exec.config
  |> List.filter_map (fun (_, inst, v) -> if inst = instance then Some v else None)

(* Registers actually written during the run — the space measure. *)
let registers_used result = Memory.num_written (Config.mem result.Exec.config)
