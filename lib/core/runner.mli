(** High-level run helpers: one call from parameters to a finished
    execution, for tests, examples and the bench harness. *)

(** Default inputs: pid+1 in instance 1, 100·instance + pid later, so
    instances have disjoint input domains. *)
val default_input : pid:int -> instance:int -> Shm.Value.t

(** Run the one-shot algorithm (Figure 3).  Defaults: atomic snapshot,
    round-robin schedule, inputs pid+1, 200k step budget.  [sink]
    observes every event as it happens (see [Obs.Sink]); [record] keeps
    the in-memory trace, as in {!Shm.Exec.run}. *)
val run_oneshot :
  ?record:bool ->
  ?impl:Instances.impl ->
  ?r:int ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?inputs:Shm.Value.t array ->
  Params.t ->
  Shm.Exec.result

(** Run the repeated algorithm (Figure 4) for [rounds] instances. *)
val run_repeated :
  ?record:bool ->
  ?impl:Instances.impl ->
  ?r:int ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?rounds:int ->
  ?input_fn:(int -> int -> Shm.Value.t) ->
  Params.t ->
  Shm.Exec.result

(** Run the DFGR'13 baseline. *)
val run_baseline :
  ?record:bool ->
  ?impl:Instances.impl ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?inputs:Shm.Value.t array ->
  Params.t ->
  Shm.Exec.result

(** Run the anonymous repeated algorithm (Figure 5). *)
val run_anonymous :
  ?record:bool ->
  ?r:int ->
  ?anonymous_collect:bool ->
  ?seed:int ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?rounds:int ->
  ?input_fn:(int -> int -> Shm.Value.t) ->
  Params.t ->
  Shm.Exec.result

(** {1 First-order protocols, either engine}

    A first-order protocol ({!Shm.Vm.proto} — the language shared by
    the fuzzer and the analyzer) runs under two engines: the
    free-monad interpreter (the reference) and the bytecode vm
    ({!Shm.Vm}).  {!run_proto} drives either under the same schedule
    and inputs and returns the engine-neutral summary, so callers —
    the bench harness, [sa_run --engine] — switch engines without
    changing anything else. *)

type engine = Interp | Vm

val engine_name : engine -> string

(** ["interp"]/["interpreter"] or ["vm"]/["bytecode"]. *)
val engine_of_string : string -> engine option

type proto_result = {
  steps : int;
  stopped : Shm.Exec.stop_reason;
  trace : Shm.Event.t list;  (** chronological; empty unless [record] *)
  memory : Shm.Value.t array;  (** final register contents *)
  written : int list;  (** registers ever written, ascending *)
  io_inputs : (int * int * Shm.Value.t) list;
      (** [(pid, instance, v)]; chronological from the interpreter,
          (instance, pid)-ordered from the vm — compare as multisets *)
  io_outputs : (int * int * Shm.Value.t) list;
}

(** [run_proto p] runs [p] to quiescence (or [max_steps], default
    200k) under [engine] (default [Interp]).  Defaults: round-robin
    schedule, one invocation per process with {!default_input} —
    the fuzzer's input space.  [backend] selects the interpreter's
    memory representation (the vm's state is always flat). *)
val run_proto :
  ?engine:engine ->
  ?backend:Shm.Memory.backend ->
  ?record:bool ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  Shm.Vm.proto ->
  proto_result

(** Outputs of one instance, with multiplicity, in completion order. *)
val outputs_of_instance : Shm.Exec.result -> instance:int -> Shm.Value.t list

(** Registers actually written during the run — the space measure. *)
val registers_used : Shm.Exec.result -> int
