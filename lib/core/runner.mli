(** High-level run helpers: one call from parameters to a finished
    execution, for tests, examples and the bench harness. *)

(** Default inputs: pid+1 in instance 1, 100·instance + pid later, so
    instances have disjoint input domains. *)
val default_input : pid:int -> instance:int -> Shm.Value.t

(** Run the one-shot algorithm (Figure 3).  Defaults: atomic snapshot,
    round-robin schedule, inputs pid+1, 200k step budget.  [sink]
    observes every event as it happens (see [Obs.Sink]); [record] keeps
    the in-memory trace, as in {!Shm.Exec.run}. *)
val run_oneshot :
  ?record:bool ->
  ?impl:Instances.impl ->
  ?r:int ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?inputs:Shm.Value.t array ->
  Params.t ->
  Shm.Exec.result

(** Run the repeated algorithm (Figure 4) for [rounds] instances. *)
val run_repeated :
  ?record:bool ->
  ?impl:Instances.impl ->
  ?r:int ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?rounds:int ->
  ?input_fn:(int -> int -> Shm.Value.t) ->
  Params.t ->
  Shm.Exec.result

(** Run the DFGR'13 baseline. *)
val run_baseline :
  ?record:bool ->
  ?impl:Instances.impl ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?inputs:Shm.Value.t array ->
  Params.t ->
  Shm.Exec.result

(** Run the anonymous repeated algorithm (Figure 5). *)
val run_anonymous :
  ?record:bool ->
  ?r:int ->
  ?anonymous_collect:bool ->
  ?seed:int ->
  ?sched:Shm.Schedule.t ->
  ?sink:(Shm.Event.t -> unit) ->
  ?max_steps:int ->
  ?rounds:int ->
  ?input_fn:(int -> int -> Shm.Value.t) ->
  Params.t ->
  Shm.Exec.result

(** Outputs of one instance, with multiplicity, in completion order. *)
val outputs_of_instance : Shm.Exec.result -> instance:int -> Shm.Value.t list

(** Registers actually written during the run — the space measure. *)
val registers_used : Shm.Exec.result -> int
