(* Figure 4: repeated m-obstruction-free k-set agreement, same snapshot
   object (r = n + 2m − k components) as the one-shot algorithm.

   Stored entries are tuples (pref, id, t, history) where t is the
   instance the writer is working on and history its sequence of outputs
   for instances 1..t−1.  Persistent locals i, t, history survive across
   Propose invocations ("the first location of a Propose is the last
   location of the previous Propose").

   Shortcuts relative to Figure 3:
   - line 15: a tuple with t' > t in the scan lets the process adopt
     that writer's history and output its t-th entry immediately;
   - line 17: deciding requires every entry to be a tuple of instance
     exactly t (lower-instance tuples are treated like ⊥ and block the
     decision; higher ones were caught by line 15);
   - line 22: adoption compares raw register contents against ⊥ and the
     process's own tuple, and requires two *identical t-tuples*. *)

open Shm

type tuple = { pref : Value.t; id : int; t : int; history : Value.t list }

let encode { pref; id; t; history } =
  Value.list [ pref; Value.int id; Value.int t; Value.list history ]

let decode v =
  match Value.view v with
  | Value.List [ pref; id; t; history ]
    when (match Value.view id with Value.Int _ -> true | _ -> false)
         && (match Value.view t with Value.Int _ -> true | _ -> false)
         && (match Value.view history with Value.List _ -> true | _ -> false) ->
    Some
      {
        pref;
        id = Value.to_int id;
        t = Value.to_int t;
        history = Value.to_list history;
      }
  | Value.Bot -> None
  | _ -> invalid_arg (Fmt.str "Repeated.decode: %a" Value.pp v)

let is_instance t v =
  match decode v with Some tu -> tu.t = t | None -> false

(* Line 15: an entry by a process already past instance t, with maximal
   t' for determinism (any such entry would do; t' > t guarantees its
   history has at least t outputs). *)
let find_higher ~t view =
  Array.fold_left
    (fun best v ->
      match decode v with
      | Some tu when tu.t > t -> (
        match best with
        | Some b when b.t >= tu.t -> best
        | Some _ | None -> Some tu)
      | Some _ | None -> best)
    None view

(* Line 17: every entry is a tuple of instance exactly t (neither ⊥ nor
   a lower instance; higher instances are handled by line 15 first) and
   at most m distinct entries. *)
let decide_check ~m ~t view =
  let all_current =
    Array.for_all (fun v -> match decode v with Some tu -> tu.t >= t | None -> false) view
  in
  if all_current && View.distinct_count view <= m then
    let j =
      match View.min_duplicate_index view with Some j -> j | None -> 0
    in
    match decode view.(j) with Some tu -> Some tu.pref | None -> None
  else None

(* Line 22: no component other than i holds ⊥ or the process's own
   tuple, and two components hold identical t-tuples (j1 is the minimum
   duplicated index among t-tuples, line 23).  As in Figure 3 (see
   Oneshot.adopt_check, "pseudocode errata") an adoption whose value
   already equals pref falls through to the i increment, the reading
   that makes the Lemma 5 argument reused in Appendix A sound. *)
let adopt_check ~own ~i ~t view =
  let ok = ref true in
  Array.iteri
    (fun j v ->
      if j <> i && (Value.is_bot v || Value.equal v (encode own)) then ok := false)
    view;
  if !ok then
    match View.min_duplicate_index ~eligible:(is_instance t) view with
    | Some j -> (
      match decode view.(j) with
      | Some tu when not (Value.equal tu.pref own.pref) -> Some tu.pref
      | Some _ | None -> None)
    | None -> None
  else None

let nth_output history t =
  match List.nth_opt history (t - 1) with
  | Some w -> w
  | None -> invalid_arg "Repeated: adopted history shorter than instance"

(* The process program.  Persistent locals (api, i, t, history) are
   threaded through the recursion; each [Await] is the next Propose. *)
let program ~m ~pid ~api =
  let r = api.Snapshot.Snap_api.components in
  let rec next_propose (api : Snapshot.Snap_api.t) i t history =
    Program.await @@ fun v ->
    let t = t + 1 in
    if List.length history >= t then
      Program.yield (nth_output history t) (next_propose api i t history)
    else loop api v i t history
  and loop (api : Snapshot.Snap_api.t) pref i t history =
    let own = { pref; id = pid; t; history } in
    api.update i (encode own) @@ fun api ->
    api.scan @@ fun api view ->
    match find_higher ~t view with
    | Some tu ->
      Program.yield (nth_output tu.history t) (next_propose api i t tu.history)
    | None -> (
      match decide_check ~m ~t view with
      | Some w -> Program.yield w (next_propose api i t (history @ [ w ]))
      | None -> (
        match adopt_check ~own ~i ~t view with
        | Some w -> loop api w i t history
        | None -> loop api pref ((i + 1) mod r) t history))
  in
  next_propose api 0 0 []
