(* Figure 3: one-shot m-obstruction-free k-set agreement over a
   snapshot object with r = n + 2m − k components.

   Each process keeps a preferred value [pref] (initially its input) and
   a location [i].  It repeatedly stores (pref, id) in component i and
   scans:

   - decide (lines 9–10) when the scan holds at most m distinct pairs
     and no ⊥: output the value of the smallest-index duplicated pair;
   - adopt (lines 11–13) when no copy of its own pair is visible
     anywhere except the component it just wrote, and some other pair
     appears twice: adopt that pair's value, keep i;
   - otherwise advance i to (i+1) mod r.

   [m] and the component count r come from the supplied snapshot API, so
   the same code runs correct instances (r = n+2m−k) and deliberately
   register-starved ones (the lower-bound experiments). *)

open Shm

let pair ~pref ~pid = Value.pair pref (Value.int pid)

let value_of_pair = Value.fst

(* Lines 9–10.  In a correct instance r > m forces a duplicate whenever
   the scan has ≤ m distinct non-⊥ entries; starved instances (r ≤ m)
   may have none, in which case entry 0 is output — still one of the
   scanned values, so Validity is unaffected. *)
let decide_check ~m view =
  if View.distinct_count view <= m && not (View.contains_bot view) then
    match View.min_duplicate_index view with
    | Some j -> Some (value_of_pair view.(j))
    | None -> Some (value_of_pair view.(0))
  else None

(* Lines 11–13: adoption — with one erratum fix found by running the
   pseudocode.  Read literally, line 13 assigns pref ← value(s[j1]) even
   when that value already equals pref (two stale copies of a halted
   process's pair suffice), so a solo process can take the adopt branch
   forever without advancing i and never terminate — our simulator
   exhibits this under m-bounded schedules.  The proof of Lemma 5
   (Case 2) silently assumes every execution of line 13 *changes* the
   preferred value; the reading that makes the proof sound is: compute
   the paper's j1 (minimum duplicated index, over all duplicates); if
   value(s[j1]) = pref, fall through to the i increment.  Safety is
   unaffected: pref still only ever becomes the value of a duplicated
   pair, and the new increment path spreads a pref that equals a
   duplicated pair's value, which after C0 lies in V by Lemma 4's
   induction.  See EXPERIMENTS.md, "pseudocode errata". *)
let adopt_check ~pid ~pref ~i view =
  let own = pair ~pref ~pid in
  let foreign j v = j = i || ((not (Value.is_bot v)) && not (Value.equal v own)) in
  let all_foreign =
    let ok = ref true in
    Array.iteri (fun j v -> if not (foreign j v) then ok := false) view;
    !ok
  in
  if all_foreign then
    match View.min_duplicate_index view with
    | Some j ->
      let w = value_of_pair view.(j) in
      if Value.equal w pref then None else Some w
    | None -> None
  else None

(* Lines 11–13 exactly as printed in the paper — pref ← value(s[j1])
   even when that value equals pref.  Kept only so the erratum is
   executable: the regression test in test_errata.ml shows a solo
   process livelocking under this rule, which the repaired
   [adopt_check] above cannot. *)
let adopt_check_paper_literal ~pid ~pref ~i view =
  let own = pair ~pref ~pid in
  let foreign j v = j = i || ((not (Value.is_bot v)) && not (Value.equal v own)) in
  let all_foreign =
    let ok = ref true in
    Array.iteri (fun j v -> if not (foreign j v) then ok := false) view;
    !ok
  in
  if all_foreign then
    match View.min_duplicate_index view with
    | Some j -> Some (value_of_pair view.(j))
    | None -> None
  else None

(* The body of Propose(v); [finish w] builds what the process does after
   outputting w (Stop for one-shot; the repeated algorithm of Figure 4
   has its own, richer loop and does not reuse this body).  [adopt]
   selects the adoption rule; the repaired one is the default. *)
let propose ?(adopt = adopt_check) ~m ~pid ~(api : Snapshot.Snap_api.t) v ~finish () =
  let r = api.Snapshot.Snap_api.components in
  let rec loop (api : Snapshot.Snap_api.t) pref i =
    api.update i (pair ~pref ~pid) @@ fun api ->
    api.scan @@ fun api view ->
    match decide_check ~m view with
    | Some w -> Program.yield w (finish w)
    | None -> (
      match adopt ~pid ~pref ~i view with
      | Some w when not (Value.equal w pref) -> loop api w i
      | Some _ -> loop api pref i  (* literal rule: "adopt" same value, keep i *)
      | None -> loop api pref ((i + 1) mod r))
  in
  loop api v 0

(* The full one-shot process program: await the single invocation, run
   Propose, halt. *)
let program ~m ~pid ~api =
  Program.await (fun v -> propose ~m ~pid ~api v ~finish:(fun _ -> Program.stop) ())

(* The program under the paper's literal adoption rule (for the erratum
   regression test only). *)
let program_paper_literal ~m ~pid ~api =
  Program.await (fun v ->
      propose ~adopt:adopt_check_paper_literal ~m ~pid ~api v
        ~finish:(fun _ -> Program.stop)
        ())
