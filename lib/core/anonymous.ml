(* Figure 5: anonymous m-obstruction-free repeated k-set agreement with
   a snapshot object of r = (m+1)(n−k) + m² components plus one extra
   register H.

   Processes have no identifiers: entries are (pref, t, history) with no
   id field, and every process runs this same program text.  Because the
   snapshot implementation available anonymously is only non-blocking
   (Section 6), a process may starve inside scan while others advance;
   the algorithm therefore runs two threads in parallel until one
   outputs — thread 1 is the set-agreement loop, thread 2 watches H,
   where fast processes publish their histories at the start of every
   Propose.

   Thread parallelism is realized by [par], a fair interleaving of two
   programs at shared-memory-step granularity: whichever thread reaches
   its output first wins the Propose, the other is abandoned.  Each
   thread carries its own copy of the persistent locals, so the paper's
   requirement that history updates be uninterrupted by the sibling
   thread holds by construction. *)

open Shm

type tuple = { pref : Value.t; t : int; history : Value.t list }

let encode { pref; t; history } =
  Value.list [ pref; Value.int t; Value.list history ]

let decode v =
  match Value.view v with
  | Value.List [ pref; t; history ]
    when (match Value.view t with Value.Int _ -> true | _ -> false)
         && (match Value.view history with Value.List _ -> true | _ -> false) ->
    Some { pref; t = Value.to_int t; history = Value.to_list history }
  | Value.Bot -> None
  | _ -> invalid_arg (Fmt.str "Anonymous.decode: %a" Value.pp v)

let decode_h v =
  match Value.view v with
  | Value.Bot -> []
  | Value.List vs -> vs
  | _ -> invalid_arg (Fmt.str "Anonymous.decode_h: %a" Value.pp v)

(* Fair interleaving of two threads; first Yield wins the operation. *)
let rec par a b =
  match a with
  | Program.Yield _ -> a
  | Program.Stop | Program.Await _ -> b
  | Program.Op (op, k) -> Program.Op (op, fun res -> par b (k res))

(* Line 20: some entry is a tuple of a higher instance. *)
let find_higher ~t view =
  Array.fold_left
    (fun best v ->
      match decode v with
      | Some tu when tu.t > t -> (
        match best with
        | Some b when b.t >= tu.t -> best
        | Some _ | None -> Some tu)
      | Some _ | None -> best)
    None view

(* Line 23: at most m distinct entries and every entry is a t-tuple. *)
let decide_check ~m ~t view =
  let all_t =
    Array.for_all (fun v -> match decode v with Some tu -> tu.t = t | None -> false) view
  in
  if all_t && View.distinct_count view <= m then
    View.most_frequent view ~project:(fun v ->
        match decode v with Some tu -> tu.pref | None -> Value.bot)
  else None

(* |{j : s[j] = (v, t, ∗)}|: components holding a t-tuple with value v. *)
let count_value ~t view v0 =
  View.count
    (fun v -> match decode v with Some tu -> tu.t = t && Value.equal tu.pref v0 | None -> false)
    view

(* Lines 27–28: the first value (by component index) with ≥ ℓ copies,
   when the current preference has fewer than ℓ. *)
let adoption ~ell ~t ~pref view =
  if count_value ~t view pref >= ell then None
  else
    let r = Array.length view in
    let rec go j =
      if j >= r then None
      else
        match decode view.(j) with
        | Some tu when tu.t = t && count_value ~t view tu.pref >= ell -> Some tu.pref
        | Some _ | None -> go (j + 1)
    in
    go 0

let nth_output history t =
  match List.nth_opt history (t - 1) with
  | Some w -> w
  | None -> invalid_arg "Anonymous: adopted history shorter than instance"

(* The process program.  [h_reg] is the index of register H.  The same
   program text serves every process: the only per-process distinction
   is the freshness seed hidden inside the anonymous snapshot [api],
   which the algorithm itself never observes. *)
let program ~params ~api ~h_reg =
  let ell = Params.ell params in
  let m = params.Params.m in
  let r = api.Snapshot.Snap_api.components in
  let rec next_propose (api : Snapshot.Snap_api.t) i t history =
    Program.await @@ fun v ->
    (* Line 9: publish our history in H before starting instance t+1. *)
    Program.write h_reg (Value.list history) @@ fun () ->
    let t = t + 1 in
    if List.length history >= t then
      Program.yield (nth_output history t) (next_propose api i t history)
    else par (thread1 api v i t history) (thread2 api i t history)
  and thread1 (api : Snapshot.Snap_api.t) pref i t history =
    api.update i (encode { pref; t; history }) @@ fun api ->
    api.scan @@ fun api view ->
    match find_higher ~t view with
    | Some tu ->
      Program.yield (nth_output tu.history t) (next_propose api i t tu.history)
    | None -> (
      match decide_check ~m ~t view with
      | Some w -> Program.yield w (next_propose api i t (history @ [ w ]))
      | None ->
        let pref =
          match adoption ~ell ~t ~pref view with Some w -> w | None -> pref
        in
        (* Line 29: i advances every iteration (unlike Figs. 3–4). *)
        thread1 api pref ((i + 1) mod r) t history)
  and thread2 (api : Snapshot.Snap_api.t) i t history =
    Program.read h_reg @@ fun h ->
    let hs = decode_h h in
    if List.length hs >= t then
      let w = List.nth hs (t - 1) in
      Program.yield w (next_propose api i t (history @ [ w ]))
    else thread2 api i t history
  in
  next_propose api 0 0 []
