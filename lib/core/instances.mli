(** Assembling runnable system configurations: algorithm × snapshot
    implementation × (possibly overridden) register budget.

    The [r] overrides exist for the lower-bound experiments: running
    the Figure 3/4 machinery with fewer components than n+2m−k voids
    its correctness argument, and the Theorem 2 adversary then exhibits
    executions with more than k outputs. *)

type impl =
  | Atomic          (** components are registers, scans atomic (the paper's model) *)
  | Double_collect  (** honest register-level non-blocking snapshot *)
  | Sw_based        (** wait-free snapshot from n single-writer registers *)

val impl_name : impl -> string

(** Per-process snapshot API plus total raw register count. *)
val api_for : impl -> r:int -> n:int -> pid:int -> Snapshot.Snap_api.t * int

val registers_for : impl -> r:int -> n:int -> int

(** The space-optimal choice of Theorem 7's proof: {!Atomic} when
    n+2m−k ≤ n, {!Sw_based} otherwise — achieving min(n+2m−k, n). *)
val space_optimal_impl : Params.t -> impl

(** One-shot system (Figure 3). *)
val oneshot :
  ?r:int -> ?impl:impl -> ?backend:Shm.Memory.backend -> Params.t -> Shm.Config.t

(** Repeated system (Figure 4). *)
val repeated :
  ?r:int -> ?impl:impl -> ?backend:Shm.Memory.backend -> Params.t -> Shm.Config.t

(** DFGR'13 baseline system (one-shot, m = 1, 2(n−k) registers). *)
val baseline :
  ?impl:impl -> ?backend:Shm.Memory.backend -> Params.t -> Shm.Config.t

(** Anonymous one-shot system (no H, no watcher).  [slots] allocates
    extra identical process slots for the clone machinery of the
    Section 5 lower bound. *)
val anonymous_oneshot :
  ?r:int ->
  ?slots:int ->
  ?anonymous_collect:bool ->
  ?seed:int ->
  ?backend:Shm.Memory.backend ->
  Params.t ->
  Shm.Config.t

(** Anonymous repeated system (Figure 5): r components + register H.
    With [anonymous_collect] the snapshot is the non-blocking anonymous
    double collect; otherwise scans are atomic. *)
val anonymous :
  ?r:int ->
  ?anonymous_collect:bool ->
  ?seed:int ->
  ?backend:Shm.Memory.backend ->
  Params.t ->
  Shm.Config.t
