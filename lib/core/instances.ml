(* Assembling runnable system configurations: algorithm × snapshot
   implementation × (possibly overridden) register budget.

   The [r] override exists for the lower-bound experiments: running the
   Figure 3/4 machinery with fewer components than n+2m−k deliberately
   voids its correctness argument, and the Theorem 2 adversary then
   exhibits executions with more than k outputs. *)

type impl =
  | Atomic          (* components are registers, scans atomic (paper's model) *)
  | Double_collect  (* honest register-level non-blocking snapshot *)
  | Sw_based        (* wait-free snapshot from n single-writer registers *)

let impl_name = function
  | Atomic -> "atomic"
  | Double_collect -> "double-collect"
  | Sw_based -> "sw-based"

(* API + total raw registers for one process. *)
let api_for impl ~r ~n ~pid =
  match impl with
  | Atomic -> (Snapshot.Atomic.make ~off:0 ~len:r, r)
  | Double_collect -> (Snapshot.Double_collect.make ~off:0 ~len:r ~pid (), r)
  | Sw_based -> (Snapshot.Mw_from_sw.make ~off:0 ~n ~components:r ~pid, n)

let registers_for impl ~r ~n =
  match impl with Atomic | Double_collect -> r | Sw_based -> n

(* The space-optimal implementation choice of Theorem 7's proof: atomic
   components when n+2m−k ≤ n, the n-single-writer-register snapshot
   otherwise — achieving min(n+2m−k, n) registers. *)
let space_optimal_impl (p : Params.t) =
  if Params.r_oneshot p <= p.Params.n then Atomic else Sw_based

(* One-shot instances (Figure 3). *)
let oneshot ?r ?(impl = Atomic) ?backend (p : Params.t) =
  let r = Option.value r ~default:(Params.r_oneshot p) in
  let n = p.Params.n in
  let procs =
    Array.init n (fun pid ->
        let api, _ = api_for impl ~r ~n ~pid in
        Oneshot.program ~m:p.Params.m ~pid ~api)
  in
  Shm.Config.create ?backend ~registers:(registers_for impl ~r ~n) ~procs ()

(* Repeated instances (Figure 4). *)
let repeated ?r ?(impl = Atomic) ?backend (p : Params.t) =
  let r = Option.value r ~default:(Params.r_oneshot p) in
  let n = p.Params.n in
  let procs =
    Array.init n (fun pid ->
        let api, _ = api_for impl ~r ~n ~pid in
        Repeated.program ~m:p.Params.m ~pid ~api)
  in
  Shm.Config.create ?backend ~registers:(registers_for impl ~r ~n) ~procs ()

(* DFGR'13 baseline (one-shot, m = 1, 2(n−k) registers). *)
let baseline ?(impl = Atomic) ?backend (p : Params.t) =
  let n = p.Params.n and k = p.Params.k in
  let r = Baseline_dfgr13.components ~n ~k in
  let procs =
    Array.init n (fun pid ->
        let api, _ = api_for impl ~r ~n ~pid in
        Baseline_dfgr13.program ~n ~k ~pid ~api)
  in
  Shm.Config.create ?backend ~registers:(registers_for impl ~r ~n) ~procs ()

(* Anonymous one-shot instances (Section 6, closing remark: no H, no
   watcher thread).  [slots] allows allocating more process slots than
   p.n — the clone machinery of the Section 5 lower bound needs room for
   clones, which is legitimate precisely because the program text is the
   same for every slot. *)
let anonymous_oneshot ?r ?slots ?(anonymous_collect = false) ?(seed = 0xA71)
    ?backend (p : Params.t) =
  let r = Option.value r ~default:(Params.r_anonymous p) in
  let slots = Option.value slots ~default:p.Params.n in
  let procs =
    Array.init slots (fun pid ->
        let api =
          if anonymous_collect then
            Snapshot.Double_collect.make_anonymous ~off:0 ~len:r ~seed:(seed + (104729 * pid)) ()
          else Snapshot.Atomic.make ~off:0 ~len:r
        in
        Anonymous_oneshot.program ~params:p ~api)
  in
  Shm.Config.create ?backend ~registers:r ~procs ()

(* Anonymous repeated instances (Figure 5): r components + register H.
   With [anonymous_collect] the snapshot is the anonymous double-collect
   implementation (non-blocking — the case Figure 5's thread 2 exists
   for); otherwise scans are atomic.  The per-process seed feeds only
   the freshness nonces, never the algorithm. *)
let anonymous ?r ?(anonymous_collect = false) ?(seed = 0xA70) ?backend (p : Params.t) =
  let r = Option.value r ~default:(Params.r_anonymous p) in
  let n = p.Params.n in
  let h_reg = r in
  let procs =
    Array.init n (fun pid ->
        let api =
          if anonymous_collect then
            Snapshot.Double_collect.make_anonymous ~off:0 ~len:r ~seed:(seed + (7919 * pid)) ()
          else Snapshot.Atomic.make ~off:0 ~len:r
        in
        Anonymous.program ~params:p ~api ~h_reg)
  in
  Shm.Config.create ?backend ~registers:(r + 1) ~procs ()
