(* Input workload generators.

   The dynamics of the Figure 3 family depend heavily on the input
   multiset: identical inputs collapse immediately, two-camp inputs
   maximize preference flapping, and distinct inputs exercise adoption
   chains.  These named generators give the bench harness and tests a
   shared vocabulary of realistic proposal patterns. *)

open Shm

type t =
  | Distinct          (* every process proposes its own value *)
  | Identical         (* everyone proposes the same value *)
  | Two_camps         (* half propose A, half propose B *)
  | Skewed            (* ~80% propose the popular value, rest distinct *)
  | Binary_random of int  (* coin flip per process, seeded *)

let name = function
  | Distinct -> "distinct"
  | Identical -> "identical"
  | Two_camps -> "two-camps"
  | Skewed -> "skewed"
  | Binary_random seed -> Fmt.str "binary(seed=%d)" seed

let all = [ Distinct; Identical; Two_camps; Skewed; Binary_random 7 ]

(* Inputs for a one-shot task over n processes. *)
let inputs t ~n =
  match t with
  | Distinct -> Array.init n (fun pid -> Value.int (100 + pid))
  | Identical -> Array.make n (Value.int 100)
  | Two_camps -> Array.init n (fun pid -> Value.int (if pid < n / 2 then 100 else 200))
  | Skewed ->
    Array.init n (fun pid -> if pid mod 5 = 4 then Value.int (100 + pid) else Value.int 100)
  | Binary_random seed ->
    let rng = Rng.create seed in
    Array.init n (fun _ -> Value.int (if Rng.bool rng then 100 else 200))

(* Distinct values actually present in a workload. *)
let distinct_inputs t ~n =
  Array.to_list (inputs t ~n)
  |> List.fold_left
       (fun acc v -> if List.exists (Value.equal v) acc then acc else v :: acc)
       []
  |> List.length
