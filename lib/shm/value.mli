(** Universal register value type, hash-consed.

    Every simulated register holds a value of this single type, so
    configurations are first-class, comparable, printable data.  The
    paper's algorithms store tuples such as [(pref, id)] (Figure 3) or
    [(pref, id, t, history)] (Figure 4); encode them with {!pair} and
    {!list}.

    Values are immutable and carry a precomputed structural hash:
    {!hash} is O(1), and {!equal} is a pointer test whenever both sides
    were built in the same domain (constructors intern nodes in a
    per-domain weak set), falling back to a hash-guarded structural
    walk otherwise.  Construct values only through the functions below
    and inspect them through {!view}. *)

type t

(** One level of structure.  Children are full hash-consed values;
    recurse with {!view}. *)
type view =
  | Bot  (** the initial value ⊥ of every register *)
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(** Head constructor and children of a value — the pattern-matching
    window.  O(1): no copying below the first level. *)
val view : t -> view

(** {1 Constructors} *)

val bot : t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

(** [tuple vs] encodes a small tuple; a singleton list is the value
    itself, anything else a {!List}. *)
val tuple : t list -> t

(** {1 Comparison and printing} *)

(** Structural equality; matches the paper's tuple equality.  O(1) on
    same-domain values (pointer test after interning); a stored-hash
    mismatch rejects unequal values without any traversal. *)
val equal : t -> t -> bool

(** The precomputed structural hash.  O(1); agrees with {!equal}
    ([equal a b] implies [hash a = hash b]) and is deterministic across
    runs and domains (it never depends on physical identity). *)
val hash : t -> int

(** The hash mixer behind {!hash}, exposed for derived incremental
    hashes (e.g. state keys): [mix h k] folds [k] into accumulator [h]
    with SplitMix-style avalanching.  Deterministic across runs. *)
val mix : int -> int -> int

(** A total order consistent with {!equal} ([compare a b = 0] iff
    [equal a b]; used for sorting and deduplication — the order itself
    is arbitrary but fixed). *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Accessors}

    These fail loudly ([Invalid_argument]) on encoding bugs. *)

val is_bot : t -> bool
val to_int : t -> int

(** First component of a {!Pair}. *)
val fst : t -> t

(** Second component of a {!Pair}. *)
val snd : t -> t

(** Elements of a {!List}. *)
val to_list : t -> t list
