(* The scheduler zoo.

   A scheduler is the adversary of the asynchronous model: at each step
   it picks which runnable process moves.  Schedulers are stateful
   (cursors, PRNGs, phase counters) but constructed fresh per run, so
   runs remain reproducible from their seeds.

   The progress-condition schedulers matter most for this paper:
   [m_bounded] produces executions in which, after an arbitrary finite
   prefix, at most [m] processes take infinitely many steps — exactly
   the hypothesis of m-obstruction-freedom. *)

type t = {
  name : string;
  next : step:int -> runnable:(int -> bool) -> int option;
      (* [next ~step ~runnable] picks a runnable pid, or None to end the
         run (no process this scheduler is willing to run is runnable). *)
}

let name t = t.name

let first_runnable ~runnable pids = List.find_opt runnable pids

(* Round-robin over all n processes, skipping unrunnable ones. *)
let round_robin n =
  let cursor = ref 0 in
  let next ~step:_ ~runnable =
    let rec go tried =
      if tried >= n then None
      else
        let pid = !cursor in
        cursor := (!cursor + 1) mod n;
        if runnable pid then Some pid else go (tried + 1)
    in
    go 0
  in
  { name = "round-robin"; next }

(* Round-robin with quantum [q]: each process takes q consecutive steps
   before the cursor advances.  Large quanta approximate solo runs. *)
let quantum_round_robin ~quantum n =
  if quantum <= 0 then invalid_arg "Schedule.quantum_round_robin: quantum must be positive";
  let cursor = ref 0 and left = ref quantum in
  (* closure-free probe loop: this runs on every simulator step
     (frontier completions included), up to n probes per step *)
  let next ~step:_ ~runnable =
    if !left = 0 then (
      cursor := (!cursor + 1) mod n;
      left := quantum);
    let tried = ref 0 and found = ref (-1) in
    while !found < 0 && !tried < n do
      if runnable !cursor then (
        decr left;
        found := !cursor)
      else (
        cursor := (!cursor + 1) mod n;
        left := quantum;
        incr tried)
    done;
    if !found < 0 then None else Some !found
  in
  { name = Fmt.str "round-robin/q=%d" quantum; next }

(* Only [pid] ever runs: the solo executions of obstruction-freedom. *)
let solo pid =
  {
    name = Fmt.str "solo(p%d)" pid;
    next = (fun ~step:_ ~runnable -> if runnable pid then Some pid else None);
  }

(* Run exactly the processes in [pids], round-robin in list order. *)
let only pids =
  let arr = Array.of_list pids in
  let n = Array.length arr in
  if n = 0 then invalid_arg "Schedule.only: empty process set";
  let cursor = ref 0 in
  let next ~step:_ ~runnable =
    let rec go tried =
      if tried >= n then None
      else
        let pid = arr.(!cursor) in
        cursor := (!cursor + 1) mod n;
        if runnable pid then Some pid else go (tried + 1)
    in
    go 0
  in
  { name = Fmt.str "only(%a)" Fmt.(list ~sep:(any ",") int) pids; next }

(* Uniformly random runnable process. *)
let random ~seed n =
  let rng = Rng.create seed in
  let next ~step:_ ~runnable =
    let live = List.filter runnable (List.init n (fun i -> i)) in
    match live with [] -> None | _ -> Some (Rng.pick rng live)
  in
  { name = Fmt.str "random(seed=%d)" seed; next }

(* The m-obstruction-freedom adversary: a random prefix of [prefix]
   steps over all processes, after which only a random set of [m]
   processes keeps running.  Every correct process in that set must then
   terminate (paper, Section 2.1). *)
let m_bounded ~seed ~m ~prefix n =
  if m <= 0 || m > n then invalid_arg "Schedule.m_bounded: need 1 <= m <= n";
  let rng = Rng.create seed in
  let chosen = ref None in
  let choose () =
    let pids = Array.init n (fun i -> i) in
    Rng.shuffle rng pids;
    Array.to_list (Array.sub pids 0 m)
  in
  let next ~step ~runnable =
    if step < prefix then begin
      let live = List.filter runnable (List.init n (fun i -> i)) in
      match live with [] -> None | _ -> Some (Rng.pick rng live)
    end
    else begin
      let set =
        match !chosen with
        | Some s -> s
        | None ->
          let s = choose () in
          chosen := Some s;
          s
      in
      let live = List.filter runnable set in
      match live with [] -> None | _ -> Some (Rng.pick rng live)
    end
  in
  { name = Fmt.str "m-bounded(m=%d,seed=%d,prefix=%d)" m seed prefix; next }

(* Like [m_bounded] but the surviving set is given explicitly. *)
let eventually_only ~seed ~survivors ~prefix n =
  let rng = Rng.create seed in
  let next ~step ~runnable =
    let candidates =
      if step < prefix then List.init n (fun i -> i) else survivors
    in
    let live = List.filter runnable candidates in
    match live with [] -> None | _ -> Some (Rng.pick rng live)
  in
  {
    name =
      Fmt.str "eventually-only(%a,prefix=%d)"
        Fmt.(list ~sep:(any ",") int)
        survivors prefix;
    next;
  }

(* Random scheduler with random-length bursts: picks a process from
   [procs] and runs it for 1..burst_max steps before repicking.  Bursts
   produce the partially-sequential interleavings (one process plants an
   entry, another fills) that uniform random schedules almost never hit;
   the Lemma 1 search relies on this family. *)
let bursty_random ~seed ?(burst_max = 8) procs =
  let procs = Array.of_list procs in
  if Array.length procs = 0 then invalid_arg "Schedule.bursty_random: no processes";
  let rng = Rng.create seed in
  let cur = ref procs.(0) and left = ref 0 in
  let next ~step:_ ~runnable =
    if !left <= 0 then begin
      cur := procs.(Rng.int rng (Array.length procs));
      left := 1 + Rng.int rng burst_max
    end;
    decr left;
    if runnable !cur then Some !cur
    else begin
      left := 0;
      match List.filter runnable (Array.to_list procs) with
      | [] -> None
      | live -> Some (Rng.pick rng live)
    end
  in
  { name = Fmt.str "bursty-random(seed=%d)" seed; next }

(* Contention adversary: alternates short bursts of two process groups,
   the schedule that makes preference-flapping algorithms spin. *)
let alternating ~burst groups =
  if burst <= 0 then invalid_arg "Schedule.alternating: burst must be positive";
  let groups = Array.of_list groups in
  let g = Array.length groups in
  if g = 0 then invalid_arg "Schedule.alternating: no groups";
  let phase = ref 0 and left = ref burst and cursor = ref 0 in
  let next ~step:_ ~runnable =
    let rec go tried =
      if tried >= g then None
      else begin
        if !left = 0 then begin
          phase := (!phase + 1) mod g;
          left := burst;
          cursor := 0
        end;
        let group = groups.(!phase) in
        let len = List.length group in
        let rec in_group k =
          if k >= len then None
          else
            let pid = List.nth group (!cursor mod len) in
            incr cursor;
            if runnable pid then Some pid else in_group (k + 1)
        in
        match in_group 0 with
        | Some pid ->
          decr left;
          Some pid
        | None ->
          phase := (!phase + 1) mod g;
          left := burst;
          cursor := 0;
          go (tried + 1)
      end
    in
    go 0
  in
  { name = Fmt.str "alternating(burst=%d)" burst; next }

(* Crash adversary: wraps [inner]; process [pid] crashes (is never
   scheduled again) once the global step count passes its crash time. *)
let with_crashes ~crashes inner =
  let crashed step pid =
    List.exists (fun (p, at) -> p = pid && step >= at) crashes
  in
  let next ~step ~runnable =
    inner.next ~step ~runnable:(fun pid -> runnable pid && not (crashed step pid))
  in
  { name = Fmt.str "%s+crashes" inner.name; next }
