(** Shared register memory with exact space accounting.

    The interface is persistent whichever backend is selected: [write]
    returns a new memory and leaves the old one readable, so
    configurations can be cloned and replayed — the Theorem 2 adversary
    depends on this.  The space measure reported by the experiments is
    {!num_written}: an algorithm "uses" a register iff some execution
    writes it. *)

type t

(** How register contents are represented.

    - [Persistent] — a persistent map; the obviously-correct reference.
    - [Journaled] — a flat array shared by a version family plus an
      undo journal (Conchon–Filliâtre persistent arrays): O(1) writes,
      O(1) reads on the current version, amortized O(1) rollback under
      the explorers' depth-first push/pop access pattern.  A version
      family must be owned by one domain at a time; use {!unshare}
      before handing a memory to another domain. *)
type backend = Persistent | Journaled

val backend_name : backend -> string

(** Recognizes ["persistent"]/["map"] and ["journal"]/["journaled"]. *)
val backend_of_string : string -> backend option

(** Process-wide default backend used by {!create} when no explicit
    [?backend] is given.  Initially [Journaled]; set once at startup
    (e.g. from [sa_run --memory-backend]). *)
val set_default : backend -> unit

val get_default : unit -> backend

(** [create ?backend size] allocates registers [0 .. size-1], all
    holding ⊥. *)
val create : ?backend:backend -> int -> t

(** The backend this memory was created with. *)
val backend : t -> backend

val size : t -> int

(** [read t r] is the current value of register [r].  Bounds-checked. *)
val read : t -> int -> Value.t

(** [write t r v] is the memory after the write; [t] is unchanged. *)
val write : t -> int -> Value.t -> t

(** [scan t ~off ~len] is an atomic multi-read of [len] consecutive
    registers starting at [off] — the primitive behind atomic snapshot
    objects. *)
val scan : t -> off:int -> len:int -> Value.t array

(** [unshare t] detaches [t] from its journal family so the result can
    be owned by a different domain.  O(size); the identity on
    [Persistent] memories. *)
val unshare : t -> t

(** [count_read t n] bumps the read counter by [n] (bookkeeping only). *)
val count_read : t -> int -> t

(** {1 Space and step accounting} *)

(** Registers written at least once. *)
val written_set : t -> Set.Make(Int).t

(** |{!written_set}| — the paper's space measure. *)
val num_written : t -> int

val write_count : t -> int
val read_count : t -> int

val pp : Format.formatter -> t -> unit
