(* Configurations: the global state of the simulated system.

   A configuration is a pure value — persistent memory plus one program
   per process plus the input/output record — so executions can branch:
   the Theorem 2 adversary repeatedly clones a configuration, explores a
   fragment, and discards or splices it.

   [inputs] and [outputs] are accumulated in reverse chronological
   order; they are all the property checkers need (Validity and
   k-Agreement are predicates on In_i / Out_i). *)

type t = {
  mem : Memory.t;
  procs : Program.t array;
  instance : int array;                     (* completed+current invocation count *)
  pc : int array;                           (* ops performed in the current invocation *)
  inputs : (int * int * Value.t) list;      (* (pid, instance, input), reversed *)
  outputs : (int * int * Value.t) list;     (* (pid, instance, output), reversed *)
}

let create ?backend ~registers ~procs () =
  {
    mem = Memory.create ?backend registers;
    procs = Array.copy procs;
    instance = Array.make (Array.length procs) 0;
    pc = Array.make (Array.length procs) 0;
    inputs = [];
    outputs = [];
  }

let n t = Array.length t.procs

let mem t = t.mem

(* Detach the memory's journal family (no-op on persistent memories) so
   this configuration can be owned by another domain. *)
let unshare t = { t with mem = Memory.unshare t.mem }

let proc t pid = t.procs.(pid)

let instance t pid = t.instance.(pid)

let pc t pid = t.pc.(pid)

let inputs t = List.rev t.inputs

let outputs t = List.rev t.outputs

let set_proc t pid p =
  let procs = Array.copy t.procs in
  procs.(pid) <- p;
  { t with procs }

(* A process is runnable when it is poised to take a step, or idle with
   an invocation available (decided by the caller via [has_input]). *)
let runnable t ~has_input pid =
  match t.procs.(pid) with
  | Program.Stop -> false
  | Program.Await _ -> has_input pid (t.instance.(pid) + 1)
  | Program.Op _ | Program.Yield _ -> true

(* Footprint of the step process [pid] would take next.  For an idle
   process the next step is the invocation itself, which touches no
   shared memory; same for halted processes (which take no step at
   all).  Everything else is the poised head's footprint. *)
let footprint t pid = Program.footprint t.procs.(pid)

(* Invoke the next operation of an idle process with input [v]. *)
let invoke t pid v =
  match t.procs.(pid) with
  | Program.Await k ->
    let inst = t.instance.(pid) + 1 in
    let procs = Array.copy t.procs in
    procs.(pid) <- k v;
    let instance = Array.copy t.instance in
    instance.(pid) <- inst;
    let pc = Array.copy t.pc in
    pc.(pid) <- 0;
    let t = { t with procs; instance; pc; inputs = (pid, inst, v) :: t.inputs } in
    (t, Event.Invoke { pid; instance = inst; input = v })
  | Program.Stop | Program.Op _ | Program.Yield _ ->
    invalid_arg (Fmt.str "Config.invoke: p%d is not idle" pid)

(* Perform one step of an active process.  This is the simulator's
   innermost loop (every explored node and every frontier completion
   goes through it), so each branch builds its successor configuration
   in one allocation instead of stacking [set_proc] + functional
   update. *)
let step t pid =
  (* [with_proc] is the shared-memory-op path: it also advances the
     process's program point (its op counter), the stable identity the
     static analyzer's IR points line up with. *)
  let with_proc t p mem =
    let procs = Array.copy t.procs in
    procs.(pid) <- p;
    let pc = Array.copy t.pc in
    pc.(pid) <- t.pc.(pid) + 1;
    { t with procs; mem; pc }
  in
  match t.procs.(pid) with
  | Program.Stop -> invalid_arg (Fmt.str "Config.step: p%d halted" pid)
  | Program.Await _ -> invalid_arg (Fmt.str "Config.step: p%d idle" pid)
  | Program.Yield (v, rest) ->
    let inst = t.instance.(pid) in
    let procs = Array.copy t.procs in
    procs.(pid) <- rest;
    let t = { t with procs; outputs = (pid, inst, v) :: t.outputs } in
    (t, Event.Output { pid; instance = inst; value = v })
  | Program.Op (Program.Read r, k) ->
    let v = Memory.read t.mem r in
    let t = with_proc t (k (Program.RVal v)) (Memory.count_read t.mem 1) in
    (t, Event.Did_read { pid; reg = r; value = v })
  | Program.Op (Program.Write (r, v), k) ->
    let t = with_proc t (k Program.RUnit) (Memory.write t.mem r v) in
    (t, Event.Did_write { pid; reg = r; value = v })
  | Program.Op (Program.Scan (off, len), k) ->
    let vec = Memory.scan t.mem ~off ~len in
    let t = with_proc t (k (Program.RVec vec)) (Memory.count_read t.mem len) in
    (t, Event.Did_scan { pid; off; len })

(* Clone support for the anonymous lower bound (Section 5): slot [to_]
   takes on the exact local state of [from_].  In an anonymous system a
   clone that shadows a process step-for-step (reading the same values,
   writing the same values immediately after) has, at every moment, the
   same local state as the original; installing that state directly is
   operationally indistinguishable from having run the clone alongside,
   because the shadow's reads are invisible and its writes duplicate
   values already present.  See DESIGN.md, substitution on clones. *)
let clone_proc t ~from_ ~to_ =
  let procs = Array.copy t.procs in
  procs.(to_) <- t.procs.(from_);
  let instance = Array.copy t.instance in
  instance.(to_) <- t.instance.(from_);
  let pc = Array.copy t.pc in
  pc.(to_) <- t.pc.(from_);
  { t with procs; instance; pc }

(* Install an explicit program into a slot; the lower-bound machinery
   uses this to plant a clone paused at an earlier point of a process's
   execution (a snapshot of its local state at that point). *)
let plant t ~slot program ~instance:inst =
  let procs = Array.copy t.procs in
  procs.(slot) <- program;
  let instance = Array.copy t.instance in
  instance.(slot) <- inst;
  (* a planted program is a snapshot of unknown progress; its op
     counter restarts rather than inheriting the slot's old count *)
  let pc = Array.copy t.pc in
  pc.(slot) <- 0;
  { t with procs; instance; pc }

(* Splice helper for the lower-bound constructions: a block write by
   process set [writers] to registers [regs] (each process performs the
   single write it is poised to do).  Fails if some process is not
   poised to write. *)
let block_write t writers =
  List.fold_left
    (fun (t, evs) pid ->
      match Program.poised_write (proc t pid) with
      | Some _ ->
        let t, ev = step t pid in
        (t, ev :: evs)
      | None ->
        invalid_arg (Fmt.str "Config.block_write: p%d is not poised to write" pid))
    (t, []) writers

let pp ppf t =
  Fmt.pf ppf "@[<v>memory:@,%a@,procs:@," Memory.pp t.mem;
  Array.iteri
    (fun pid p ->
      let status =
        if Program.is_halted p then "halted"
        else if Program.is_idle p then "idle"
        else
          match Program.poised_op p with
          | Some op -> Fmt.str "poised: %a" Program.pp_op op
          | None -> "active"
      in
      Fmt.pf ppf "p%d (#%d): %s@," pid t.instance.(pid) status)
    t.procs;
  Fmt.pf ppf "@]"
