(** Trace analysis: aggregate statistics over executions, for the bench
    harness (register heat maps, contention metrics) and for tests
    asserting structural facts about executions.

    Aggregation is streaming: an {!acc} folds events one at a time in
    O(n + registers) memory, so it can sit behind an [Exec.run ?sink]
    observer on multi-million-step schedules. *)

type t = {
  steps_per_process : int array;
  writes_per_register : int array;
  reads_per_register : int array;  (** scans count one read per register *)
  invocations : int;
  outputs : int;
  total_steps : int;
}

(** {1 Streaming accumulation} *)

(** A mutable accumulator; feed it events, snapshot at any point. *)
type acc

(** Raises [Invalid_argument] on negative [n] or [registers]; both may
    be 0 (events for out-of-range pids or registers still count toward
    [total_steps] but are not attributed). *)
val create : n:int -> registers:int -> acc

(** Fold one event into the accumulator — usable directly as an
    [Exec.run ?sink] observer. *)
val feed : acc -> Event.t -> unit

(** The statistics so far; the accumulator keeps accepting events. *)
val snapshot : acc -> t

(** [of_trace ~n ~registers trace] = feed every event, snapshot.  Safe
    on an empty trace and on [registers = 0]. *)
val of_trace : n:int -> registers:int -> Event.t list -> t

(** {1 Derived statistics} *)

(** Processes that took at least one step. *)
val active_processes : t -> int list

(** Write imbalance across written registers: max/mean (1.0 = even);
    0. when no register was written — never NaN. *)
val write_skew : t -> float

val pp : Format.formatter -> t -> unit
