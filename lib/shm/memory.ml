(* Shared register memory with exact space accounting, over one of two
   backends.

   The interface is persistent either way: [write t r v] returns a new
   memory and leaves [t] readable, so configurations can be cloned and
   replayed — the lower-bound adversary of Theorem 2 depends on this.
   [written] records the set of registers that have ever been written,
   which is the space measure the paper reports: an algorithm "uses" a
   register iff some execution writes it (registers that are only read
   never need to exist distinctly).

   Backends:

   - [Persistent] — a persistent map from register index to value.
     The reference implementation: every operation is obviously
     correct, at the cost of O(log n) allocation per write and O(log n)
     per read.

   - [Journaled] — a flat [Value.t array] shared by a whole family of
     versions, plus an undo journal (Baker's trick, as in
     Conchon–Filliâtre persistent arrays).  Each version is a mutable
     cell that either owns the array ([Arr]) or records a one-register
     delta against another version ([Diff]).  A write is O(1): the new
     version takes the array, and the old version becomes a Diff
     remembering the overwritten value — exactly an undo-log entry.
     Reading any version first *reroots* it: the chain of Diffs between
     the version and the array is replayed onto the array (applying the
     undo log), reversing each entry so the previously-current versions
     remain readable.  The depth-first push/pop cycle of the explorers
     (Spec.Dpor, Spec.Modelcheck.exhaustive, Spec.Stress replay, the
     Theorem 2 clone-and-replay) touches versions in stack order, so
     rerooting costs amortized O(1) per step: a checkpoint is just the
     [t] value in hand, and rolling back to it is the reroot its next
     access performs.

     Concurrency: a version family is owned by one domain at a time —
     rerooting mutates shared cells.  A config that crosses domains
     (work stealing) must either be rebuilt by schedule replay or
     detached with [unshare], which copies the current contents into a
     fresh single-version family.  Spec.Dpor does exactly that; see
     docs/PERFORMANCE.md for the ownership argument.

   Bookkeeping (written set, step counters) lives in the immutable
   per-version handle, not in the journal, so it needs no undo and the
   handle copy is a few words per operation. *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type backend = Persistent | Journaled

let backend_name = function Persistent -> "persistent" | Journaled -> "journal"

let backend_of_string = function
  | "persistent" | "map" -> Some Persistent
  | "journal" | "journaled" -> Some Journaled
  | _ -> None

(* The process-wide default backend, set once at startup (sa_run
   --memory-backend); reads during simulation are race-free because
   every create call site runs after CLI parsing. *)
let default = Atomic.make Journaled

let set_default b = Atomic.set default b

let get_default () = Atomic.get default

(* ---- journaled versions ---- *)

type version = cell ref

and cell =
  | Arr of Value.t array               (* this version owns the array *)
  | Diff of int * Value.t * version    (* this version = that one, except reg r held v *)

(* Reroot [ver]: make it the Arr-owning version by replaying the Diff
   chain onto the array, reversing each entry.  Iterative — chains can
   be as long as the schedule distance between two versions. *)
let reroot ver =
  match !ver with
  | Arr _ -> ()
  | Diff _ ->
    (* collect the path from [ver] to the current root *)
    let rec path acc v =
      match !v with Arr _ -> v :: acc | Diff (_, _, next) -> path (v :: acc) next
    in
    (match path [] ver with
    | root :: rest ->
      let arr = match !root with Arr a -> a | Diff _ -> assert false in
      (* walk towards [ver], swapping each Diff into the array *)
      List.fold_left
        (fun prev v ->
          (match !v with
          | Diff (r, value, _) ->
            let old = arr.(r) in
            arr.(r) <- value;
            prev := Diff (r, old, v)
          | Arr _ -> assert false);
          v)
        root rest
      |> fun last ->
      last := Arr arr
    | [] -> assert false)

type repr = Pmap of Value.t Imap.t | Jrnl of version

type t = {
  size : int;              (* number of allocated registers *)
  repr : repr;
  written : Iset.t;        (* registers written at least once *)
  write_count : int;       (* total number of write steps *)
  read_count : int;        (* total number of read steps (scan = len reads) *)
}

let create ?backend size =
  if size < 0 then invalid_arg "Memory.create: negative size";
  let backend = match backend with Some b -> b | None -> Atomic.get default in
  let repr =
    match backend with
    | Persistent -> Pmap Imap.empty
    | Journaled -> Jrnl (ref (Arr (Array.make size Value.bot)))
  in
  { size; repr; written = Iset.empty; write_count = 0; read_count = 0 }

let backend t = match t.repr with Pmap _ -> Persistent | Jrnl _ -> Journaled

let size t = t.size

let check t r op =
  if r < 0 || r >= t.size then
    invalid_arg (Fmt.str "Memory.%s: register %d out of range [0,%d)" op r t.size)

let read t r =
  check t r "read";
  match t.repr with
  | Pmap regs -> ( match Imap.find_opt r regs with Some v -> v | None -> Value.bot)
  | Jrnl ver ->
    reroot ver;
    (match !ver with Arr a -> a.(r) | Diff _ -> assert false)

let write t r v =
  check t r "write";
  let repr =
    match t.repr with
    | Pmap regs -> Pmap (Imap.add r v regs)
    | Jrnl ver ->
      reroot ver;
      (match !ver with
      | Arr a ->
        let old = a.(r) in
        a.(r) <- v;
        let fresh = ref (Arr a) in
        ver := Diff (r, old, fresh);
        Jrnl fresh
      | Diff _ -> assert false)
  in
  {
    t with
    repr;
    written = Iset.add r t.written;
    write_count = t.write_count + 1;
  }

(* Atomic multi-read of [len] consecutive registers starting at [off];
   used to give snapshot objects their atomic-scan semantics. *)
let scan t ~off ~len =
  if len < 0 || off < 0 || off + len > t.size then
    invalid_arg
      (Fmt.str "Memory.scan: range off=%d len=%d out of range [0,%d)" off len t.size);
  match t.repr with
  | Pmap regs ->
    Array.init len (fun i ->
        match Imap.find_opt (off + i) regs with Some v -> v | None -> Value.bot)
  | Jrnl ver ->
    reroot ver;
    (match !ver with Arr a -> Array.sub a off len | Diff _ -> assert false)

(* Detach this version into a fresh single-version family (Persistent
   memories are already freely shareable).  The copy no longer shares
   journal cells with anything, so another domain may own it. *)
let unshare t =
  match t.repr with
  | Pmap _ -> t
  | Jrnl ver ->
    reroot ver;
    (match !ver with
    | Arr a -> { t with repr = Jrnl (ref (Arr (Array.copy a))) }
    | Diff _ -> assert false)

let count_read t n = { t with read_count = t.read_count + n }

let written_set t = t.written

let num_written t = Iset.cardinal t.written

let write_count t = t.write_count

let read_count t = t.read_count

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  for r = 0 to t.size - 1 do
    Fmt.pf ppf "R%d = %a@," r Value.pp (read { t with read_count = 0 } r)
  done;
  Fmt.pf ppf "@]"
