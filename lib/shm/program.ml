(* Process programs as a free monad over shared-memory operations.

   A process is a pure value of type [t]: the head constructor is the
   step the process is poised to perform, and continuations produce the
   rest of the program.  This representation gives us, for free, the
   three things the paper's proofs need from the model:

   - determinism: the next step is a function of the local state;
   - clonability: configurations are persistent values, so the
     Theorem 2 adversary can branch executions and splice fragments;
   - poised-step inspection: "process q is poised to write register R"
     (the covering argument) is a pattern match on the head.

   [Yield] is the response step of the current operation (step kind (4)
   in Section 2 of the paper): the process outputs a value and proceeds.
   [Await] models an idle process: it performs no step until the
   environment invokes its next operation with an input value. *)

type op =
  | Read of int                  (* read one register *)
  | Write of int * Value.t       (* write one register *)
  | Scan of int * int            (* atomic scan: offset, length *)

type res =
  | RUnit
  | RVal of Value.t
  | RVec of Value.t array

type t =
  | Stop                          (* halted: takes no more steps *)
  | Op of op * (res -> t)         (* poised to perform a shared-memory step *)
  | Yield of Value.t * t          (* respond to current operation with a value *)
  | Await of (Value.t -> t)       (* idle: waiting for the next invocation *)

(* Smart constructors hide the [res] unpacking. *)

let read r k =
  Op (Read r, function RVal v -> k v | RUnit | RVec _ -> assert false)

let write r v k =
  Op (Write (r, v), function RUnit -> k () | RVal _ | RVec _ -> assert false)

let scan ~off ~len k =
  Op (Scan (off, len), function RVec a -> k a | RUnit | RVal _ -> assert false)

let yield v rest = Yield (v, rest)

let await k = Await k

let stop = Stop

let pp_op ppf = function
  | Read r -> Fmt.pf ppf "read R%d" r
  | Write (r, v) -> Fmt.pf ppf "write R%d := %a" r Value.pp v
  | Scan (off, len) -> Fmt.pf ppf "scan [%d..%d]" off (off + len - 1)

(* Poised-step inspection, used by the lower-bound constructions. *)

let poised_op = function Op (o, _) -> Some o | Stop | Yield _ | Await _ -> None

(* The memory footprint of the poised step — which registers executing
   it would read and write.  Yield and Await steps (and halted
   processes) touch no shared memory: their footprint is empty, which
   makes them independent of every other process's steps.  The
   exploration engine (Spec.Dpor) uses footprints to decide, without
   executing anything, whether two enabled steps commute. *)

type footprint = { reads : int list; writes : int list }

let empty_footprint = { reads = []; writes = [] }

let footprint = function
  | Op (Read r, _) -> { reads = [ r ]; writes = [] }
  | Op (Write (r, _), _) -> { reads = []; writes = [ r ] }
  | Op (Scan (off, len), _) -> { reads = List.init len (fun i -> off + i); writes = [] }
  | Stop | Yield _ | Await _ -> empty_footprint

let footprint_is_local { reads; writes } = reads = [] && writes = []

(* Two steps of *different* processes are independent iff neither
   writes a register the other touches: performing them in either order
   yields the same memory and the same results (read/read pairs and
   accesses to distinct registers commute; write/write to the same
   register, and read/write of the same register, do not). *)
let independent a b =
  let disjoint xs ys = not (List.exists (fun x -> List.mem x ys) xs) in
  disjoint a.writes (b.reads @ b.writes) && disjoint b.writes (a.reads @ a.writes)

let poised_write = function
  | Op (Write (r, _), _) -> Some r
  | Stop | Op ((Read _ | Scan _), _) | Yield _ | Await _ -> None

(* Abstract stepping hooks.  A static analyzer (lib/analyze) drives a
   program without any memory: it decides what each read observes and
   applies the continuation to that fabricated result.  [feed] checks
   the result shape against the poised operation first, so the smart
   constructors' shape assertions can never fire through this path; the
   continuation itself may still raise (algorithms decode register
   values and fail loudly on encodings that no single execution could
   produce — an abstract memory can) and callers are expected to catch. *)

let feed p res =
  match (p, res) with
  | Op (Read _, k), RVal _ -> Some (k res)
  | Op (Write _, k), RUnit -> Some (k res)
  | Op (Scan (_, len), k), RVec a when Array.length a = len -> Some (k res)
  | Op _, _ | Stop, _ | Yield _, _ | Await _, _ -> None

let feed_read p v = feed p (RVal v)

let feed_write_ack p = feed p RUnit

let feed_scan p view = feed p (RVec view)

let take_yield = function
  | Yield (v, rest) -> Some (v, rest)
  | Stop | Op _ | Await _ -> None

let start p v = match p with
  | Await k -> Some (k v)
  | Stop | Op _ | Yield _ -> None

let is_idle = function Await _ -> true | Stop | Op _ | Yield _ -> false

let is_halted = function Stop -> true | Op _ | Yield _ | Await _ -> false

let is_active = function Op _ | Yield _ -> true | Stop | Await _ -> false
