(* Trace analysis: aggregate statistics over executions.

   Used by the bench harness (register heat maps, contention metrics)
   and by tests that assert structural facts about executions — e.g.
   that a solo run touches every component, or that crash survivors
   account for all late steps.

   Aggregation is streaming: an [acc] folds events one at a time in
   O(n + registers) memory, so it can sit behind an [Exec.run ?sink]
   observer on multi-million-step schedules.  [of_trace] is the same
   fold over an in-memory list. *)

type t = {
  steps_per_process : int array;   (* shared-memory + response steps *)
  writes_per_register : int array;
  reads_per_register : int array;  (* scans count one read per covered register *)
  invocations : int;
  outputs : int;
  total_steps : int;
}

type acc = {
  n : int;
  registers : int;
  steps : int array;
  writes : int array;
  reads : int array;
  mutable a_invocations : int;
  mutable a_outputs : int;
  mutable a_total : int;
}

let create ~n ~registers =
  if n < 0 then invalid_arg "Analysis.create: n must be non-negative";
  if registers < 0 then invalid_arg "Analysis.create: registers must be non-negative";
  {
    n;
    registers;
    steps = Array.make n 0;
    writes = Array.make registers 0;
    reads = Array.make registers 0;
    a_invocations = 0;
    a_outputs = 0;
    a_total = 0;
  }

let feed acc ev =
  acc.a_total <- acc.a_total + 1;
  let pid = Event.pid ev in
  if pid >= 0 && pid < acc.n then acc.steps.(pid) <- acc.steps.(pid) + 1;
  match ev with
  | Event.Invoke _ -> acc.a_invocations <- acc.a_invocations + 1
  | Event.Output _ -> acc.a_outputs <- acc.a_outputs + 1
  | Event.Did_write { reg; _ } ->
    if reg >= 0 && reg < acc.registers then acc.writes.(reg) <- acc.writes.(reg) + 1
  | Event.Did_read { reg; _ } ->
    if reg >= 0 && reg < acc.registers then acc.reads.(reg) <- acc.reads.(reg) + 1
  | Event.Did_scan { off; len; _ } ->
    for r = max 0 off to min (off + len) acc.registers - 1 do
      acc.reads.(r) <- acc.reads.(r) + 1
    done

let snapshot acc =
  {
    steps_per_process = Array.copy acc.steps;
    writes_per_register = Array.copy acc.writes;
    reads_per_register = Array.copy acc.reads;
    invocations = acc.a_invocations;
    outputs = acc.a_outputs;
    total_steps = acc.a_total;
  }

let of_trace ~n ~registers trace =
  let acc = create ~n ~registers in
  List.iter (feed acc) trace;
  snapshot acc

(* Processes that took at least one step. *)
let active_processes t =
  Array.to_list t.steps_per_process
  |> List.mapi (fun pid s -> (pid, s))
  |> List.filter (fun (_, s) -> s > 0)
  |> List.map fst

(* Contention metric: the write-count imbalance across registers —
   max writes / mean writes over written registers (1.0 = perfectly
   even).  Register-efficient algorithms cycle evenly.  When no
   register was written (empty trace, read-only run, registers = 0)
   there is no imbalance to report: 0. by convention, never NaN. *)
let write_skew t =
  let written = Array.to_list t.writes_per_register |> List.filter (fun w -> w > 0) in
  match written with
  | [] -> 0.
  | _ ->
    let total = List.fold_left ( + ) 0 written in
    let mean = float_of_int total /. float_of_int (List.length written) in
    float_of_int (List.fold_left max 0 written) /. mean

let pp ppf t =
  Fmt.pf ppf "@[<v>steps/process: %a@,writes/register: %a@,invocations: %d, outputs: %d@]"
    Fmt.(array ~sep:(any " ") int)
    t.steps_per_process
    Fmt.(array ~sep:(any " ") int)
    t.writes_per_register t.invocations t.outputs
