(** Bytecode compiler and arena execution engine for first-order
    protocols.

    First-order protocols — the step-list language shared by the
    fuzzer and the static analyzer ([Analyze.Ir] and [Fuzz.Gen]
    re-export the types below) — admit two executable forms:

    - {!to_program} compiles to the free monad, executed by
      [Exec.run] — the reference semantics;
    - {!compile} lowers to a flat array of int-coded instructions,
      executed by {!step}/{!drive}/{!run} over a mutable slice of one
      flat [int array] — the fast engine.

    The two are event-equivalent by contract: same events in the same
    order, same final memory and i/o records, same step counts.  The
    fuzzer's [vm] oracle and the QCheck equivalence suite enforce the
    contract on random protocols; [docs/PERFORMANCE.md] documents the
    bytecode format and the arena layout.

    The engine maintains the exploration state key incrementally
    inside {!step}, derived from the machine state itself (registers,
    per-process control state, i/o records) rather than from the
    observation history [Spec.Statehash] folds.  Because the step
    language has no data-dependent control flow, the future of a
    configuration is a function of its state alone — so hashing state
    is sound for the DPOR cache and strictly coarser than the
    interpreter's key: states reached by equivalent interleavings
    collide by construction, which is exactly the pruning the cache
    wants.  {!key} is four loads and DPOR over vm states
    ([Spec.Vmexplore]) never hashes a full configuration. *)

(** {1 The first-order protocol language} *)

type src = Const of int | Input | Last

type step =
  | Read of int
  | Write of int * src
  | Scan of int * int
  | Loop of int * step list
  | Decide of src

type proto = { registers : int; n : int; steps : step list }

(** {1 Reference semantics: compilation to the free monad}

    CPS over the step list, threading the process's "last observation"
    (⊥ until the first read; a scan observes its first component).
    Loops unroll at compile time.  A mid-list [Decide] halts the
    process (the tail is dead code); a step list without [Decide]
    halts without an output. *)

val to_program : proto -> pid:int -> Program.t

(** [config p] is the initial configuration running [to_program p] on
    every process. *)
val config : ?backend:Memory.backend -> proto -> Config.t

(** {1 Bytecode} *)

(** Compiled form: flat instruction array plus the value side table.
    Immutable once {!env} has encoded its inputs, so a [code] can be
    shared read-only across domains. *)
type code

(** Static checks the interpreter performs lazily happen here, once:
    register accesses must be in bounds and loop counts non-negative
    ([Invalid_argument] otherwise, mirroring the error the interpreter
    would raise at execution time). *)
val compile : proto -> code

(** {1 Execution environment and state}

    An {!env} fixes code, round count, and the pre-encoded invocation
    inputs; a state is a slice of {!state_words} ints inside any
    [int array] the caller owns (an arena).  All engine entry points
    address the slice as [(st, base)]; snapshotting a configuration is
    one [Array.blit]. *)

type env

(** [env c ~inputs] pre-encodes [inputs ~pid ~instance] for every
    process and instance [1..rounds] (default 1 round).  Inputs beyond
    [rounds] are never requested. *)
val env : ?rounds:int -> code -> inputs:(pid:int -> instance:int -> Value.t option) -> env

val code_env : env -> code
val proto_env : env -> proto

(** Size of one state slice, in ints. *)
val state_words : env -> int

(** [init e st base] formats [st.(base .. base+state_words-1)] as the
    initial configuration (all registers ⊥, all processes idle). *)
val init : env -> int array -> int -> unit

(** A fresh single-state arena, initialized — convenience for callers
    that run one configuration ({!run}, the bench loops). *)
val make_state : env -> int array

(** {1 Inspection} *)

(** Instruction pointer of [pid]: [>= 0] poised at an instruction,
    [-1] idle (awaiting an invocation), [-2] halted. *)
val status : env -> int array -> int -> int -> int

val instance : env -> int array -> int -> int -> int

(** Ops performed in the current invocation — the program-point
    counter, matching [Config.pc]. *)
val pc : env -> int array -> int -> int -> int

val runnable : env -> int array -> int -> int -> bool
val quiescent : env -> int array -> int -> bool

(** Footprint of the step [pid] would take next, allocation-free:
    [(reads_off, reads_len, write_reg)], with [-1] for "none".
    Invoke and decide steps are local: [(-1, 0, -1)]. *)
val poised_footprint : env -> int array -> int -> int -> int * int * int

(** True iff [pid]'s next step touches no shared memory (invoke or
    decide) — the DPOR ample-set test. *)
val poised_local : env -> int array -> int -> int -> bool

(** The incrementally-maintained state key: commutative salted sums
    over the register file ([k_mem]), the per-process control state
    ([k_locals]), and the invocation/output records ([k_in]/[k_out]).
    Equal states always produce equal keys — the equivalence suite
    pins determinism and convergence; unequal states collide only with
    hash probability, same as any key. *)
type key = { k_mem : int; k_locals : int; k_in : int; k_out : int }

val key : env -> int array -> int -> key

(** One final mix over the four components, computed straight off the
    slice — allocation-free, for per-step use (the bench loops, cache
    probes). *)
val key_hash : env -> int array -> int -> int

(** {1 Stepping} *)

(** [step e st base pid] performs [pid]'s next step in place: invoke if
    idle (raising [Invalid_argument] if no input remains, as
    [Exec.run] does), otherwise the poised instruction.  Transparent
    control instructions (loop bookkeeping) run as part of the step,
    consuming no scheduler steps — the interpreter unrolls loops at
    compile time.  Allocation-free. *)
val step : env -> int array -> int -> int -> unit

(** [step], also reporting what happened — the oracle and trace
    paths. *)
val step_ev : env -> int array -> int -> int -> Event.t

(** {1 Driving whole executions} *)

(** Decoded terminal state: hash-consed memory contents, the written
    set and counters (the paper's space/step measures), and the i/o
    records.  [inputs]/[outputs] are in (instance, pid) order — the
    chronological interleaving is not retained; compare them as
    multisets, which is all the property checkers inspect. *)
type final = {
  memory : Value.t array;
  written : int list;
  num_written : int;
  write_count : int;
  read_count : int;
  inputs : (int * int * Value.t) list;
  outputs : (int * int * Value.t) list;
}

val snapshot : env -> int array -> int -> final

(** Event-free in-place driver mirroring [Exec.run]'s loop (fuel check
    before each scheduler probe): returns steps taken and why it
    stopped. *)
val drive :
  env -> int array -> int -> sched:Schedule.t -> max_steps:int -> int * Exec.stop_reason

type vresult = {
  steps : int;
  stopped : Exec.stop_reason;
  trace : Event.t list;  (** chronological; empty unless [record] *)
  final : final;
}

(** [run ~sched e] drives a fresh state to quiescence or [max_steps]
    (default 1,000,000), mirroring [Exec.run]'s contract. *)
val run :
  ?record:bool -> ?sink:(Event.t -> unit) -> ?max_steps:int -> sched:Schedule.t -> env ->
  vresult
