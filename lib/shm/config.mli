(** Configurations: the global state of the simulated system.

    A configuration is a pure value — persistent memory plus one
    program per process plus the input/output record — so executions
    branch freely: the Theorem 2 adversary clones a configuration,
    explores a fragment, and discards or splices it. *)

type t

(** [create ?backend ~registers ~procs ()] is the initial
    configuration: all registers ⊥, process [pid] running
    [procs.(pid)].  [backend] selects the memory representation
    (default {!Memory.get_default}). *)
val create : ?backend:Memory.backend -> registers:int -> procs:Program.t array -> unit -> t

val n : t -> int
val mem : t -> Memory.t

(** Detach the memory from its journal family so this configuration can
    be handed to another domain (see {!Memory.unshare}). *)
val unshare : t -> t
val proc : t -> int -> Program.t

(** Number of invocations process [pid] has begun (0 initially). *)
val instance : t -> int -> int

(** [pc t pid] is the number of shared-memory operations (reads, writes
    and scans) process [pid] has performed in its current invocation —
    a stable program-point identity: the step a process is poised at is
    its [pc]-th operation since the last invoke.  Resets to [0] on
    {!invoke} and {!plant}; {!clone_proc} copies it with the local
    state. *)
val pc : t -> int -> int

(** All invocations [(pid, instance, input)], chronological. *)
val inputs : t -> (int * int * Value.t) list

(** All outputs [(pid, instance, output)], chronological. *)
val outputs : t -> (int * int * Value.t) list

(** Replace one process's program (low-level; prefer {!step}). *)
val set_proc : t -> int -> Program.t -> t

(** [runnable t ~has_input pid]: poised at a step, or idle with an
    invocation available according to [has_input pid next_instance]. *)
val runnable : t -> has_input:(int -> int -> bool) -> int -> bool

(** Memory footprint of the step process [pid] would take next (empty
    for idle and halted processes — invoking is a local step).  Lets
    the exploration engine decide step independence without executing. *)
val footprint : t -> int -> Program.footprint

(** Invoke the next operation of an idle process with the given input.
    Raises [Invalid_argument] if the process is not idle. *)
val invoke : t -> int -> Value.t -> t * Event.t

(** Perform one step of an active process.  Raises [Invalid_argument]
    on idle or halted processes. *)
val step : t -> int -> t * Event.t

(** {1 Lower-bound machinery support} *)

(** [clone_proc t ~from_ ~to_]: slot [to_] takes on the exact local
    state of [from_].  Legitimate in anonymous systems, where a clone
    shadowing a process step-for-step has the same local state at every
    moment (see the Section 5 construction). *)
val clone_proc : t -> from_:int -> to_:int -> t

(** [plant t ~slot program ~instance]: install an explicit program
    (a snapshot of some process's earlier local state) into a slot. *)
val plant : t -> slot:int -> Program.t -> instance:int -> t

(** [block_write t writers]: each process of [writers] performs the
    single write it is poised at — the paper's block write.  Raises
    [Invalid_argument] if some process is not poised at a write. *)
val block_write : t -> int list -> t * Event.t list

val pp : Format.formatter -> t -> unit
