(** The execution runner: drives a configuration under a scheduler.

    Invocation policy: when the scheduler picks an idle process, the
    runner invokes that process's next operation using [inputs] — a
    pure function from (pid, instance) to the input value, or [None]
    when the process has no further operations. *)

type stop_reason =
  | All_quiescent   (** no process is runnable: every live process finished *)
  | Fuel_exhausted  (** [max_steps] reached with runnable processes left *)

type result = {
  config : Config.t;
  steps : int;
  stopped : stop_reason;
  trace : Event.t list;  (** chronological; empty unless [record] *)
}

(** [run ~sched ~inputs config] drives [config] until quiescence or
    [max_steps] (default 1,000,000).  With [record:true] the full event
    trace is kept.  [sink] is called on every event as it happens, so
    observers run in O(1) memory however long the schedule ([Obs.Sink]
    provides composable sinks: tee, filter, metrics, spans, JSONL).
    [probe] additionally sees the step index and the configuration
    {e after} the event — the hook coverage timelines use
    ([Obs.Coverage.probe]); absent, it costs nothing per step. *)
val run :
  ?record:bool ->
  ?sink:(Event.t -> unit) ->
  ?probe:(step:int -> Event.t -> Config.t -> unit) ->
  ?max_steps:int ->
  sched:Schedule.t ->
  inputs:(pid:int -> instance:int -> Value.t option) ->
  Config.t ->
  result

(** {1 Convenience input functions} *)

(** One-shot: process [pid] proposes [values.(pid)] exactly once. *)
val oneshot_inputs : Value.t array -> pid:int -> instance:int -> Value.t option

(** Repeated: [rounds] instances; instance [i] of [pid] proposes
    [f pid i]. *)
val repeated_inputs :
  rounds:int -> (int -> int -> Value.t) -> pid:int -> instance:int -> Value.t option

val pp_trace : Format.formatter -> Event.t list -> unit
