(* Bytecode compiler and arena execution engine for first-order
   protocols.

   The free-monad interpreter ([Config.step] driven by [Exec.run]) pays
   per step for closure dispatch, continuation allocation, and the
   persistent-structure updates of [Config.t].  For *first-order*
   protocols — the step-list language shared by the fuzzer and the
   static analyzer ([Analyze.Ir] re-exports the types below) — none of
   that is necessary: the program is finite straight-line data with
   bounded loops, so it lowers to a flat array of int-coded
   instructions, and a configuration lowers to a flat slice of ints
   (register value codes, per-process instruction pointers and
   observation hashes, i/o logs) that a tight match-on-int loop mutates
   in place.

   Semantics are pinned to the interpreter, observation for
   observation.  [to_program] is the free-monad compiler (moved here
   from [Fuzz.Gen] so both engines share one source of truth), and the
   bytecode engine must be event-equivalent to running [to_program]
   under [Exec.run]: same events in the same order, same final memory,
   same i/o record multisets, same step counts.  The fuzzer's vm
   oracle and the QCheck equivalence suite enforce this on random
   protocols; the design notes live in docs/PERFORMANCE.md.

   Three representation choices carry the speed:

   - Values are int codes.  [Value.t] is already hash-consed, but a
     code is better than a pointer: even codes are immediate ints
     (code asr 1), code 1 is ⊥, and remaining odd codes index a small
     side table of interned [Value.t] (non-int inputs; constants are
     always ints).  Codes are canonical — interning dedups, so equal
     values always carry equal codes — which lets the state key hash
     codes directly, never touching the heap.

   - A configuration is a slice of one flat int array.  [state_words]
     gives the slice size; [init]/[step] address fields at fixed
     offsets.  Exploration engines keep thousands of configurations in
     one arena array and snapshot with [Array.blit] ([Spec.Vmexplore]).

   - The state key (the DPOR cache key) is maintained incrementally
     inside [step], so [key] is four loads.  The step language has no
     data-dependent control flow, so a configuration's future depends
     only on the machine state itself: register codes, each process's
     (ip, last, input, instance, pc, loop counters), and the i/o
     records.  The key hashes exactly that — commutative sums of
     salted mixes, one summand per register, per process, and per i/o
     record — so states reached by any two equivalent interleavings
     collide by construction, and each [step] refreshes only the
     summands it touched.  This is deliberately coarser than
     [Spec.Statehash], which hashes observation *histories* (all the
     interpreter can see incrementally): histories that converge to
     the same machine state share one key here, which is strictly
     more cache hits under the same soundness argument (the checked
     predicates are functions of the state).

   Control instructions (loop set/jump) execute transparently inside
   [step]: the interpreter unrolls loops at compile time, so loop
   bookkeeping must consume no scheduler steps here either. *)

(* ------------------------------------------------------------------ *)
(* The first-order protocol language.  [Analyze.Ir] and [Fuzz.Gen]
   re-export these constructors, so a fuzz corpus line, an analyzer
   subject, and a vm subject are literally the same value. *)

type src = Const of int | Input | Last

type step =
  | Read of int
  | Write of int * src
  | Scan of int * int
  | Loop of int * step list
  | Decide of src

type proto = { registers : int; n : int; steps : step list }

(* ------------------------------------------------------------------ *)
(* Compilation to the free monad — the reference semantics.  CPS over
   the step list, threading the process's "last observation" (⊥ until
   the first read; a scan observes its first component).  Loops unroll
   at compile time — counts are constants.  (Moved from [Fuzz.Gen],
   which now delegates here.) *)

let value_of s ~input ~last =
  match s with Const c -> Value.int c | Input -> input | Last -> last

let to_program p ~pid:_ =
  let rec seq steps ~input ~last k =
    match steps with
    | [] -> k last
    | Read r :: tl -> Program.read r (fun v -> seq tl ~input ~last:v k)
    | Write (r, s) :: tl ->
      Program.write r (value_of s ~input ~last) (fun () -> seq tl ~input ~last k)
    | Scan (off, len) :: tl ->
      Program.scan ~off ~len (fun view ->
          let last = if len = 0 then last else view.(0) in
          seq tl ~input ~last k)
    | Loop (count, body) :: tl ->
      let rec iter i last =
        if i = 0 then seq tl ~input ~last k
        else seq body ~input ~last (fun last -> iter (i - 1) last)
      in
      iter count last
    | Decide s :: _ -> Program.yield (value_of s ~input ~last) Program.stop
  in
  Program.await (fun input -> seq p.steps ~input ~last:Value.bot (fun _ -> Program.stop))

let config ?backend p =
  Config.create ?backend ~registers:p.registers
    ~procs:(Array.init p.n (fun pid -> to_program p ~pid))
    ()

(* ------------------------------------------------------------------ *)
(* Value codes *)

(* even code        -> Int (code asr 1)        immediate fast path
   code 1           -> ⊥
   odd code 2j+1    -> side table slot j (j ≥ 1): interned Value.t *)

let code_bot = 1

type code = {
  proto : proto;
  ops : int array;  (* stride 3: opcode, operand a, operand b *)
  n : int;
  registers : int;
  slots : int;  (* loop-counter slots per process = max loop nesting *)
  mutable table : Value.t array;  (* odd-code side table; slot 0 unused *)
  mutable table_len : int;
}

(* Interning only happens at compile time (large constants) and at
   [env] construction (non-int inputs) — never inside [step] — so the
   table is frozen before any parallel exploration starts and reads
   need no synchronization. *)
let intern c v =
  let rec find j =
    if j >= c.table_len then -1
    else if Value.equal c.table.(j) v then j
    else find (j + 1)
  in
  match find 1 with
  | j when j >= 0 -> (j lsl 1) lor 1
  | _ ->
    if c.table_len >= Array.length c.table then begin
      let t = Array.make (2 * Array.length c.table) Value.bot in
      Array.blit c.table 0 t 0 c.table_len;
      c.table <- t
    end;
    let j = c.table_len in
    c.table.(j) <- v;
    c.table_len <- j + 1;
    (j lsl 1) lor 1

(* [min_int] is reserved as the no-input sentinel, so the one int
   whose doubling lands on it goes through the side table instead. *)
let encode c v =
  match Value.view v with
  | Value.Bot -> code_bot
  | Value.Int i when (i lsl 1) asr 1 = i && i lsl 1 <> min_int -> i lsl 1
  | _ -> intern c v

let decode c k =
  if k land 1 = 0 then Value.int (k asr 1)
  else if k = code_bot then Value.bot
  else c.table.(k asr 1)

(* ------------------------------------------------------------------ *)
(* Opcodes *)

let op_halt = 0
let op_read = 1 (* a = register *)
let op_write_c = 2 (* a = register, b = value code *)
let op_write_in = 3 (* a = register *)
let op_write_last = 4 (* a = register *)
let op_scan = 5 (* a = off, b = len *)
let op_decide_c = 6 (* a = value code *)
let op_decide_in = 7
let op_decide_last = 8
let op_loop_set = 9 (* a = counter slot, b = count; transparent *)
let op_loop_jmp = 10 (* a = counter slot, b = target index; transparent *)

(* ------------------------------------------------------------------ *)
(* Compiler: one linear pass, loops become set/decrement-jump around
   the emitted body, nesting depth picks the counter slot.  Register
   bounds are checked here — statically, once — instead of per access
   at run time; the interpreter checks lazily at execution, so the two
   agree on every in-bounds protocol (the fuzz oracle skips
   out-of-bounds subjects, as it does for the other oracles). *)

let compile (p : proto) =
  if p.n < 1 then invalid_arg "Vm.compile: protocol needs at least one process";
  if p.registers < 0 then invalid_arg "Vm.compile: negative register count";
  let buf = ref (Array.make 64 0) in
  let len = ref 0 in
  let c =
    {
      proto = p;
      ops = [||];
      n = p.n;
      registers = p.registers;
      slots = 0;
      table = Array.make 4 Value.bot;
      table_len = 1;
    }
  in
  let push op a b =
    if !len + 3 > Array.length !buf then begin
      let t = Array.make (2 * Array.length !buf) 0 in
      Array.blit !buf 0 t 0 !len;
      buf := t
    end;
    !buf.(!len) <- op;
    !buf.(!len + 1) <- a;
    !buf.(!len + 2) <- b;
    len := !len + 3
  in
  let check_reg r =
    if r < 0 || r >= p.registers then
      invalid_arg (Fmt.str "Vm.compile: register %d out of bounds [0..%d)" r p.registers)
  in
  let slots = ref 0 in
  let rec emit depth steps =
    match steps with
    | [] -> ()
    | Read r :: tl ->
      check_reg r;
      push op_read r 0;
      emit depth tl
    | Write (r, s) :: tl ->
      check_reg r;
      (match s with
      | Const v -> push op_write_c r (encode c (Value.int v))
      | Input -> push op_write_in r 0
      | Last -> push op_write_last r 0);
      emit depth tl
    | Scan (off, slen) :: tl ->
      if off < 0 || slen < 0 || off + slen > p.registers then
        invalid_arg
          (Fmt.str "Vm.compile: scan [%d..%d) out of bounds [0..%d)" off (off + slen)
             p.registers);
      push op_scan off slen;
      emit depth tl
    | Loop (count, body) :: tl ->
      if count < 0 then invalid_arg "Vm.compile: negative loop count";
      if count > 0 && body <> [] then begin
        if depth + 1 > !slots then slots := depth + 1;
        push op_loop_set depth count;
        let entry = !len in
        emit (depth + 1) body;
        push op_loop_jmp depth entry
      end;
      emit depth tl
    | Decide s :: tl ->
      (match s with
      | Const v -> push op_decide_c (encode c (Value.int v)) 0
      | Input -> push op_decide_in 0 0
      | Last -> push op_decide_last 0 0);
      (* the tail is dead (the interpreter ignores it too); emitting it
         keeps the compiler one pass and costs nothing at run time *)
      emit depth tl
  in
  emit 0 p.steps;
  push op_halt 0 0;
  { c with ops = Array.sub !buf 0 !len; slots = !slots }

(* ------------------------------------------------------------------ *)
(* Execution environment: compiled code + invocation schedule (inputs
   pre-encoded per (pid, instance)) + the state-slice layout. *)

let no_input = min_int

type env = {
  c : code;
  rounds : int;
  inp : int array;  (* (instance-1)*n + pid -> value code, or [no_input] *)
  (* per-register / per-process key salts, precomputed once *)
  msalt : int array;
  lsalt : int array;
  iosalt : int array;
  (* field offsets within a state slice *)
  o_wmask : int;
  o_ip : int;
  o_last : int;
  o_input : int;
  o_inst : int;
  o_pc : int;
  o_ctr : int;
  o_lsl : int;  (* per-process current k_locals summand *)
  o_inlog : int;
  o_outlog : int;
  o_scal : int;
  words : int;  (* total slice size *)
}

(* scalar slots at [o_scal] *)
let s_kmem = 0
let s_klocals = 1
let s_kin = 2
let s_kout = 3
let s_nwritten = 4
let s_wcount = 5
let s_rcount = 6
let n_scal = 7

let env ?(rounds = 1) c ~inputs =
  let n = c.n in
  let inp = Array.make (n * rounds) no_input in
  for inst = 1 to rounds do
    for pid = 0 to n - 1 do
      match inputs ~pid ~instance:inst with
      | Some v -> inp.(((inst - 1) * n) + pid) <- encode c v
      | None -> ()
    done
  done;
  let o_wmask = c.registers in
  let wwords = (c.registers + 62) / 63 in
  let o_ip = o_wmask + wwords in
  let o_last = o_ip + n in
  let o_input = o_last + n in
  let o_inst = o_input + n in
  let o_pc = o_inst + n in
  let o_ctr = o_pc + n in
  let o_lsl = o_ctr + (n * c.slots) in
  let o_inlog = o_lsl + n in
  let o_outlog = o_inlog + (n * rounds) in
  let o_scal = o_outlog + (n * rounds) in
  {
    c; rounds; inp;
    msalt = Array.init c.registers (fun r -> Value.mix 0x6d r);
    lsalt = Array.init n (fun pid -> Value.mix 0x1c pid);
    iosalt = Array.init n (fun pid -> Value.mix 0x2e pid);
    o_wmask; o_ip; o_last; o_input; o_inst; o_pc; o_ctr; o_lsl;
    o_inlog; o_outlog; o_scal; words = o_scal + n_scal }

let state_words e = e.words
let code_env e = e.c
let proto_env e = e.c.proto

(* Key summands.  Each is one salted mix over machine-state fields —
   see the header comment for why state, not history, is the right
   thing to hash.  [poly] folds multi-field words positionally before
   the final mix (odd 62-bit constant; wrap-around is fine, this is
   hashing). *)
let mix = Value.mix
let poly = 0x2545F4914F6CDD1D

(* Unchecked indexing for the engine's inner loop.  Every index below
   derives from layout offsets computed once in [env] and operands
   validated once in [compile] (register bounds, scan ranges, loop
   nesting), so the checks the compiler cannot eliminate would only
   re-verify what construction already guarantees.  Nothing outside
   this file uses these: callers go through the checked API. *)
let ( .!() ) = Array.unsafe_get
let ( .!()<- ) = Array.unsafe_set

(* instruction pointer sentinels *)
let ip_await = -1
let ip_halted = -2

(* The [k_locals] summand for [pid]: a salted mix of the fields that
   are genuinely independent state — ip, last observation, instance,
   and the live loop counters, folded positionally.  [pc] and [input]
   are deliberately absent: ip plus the counter vector determines the
   position in the unrolled program (hence pc), and the invocation
   schedule is fixed per env, so (pid, inst) determines input. *)
let local_slot e st base pid =
  let a = st.!(base + e.o_ip + pid) in
  let a = (a * poly) + st.!(base + e.o_last + pid) in
  let a = (a * poly) + st.!(base + e.o_inst + pid) in
  let slots = e.c.slots in
  let rec ctrs a j =
    if j >= slots then a
    else ctrs ((a * poly) + st.!(base + e.o_ctr + (pid * slots) + j)) (j + 1)
  in
  mix e.lsalt.!(pid) (ctrs a 0)

(* The summand for one i/o record (invocation input / decision). *)
let io_slot e pid inst vcode = mix e.iosalt.!(pid) ((inst * poly) + vcode)

(* Refresh [pid]'s stored k_locals summand after a step changed its
   fields — the one key update every step kind shares. *)
let refresh_local e st base pid =
  let i = base + e.o_lsl + pid in
  let slot = local_slot e st base pid in
  let scal = base + e.o_scal in
  st.!(scal + s_klocals) <- st.!(scal + s_klocals) - st.!(i) + slot;
  st.!(i) <- slot

let init e st base =
  Array.fill st base e.words 0;
  let c = e.c in
  let k_mem = ref 0 in
  for r = 0 to c.registers - 1 do
    st.(base + r) <- code_bot;
    k_mem := !k_mem + mix e.msalt.(r) code_bot
  done;
  for i = 0 to (c.n * e.rounds) - 1 do
    st.(base + e.o_inlog + i) <- no_input;
    st.(base + e.o_outlog + i) <- no_input
  done;
  let k_locals = ref 0 in
  for pid = 0 to c.n - 1 do
    st.(base + e.o_ip + pid) <- ip_await;
    st.(base + e.o_last + pid) <- code_bot;
    st.(base + e.o_input + pid) <- no_input;
    let slot = local_slot e st base pid in
    st.(base + e.o_lsl + pid) <- slot;
    k_locals := !k_locals + slot
  done;
  st.(base + e.o_scal + s_kmem) <- !k_mem;
  st.(base + e.o_scal + s_klocals) <- !k_locals

type key = { k_mem : int; k_locals : int; k_in : int; k_out : int }

let key e st base =
  {
    k_mem = st.(base + e.o_scal + s_kmem);
    k_locals = st.(base + e.o_scal + s_klocals);
    k_in = st.(base + e.o_scal + s_kin);
    k_out = st.(base + e.o_scal + s_kout);
  }

(* The four components folded down to one non-negative hash, read
   straight off the slice — no record allocation, one mix, for
   per-step use (cache probes, the bench loops). *)
let key_hash e st base =
  let scal = base + e.o_scal in
  mix
    ((st.!(scal + s_kmem) * poly) + st.!(scal + s_klocals))
    ((st.!(scal + s_kin) * poly) + st.!(scal + s_kout))
  land max_int

let status e st base pid = st.(base + e.o_ip + pid)
let instance e st base pid = st.(base + e.o_inst + pid)
let pc e st base pid = st.(base + e.o_pc + pid)

let has_input e st base pid =
  let inst = st.!(base + e.o_inst + pid) in
  inst < e.rounds && e.inp.!((inst * e.c.n) + pid) <> no_input

let runnable e st base pid =
  let ip = st.!(base + e.o_ip + pid) in
  if ip >= 0 then true
  else if ip = ip_await then has_input e st base pid
  else false

let quiescent e st base =
  let rec go pid = pid >= e.c.n || ((not (runnable e st base pid)) && go (pid + 1)) in
  go 0

(* Run the transparent control instructions at [i] and return the index
   of the next *observable* instruction (or [ip_halted]).  Loop counts
   are compile-time constants, so this terminates. *)
let rec advance e st base pid i =
  let ops = e.c.ops in
  let op = ops.!(i) in
  if op = op_loop_set then begin
    st.!(base + e.o_ctr + (pid * e.c.slots) + ops.!(i + 1)) <- ops.!(i + 2);
    advance e st base pid (i + 3)
  end
  else if op = op_loop_jmp then begin
    let slot = base + e.o_ctr + (pid * e.c.slots) + ops.!(i + 1) in
    let left = st.!(slot) - 1 in
    st.!(slot) <- left;
    if left > 0 then advance e st base pid ops.!(i + 2)
    else advance e st base pid (i + 3)
  end
  else if op = op_halt then ip_halted
  else i

(* Fast path for the post-step [advance]: the next op is almost
   always observable (read/write/scan/decide), in which case there is
   nothing to run — skip the call.  [op_halt] is 0 and the control ops
   are > [op_decide_last], so one range check covers it. *)
let[@inline] advance_fast e st base pid i =
  let op = e.c.ops.!(i) in
  if op >= op_read && op <= op_decide_last then i else advance e st base pid i

(* The footprint of the step [pid] would take next, as (reads_off,
   reads_len, write_reg): (-1,0,-1) for local steps (invoke, decide).
   Mirrors [Config.footprint] for compiled protocols; Vmexplore's
   independence test works on these triples without allocating. *)
let poised_footprint e st base pid =
  let ip = st.!(base + e.o_ip + pid) in
  if ip < 0 then (-1, 0, -1)
  else
    let ops = e.c.ops in
    let op = ops.!(ip) in
    if op = op_read then (ops.!(ip + 1), 1, -1)
    else if op = op_write_c || op = op_write_in || op = op_write_last then
      (-1, 0, ops.!(ip + 1))
    else if op = op_scan then (ops.!(ip + 1), ops.!(ip + 2), -1)
    else (-1, 0, -1)

(* True iff [pid]'s next step touches no shared memory (invoke or
   decide) — the ample-set test. *)
let poised_local e st base pid =
  let ip = st.!(base + e.o_ip + pid) in
  ip < 0
  ||
  let op = e.c.ops.!(ip) in
  op = op_decide_c || op = op_decide_in || op = op_decide_last

(* One step of [pid], in place.  This is the engine's inner loop: int
   loads and stores only — no allocation, no Value.t construction —
   ending in one [refresh_local] that re-sums the process's key
   summand from the fields the step just wrote.  Slice addresses are
   hoisted once, and the dispatch chain is ordered by frequency in
   collect-style protocols (scan, write, read, decide). *)
let step e st base pid =
  let c = e.c in
  let ops = c.ops in
  let scal = base + e.o_scal in
  let i_ip = base + e.o_ip + pid in
  let i_pc = base + e.o_pc + pid in
  let i_last = base + e.o_last + pid in
  let ip = st.!(i_ip) in
  (if ip >= 0 then begin
     let op = ops.!(ip) in
     if op = op_scan then begin
       let off = ops.!(ip + 1) and len = ops.!(ip + 2) in
       (* the view is pure observation: it reaches the trace and, via
          [last], the process's own state — nothing else.  Only [last]
          enters the key, so a scan costs O(1) key work. *)
       if len > 0 then st.!(i_last) <- st.!(base + off);
       st.!(i_pc) <- st.!(i_pc) + 1;
       st.!(scal + s_rcount) <- st.!(scal + s_rcount) + len;
       st.!(i_ip) <- advance_fast e st base pid (ip + 3)
     end
     else if op = op_write_c || op = op_write_in || op = op_write_last then begin
       let r = ops.!(ip + 1) in
       let vcode =
         if op = op_write_c then ops.!(ip + 2)
         else if op = op_write_in then st.!(base + e.o_input + pid)
         else st.!(i_last)
       in
       let msalt = e.msalt.!(r) in
       st.!(scal + s_kmem) <-
         st.!(scal + s_kmem) - mix msalt st.!(base + r) + mix msalt vcode;
       st.!(base + r) <- vcode;
       let w = base + e.o_wmask + (r / 63) in
       let bit = 1 lsl (r mod 63) in
       if st.!(w) land bit = 0 then begin
         st.!(w) <- st.!(w) lor bit;
         st.!(scal + s_nwritten) <- st.!(scal + s_nwritten) + 1
       end;
       st.!(scal + s_wcount) <- st.!(scal + s_wcount) + 1;
       st.!(i_pc) <- st.!(i_pc) + 1;
       st.!(i_ip) <- advance_fast e st base pid (ip + 3)
     end
     else if op = op_read then begin
       st.!(i_last) <- st.!(base + ops.!(ip + 1));
       st.!(i_pc) <- st.!(i_pc) + 1;
       st.!(scal + s_rcount) <- st.!(scal + s_rcount) + 1;
       st.!(i_ip) <- advance_fast e st base pid (ip + 3)
     end
     else begin
       (* decide: the poised-yield step — output, then halt.  Does not
          advance [pc]: only shared-memory ops are program points. *)
       let vcode =
         if op = op_decide_c then ops.!(ip + 1)
         else if op = op_decide_in then st.!(base + e.o_input + pid)
         else st.!(i_last)
       in
       let inst = st.!(base + e.o_inst + pid) in
       st.!(scal + s_kout) <- st.!(scal + s_kout) + io_slot e pid inst vcode;
       st.!(base + e.o_outlog + ((inst - 1) * c.n) + pid) <- vcode;
       st.!(i_ip) <- ip_halted
     end
   end
   else if ip = ip_await then begin
     (* invoke *)
     let inst = st.!(base + e.o_inst + pid) + 1 in
     let vcode =
       if inst <= e.rounds then e.inp.!(((inst - 1) * c.n) + pid) else no_input
     in
     if vcode = no_input then
       invalid_arg (Fmt.str "Vm.step: p%d idle with no input" pid);
     st.!(scal + s_kin) <- st.!(scal + s_kin) + io_slot e pid inst vcode;
     st.!(base + e.o_inst + pid) <- inst;
     st.!(i_pc) <- 0;
     st.!(base + e.o_input + pid) <- vcode;
     st.!(base + e.o_inlog + ((inst - 1) * c.n) + pid) <- vcode;
     st.!(i_ip) <- advance e st base pid 0
   end
   else invalid_arg (Fmt.str "Vm.step: p%d halted" pid));
  refresh_local e st base pid

(* [step], but also report what happened as an [Event.t] — the oracle
   and trace paths.  Decodes operands *before* mutating so the event
   carries the values the interpreter's event would. *)
let step_ev e st base pid =
  let c = e.c in
  let ip = st.(base + e.o_ip + pid) in
  let ev =
    if ip = ip_await then
      let inst = st.(base + e.o_inst + pid) + 1 in
      let vcode =
        if inst <= e.rounds then e.inp.(((inst - 1) * c.n) + pid) else no_input
      in
      if vcode = no_input then
        invalid_arg (Fmt.str "Vm.step: p%d idle with no input" pid)
      else Event.Invoke { pid; instance = inst; input = decode c vcode }
    else if ip = ip_halted then invalid_arg (Fmt.str "Vm.step: p%d halted" pid)
    else
      let op = c.ops.(ip) in
      if op = op_read then
        let r = c.ops.(ip + 1) in
        Event.Did_read { pid; reg = r; value = decode c st.(base + r) }
      else if op = op_write_c || op = op_write_in || op = op_write_last then
        let r = c.ops.(ip + 1) in
        let vcode =
          if op = op_write_c then c.ops.(ip + 2)
          else if op = op_write_in then st.(base + e.o_input + pid)
          else st.(base + e.o_last + pid)
        in
        Event.Did_write { pid; reg = r; value = decode c vcode }
      else if op = op_scan then
        Event.Did_scan { pid; off = c.ops.(ip + 1); len = c.ops.(ip + 2) }
      else
        let vcode =
          if op = op_decide_c then c.ops.(ip + 1)
          else if op = op_decide_in then st.(base + e.o_input + pid)
          else st.(base + e.o_last + pid)
        in
        Event.Output
          { pid; instance = st.(base + e.o_inst + pid); value = decode c vcode }
  in
  step e st base pid;
  ev

(* ------------------------------------------------------------------ *)
(* Decoding a state back into inspectable data *)

type final = {
  memory : Value.t array;
  written : int list;
  num_written : int;
  write_count : int;
  read_count : int;
  inputs : (int * int * Value.t) list;
  outputs : (int * int * Value.t) list;
}

let snapshot e st base =
  let c = e.c in
  let io o =
    let acc = ref [] in
    for inst = e.rounds downto 1 do
      for pid = c.n - 1 downto 0 do
        let k = st.(base + o + ((inst - 1) * c.n) + pid) in
        if k <> no_input then acc := (pid, inst, decode c k) :: !acc
      done
    done;
    !acc
  in
  {
    memory = Array.init c.registers (fun r -> decode c st.(base + r));
    written =
      List.filter
        (fun r -> st.(base + e.o_wmask + (r / 63)) land (1 lsl (r mod 63)) <> 0)
        (List.init c.registers Fun.id);
    num_written = st.(base + e.o_scal + s_nwritten);
    write_count = st.(base + e.o_scal + s_wcount);
    read_count = st.(base + e.o_scal + s_rcount);
    inputs = io e.o_inlog;
    outputs = io e.o_outlog;
  }

(* ------------------------------------------------------------------ *)
(* Drivers, mirroring [Exec.run]'s loop (fuel check before the
   scheduler probe; invalid-pick errors match). *)

let make_state e =
  let st = Array.make e.words 0 in
  init e st 0;
  st

(* Event-free driver, in place: the bench and leaf-completion path. *)
let drive e st base ~sched ~max_steps =
  let vm_step = step in
  let runnable = runnable e st base in
  let rec go step =
    if step >= max_steps then (step, Exec.Fuel_exhausted)
    else
      match sched.Schedule.next ~step ~runnable with
      | None -> (step, Exec.All_quiescent)
      | Some pid ->
        vm_step e st base pid;
        go (step + 1)
  in
  go 0

type vresult = {
  steps : int;
  stopped : Exec.stop_reason;
  trace : Event.t list;  (* chronological; empty unless [record] *)
  final : final;
}

let run ?(record = false) ?sink ?(max_steps = 1_000_000) ~sched e =
  let st = make_state e in
  let observe = match sink with Some f -> f | None -> fun _ -> () in
  let runnable = runnable e st 0 in
  let rec go step trace =
    if step >= max_steps then (step, Exec.Fuel_exhausted, trace)
    else
      match sched.Schedule.next ~step ~runnable with
      | None -> (step, Exec.All_quiescent, trace)
      | Some pid ->
        let ev = step_ev e st 0 pid in
        observe ev;
        go (step + 1) (if record then ev :: trace else trace)
  in
  let steps, stopped, trace = go 0 [] in
  { steps; stopped; trace = List.rev trace; final = snapshot e st 0 }
