(* The execution runner: drives a configuration under a scheduler.

   Invocation policy: when the scheduler picks an idle process, the
   runner invokes that process's next operation using [inputs] (a pure
   function from (pid, instance) to the input value, or None when the
   process has no further operations — one-shot tasks return None for
   instance 2). *)

type stop_reason =
  | All_quiescent   (* no process is runnable: every live process finished *)
  | Fuel_exhausted  (* max_steps reached with runnable processes left *)

type result = {
  config : Config.t;
  steps : int;
  stopped : stop_reason;
  trace : Event.t list;  (* chronological; empty unless [record] *)
}

(* [sink] is called on every event as it happens, so observers (metric
   registries, span trackers, JSONL export) run in O(1) memory however
   long the schedule; [record] additionally keeps the in-memory list.

   [probe] is the post-state hook: unlike [sink] it also sees the step
   index and the configuration *after* the event, which is what
   coverage timelines need (which registers are poised-covered now).
   Shm cannot depend on the observability layer, so the hook is a bare
   function — Obs.Coverage supplies one.  Like [sink] it is hoisted
   once per run: absent means one extra [match] at startup and nothing
   per step. *)
let run ?(record = false) ?sink ?probe ?(max_steps = 1_000_000) ~sched ~inputs config =
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let observe = match sink with Some f -> f | None -> fun _ -> () in
  let observe_config =
    match probe with Some f -> f | None -> fun ~step:_ _ _ -> ()
  in
  (* one [runnable] closure for the whole run, reading the current
     configuration through a cell — the scheduler probes it up to n
     times per step, so a per-step closure shows up in profiles *)
  let cur = ref config in
  let runnable pid = Config.runnable !cur ~has_input pid in
  let rec go config step trace =
    if step >= max_steps then
      { config; steps = step; stopped = Fuel_exhausted; trace = List.rev trace }
    else (
      cur := config;
      match sched.Schedule.next ~step ~runnable with
      | None -> { config; steps = step; stopped = All_quiescent; trace = List.rev trace }
      | Some pid ->
        let config, ev =
          match Config.proc config pid with
          | Program.Await _ ->
            let inst = Config.instance config pid + 1 in
            let input =
              match inputs ~pid ~instance:inst with
              | Some v -> v
              | None -> invalid_arg "Exec.run: scheduler picked process with no input"
            in
            Config.invoke config pid input
          | Program.Stop ->
            invalid_arg "Exec.run: scheduler picked a halted process"
          | Program.Op _ | Program.Yield _ -> Config.step config pid
        in
        observe ev;
        observe_config ~step ev config;
        go config (step + 1) (if record then ev :: trace else trace))
  in
  go config 0 []

(* Convenience input functions. *)

(* One-shot: process [pid] proposes [inputs.(pid)] once. *)
let oneshot_inputs values ~pid ~instance =
  if instance = 1 && pid < Array.length values then Some values.(pid) else None

(* Repeated: [rounds] instances; instance i of pid proposes f pid i. *)
let repeated_inputs ~rounds f ~pid ~instance =
  if instance >= 1 && instance <= rounds then Some (f pid instance) else None

let pp_trace ppf trace =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Event.pp) trace
