(* Universal register value type, hash-consed.

   Registers in the simulated shared memory hold values of this single
   type so that configurations are first-class, comparable, printable
   data.  The algorithms in the paper store tuples such as [(pref, id)]
   (Figure 3) or [(pref, id, t, history)] (Figure 4); these are encoded
   with [pair] and [list].

   Representation.  Every node carries its structural hash, computed
   once at construction from the children's stored hashes, so [hash] is
   O(1) and [equal] can reject almost all unequal pairs with a single
   int comparison.  On top of that, constructors intern nodes in a
   per-domain weak set: within a domain, structurally equal values
   built through this interface are physically equal, so [equal] is a
   pointer test on the hot paths (state hashing, abstract value sets,
   linearization matching).  Interning is per-domain on purpose — a
   global table would put a lock on the simulator's hottest allocation
   path and the exploration engine runs one independent simulator per
   domain.  Values that cross domains (work stealing hands nodes
   around) are still compared correctly: [equal] falls back to a
   hash-guarded structural walk whose recursive calls hit the pointer
   fast path as soon as the two values share interned substructure.

   The stored hash is a pure function of the structure (never of
   physical identity — the GC moves blocks), so hashes and the orders
   derived from them are deterministic across runs and domains. *)

type t = { node : view; h : int }

and view =
  | Bot                       (* the initial value ⊥ of every register *)
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

let view t = t.node

let hash t = t.h

(* ---- structural hashing (64-bit-ish mixing on native ints) ---- *)

(* SplitMix-style finalizer adapted to OCaml's 63-bit native ints (the
   multipliers are the usual 64-bit constants truncated to fit). *)
let mix h k =
  let h = (h lxor k) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 29)) * 0x1B03738712FAD5C9 in
  h lxor (h lsr 32)

let hash_string s =
  (* FNV-1a (offset truncated to 63 bits); strings here are tiny *)
  let h = ref 0x2bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) s;
  !h

let hash_of_node = function
  | Bot -> 0x42644f54 (* arbitrary fixed constants per head *)
  | Int i -> mix 0x17 i
  | Str s -> mix 0x2b (hash_string s)
  | Pair (a, b) -> mix (mix 0x3d a.h) b.h
  | List vs -> List.fold_left (fun h v -> mix h v.h) 0x51 vs

(* ---- shallow equality for the intern table: children by pointer
   first, then full recursive equality (cross-domain constituents) ---- *)

let rec equal a b =
  a == b
  || a.h = b.h
     &&
     match (a.node, b.node) with
     | Bot, Bot -> true
     | Int x, Int y -> x = y
     | Str x, Str y -> String.equal x y
     | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
     | List xs, List ys -> (
       try List.for_all2 equal xs ys with Invalid_argument _ -> false)
     | (Bot | Int _ | Str _ | Pair _ | List _), _ -> false

(* ---- per-domain interning ---- *)

module W = Weak.Make (struct
  type nonrec t = t

  let equal = equal
  let hash t = t.h land max_int
end)

let table_key = Domain.DLS.new_key (fun () -> W.create 1024)

let intern node =
  let candidate = { node; h = hash_of_node node } in
  W.merge (Domain.DLS.get table_key) candidate

(* ---- constructors ---- *)

let bot = intern Bot

let int i = intern (Int i)

let str s = intern (Str s)

let pair a b = intern (Pair (a, b))

let list vs = intern (List vs)

(* Encoding of small tuples, so that structural equality matches the
   paper's tuple equality. *)
let tuple = function
  | [] -> list []
  | [ v ] -> v
  | vs -> list vs

(* ---- ordering ---- *)

(* Total order consistent with [equal]; purely structural (independent
   of the stored hash), so the order is stable and readable.  The
   physical-equality shortcut makes comparisons of interned values that
   share structure cheap. *)
let rec compare a b =
  if a == b then 0
  else
    let tag = function
      | Bot -> 0
      | Int _ -> 1
      | Str _ -> 2
      | Pair _ -> 3
      | List _ -> 4
    in
    match (a.node, b.node) with
    | Bot, Bot -> 0
    | Int x, Int y -> Stdlib.compare x y
    | Str x, Str y -> String.compare x y
    | Pair (x1, y1), Pair (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
    | List xs, List ys -> List.compare compare xs ys
    | _, _ -> Stdlib.compare (tag a.node) (tag b.node)

let rec pp ppf t =
  match t.node with
  | Bot -> Fmt.string ppf "⊥"
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a,%a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ";") pp) vs

let to_string v = Fmt.str "%a" pp v

let is_bot t = match t.node with
  | Bot -> true
  | Int _ | Str _ | Pair _ | List _ -> false

(* Accessors used by the algorithms; they fail loudly on encoding bugs. *)

let to_int t =
  match t.node with
  | Int i -> i
  | _ -> invalid_arg (Fmt.str "Value.to_int: %a" pp t)

let fst t =
  match t.node with
  | Pair (a, _) -> a
  | _ -> invalid_arg (Fmt.str "Value.fst: %a" pp t)

let snd t =
  match t.node with
  | Pair (_, b) -> b
  | _ -> invalid_arg (Fmt.str "Value.snd: %a" pp t)

let to_list t =
  match t.node with
  | List vs -> vs
  | _ -> invalid_arg (Fmt.str "Value.to_list: %a" pp t)
