(** Process programs as a free monad over shared-memory operations.

    A process is a pure value of type {!t}: the head constructor is the
    step the process is poised to perform, and continuations produce
    the rest of the program.  This representation gives the model the
    three properties the paper's proofs need:

    - determinism: the next step is a function of the local state;
    - clonability: configurations are persistent values, so the
      Theorem 2 adversary can branch executions and splice fragments;
    - poised-step inspection: "process q is poised to write register R"
      (the covering argument) is a pattern match on the head. *)

type op =
  | Read of int                 (** read one register *)
  | Write of int * Value.t      (** write one register *)
  | Scan of int * int           (** atomic scan: offset, length *)

type res =
  | RUnit
  | RVal of Value.t
  | RVec of Value.t array

type t =
  | Stop                        (** halted: takes no more steps *)
  | Op of op * (res -> t)       (** poised at a shared-memory step *)
  | Yield of Value.t * t
      (** respond to the current operation with an output value — step
          kind (4) of the paper's model *)
  | Await of (Value.t -> t)
      (** idle: waits for the next invocation, which carries the input *)

(** {1 Smart constructors} *)

val read : int -> (Value.t -> t) -> t
val write : int -> Value.t -> (unit -> t) -> t
val scan : off:int -> len:int -> (Value.t array -> t) -> t
val yield : Value.t -> t -> t
val await : (Value.t -> t) -> t
val stop : t

val pp_op : Format.formatter -> op -> unit

(** {1 Poised-step inspection} *)

val poised_op : t -> op option

(** {1 Step footprints}

    The registers the poised step would read and write, decidable
    without executing it.  {!Spec.Dpor} builds its independence
    relation on footprints: two steps of different processes commute
    iff neither writes a register the other touches. *)

type footprint = { reads : int list; writes : int list }

val empty_footprint : footprint

(** Footprint of the poised step.  [Yield], [Await] and [Stop] heads
    have the empty footprint — they touch no shared memory. *)
val footprint : t -> footprint

(** No shared-memory access at all: such a step is independent of
    every step of every other process. *)
val footprint_is_local : footprint -> bool

(** [independent a b]: steps with footprints [a] and [b], taken by
    {e different} processes, commute — performing them in either order
    reaches the same memory state and observes the same values. *)
val independent : footprint -> footprint -> bool

(** [poised_write p] is [Some r] iff the head step is a write to [r]. *)
val poised_write : t -> int option

(** {1 Abstract stepping}

    Hooks for driving a program without a memory — the static analyzer
    ({!Analyze.Absint}) fabricates the result of each operation and
    observes the continuation.  [feed] validates the result shape
    against the poised operation ([Read] expects [RVal], [Write]
    expects [RUnit], [Scan] expects an [RVec] of the scanned length)
    and returns [None] on a mismatch or a non-[Op] head.  The applied
    continuation may itself raise on value encodings no real execution
    produces; callers catch. *)

val feed : t -> res -> t option

(** [feed] specialized per operation kind. *)
val feed_read : t -> Value.t -> t option

val feed_write_ack : t -> t option
val feed_scan : t -> Value.t array -> t option

(** Split a [Yield] head into the output value and the rest. *)
val take_yield : t -> (Value.t * t) option

(** Apply an [Await] head to an invocation input. *)
val start : t -> Value.t -> t option

val is_idle : t -> bool
val is_halted : t -> bool
val is_active : t -> bool
