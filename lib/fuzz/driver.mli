(** The budgeted fuzz loop.

    [run ~oracle ~budget ~seed ()] draws [budget] inputs from a
    seed-deterministic {!Corpus}, admits the interesting ones by
    {!Coverage} feedback, and judges each with the chosen {!Oracle}.
    On the first divergence the loop stops and shrinks the failing
    (program, schedule) pair {e jointly} — top-level program steps and
    schedule entries share one index space fed to
    {!Spec.Shrink.minimize_generic} — to a 1-minimal witness: removing
    any single remaining program step or schedule entry makes the
    divergence disappear.

    Everything is deterministic in (oracle, budget, seed, sizes):
    re-running the same campaign reproduces the same witness, which is
    what the printed replay line relies on. *)

type witness = {
  program : Gen.program;  (** shrunk *)
  schedule : Gen.schedule;  (** shrunk *)
  oracle : Oracle.kind;
  message : string;  (** the divergence, as re-judged on the shrunk pair *)
  seed : int;
  found_at : int;  (** exec index of the original divergence (1-based) *)
  shrink_replays : int;
  shrink_removed : int;  (** program steps + schedule entries removed *)
}

type stats = {
  oracle : Oracle.kind;
  seed : int;
  budget : int;
  execs : int;  (** inputs judged (≤ budget; < on early divergence) *)
  interesting : int;  (** inputs that earned new coverage bits *)
  corpus_size : int;
  coverage_bits : int;  (** accumulated distinct bits *)
  curve : (int * int) list;
      (** (exec index, cumulative bits) at each coverage increase *)
  divergences : int;  (** 0 or 1 — the loop stops at the first *)
}

type outcome = {
  stats : stats;
  corpus : Corpus.entry list;
  witness : witness option;
}

(** [?replay] — corpus seeds (from a previous campaign's
    [--corpus-out] file) judged {e before} any generation.  They
    consume budget, earn coverage, and the interesting ones enter the
    live corpus so mutation builds on them — this is how
    [sa_run fuzz --corpus-in] persists progress across CI runs.  A
    witness found with a non-empty [replay] needs the same seed list
    to reproduce. *)
val run :
  ?sizes:Gen.sizes ->
  ?replay:(Gen.program * Gen.schedule) list ->
  oracle:Oracle.kind -> budget:int -> seed:int -> unit -> outcome

(** Joint 1-minimal shrink of a known-failing pair; [None] iff the
    pair does not fail [oracle] (nothing to shrink). *)
val shrink :
  oracle:Oracle.kind -> seed:int -> found_at:int ->
  Gen.program -> Gen.schedule -> witness option

(** Same, against an arbitrary judgement — the tests inject synthetic
    divergences to pin 1-minimality of the joint index space.  [kind]
    only labels the witness. *)
val shrink_with :
  check:(Gen.program -> Gen.schedule -> string option) ->
  kind:Oracle.kind -> seed:int -> found_at:int ->
  Gen.program -> Gen.schedule -> witness option

(** The command that reproduces the witness deterministically. *)
val replay_line : witness -> string

val pp_witness : Format.formatter -> witness -> unit
val pp_stats : Format.formatter -> stats -> unit
