(* Sized random-protocol generation.

   Programs are first-order data (step lists) compiled to the free
   monad, not closures built directly: the corpus mutates them, the
   shrinker drops steps from them, and witnesses print them.  The
   invariants the rest of the fuzzer leans on — all register accesses
   in bounds, all iteration bounded, decide-then-halt — hold by
   construction here, and nowhere else needs to re-establish them. *)

(* The step language is the static analyzer's IR, re-exported: every
   generated protocol is directly a dataflow/optimizer subject, and
   the corpus's textual form round-trips through [Analyze.Ir.parse]. *)
type src = Analyze.Ir.src = Const of int | Input | Last

type step = Analyze.Ir.step =
  | Read of int
  | Write of int * src
  | Scan of int * int
  | Loop of int * step list
  | Decide of src

type program = Analyze.Ir.prog = { registers : int; n : int; steps : step list }

type schedule = int list

(* Bump when generation, mutation or the textual form changes shape:
   corpus files carry it, and CI keys its corpus cache on it — stale
   seeds are regenerated rather than replayed wrongly. *)
let version = "2"

(* ------------------------------------------------------------------ *)
(* Generation *)

type sizes = {
  max_registers : int;
  max_procs : int;
  max_steps : int;
  max_loop : int;
  max_sched : int;
}

let default_sizes =
  { max_registers = 4; max_procs = 4; max_steps = 7; max_loop = 3; max_sched = 48 }

let gen_src rng =
  match Shm.Rng.int rng 4 with
  | 0 -> Input
  | 1 -> Const (Shm.Rng.int rng 3)
  | _ -> Last (* bias toward data flow: written values depend on reads *)

(* One step.  [depth] > 0 allows a (shallower) loop; loop bodies are
   decide-free so the body's step count is exact fuel. *)
let rec gen_step rng ~registers ~sizes ~depth =
  let reg () = Shm.Rng.int rng registers in
  match Shm.Rng.int rng (if depth > 0 then 10 else 8) with
  | 0 | 1 | 2 -> Read (reg ())
  | 3 | 4 | 5 -> Write (reg (), gen_src rng)
  | 6 | 7 ->
    let off = Shm.Rng.int rng registers in
    let len = 1 + Shm.Rng.int rng (registers - off) in
    Scan (off, len)
  | _ ->
    let count = 2 + Shm.Rng.int rng (max 1 (sizes.max_loop - 1)) in
    let body_len = 1 + Shm.Rng.int rng 2 in
    Loop
      ( count,
        List.init body_len (fun _ ->
            gen_step rng ~registers ~sizes ~depth:(depth - 1)) )

let generate ?(sizes = default_sizes) rng =
  let registers = 1 + Shm.Rng.int rng sizes.max_registers in
  let n = 2 + Shm.Rng.int rng (max 1 (sizes.max_procs - 1)) in
  let len = 1 + Shm.Rng.int rng sizes.max_steps in
  let steps =
    List.init len (fun _ -> gen_step rng ~registers ~sizes ~depth:1)
  in
  (* every process outputs: end on a Decide (mid-list Decides halt
     early, which is fine — the tail is dead code the shrinker eats) *)
  let steps =
    match List.rev steps with
    | Decide _ :: _ -> steps
    | _ -> steps @ [ Decide (gen_src rng) ]
  in
  { registers; n; steps }

let gen_schedule ?(sizes = default_sizes) rng ~n =
  let len = n + Shm.Rng.int rng (max 1 (sizes.max_sched - n + 1)) in
  List.init len (fun _ -> Shm.Rng.int rng n)

(* ------------------------------------------------------------------ *)
(* Structure *)

let rec step_fuel = function
  | Read _ | Write _ | Scan _ -> 1
  | Decide _ -> 1
  | Loop (count, body) ->
    count * List.fold_left (fun acc s -> acc + step_fuel s) 0 body

let flat_length p = List.fold_left (fun acc s -> acc + step_fuel s) 0 p.steps

let oob_steps p =
  let bad_reg r = r < 0 || r >= p.registers in
  let rec bad = function
    | Read r -> bad_reg r
    | Write (r, _) -> bad_reg r
    | Scan (off, len) -> off < 0 || len < 0 || off + len > p.registers
    | Loop (_, body) -> List.exists bad body
    | Decide _ -> false
  in
  let rec collect acc = function
    | [] -> List.rev acc
    | s :: tl ->
      let acc = if bad s then s :: acc else acc in
      let acc =
        match s with
        | Loop (_, body) -> List.rev_append (collect [] body) acc
        | _ -> acc
      in
      collect acc tl
  in
  collect [] p.steps

(* ------------------------------------------------------------------ *)
(* Compilation now lives in [Shm.Vm] (PR 10): the free-monad compiler
   is the reference semantics the bytecode engine is pinned to, so
   both live next to each other in shm and this module delegates.
   [Vm.to_program] is CPS over the step list, threading the process's
   "last observation"; loops unroll at compile time. *)

let compile = Shm.Vm.to_program
let config = Shm.Vm.config

let inputs ~pid ~instance =
  if instance = 1 then Some (Agreement.Runner.default_input ~pid ~instance)
  else None

(* Replay through the shared stepping rule so a fuzz schedule means
   exactly what a model-checker counterexample schedule means; record
   the trace by probing around each step. *)
let run ?backend p schedule =
  let cursor = ref schedule in
  let sched =
    {
      Shm.Schedule.name = "fuzz-replay";
      next =
        (fun ~step:_ ~runnable ->
          let rec pick () =
            match !cursor with
            | [] -> None
            | pid :: tl ->
              cursor := tl;
              (* mutated schedules may carry pids from a program with
                 more processes; skip them like blocked pids *)
              if pid >= 0 && pid < p.n && runnable pid then Some pid
              else pick ()
          in
          pick ());
    }
  in
  Shm.Exec.run ~record:true ~sched ~inputs
    ~max_steps:(List.length schedule + 1)
    (config ?backend p)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let pp_step = Analyze.Ir.pp_step
let to_string = Analyze.Ir.to_string
let pp = Analyze.Ir.pp
let parse = Analyze.Ir.parse

let schedule_to_string s = String.concat " " (List.map string_of_int s)

let schedule_of_string s =
  let fields =
    String.split_on_char ' ' (String.trim s)
    |> List.filter (fun f -> f <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: tl -> (
      match int_of_string_opt f with
      | Some pid -> go (pid :: acc) tl
      | None -> Error (Fmt.str "bad schedule entry %S" f))
  in
  go [] fields
