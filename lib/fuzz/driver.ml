type witness = {
  program : Gen.program;
  schedule : Gen.schedule;
  oracle : Oracle.kind;
  message : string;
  seed : int;
  found_at : int;
  shrink_replays : int;
  shrink_removed : int;
}

type stats = {
  oracle : Oracle.kind;
  seed : int;
  budget : int;
  execs : int;
  interesting : int;
  corpus_size : int;
  coverage_bits : int;
  curve : (int * int) list;
  divergences : int;
}

type outcome = {
  stats : stats;
  corpus : Corpus.entry list;
  witness : witness option;
}

(* ------------------------------------------------------------------ *)
(* Joint shrinking.  One index space over both halves of the input:
   [0, plen) are top-level program steps, [plen, plen+slen) are
   schedule entries.  The ddmin core hands back surviving index
   subsets (possibly reordered by solo-collapse); rebuilding sorts
   them, so a candidate is judged as a subset — which is exactly the
   structure "remove any one element and the divergence disappears"
   quantifies over. *)

let shrink_with ~check ~kind ~seed ~found_at (p0 : Gen.program) s0 =
  let plen = List.length p0.Gen.steps in
  let slen = List.length s0 in
  let rebuild idxs =
    let keep = List.sort_uniq compare idxs in
    let mem i = List.mem i keep in
    let steps = List.filteri (fun i _ -> mem i) p0.Gen.steps in
    let sched = List.filteri (fun i _ -> mem (plen + i)) s0 in
    ({ p0 with Gen.steps }, sched)
  in
  let replay idxs =
    let p, s = rebuild idxs in
    Option.map (fun msg -> (p, s, msg)) (check p s)
  in
  match
    Spec.Shrink.minimize_generic ~replay (List.init (plen + slen) Fun.id)
  with
  | None -> None
  | Some sh ->
    let program, schedule, message = sh.Spec.Shrink.witness in
    Some
      {
        program;
        schedule;
        oracle = kind;
        message;
        seed;
        found_at;
        shrink_replays = sh.Spec.Shrink.g_replays;
        shrink_removed = plen + slen - List.length sh.Spec.Shrink.schedule;
      }

let shrink ~oracle ~seed ~found_at p0 s0 =
  shrink_with ~check:(Oracle.check oracle) ~kind:oracle ~seed ~found_at p0 s0

(* ------------------------------------------------------------------ *)
(* The loop *)

let run ?sizes ?(replay = []) ~oracle ~budget ~seed () =
  let corpus = Corpus.create ?sizes ~seed () in
  let acc = Coverage.acc_create () in
  let curve = ref [] in
  let interesting = ref 0 in
  let witness = ref None in
  let execs = ref 0 in
  let judge p sched =
    let credit = Coverage.add acc (Coverage.signature p sched) in
    if credit > 0 then begin
      incr interesting;
      Corpus.record corpus p sched ~credit;
      curve := (!execs, Coverage.acc_cardinal acc) :: !curve
    end;
    match Oracle.check oracle p sched with
    | None -> ()
    | Some msg ->
      (* shrink reproduces the divergence by construction; keep the
         unshrunk pair if the oracle flaked (it must not — the
         determinism oracle exists to catch exactly that) *)
      let w =
        match shrink ~oracle ~seed ~found_at:!execs p sched with
        | Some w -> w
        | None ->
          {
            program = p;
            schedule = sched;
            oracle;
            message = msg;
            seed;
            found_at = !execs;
            shrink_replays = 0;
            shrink_removed = 0;
          }
      in
      witness := Some w;
      raise Exit
  in
  (try
     (* replayed seeds consume budget first, and coverage admits them
        into the live corpus so generation mutates from them *)
     List.iter
       (fun (p, sched) ->
         if !execs < budget then begin
           incr execs;
           judge p sched
         end)
       replay;
     while !execs < budget do
       incr execs;
       let p, sched = Corpus.next corpus in
       judge p sched
     done
   with Exit -> ());
  {
    stats =
      {
        oracle;
        seed;
        budget;
        execs = !execs;
        interesting = !interesting;
        corpus_size = Corpus.size corpus;
        coverage_bits = Coverage.acc_cardinal acc;
        curve = List.rev !curve;
        divergences = (if !witness = None then 0 else 1);
      };
    corpus = Corpus.entries corpus;
    witness = !witness;
  }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let replay_line (w : witness) =
  Fmt.str "sa_run fuzz --oracle %s --budget %d --seed %d"
    (Oracle.name w.oracle) w.found_at w.seed

let pp_witness ppf (w : witness) =
  Fmt.pf ppf
    "@[<v>divergence (%s oracle, exec %d): %s@,\
     program:  %s@,\
     schedule: %s@,\
     shrink:   %d replays, %d steps removed (1-minimal)@,\
     replay:   %s@]"
    (Oracle.name w.oracle) w.found_at w.message
    (Gen.to_string w.program)
    (Gen.schedule_to_string w.schedule)
    w.shrink_replays w.shrink_removed (replay_line w)

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>oracle %s: %d/%d execs, %d interesting, corpus %d, %d coverage \
     bits, %d divergence(s)@]"
    (Oracle.name s.oracle) s.execs s.budget s.interesting s.corpus_size
    s.coverage_bits s.divergences
