(** Deterministic, seed-replayable in-memory corpus.

    The corpus owns the fuzzer's randomness: one {!Shm.Rng.t} seeded at
    {!create} drives generation, entry selection, and mutation, so two
    corpora with the same seed propose byte-identical input sequences
    ([--seed] replays a whole campaign).  Entries carry the coverage
    credit they earned when admitted; {!next} is biased toward entries
    with more credit (they sit in productive regions of the input
    space) and falls back to fresh generation.

    Mutation operators preserve {!Gen} well-formedness: register
    indices are drawn or renumbered within the entry's own budget, and
    scan ranges are re-fitted.  {!Oracle} and the tests rely on this
    closure property. *)

type entry = {
  program : Gen.program;
  schedule : Gen.schedule;
  credit : int;  (** new coverage bits contributed when admitted *)
}

type t

(** [create ?sizes ~seed ()] — an empty corpus with its own PRNG. *)
val create : ?sizes:Gen.sizes -> seed:int -> unit -> t

val size : t -> int
val entries : t -> entry list

(** Next input to try: a fresh generated pair when the corpus is empty
    (and with a fixed small probability always), otherwise a mutation
    of a credit-biased pick. *)
val next : t -> Gen.program * Gen.schedule

(** Admit an input that earned coverage ([credit > 0]); inputs with no
    new bits are dropped. *)
val record : t -> Gen.program -> Gen.schedule -> credit:int -> unit

(** {1 Mutation operators} (exposed for the closure tests) *)

(** Splice: head of [a] + tail of [b]; registers is the max of the two
    (indices of both stay in bounds). *)
val splice : Shm.Rng.t -> Gen.program -> Gen.program -> Gen.program

(** Insert one freshly drawn step at a random position. *)
val insert_step : ?sizes:Gen.sizes -> Shm.Rng.t -> Gen.program -> Gen.program

(** Delete one random top-level step (identity on 1-step programs). *)
val delete_step : Shm.Rng.t -> Gen.program -> Gen.program

(** Renumber: apply a random register permutation to every access
    (footprint-shape preserving, bounds preserving). *)
val renumber : Shm.Rng.t -> Gen.program -> Gen.program

(** Mutate a schedule: splice/insert/delete pid entries over the
    program's own process count. *)
val mutate_schedule :
  ?sizes:Gen.sizes -> Shm.Rng.t -> n:int -> Gen.schedule -> Gen.schedule
