(* Deterministic corpus with well-formedness-preserving mutations.

   All randomness flows from the single PRNG created with the seed;
   nothing here reads clocks, addresses, or global state, which is
   what makes a whole campaign replayable from (seed, budget). *)

type entry = { program : Gen.program; schedule : Gen.schedule; credit : int }

type t = {
  rng : Shm.Rng.t;
  sizes : Gen.sizes;
  mutable items : entry list;  (* newest first *)
  mutable total_credit : int;
}

let create ?(sizes = Gen.default_sizes) ~seed () =
  { rng = Shm.Rng.create seed; sizes; items = []; total_credit = 0 }

let size t = List.length t.items

let entries t = List.rev t.items

(* ------------------------------------------------------------------ *)
(* Mutation operators.  Each preserves the Gen invariants: indices in
   [0, registers), scan ranges fitted, loops bounded, so mutated
   programs are exactly as well-formed as generated ones. *)

let take k l = List.filteri (fun i _ -> i < k) l

let drop k l = List.filteri (fun i _ -> i >= k) l

(* Re-fit every access of [steps] into [registers] (used when a splice
   or renumber changes the frame).  Scan lengths are clamped to the
   space left of their offset. *)
let rec refit ~registers steps =
  List.map
    (function
      | Gen.Read r -> Gen.Read (r mod registers)
      | Gen.Write (r, s) -> Gen.Write (r mod registers, s)
      | Gen.Scan (off, len) ->
        let off = off mod registers in
        Gen.Scan (off, min len (registers - off))
      | Gen.Loop (c, body) -> Gen.Loop (c, refit ~registers body)
      | Gen.Decide s -> Gen.Decide s)
    steps

let splice rng (a : Gen.program) (b : Gen.program) =
  let registers = max a.Gen.registers b.Gen.registers in
  let cut xs = Shm.Rng.int rng (1 + List.length xs) in
  let head = take (cut a.Gen.steps) a.Gen.steps in
  let tail = drop (cut b.Gen.steps) b.Gen.steps in
  let steps = refit ~registers (head @ tail) in
  let steps = if steps = [] then [ Gen.Decide Gen.Last ] else steps in
  { Gen.registers; n = (if Shm.Rng.bool rng then a.Gen.n else b.Gen.n); steps }

let insert_step ?(sizes = Gen.default_sizes) rng (p : Gen.program) =
  let s =
    (* draw through a 1-step generated program so loop nesting and
       range invariants come from the one generator *)
    match
      (Gen.generate ~sizes:{ sizes with Gen.max_steps = 1 } rng).Gen.steps
    with
    | s :: _ -> refit ~registers:p.Gen.registers [ s ]
    | [] -> []
  in
  let at = Shm.Rng.int rng (1 + List.length p.Gen.steps) in
  { p with Gen.steps = take at p.Gen.steps @ s @ drop at p.Gen.steps }

let delete_step rng (p : Gen.program) =
  match p.Gen.steps with
  | [] | [ _ ] -> p
  | steps ->
    let at = Shm.Rng.int rng (List.length steps) in
    { p with Gen.steps = List.filteri (fun i _ -> i <> at) steps }

let renumber rng (p : Gen.program) =
  let perm = Array.init p.Gen.registers Fun.id in
  Shm.Rng.shuffle rng perm;
  let rec go steps =
    List.map
      (function
        | Gen.Read r -> Gen.Read perm.(r)
        | Gen.Write (r, s) -> Gen.Write (perm.(r), s)
        | Gen.Scan (off, len) ->
          (* a permuted range need not stay contiguous; renumber the
             offset and re-fit the length instead *)
          let off = perm.(off) in
          Gen.Scan (off, min len (p.Gen.registers - off))
        | Gen.Loop (c, body) -> Gen.Loop (c, go body)
        | Gen.Decide s -> Gen.Decide s)
      steps
  in
  { p with Gen.steps = go p.Gen.steps }

let mutate_schedule ?(sizes = Gen.default_sizes) rng ~n sched =
  match Shm.Rng.int rng 3 with
  | 0 ->
    (* splice with a fresh tail *)
    let head = take (Shm.Rng.int rng (1 + List.length sched)) sched in
    head @ Gen.gen_schedule ~sizes rng ~n
  | 1 ->
    let at = Shm.Rng.int rng (1 + List.length sched) in
    take at sched @ (Shm.Rng.int rng n :: drop at sched)
  | _ -> (
    match sched with
    | [] | [ _ ] -> Gen.gen_schedule ~sizes rng ~n
    | _ ->
      let at = Shm.Rng.int rng (List.length sched) in
      List.filteri (fun i _ -> i <> at) sched)

(* ------------------------------------------------------------------ *)
(* Selection and admission *)

let fresh t = (Gen.generate ~sizes:t.sizes t.rng, Gen.gen_schedule ~sizes:t.sizes t.rng ~n:0)

let pick_biased t =
  (* roulette over credit: entries that opened more coverage get
     proportionally more mutation budget *)
  let total = max 1 t.total_credit in
  let target = Shm.Rng.int t.rng total in
  let rec go acc = function
    | [] -> List.hd t.items
    | e :: tl -> if acc + e.credit > target then e else go (acc + e.credit) tl
  in
  go 0 t.items

let next t =
  if t.items = [] || Shm.Rng.int t.rng 4 = 0 then begin
    let p = Gen.generate ~sizes:t.sizes t.rng in
    (p, Gen.gen_schedule ~sizes:t.sizes t.rng ~n:p.Gen.n)
  end
  else begin
    let e = pick_biased t in
    let p =
      match Shm.Rng.int t.rng 5 with
      | 0 ->
        let other =
          if t.items = [] then e.program else (pick_biased t).program
        in
        splice t.rng e.program other
      | 1 -> insert_step ~sizes:t.sizes t.rng e.program
      | 2 -> delete_step t.rng e.program
      | 3 -> renumber t.rng e.program
      | _ -> e.program (* keep the program, mutate only the schedule *)
    in
    let sched = mutate_schedule ~sizes:t.sizes t.rng ~n:p.Gen.n e.schedule in
    (p, sched)
  end

let record t program schedule ~credit =
  if credit > 0 then begin
    t.items <- { program; schedule; credit } :: t.items;
    t.total_credit <- t.total_credit + credit
  end

let _ = fresh (* selection goes through [next]; kept for symmetry *)
