(** Sized random-protocol generation: well-formed, loop-free and
    bounded-loop {!Shm.Program.t} terms as first-order data.

    A fuzz input is a {!program} — a step list every process runs
    plus a register budget — and a pid {!schedule}.  Both are plain
    data, so the corpus can mutate them ({!Corpus}), the shrinker can
    drop pieces of them ({!Driver}), and a textual rendering replays
    them exactly.  Programs are well-formed {e by construction}:

    - every register index is in [0, registers) and every scan range
      fits ([off + len <= registers]), so the lint's out-of-bounds rule
      can never fire on generated terms;
    - iteration is bounded ([Loop] carries a constant count, bodies are
      decide-free), so every process halts within {!flat_length} shared
      steps of solo execution;
    - a [Decide] compiles to [Yield] followed by [Stop] — output is the
      last visible action, so the write-after-decide lint cannot fire
      either — and {!generate} guarantees a trailing [Decide]. *)

(** Where a written or decided value comes from: a small constant, the
    invocation input, or the last value this process read (⊥ before the
    first read; scans observe their first component).

    The step language {e is} the static analyzer's IR
    ({!Analyze.Ir}), re-exported: every generated protocol is directly
    a dataflow/optimizer subject. *)
type src = Analyze.Ir.src = Const of int | Input | Last

type step = Analyze.Ir.step =
  | Read of int
  | Write of int * src
  | Scan of int * int  (** offset, length *)
  | Loop of int * step list
      (** bounded iteration: the body runs exactly [count] times *)
  | Decide of src  (** yield the value and halt *)

type program = Analyze.Ir.prog = {
  registers : int;
  n : int;  (** processes; all run [steps], with distinct inputs *)
  steps : step list;
}

type schedule = int list
(** pids in intended step order; unrunnable entries are skipped *)

(** Bumped when generation, mutation or the textual form changes
    shape; corpus files carry it and CI keys its corpus cache on it. *)
val version : string

(** {1 Generation} *)

type sizes = {
  max_registers : int;  (** register budget drawn from [1 .. max] *)
  max_procs : int;  (** processes drawn from [2 .. max] *)
  max_steps : int;  (** top-level steps drawn from [1 .. max] *)
  max_loop : int;  (** loop count drawn from [2 .. max] *)
  max_sched : int;  (** schedule length drawn from [n .. max] *)
}

val default_sizes : sizes

(** [generate ?sizes rng] draws a fresh well-formed program.  All
    randomness comes from [rng], so generation is replayable. *)
val generate : ?sizes:sizes -> Shm.Rng.t -> program

(** [gen_schedule ?sizes rng ~n] draws a pid schedule over [0 .. n-1]. *)
val gen_schedule : ?sizes:sizes -> Shm.Rng.t -> n:int -> schedule

(** {1 Structure} *)

(** Shared-memory ops of one solo execution (loop bodies multiplied by
    their counts) — the solo-termination fuel bound. *)
val flat_length : program -> int

(** Registers out of bounds or scan ranges overflowing: always [[]] for
    generated programs (the well-formedness invariant, tested). *)
val oob_steps : program -> step list

(** {1 Compilation and execution} *)

(** Compile to the free-monad form; process [pid]'s copy.  The program
    awaits one invocation, runs the steps, and halts. *)
val compile : program -> pid:int -> Shm.Program.t

(** Initial configuration: [registers] registers, [n] compiled
    processes.  [backend] defaults to {!Shm.Memory.get_default}. *)
val config : ?backend:Shm.Memory.backend -> program -> Shm.Config.t

(** The input of every fuzzed invocation:
    {!Agreement.Runner.default_input} for instance 1, none after — the
    same input space the analyzer assumes. *)
val inputs : pid:int -> instance:int -> Shm.Value.t option

(** [run ?backend program schedule] replays the schedule from the
    initial configuration with the shared stepping rule
    ({!Spec.Counterex.step_pid}), skipping unrunnable pids, and records
    the trace.  Deterministic. *)
val run :
  ?backend:Shm.Memory.backend ->
  program ->
  schedule ->
  Shm.Exec.result

(** {1 Rendering} *)

val pp_step : Format.formatter -> step -> unit
val pp : Format.formatter -> program -> unit

(** One-line compact form, e.g.
    ["r3 n2 : R0; W1<-in; L2[R1; W0<-last]; D last"] — the replay
    currency printed with witnesses. *)
val to_string : program -> string

(** Inverse of {!to_string} ({!Analyze.Ir.parse}): corpus seeds and
    command-line protocols round-trip. *)
val parse : string -> (program, string) result

val schedule_to_string : schedule -> string

(** Inverse of {!schedule_to_string} (space-separated pids). *)
val schedule_of_string : string -> (schedule, string) result
