(** Differential oracles: what counts as a divergence.

    Each oracle is a deterministic judgement on a (program, schedule)
    pair — [None] means the input passed, [Some msg] names the
    divergence.  Determinism matters twice over: the fuzz campaign is
    replayable from its seed, and the shrinker needs "still fails" to
    be a stable predicate while it deletes steps.

    - {!Analyzer} — soundness of {!Analyze.Absint} against the
      simulator: no dynamic write may land outside the static write
      footprint computed under {!Analyze.Absint.exhaustive} budgets
      (truncated analyses are skipped — no exactness claim there).
    - {!Backend} — the {!Shm.Memory} backends are observationally
      equal: persistent and journaled runs of the same input must
      produce identical traces, final register contents, write sets,
      and safety verdicts.
    - {!Linearize} — {!Spec.Linearize}'s boolean and witness modes
      agree ([witness = Some _] iff [check = true], and the partial
      variants likewise), on the run's own history and on a
      deterministically corrupted copy.
    - {!Determinism} — re-running the same input reproduces the trace
      byte-for-byte, and {!Shm.Config.unshare} preserves observable
      memory.
    - {!Indep} — exploring with the dataflow engine's
      conditional-independence refinement ([Analyze.Indep.refinement]
      threaded through [Spec.Dpor]'s [?static_indep]) reaches the same
      verdict kind as the dynamic-footprint baseline, and never
      explores {e more} states.
    - {!Optim} — simulation equivalence of [Analyze.Optim]: running
      the original under the schedule and feeding the optimized
      program the results of exactly the kept operations yields
      identical visible behaviour (op shapes, registers, written
      values, outputs).  Dropping an op shifts later ops against a
      fixed schedule, so standalone output equality is deliberately
      not the statement — simulation is.
    - {!Vm} — the bytecode engine ({!Shm.Vm}) is event-equivalent to
      the free-monad interpreter under the same cursor schedule: same
      step count, stop reason, trace, final memory, written set, and
      i/o records (as multisets).  Programs [Shm.Vm.compile] rejects
      statically (out-of-bounds registers, negative loop counts —
      mutation can produce both) carry no equivalence claim and pass
      vacuously, like truncated analyses under {!Analyzer}. *)

type kind = Analyzer | Backend | Linearize | Determinism | Indep | Optim | Vm

val all : kind list
val name : kind -> string
val of_string : string -> kind option

(** [check kind program schedule] — [Some message] iff the oracle sees
    a divergence. *)
val check : kind -> Gen.program -> Gen.schedule -> string option

(** {1 Seeded-mutant regression}

    The known-broken artefacts the suite keeps honest: every
    {!Analyze.Mutants} mutant must be rejected by the analyzer, and
    every {!Conform.Sut} mutant must be caught by the conformance
    checker, within a fixed (budget, seed). *)

type mutant_result = {
  mutant : string;
  caught : bool;
  witness_size : int;  (** shrunk witness length (conform) or static excess (analyze) *)
  detail : string;
}

(** [mutant_sweep ~budget ~seed] runs every seeded mutant through its
    oracle.  [budget] bounds conformance iterations. *)
val mutant_sweep : budget:int -> seed:int -> mutant_result list
