(** Coverage feedback over the repo's existing instrumentation.

    A fuzz input's {e signature} is a set of abstract coverage bits
    drawn from three observation channels, each of which already exists
    for another purpose:

    - {b state keys} — the {!Spec.Statehash} incremental key after
      every step of the replayed schedule (bucketed): an input that
      drives the simulator through configurations no earlier input
      reached contributes new bits;
    - {b analyzer footprint} — the per-process read/write cells of the
      {!Analyze.Absint} summary plus its dead/converged/widened shape:
      an input whose static footprint differs is structurally new;
    - {b lint rules} — the rule ids {!Analyze.Lint.check} fires.

    Signatures are deterministic for a (program, schedule) pair and
    independent of the memory backend (keys hash contents, not
    representation), so corpus replay from a seed is stable. *)

type t
(** a signature: a set of coverage bits *)

(** [signature program schedule] replays the schedule (journaled
    backend) threading the state hash, runs the bounded abstract
    interpreter, and folds both into bits. *)
val signature : Gen.program -> Gen.schedule -> t

val bits : t -> int list
(** the bits, sorted ascending; equal signatures have equal bit lists *)

val cardinal : t -> int
val equal : t -> t -> bool

(** {1 Accumulation} *)

type acc
(** a growing union of every signature seen — the fuzzer's map *)

val acc_create : unit -> acc
val acc_cardinal : acc -> int

(** [add acc t] unions [t] in; returns how many bits were new.  An
    input is {e interesting} iff this is positive. *)
val add : acc -> t -> int
