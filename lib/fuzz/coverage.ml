(* Coverage signatures over existing instrumentation.

   Bits live in disjoint tag spaces (state keys, footprint cells, lint
   rules, summary shape) mixed down to 16-bit buckets per channel.
   Bucketing trades a little precision for a bounded map: the fuzzer
   only needs "did anything new happen", not exact state identity —
   collisions cost a missed interesting input, never a wrong verdict
   (oracles are independent of coverage). *)

module IntSet = Set.Make (Int)

type t = IntSet.t

let bucket ~tag h =
  (* 16 bits of the mixed hash, tagged so channels cannot collide *)
  (tag lsl 16) lor (Shm.Value.mix tag h land 0xffff)

(* State-key channel: replay the schedule threading the incremental
   state hash exactly as the DPOR engine does, one bit per visited
   key bucket.  The journaled backend is fine — keys hash contents. *)
let state_bits p schedule set =
  let inputs = Gen.inputs in
  let config = ref (Gen.config p) in
  let hash = ref (Spec.Statehash.create !config) in
  let set = ref set in
  List.iter
    (fun pid ->
      if pid >= 0 && pid < Shm.Config.n !config then begin
        let before = !config in
        let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
        if Shm.Config.runnable before ~has_input pid then begin
          let after, ev =
            match Shm.Config.proc before pid with
            | Shm.Program.Await _ ->
              let inst = Shm.Config.instance before pid + 1 in
              Shm.Config.invoke before pid
                (Option.get (inputs ~pid ~instance:inst))
            | Shm.Program.Stop -> assert false
            | Shm.Program.Op _ | Shm.Program.Yield _ ->
              Shm.Config.step before pid
          in
          hash := Spec.Statehash.record !hash ~before after ev;
          config := after;
          set :=
            IntSet.add
              (bucket ~tag:1 (Spec.Statehash.key_hash (Spec.Statehash.key !hash)))
              !set
        end
      end)
    schedule;
  !set

(* Analyzer channel: footprint cells and summary shape.  Budgets are
   the scaled defaults, not exhaustive — coverage wants cheap structure
   discovery; the soundness *oracle* is where exhaustive budgets go. *)
let analyzer_bits p set =
  let summary =
    Analyze.Absint.analyze
      ~budgets:(Analyze.Absint.budgets_for ~registers:p.Gen.registers ~n:p.Gen.n)
      (Gen.config p)
  in
  let set = ref set in
  let put tag h = set := IntSet.add (bucket ~tag h) !set in
  Array.iter
    (fun (ps : Analyze.Absint.process_summary) ->
      Analyze.Absint.IntSet.iter
        (fun r -> put 2 ((ps.Analyze.Absint.pid * 64) + r))
        ps.Analyze.Absint.reads;
      Analyze.Absint.IntSet.iter
        (fun r -> put 3 ((ps.Analyze.Absint.pid * 64) + r))
        ps.Analyze.Absint.writes;
      if ps.Analyze.Absint.halted then put 4 ps.Analyze.Absint.pid;
      if ps.Analyze.Absint.truncated then put 5 ps.Analyze.Absint.pid)
    summary.Analyze.Absint.per_process;
  Analyze.Absint.IntSet.iter (fun r -> put 6 r) summary.Analyze.Absint.dead;
  if summary.Analyze.Absint.widened then put 7 1;
  if not summary.Analyze.Absint.converged then put 7 2;
  (* lint channel rides on the same summary *)
  let _, diags = Analyze.Lint.check ~summary ~anonymous:false (Gen.config p) in
  List.iter
    (fun (d : Analyze.Lint.diag) -> put 8 (Hashtbl.hash d.Analyze.Lint.rule))
    diags;
  !set

let signature p schedule = analyzer_bits p (state_bits p schedule IntSet.empty)

let bits t = IntSet.elements t

let cardinal = IntSet.cardinal

let equal = IntSet.equal

type acc = IntSet.t ref

let acc_create () = ref IntSet.empty

let acc_cardinal acc = IntSet.cardinal !acc

let add acc t =
  let fresh = IntSet.cardinal (IntSet.diff t !acc) in
  acc := IntSet.union t !acc;
  fresh
