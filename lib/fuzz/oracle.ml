module S = Set.Make (Int)
module V = Shm.Value
module L = Spec.Linearize

type kind = Analyzer | Backend | Linearize | Determinism | Indep | Optim | Vm

let all = [ Analyzer; Backend; Linearize; Determinism; Indep; Optim; Vm ]

let name = function
  | Analyzer -> "analyzer"
  | Backend -> "backend"
  | Linearize -> "linearize"
  | Determinism -> "determinism"
  | Indep -> "indep"
  | Optim -> "optim"
  | Vm -> "vm"

let of_string s =
  match String.lowercase_ascii s with
  | "analyzer" | "absint" -> Some Analyzer
  | "backend" | "memory" -> Some Backend
  | "linearize" | "lin" -> Some Linearize
  | "determinism" | "det" -> Some Determinism
  | "indep" | "independence" -> Some Indep
  | "optim" | "optimizer" -> Some Optim
  | "vm" | "bytecode" -> Some Vm
  | _ -> None

(* ------------------------------------------------------------------ *)
(* (a) Analyzer soundness: every dynamically written register is in the
   static write footprint.  Exhaustive budgets make the analysis exact
   on the generator's (unrolled, loop-free) programs; a truncated
   analysis carries no exactness claim, so it passes vacuously. *)

let analyzer p sched =
  let summary =
    Analyze.Absint.analyze
      ~budgets:
        (Analyze.Absint.exhaustive ~registers:p.Gen.registers ~n:p.Gen.n)
      (Gen.config p)
  in
  let truncated =
    Array.exists
      (fun (ps : Analyze.Absint.process_summary) -> ps.Analyze.Absint.truncated)
      summary.Analyze.Absint.per_process
  in
  if truncated then None
  else begin
    let res = Gen.run p sched in
    let dynamic =
      Shm.Memory.written_set (Shm.Config.mem res.Shm.Exec.config)
    in
    let static = summary.Analyze.Absint.writes in
    let escaped =
      S.elements
        (S.filter (fun r -> not (Analyze.Absint.IntSet.mem r static)) dynamic)
    in
    match escaped with
    | [] -> None
    | rs ->
      Some
        (Fmt.str "dynamic write outside static footprint: R%a (static {%a})"
           Fmt.(list ~sep:(any ",R") int)
           rs
           Fmt.(list ~sep:comma int)
           (Analyze.Absint.IntSet.elements static))
  end

(* ------------------------------------------------------------------ *)
(* (b) Backend differential: persistent vs journaled *)

let event_equal (a : Shm.Event.t) (b : Shm.Event.t) =
  match (a, b) with
  | Invoke a, Invoke b ->
    a.pid = b.pid && a.instance = b.instance && V.equal a.input b.input
  | Did_read a, Did_read b ->
    a.pid = b.pid && a.reg = b.reg && V.equal a.value b.value
  | Did_write a, Did_write b ->
    a.pid = b.pid && a.reg = b.reg && V.equal a.value b.value
  | Did_scan a, Did_scan b ->
    a.pid = b.pid && a.off = b.off && a.len = b.len
  | Output a, Output b ->
    a.pid = b.pid && a.instance = b.instance && V.equal a.value b.value
  | _ -> false

let trace_diff ta tb =
  if List.length ta <> List.length tb then
    Some (Fmt.str "trace lengths %d vs %d" (List.length ta) (List.length tb))
  else
    List.find_mapi
      (fun i (a, b) ->
        if event_equal a b then None
        else Some (Fmt.str "trace[%d]: %a vs %a" i Shm.Event.pp a Shm.Event.pp b))
      (List.combine ta tb)

let final_scan (res : Shm.Exec.result) =
  let mem = Shm.Config.mem res.Shm.Exec.config in
  Shm.Memory.scan mem ~off:0 ~len:(Shm.Memory.size mem)

let safety_verdict config =
  match Spec.Properties.check_safety ~k:1 config with
  | Ok () -> "ok"
  | Error e -> "violation: " ^ e

let compare_runs ~what (ra : Shm.Exec.result) (rb : Shm.Exec.result) =
  if ra.Shm.Exec.steps <> rb.Shm.Exec.steps then
    Some (Fmt.str "%s: steps %d vs %d" what ra.Shm.Exec.steps rb.Shm.Exec.steps)
  else if ra.Shm.Exec.stopped <> rb.Shm.Exec.stopped then
    Some (Fmt.str "%s: stop reasons differ" what)
  else
    match trace_diff ra.Shm.Exec.trace rb.Shm.Exec.trace with
    | Some d -> Some (Fmt.str "%s: %s" what d)
    | None ->
      let sa = final_scan ra and sb = final_scan rb in
      if not (Array.for_all2 V.equal sa sb) then
        Some (Fmt.str "%s: final memories differ" what)
      else if
        not
          (S.equal
             (Shm.Memory.written_set (Shm.Config.mem ra.Shm.Exec.config))
             (Shm.Memory.written_set (Shm.Config.mem rb.Shm.Exec.config)))
      then Some (Fmt.str "%s: written sets differ" what)
      else begin
        let va = safety_verdict ra.Shm.Exec.config
        and vb = safety_verdict rb.Shm.Exec.config in
        if String.equal va vb then None
        else Some (Fmt.str "%s: safety verdicts differ (%s vs %s)" what va vb)
      end

let backend p sched =
  let rp = Gen.run ~backend:Shm.Memory.Persistent p sched in
  let rj = Gen.run ~backend:Shm.Memory.Journaled p sched in
  compare_runs ~what:"persistent vs journaled" rp rj

(* ------------------------------------------------------------------ *)
(* (c) Linearize mode agreement: boolean and witness checkers must
   agree on every history — the run's own (sequential, hence
   linearizable) history, a deterministically corrupted copy, and the
   partial-history variants. *)

(* Reconstruct full-range scan views by replaying writes out of the
   trace; the step index is the clock (operations are atomic in the
   simulator, so intervals are points). *)
let history_of p (trace : Shm.Event.t list) =
  let mem = Array.make p.Gen.registers V.bot in
  let clock = ref 0 in
  List.filter_map
    (fun (ev : Shm.Event.t) ->
      incr clock;
      match ev with
      | Did_write { pid; reg; value } ->
        mem.(reg) <- value;
        Some
          {
            L.pid;
            op = L.Update { i = reg; v = value };
            start = !clock;
            finish = !clock;
          }
      | Did_scan { pid; off = 0; len } when len = p.Gen.registers ->
        Some
          {
            L.pid;
            op = L.Scan { view = Array.copy mem };
            start = !clock;
            finish = !clock;
          }
      | _ -> None)
    trace

let take k l = List.filteri (fun i _ -> i < k) l

let modes_agree ~components h =
  let b = L.check ~components h in
  let w = L.witness ~components h in
  match (b, w) with
  | true, None -> Some "check=true but witness=None"
  | false, Some _ -> Some "check=false but witness=Some"
  | _ -> None

let partial_modes_agree ~components ~pending completed =
  let b = L.check_partial ~components ~pending completed in
  let w = L.witness ~components ~pending completed in
  match (b, w) with
  | true, None -> Some "check_partial=true but witness=None"
  | false, Some _ -> Some "check_partial=false but witness=Some"
  | _ -> None

let corrupt rng h =
  List.map
    (fun (e : L.event) ->
      match e.L.op with
      | L.Scan { view } when Array.length view > 0 && Shm.Rng.int rng 3 = 0 ->
        let view = Array.copy view in
        view.(Shm.Rng.int rng (Array.length view)) <-
          V.int (Shm.Rng.int rng 7);
        { e with L.op = L.Scan { view } }
      | _ -> e)
    h

let linearize p sched =
  let res = Gen.run p sched in
  let h = take 12 (history_of p res.Shm.Exec.trace) in
  let components = p.Gen.registers in
  match modes_agree ~components h with
  | Some d -> Some ("own history: " ^ d)
  | None -> (
    (* corruption seed from the rendered input, not from hash-consing
       internals, so the judgement is replayable *)
    let rng =
      Shm.Rng.create
        (Hashtbl.hash (Gen.to_string p, Gen.schedule_to_string sched))
    in
    match modes_agree ~components (corrupt rng h) with
    | Some d -> Some ("corrupted history: " ^ d)
    | None -> (
      match List.rev h with
      | [] -> None
      | last :: rev_completed ->
        let completed = List.rev rev_completed in
        let pending = [ { last with L.finish = max_int } ] in
        Option.map
          (fun d -> "partial history: " ^ d)
          (partial_modes_agree ~components ~pending completed)))

(* ------------------------------------------------------------------ *)
(* (d) Determinism: same input, same trace; unshare preserves the
   observable memory. *)

let determinism p sched =
  let r1 = Gen.run p sched in
  let r2 = Gen.run p sched in
  match compare_runs ~what:"run vs re-run" r1 r2 with
  | Some d -> Some d
  | None ->
    let before = final_scan r1 in
    let unshared = Shm.Config.unshare r1.Shm.Exec.config in
    let mem = Shm.Config.mem unshared in
    let after = Shm.Memory.scan mem ~off:0 ~len:(Shm.Memory.size mem) in
    if not (Array.for_all2 V.equal before after) then
      Some "unshare changed observable memory"
    else if
      not
        (S.equal
           (Shm.Memory.written_set (Shm.Config.mem r1.Shm.Exec.config))
           (Shm.Memory.written_set mem))
    then Some "unshare changed the written set"
    else None

(* ------------------------------------------------------------------ *)
(* (e) Independence-refinement soundness: exploring with the dataflow
   engine's conditional-independence relation must reach the same
   verdict kind as the dynamic-footprint baseline.  The refinement only
   prunes redundant interleavings, so a violation exists under one arm
   iff it exists under the other (which counterexample is found first
   may differ). *)

let indep_depth = 6

let indep p _sched =
  let facts = Analyze.Indep.of_prog p in
  let refine = Analyze.Indep.refinement ~facts () in
  let explore static_indep =
    Spec.Modelcheck.run
      ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 })
      ~depth:indep_depth ~inputs:Gen.inputs ?static_indep
      ~check:(Spec.Properties.check_safety ~k:1)
      (Gen.config p)
  in
  let verdict = function
    | Spec.Modelcheck.Ok_bounded _ -> "ok"
    | Spec.Modelcheck.Counterexample { error; _ } -> "violation: " ^ error
  in
  match (explore None, explore (Some refine)) with
  | Spec.Modelcheck.Ok_bounded base, Spec.Modelcheck.Ok_bounded refined ->
    (* pruning must never *grow* the state space *)
    if refined.Spec.Modelcheck.explored > base.Spec.Modelcheck.explored then
      Some
        (Fmt.str "refined arm explored more states (%d > %d)"
           refined.Spec.Modelcheck.explored base.Spec.Modelcheck.explored)
    else None
  | Spec.Modelcheck.Counterexample _, Spec.Modelcheck.Counterexample _ -> None
  | base, refined ->
    Some
      (Fmt.str "verdicts diverge: dynamic-only %s, with static refinement %s"
         (verdict base) (verdict refined))

(* ------------------------------------------------------------------ *)
(* (f) Optimizer simulation equivalence.  Dropping an op shifts later
   ops relative to a fixed schedule, so standalone per-schedule output
   equality is not the right statement.  The sound statement is
   simulation: run the original under the schedule, feed the optimized
   program the results of exactly the kept operations, and demand that
   its visible behaviour — operation shapes, registers, written
   values, outputs — is identical.  Folded ops must write the same
   value; dropped ops must be invisible (the optimized copy never
   expects them). *)

let optim p sched =
  let r = Analyze.Optim.optimize p in
  let mask = Array.of_list (Analyze.Optim.kept_mask r) in
  let n = p.Gen.n in
  let orig = ref (Gen.config p) in
  let opts = Array.init n (fun pid -> Gen.compile r.Analyze.Optim.optimized ~pid) in
  let pos = Array.make n 0 in
  let err = ref None in
  let fail fmt = Fmt.kstr (fun s -> if !err = None then err := Some s) fmt in
  let feed pid next =
    match next with
    | Some prog -> opts.(pid) <- prog
    | None -> fail "p%d: optimized program rejected a fed result" pid
  in
  List.iter
    (fun pid ->
      if !err = None && pid >= 0 && pid < n then
        match Shm.Config.proc !orig pid with
        | Shm.Program.Stop -> ()
        | Shm.Program.Await _ -> (
          let inst = Shm.Config.instance !orig pid + 1 in
          match Gen.inputs ~pid ~instance:inst with
          | None -> ()
          | Some v ->
            let c, _ = Shm.Config.invoke !orig pid v in
            orig := c;
            feed pid (Shm.Program.start opts.(pid) v))
        | Shm.Program.Yield (v, _) -> (
          let c, _ = Shm.Config.step !orig pid in
          orig := c;
          match opts.(pid) with
          | Shm.Program.Yield (v', rest) ->
            if V.equal v v' then opts.(pid) <- rest
            else
              fail "p%d: outputs differ (%a vs optimized %a)" pid V.pp v V.pp v'
          | _ -> fail "p%d: original outputs %a, optimized does not" pid V.pp v)
        | Shm.Program.Op (op, _) -> (
          let mem = Shm.Config.mem !orig in
          let kept = pos.(pid) < Array.length mask && mask.(pos.(pid)) in
          if pos.(pid) >= Array.length mask then
            fail "p%d: executed more ops than the keep-mask covers" pid;
          pos.(pid) <- pos.(pid) + 1;
          let c, _ = Shm.Config.step !orig pid in
          orig := c;
          if kept && !err = None then
            match (op, Shm.Program.poised_op opts.(pid)) with
            | Shm.Program.Read reg, Some (Shm.Program.Read reg') when reg = reg'
              ->
              feed pid (Shm.Program.feed_read opts.(pid) (Shm.Memory.read mem reg))
            | Shm.Program.Write (reg, v), Some (Shm.Program.Write (reg', v'))
              when reg = reg' ->
              if V.equal v v' then
                feed pid (Shm.Program.feed_write_ack opts.(pid))
              else
                fail "p%d: kept write R%d stores %a, optimized %a" pid reg V.pp
                  v V.pp v'
            | Shm.Program.Scan (off, len), Some (Shm.Program.Scan (off', len'))
              when off = off' && len = len' ->
              feed pid
                (Shm.Program.feed_scan opts.(pid) (Shm.Memory.scan mem ~off ~len))
            | _, poised ->
              fail "p%d: kept op %a but optimized poised at %a" pid
                Shm.Program.pp_op op
                Fmt.(option ~none:(any "nothing") Shm.Program.pp_op)
                poised))
    sched;
  !err

(* ------------------------------------------------------------------ *)
(* (g) Bytecode engine differential: the vm ([Shm.Vm.compile] +
   [Shm.Vm.run]) must be event-equivalent to the free-monad
   interpreter under the same cursor schedule — same step count, same
   stop reason, same trace, same final memory and written set, same
   i/o records (as multisets; the vm keeps them in (instance, pid)
   order, not chronologically).  [Vm.compile] rejects out-of-bounds
   registers and negative loop counts statically where the interpreter
   only fails when (if) execution reaches them, so those programs —
   mutation can produce them — carry no equivalence claim and pass
   vacuously. *)

let rec has_negative_loop steps =
  List.exists
    (function
      | Gen.Loop (count, body) -> count < 0 || has_negative_loop body
      | _ -> false)
    steps

let triple_compare (p1, i1, v1) (p2, i2, v2) =
  match compare (p1 : int) p2 with
  | 0 -> ( match compare (i1 : int) i2 with 0 -> V.compare v1 v2 | c -> c)
  | c -> c

let io_multiset_equal a b =
  let sa = List.sort triple_compare a and sb = List.sort triple_compare b in
  List.length sa = List.length sb
  && List.for_all2
       (fun (p1, i1, v1) (p2, i2, v2) -> p1 = p2 && i1 = i2 && V.equal v1 v2)
       sa sb

let cursor_schedule p sched =
  let cursor = ref sched in
  {
    Shm.Schedule.name = "fuzz-replay";
    next =
      (fun ~step:_ ~runnable ->
        let rec pick () =
          match !cursor with
          | [] -> None
          | pid :: tl ->
            cursor := tl;
            if pid >= 0 && pid < p.Gen.n && runnable pid then Some pid
            else pick ()
        in
        pick ());
  }

let vm p sched =
  if Gen.oob_steps p <> [] || has_negative_loop p.Gen.steps then None
  else begin
    let ri = Gen.run p sched in
    let e = Shm.Vm.env (Shm.Vm.compile p) ~inputs:Gen.inputs in
    let rv =
      Shm.Vm.run ~record:true
        ~max_steps:(List.length sched + 1)
        ~sched:(cursor_schedule p sched) e
    in
    if ri.Shm.Exec.steps <> rv.Shm.Vm.steps then
      Some
        (Fmt.str "interp vs vm: steps %d vs %d" ri.Shm.Exec.steps
           rv.Shm.Vm.steps)
    else if ri.Shm.Exec.stopped <> rv.Shm.Vm.stopped then
      Some "interp vs vm: stop reasons differ"
    else
      match trace_diff ri.Shm.Exec.trace rv.Shm.Vm.trace with
      | Some d -> Some (Fmt.str "interp vs vm: %s" d)
      | None ->
        let f = rv.Shm.Vm.final in
        let si = final_scan ri in
        if
          Array.length si <> Array.length f.Shm.Vm.memory
          || not (Array.for_all2 V.equal si f.Shm.Vm.memory)
        then Some "interp vs vm: final memories differ"
        else if
          not
            (S.equal
               (Shm.Memory.written_set (Shm.Config.mem ri.Shm.Exec.config))
               (S.of_list f.Shm.Vm.written))
        then Some "interp vs vm: written sets differ"
        else if
          not
            (io_multiset_equal
               (Shm.Config.inputs ri.Shm.Exec.config)
               f.Shm.Vm.inputs)
        then Some "interp vs vm: invocation records differ"
        else if
          not
            (io_multiset_equal
               (Shm.Config.outputs ri.Shm.Exec.config)
               f.Shm.Vm.outputs)
        then Some "interp vs vm: output records differ"
        else None
  end

let check kind p sched =
  match kind with
  | Analyzer -> analyzer p sched
  | Backend -> backend p sched
  | Linearize -> linearize p sched
  | Determinism -> determinism p sched
  | Indep -> indep p sched
  | Optim -> optim p sched
  | Vm -> vm p sched

(* ------------------------------------------------------------------ *)
(* Seeded-mutant regression *)

type mutant_result = {
  mutant : string;
  caught : bool;
  witness_size : int;
  detail : string;
}

let analyze_mutant (mu : Analyze.Mutants.mutant) =
  let p = Agreement.Params.make ~n:4 ~m:1 ~k:2 in
  let caught = Analyze.Mutants.rejected mu p in
  let summary, diags = Analyze.Mutants.check mu p in
  let bound = mu.Analyze.Mutants.bound p in
  let excess =
    max 0 (Analyze.Absint.IntSet.cardinal summary.Analyze.Absint.writes - bound)
  in
  {
    mutant = "analyze/" ^ mu.Analyze.Mutants.name;
    caught;
    witness_size = excess + List.length (Analyze.Lint.errors diags);
    detail =
      Fmt.str "static writes %d, bound %d, lint errors %d"
        (Analyze.Absint.IntSet.cardinal summary.Analyze.Absint.writes)
        bound
        (List.length (Analyze.Lint.errors diags));
  }

let conform_mutant ~budget ~seed (sut : Conform.Sut.t) =
  let cfg =
    { Conform.Harness.default_config with seed; iters = budget; ops = 12 }
  in
  match Conform.Harness.run_snapshot ~sut cfg with
  | Conform.Harness.Pass { iters; _ } ->
    {
      mutant = "conform/" ^ sut.Conform.Sut.name;
      caught = false;
      witness_size = 0;
      detail = Fmt.str "survived %d iterations" iters;
    }
  | Conform.Harness.Fail v ->
    {
      mutant = "conform/" ^ sut.Conform.Sut.name;
      caught = true;
      witness_size = List.length v.Conform.Harness.shrunk;
      detail =
        Fmt.str "iter %d: %s (witness %d ops)" v.Conform.Harness.iter
          v.Conform.Harness.error
          (List.length v.Conform.Harness.shrunk);
    }

let mutant_sweep ~budget ~seed =
  List.map analyze_mutant Analyze.Mutants.all
  @ List.map (conform_mutant ~budget ~seed) Conform.Sut.mutants
