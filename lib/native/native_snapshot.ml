(* A real shared-memory snapshot over OCaml 5 atomics.

   Everything else in this repository runs inside the simulator, where
   every interleaving is schedulable and space is counted exactly.  This
   module is the bridge to actual hardware shared memory: an
   r-component multi-writer snapshot implemented over an
   [entry Atomic.t array] with the same double-collect construction as
   Snapshot.Double_collect — each entry carries a (pid, seq) freshness
   tag; a scan retries until two consecutive collects are identical and
   linearizes between them; updates are single atomic stores.

   Entries are immutable OCaml values, so a torn read is impossible and
   [Atomic.get]/[Atomic.set] give exactly the MWMR atomic registers of
   the paper's model.  The object is non-blocking, which is the honest
   register-level guarantee (Theorem 7's wait-free object would need
   the Afek construction; the algorithms only need scans to complete
   once contention drops — see Native_agreement's backoff). *)

type entry = { tag_pid : int; tag_seq : int; v : Shm.Value.t }

type t = {
  cells : entry option Atomic.t array;
}

let create ~components =
  { cells = Array.init components (fun _ -> Atomic.make None) }

let components t = Array.length t.cells

(* Per-process handle carrying the local freshness counter.  The
   counter is only ever bumped by the owning domain, but it is Atomic
   anyway: the native layer keeps every cell it does hold data-race-free by
   construction, so TSan findings are always real. *)
type handle = { snap : t; pid : int; seq : int Atomic.t }

let handle t ~pid = { snap = t; pid; seq = Atomic.make 0 }

let update h i v =
  let seq = 1 + Atomic.fetch_and_add h.seq 1 in
  Atomic.set h.snap.cells.(i) (Some { tag_pid = h.pid; tag_seq = seq; v })

let collect t = Array.map Atomic.get t.cells

let same_collect a b =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a
    ||
    (match (a.(i), b.(i)) with
    | None, None -> true
    | Some x, Some y -> x.tag_pid = y.tag_pid && x.tag_seq = y.tag_seq
    | None, Some _ | Some _, None -> false)
    && go (i + 1)
  in
  go 0

(* Non-blocking scan: retry until a clean double collect.  [on_retry]
   lets the caller back off between attempts; [on_collect] fires after
   every collect — i.e. inside the window between the two collects of a
   clean pair — which is where the conformance harness injects stalls
   to probe the double-collect's atomicity on real hardware. *)
let scan ?(on_retry = fun _attempt -> ()) ?(on_collect = fun _attempt -> ()) h =
  let rec attempt n prev =
    let cur = collect h.snap in
    on_collect n;
    match prev with
    | Some p when same_collect p cur ->
      Array.map (function Some e -> e.v | None -> Shm.Value.bot) cur
    | Some _ | None ->
      on_retry n;
      attempt (n + 1) (Some cur)
  in
  attempt 0 None
