(** Figure 3 on real multicore shared memory: the same decide/adopt
    predicates as the simulator (Agreement.Oneshot), executed by OCaml 5
    domains over {!Native_snapshot}, with randomized exponential backoff
    as the contention manager — the paper's own framing of how
    obstruction-free algorithms make progress in practice. *)

type t

(** Allocate the shared object: n+2m−k atomics. *)
val create : params:Agreement.Params.t -> t

val registers : t -> int

(** One process's Propose(v); call from its own domain.  [seed] feeds
    only the backoff jitter.  [chaos] fires once per algorithm
    iteration; the conformance harness injects disturbances (or aborts,
    by raising) through it.  When an {!Obs.Trace} collector is attached,
    the whole call is bracketed in a ["propose"] span (category
    ["native"], closed with the iteration count) parented to [span] if
    given — the cross-domain link run_instance and the conformance
    harness use; detached, tracing costs one atomic load. *)
val propose :
  ?chaos:(unit -> unit) ->
  ?span:Obs.Trace.ctx ->
  t ->
  pid:int ->
  seed:int ->
  Shm.Value.t ->
  Shm.Value.t

(** Run a full one-shot instance: one domain per process, process [pid]
    proposing [inputs.(pid)].  Returns the object and the decisions in
    pid order. *)
val run_instance :
  ?seed:int -> params:Agreement.Params.t -> Shm.Value.t array -> t * Shm.Value.t array
