(** Figure 4 on real multicore shared memory: repeated k-set agreement
    across OCaml 5 domains, sharing the simulator's decision predicates
    (Agreement.Repeated) and using randomized exponential backoff for
    progress.  Shared state: exactly n+2m−k atomics, independent of the
    number of instances executed. *)

type t

val create : params:Agreement.Params.t -> t
val registers : t -> int

(** A domain's session, carrying Figure 4's persistent locals. *)
type session

val session : t -> pid:int -> seed:int -> session

(** One Propose; call successive instances from the same session.  With
    an {!Obs.Trace} collector attached, the call is bracketed in a
    ["propose"] span parented to [span] if given (see
    {!Native_agreement.propose}). *)
val propose : ?span:Obs.Trace.ctx -> session -> Shm.Value.t -> Shm.Value.t

(** Run [rounds] instances across n domains; [input ~pid ~round] is the
    proposal.  Result: per-pid array of per-round decisions. *)
val run :
  ?seed:int ->
  params:Agreement.Params.t ->
  rounds:int ->
  (pid:int -> round:int -> Shm.Value.t) ->
  t * Shm.Value.t array array
