(* Figure 3 on real multicore shared memory.

   The decision logic is *shared with the simulator*: the decide and
   adopt predicates are exactly Agreement.Oneshot.decide_check and
   Agreement.Oneshot.adopt_check, applied to the view a native scan
   returns.  Only the execution vehicle differs — OCaml 5 domains
   instead of simulated processes.

   Obstruction-freedom on real hardware is exactly the paper's
   introduction: the algorithm is safe under any interleaving, and
   progress comes from contention management.  We use randomized
   exponential backoff — after every non-deciding iteration a process
   sleeps for a random slice of a window that doubles (up to a cap), so
   some process soon runs long enough alone to decide, and then the
   others cascade: each sees ≤ m distinct pairs and decides too. *)

type t = {
  snap : Native_snapshot.t;
  n : int;
  m : int;
  k : int;
}

(* [create ~params] allocates the shared object: r = n+2m−k atomics. *)
let create ~(params : Agreement.Params.t) =
  let r = Agreement.Params.r_oneshot params in
  {
    snap = Native_snapshot.create ~components:r;
    n = params.Agreement.Params.n;
    m = params.Agreement.Params.m;
    k = params.Agreement.Params.k;
  }

let registers t = Native_snapshot.components t.snap

(* One process's Propose(v); call from its own domain.  [seed] feeds
   the backoff jitter only — never the algorithm.  [chaos] fires once
   per update-scan-check iteration: the conformance harness uses it to
   inject yield storms, stalls, and crash aborts (by raising) into the
   middle of a propose without touching the algorithm itself. *)
let propose ?(chaos = fun () -> ()) ?span t ~pid ~seed v =
  let r = Native_snapshot.components t.snap in
  let h = Native_snapshot.handle t.snap ~pid in
  let rng = Shm.Rng.create (seed + (31 * pid)) in
  (* the backoff window is plain loop state, threaded through the
     recursion — the native layer holds no bare cells *)
  let backoff window =
    let slices = Shm.Rng.int rng window + 1 in
    for _ = 1 to slices * 50 do
      Domain.cpu_relax ()
    done;
    if window < 4096 then window * 2 else window
  in
  let rec loop pref i iters window =
    chaos ();
    Native_snapshot.update h i (Agreement.Oneshot.pair ~pref ~pid);
    let view = Native_snapshot.scan ~on_retry:(fun _ -> Domain.cpu_relax ()) h in
    match Agreement.Oneshot.decide_check ~m:t.m view with
    | Some w -> (w, iters)
    | None ->
      let pref, i =
        match Agreement.Oneshot.adopt_check ~pid ~pref ~i view with
        | Some w -> (w, i)
        | None -> (pref, (i + 1) mod r)
      in
      let window = if iters mod r = r - 1 then backoff window else window in
      loop pref i (iters + 1) window
  in
  (* the span brackets the whole propose — iterations, backoff, chaos
     points — and is begun/ended on the proposing domain even when the
     parent context was minted elsewhere (run_instance, the conformance
     harness); detached, this is one atomic load *)
  match Obs.Trace.attached () with
  | None -> fst (loop v 0 0 1)
  | Some tr ->
    let c =
      Obs.Trace.begin_span tr ?parent:span ~cat:"native"
        ~args:[ ("pid", Obs.Json.Int pid) ]
        "propose"
    in
    (match loop v 0 0 1 with
    | w, iters ->
      Obs.Trace.end_span tr ~args:[ ("iters", Obs.Json.Int iters) ] c;
      w
    | exception e ->
      Obs.Trace.end_span tr ~args:[ ("aborted", Obs.Json.Bool true) ] c;
      raise e)

(* Run a full one-shot instance: spawn one domain per process, each
   proposing [inputs.(pid)]; returns the decisions in pid order. *)
let run_instance ?(seed = 0) ~(params : Agreement.Params.t) inputs =
  let t = create ~params in
  let tr = Obs.Trace.attached () in
  let span =
    Option.map
      (fun trc ->
        Obs.Trace.begin_span trc ~cat:"native"
          ~args:[ ("n", Obs.Json.Int t.n); ("seed", Obs.Json.Int seed) ]
          "instance")
      tr
  in
  let domains =
    Array.init t.n (fun pid ->
        Domain.spawn (fun () -> propose ?span t ~pid ~seed inputs.(pid)))
  in
  let out = Array.map Domain.join domains in
  (match (tr, span) with
  | Some trc, Some c -> Obs.Trace.end_span trc c
  | _ -> ());
  (t, out)
