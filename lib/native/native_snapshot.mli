(** A real shared-memory snapshot over OCaml 5 atomics: the
    double-collect construction of Snapshot.Double_collect, executed on
    hardware instead of the simulator.  Entries are immutable values in
    [Atomic.t] cells — exactly the MWMR atomic registers of the paper's
    model.  Non-blocking. *)

type t

(** [create ~components] allocates the shared object (one atomic per
    component — the space story is the same as the simulator's). *)
val create : components:int -> t

val components : t -> int

(** Per-process handle, carrying the local freshness counter. *)
type handle

val handle : t -> pid:int -> handle

(** Atomic store of [v] into component [i]. *)
val update : handle -> int -> Shm.Value.t -> unit

(** Non-blocking scan: retries until a clean double collect;
    [on_retry] is called between attempts (for backoff), [on_collect]
    after every collect — inside the double-collect window, where the
    conformance harness injects chaos stalls. *)
val scan :
  ?on_retry:(int -> unit) -> ?on_collect:(int -> unit) -> handle -> Shm.Value.t array
