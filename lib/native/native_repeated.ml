(* Figure 4 on real multicore shared memory: repeated k-set agreement
   across OCaml 5 domains.

   As with Native_agreement, the decision logic is shared with the
   simulator — Agreement.Repeated's encode/decode and the find_higher /
   decide_check / adopt_check predicates are applied to views returned
   by the native double-collect snapshot.  Each domain keeps the
   persistent locals of Figure 4 (location i, instance t, history) in
   its own heap; the shared state is exactly the r = n+2m−k atomics. *)

type t = {
  snap : Native_snapshot.t;
  m : int;
  n : int;
  k : int;
}

let create ~(params : Agreement.Params.t) =
  {
    snap = Native_snapshot.create ~components:(Agreement.Params.r_oneshot params);
    m = params.Agreement.Params.m;
    n = params.Agreement.Params.n;
    k = params.Agreement.Params.k;
  }

let registers t = Native_snapshot.components t.snap

(* Per-domain session carrying Figure 4's persistent locals.  Owned by
   one domain, but Atomic anyway: the native layer keeps every mutable
   cell data-race-free by construction, so TSan findings are always
   real. *)
type session = {
  obj : t;
  h : Native_snapshot.handle;
  pid : int;
  rng : Shm.Rng.t;
  i : int Atomic.t;
  t_inst : int Atomic.t;
  history : Shm.Value.t list Atomic.t;
}

let session obj ~pid ~seed =
  {
    obj;
    h = Native_snapshot.handle obj.snap ~pid;
    pid;
    rng = Shm.Rng.create (seed + (97 * pid));
    i = Atomic.make 0;
    t_inst = Atomic.make 0;
    history = Atomic.make [];
  }

let nth_output history t =
  match List.nth_opt history (t - 1) with
  | Some w -> w
  | None -> invalid_arg "Native_repeated: adopted history shorter than instance"

(* One Propose, following Figure 4 with backoff between full cycles.
   When a trace collector is attached the call is bracketed in a
   ["propose"] span on the proposing domain (category ["native"],
   instance number in the args); detached, one atomic load. *)
let propose ?span s v =
  let r = registers s.obj in
  Atomic.incr s.t_inst;
  let t = Atomic.get s.t_inst in
  let body () =
  if List.length (Atomic.get s.history) >= t then
    nth_output (Atomic.get s.history) t
  else begin
    let backoff window =
      for _ = 1 to (Shm.Rng.int s.rng window + 1) * 50 do
        Domain.cpu_relax ()
      done;
      if window < 4096 then window * 2 else window
    in
    let rec loop pref iters window =
      let own =
        {
          Agreement.Repeated.pref;
          id = s.pid;
          t;
          history = Atomic.get s.history;
        }
      in
      Native_snapshot.update s.h (Atomic.get s.i) (Agreement.Repeated.encode own);
      let view = Native_snapshot.scan ~on_retry:(fun _ -> Domain.cpu_relax ()) s.h in
      match Agreement.Repeated.find_higher ~t view with
      | Some tu ->
        Atomic.set s.history tu.Agreement.Repeated.history;
        nth_output tu.Agreement.Repeated.history t
      | None -> (
        match Agreement.Repeated.decide_check ~m:s.obj.m ~t view with
        | Some w ->
          Atomic.set s.history (Atomic.get s.history @ [ w ]);
          w
        | None ->
          let pref =
            match
              Agreement.Repeated.adopt_check ~own ~i:(Atomic.get s.i) ~t view
            with
            | Some w -> w
            | None ->
              Atomic.set s.i ((Atomic.get s.i + 1) mod r);
              pref
          in
          let window =
            if iters mod r = r - 1 then backoff window else window
          in
          loop pref (iters + 1) window)
    in
    loop v 0 1
  end
  in
  match Obs.Trace.attached () with
  | None -> body ()
  | Some tr ->
    let c =
      Obs.Trace.begin_span tr ?parent:span ~cat:"native"
        ~args:[ ("pid", Obs.Json.Int s.pid); ("t", Obs.Json.Int t) ]
        "propose"
    in
    Fun.protect ~finally:(fun () -> Obs.Trace.end_span tr c) body

(* Run [rounds] instances across n domains; returns decisions as
   [| pid |].(round-1). *)
let run ?(seed = 0) ~(params : Agreement.Params.t) ~rounds input =
  let obj = create ~params in
  let tr = Obs.Trace.attached () in
  let span =
    Option.map
      (fun trc ->
        Obs.Trace.begin_span trc ~cat:"native"
          ~args:[ ("n", Obs.Json.Int obj.n); ("rounds", Obs.Json.Int rounds) ]
          "run")
      tr
  in
  let domains =
    Array.init obj.n (fun pid ->
        Domain.spawn (fun () ->
            let s = session obj ~pid ~seed in
            Array.init rounds (fun j -> propose ?span s (input ~pid ~round:(j + 1)))))
  in
  let out = Array.map Domain.join domains in
  (match (tr, span) with
  | Some trc, Some c -> Obs.Trace.end_span trc c
  | _ -> ());
  (obj, out)
