(** SARIF 2.1.0 export of lint diagnostics ({!Lint.diag}), for CI
    annotation and artifact upload.

    The protocol model has no file/line coordinates, so each result's
    location is the logical artifact analyzed ([algo:<name>] or
    [protocol:<compact form>]) and the witness path becomes a SARIF
    code flow — one thread-flow location per step.  Severities map
    [Error]→[error], [Warning]→[warning], [Info]→[note]. *)

(** The complete SARIF log as a JSON value; each diagnostic is paired
    with the artifact it was found in. *)
val log : tool_version:string -> (string * Lint.diag) list -> Obs.Json.t

(** Pretty-printed SARIF document (what [sa_run analyze --sarif FILE]
    writes). *)
val to_string : tool_version:string -> (string * Lint.diag) list -> string
