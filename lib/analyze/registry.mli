(** The algorithms the analyzer knows, each bound to its paper bound
    from {!Bounds.Formulas}.

    One entry per implemented algorithm: Figure 3 (one-shot), Figure 4
    (repeated), Figure 5 (anonymous repeated) and the DFGR'13 baseline.
    An entry packages everything a sweep needs: applicability of a
    parameter triple, the runnable configuration (built with the
    space-optimal snapshot implementation where the paper's theorem
    picks one), the paper's register bound, and a dynamic register
    measurement under a deterministic schedule. *)

type entry = {
  name : string;  (** registry key, also {!Bounds.Formulas.for_algorithm} key *)
  figure : string;  (** where in the paper, e.g. "Figure 3" *)
  anonymous : bool;  (** subject to the anonymity lint *)
  rounds : int;  (** invocations per process for analysis and lints *)
  applicable : Agreement.Params.t -> bool;
  registers : Agreement.Params.t -> int;  (** allocated by [config] *)
  bound : Agreement.Params.t -> int;  (** the paper's register bound *)
  bound_label : string;
  config : Agreement.Params.t -> Shm.Config.t;
}

val all : entry list
val names : string list
val find : string -> entry option

(** Registers actually written by a concrete run of the entry under a
    round-robin schedule with default inputs, observed through an
    {!Obs.Stats} sink — the dynamic measure the static footprint must
    contain. *)
val measure_dynamic : entry -> Agreement.Params.t -> Absint.IntSet.t

(** The (n ≤ max_n, 1 ≤ m ≤ k < n) parameter grid of the sweep. *)
val grid : max_n:int -> Agreement.Params.t list
