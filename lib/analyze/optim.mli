(** The protocol optimizer: dataflow-certified rewrites of {!Ir.prog}.

    Three rewrite families — constant folding ([W<-last] / [D last]
    with a provable singleton integer value), redundant-scan collapse
    (reads/scans whose observation is never consumed, and zero-length
    scans), and dead-register elimination (writes no process ever
    reads) — iterated to a fixpoint.

    The correctness statement is {e simulation}, not per-schedule
    output equality (dropping an op shifts later ops relative to a
    fixed schedule): running the original under any schedule and
    feeding the optimized program the results of the kept operations
    yields identical visible behaviour.  [Fuzz.Oracle]'s [optim]
    oracle enforces this on random protocols via {!kept_mask};
    docs/ANALYSIS.md states the per-rewrite observability arguments. *)

(** What happened to each step.  [Fold] keeps an op but rewrites its
    source to a provably-equal constant; [Eloop] recurses. *)
type edit =
  | Keep of Ir.step
  | Fold of Ir.step * Ir.step
  | Drop of Ir.step
  | Eloop of int * edit list

type result = {
  original : Ir.prog;
  optimized : Ir.prog;
  edits : edit list;  (** the final changing iteration's edits *)
  kept : bool list;
      (** composed keep-mask over the original's {e executed} op
          sequence (loops unrolled, cut at the first decide); decides
          and outputs are not positions — only reads, writes, scans *)
  folded : int;  (** sources rewritten to constants *)
  dropped : int;  (** executed ops eliminated *)
  iterations : int;  (** 0 when the program was already optimal *)
}

(** [optimize prog] — analyses and rewrites until nothing changes (or
    an iteration cap).  [inputs] as in {!Dataflow.analyze}. *)
val optimize : ?inputs:Shm.Value.t list -> Ir.prog -> result

(** The composed unrolled keep-mask (the [kept] field). *)
val kept_mask : result -> bool list

val pp_edit : Format.formatter -> edit -> unit
val pp : Format.formatter -> result -> unit
