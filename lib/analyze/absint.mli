(** Abstract interpretation of {!Shm.Program.t} — footprints without a
    scheduler.

    The interpreter drives every process of a configuration through the
    abstract-step hooks of {!Shm.Program}, fabricating operation
    results from a shared collecting memory ({!Absdom}): reads branch
    over the register's collected value set, scans branch over
    representative views, branches are joined by accumulating into the
    same summary, and loops are widened by a configurable depth bound.
    Processes are re-explored in rounds until the collecting memory and
    the footprints reach a joint fixpoint (or the pass budget runs
    out), so values written by one process flow into the views of every
    other — the abstraction of an arbitrary interleaving.

    The result is a {b sound over-approximation of the reachable
    read/write footprint up to the analysis bounds}: every register
    some execution within the widening depth touches is in the
    footprint.  docs/ANALYSIS.md states the argument and its
    bounded-depth caveat precisely. *)

module IntSet : Set.S with type elt = int

(** A chronological path to an event of interest: one line per step,
    e.g. ["p0: invoke 1"; "p0: write R0 := (1,0)"]. *)
type witness = string list

type budgets = {
  max_depth : int;  (** ops along one explored path (the widening bound) *)
  max_forks : int;  (** choice points allowed to branch per path *)
  branch_width : int;  (** alternatives explored per branching choice *)
  exhaustive_cap : int;
      (** scans enumerate the full view product when it has at most
          this many views (and [branch_width] allows them) *)
  max_steps_per_pass : int;  (** interpreted ops per process per pass *)
  max_passes : int;  (** joint fixpoint rounds *)
  set_cap : int;  (** per-register value-set widening cap *)
}

(** Bounds scaled to the instance: depth covers a full solo completion
    of every algorithm in the registry (about [8·registers + 8·n²] ops,
    see docs/ANALYSIS.md), narrow branching otherwise. *)
val budgets_for : registers:int -> n:int -> budgets

(** [exhaustive ~registers ~n] — wide budgets under which the analysis
    of small loop-free programs is exact (the property-test regime:
    every read and every scan view is enumerated, forks unbounded for
    practical purposes). *)
val exhaustive : registers:int -> n:int -> budgets

type process_summary = {
  pid : int;
  reads : IntSet.t;  (** registers some explored path reads or scans *)
  writes : IntSet.t;  (** registers some explored path writes *)
  write_witness : (int * witness) list;
      (** first witness path per written register *)
  oob : (string * witness) list;
      (** accesses outside [0, registers): offending op and path *)
  write_after_decide : witness option;
      (** first write between a Yield and the next Await/Stop *)
  yields : int;  (** Yield heads seen across all explored paths *)
  halted : bool;  (** some path reached Stop *)
  truncated : bool;  (** some path hit the depth or step budget *)
  aborted : (string * witness) list;
      (** paths killed by an exception from the program's own code
          (abstract views can violate decode invariants no single
          execution breaks) — informational, not an error *)
}

type summary = {
  registers : int;  (** allocated registers of the configuration *)
  per_process : process_summary array;
  reads : IntSet.t;  (** union over processes *)
  writes : IntSet.t;  (** union over processes *)
  dead : IntSet.t;  (** allocated but in no process's write footprint *)
  converged : bool;  (** joint fixpoint reached within [max_passes] *)
  widened : bool;  (** some register hit the value-set cap *)
  passes : int;
  steps : int;  (** total interpreted ops *)
}

(** [analyze config] explores every process of [config].  [inputs]
    lists the possible invocation inputs per (pid, instance) — default
    the singleton {!Agreement.Runner.default_input} — and [rounds]
    (default 1) bounds invocations per process. *)
val analyze :
  ?budgets:budgets ->
  ?inputs:(pid:int -> instance:int -> Shm.Value.t list) ->
  ?rounds:int ->
  Shm.Config.t ->
  summary

(** Witness path for a write to register [r], if any process has one. *)
val write_witness : summary -> int -> witness option

val pp_witness : Format.formatter -> witness -> unit
val pp_summary : Format.formatter -> summary -> unit
