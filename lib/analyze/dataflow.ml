(* Classic forward/backward dataflow over the protocol CFG.

   One analysis run covers all n processes at once: the protocol is
   symmetric (every process runs the same steps with its own input), so
   the CFG's writes are *all* possible writes, and the per-register
   collecting store ([Absdom], deliberately the same domain as the
   abstract interpreter's) seeded with every process's input
   over-approximates every interleaving — the same argument as
   [Absint], see docs/ANALYSIS.md.

   The analyses:
   - per-point [last] value sets (forward), feeding the global store to
     a joint fixpoint — constant detection and folding;
   - must-self-written registers (forward, intersection at joins) —
     lets a read drop ⊥ when this process surely wrote the register
     and no write anywhere may write ⊥;
   - reaching definitions (forward, union) — which of this process's
     own writes may reach a point;
   - shared-register liveness (backward, union) — may a later point of
     this process read the register;
   - [last]-liveness (backward) — is the observation a read or scan
     produces ever consumed; dead observations are the redundant-scan
     lint and the optimizer's drop rule.

   The value-set analyses are sound only up to widening: when any set
   hits its cap, [widened] is set and downstream users must not trust
   value claims (syntactic facts — liveness, reaching, read/write
   sets — are exact on the CFG regardless). *)

module V = Shm.Value
module IntSet = Absint.IntSet

(* ------------------------------------------------------------------ *)
(* Small value sets (for [last]); ⊥ is an ordinary member.             *)

type vset = { vals : V.t list; capped : bool }

let vset_cap = 12

let vset_empty = { vals = []; capped = false }

let vset_mem v s = List.exists (V.equal v) s.vals

let vset_add s v =
  if vset_mem v s then s
  else if List.length s.vals >= vset_cap then { s with capped = true }
  else { s with vals = s.vals @ [ v ] }

let vset_union a b =
  let s = List.fold_left vset_add a b.vals in
  { s with capped = s.capped || b.capped }

let vset_of_list vs = List.fold_left vset_add vset_empty vs

let vset_size s = List.length s.vals

(* Monotone iteration: growth is the only change, so size+cap equality
   detects the fixpoint. *)
let vset_same a b = vset_size a = vset_size b && a.capped = b.capped

let singleton_value s =
  match s.vals with [ v ] when not s.capped -> Some v | _ -> None

let pp_vset ppf s =
  Fmt.pf ppf "{%a%s}" Fmt.(list ~sep:(any ",") V.pp) s.vals
    (if s.capped then ", …" else "")

(* ------------------------------------------------------------------ *)

type t = {
  prog : Ir.prog;
  cfg : Ir.cfg;
  inputs : V.t list;
  reg_values : V.t list array;  (** collected per-register values, ⊥ first *)
  read_regs : IntSet.t;  (** registers some reachable point reads or scans *)
  write_regs : IntSet.t;  (** registers some reachable point writes *)
  last_in : vset array;  (** per point: possible [last] values on entry *)
  must_self_written : IntSet.t array;
      (** per point: registers this process surely wrote before it *)
  may_write_bot : bool array;  (** per register: some write may store ⊥ *)
  reaching_in : IntSet.t array array;
      (** [reaching_in.(p).(r)]: own write points that may reach [p] *)
  live_out : bool array array;  (** [live_out.(p).(r)]: may be read later *)
  last_live_out : bool array;  (** per point: is [last] consumed later *)
  widened : bool;
  passes : int;
}

let default_inputs n =
  List.init n (fun pid -> Agreement.Runner.default_input ~pid ~instance:1)

let preds_of (cfg : Ir.cfg) =
  let n = Array.length cfg.points in
  let preds = Array.make n [] in
  Array.iteri
    (fun id (pt : Ir.point) ->
      List.iter (fun s -> preds.(s) <- id :: preds.(s)) pt.succs)
    cfg.points;
  preds

let scan_covers off len r = r >= off && r < off + len

let analyze ?inputs (prog : Ir.prog) =
  let inputs = match inputs with Some l -> l | None -> default_inputs prog.n in
  let cfg = Ir.cfg_of_prog prog in
  let npts = Array.length cfg.points in
  let regs = prog.registers in
  let preds = preds_of cfg in
  let reachable id = cfg.reachable.(id) in
  let op id = cfg.points.(id).op in
  let succs id = cfg.points.(id).succs in

  (* syntactic read/write sets over reachable points *)
  let read_regs = ref IntSet.empty and write_regs = ref IntSet.empty in
  for id = 0 to npts - 1 do
    if reachable id then
      match op id with
      | Ir.PRead r -> read_regs := IntSet.add r !read_regs
      | Ir.PWrite (r, _) -> write_regs := IntSet.add r !write_regs
      | Ir.PScan (off, len) ->
        for r = off to off + len - 1 do
          read_regs := IntSet.add r !read_regs
        done
      | Ir.PDecide _ -> ()
  done;

  (* must-self-written: forward, ∩ at joins; ⊤ init off the entry *)
  let all_regs =
    List.init regs Fun.id |> List.fold_left (fun s r -> IntSet.add r s) IntSet.empty
  in
  let must = Array.make npts all_regs in
  if npts > 0 then must.(0) <- IntSet.empty;
  let must_out p =
    match op p with
    | Ir.PWrite (r, _) -> IntSet.add r must.(p)
    | _ -> must.(p)
  in
  let must_changed = ref true in
  while !must_changed do
    must_changed := false;
    for id = 0 to npts - 1 do
      if reachable id && id > 0 then begin
        let inp =
          List.fold_left
            (fun acc p ->
              match acc with
              | None -> Some (must_out p)
              | Some a -> Some (IntSet.inter a (must_out p)))
            None
            (List.filter reachable preds.(id))
          |> Option.value ~default:IntSet.empty
        in
        if not (IntSet.equal inp must.(id)) then begin
          must.(id) <- inp;
          must_changed := true
        end
      end
    done
  done;

  (* value flow: per-point last sets + global collecting store, joint
     fixpoint (both monotone) *)
  let store = Absdom.create ~registers:regs ~set_cap:24 in
  let may_write_bot = Array.make regs false in
  let last_in = Array.make npts vset_empty in
  if npts > 0 then last_in.(0) <- vset_of_list [ V.bot ];
  let widened = ref false in
  let reg_result id r =
    (* what a read of [r] at point [id] may observe *)
    let vals = Absdom.values store r in
    let drop_bot =
      IntSet.mem r must.(id) && not may_write_bot.(r)
    in
    if drop_bot then List.filter (fun v -> not (V.is_bot v)) vals else vals
  in
  let last_out id =
    let li = last_in.(id) in
    match op id with
    | Ir.PRead r -> vset_of_list (reg_result id r)
    | Ir.PScan (_, 0) -> li
    | Ir.PScan (off, _) -> vset_of_list (reg_result id off)
    | Ir.PWrite _ | Ir.PDecide _ -> li
  in
  let passes = ref 0 in
  let max_passes = 16 in
  let flow_changed = ref true in
  while !flow_changed && !passes < max_passes do
    flow_changed := false;
    incr passes;
    let v0 = Absdom.version store in
    for id = 0 to npts - 1 do
      if reachable id then begin
        (* join predecessors' last_out *)
        let inp =
          List.fold_left
            (fun acc p -> vset_union acc (last_out p))
            (if id = 0 then vset_add last_in.(0) V.bot else last_in.(id))
            (List.filter reachable preds.(id))
        in
        if not (vset_same inp last_in.(id)) then begin
          last_in.(id) <- inp;
          flow_changed := true
        end;
        (* feed the store from writes *)
        match op id with
        | Ir.PWrite (r, src) -> (
          match src with
          | Ir.Const c -> Absdom.add store r (V.int c)
          | Ir.Input -> List.iter (Absdom.add store r) inputs
          | Ir.Last ->
            let li = last_in.(id) in
            if li.capped then widened := true;
            List.iter
              (fun v ->
                Absdom.add store r v;
                if V.is_bot v then
                  if not may_write_bot.(r) then begin
                    may_write_bot.(r) <- true;
                    flow_changed := true
                  end)
              li.vals)
        | _ -> ()
      end
    done;
    if Absdom.version store <> v0 then flow_changed := true
  done;
  if !passes >= max_passes && !flow_changed then widened := true;
  if Absdom.widened store then widened := true;
  Array.iteri
    (fun id s -> if reachable id && s.capped then widened := true)
    last_in;

  (* reaching definitions: forward, ∪ at joins, kill on same-register
     self-write *)
  let reaching = Array.init npts (fun _ -> Array.make regs IntSet.empty) in
  let reach_changed = ref true in
  while !reach_changed do
    reach_changed := false;
    for id = 0 to npts - 1 do
      if reachable id then
        List.iter
          (fun p ->
            if reachable p then
              for r = 0 to regs - 1 do
                let out =
                  match op p with
                  | Ir.PWrite (r', _) when r' = r -> IntSet.singleton p
                  | _ -> reaching.(p).(r)
                in
                let joined = IntSet.union reaching.(id).(r) out in
                if not (IntSet.equal joined reaching.(id).(r)) then begin
                  reaching.(id).(r) <- joined;
                  reach_changed := true
                end
              done)
          preds.(id)
    done
  done;

  (* shared-register liveness: backward, ∪ at joins *)
  let live_out = Array.init npts (fun _ -> Array.make regs false) in
  let live_in id r =
    match op id with
    | Ir.PRead r' when r' = r -> true
    | Ir.PScan (off, len) when scan_covers off len r -> true
    | _ -> live_out.(id).(r)
    (* note: writes do not kill — may-liveness needs no kill for the
       boolean "read later" question, and keeping it kill-free makes
       the fact monotone under cross-process interleavings *)
  in
  let live_changed = ref true in
  while !live_changed do
    live_changed := false;
    for id = npts - 1 downto 0 do
      if reachable id then
        List.iter
          (fun s ->
            for r = 0 to regs - 1 do
              if (not live_out.(id).(r)) && live_in s r then begin
                live_out.(id).(r) <- true;
                live_changed := true
              end
            done)
          (succs id)
    done
  done;

  (* last-liveness: backward; uses are W<-last and D last, kills are
     Read and Scan(len>0) *)
  let last_live_out = Array.make npts false in
  let last_live_in id =
    match op id with
    | Ir.PWrite (_, Ir.Last) | Ir.PDecide Ir.Last -> true
    | Ir.PRead _ -> false (* killed before use *)
    | Ir.PScan (_, len) when len > 0 -> false
    | _ -> last_live_out.(id)
  in
  let ll_changed = ref true in
  while !ll_changed do
    ll_changed := false;
    for id = npts - 1 downto 0 do
      if reachable id then
        List.iter
          (fun s ->
            if (not last_live_out.(id)) && last_live_in s then begin
              last_live_out.(id) <- true;
              ll_changed := true
            end)
          (succs id)
    done
  done;

  {
    prog;
    cfg;
    inputs;
    reg_values = Array.init regs (Absdom.values store);
    read_regs = !read_regs;
    write_regs = !write_regs;
    last_in;
    must_self_written = must;
    may_write_bot;
    reaching_in = reaching;
    live_out;
    last_live_out;
    widened = !widened;
    passes = !passes;
  }

(* ------------------------------------------------------------------ *)
(* Derived facts                                                       *)

let last_out t id =
  let li = t.last_in.(id) in
  match t.cfg.points.(id).op with
  | Ir.PRead r ->
    let vals = t.reg_values.(r) in
    let drop_bot =
      IntSet.mem r t.must_self_written.(id) && not t.may_write_bot.(r)
    in
    vset_of_list
      (if drop_bot then List.filter (fun v -> not (V.is_bot v)) vals else vals)
  | Ir.PScan (_, 0) -> li
  | Ir.PScan (off, _) ->
    let vals = t.reg_values.(off) in
    let drop_bot =
      IntSet.mem off t.must_self_written.(id) && not t.may_write_bot.(off)
    in
    vset_of_list
      (if drop_bot then List.filter (fun v -> not (V.is_bot v)) vals else vals)
  | Ir.PWrite _ | Ir.PDecide _ -> li

(* Registers every write of which provably stores the same value — and
   the value.  Requires an unwidened analysis (value sets incomplete
   otherwise). *)
let const_regs t =
  if t.widened then []
  else
    List.filter_map
      (fun r ->
        if not (IntSet.mem r t.write_regs) then None
        else
          match t.reg_values.(r) with
          | [ b; v ] when V.is_bot b -> Some (r, v)
          | _ -> None)
      (List.init t.prog.registers Fun.id)

(* Written but read by no process — their writes are unobservable. *)
let dead_regs t =
  IntSet.elements (IntSet.diff t.write_regs t.read_regs)

(* Reachable reads/scans whose observation is never consumed (or
   zero-length scans, which observe nothing at all). *)
let redundant_points t =
  let acc = ref [] in
  Array.iteri
    (fun id (pt : Ir.point) ->
      if t.cfg.reachable.(id) then
        match pt.op with
        | Ir.PScan (_, 0) -> acc := id :: !acc
        | Ir.PRead _ | Ir.PScan _ ->
          if not t.last_live_out.(id) then acc := id :: !acc
        | _ -> ())
    t.cfg.points;
  List.rev !acc

(* The provably-unique value [W<-last] at [id] writes (or [D last]
   decides), when the analysis is exact enough to name it. *)
let folded_value t id =
  if t.widened then None
  else
    match t.cfg.points.(id).op with
    | Ir.PWrite (_, Ir.Last) | Ir.PDecide Ir.Last ->
      singleton_value t.last_in.(id)
    | _ -> None

let pp ppf t =
  Fmt.pf ppf "@[<v>%s@,points: %d  passes: %d%s@," (Ir.to_string t.prog)
    (Array.length t.cfg.points) t.passes
    (if t.widened then "  (widened)" else "");
  Fmt.pf ppf "reads: {%a}  writes: {%a}@,"
    Fmt.(list ~sep:(any ",") int)
    (IntSet.elements t.read_regs)
    Fmt.(list ~sep:(any ",") int)
    (IntSet.elements t.write_regs);
  Array.iteri
    (fun r vals ->
      Fmt.pf ppf "R%d ∈ {%a}%s@," r Fmt.(list ~sep:(any ",") V.pp) vals
        (if t.may_write_bot.(r) then " (may rewrite ⊥)" else ""))
    t.reg_values;
  Array.iteri
    (fun id (pt : Ir.point) ->
      Fmt.pf ppf "%3d%s %-10s last∈%a%s@," id
        (if t.cfg.reachable.(id) then " " else "x")
        (Ir.pop_to_string pt.op) pp_vset t.last_in.(id)
        (if t.last_live_out.(id) then "" else "  [last dead]"))
    t.cfg.points;
  Fmt.pf ppf "@]"
