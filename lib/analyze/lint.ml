(* Well-formedness lints.  The abstract-interpretation rules reuse an
   Absint.summary; the solo-termination and anonymity rules run their
   own small *concrete* interpreters over the Program abstract-step
   hooks — exact, deterministic, and cheap because solo executions of
   obstruction-free algorithms are short. *)

type severity = Error | Warning | Info

type diag = {
  rule : string;
  severity : severity;
  message : string;
  witness : Absint.witness;
}

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let errors ds = List.filter (fun d -> d.severity = Error) ds

let pp_diag ppf d =
  Fmt.pf ppf "@[<v2>[%s] %s: %s%a@]" (severity_name d.severity) d.rule
    d.message
    (fun ppf -> function
      | [] -> ()
      | w -> Fmt.pf ppf "@,%a" Absint.pp_witness w)
    d.witness

(* Long witness paths (solo runs are hundreds of steps) keep only both
   ends. *)
let clip_witness w =
  let n = List.length w in
  if n <= 14 then w
  else
    List.filteri (fun i _ -> i < 6) w
    @ [ Fmt.str "... (%d steps elided)" (n - 12) ]
    @ List.filteri (fun i _ -> i >= n - 6) w

(* ------------------------------------------------------------------ *)
(* Rules over an existing abstract summary.                            *)

let of_summary (s : Absint.summary) =
  let per =
    Array.to_list s.per_process
    |> List.concat_map (fun (p : Absint.process_summary) ->
           let oob =
             List.map
               (fun (descr, wit) ->
                 {
                   rule = "space/out-of-bounds";
                   severity = Error;
                   message =
                     Fmt.str
                       "process %d accesses memory outside registers [0, %d): \
                        %s"
                       p.pid s.registers descr;
                   witness = clip_witness wit;
                 })
               p.oob
           in
           let wad =
             match p.write_after_decide with
             | None -> []
             | Some wit ->
                 [
                   {
                     rule = "decide/write-after-decide";
                     severity = Error;
                     message =
                       Fmt.str
                         "process %d writes shared memory after outputting \
                          and before its next invocation"
                         p.pid;
                     witness = clip_witness wit;
                   };
                 ]
           in
           let aborted =
             List.map
               (fun (descr, wit) ->
                 {
                   rule = "absint/path-abandoned";
                   severity = Info;
                   message = Fmt.str "process %d: %s" p.pid descr;
                   witness = clip_witness wit;
                 })
               p.aborted
           in
           oob @ wad @ aborted)
  in
  let widened =
    if s.widened then
      [
        {
          rule = "absint/widened";
          severity = Warning;
          message =
            "some value set hit the widening cap; value coverage is \
             incomplete (register coverage is unaffected)";
          witness = [];
        };
      ]
    else []
  in
  per @ widened

(* ------------------------------------------------------------------ *)
(* Concrete solo interpretation.                                       *)

(* Solo runs are deterministic and linear, so fuel is cheap: give the
   lint 4x the abstract widening depth before calling a loop
   unbounded. *)
let default_fuel config =
  let registers = Shm.Memory.size (Shm.Config.mem config) in
  let n = Shm.Config.n config in
  4 * (Absint.budgets_for ~registers ~n).max_depth

(* Execute [prog] solo against concrete memory [mem]; returns
   [`Output of rest * mem], [`Stop], or a failure.  The witness is
   accumulated in reverse in [wit]. *)
let rec solo_step ~registers ~pid ~fuel mem prog wit =
  if fuel <= 0 then `Fuel (List.rev wit)
  else
    match prog with
    | Shm.Program.Stop -> `Stop
    | Shm.Program.Await _ -> `Idle prog
    | Shm.Program.Yield (v, rest) ->
        let descr = Fmt.str "p%d: output %a" pid Shm.Value.pp v in
        `Output (rest, descr :: wit)
    | Shm.Program.Op (op, _) -> (
        let descr = Fmt.str "p%d: %a" pid Shm.Program.pp_op op in
        let wit = descr :: wit in
        match
          match op with
          | Shm.Program.Read r ->
              if r < 0 || r >= registers then `Oob
              else `Go (Shm.Program.feed_read prog (Shm.Memory.read !mem r))
          | Shm.Program.Write (r, v) ->
              if r < 0 || r >= registers then `Oob
              else begin
                mem := Shm.Memory.write !mem r v;
                `Go (Shm.Program.feed_write_ack prog)
              end
          | Shm.Program.Scan (off, len) ->
              if off < 0 || len < 0 || off + len > registers then `Oob
              else `Go (Shm.Program.feed_scan prog (Shm.Memory.scan !mem ~off ~len))
        with
        | `Oob -> `Oob (List.rev wit)
        | `Go None -> `Shape (List.rev wit)
        | `Go (Some p') -> solo_step ~registers ~pid ~fuel:(fuel - 1) mem p' wit
        | exception e -> `Exn (e, List.rev wit))

let default_solo_inputs ~pid ~instance =
  Agreement.Runner.default_input ~pid ~instance

let solo_termination ?fuel ?(inputs = default_solo_inputs) ?(rounds = 1)
    config =
  let registers = Shm.Memory.size (Shm.Config.mem config) in
  let fuel = match fuel with Some f -> f | None -> default_fuel config in
  let n = Shm.Config.n config in
  let diags = ref [] in
  let emit d = diags := !diags @ [ d ] in
  for pid = 0 to n - 1 do
    let mem = ref (Shm.Memory.create registers) in
    let prog = ref (Shm.Config.proc config pid) in
    let inst = ref 0 in
    let stop = ref false in
    while (not !stop) && !inst < rounds do
      (match !prog with
      | Shm.Program.Await _ -> (
          incr inst;
          let v = inputs ~pid ~instance:!inst in
          match Shm.Program.start !prog v with
          | Some p -> prog := p
          | None -> stop := true)
      | _ -> ());
      if not !stop then begin
        let invoke_descr =
          Fmt.str "p%d: invoke #%d %a (solo)" pid !inst Shm.Value.pp
            (inputs ~pid ~instance:!inst)
        in
        match
          solo_step ~registers ~pid ~fuel mem !prog [ invoke_descr ]
        with
        | `Output (rest, _wit) -> prog := rest
        | `Stop | `Idle _ ->
            (* outputting is via Yield; Stop/idle without output is the
               oneshot tail after its final Yield — fine. *)
            stop := true
        | `Fuel wit ->
            emit
              {
                rule = "loop/unbounded-solo";
                severity = Error;
                message =
                  Fmt.str
                    "process %d running solo performs %d steps in instance \
                     %d without outputting or halting"
                    pid fuel !inst;
                witness = clip_witness wit;
              };
            stop := true
        | `Oob wit ->
            emit
              {
                rule = "space/out-of-bounds";
                severity = Error;
                message =
                  Fmt.str
                    "process %d (solo run) accesses memory outside \
                     registers [0, %d)"
                    pid registers;
                witness = clip_witness wit;
              };
            stop := true
        | `Shape wit | `Exn (_, wit) ->
            emit
              {
                rule = "loop/unbounded-solo";
                severity = Warning;
                message =
                  Fmt.str "process %d: solo run aborted before outputting"
                    pid;
                witness = clip_witness wit;
              };
            stop := true
      end
    done
  done;
  !diags

(* ------------------------------------------------------------------ *)
(* Anonymity: lockstep differential execution.                         *)

let anonymity ?fuel ?(rounds = 1) ?(input = Shm.Value.int 1) config =
  let n = Shm.Config.n config in
  if n < 2 then []
  else begin
    let registers = Shm.Memory.size (Shm.Config.mem config) in
    let fuel =
      match fuel with Some f -> f | None -> 2 * default_fuel config
    in
    let mem = ref (Shm.Memory.create registers) in
    let violation = ref None in
    let wit = ref [] in
    let push d = wit := d :: !wit in
    let diverge msg =
      if !violation = None then violation := Some (msg, List.rev !wit)
    in
    let p0 = ref (Shm.Config.proc config 0) in
    let p1 = ref (Shm.Config.proc config 1) in
    let inst = ref 0 in
    let steps = ref 0 in
    let stop = ref false in
    while (not !stop) && !violation = None && !steps < fuel do
      incr steps;
      match (!p0, !p1) with
      | Shm.Program.Stop, Shm.Program.Stop -> stop := true
      | Shm.Program.Await _, Shm.Program.Await _ ->
          if !inst >= rounds then stop := true
          else begin
            incr inst;
            push
              (Fmt.str "both: invoke #%d %a (identical input)" !inst
                 Shm.Value.pp input);
            match
              (Shm.Program.start !p0 input, Shm.Program.start !p1 input)
            with
            | Some a, Some b ->
                p0 := a;
                p1 := b
            | _ -> stop := true
          end
      | Shm.Program.Yield (v0, r0), Shm.Program.Yield (v1, r1) ->
          push (Fmt.str "both: output %a" Shm.Value.pp v0);
          if not (Shm.Value.equal v0 v1) then
            diverge
              (Fmt.str "outputs differ under identical inputs: %a vs %a"
                 Shm.Value.pp v0 Shm.Value.pp v1)
          else begin
            p0 := r0;
            p1 := r1
          end
      | Shm.Program.Op (op0, _), Shm.Program.Op (op1, _) -> (
          push (Fmt.str "both: %a" Shm.Program.pp_op op0);
          let feed_both f =
            match (f !p0, f !p1) with
            | Some a, Some b ->
                p0 := a;
                p1 := b
            | _ -> stop := true
            | exception _ -> stop := true
          in
          match (op0, op1) with
          | Shm.Program.Read a, Shm.Program.Read b when a = b ->
              if a >= 0 && a < registers then
                feed_both (fun p ->
                    Shm.Program.feed_read p (Shm.Memory.read !mem a))
              else stop := true
          | Shm.Program.Scan (o0, l0), Shm.Program.Scan (o1, l1)
            when o0 = o1 && l0 = l1 ->
              if o0 >= 0 && l0 >= 0 && o0 + l0 <= registers then
                feed_both (fun p ->
                    Shm.Program.feed_scan p (Shm.Memory.scan !mem ~off:o0 ~len:l0))
              else stop := true
          | Shm.Program.Write (r0, v0), Shm.Program.Write (r1, v1)
            when r0 = r1 && Shm.Value.equal v0 v1 ->
              if r0 >= 0 && r0 < registers then begin
                mem := Shm.Memory.write !mem r0 v0;
                feed_both Shm.Program.feed_write_ack
              end
              else stop := true
          | Shm.Program.Write (r0, v0), Shm.Program.Write (r1, v1)
            when r0 = r1 ->
              diverge
                (Fmt.str
                   "written values differ under identical executions: R%d \
                    := %a vs %a — the value construction depends on the \
                    process identity"
                   r0 Shm.Value.pp v0 Shm.Value.pp v1)
          | _ ->
              diverge
                (Fmt.str
                   "operations diverge under identical executions: %a vs %a"
                   Shm.Program.pp_op op0 Shm.Program.pp_op op1))
      | _ ->
          diverge
            "control shape diverges under identical executions (one \
             process outputs/halts while the other does not)"
    done;
    match !violation with
    | None -> []
    | Some (msg, w) ->
        [
          {
            rule = "anon/pid-dependent-value";
            severity = Error;
            message = msg;
            witness = clip_witness w;
          };
        ]
  end

(* ------------------------------------------------------------------ *)

let check ?budgets ?(rounds = 1) ?summary ~anonymous config =
  let summary =
    match summary with
    | Some s -> s
    | None -> Absint.analyze ?budgets ~rounds config
  in
  let diags =
    of_summary summary
    @ solo_termination ~rounds config
    @ (if anonymous then anonymity ~rounds config else [])
  in
  (summary, diags)
