(** Conditional independence of shared-memory steps, and the [flow/*]
    lint rules.

    Refines {!Spec.Dpor}'s footprint-disjointness relation with pairs
    that commute {e in the current state} although their footprints
    collide: same-register writes of equal values, and no-op writes
    (re-storing the value the register already holds) against reads or
    scans of that register.  Every accepted pair is justified by state
    identity — both orders yield the same configuration — which is the
    soundness condition for the sleep-set filter and exactly what the
    QCheck commutation property checks.  Dead-register writes do {e
    not} qualify (unequal unobservable writes still differ in memory);
    they feed {!lint} and {!Optim} instead.

    docs/ANALYSIS.md §"Dataflow and independence" states the argument
    and its caveats. *)

(** Static certificates derived by the dataflow engine. *)
type facts = {
  const_regs : (int * Shm.Value.t) list;
      (** registers whose every write stores this one value *)
  dead_regs : int list;
      (** written but never read — lint/optimizer only, never the
          independence relation *)
  redundant : int list;
      (** read/scan points whose observation is never consumed *)
  widened : bool;  (** value analysis hit a cap; value claims dropped *)
}

(** No certificates; the conditional (state-probing) rules still apply. *)
val empty : facts

val of_dataflow : Dataflow.t -> facts
val of_prog : ?inputs:Shm.Value.t list -> Ir.prog -> facts

(** Facts for an arbitrary free-monad configuration, from the abstract
    footprint ({!Absint}) and the lowered point trees ({!Ir.lower});
    claims are dropped (and [widened] set) when either analysis
    truncates. *)
val of_config : ?budgets:Absint.budgets -> Shm.Config.t -> facts

(** [refine ~mem a b]: do the poised ops [a] and [b] (of different
    processes) commute to the identical configuration in the state
    whose memory is [mem]?  [false] means "not proved", never "proved
    dependent".  O(1); probing [mem] is side-effect free. *)
type refinement = mem:Shm.Memory.t -> Shm.Program.op -> Shm.Program.op -> bool

val refinement : ?facts:facts -> unit -> refinement

(** The [flow/dead-register-write] (warning), [flow/redundant-scan]
    (warning) and [flow/constant-register] (info) diagnostics, each
    with a shortest entry path as witness. *)
val lint : Dataflow.t -> Lint.diag list

val pp_facts : Format.formatter -> facts -> unit
