(* Abstract interpretation of process programs: drive each program's
   opaque continuations with fabricated results drawn from a shared
   collecting memory (Absdom), accumulate read/write footprints, and
   iterate to a joint fixpoint so values flow between processes.  See
   absint.mli and docs/ANALYSIS.md for the soundness statement. *)

module IntSet = Set.Make (Int)

type witness = string list

type budgets = {
  max_depth : int;
  max_forks : int;
  branch_width : int;
  exhaustive_cap : int;
  max_steps_per_pass : int;
  max_passes : int;
  set_cap : int;
}

(* Depth must cover a full solo completion of the costliest registry
   algorithm: the Figure 4 construction over single-writer snapshots
   performs ~4n+6 ops per adopt/advance iteration for up to ~3n
   iterations (r = n+2m−k ≤ 3n), i.e. Θ(n²); the register count bounds
   the cheap cases.  8·registers + 14·n² with a constant floor covers
   both with slack. *)
let budgets_for ~registers ~n =
  let registers = max registers 1 and n = max n 1 in
  {
    max_depth = 64 + (8 * registers) + (14 * n * n);
    max_forks = 2;
    branch_width = 3;
    exhaustive_cap = 3;
    max_steps_per_pass = 200_000;
    max_passes = 4;
    set_cap = 24;
  }

let exhaustive ~registers ~n =
  let b = budgets_for ~registers ~n in
  {
    b with
    max_forks = 1_000;
    branch_width = 64;
    exhaustive_cap = 64;
    max_passes = 6;
    set_cap = 64;
  }

type process_summary = {
  pid : int;
  reads : IntSet.t;
  writes : IntSet.t;
  write_witness : (int * witness) list;
  oob : (string * witness) list;
  write_after_decide : witness option;
  yields : int;
  halted : bool;
  truncated : bool;
  aborted : (string * witness) list;
}

type summary = {
  registers : int;
  per_process : process_summary array;
  reads : IntSet.t;
  writes : IntSet.t;
  dead : IntSet.t;
  converged : bool;
  widened : bool;
  passes : int;
  steps : int;
}

(* Mutable accumulator per process, shared by every pass: footprints
   and diagnostics only ever grow, which is what makes the fixpoint
   check a comparison of cardinalities. *)
type acc = {
  a_pid : int;
  mutable a_reads : IntSet.t;
  mutable a_writes : IntSet.t;
  mutable a_wwit : (int * witness) list;
  mutable a_oob : (string * witness) list;
  mutable a_wad : witness option;
  mutable a_yields : int;
  mutable a_halted : bool;
  mutable a_truncated : bool;
  mutable a_aborted : (string * witness) list;
}

let fresh_acc pid =
  {
    a_pid = pid;
    a_reads = IntSet.empty;
    a_writes = IntSet.empty;
    a_wwit = [];
    a_oob = [];
    a_wad = None;
    a_yields = 0;
    a_halted = false;
    a_truncated = false;
    a_aborted = [];
  }

(* Diagnostic lists are capped so pathological programs can't grow
   unbounded witness state across passes. *)
let diag_cap = 32

let record_oob acc descr wit =
  if List.length acc.a_oob < diag_cap
     && not (List.exists (fun (d, _) -> String.equal d descr) acc.a_oob)
  then acc.a_oob <- acc.a_oob @ [ (descr, List.rev wit) ]

let record_abort acc descr wit =
  if List.length acc.a_aborted < diag_cap
     && not (List.exists (fun (d, _) -> String.equal d descr) acc.a_aborted)
  then acc.a_aborted <- acc.a_aborted @ [ (descr, List.rev wit) ]

let descr_of pid what = Fmt.str "p%d: %s" pid what

let descr_op pid op = descr_of pid (Fmt.str "%a" Shm.Program.pp_op op)

(* One pass of path exploration for a single process.  [wit] is the
   reversed path so far; [forks] counts branching choice points on the
   current path; [decided] is set between a Yield and the next
   Await/Stop (the write-after-decide window); [just_wrote] is the last
   value this path wrote (feeds the uniform-own scan template). *)
let explore ~b ~mem ~registers ~inputs ~rounds acc prog0 =
  let steps = ref 0 in
  let rec go prog ~depth ~forks ~decided ~inst ~just_wrote ~wit =
    if depth >= b.max_depth || !steps >= b.max_steps_per_pass then
      acc.a_truncated <- true
    else begin
      incr steps;
      match prog with
      | Shm.Program.Stop -> acc.a_halted <- true
      | Shm.Program.Await _ ->
        if inst < rounds then begin
          let alts = inputs ~pid:acc.a_pid ~instance:(inst + 1) in
          branch prog alts ~forks ~width:b.branch_width (fun v forks ->
              let descr =
                descr_of acc.a_pid
                  (Fmt.str "invoke #%d %a" (inst + 1) Shm.Value.pp v)
              in
              match Shm.Program.start prog v with
              | Some p' ->
                go p' ~depth:(depth + 1) ~forks ~decided:false
                  ~inst:(inst + 1) ~just_wrote ~wit:(descr :: wit)
              | None -> ())
        end
      | Shm.Program.Yield (v, rest) ->
        acc.a_yields <- acc.a_yields + 1;
        let descr =
          descr_of acc.a_pid (Fmt.str "output %a" Shm.Value.pp v)
        in
        go rest ~depth:(depth + 1) ~forks ~decided:true ~inst ~just_wrote
          ~wit:(descr :: wit)
      | Shm.Program.Op (op, _) ->
        let descr = descr_op acc.a_pid op in
        let wit' = descr :: wit in
        let continue next ~forks ~just_wrote =
          match next with
          | Some p' ->
            go p' ~depth:(depth + 1) ~forks ~decided ~inst ~just_wrote
              ~wit:wit'
          | None -> record_abort acc (descr ^ " (result shape)") wit'
        in
        let apply f ~forks ~just_wrote =
          (* The continuation is the algorithm's own code; abstract
             value mixes can violate its decode invariants.  Such an
             exception kills one explored path, not the analysis. *)
          match f () with
          | next -> continue next ~forks ~just_wrote
          | exception e ->
            record_abort acc
              (Fmt.str "%s (path abandoned: %s)" descr (Printexc.to_string e))
              wit'
        in
        (match op with
        | Shm.Program.Read r ->
          if r < 0 || r >= registers then record_oob acc descr wit'
          else begin
            acc.a_reads <- IntSet.add r acc.a_reads;
            let alts = Absdom.read_alternatives mem ~width:b.branch_width r in
            branch prog alts ~forks ~width:b.branch_width (fun v forks ->
                apply (fun () -> Shm.Program.feed_read prog v) ~forks
                  ~just_wrote)
          end
        | Shm.Program.Write (r, v) ->
          if decided && acc.a_wad = None then acc.a_wad <- Some (List.rev wit');
          if r < 0 || r >= registers then record_oob acc descr wit'
          else begin
            if not (IntSet.mem r acc.a_writes) then
              acc.a_wwit <- acc.a_wwit @ [ (r, List.rev wit') ];
            acc.a_writes <- IntSet.add r acc.a_writes;
            Absdom.add mem r v;
            apply
              (fun () -> Shm.Program.feed_write_ack prog)
              ~forks ~just_wrote:(Some v)
          end
        | Shm.Program.Scan (off, len) ->
          if off < 0 || len < 0 || off + len > registers then
            record_oob acc descr wit'
          else begin
            for i = off to off + len - 1 do
              acc.a_reads <- IntSet.add i acc.a_reads
            done;
            let views =
              Absdom.scan_views mem ~width:b.branch_width
                ~exhaustive_cap:b.exhaustive_cap ?just_wrote ~off ~len ()
            in
            branch prog views ~forks ~width:b.branch_width (fun view forks ->
                apply (fun () -> Shm.Program.feed_scan prog view) ~forks
                  ~just_wrote)
          end)
    end
  (* Explore [alts] (preferred first).  Taking more than one alternative
     consumes a fork; once the path's fork budget is spent only the
     preferred alternative is followed. *)
  and branch : 'a. Shm.Program.t -> 'a list -> forks:int -> width:int ->
      ('a -> int -> unit) -> unit =
   fun _prog alts ~forks ~width k ->
    match alts with
    | [] -> ()
    | [ v ] -> k v forks
    | v :: _ when forks >= b.max_forks -> k v forks
    | _ ->
      List.iteri (fun i v -> if i < width then k v (forks + 1)) alts
  in
  go prog0 ~depth:0 ~forks:0 ~decided:false ~inst:0 ~just_wrote:None
    ~wit:[];
  !steps

let default_inputs ~pid ~instance =
  [ Agreement.Runner.default_input ~pid ~instance ]

(* Fingerprint of everything monotone: when a full pass leaves it
   unchanged, another pass explores the exact same paths. *)
let fingerprint mem accs =
  let per_acc a =
    ( IntSet.cardinal a.a_reads,
      IntSet.cardinal a.a_writes,
      List.length a.a_oob,
      List.length a.a_aborted,
      a.a_wad <> None,
      a.a_halted )
  in
  (Absdom.version mem, Array.map per_acc accs)

let analyze ?budgets ?(inputs = default_inputs) ?(rounds = 1) config =
  let registers = Shm.Memory.size (Shm.Config.mem config) in
  let n = Shm.Config.n config in
  let b =
    match budgets with Some b -> b | None -> budgets_for ~registers ~n
  in
  let mem = Absdom.create ~registers ~set_cap:b.set_cap in
  let accs = Array.init n fresh_acc in
  let total_steps = ref 0 in
  let passes = ref 0 in
  let converged = ref false in
  while (not !converged) && !passes < b.max_passes do
    let before = fingerprint mem accs in
    for pid = 0 to n - 1 do
      total_steps :=
        !total_steps
        + explore ~b ~mem ~registers ~inputs ~rounds accs.(pid)
            (Shm.Config.proc config pid)
    done;
    incr passes;
    if fingerprint mem accs = before then converged := true
  done;
  let per_process =
    Array.map
      (fun a ->
        {
          pid = a.a_pid;
          reads = a.a_reads;
          writes = a.a_writes;
          write_witness = a.a_wwit;
          oob = a.a_oob;
          write_after_decide = a.a_wad;
          yields = a.a_yields;
          halted = a.a_halted;
          truncated = a.a_truncated;
          aborted = a.a_aborted;
        })
      accs
  in
  let union f =
    Array.fold_left (fun s p -> IntSet.union s (f p)) IntSet.empty per_process
  in
  let reads = union (fun p -> p.reads) in
  let writes = union (fun p -> p.writes) in
  let dead =
    IntSet.filter
      (fun r -> not (IntSet.mem r writes))
      (IntSet.of_list (List.init registers Fun.id))
  in
  {
    registers;
    per_process;
    reads;
    writes;
    dead;
    converged = !converged;
    widened = Absdom.widened mem;
    passes = !passes;
    steps = !total_steps;
  }

let write_witness s r =
  Array.fold_left
    (fun found p ->
      match found with
      | Some _ -> found
      | None -> List.assoc_opt r p.write_witness)
    None s.per_process

let pp_witness ppf w =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut string) w

let pp_intset ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma int) (IntSet.elements s)

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>registers=%d writes=%a reads=%a dead=%a converged=%b widened=%b \
     passes=%d steps=%d@]"
    s.registers pp_intset s.writes pp_intset s.reads pp_intset s.dead
    s.converged s.widened s.passes s.steps
