(** The abstract value domain of the static analyzer.

    A register's abstract value is the {e set} of concrete values any
    execution explored so far may have stored there (collecting
    semantics), always including ⊥ — joins deliberately forget which
    interleaving produced a value, so a set over-approximates every
    schedule that writes only collected values.  Sets are widened by a
    size cap: once a register collects more than [set_cap] distinct
    values, further values are dropped and the memory is marked
    {!widened} — the analyzer reports the cap in its soundness caveat
    (see docs/ANALYSIS.md).

    The memory is shared, mutable and monotone: it only ever grows, and
    {!version} bumps on every growth, which is what the joint fixpoint
    iteration of {!Absint} watches. *)

type t

(** [create ~registers ~set_cap] — all registers start as \{⊥\}. *)
val create : registers:int -> set_cap:int -> t

val registers : t -> int

(** Bumped every time any register's set grows. *)
val version : t -> int

(** Some register hit the widening cap: value coverage is incomplete. *)
val widened : t -> bool

(** [add t r v]: join [v] into register [r]'s set.  Out-of-range
    registers are ignored (the access itself is diagnosed by the
    interpreter). *)
val add : t -> int -> Shm.Value.t -> unit

(** All collected values of register [r], ⊥ first, then insertion
    order (most recent last). *)
val values : t -> int -> Shm.Value.t list

(** Most recently collected value of [r]; ⊥ if nothing was written. *)
val latest : t -> int -> Shm.Value.t

(** Number of distinct values collected for [r] (including ⊥). *)
val cardinal : t -> int -> int

(** {1 Read and scan alternatives}

    What a fabricated operation result may be.  When the concrete
    possibilities are few, the enumeration is exhaustive (and the
    analysis of loop-free programs over such registers is exact);
    otherwise a bounded set of representative templates is explored —
    the documented precision/soundness trade of the bounded analysis. *)

(** Alternatives for a single read of [r]: every collected value when
    there are at most [width], else \{⊥ (if never overwritten... always
    collected), latest, first-written\} truncated to [width].  The
    preferred (no-fork) alternative is first. *)
val read_alternatives : t -> width:int -> int -> Shm.Value.t list

(** Alternatives for a scan of [off..off+len-1].  Exhaustive product
    enumeration when it has at most [exhaustive_cap] views; otherwise
    deterministic templates — latest-everywhere, written-prefix (models
    a half-finished block of writes), uniform-[just_wrote] (models the
    scanner running solo after its own write), value-diverse (cycles
    each register through its set), all-⊥ — deduplicated and truncated
    to [width].  The preferred alternative is first. *)
val scan_views :
  t ->
  width:int ->
  exhaustive_cap:int ->
  ?just_wrote:Shm.Value.t ->
  off:int ->
  len:int ->
  unit ->
  Shm.Value.t array list
