(* First-order protocol IR and control-flow graphs of program points.

   Two sources feed the IR:

   - the fuzzer's protocol language (step lists with bounded loops) is
     *this* language — [Fuzz.Gen] re-exports the types below — so the
     dataflow analyses and the optimizer work on fuzz protocols
     exactly;
   - arbitrary free-monad programs ([Shm.Program.t]) are lowered into
     per-process point trees by driving their abstract-stepping hooks
     against a collecting memory ([Absdom]), the same technique as
     [Absint] — exact up to the recorded [truncated] flag.

   A program point is one shared-memory operation occurrence (or a
   decide).  Points are identified by their index in execution order,
   which is exactly the per-process op counter [Shm.Config.pc] exposes
   at run time — the bridge between a dynamic step and its static
   point. *)

(* The language itself now lives in [Shm.Vm] (PR 10): the bytecode
   compiler and the free-monad compiler must agree on one set of
   constructors, and shm sits below every layer that consumes them.
   These equations keep [Analyze.Ir.Read] et al. valid constructors —
   nothing downstream (Dataflow, Optim, Fuzz.Gen) changes. *)
type src = Shm.Vm.src = Const of int | Input | Last

type step = Shm.Vm.step =
  | Read of int
  | Write of int * src
  | Scan of int * int
  | Loop of int * step list
  | Decide of src

type prog = Shm.Vm.proto = { registers : int; n : int; steps : step list }

(* ------------------------------------------------------------------ *)
(* Rendering (the fuzzer's compact one-line replay form)               *)

let src_to_string = function
  | Const c -> string_of_int c
  | Input -> "in"
  | Last -> "last"

let rec step_to_string = function
  | Read r -> Fmt.str "R%d" r
  | Write (r, s) -> Fmt.str "W%d<-%s" r (src_to_string s)
  | Scan (off, len) -> Fmt.str "S%d+%d" off len
  | Loop (count, body) ->
    Fmt.str "L%d[%s]" count (String.concat "; " (List.map step_to_string body))
  | Decide s -> Fmt.str "D %s" (src_to_string s)

let pp_step ppf s = Fmt.string ppf (step_to_string s)

let to_string p =
  Fmt.str "r%d n%d : %s" p.registers p.n
    (String.concat "; " (List.map step_to_string p.steps))

let pp ppf p = Fmt.string ppf (to_string p)

(* ------------------------------------------------------------------ *)
(* Parsing: the exact inverse of [to_string], so corpus files and
   command lines round-trip. *)

exception Parse of string

let parse s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let skip_ws () = while !pos < len && s.[!pos] = ' ' do incr pos done in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Fmt.str "expected %C" c)
  in
  let int () =
    skip_ws ();
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while !pos < len && s.[!pos] >= '0' && s.[!pos] <= '9' do incr pos done;
    if !pos = start || (s.[start] = '-' && !pos = start + 1) then
      fail "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let src () =
    skip_ws ();
    match peek () with
    | Some ('-' | '0' .. '9') -> Const (int ())
    | _ ->
      let start = !pos in
      while !pos < len && s.[!pos] >= 'a' && s.[!pos] <= 'z' do incr pos done;
      (match String.sub s start (!pos - start) with
      | "in" -> Input
      | "last" -> Last
      | w -> fail (Fmt.str "unknown source %S" w))
  in
  let rec step () =
    skip_ws ();
    match peek () with
    | Some 'R' ->
      incr pos;
      Read (int ())
    | Some 'W' ->
      incr pos;
      let r = int () in
      expect '<';
      expect '-';
      Write (r, src ())
    | Some 'S' ->
      incr pos;
      let off = int () in
      expect '+';
      Scan (off, int ())
    | Some 'L' ->
      incr pos;
      let count = int () in
      expect '[';
      let body = if peek () = Some ']' then [] else steps () in
      skip_ws ();
      expect ']';
      Loop (count, body)
    | Some 'D' ->
      incr pos;
      Decide (src ())
    | _ -> fail "expected a step (R/W/S/L/D)"
  and steps () =
    let acc = ref [ step () ] in
    skip_ws ();
    while peek () = Some ';' do
      incr pos;
      acc := step () :: !acc;
      skip_ws ()
    done;
    List.rev !acc
  in
  match
    skip_ws ();
    expect 'r';
    let registers = int () in
    skip_ws ();
    expect 'n';
    let n = int () in
    skip_ws ();
    expect ':';
    skip_ws ();
    let steps = if !pos >= len then [] else steps () in
    skip_ws ();
    if !pos <> len then fail "trailing input";
    if registers < 1 then fail "registers must be >= 1";
    if n < 1 then fail "n must be >= 1";
    { registers; n; steps }
  with
  | p -> Ok p
  | exception Parse msg -> Error msg
  | exception Failure _ -> Error "integer out of range"

(* ------------------------------------------------------------------ *)
(* Control-flow graphs over program points                             *)

type pop =
  | PRead of int
  | PWrite of int * src
  | PScan of int * int
  | PDecide of src

type point = { op : pop; succs : int list }

type cfg = { points : point array; reachable : bool array }

let pop_to_string = function
  | PRead r -> Fmt.str "R%d" r
  | PWrite (r, s) -> Fmt.str "W%d<-%s" r (src_to_string s)
  | PScan (off, len) -> Fmt.str "S%d+%d" off len
  | PDecide s -> Fmt.str "D %s" (src_to_string s)

(* Flatten the step list into points, one per Read/Write/Scan/Decide
   occurrence (loop bodies once, not per iteration).  [Loop (c, body)]
   with c >= 1 contributes body entry edges, a back edge from the body
   exits when c >= 2, and a forward edge past the loop; c <= 0 is a
   bypass.  [Decide] is terminal — anything after it on the same path
   is dead code (emitted, marked unreachable). *)
let cfg_of_prog p =
  let points = ref [] (* (id, pop) reversed *) in
  let next = ref 0 in
  let succs : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let emit op =
    let id = !next in
    incr next;
    points := (id, op) :: !points;
    id
  in
  let connect srcs dst =
    List.iter
      (fun s ->
        let cur = Option.value (Hashtbl.find_opt succs s) ~default:[] in
        if not (List.mem dst cur) then Hashtbl.replace succs s (dst :: cur))
      srcs
  in
  (* [pending] are point ids whose successor is the next point emitted;
     returns the dangling ids at the end of [steps]. *)
  let rec seq steps pending =
    match steps with
    | [] -> pending
    | st :: tl -> (
      match st with
      | Read r ->
        let id = emit (PRead r) in
        connect pending id;
        seq tl [ id ]
      | Write (r, s) ->
        let id = emit (PWrite (r, s)) in
        connect pending id;
        seq tl [ id ]
      | Scan (off, len) ->
        let id = emit (PScan (off, len)) in
        connect pending id;
        seq tl [ id ]
      | Decide s ->
        let id = emit (PDecide s) in
        connect pending id;
        (* terminal: the tail is dead code; compile it disconnected *)
        ignore (seq tl []);
        []
      | Loop (count, body) ->
        if count <= 0 || body = [] then seq tl pending
        else begin
          let bentry = !next in
          let exits = seq body pending in
          if !next = bentry then seq tl exits
          else begin
            if count >= 2 then connect exits bentry;
            seq tl exits
          end
        end)
  in
  let final = seq p.steps [ -1 ] in
  ignore final;
  let n = !next in
  let arr = Array.make n { op = PDecide Last; succs = [] } in
  List.iter
    (fun (id, op) ->
      let ss =
        Option.value (Hashtbl.find_opt succs id) ~default:[] |> List.sort compare
      in
      arr.(id) <- { op; succs = ss })
    !points;
  (* reachability from the entry (point 0, when it exists) *)
  let reachable = Array.make n false in
  let rec visit id =
    if id >= 0 && id < n && not (reachable.(id)) then begin
      reachable.(id) <- true;
      List.iter visit arr.(id).succs
    end
  in
  if n > 0 then visit 0;
  { points = arr; reachable }

let pp_cfg ppf cfg =
  Array.iteri
    (fun id (pt : point) ->
      Fmt.pf ppf "%3d%s %-10s -> [%a]@." id
        (if cfg.reachable.(id) then " " else "x")
        (pop_to_string pt.op)
        Fmt.(list ~sep:(any ",") int)
        pt.succs)
    cfg.points

(* ------------------------------------------------------------------ *)
(* Lowering free-monad programs via the abstract-stepping hooks        *)

type lop =
  | LRead of int
  | LWrite of int * Shm.Value.t
  | LScan of int * int
  | LYield of Shm.Value.t
  | LStop

type lpoint = { lop : lop; lsuccs : int list }

type lowered = { pid : int; lpoints : lpoint array; ltruncated : bool }

let lop_to_string = function
  | LRead r -> Fmt.str "read R%d" r
  | LWrite (r, v) -> Fmt.str "write R%d := %a" r Shm.Value.pp v
  | LScan (off, len) -> Fmt.str "scan [%d, %d)" off (off + len)
  | LYield v -> Fmt.str "output %a" Shm.Value.pp v
  | LStop -> "halt"

let default_inputs ~pid ~instance =
  [ Agreement.Runner.default_input ~pid ~instance ]

(* Drive one process like [Absint.explore] does, but record every (op,
   fabricated-result branch) visit as a point.  The result is a point
   *tree* per process — no merging of converging paths — bounded by
   [max_points] per process; hitting the bound or an un-feedable shape
   sets [ltruncated], which downstream fact derivation treats as "no
   exactness claim". *)
let lower ?(max_points = 2_000) ?(inputs = default_inputs) ?(rounds = 1)
    config =
  let registers = Shm.Memory.size (Shm.Config.mem config) in
  let n = Shm.Config.n config in
  let b = Absint.exhaustive ~registers ~n in
  let mem = Absdom.create ~registers ~set_cap:b.Absint.set_cap in
  let lower_one pid =
    let points = ref [] (* (id, lop, succ ids) reversed *) in
    let next = ref 0 in
    let truncated = ref false in
    (* returns the entry point ids of [prog]'s continuations *)
    let rec go prog ~depth ~inst : int list =
      if !next >= max_points || depth >= b.Absint.max_depth then begin
        truncated := true;
        []
      end
      else
        match prog with
        | Shm.Program.Stop ->
          let id = !next in
          incr next;
          points := (id, LStop, []) :: !points;
          [ id ]
        | Shm.Program.Await _ ->
          if inst >= rounds then []
          else begin
            let alts = inputs ~pid ~instance:(inst + 1) in
            List.concat_map
              (fun v ->
                match Shm.Program.start prog v with
                | Some p' -> go p' ~depth:(depth + 1) ~inst:(inst + 1)
                | None ->
                  truncated := true;
                  [])
              alts
          end
        | Shm.Program.Yield (v, rest) ->
          let id = !next in
          incr next;
          let ss = go rest ~depth:(depth + 1) ~inst in
          points := (id, LYield v, ss) :: !points;
          [ id ]
        | Shm.Program.Op (op, _) ->
          let id = !next in
          incr next;
          let continue f alts =
            List.concat_map
              (fun r ->
                match f r with
                | Some p' -> go p' ~depth:(depth + 1) ~inst
                | None ->
                  truncated := true;
                  []
                | exception _ ->
                  truncated := true;
                  [])
              alts
          in
          let lop, ss =
            match op with
            | Shm.Program.Read r ->
              if r < 0 || r >= registers then begin
                truncated := true;
                (LRead r, [])
              end
              else
                ( LRead r,
                  continue
                    (Shm.Program.feed_read prog)
                    (Absdom.read_alternatives mem ~width:b.Absint.branch_width
                       r) )
            | Shm.Program.Write (r, v) ->
              if r < 0 || r >= registers then begin
                truncated := true;
                (LWrite (r, v), [])
              end
              else begin
                Absdom.add mem r v;
                ( LWrite (r, v),
                  continue
                    (fun () -> Shm.Program.feed_write_ack prog)
                    [ () ] )
              end
            | Shm.Program.Scan (off, len) ->
              if off < 0 || len < 0 || off + len > registers then begin
                truncated := true;
                (LScan (off, len), [])
              end
              else
                ( LScan (off, len),
                  continue
                    (Shm.Program.feed_scan prog)
                    (Absdom.scan_views mem ~width:b.Absint.branch_width
                       ~exhaustive_cap:b.Absint.exhaustive_cap ~off ~len ()) )
          in
          points := (id, lop, ss) :: !points;
          [ id ]
    in
    ignore (go (Shm.Config.proc config pid) ~depth:0 ~inst:0);
    let arr = Array.make (max 1 !next) { lop = LStop; lsuccs = [] } in
    List.iter (fun (id, lop, ss) -> arr.(id) <- { lop; lsuccs = ss }) !points;
    let arr = Array.sub arr 0 !next in
    { pid; lpoints = arr; ltruncated = !truncated }
  in
  (* two passes so values written by later processes flow into earlier
     processes' read branches (the cheap half of Absint's fixpoint);
     only the second pass's trees are kept *)
  let _ = Array.init n lower_one in
  Array.init n lower_one

let pp_lowered ppf l =
  Fmt.pf ppf "p%d (%d points%s):@." l.pid (Array.length l.lpoints)
    (if l.ltruncated then ", truncated" else "");
  Array.iteri
    (fun id (pt : lpoint) ->
      Fmt.pf ppf "  %3d %-28s -> [%a]@." id (lop_to_string pt.lop)
        Fmt.(list ~sep:(any ",") int)
        pt.lsuccs)
    l.lpoints
