(** Seeded broken protocols — the analyzer's mutation tests.

    Each mutant is a deliberately miswritten variant of a registry
    algorithm that concrete testing under friendly schedules does not
    catch, but the static analyzer must reject with a witness path:

    - {!oob_oneshot}: Figure-3-style one-shot agreement that, on the
      rare interleaving "my scan shows a foreign pair while some
      component is still ⊥", records a note in a scratch register
      {e beyond the paper bound}.  Under a sequential (large-quantum
      round-robin) schedule the branch never fires — the first process
      fills every component before anyone else moves — so dynamic
      register counts stay within the bound; the abstract interpreter
      reaches the branch and the static footprint exceeds the bound.

    - {!pid_leak_anonymous}: an anonymous one-shot protocol whose
      second and later writes embed the process id in the written
      value.  No register count ever changes — the bug is invisible to
      the space measure — but the lockstep anonymity lint rejects it:
      two processes fed identical inputs and identical scan results
      write different values. *)

type mutant = {
  name : string;
  description : string;
  anonymous : bool;
  rounds : int;
  bound : Agreement.Params.t -> int;  (** the bound the honest algorithm obeys *)
  config : Agreement.Params.t -> Shm.Config.t;
}

val oob_oneshot : mutant
val pid_leak_anonymous : mutant
val all : mutant list
val find : string -> mutant option

(** What the analyzer says about a mutant at [p]: the summary and the
    diagnostics, exactly as {!Lint.check} under the mutant's own
    anonymity flag. *)
val check : mutant -> Agreement.Params.t -> Absint.summary * Lint.diag list

(** A mutant is rejected iff its static write footprint exceeds
    [bound] or some lint error fires. *)
val rejected : mutant -> Agreement.Params.t -> bool
