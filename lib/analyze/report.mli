(** Static-vs-paper-vs-dynamic reporting: the rows behind
    [sa_run analyze] and [BENCH_analyze.json] (EXPERIMENTS.md, E15).

    One row per (algorithm, parameter triple): the allocated register
    count, the paper bound from {!Bounds.Formulas}, the static write
    footprint from {!Absint}, the dynamically written registers from an
    {!Obs.Stats}-observed concrete run, and the lint diagnostics.  The
    row is [ok] iff static ≤ bound, dynamic ⊆ static, and no lint
    error fired — three containments that must hold of every honest
    algorithm and that the seeded mutants ({!Mutants}) violate. *)

type row = {
  algo : string;
  params : Agreement.Params.t;
  registers : int;  (** allocated *)
  bound : int;  (** the paper's register bound *)
  bound_label : string;
  static_writes : int;  (** |static write footprint| *)
  static_reads : int;
  dynamic_writes : int;  (** |dynamically written registers| *)
  static_within_bound : bool;  (** static_writes ≤ bound *)
  dynamic_within_static : bool;  (** dynamic set ⊆ static set *)
  lint_errors : int;
  diags : Lint.diag list;
  converged : bool;
  widened : bool;
  passes : int;
  steps : int;
  ok : bool;
}

(** Analyze one registry entry at one parameter triple: abstract
    interpretation + lints + dynamic measurement.  [dynamic:false]
    skips the concrete run (dynamic fields 0/true). *)
val row_for :
  ?budgets:Absint.budgets -> ?dynamic:bool -> Registry.entry ->
  Agreement.Params.t -> row

(** Every applicable (entry, params) pair of {!Registry.grid}
    [~max_n] (default 6) × [algos] (default all). *)
val sweep :
  ?budgets:Absint.budgets ->
  ?dynamic:bool ->
  ?max_n:int ->
  ?algos:string list ->
  unit ->
  row list

val violations : row list -> row list

(** One row as a [BENCH_analyze.json] row object (diagnostics included
    as structured objects). *)
val row_to_json : row -> Obs.Json.t

val pp_header : Format.formatter -> unit -> unit
val pp_row : Format.formatter -> row -> unit
