(** First-order protocol IR and control-flow graphs of program points.

    The step-list language is shared with the fuzzer ({!Fuzz.Gen}
    re-exports these types), so the dataflow analyses and the protocol
    optimizer apply to every generated protocol exactly.  Arbitrary
    free-monad programs are lowered into per-process point trees by
    {!lower}, which drives the abstract-stepping hooks of
    {!Shm.Program} against a collecting memory — the {!Absint}
    technique, exact up to the recorded truncation flag.

    A {e program point} is one operation occurrence (read, write, scan
    or decide).  Points are numbered in emission order; at run time a
    process poised at its [k]-th operation since invoking sits at a
    point whose unrolled index is [k] — the [Shm.Config.pc] bridge
    between dynamic steps and static points. *)

(** Where a written or decided value comes from: a small-integer
    constant, the invocation input, or the process's last observation
    (⊥ until its first read; a scan observes its first component).

    The constructors are re-exported from {!Shm.Vm}, where the
    language is defined: the same value is an analyzer subject, a fuzz
    corpus entry, and a bytecode-compilation subject. *)
type src = Shm.Vm.src = Const of int | Input | Last

type step = Shm.Vm.step =
  | Read of int  (** read one register (becomes [last]) *)
  | Write of int * src  (** write one register *)
  | Scan of int * int  (** atomic scan: offset, length *)
  | Loop of int * step list  (** repeat the body [count] times *)
  | Decide of src  (** output and halt; the tail is dead code *)

(** A symmetric protocol: [n] identical processes over [registers]
    single-writer-free registers, each running [steps]. *)
type prog = Shm.Vm.proto = { registers : int; n : int; steps : step list }

val src_to_string : src -> string
val step_to_string : step -> string
val pp_step : Format.formatter -> step -> unit

(** One-line replay form, e.g. ["r3 n2 : R0; W1<-in; L2[R1]; D last"]. *)
val to_string : prog -> string

val pp : Format.formatter -> prog -> unit

(** Inverse of {!to_string} (used by corpus files and [sa_run analyze
    --protocol]); errors mention the offending offset. *)
val parse : string -> (prog, string) result

(** {1 Control-flow graphs} *)

(** A point's operation — a loop-free projection of {!step}. *)
type pop =
  | PRead of int
  | PWrite of int * src
  | PScan of int * int
  | PDecide of src

type point = {
  op : pop;
  succs : int list;  (** control-flow successors, sorted *)
}

type cfg = {
  points : point array;  (** indexed by point id; entry is point 0 *)
  reachable : bool array;
      (** points reachable from the entry (code after a [Decide] is
          emitted but unreachable) *)
}

(** Flatten a program into its CFG: one point per operation occurrence
    (loop bodies once, with a back edge when the count admits a second
    iteration), [Decide] terminal. *)
val cfg_of_prog : prog -> cfg

val pop_to_string : pop -> string
val pp_cfg : Format.formatter -> cfg -> unit

(** {1 Lowering free-monad programs} *)

(** A lowered point's operation: like {!pop} but with the concrete
    written value (free-monad programs carry values, not sources). *)
type lop =
  | LRead of int
  | LWrite of int * Shm.Value.t
  | LScan of int * int
  | LYield of Shm.Value.t
  | LStop

type lpoint = { lop : lop; lsuccs : int list }

(** One process's point {e tree} (converging paths are not merged).
    [ltruncated] means the point budget or an analysis bound cut some
    path short — downstream fact derivation must not claim exactness. *)
type lowered = { pid : int; lpoints : lpoint array; ltruncated : bool }

(** [lower config] drives every process of [config] through the
    abstract-step hooks, fabricating results from a collecting memory
    seeded over two passes (so cross-process writes flow into read
    branches).  [max_points] (default 2000) bounds points per process;
    [inputs] and [rounds] are as in {!Absint.analyze}. *)
val lower :
  ?max_points:int ->
  ?inputs:(pid:int -> instance:int -> Shm.Value.t list) ->
  ?rounds:int ->
  Shm.Config.t ->
  lowered array

val lop_to_string : lop -> string
val pp_lowered : Format.formatter -> lowered -> unit
