(* Seeded broken protocols.  Both are hand-rolled programs over the
   raw Shm.Program constructors — no snapshot API indirection — so the
   offending step is exactly where the comment says it is and the
   witness paths in the tests stay short. *)

module P = Shm.Program
module V = Shm.Value

type mutant = {
  name : string;
  description : string;
  anonymous : bool;
  rounds : int;
  bound : Agreement.Params.t -> int;
  config : Agreement.Params.t -> Shm.Config.t;
}

(* ------------------------------------------------------------------ *)
(* Mutant 1: out-of-bound scratch write on a rare interleaving.        *)

let is_foreign_pair ~pid v =
  match V.view v with
  | V.Pair (_, id) -> (
    match V.view id with V.Int id -> id <> pid | _ -> false)
  | _ -> false

let oob_program ~m ~pid ~components =
  let pair pref = V.pair pref (V.int pid) in
  let rec loop pref i =
    P.write (i mod components) (pair pref) @@ fun () ->
    P.scan ~off:0 ~len:components @@ fun view ->
    if
      Array.exists (is_foreign_pair ~pid) view
      && Array.exists V.is_bot view
    then
      (* The bug: "remember" the race in a scratch register past the
         last component.  Sequential schedules never get here — the
         first process fills every component before anyone else runs,
         after which no ⊥ remains. *)
      P.write components (pair pref) (fun () -> loop pref (i + 1))
    else
      match Agreement.Oneshot.decide_check ~m view with
      | Some w -> P.yield w P.stop
      | None -> loop pref (i + 1)
  in
  P.await (fun input -> loop input pid)

let oob_oneshot =
  {
    name = "oob-oneshot";
    description =
      "Figure 3 variant writing one register beyond the Theorem 7 bound \
       on the branch 'scan shows a foreign pair while some component is \
       still bot'";
    anonymous = false;
    rounds = 1;
    bound = Agreement.Params.registers_upper;
    config =
      (fun p ->
        let components = Agreement.Params.registers_upper p in
        let procs =
          Array.init p.Agreement.Params.n (fun pid ->
              oob_program ~m:p.Agreement.Params.m ~pid ~components)
        in
        (* one scratch register past the bound, for the buggy branch *)
        Shm.Config.create ~registers:(components + 1) ~procs ());
  }

(* ------------------------------------------------------------------ *)
(* Mutant 2: anonymous protocol embedding the pid in written values.   *)

let leak_program ~m ~pid ~components =
  let rec loop pref i iter =
    P.scan ~off:0 ~len:components @@ fun view ->
    match Agreement.Anonymous_oneshot.decide_check ~m view with
    | Some w -> P.yield w P.stop
    | None ->
        let value =
          if iter <= 1 then pref
          else
            (* The bug: from the second write on, the stored value
               carries the process id — indistinguishable by register
               counts, caught by the lockstep anonymity lint. *)
            V.pair pref (V.int pid)
        in
        P.write (i mod components) value @@ fun () ->
        loop pref (i + 1) (iter + 1)
  in
  P.await (fun input -> loop input 0 1)

let pid_leak_anonymous =
  {
    name = "pid-leak-anonymous";
    description =
      "anonymous one-shot variant whose writes after the first embed \
       the process id in the written value";
    anonymous = true;
    rounds = 1;
    bound = Agreement.Params.r_anonymous;
    config =
      (fun p ->
        let components = Agreement.Params.r_anonymous p in
        let procs =
          Array.init p.Agreement.Params.n (fun pid ->
              leak_program ~m:p.Agreement.Params.m ~pid ~components)
        in
        Shm.Config.create ~registers:components ~procs ());
  }

let all = [ oob_oneshot; pid_leak_anonymous ]

let find name = List.find_opt (fun m -> String.equal m.name name) all

let check mu p =
  Lint.check ~rounds:mu.rounds ~anonymous:mu.anonymous (mu.config p)

let rejected mu p =
  let summary, diags = check mu p in
  Absint.IntSet.cardinal summary.Absint.writes > mu.bound p
  || Lint.errors diags <> []
