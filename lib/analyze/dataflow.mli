(** Classic dataflow analyses over the protocol CFG ({!Ir.cfg}).

    One run covers all [n] processes of a symmetric protocol: the
    per-register collecting store (an {!Absdom}, shared with the
    abstract interpreter) is fed by the CFG's writes under every
    process's input, so its value sets over-approximate every
    interleaving.  Forward analyses: per-point [last] value sets (joint
    fixpoint with the store), must-self-written registers, reaching
    definitions.  Backward analyses: shared-register liveness and
    [last]-liveness.

    Value-set facts ({!const_regs}, {!folded_value}) are sound only
    when {!field-widened} is false; syntactic facts (liveness, reaching,
    read/write sets, {!dead_regs}, {!redundant_points}) are exact on
    the CFG regardless.  docs/ANALYSIS.md §"Dataflow and independence"
    states the arguments. *)

module IntSet = Absint.IntSet

(** A small set of concrete values with a widening cap; [capped] means
    membership is incomplete. *)
type vset = { vals : Shm.Value.t list; capped : bool }

val singleton_value : vset -> Shm.Value.t option
val pp_vset : Format.formatter -> vset -> unit

type t = {
  prog : Ir.prog;
  cfg : Ir.cfg;
  inputs : Shm.Value.t list;  (** possible invocation inputs, all pids *)
  reg_values : Shm.Value.t list array;
      (** collected per-register value sets, ⊥ first *)
  read_regs : IntSet.t;  (** registers some reachable point reads or scans *)
  write_regs : IntSet.t;  (** registers some reachable point writes *)
  last_in : vset array;  (** per point: possible [last] values on entry *)
  must_self_written : IntSet.t array;
      (** per point: registers this process wrote on every path to it *)
  may_write_bot : bool array;  (** per register: some write may store ⊥ *)
  reaching_in : IntSet.t array array;
      (** [reaching_in.(p).(r)]: own write points that may reach [p]
          with no intervening self-write of [r] *)
  live_out : bool array array;
      (** [live_out.(p).(r)]: this process may read [r] after [p] *)
  last_live_out : bool array;
      (** per point: the current [last] may still be consumed *)
  widened : bool;  (** some value set hit its cap — value facts degrade *)
  passes : int;
}

(** [analyze prog] runs all analyses to fixpoint.  [inputs] defaults to
    {!Agreement.Runner.default_input} for every pid at instance 1 —
    the model under which generated protocols execute. *)
val analyze : ?inputs:Shm.Value.t list -> Ir.prog -> t

(** Possible [last] values {e after} point [id]. *)
val last_out : t -> int -> vset

(** {1 Derived facts} *)

(** Registers whose every write provably stores one same value (and
    that value).  Empty when {!field-widened}. *)
val const_regs : t -> (int * Shm.Value.t) list

(** Registers written by some process but read or scanned by none —
    their writes are unobservable. *)
val dead_regs : t -> int list

(** Reachable read/scan points whose observation is never consumed
    (plus zero-length scans), in point order. *)
val redundant_points : t -> int list

(** At a [W<-last] or [D last] point: the provably-unique value it
    stores, if the analysis can name it.  [None] when {!field-widened}. *)
val folded_value : t -> int -> Shm.Value.t option

val pp : Format.formatter -> t -> unit
