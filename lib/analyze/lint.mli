(** Well-formedness lints with machine-readable diagnostics.

    Every finding carries a stable rule id, a severity, a one-line
    message and a witness path (chronological step descriptions leading
    to the offending event).  Gate decisions look only at {!errors};
    warnings and infos are advisory.

    Rules:
    - [space/out-of-bounds] ({e error}) — a read, write or scan range
      outside the allocated registers, from the abstract interpreter.
    - [decide/write-after-decide] ({e error}) — a shared write between
      a [Yield] and the next [Await]/[Stop]: output must be the last
      visible action of an operation.
    - [loop/unbounded-solo] ({e error}) — run {e solo} (the m ≥ 1
      obstruction-free case every algorithm must satisfy), a process
      fails to output within the widening fuel: no [Yield]/[Stop]
      reached.  Checked by exact concrete interpretation, not
      abstraction.
    - [anon/pid-dependent-value] ({e error}, anonymous algorithms
      only) — lockstep differential execution of two processes fed
      identical inputs and identical operation results diverges in a
      visible action (operation shape, written value, or output): some
      shared value's construction depends on the process identity.
    - [absint/path-abandoned] ({e info}) — an explored path died in the
      program's own decode logic under an abstract value mix.
    - [absint/widened] ({e warning}) — value sets hit the widening cap;
      value coverage (not register coverage) is incomplete. *)

type severity = Error | Warning | Info

type diag = {
  rule : string;
  severity : severity;
  message : string;
  witness : Absint.witness;
}

val severity_name : severity -> string
val errors : diag list -> diag list
val pp_diag : Format.formatter -> diag -> unit

(** Diagnostics derivable from an existing abstract-interpretation
    summary: out-of-bounds, write-after-decide, abandoned paths,
    widening. *)
val of_summary : Absint.summary -> diag list

(** Concrete solo execution of every process ([fuel] ops per
    invocation, default scaled as {!Absint.budgets_for}); diagnoses
    [loop/unbounded-solo]. *)
val solo_termination :
  ?fuel:int ->
  ?inputs:(pid:int -> instance:int -> Shm.Value.t) ->
  ?rounds:int ->
  Shm.Config.t ->
  diag list

(** Lockstep differential execution of processes 0 and 1 under
    identical inputs and identical fabricated results; diagnoses
    [anon/pid-dependent-value].  Configurations with fewer than two
    processes trivially pass. *)
val anonymity :
  ?fuel:int -> ?rounds:int -> ?input:Shm.Value.t -> Shm.Config.t -> diag list

(** All applicable rules: abstract interpretation (or reuse [summary]),
    solo termination, and — when [anonymous] — the anonymity check.
    Returns the summary used and the diagnostics. *)
val check :
  ?budgets:Absint.budgets ->
  ?rounds:int ->
  ?summary:Absint.summary ->
  anonymous:bool ->
  Shm.Config.t ->
  Absint.summary * diag list
