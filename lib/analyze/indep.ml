(* Conditional independence of shared-memory steps.

   [Spec.Dpor]'s baseline relation is footprint disjointness: two
   poised steps of different processes commute when neither writes a
   register the other touches.  This module refines it with
   Katz–Peled-style *conditional* independence — pairs that commute in
   the current state even though their footprints collide:

   - write/write of the same register storing equal values (both
     orders produce the identical configuration; [Value.equal] is a
     pointer test on hash-consed values);
   - a write that re-stores the value the register already holds
     (a no-op write) against any read or scan of that register —
     checked by peeking at the current memory, which is side-effect
     free ([Memory.read] does not count accesses; the stepping rule
     counts separately).

   Every rule is justified by state identity: executing the pair in
   either order yields configurations equal in memory content, local
   states, and access counters — the property the sleep-set filter
   needs and the QCheck commutation property in test/test_analyze.ml
   checks on both memory backends.  Footprint-dead register writes do
   NOT qualify (two unobservable writes of different values still
   produce different memories), so they feed the lint and the
   optimizer, never this relation.

   Static [facts] from the dataflow engine certify some pairs without
   looking at values (a constant register's writes all store one
   value); everything else falls back to the O(1) conditional checks.
   Returning [false] never hurts soundness — it only declines to
   refine. *)

module V = Shm.Value
module P = Shm.Program

type facts = {
  const_regs : (int * V.t) list;
      (** registers whose every write stores this one value *)
  dead_regs : int list;  (** written but never read — lint/optimizer only *)
  redundant : int list;  (** read/scan points with unconsumed observations *)
  widened : bool;  (** value analysis hit a cap; value claims dropped *)
}

let empty = { const_regs = []; dead_regs = []; redundant = []; widened = false }

let of_dataflow d =
  {
    const_regs = Dataflow.const_regs d;
    dead_regs = Dataflow.dead_regs d;
    redundant = Dataflow.redundant_points d;
    widened = d.Dataflow.widened;
  }

let of_prog ?inputs prog = of_dataflow (Dataflow.analyze ?inputs prog)

(* Facts for a free-monad configuration: registers dead by the abstract
   footprint (sound only when no process's exploration truncated), and
   constant registers read off the lowered point trees' concrete write
   values (sound only when no tree truncated). *)
let of_config ?budgets config =
  let summary = Absint.analyze ?budgets config in
  let truncated =
    Array.exists (fun p -> p.Absint.truncated) summary.Absint.per_process
  in
  let dead_regs =
    if truncated then []
    else
      Absint.IntSet.elements
        (Absint.IntSet.diff summary.Absint.writes summary.Absint.reads)
  in
  let lowered = Ir.lower config in
  let ltrunc = Array.exists (fun l -> l.Ir.ltruncated) lowered in
  let const_regs =
    if ltrunc then []
    else begin
      let acc : (int, V.t option) Hashtbl.t = Hashtbl.create 8 in
      Array.iter
        (fun l ->
          Array.iter
            (fun (pt : Ir.lpoint) ->
              match pt.Ir.lop with
              | Ir.LWrite (r, v) -> (
                match Hashtbl.find_opt acc r with
                | None -> Hashtbl.replace acc r (Some v)
                | Some (Some v') when V.equal v v' -> ()
                | Some _ -> Hashtbl.replace acc r None)
              | _ -> ())
            l.Ir.lpoints)
        lowered;
      Hashtbl.fold
        (fun r v acc -> match v with Some v -> (r, v) :: acc | None -> acc)
        acc []
      |> List.sort compare
    end
  in
  { const_regs; dead_regs; redundant = []; widened = truncated || ltrunc }

(* ------------------------------------------------------------------ *)
(* The refinement relation                                             *)

type refinement = mem:Shm.Memory.t -> P.op -> P.op -> bool

let scan_covers off len r = r >= off && r < off + len

let refinement ?(facts = empty) () : refinement =
  let const_value r =
    List.find_map
      (fun (r', v) -> if r' = r then Some v else None)
      facts.const_regs
  in
  let noop_write ~mem r v = V.equal (Shm.Memory.read mem r) v in
  fun ~mem a b ->
    match (a, b) with
    | P.Write (r1, v1), P.Write (r2, v2) ->
      r1 = r2
      && (V.equal v1 v2
         ||
         (* static certificate: every write to a constant register
            stores that one value (re-checked against the certificate,
            so stale facts cannot unsound the relation) *)
         match const_value r1 with
         | Some c -> V.equal v1 c && V.equal v2 c
         | None -> false)
    | P.Write (r, v), P.Read r' | P.Read r', P.Write (r, v) ->
      r = r' && noop_write ~mem r v
    | P.Write (r, v), P.Scan (off, len) | P.Scan (off, len), P.Write (r, v) ->
      scan_covers off len r && noop_write ~mem r v
    | _ -> false (* read/read pairs are footprint-independent already *)

(* ------------------------------------------------------------------ *)
(* Lint rules                                                          *)

(* Shortest entry path to a point, rendered one step per line — the
   same witness shape the abstract interpreter produces. *)
let witness_to (cfg : Ir.cfg) target =
  let n = Array.length cfg.points in
  if target < 0 || target >= n || not cfg.reachable.(target) then []
  else begin
    let prev = Array.make n (-2) in
    prev.(0) <- -1;
    let q = Queue.create () in
    Queue.push 0 q;
    let rec bfs () =
      if Queue.is_empty q then ()
      else
        let id = Queue.pop q in
        if id = target then ()
        else begin
          List.iter
            (fun s ->
              if prev.(s) = -2 then begin
                prev.(s) <- id;
                Queue.push s q
              end)
            cfg.points.(id).succs;
          bfs ()
        end
    in
    bfs ();
    let rec path id acc =
      if id < 0 then acc else path prev.(id) (id :: acc)
    in
    if prev.(target) = -2 then []
    else
      List.map
        (fun id ->
          Fmt.str "point %d: %s" id (Ir.pop_to_string cfg.points.(id).op))
        (path target [])
  end

let lint d =
  let facts = of_dataflow d in
  let cfg = d.Dataflow.cfg in
  let find_write_point r =
    let found = ref None in
    Array.iteri
      (fun id (pt : Ir.point) ->
        if !found = None && cfg.Ir.reachable.(id) then
          match pt.Ir.op with
          | Ir.PWrite (r', _) when r' = r -> found := Some id
          | _ -> ())
      cfg.Ir.points;
    !found
  in
  let dead =
    List.filter_map
      (fun r ->
        Option.map
          (fun id ->
            {
              Lint.rule = "flow/dead-register-write";
              severity = Lint.Warning;
              message =
                Fmt.str
                  "register R%d is written but no process ever reads it — \
                   the write at point %d is unobservable"
                  r id;
              witness = witness_to cfg id;
            })
          (find_write_point r))
      facts.dead_regs
  in
  let redundant =
    List.map
      (fun id ->
        let what =
          match cfg.Ir.points.(id).Ir.op with
          | Ir.PScan (_, 0) -> "zero-length scan observes nothing"
          | Ir.PScan _ -> "scan result is never consumed"
          | _ -> "read result is never consumed"
        in
        {
          Lint.rule = "flow/redundant-scan";
          severity = Lint.Warning;
          message = Fmt.str "point %d: %s (dead observation)" id what;
          witness = witness_to cfg id;
        })
      facts.redundant
  in
  let consts =
    List.filter_map
      (fun (r, v) ->
        Option.map
          (fun id ->
            {
              Lint.rule = "flow/constant-register";
              severity = Lint.Info;
              message =
                Fmt.str
                  "register R%d always holds %a once written — every write \
                   stores the same value"
                  r V.pp v;
              witness = witness_to cfg id;
            })
          (find_write_point r))
      facts.const_regs
  in
  dead @ redundant @ consts

let pp_facts ppf f =
  Fmt.pf ppf "@[<v>const: %a@,dead: {%a}@,redundant points: [%a]%s@]"
    Fmt.(list ~sep:(any ",") (pair ~sep:(any "=") int V.pp))
    f.const_regs
    Fmt.(list ~sep:(any ",") int)
    f.dead_regs
    Fmt.(list ~sep:(any ",") int)
    f.redundant
    (if f.widened then "  (widened)" else "")
