(* The analyzer's algorithm registry: name → configuration + paper
   bound + dynamic measurement.  Bounds come from Bounds.Formulas so
   the analyzer and the bench tables can never disagree on Figure 1. *)

type entry = {
  name : string;
  figure : string;
  anonymous : bool;
  rounds : int;
  applicable : Agreement.Params.t -> bool;
  registers : Agreement.Params.t -> int;
  bound : Agreement.Params.t -> int;
  bound_label : string;
  config : Agreement.Params.t -> Shm.Config.t;
}

let cell_upper name p =
  match Bounds.Formulas.for_algorithm name with
  | Some c -> int_of_float (Float.ceil (c.Bounds.Formulas.upper p))
  | None -> invalid_arg ("Registry: no bounds cell for " ^ name)

let oneshot =
  {
    name = "oneshot";
    figure = "Figure 3";
    anonymous = false;
    rounds = 1;
    applicable = (fun _ -> true);
    registers =
      (fun p ->
        let impl = Agreement.Instances.space_optimal_impl p in
        Agreement.Instances.registers_for impl
          ~r:(Agreement.Params.r_oneshot p) ~n:p.Agreement.Params.n);
    bound = cell_upper "oneshot";
    bound_label = "Theorem 7: min(n+2m-k, n)";
    config =
      (fun p ->
        Agreement.Instances.oneshot
          ~impl:(Agreement.Instances.space_optimal_impl p) p);
  }

let repeated =
  {
    oneshot with
    name = "repeated";
    figure = "Figure 4";
    rounds = 2;
    bound = cell_upper "repeated";
    bound_label = "Theorem 8: min(n+2m-k, n)";
    config =
      (fun p ->
        Agreement.Instances.repeated
          ~impl:(Agreement.Instances.space_optimal_impl p) p);
  }

let anonymous =
  {
    name = "anonymous";
    figure = "Figure 5";
    anonymous = true;
    rounds = 2;
    applicable = (fun _ -> true);
    registers = (fun p -> Agreement.Params.r_anonymous p + 1);
    bound = cell_upper "anonymous";
    bound_label = "Theorem 11: (m+1)(n-k) + m^2 + 1";
    config = (fun p -> Agreement.Instances.anonymous p);
  }

let baseline =
  {
    name = "baseline";
    figure = "DFGR'13 (Section 4.1)";
    anonymous = false;
    rounds = 1;
    applicable =
      (fun p ->
        p.Agreement.Params.m = 1
        && Agreement.Baseline_dfgr13.supported ~n:p.Agreement.Params.n
             ~k:p.Agreement.Params.k);
    registers = (fun p -> Agreement.Params.r_dfgr13 p);
    bound = cell_upper "baseline";
    bound_label = "DFGR'13: 2(n-k)";
    config = (fun p -> Agreement.Instances.baseline p);
  }

let all = [ oneshot; repeated; anonymous; baseline ]

let names = List.map (fun e -> e.name) all

let find name = List.find_opt (fun e -> String.equal e.name name) all

let measure_dynamic e p =
  let config = e.config p in
  let n = Shm.Config.n config in
  let registers = Shm.Memory.size (Shm.Config.mem config) in
  let stats = Obs.Stats.create ~n ~registers () in
  let inputs ~pid ~instance =
    if instance <= e.rounds then
      Some (Agreement.Runner.default_input ~pid ~instance)
    else None
  in
  let _ =
    Shm.Exec.run
      ~sink:(Obs.Stats.sink stats)
      ~max_steps:400_000
      ~sched:(Shm.Schedule.round_robin n)
      ~inputs config
  in
  let a = Obs.Stats.to_analysis stats in
  Array.to_seqi a.Shm.Analysis.writes_per_register
  |> Seq.filter_map (fun (r, w) -> if w > 0 then Some r else None)
  |> Absint.IntSet.of_seq

let grid ~max_n =
  let ps = ref [] in
  for n = 2 to max_n do
    for k = 1 to n - 1 do
      for m = 1 to k do
        ps := Agreement.Params.make ~n ~m ~k :: !ps
      done
    done
  done;
  List.rev !ps
