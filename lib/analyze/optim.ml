(* The protocol optimizer: dataflow-certified rewrites.

   Three rewrite families, each justified by an observability argument
   (verdict checkers see only inputs and outputs; docs/ANALYSIS.md):

   - constant folding — [W<-last] / [D last] whose [last] value set is
     a provable singleton integer becomes [W<-c] / [D c] (the stored
     value is unchanged, by the dataflow soundness argument);
   - redundant-scan collapse — reads and scans whose observation is
     never consumed (dead [last]) are dropped, as are zero-length
     scans: no local state anyone branches on changes;
   - dead-register elimination — writes to registers no process ever
     reads are dropped: the stored values are unobservable.

   Dropping operations shifts every later op's timing relative to a
   fixed schedule, so per-schedule output equality against the
   optimized program run standalone does NOT hold and is not claimed.
   The correctness statement is simulation: running the original under
   any schedule and feeding the optimized program the results of the
   kept operations yields identical visible behaviour (op shapes,
   written values, outputs).  [Fuzz.Oracle]'s [optim] oracle checks
   exactly that on random protocols; [kept_mask] is the bridge.

   Passes iterate to a fixpoint (dropping a read can kill the writes
   that fed it, and so on), composing the kept-masks across
   iterations. *)

module V = Shm.Value

type edit = Keep of Ir.step | Fold of Ir.step * Ir.step | Drop of Ir.step | Eloop of int * edit list

type result = {
  original : Ir.prog;
  optimized : Ir.prog;
  edits : edit list;  (** last iteration's edits, for display *)
  kept : bool list;
      (** composed unrolled keep-mask over the original's executed op
          sequence (loops repeated, cut at the first decide) *)
  folded : int;
  dropped : int;
  iterations : int;
}

(* ------------------------------------------------------------------ *)
(* Unrolled executed-op sequences                                      *)

exception Decided

(* Shared-memory ops of [steps] in execution order: loops repeated,
   everything after the first Decide never runs. *)
let unrolled_ops steps =
  let acc = ref [] in
  let rec go steps =
    List.iter
      (fun (s : Ir.step) ->
        match s with
        | Ir.Read _ | Ir.Write _ | Ir.Scan _ -> acc := s :: !acc
        | Ir.Decide _ -> raise Decided
        | Ir.Loop (c, b) ->
          for _ = 1 to c do
            go b
          done)
      steps
  in
  (try go steps with Decided -> ());
  List.rev !acc

(* Same walk over an edit list, emitting the keep flag per executed op.
   A folded op is kept (it still executes, with the same value). *)
let unrolled_mask edits =
  let acc = ref [] in
  let rec go edits =
    List.iter
      (fun e ->
        match e with
        | Keep (Ir.Decide _) | Fold (Ir.Decide _, _) -> raise Decided
        | Drop (Ir.Decide _) ->
          (* only dead code drops decides, and the walk raises at the
             live decide before reaching any dead code *)
          assert false
        | Drop (Ir.Loop _) -> () (* empty or zero-count: executes nothing *)
        | Keep _ | Fold _ -> acc := true :: !acc
        | Drop _ -> acc := false :: !acc
        | Eloop (c, b) ->
          for _ = 1 to c do
            go b
          done)
      edits
  in
  (try go edits with Decided -> ());
  List.rev !acc

(* Compose: [m2] refines the kept positions of [m1]. *)
let compose_masks m1 m2 =
  let rest = ref m2 in
  List.map
    (fun k1 ->
      if not k1 then false
      else
        match !rest with
        | k2 :: tl ->
          rest := tl;
          k2
        | [] -> true (* m2 exhausted: the op was cut by a decide *))
    m1

(* ------------------------------------------------------------------ *)
(* One rewrite pass                                                    *)

let as_const v =
  match V.view v with V.Int c -> Some (Ir.Const c) | _ -> None

(* Walk the step list mirroring [Ir.cfg_of_prog]'s point emission order
   exactly, so dataflow facts indexed by point id line up. *)
let rewrite_pass (d : Dataflow.t) =
  let facts = Indep.of_dataflow d in
  let dead r = List.mem r facts.Indep.dead_regs in
  let redundant id = List.mem id facts.Indep.redundant in
  let next = ref 0 in
  let emit () =
    let id = !next in
    incr next;
    id
  in
  let rec go steps ~live =
    (* [live] false once a Decide was passed at this level: dead code *)
    match steps with
    | [] -> []
    | (s : Ir.step) :: tl -> (
      match s with
      | Ir.Read _ | Ir.Scan _ ->
        let id = emit () in
        let e =
          if (not live) || redundant id then Drop s
          else Keep s
        in
        e :: go tl ~live
      | Ir.Write (r, src) ->
        let id = emit () in
        let e =
          if (not live) || dead r then Drop s
          else
            match src with
            | Ir.Last -> (
              match Option.bind (Dataflow.folded_value d id) as_const with
              | Some c -> Fold (s, Ir.Write (r, c))
              | None -> Keep s)
            | _ -> Keep s
        in
        e :: go tl ~live
      | Ir.Decide src ->
        let id = emit () in
        let e =
          if not live then Drop s
          else
            match src with
            | Ir.Last -> (
              match Option.bind (Dataflow.folded_value d id) as_const with
              | Some c -> Fold (s, Ir.Decide c)
              | None -> Keep s)
            | _ -> Keep s
        in
        e :: go tl ~live:false
      | Ir.Loop (c, body) ->
        if c <= 0 || body = [] then Drop s :: go tl ~live
        else
          let b = go body ~live in
          let live_after =
            live
            && not
                 (List.exists
                    (let rec decides = function
                       | Keep (Ir.Decide _) | Fold (Ir.Decide _, _) -> true
                       | Eloop (_, es) -> List.exists decides es
                       | _ -> false
                     in
                     decides)
                    b)
          in
          Eloop (c, b) :: go tl ~live:live_after)
  in
  fun steps -> go steps ~live:true

(* Rebuild the step list an edit list denotes. *)
let rec apply_edits edits =
  List.filter_map
    (fun e ->
      match e with
      | Keep s -> Some s
      | Fold (_, s') -> Some s'
      | Drop _ -> None
      | Eloop (c, b) -> (
        match apply_edits b with [] -> None | b' -> Some (Ir.Loop (c, b'))))
    edits

let rec count_edits edits =
  List.fold_left
    (fun (f, dr) e ->
      match e with
      | Keep _ -> (f, dr)
      | Fold _ -> (f + 1, dr)
      | Drop (Ir.Loop _) -> (f, dr) (* empty/zero loops execute nothing *)
      | Drop _ -> (f, dr + 1)
      | Eloop (_, b) ->
        let f', dr' = count_edits b in
        (f + f', dr + dr'))
    (0, 0) edits

(* ------------------------------------------------------------------ *)

let max_iterations = 4

let optimize ?inputs (prog : Ir.prog) =
  let rec iter p mask folded dropped last_edits i =
    if i >= max_iterations then (p, mask, folded, dropped, last_edits, i)
    else
      let d = Dataflow.analyze ?inputs p in
      let edits = rewrite_pass d p.Ir.steps in
      let f, dr = count_edits edits in
      if f = 0 && dr = 0 then (p, mask, folded, dropped, last_edits, i)
      else
        let p' = { p with Ir.steps = apply_edits edits } in
        let mask' = compose_masks mask (unrolled_mask edits) in
        iter p' mask' (folded + f) (dropped + dr) (Some edits) (i + 1)
  in
  let id_mask = List.map (fun _ -> true) (unrolled_ops prog.Ir.steps) in
  let optimized, kept, folded, dropped, edits, iterations =
    iter prog id_mask 0 0 None 0
  in
  {
    original = prog;
    optimized;
    edits = Option.value edits ~default:(List.map (fun s -> Keep s) prog.Ir.steps);
    kept;
    folded;
    dropped;
    iterations;
  }

let kept_mask r = r.kept

(* ------------------------------------------------------------------ *)

let rec pp_edit ppf = function
  | Keep s -> Fmt.pf ppf "%s" (Ir.step_to_string s)
  | Fold (s, s') ->
    Fmt.pf ppf "%s=>%s" (Ir.step_to_string s) (Ir.step_to_string s')
  | Drop s -> Fmt.pf ppf "-%s" (Ir.step_to_string s)
  | Eloop (c, b) ->
    Fmt.pf ppf "L%d[%a]" c Fmt.(list ~sep:(any "; ") pp_edit) b

let pp ppf r =
  Fmt.pf ppf "@[<v>original:  %s@,optimized: %s@,edits: %a@,folded %d, dropped %d, %d iteration%s@]"
    (Ir.to_string r.original) (Ir.to_string r.optimized)
    Fmt.(list ~sep:(any "; ") pp_edit)
    r.edits r.folded r.dropped r.iterations
    (if r.iterations = 1 then "" else "s")
