(* The abstract value domain: one growing value set per register.

   Collecting semantics over all explored paths of all processes: a
   register's set holds every value some explored execution may have
   stored there, ⊥ included.  Joins forget interleavings on purpose —
   any schedule whose writes stay inside the collected sets reads only
   collected values, which is the over-approximation the footprint
   soundness argument rests on (docs/ANALYSIS.md).

   Sets are kept as insertion-ordered lists (⊥ first) with linear
   dedup: the widening cap keeps them tiny, and insertion order is
   load-bearing — [latest] drives the preferred, no-fork path of the
   interpreter. *)

type reg = {
  mutable vals : Shm.Value.t list;  (* insertion order, ⊥ first *)
  mutable count : int;
  mutable capped : bool;
}

type t = {
  regs : reg array;
  set_cap : int;
  mutable version : int;
  mutable widened : bool;
}

let create ~registers ~set_cap =
  if registers < 0 then invalid_arg "Absdom.create: negative registers";
  if set_cap < 2 then invalid_arg "Absdom.create: set_cap < 2";
  {
    regs =
      Array.init registers (fun _ ->
          { vals = [ Shm.Value.bot ]; count = 1; capped = false });
    set_cap;
    version = 0;
    widened = false;
  }

let registers t = Array.length t.regs

let version t = t.version

let widened t = t.widened

let mem_value vals v = List.exists (Shm.Value.equal v) vals

let add t r v =
  if r >= 0 && r < Array.length t.regs then begin
    let reg = t.regs.(r) in
    if not (mem_value reg.vals v) then
      if reg.count >= t.set_cap then begin
        reg.capped <- true;
        t.widened <- true
      end
      else begin
        reg.vals <- reg.vals @ [ v ];
        reg.count <- reg.count + 1;
        t.version <- t.version + 1
      end
  end

let values t r =
  if r >= 0 && r < Array.length t.regs then t.regs.(r).vals else [ Shm.Value.bot ]

let latest t r =
  match List.rev (values t r) with v :: _ -> v | [] -> Shm.Value.bot

let cardinal t r =
  if r >= 0 && r < Array.length t.regs then t.regs.(r).count else 1

(* ------------------------------------------------------------------ *)
(* Read alternatives.                                                  *)

let dedup_values vs =
  List.fold_left (fun acc v -> if mem_value acc v then acc else acc @ [ v ]) [] vs

let read_alternatives t ~width r =
  let vals = values t r in
  if List.length vals <= width then
    (* exhaustive; preferred (latest) first *)
    dedup_values (latest t r :: vals)
  else
    let first_written =
      match vals with _bot :: v :: _ -> [ v ] | _ -> []
    in
    let picks = (latest t r :: Shm.Value.bot :: first_written) @ List.rev vals in
    let deduped = dedup_values picks in
    List.filteri (fun i _ -> i < width) deduped

(* ------------------------------------------------------------------ *)
(* Scan alternatives.                                                  *)

let product_size t ~cap ~off ~len =
  let rec go i acc =
    if i >= len then Some acc
    else
      let acc = acc * cardinal t (off + i) in
      if acc > cap then None else go (i + 1) acc
  in
  go 0 1

(* Full product enumeration — exact value coverage for the scan.  The
   first emitted view is latest-everywhere (the preferred path). *)
let enumerate t ~off ~len =
  let choices = Array.init len (fun i -> values t (off + i)) in
  let rec go i =
    if i >= len then [ [] ]
    else
      let rest = go (i + 1) in
      List.concat_map (fun v -> List.map (fun tl -> v :: tl) rest) choices.(i)
  in
  let all = List.map Array.of_list (go 0) in
  let pref = Array.init len (fun i -> latest t (off + i)) in
  pref :: List.filter (fun v -> not (Array.for_all2 Shm.Value.equal v pref)) all

let dedup_views vs =
  let eq a b = Array.length a = Array.length b && Array.for_all2 Shm.Value.equal a b in
  List.fold_left (fun acc v -> if List.exists (eq v) acc then acc else acc @ [ v ]) [] vs

let scan_views t ~width ~exhaustive_cap ?just_wrote ~off ~len () =
  if len = 0 then [ [||] ]
  else
    match product_size t ~cap:exhaustive_cap ~off ~len with
    | Some _ -> enumerate t ~off ~len
    | None ->
      let latest_view = Array.init len (fun i -> latest t (off + i)) in
      (* A half-finished block of writes: fresh values at the low
         registers, ⊥ above — the view a scanner racing a slower block
         writer observes.  This is the template that exposes branches
         guarded on "foreign value present while some register is
         still ⊥" (cf. the out-of-bound mutant). *)
      let prefix_view =
        Array.init len (fun i ->
            if i < (len + 1) / 2 then latest t (off + i) else Shm.Value.bot)
      in
      let uniform_own =
        match just_wrote with
        | Some v -> [ Array.make len v ]
        | None -> []
      in
      (* Maximal value diversity: cycle each register through its set. *)
      let diverse =
        Array.init len (fun i ->
            let vals = values t (off + i) in
            List.nth vals (i mod List.length vals))
      in
      let bot_view = Array.make len Shm.Value.bot in
      let all =
        dedup_views
          ((latest_view :: uniform_own) @ [ prefix_view; diverse; bot_view ])
      in
      List.filteri (fun i _ -> i < width) all
