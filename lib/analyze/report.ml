(* Static-vs-paper-vs-dynamic rows; see report.mli. *)

type row = {
  algo : string;
  params : Agreement.Params.t;
  registers : int;
  bound : int;
  bound_label : string;
  static_writes : int;
  static_reads : int;
  dynamic_writes : int;
  static_within_bound : bool;
  dynamic_within_static : bool;
  lint_errors : int;
  diags : Lint.diag list;
  converged : bool;
  widened : bool;
  passes : int;
  steps : int;
  ok : bool;
}

let row_for ?budgets ?(dynamic = true) (e : Registry.entry) p =
  let config = e.config p in
  let summary, diags =
    Lint.check ?budgets ~rounds:e.rounds ~anonymous:e.anonymous config
  in
  let static_set = summary.Absint.writes in
  let dynamic_set =
    if dynamic then Registry.measure_dynamic e p else Absint.IntSet.empty
  in
  let bound = e.bound p in
  let static_writes = Absint.IntSet.cardinal static_set in
  let lint_errors = List.length (Lint.errors diags) in
  let static_within_bound = static_writes <= bound in
  let dynamic_within_static = Absint.IntSet.subset dynamic_set static_set in
  {
    algo = e.name;
    params = p;
    registers = e.registers p;
    bound;
    bound_label = e.bound_label;
    static_writes;
    static_reads = Absint.IntSet.cardinal summary.Absint.reads;
    dynamic_writes = Absint.IntSet.cardinal dynamic_set;
    static_within_bound;
    dynamic_within_static;
    lint_errors;
    diags;
    converged = summary.Absint.converged;
    widened = summary.Absint.widened;
    passes = summary.Absint.passes;
    steps = summary.Absint.steps;
    ok = static_within_bound && dynamic_within_static && lint_errors = 0;
  }

let sweep ?budgets ?dynamic ?(max_n = 6) ?algos () =
  let entries =
    match algos with
    | None -> Registry.all
    | Some names ->
        List.filter (fun (e : Registry.entry) -> List.mem e.name names)
          Registry.all
  in
  List.concat_map
    (fun (e : Registry.entry) ->
      Registry.grid ~max_n
      |> List.filter e.applicable
      |> List.map (row_for ?budgets ?dynamic e))
    entries

let violations rows = List.filter (fun r -> not r.ok) rows

let diag_to_json (d : Lint.diag) =
  Obs.Json.Obj
    [
      ("rule", Obs.Json.String d.rule);
      ("severity", Obs.Json.String (Lint.severity_name d.severity));
      ("message", Obs.Json.String d.message);
      ( "witness",
        Obs.Json.Arr (List.map (fun s -> Obs.Json.String s) d.witness) );
    ]

let row_to_json r =
  let { Agreement.Params.n; m; k } = r.params in
  Obs.Json.Obj
    [
      ("algo", Obs.Json.String r.algo);
      ("n", Obs.Json.Int n);
      ("m", Obs.Json.Int m);
      ("k", Obs.Json.Int k);
      ("registers", Obs.Json.Int r.registers);
      ("bound", Obs.Json.Int r.bound);
      ("bound_label", Obs.Json.String r.bound_label);
      ("static_writes", Obs.Json.Int r.static_writes);
      ("static_reads", Obs.Json.Int r.static_reads);
      ("dynamic_writes", Obs.Json.Int r.dynamic_writes);
      ("static_within_bound", Obs.Json.Bool r.static_within_bound);
      ("dynamic_within_static", Obs.Json.Bool r.dynamic_within_static);
      ("lint_errors", Obs.Json.Int r.lint_errors);
      ("converged", Obs.Json.Bool r.converged);
      ("widened", Obs.Json.Bool r.widened);
      ("passes", Obs.Json.Int r.passes);
      ("steps", Obs.Json.Int r.steps);
      ("ok", Obs.Json.Bool r.ok);
      ( "diags",
        Obs.Json.Arr
          (List.map diag_to_json
             (List.filter (fun (d : Lint.diag) -> d.severity <> Lint.Info)
                r.diags)) );
    ]

let pp_header ppf () =
  Fmt.pf ppf "%-10s %-12s %4s %6s %7s %7s %5s %s" "algo" "(n,m,k)" "regs"
    "bound" "static" "dynamic" "lint" "verdict"

let pp_row ppf r =
  let { Agreement.Params.n; m; k } = r.params in
  Fmt.pf ppf "%-10s (%d,%d,%d)%6s %4d %6d %7d %7d %5d %s" r.algo n m k ""
    r.registers r.bound r.static_writes r.dynamic_writes r.lint_errors
    (if r.ok then "ok" else "VIOLATION")
