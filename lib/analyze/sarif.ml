(* SARIF 2.1.0 export of lint diagnostics.

   One run of one tool.  The protocol model has no file/line locations
   — a diagnostic's site is a program point — so locations carry the
   logical artifact the CLI analyzed (an algorithm name or a protocol
   string) and the witness path rides along as a code flow (one
   thread-flow location per step), which is what SARIF viewers render
   as "path to the problem".  Schema fields follow
   https://docs.oasis-open.org/sarif/sarif/v2.1.0/. *)

module J = Obs.Json

let sarif_level = function
  | Lint.Error -> "error"
  | Lint.Warning -> "warning"
  | Lint.Info -> "note"

(* Stable rule metadata: every rule id seen in the diagnostics becomes
   a reportingDescriptor, so viewers can group findings. *)
let rule_descriptors diags =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (d : Lint.diag) ->
      if Hashtbl.mem seen d.Lint.rule then None
      else begin
        Hashtbl.add seen d.Lint.rule ();
        Some
          (J.Obj
             [
               ("id", J.String d.Lint.rule);
               ( "defaultConfiguration",
                 J.Obj [ ("level", J.String (sarif_level d.Lint.severity)) ] );
             ])
      end)
    diags

let location ~artifact =
  J.Obj
    [
      ( "physicalLocation",
        J.Obj
          [
            ( "artifactLocation",
              J.Obj [ ("uri", J.String artifact) ] );
          ] );
    ]

let code_flow ~artifact witness =
  J.Obj
    [
      ( "threadFlows",
        J.Arr
          [
            J.Obj
              [
                ( "locations",
                  J.Arr
                    (List.map
                       (fun step ->
                         J.Obj
                           [
                             ( "location",
                               J.Obj
                                 [
                                   ( "physicalLocation",
                                     J.Obj
                                       [
                                         ( "artifactLocation",
                                           J.Obj
                                             [ ("uri", J.String artifact) ] );
                                       ] );
                                   ( "message",
                                     J.Obj [ ("text", J.String step) ] );
                                 ] );
                           ])
                       witness) );
              ];
          ] );
    ]

let result (artifact, (d : Lint.diag)) =
  let base =
    [
      ("ruleId", J.String d.Lint.rule);
      ("level", J.String (sarif_level d.Lint.severity));
      ("message", J.Obj [ ("text", J.String d.Lint.message) ]);
      ("locations", J.Arr [ location ~artifact ]);
    ]
  in
  let flows =
    if d.Lint.witness = [] then []
    else [ ("codeFlows", J.Arr [ code_flow ~artifact d.Lint.witness ]) ]
  in
  J.Obj (base @ flows)

(* Each result names the artifact it was found in (e.g.
   ["algo:oneshot"] or ["protocol:r2 n2 : ..."]). *)
let log ~tool_version results =
  let diags = List.map snd results in
  J.Obj
    [
      ("version", J.String "2.1.0");
      ( "$schema",
        J.String
          "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"
      );
      ( "runs",
        J.Arr
          [
            J.Obj
              [
                ( "tool",
                  J.Obj
                    [
                      ( "driver",
                        J.Obj
                          [
                            ("name", J.String "sa_run-analyze");
                            ("version", J.String tool_version);
                            ("informationUri", J.String "docs/ANALYSIS.md");
                            ("rules", J.Arr (rule_descriptors diags));
                          ] );
                    ] );
                ("results", J.Arr (List.map result results));
              ];
          ] );
    ]

let to_string ~tool_version results = J.to_pretty_string (log ~tool_version results)
