(* Runtime checks of the paper's key data-structure invariants.

   The correctness proofs hinge on invariants about what the snapshot
   object A may contain; running the algorithms with trace recording
   lets us check those invariants hold in *every* reachable
   configuration of an execution, not just at the end:

   - Lemma 3 (one-shot): for each process identifier id, all pairs in A
     carrying id have the same value.
   - Lemma 12 (repeated): for each id and instance t, all t-tuples in A
     carrying id are identical.

   The checker replays a recorded trace, maintaining the register state,
   and evaluates the invariant after every write. *)

open Shm

type violation = {
  at_step : int;
  register : int;
  message : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "step %d (write to R%d): %s" v.at_step v.register v.message

(* Replay [trace] over [registers] registers; after every write, call
   [check state] where state is the current register array; collect all
   reported problems. *)
let replay ~registers ~check trace =
  let state = Array.make registers Value.bot in
  let violations = ref [] in
  List.iteri
    (fun step ev ->
      match ev with
      | Event.Did_write { reg; value; _ } ->
        if reg < registers then begin
          state.(reg) <- value;
          match check state with
          | Some message -> violations := { at_step = step; register = reg; message } :: !violations
          | None -> ()
        end
      | Event.Did_read _ | Event.Did_scan _ | Event.Invoke _ | Event.Output _ -> ())
    trace;
  List.rev !violations

(* Lemma 3: one-shot pairs (value, id) — same id ⟹ same value. *)
let lemma3_pairs state =
  let seen = Hashtbl.create 7 in
  let bad = ref None in
  Array.iter
    (fun v ->
      match Value.view v with
      | Value.Pair (value, id) when (match Value.view id with Value.Int _ -> true | _ -> false) -> (
        let id = Value.to_int id in
        match Hashtbl.find_opt seen id with
        | Some other when not (Value.equal other value) ->
          bad :=
            Some
              (Fmt.str "id %d holds both %a and %a (Lemma 3)" id Value.pp other Value.pp
                 value)
        | Some _ -> ()
        | None -> Hashtbl.add seen id value)
      | _ -> ())
    state;
  !bad

(* Lemma 12: repeated tuples (value, id, t, history) — same (id, t) ⟹
   identical tuple. *)
let lemma12_tuples state =
  let seen = Hashtbl.create 7 in
  let bad = ref None in
  Array.iter
    (fun v ->
      match Value.view v with
      | Value.List [ _; id; t; _ ]
        when (match Value.view id with Value.Int _ -> true | _ -> false)
             && (match Value.view t with Value.Int _ -> true | _ -> false) -> (
        let id = Value.to_int id and t = Value.to_int t in
        match Hashtbl.find_opt seen (id, t) with
        | Some other when not (Value.equal other v) ->
          bad :=
            Some
              (Fmt.str "(id %d, t %d) holds two distinct tuples %a / %a (Lemma 12)" id t
                 Value.pp other Value.pp v)
        | Some _ -> ()
        | None -> Hashtbl.add seen (id, t) v)
      | _ -> ())
    state;
  !bad

let check_lemma3 ~registers trace = replay ~registers ~check:lemma3_pairs trace

let check_lemma12 ~registers trace = replay ~registers ~check:lemma12_tuples trace
