(** Randomized safety stress: hammer a system builder with seeded
    schedules from several families and report the first safety
    violation.  Scales to any n (unlike the model checker) and needs no
    theory (unlike the lower-bound constructions); [Survived] is
    evidence, not proof. *)

type family = Bursty | Uniform | M_bounded of int

val family_name : family -> string

val sched_of : family -> seed:int -> n:int -> Shm.Schedule.t

type verdict =
  | Survived of { runs : int }
  | Broken of {
      seed : int;
      family : family;
      error : string;
      config : Shm.Config.t;
      schedule : int list;
          (** the pid sequence that produced the violation — replays
              the run exactly (processes are deterministic) *)
    }

val pp_verdict : Format.formatter -> verdict -> unit

(** The witness (if any) as the stack's common counterexample
    currency, ready for {!Counterex.replay} (without completion) and
    {!Shrink.minimize}. *)
val counterex_of : verdict -> Counterex.t option

(** [run ~k ~n ~build ~inputs ()]: [runs] seeds per family (default
    100 × {Bursty, Uniform}), fresh system per run via [build], each
    capped at [max_steps] (default 60k). *)
val run :
  ?runs:int ->
  ?max_steps:int ->
  ?families:family list ->
  k:int ->
  n:int ->
  build:(unit -> Shm.Config.t) ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  unit ->
  verdict
