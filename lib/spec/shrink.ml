(* Counterexample shrinking: delta-debug a failing schedule down to a
   locally-minimal one.

   The only interface to the system under test is a replay oracle
   [int list -> 'w option] — the ints are usually pids (built from
   Counterex.replay), but any integer currency works: the conformance
   harness (Conform.Harness) shrinks native histories by feeding
   *event indices* through the same pipeline.  So the one shrinker
   serves the model checkers (replay + deterministic completion +
   check), the stress harness (replay + check, no completion), and the
   native linearizability checker (subset re-check).  Replay is
   tolerant: dropping a step can strand a later step of the same
   process, which then simply does not happen; the candidate is judged
   on whether the property still fails.

   Three phases, each preserving "still fails":

   1. chunk removal (ddmin): try deleting progressively finer chunks,
      restarting coarse after every success;
   2. single-step removal to a fixpoint — the result is 1-minimal:
      removing any one remaining step makes the violation disappear;
   3. solo-collapse: adjacent steps of different processes are swapped
      when that strictly reduces the number of context switches (and
      the violation survives), so the final schedule reads as a few
      solo bursts rather than a fine interleaving. *)

type result = {
  ce : Counterex.t;   (* the minimized counterexample *)
  replays : int;      (* oracle calls spent *)
  removed : int;      (* steps removed from the original schedule *)
  collapsed : int;    (* solo-collapse swaps applied *)
}

type 'w shrunk = {
  schedule : int list;  (* the minimized schedule *)
  witness : 'w;         (* what the oracle returned for it *)
  g_replays : int;
  g_removed : int;
  g_collapsed : int;
}

let pp_result ppf { ce; replays; removed; collapsed } =
  Fmt.pf ppf "@[<v>shrunk by %d steps (%d replays, %d collapse swaps)@,%a@]" removed
    replays collapsed Counterex.pp ce

(* Remove elements with indices in [lo, hi) *)
let remove_range lst lo hi = List.filteri (fun i _ -> i < lo || i >= hi) lst

let context_switches = function
  | [] -> 0
  | x :: rest -> fst (List.fold_left (fun (n, prev) y -> ((n + if y = prev then 0 else 1), y)) (0, x) rest)

let minimize_generic ~replay schedule =
  let replays = ref 0 in
  let try_ s =
    incr replays;
    replay s
  in
  match try_ schedule with
  | None -> None  (* the original schedule does not reproduce: nothing to shrink *)
  | Some witness ->
    let best = ref (schedule, witness) in
    (* phase 1+2: ddmin — chunk removal at granularity [g], refining to
       single steps; [g >= length] tries every single-step removal, so
       reaching a fixpoint there is 1-minimality *)
    let rec ddmin g =
      let current, _ = !best in
      let len = List.length current in
      if len = 0 then ()
      else begin
        let size = max 1 (len / g) in
        let rec chunks lo =
          if lo >= len then None
          else
            let hi = min (lo + size) len in
            let cand = remove_range current lo hi in
            match try_ cand with
            | Some w ->
              best := (cand, w);
              Some ()
            | None -> chunks hi
        in
        match chunks 0 with
        | Some () -> ddmin (max 2 (g - 1))  (* smaller list: re-try coarser *)
        | None -> if size > 1 then ddmin (min len (2 * g)) else ()  (* 1-minimal *)
      end
    in
    (* phase 3: solo-collapse — swap adjacent steps of different pids
       when it strictly reduces context switches and still fails; each
       accepted swap decreases the switch count, so this terminates *)
    let collapsed = ref 0 in
    let rec collapse () =
      let current, _ = !best in
      let arr = Array.of_list current in
      let sw = context_switches current in
      let accepted = ref false in
      let i = ref 1 in
      while (not !accepted) && !i < Array.length arr do
        let j = !i in
        if arr.(j - 1) <> arr.(j) then begin
          let cand_arr = Array.copy arr in
          cand_arr.(j - 1) <- arr.(j);
          cand_arr.(j) <- arr.(j - 1);
          let cand = Array.to_list cand_arr in
          if context_switches cand < sw then
            match try_ cand with
            | Some w ->
              best := (cand, w);
              incr collapsed;
              accepted := true
            | None -> ()
        end;
        incr i
      done;
      if !accepted then collapse ()
    in
    (* a collapse swap can make a step removable again, so alternate
       the two phases to a joint fixpoint; (length, switches) strictly
       decreases lexicographically each round, so this terminates and
       the result is 1-minimal *)
    let rec fixpoint () =
      let before = fst !best in
      ddmin 2;
      collapse ();
      let after = fst !best in
      if
        List.length after < List.length before
        || context_switches after < context_switches before
      then fixpoint ()
    in
    fixpoint ();
    let sched, witness = !best in
    Some
      {
        schedule = sched;
        witness;
        g_replays = !replays;
        g_removed = List.length schedule - List.length sched;
        g_collapsed = !collapsed;
      }

let minimize ~replay schedule =
  match minimize_generic ~replay schedule with
  | None -> None
  | Some { schedule; witness = error, config; g_replays; g_removed; g_collapsed } ->
    Some
      {
        ce = { Counterex.schedule; error; config };
        replays = g_replays;
        removed = g_removed;
        collapsed = g_collapsed;
      }
