(** Checkers for the properties of repeated k-set agreement
    (Section 2.1 of the paper), evaluated on finished configurations:

    - Validity: ∀i, Out_i(α) ⊆ In_i(α)
    - k-Agreement: ∀i, |Out_i(α)| ≤ k
    - termination helpers for runs whose scheduler guarantees progress. *)

(** Deduplicate, preserving first-occurrence order. *)
val distinct_values : Shm.Value.t list -> Shm.Value.t list

(** Instance → (inputs, outputs) over bare (pid, instance, value)
    record lists — engine-neutral: the interpreter passes
    [Config.inputs]/[Config.outputs], the vm the decoded lists of
    [Shm.Vm.final].  The checkers only inspect per-instance multisets,
    so record order does not matter. *)
val by_instance_io :
  inputs:(int * int * Shm.Value.t) list ->
  outputs:(int * int * Shm.Value.t) list ->
  (int * Shm.Value.t list * Shm.Value.t list) list

(** Instance → (inputs, outputs), in instance order, with multiplicity
    and chronological inner order. *)
val by_instance :
  Shm.Config.t -> (int * Shm.Value.t list * Shm.Value.t list) list

(** One message per output value that is not an input of its instance. *)
val validity_errors : Shm.Config.t -> string list

(** One message per instance with more than [k] distinct outputs. *)
val agreement_errors : k:int -> Shm.Config.t -> string list

(** Validity ∧ k-Agreement over bare i/o record lists (the vm leaf
    check; {!check_safety} is this applied to a configuration). *)
val check_safety_io :
  k:int ->
  inputs:(int * int * Shm.Value.t) list ->
  outputs:(int * int * Shm.Value.t) list ->
  (unit, string) result

(** Validity ∧ k-Agreement over every instance. *)
val check_safety : k:int -> Shm.Config.t -> (unit, string) result

(** Completed operations of one process (= recorded outputs). *)
val completed_ops : Shm.Config.t -> int -> int

(** All processes completed at least [expected pid] operations. *)
val all_completed : expected:(int -> int) -> Shm.Config.t -> bool

(** One message per process short of [expected pid] operations. *)
val termination_errors : expected:(int -> int) -> Shm.Config.t -> string list
