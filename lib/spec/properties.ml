(* Checkers for the three properties of repeated k-set agreement
   (Section 2.1 of the paper), evaluated on finished configurations:

   - Validity:     ∀i, Out_i(α) ⊆ In_i(α)
   - k-Agreement:  ∀i, |Out_i(α)| ≤ k
   - m-Obstruction-Freedom is a liveness property; it is checked by the
     runner-level helpers below (every process completed its operations
     in a run whose scheduler eventually ran at most m processes). *)

open Shm

let distinct_values vs =
  List.fold_left (fun acc v -> if List.exists (Value.equal v) acc then acc else v :: acc) [] vs
  |> List.rev

(* Instance -> (inputs, outputs), in instance order.  Works on bare
   (pid, instance, value) record lists so both execution engines can
   use it: the interpreter's [Config.t] carries the lists directly,
   the vm decodes them from its i/o log ([Shm.Vm.final]).  The
   checkers only inspect multisets per instance, so record order does
   not matter (the Statehash contract). *)
let by_instance_io ~inputs ~outputs =
  let add map (_, inst, v) side =
    let ins, outs = try List.assoc inst map with Not_found -> ([], []) in
    let entry = match side with `In -> (v :: ins, outs) | `Out -> (ins, v :: outs) in
    (inst, entry) :: List.remove_assoc inst map
  in
  let map = List.fold_left (fun m e -> add m e `In) [] inputs in
  let map = List.fold_left (fun m e -> add m e `Out) map outputs in
  List.sort (fun (a, _) (b, _) -> compare a b) map
  |> List.map (fun (i, (ins, outs)) -> (i, List.rev ins, List.rev outs))

let by_instance config =
  by_instance_io ~inputs:(Config.inputs config) ~outputs:(Config.outputs config)

let validity_errors_io ~inputs ~outputs =
  by_instance_io ~inputs ~outputs
  |> List.concat_map (fun (inst, ins, outs) ->
         distinct_values outs
         |> List.filter_map (fun v ->
                if List.exists (Value.equal v) ins then None
                else
                  Some
                    (Fmt.str "instance %d: output %a is not an input (inputs: %a)" inst
                       Value.pp v
                       Fmt.(list ~sep:comma Value.pp)
                       ins)))

let validity_errors config =
  validity_errors_io ~inputs:(Config.inputs config) ~outputs:(Config.outputs config)

let agreement_errors_io ~k ~inputs ~outputs =
  by_instance_io ~inputs ~outputs
  |> List.filter_map (fun (inst, _, outs) ->
         let d = distinct_values outs in
         if List.length d <= k then None
         else
           Some
             (Fmt.str "instance %d: %d distinct outputs > k=%d (%a)" inst
                (List.length d) k
                Fmt.(list ~sep:comma Value.pp)
                d))

let agreement_errors ~k config =
  agreement_errors_io ~k ~inputs:(Config.inputs config)
    ~outputs:(Config.outputs config)

(* Safety check: Validity ∧ k-Agreement on every instance. *)
let check_safety_io ~k ~inputs ~outputs =
  match
    validity_errors_io ~inputs ~outputs @ agreement_errors_io ~k ~inputs ~outputs
  with
  | [] -> Ok ()
  | errs -> Error (String.concat "; " errs)

let check_safety ~k config =
  check_safety_io ~k ~inputs:(Config.inputs config) ~outputs:(Config.outputs config)

(* Liveness helper: did process [pid] complete [expected] operations?
   An operation is complete once its output is recorded. *)
let completed_ops config pid =
  List.length (List.filter (fun (p, _, _) -> p = pid) (Config.outputs config))

let all_completed ~expected config =
  let n = Config.n config in
  let rec go pid = pid >= n || (completed_ops config pid >= expected pid && go (pid + 1)) in
  go 0

(* Termination errors for a run that should have quiesced with every
   process finishing [expected pid] operations. *)
let termination_errors ~expected config =
  List.init (Config.n config) (fun pid ->
      let done_ = completed_ops config pid in
      let want = expected pid in
      if done_ >= want then None
      else Some (Fmt.str "p%d completed %d/%d operations" pid done_ want))
  |> List.filter_map Fun.id
