(** The common counterexample type of the exploration stack.

    Every engine that can exhibit a safety violation — {!Modelcheck}
    (naive exhaustive), {!Dpor}, and {!Stress} — reports it as this one
    type, so the shrinker ({!Shrink}) and the CLI reproduce and
    minimize violations from any source the same way.  Processes are
    deterministic, so the pid schedule alone pins down the whole
    execution. *)

type t = {
  schedule : int list;  (** pids, in step order *)
  error : string;       (** what the property checker reported *)
  config : Shm.Config.t;  (** the configuration the checker rejected *)
}

val pp : Format.formatter -> t -> unit

(** [step_pid ~inputs config pid] performs one step of [pid]: invoke
    with its next input if idle, the poised step otherwise; halted and
    input-starved processes are left unchanged.  The single stepping
    rule every engine shares. *)
val step_pid :
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  Shm.Config.t ->
  int ->
  Shm.Config.t

(** Drive a configuration to quiescence deterministically (long solo
    bursts) — the frontier-completion rule of the model checkers. *)
val complete :
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  max_steps:int ->
  Shm.Config.t ->
  Shm.Config.t

(** [replay ?completion_steps ~inputs ~check config schedule] re-runs
    the schedule from [config] (skipping pids that are not runnable
    when their turn comes), completes when [completion_steps] is given,
    and re-checks.  [Some (error, final)] iff the property still
    fails. *)
val replay :
  ?completion_steps:int ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  check:(Shm.Config.t -> (unit, string) result) ->
  Shm.Config.t ->
  int list ->
  (string * Shm.Config.t) option
