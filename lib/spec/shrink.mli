(** Counterexample shrinking: delta-debug a failing pid schedule down
    to a locally-minimal one.

    Works against a replay oracle
    [int list -> (error * config) option] — build one with
    {!Counterex.replay} — so model-checker counterexamples (replay +
    completion + check) and stress witnesses (replay + check) shrink
    the same way.  Phases: ddmin chunk removal, single-step removal to
    1-minimality (removing any one remaining step loses the
    violation), then solo-collapse (adjacent-step swaps that reduce
    context switches), each preserving "still fails". *)

type result = {
  ce : Counterex.t;   (** the minimized counterexample *)
  replays : int;      (** oracle calls spent *)
  removed : int;      (** steps removed from the original schedule *)
  collapsed : int;    (** solo-collapse swaps applied *)
}

val pp_result : Format.formatter -> result -> unit

(** [minimize ~replay schedule] shrinks [schedule].  [None] iff the
    original schedule does not reproduce a violation under [replay]
    (nothing to shrink). *)
val minimize :
  replay:(int list -> (string * Shm.Config.t) option) ->
  int list ->
  result option
