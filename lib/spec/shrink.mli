(** Counterexample shrinking: delta-debug a failing pid schedule down
    to a locally-minimal one.

    Works against a replay oracle
    [int list -> (error * config) option] — build one with
    {!Counterex.replay} — so model-checker counterexamples (replay +
    completion + check) and stress witnesses (replay + check) shrink
    the same way.  Phases: ddmin chunk removal, single-step removal to
    1-minimality (removing any one remaining step loses the
    violation), then solo-collapse (adjacent-step swaps that reduce
    context switches), each preserving "still fails". *)

type result = {
  ce : Counterex.t;   (** the minimized counterexample *)
  replays : int;      (** oracle calls spent *)
  removed : int;      (** steps removed from the original schedule *)
  collapsed : int;    (** solo-collapse swaps applied *)
}

(** The generic shrink result: the minimized integer schedule and
    whatever witness the oracle returned for it. *)
type 'w shrunk = {
  schedule : int list;
  witness : 'w;
  g_replays : int;
  g_removed : int;
  g_collapsed : int;
}

val pp_result : Format.formatter -> result -> unit

(** [minimize_generic ~replay schedule] is the polymorphic ddmin core:
    the ints need not be pids — the conformance harness shrinks native
    histories by passing event indices and an oracle that re-checks
    linearizability of the surviving subset.  [None] iff the original
    schedule does not reproduce a failure under [replay]. *)
val minimize_generic :
  replay:(int list -> 'w option) -> int list -> 'w shrunk option

(** [minimize ~replay schedule] shrinks [schedule].  [None] iff the
    original schedule does not reproduce a violation under [replay]
    (nothing to shrink). *)
val minimize :
  replay:(int list -> (string * Shm.Config.t) option) ->
  int list ->
  result option
