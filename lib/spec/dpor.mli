(** Exploration engine v2: dynamic partial-order reduction, state
    caching, and multi-domain exploration of the schedule tree.

    Explores the same bounded schedule space as
    {!Modelcheck.exhaustive} but prunes redundant interleavings using
    the structure of the shared-memory model:

    - {b independence}: two steps of different processes commute when
      neither writes a register the other touches
      ({!Shm.Program.independent} over {!Shm.Config.footprint});
      steps with an empty footprint (invocations, outputs) are
      singleton persistent sets and are scheduled first;
    - {b sleep sets}: a branch that merely re-orders independent steps
      already covered by an earlier sibling is pruned;
    - {b state caching}: a canonical state key ({!Statehash})
      deduplicates configurations reached by different schedules, with
      remaining-depth and sleep-set guards for soundness;
    - {b parallel domains}: with [jobs > 1] the tree is sharded over
      OCaml domains with work-stealing deques; caches and counters are
      domain-local and merged at the end.

    Verdicts are reported as {!Counterex.t}, so violations replay and
    shrink ({!Shrink}).  Caveats of bounded-depth reduction are
    documented in [docs/EXPLORATION.md]. *)

(** State-cache key flavour: the incremental {!Statehash.key} (the
    fast default), or the original full MD5 digest of the canonical
    form ([`Full] — the audited reference path, also the perf
    benchmark's old-cost arm).  Both induce the same partition of
    states up to hash collision; the equivalence is pinned by the
    collision audit in the test suite. *)
type key_mode = [ `Incremental | `Full ]

type stats = {
  explored : int;      (** nodes visited (interior + frontier) *)
  leaves : int;        (** frontier configurations completed and checked *)
  max_depth : int;
  cache_hits : int;    (** nodes short-circuited by the state cache *)
  sleep_pruned : int;  (** branches pruned by sleep sets *)
  refined : int;
      (** sleep retentions granted by [?static_indep] alone (the
          footprints collided but the refinement proved commutation) *)
  steals : int;        (** successful steals (work-migration events) *)
  domains : int;
}

type outcome = Complete of stats | Violation of Counterex.t * stats

val pp_outcome : Format.formatter -> outcome -> unit

(** [explore ~depth ~inputs ~check config] explores one representative
    schedule per equivalence class, up to [depth] steps, completing
    each frontier configuration deterministically (budget
    [completion_steps], default 50k) before applying [check].

    [cache] (default [true]) enables state caching; [key] (default
    [`Incremental]) selects the cache-key flavour; [jobs] (default 1)
    is the number of domains; [batch] (default 1) is the number of
    nodes popped per deque lock acquisition — larger batches amortize
    locking and keep sibling configurations cache-warm, at the cost of
    a slightly broader live frontier (and, on the journaled backend,
    occasionally longer reroot chains); [metrics], when given,
    receives the merged [explore.*] counters.  The first violation found wins (with
    [jobs > 1] which one is found first may vary between runs; whether
    one exists does not).

    [static_indep], when given, refines the sleep-set computation with
    a {e conditional} independence relation: [refine ~mem a b] must
    return [true] only when executing poised ops [a] and [b] (of two
    different processes) in either order from a state with memory
    [mem] yields the {e identical} configuration.  Dynamic footprints
    remain the baseline and the soundness reference — the refinement
    is consulted only for footprint-colliding pairs, and never widens
    ample sets (conditional independence is not persistent).
    [Analyze.Indep.refinement] derives a sound relation from the
    dataflow engine; the QCheck commutation property in
    [test/test_analyze.ml] pins the contract.

    Observability (all off by default, zero-cost when absent):
    [prof] receives the merged per-phase breakdown of where
    exploration time went ({!Obs.Prof}); [series] receives strided
    samples of frontier depth / nodes / cache hits / sleep prunes; and
    if an {!Obs.Trace} collector is attached when [explore] is called,
    the run emits one span per worker domain, steal-handoff flow
    arrows, replay spans, and register-coverage counter tracks.

    With the journaled memory backend ({!Shm.Memory.Journaled}) and
    [jobs > 1], stolen subtrees are rebuilt by deterministic schedule
    replay on a per-domain root copy — configurations never cross
    domains (see the journal-ownership note in the implementation). *)
val explore :
  depth:int ->
  ?cache:bool ->
  ?jobs:int ->
  ?batch:int ->
  ?key:key_mode ->
  ?completion_steps:int ->
  ?static_indep:(mem:Shm.Memory.t -> Shm.Program.op -> Shm.Program.op -> bool) ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Prof.t ->
  ?series:Obs.Prof.Series.t ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  check:(Shm.Config.t -> (unit, string) result) ->
  Shm.Config.t ->
  outcome
