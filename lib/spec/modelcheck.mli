(** Bounded model checking: one front door over two engines.

    Configurations are pure values and processes deterministic, so the
    only nondeterminism is the schedule; exploring all schedules up to
    a depth bound covers every reachable configuration prefix.  Each
    frontier configuration is driven to quiescence deterministically
    and the property evaluated there — a proof (up to the bound) rather
    than a sample, with minimal counterexample schedules.

    {!exhaustive} is the reference engine (literal enumeration);
    {!run} additionally dispatches to the reduced engine {!Dpor}
    (partial-order reduction + state caching + parallel domains). *)

type stats = {
  explored : int;    (** interior nodes visited *)
  leaves : int;      (** frontier configurations checked *)
  max_depth : int;
  cache_hits : int;  (** [Dpor] engine only; 0 for [Naive] *)
  pruned : int;      (** [Dpor] engine only; 0 for [Naive] *)
  steals : int;      (** [Dpor] engine only; 0 for [Naive] *)
}

type outcome =
  | Ok_bounded of stats
  | Counterexample of {
      schedule : int list;  (** pids, in step order, up to the frontier *)
      error : string;
      config : Shm.Config.t;
      stats : stats;
    }

val pp_outcome : Format.formatter -> outcome -> unit

(** The counterexample (if any) as the stack's common currency, ready
    for {!Counterex.replay} and {!Shrink.minimize}. *)
val counterex_of : outcome -> Counterex.t option

(** Drive a configuration to quiescence deterministically
    (= {!Counterex.complete}). *)
val complete :
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  max_steps:int ->
  Shm.Config.t ->
  Shm.Config.t

(** [exhaustive ~depth ~inputs ~check config] explores every schedule
    of length ≤ depth, completes each frontier (budget
    [completion_steps], default 50k), and applies [check]; stops at the
    first violation. *)
val exhaustive :
  depth:int ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  ?completion_steps:int ->
  check:(Shm.Config.t -> (unit, string) result) ->
  Shm.Config.t ->
  outcome

(** {1 Engine dispatch} *)

type engine =
  | Naive  (** literal enumeration — the reference semantics *)
  | Dpor of { cache : bool; jobs : int }
      (** partial-order reduction, optional state caching, [jobs]
          domains (see {!Dpor.explore}) *)

val engine_name : engine -> string

val stats_of : outcome -> stats

(** [run ~engine …] checks with the chosen engine; same contract and
    outcome type as {!exhaustive}.  When [metrics] is given, the final
    counters are exported into it under [explore.*] names (both
    engines).  [key] selects the {!Dpor} cache-key flavour (default
    [`Incremental]; ignored by [Naive]).  [static_indep] threads the
    conditional-independence refinement through to {!Dpor.explore}
    (ignored by [Naive], whose enumeration is the reference
    semantics).  [prof] and [series] thread through to {!Dpor.explore}
    (phase breakdown and exploration time series; ignored by
    [Naive]). *)
val run :
  engine:engine ->
  depth:int ->
  ?key:Dpor.key_mode ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  ?completion_steps:int ->
  ?static_indep:(mem:Shm.Memory.t -> Shm.Program.op -> Shm.Program.op -> bool) ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Prof.t ->
  ?series:Obs.Prof.Series.t ->
  check:(Shm.Config.t -> (unit, string) result) ->
  Shm.Config.t ->
  outcome

(** [run_vm ~engine …] is {!run} over the bytecode engine
    ({!Shm.Vm} / {!Vmexplore}) for first-order protocols: [Naive]
    enumerates every schedule with the reduction off, [Dpor] applies
    the reduction ([cache], [jobs] as for the interpreter engine; the
    vm splits work statically, so [stats.steals] is always 0).
    [check] sees the decoded i/o records —
    {!Properties.check_safety_io} fits directly.  [batch] is the
    frontier batch size (default 8), [rounds] the invocations per
    process (default 1).  Metric names match {!run}, plus
    [explore.batches] and [explore.arena_hwm_words]. *)
val run_vm :
  engine:engine ->
  depth:int ->
  ?batch:int ->
  ?rounds:int ->
  ?completion_steps:int ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Prof.t ->
  ?series:Obs.Prof.Series.t ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  check:
    (inputs:(int * int * Shm.Value.t) list ->
     outputs:(int * int * Shm.Value.t) list ->
     (unit, string) result) ->
  Shm.Vm.proto ->
  outcome
