(* Exploration engine v3: DPOR over bytecode-compiled protocols, with
   batched frontier expansion over contiguous arenas.

   Same reduction as [Dpor] — singleton ample sets for local steps,
   sleep sets, state caching with remaining-depth and sleep-subset
   guards — but over [Shm.Vm] states instead of [Config.t] values:

   - a configuration is a fixed-size slice of a flat int arena, so a
     child node is one [Array.blit] plus one in-place [Vm.step] — no
     closure dispatch, no persistent-structure rebuild, no per-node
     Value allocation;
   - the state key is read off the slice ([Vm.key] is maintained
     incrementally inside [Vm.step], hashing the machine state
     itself), so cache lookups cost four loads and a table probe;
   - sleep sets are int bitmasks (hence the n ≤ 62 limit — far above
     any tractable exploration width);
   - the frontier is expanded in batches of [batch] nodes per pass:
     children of a batch are bump-allocated consecutively in the
     arena, so the next pass walks contiguous memory instead of
     pointer-chasing heap configurations ([Obs.Prof.Vm_batch]
     attributes the bookkeeping; [arena_hwm_words] reports the peak
     footprint);
   - with [jobs > 1] the root is expanded breadth-first until the
     frontier feeds every domain, then each domain explores its share
     on a private arena — snapshots are plain ints, so handing a
     subtree to a domain is a blit at spawn time and workers never
     share mutable state (no steal traffic, no shared-heap writes on
     the hot path; the static split is the trade-off, documented in
     docs/PERFORMANCE.md).

   Reduction-off mode ([reduce:false]) is the literal enumeration of
   every schedule — the vm's analogue of [Modelcheck.exhaustive] and
   the naive arm of the vm-vs-interp differentials.

   Counterexamples are reported as [Counterex.t]: the violating
   schedule is replayed through the free-monad interpreter, so the
   artifact that reaches the shrinker and the CLI is engine-neutral
   (and independently re-executes the vm's claim). *)

open Shm

type stats = {
  explored : int;
  leaves : int;
  max_depth : int;
  cache_hits : int;
  sleep_pruned : int;
  batches : int;
  arena_hwm_words : int;
  domains : int;
}

type outcome = Complete of stats | Violation of Counterex.t * stats

let pp_outcome ppf = function
  | Complete { explored; leaves; cache_hits; sleep_pruned; _ } ->
    Fmt.pf ppf "no violation (%d nodes, %d completions checked, %d cache hits, %d sleep-pruned)"
      explored leaves cache_hits sleep_pruned
  | Violation (ce, { explored; _ }) ->
    Fmt.pf ppf "counterexample after %d nodes — %a" explored Counterex.pp ce

(* ------------------------------------------------------------------ *)
(* Arena: slots of [words] ints, bump-allocated with a free list.
   Doubling keeps slot ids stable (ids index slots, not bytes). *)

type arena = {
  words : int;
  mutable buf : int array;
  mutable cap : int;  (* capacity, in slots *)
  mutable top : int;  (* bump pointer, in slots *)
  mutable free : int list;
  mutable hwm : int;  (* peak live slots *)
}

let arena_create ~words ~slots =
  { words; buf = Array.make (max 1 (words * slots)) 0; cap = slots; top = 0;
    free = []; hwm = 0 }

let alloc a =
  match a.free with
  | s :: tl ->
    a.free <- tl;
    s
  | [] ->
    if a.top >= a.cap then begin
      let cap = 2 * max 1 a.cap in
      let buf = Array.make (cap * a.words) 0 in
      Array.blit a.buf 0 buf 0 (a.top * a.words);
      a.buf <- buf;
      a.cap <- cap
    end;
    let s = a.top in
    a.top <- s + 1;
    if s + 1 > a.hwm then a.hwm <- s + 1;
    s

let release a s = a.free <- s :: a.free
let base a s = s * a.words

(* ------------------------------------------------------------------ *)

type node = {
  slot : int;
  depth : int;
  sched : int list;  (* reversed; tails shared along each branch *)
  sleep : int;  (* bitmask of pids whose branches are covered elsewhere *)
}

(* Footprint triples from [Vm.poised_footprint]: (reads_off, reads_len,
   write_reg), -1 for none.  Independent iff neither writes a register
   the other touches — [Shm.Program.independent] on int triples. *)
let touches (ro, rl, w) r = (r >= ro && r < ro + rl) || r = w

let indep a b =
  let _, _, aw = a and _, _, bw = b in
  (aw = -1 || not (touches b aw)) && (bw = -1 || not (touches a bw))

type wctx = {
  e : Vm.env;
  a : arena;
  bound : int;
  reduce : bool;
  batch : int;
  completion_steps : int;
  cache : (Vm.key, (int * int) list) Hashtbl.t option;
  scratch : int array;  (* one completion slice, reused per leaf *)
  n : int;
  check : inputs:(int * int * Value.t) list ->
          outputs:(int * int * Value.t) list ->
          (unit, string) result;
  found : (int list * string) option Atomic.t;  (* first violation wins *)
  prof : Obs.Prof.t;
  profiling : bool;
  series : Obs.Prof.Series.t option;
  mutable until_sample : int;
  mutable stack : node list;
  mutable frontier : int;
  mutable explored : int;
  mutable leaves : int;
  mutable max_depth : int;
  mutable cache_hits : int;
  mutable sleep_pruned : int;
  mutable batches : int;
}

let sample_stride = 64

let sample ctx =
  match ctx.series with
  | None -> ()
  | Some s ->
    Obs.Prof.Series.add s ~ts_ns:(Obs.Prof.now_ns ()) ~nodes:ctx.explored
      ~frontier:ctx.frontier ~cache_hits:ctx.cache_hits ~sleep_hits:ctx.sleep_pruned

(* Same policy as [Dpor.cache_covers]: a node is covered iff some
   previous visit of the same key had at least our remaining budget
   and a sleep set no larger than ours; at most 8 entries per key. *)
let cache_covers ctx node key =
  match ctx.cache with
  | None -> false
  | Some tbl ->
    let remaining = ctx.bound - node.depth in
    let entries = try Hashtbl.find tbl key with Not_found -> [] in
    if
      List.exists
        (fun (r, sl) -> r >= remaining && sl land lnot node.sleep = 0)
        entries
    then true
    else begin
      let entries = (remaining, node.sleep) :: entries in
      let entries =
        if List.length entries > 8 then List.filteri (fun i _ -> i < 8) entries
        else entries
      in
      Hashtbl.replace tbl key entries;
      false
    end

(* [Counterex.complete]'s rule (quantum round-robin, q = 2000) with a
   constant name — [Schedule.quantum_round_robin]'s name is formatted
   per construction, too costly for a per-leaf object. *)
let completion_sched n =
  let quantum = 2000 in
  let cursor = ref 0 and left = ref quantum in
  let next ~step:_ ~runnable =
    if !left = 0 then begin
      cursor := (!cursor + 1) mod n;
      left := quantum
    end;
    let tried = ref 0 and found = ref (-1) in
    while !found < 0 && !tried < n do
      if runnable !cursor then begin
        decr left;
        found := !cursor
      end
      else begin
        cursor := (!cursor + 1) mod n;
        left := quantum;
        incr tried
      end
    done;
    if !found < 0 then None else Some !found
  in
  { Schedule.name = "completion"; next }

let leaf ctx node =
  ctx.leaves <- ctx.leaves + 1;
  let t0 = if ctx.profiling then Obs.Prof.now_ns () else 0 in
  (* with no completion budget the frontier state is final as-is:
     skip the copy and the schedule and snapshot the slice in place *)
  let st, b =
    if ctx.completion_steps = 0 then (ctx.a.buf, base ctx.a node.slot)
    else begin
      Array.blit ctx.a.buf (base ctx.a node.slot) ctx.scratch 0 ctx.a.words;
      let _, _ =
        Vm.drive ctx.e ctx.scratch 0
          ~sched:(completion_sched ctx.n)
          ~max_steps:ctx.completion_steps
      in
      (ctx.scratch, 0)
    end
  in
  let fin = Vm.snapshot ctx.e st b in
  let verdict = ctx.check ~inputs:fin.Vm.inputs ~outputs:fin.Vm.outputs in
  if ctx.profiling then Obs.Prof.add ctx.prof Obs.Prof.Check (Obs.Prof.now_ns () - t0);
  match verdict with
  | Ok () -> ()
  | Error error ->
    (* first violation wins; with jobs > 1 which one is first may vary
       between runs, whether one exists does not *)
    ignore
      (Atomic.compare_and_set ctx.found None (Some (List.rev node.sched, error)))

let rec popcount m = if m = 0 then 0 else (m land 1) + popcount (m lsr 1)

(* Expand one node: cache check, leaf check, else push its branches.
   [push] lets the sequential DFS phase and the parallel seed phase
   share the expansion logic. *)
let expand ctx ~push node =
  ctx.explored <- ctx.explored + 1;
  if node.depth > ctx.max_depth then ctx.max_depth <- node.depth;
  ctx.until_sample <- ctx.until_sample - 1;
  if ctx.until_sample <= 0 then begin
    ctx.until_sample <- sample_stride;
    sample ctx
  end;
  let e = ctx.e and a = ctx.a in
  let st = a.buf and b = base a node.slot in
  let t0 = if ctx.profiling then Obs.Prof.now_ns () else 0 in
  let covered = ctx.reduce && cache_covers ctx node (Vm.key e st b) in
  if ctx.profiling then Obs.Prof.add ctx.prof Obs.Prof.Cache (Obs.Prof.now_ns () - t0);
  if covered then begin
    ctx.cache_hits <- ctx.cache_hits + 1;
    release a node.slot
  end
  else begin
    let rmask = ref 0 in
    for pid = ctx.n - 1 downto 0 do
      if Vm.runnable e st b pid then rmask := (!rmask lsl 1) lor 1
      else rmask := !rmask lsl 1
    done;
    if !rmask = 0 || node.depth >= ctx.bound then begin
      leaf ctx node;
      release a node.slot
    end
    else begin
      (* a local (invoke/decide) step is a singleton persistent set *)
      let ample =
        if not ctx.reduce then !rmask
        else begin
          let local = ref (-1) in
          let pid = ref 0 in
          while !local < 0 && !pid < ctx.n do
            if !rmask land (1 lsl !pid) <> 0 && Vm.poised_local e st b !pid then
              local := !pid;
            incr pid
          done;
          if !local >= 0 then 1 lsl !local else !rmask
        end
      in
      let branches =
        if ctx.reduce then ample land lnot node.sleep else ample
      in
      if ctx.reduce then
        ctx.sleep_pruned <- ctx.sleep_pruned + popcount (ample land node.sleep);
      if branches = 0 then release a node.slot
      else begin
        (* footprints of every poised step, read off the parent slice
           *before* any child allocation (growing the arena swaps
           buffers under us) *)
        let fps = Array.init ctx.n (fun pid -> Vm.poised_footprint e st b pid) in
        let explored_siblings = ref 0 in
        let children = ref [] in
        for pid = 0 to ctx.n - 1 do
          if branches land (1 lsl pid) <> 0 then begin
            (* siblings explored before [pid] sleep in its subtree as
               long as their poised steps commute with [pid]'s *)
            let sleep =
              if not ctx.reduce then 0
              else begin
                let cand = node.sleep lor !explored_siblings in
                let kept = ref 0 in
                for q = 0 to ctx.n - 1 do
                  if cand land (1 lsl q) <> 0 && indep fps.(q) fps.(pid) then
                    kept := !kept lor (1 lsl q)
                done;
                !kept
              end
            in
            let t0 = if ctx.profiling then Obs.Prof.now_ns () else 0 in
            let slot = alloc a in
            (* [alloc] may have replaced [a.buf]; address it afresh *)
            Array.blit a.buf (base a node.slot) a.buf (base a slot) a.words;
            if ctx.profiling then
              Obs.Prof.add ctx.prof Obs.Prof.Vm_batch (Obs.Prof.now_ns () - t0);
            let t0 = if ctx.profiling then Obs.Prof.now_ns () else 0 in
            Vm.step e a.buf (base a slot) pid;
            if ctx.profiling then
              Obs.Prof.add ctx.prof Obs.Prof.Vm_step (Obs.Prof.now_ns () - t0);
            children :=
              { slot; depth = node.depth + 1; sched = pid :: node.sched; sleep }
              :: !children;
            explored_siblings := !explored_siblings lor (1 lsl pid)
          end
        done;
        (* consing left the highest pid at the head, so pushing in list
           order leaves the lowest pid on top of the stack: DFS visits
           pids ascending, matching Dpor *)
        List.iter push !children;
        release a node.slot
      end
    end
  end

(* Depth-first batched drain: pop up to [batch] nodes per pass, expand
   each, push children (bump-allocated consecutively).  Stops early
   when some worker reported a violation. *)
let drain ctx =
  let push n =
    ctx.stack <- n :: ctx.stack;
    ctx.frontier <- ctx.frontier + 1
  in
  let rec pop_batch k acc =
    if k = 0 then acc
    else
      match ctx.stack with
      | [] -> acc
      | n :: tl ->
        ctx.stack <- tl;
        ctx.frontier <- ctx.frontier - 1;
        pop_batch (k - 1) (n :: acc)
  in
  let rec go () =
    if Atomic.get ctx.found <> None then ()
    else
      match pop_batch ctx.batch [] with
      | [] -> ()
      | ns ->
        ctx.batches <- ctx.batches + 1;
        (* [pop_batch] reverses: ns is oldest-popped last, i.e. the
           stack top is processed first, keeping DFS order *)
        List.iter (expand ctx ~push) (List.rev ns);
        go ()
  in
  go ()

let mk_ctx ~e ~bound ~reduce ~batch ~cache ~completion_steps ~check ~found
    ~profiling ~series ~slots =
  let words = Vm.state_words e in
  let n = (Vm.proto_env e).Vm.n in
  {
    e;
    a = arena_create ~words ~slots;
    bound;
    reduce;
    batch;
    completion_steps;
    cache = (if cache && reduce then Some (Hashtbl.create 1024) else None);
    scratch = Array.make words 0;
    n;
    check;
    found;
    prof = Obs.Prof.create ();
    profiling;
    series;
    until_sample = sample_stride;
    stack = [];
    frontier = 0;
    explored = 0;
    leaves = 0;
    max_depth = 0;
    cache_hits = 0;
    sleep_pruned = 0;
    batches = 0;
  }

let explore ~depth ?(reduce = true) ?(cache = true) ?(jobs = 1) ?(batch = 8)
    ?(rounds = 1) ?(completion_steps = 50_000) ?metrics ?prof ?series ~inputs
    ~check (p : Vm.proto) =
  if p.Vm.n > 62 then
    invalid_arg "Vmexplore.explore: more than 62 processes (sleep sets are int masks)";
  let e = Vm.env ~rounds (Vm.compile p) ~inputs in
  let found = Atomic.make None in
  let profiling = prof <> None in
  let mk ~slots =
    mk_ctx ~e ~bound:depth ~reduce ~batch ~cache ~completion_steps ~check
      ~found ~profiling ~series ~slots
  in
  let root ctx =
    let slot = alloc ctx.a in
    Vm.init e ctx.a.buf (base ctx.a slot);
    { slot; depth = 0; sched = []; sleep = 0 }
  in
  let ctxs =
    if jobs <= 1 then begin
      let ctx = mk ~slots:256 in
      ctx.stack <- [ root ctx ];
      ctx.frontier <- 1;
      drain ctx;
      [ ctx ]
    end
    else begin
      (* Phase 1: breadth-first until the frontier feeds every domain.
         FIFO order keeps the seed frontier shallow and balanced. *)
      let seed = mk ~slots:256 in
      let q = Queue.create () in
      Queue.add (root seed) q;
      let target = jobs * 4 in
      while
        Queue.length q > 0
        && Queue.length q < target
        && Atomic.get found = None
      do
        expand seed ~push:(fun n -> Queue.add n q) (Queue.pop q)
      done;
      (* Phase 2: split the frontier round-robin; each domain copies
         its share into a private arena and explores independently. *)
      let shares = Array.make jobs [] in
      let i = ref 0 in
      Queue.iter
        (fun n ->
          shares.(!i mod jobs) <- n :: shares.(!i mod jobs);
          incr i)
        q;
      let workers =
        Array.to_list shares
        |> List.filter (fun share -> share <> [])
        |> List.map (fun share ->
               let snaps =
                 List.map
                   (fun n ->
                     let s = Array.make seed.a.words 0 in
                     Array.blit seed.a.buf (base seed.a n.slot) s 0 seed.a.words;
                     (n, s))
                   share
               in
               Domain.spawn (fun () ->
                   let ctx = mk ~slots:(max 256 (List.length snaps * 2)) in
                   List.iter
                     (fun (n, s) ->
                       let slot = alloc ctx.a in
                       Array.blit s 0 ctx.a.buf (base ctx.a slot) ctx.a.words;
                       ctx.stack <- { n with slot } :: ctx.stack;
                       ctx.frontier <- ctx.frontier + 1)
                     snaps;
                   drain ctx;
                   ctx))
      in
      seed :: List.map Domain.join workers
    end
  in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 ctxs in
  let stats =
    {
      explored = sum (fun c -> c.explored);
      leaves = sum (fun c -> c.leaves);
      max_depth = List.fold_left (fun acc c -> max acc c.max_depth) 0 ctxs;
      cache_hits = sum (fun c -> c.cache_hits);
      sleep_pruned = sum (fun c -> c.sleep_pruned);
      batches = sum (fun c -> c.batches);
      arena_hwm_words = sum (fun c -> c.a.hwm * c.a.words);
      domains = max 1 jobs;
    }
  in
  Option.iter
    (fun into -> List.iter (fun c -> Obs.Prof.merge_into ~into c.prof) ctxs)
    prof;
  Option.iter
    (fun m ->
      let bump name v = Obs.Metrics.Counter.incr ~by:v (Obs.Metrics.counter m name) in
      bump "explore.nodes" stats.explored;
      bump "explore.leaves" stats.leaves;
      bump "explore.cache_hits" stats.cache_hits;
      bump "explore.sleep_pruned" stats.sleep_pruned;
      bump "explore.batches" stats.batches;
      bump "explore.arena_hwm_words" stats.arena_hwm_words)
    metrics;
  match Atomic.get found with
  | None -> Complete stats
  | Some (schedule, error) ->
    (* replay through the interpreter: the reported artifact is
       engine-neutral and independently re-executes the vm's claim *)
    let stepped =
      List.fold_left
        (fun c pid -> Counterex.step_pid ~inputs c pid)
        (Vm.config p) schedule
    in
    let final = Counterex.complete ~inputs ~max_steps:completion_steps stepped in
    Violation ({ Counterex.schedule; error; config = final }, stats)
