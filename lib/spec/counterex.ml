(* The common counterexample currency of the exploration stack.

   Every engine that can exhibit a safety violation — the naive
   exhaustive checker, the DPOR engine, the randomized stress harness —
   reports it as a value of this one type: the pid schedule that
   produced it, the checker's error message, and the final
   configuration.  The schedule is the replayable artifact: processes
   are deterministic, so a pid sequence pins down the entire execution,
   and [replay] reproduces (and re-grades) the violation from the
   initial configuration alone.  The shrinker (Spec.Shrink) works
   exclusively through [replay], so anything reported here can be
   minimized. *)

open Shm

type t = {
  schedule : int list;  (* pids, in step order *)
  error : string;       (* what the property checker reported *)
  config : Config.t;    (* the configuration the checker rejected *)
}

let pp ppf { schedule; error; _ } =
  Fmt.pf ppf "schedule [%s]: %s"
    (String.concat " " (List.map string_of_int schedule))
    error

(* One step of [pid]: invoke if idle (the input must exist), perform
   the poised step otherwise.  This is the single stepping rule shared
   by every engine, so "schedule" means the same thing everywhere. *)
let step_pid ~inputs config pid =
  match Config.proc config pid with
  | Program.Await _ ->
    let inst = Config.instance config pid + 1 in
    (match inputs ~pid ~instance:inst with
    | Some v -> fst (Config.invoke config pid v)
    | None -> config)
  | Program.Stop -> config
  | Program.Op _ | Program.Yield _ -> fst (Config.step config pid)

(* Drive [config] to quiescence deterministically (long solo bursts),
   the completion rule of the model checkers. *)
let complete ~inputs ~max_steps config =
  let n = Config.n config in
  let sched = Schedule.quantum_round_robin ~quantum:2000 n in
  (Exec.run ~sched ~inputs ~max_steps config).Exec.config

(* Tolerant replay: steps the schedule's pids in order, skipping any
   pid that is not currently runnable (shrinking removes steps, which
   can strand later ones), optionally completes, then re-checks.  Some
   (error, config) iff the property still fails.  Tolerance matters for
   minimization: a candidate schedule with a stranded step is simply a
   shorter schedule, not an invalid one. *)
let replay ?completion_steps ~inputs ~check config schedule =
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let final =
    List.fold_left
      (fun config pid ->
        if pid >= 0 && pid < Config.n config && Config.runnable config ~has_input pid
        then step_pid ~inputs config pid
        else config)
      config schedule
  in
  let final =
    match completion_steps with
    | Some max_steps -> complete ~inputs ~max_steps final
    | None -> final
  in
  match check final with Ok () -> None | Error error -> Some (error, final)
