(* Canonical hashing of configurations, for exploration-time state
   caching.

   Two schedules that interleave independent steps differently reach
   configurations that are *behaviourally* the same state, and the
   engine should explore from it once.  The obstacle is the local state
   of a process: it is an OCaml closure, which cannot be inspected or
   compared structurally.  We exploit determinism instead: a process's
   local state is a function of its initial program and the sequence of
   values it has consumed (invocation inputs, read results, scan
   views).  So alongside the configuration we thread one digest per
   process, folded over exactly those observations, and the canonical
   key of a state is

     MD5 ( memory contents
         ∥ per-process observation digests
         ∥ per-process instance counters
         ∥ the input and output records, sorted )

   Soundness direction matters.  A cache must never *merge* two states
   that behave differently; merging too little only costs cache hits.
   The digest distinguishes at least as much as the real state:
   observation histories determine local states (never the converse
   trap), and everything else is compared by value.  Three deliberate
   choices, documented in docs/EXPLORATION.md:

   - step/space bookkeeping (read/write counters, the written-register
     set) is *excluded*: it does not affect behaviour, and including
     it would make commuted schedules never merge;
   - the input/output records are sorted by (pid, instance, value), so
     orders that differ only by commuted independent steps merge; the
     property checkers must therefore not depend on record order (the
     bundled ones do not);
   - distinct histories can produce the same local state (a process
     re-reading an unchanged register grows its history without
     changing state), so some genuinely equal states fail to merge —
     a missed optimization, never a missed behaviour. *)

open Shm

type t = { locals : string array }  (* one observation digest per pid *)

let create config = { locals = Array.make (Config.n config) (Digest.string "init") }

(* Fold one event into the stepping process's digest.  [config] is the
   configuration *after* the step: scans need their result vector,
   which the event does not carry; a scan does not change memory, so
   reading it back from [config] reproduces what the process saw. *)
let record t config ev =
  let buf = Buffer.create 64 in
  let pid = Event.pid ev in
  Buffer.add_string buf t.locals.(pid);
  (match ev with
  | Event.Invoke { instance; input; _ } ->
    Buffer.add_string buf (Fmt.str "I%d=%s" instance (Value.to_string input))
  | Event.Did_read { reg; value; _ } ->
    Buffer.add_string buf (Fmt.str "r%d=%s" reg (Value.to_string value))
  | Event.Did_write { reg; value; _ } ->
    Buffer.add_string buf (Fmt.str "w%d=%s" reg (Value.to_string value))
  | Event.Did_scan { off; len; _ } ->
    Buffer.add_string buf (Fmt.str "s%d+%d=" off len);
    Memory.scan (Config.mem config) ~off ~len
    |> Array.iter (fun v ->
           Buffer.add_string buf (Value.to_string v);
           Buffer.add_char buf ';')
  | Event.Output { instance; value; _ } ->
    Buffer.add_string buf (Fmt.str "O%d=%s" instance (Value.to_string value)));
  let locals = Array.copy t.locals in
  locals.(pid) <- Digest.string (Buffer.contents buf);
  { locals }

let compare_io (p1, i1, v1) (p2, i2, v2) =
  let c = Stdlib.compare (p1 : int) p2 in
  if c <> 0 then c
  else
    let c = Stdlib.compare (i1 : int) i2 in
    if c <> 0 then c else Value.compare v1 v2

(* The uncompressed canonical form; [key] is its MD5.  Exposed so the
   test suite can certify that equal keys mean equal canonical forms
   over an enumerated state space. *)
let repr t config =
  let buf = Buffer.create 256 in
  let mem = Config.mem config in
  let size = Memory.size mem in
  Buffer.add_string buf (Fmt.str "mem%d:" size);
  Memory.scan mem ~off:0 ~len:size
  |> Array.iter (fun v ->
         Buffer.add_string buf (Value.to_string v);
         Buffer.add_char buf ';');
  Buffer.add_string buf "|locals:";
  Array.iteri
    (fun pid d ->
      Buffer.add_string buf (Digest.to_hex d);
      Buffer.add_string buf (Fmt.str "#%d;" (Config.instance config pid)))
    t.locals;
  let add_io tag io =
    Buffer.add_string buf tag;
    List.sort compare_io io
    |> List.iter (fun (pid, inst, v) ->
           Buffer.add_string buf (Fmt.str "%d.%d=%s;" pid inst (Value.to_string v)))
  in
  add_io "|in:" (Config.inputs config);
  add_io "|out:" (Config.outputs config);
  Buffer.contents buf

let key t config = Digest.string (repr t config)
