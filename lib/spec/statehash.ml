(* Canonical hashing of configurations, for exploration-time state
   caching — maintained *incrementally* across steps.

   Two schedules that interleave independent steps differently reach
   configurations that are *behaviourally* the same state, and the
   engine should explore from it once.  The obstacle is the local state
   of a process: it is an OCaml closure, which cannot be inspected or
   compared structurally.  We exploit determinism instead: a process's
   local state is a function of its initial program and the sequence of
   values it has consumed (invocation inputs, read results, scan
   views).  So alongside the configuration we thread one observation
   hash per process, folded over exactly those observations, and the
   canonical key of a state combines

     memory contents
     ∥ per-process observation hashes and instance counters
     ∥ the input and output records as multisets

   Incrementality.  Each component is a commutative sum of per-element
   mixes, so one step updates the key in O(1) (O(len) for a scan):

   - memory: Σ_r mix(r, hash v_r); a write knows the old and new value
     of the one register it touches and adjusts the sum by the
     difference — the journal's undo information, surfaced through the
     before-configuration;
   - locals: Σ_p mix(p, obs_p, instance_p); one summand changes per
     step;
   - i/o records: Σ mix(pid, instance, hash v); append-only, so each
     event adds one summand.  A commutative sum is exactly a multiset
     hash, which is the sortedness the old full digest achieved by
     sorting the records before hashing.

   This eliminates the per-node full-configuration Buffer + MD5 +
   to_hex churn of the original implementation.  That reference path
   is preserved behind [~audit:true]: the per-process digests are then
   *also* maintained as MD5 strings, and [repr]/[full_key] rebuild the
   old uncompressed canonical form, so tests can certify on full
   enumerations that the incremental keys induce the same partition of
   states as the full digests (the collision audit), and the perf
   benchmark can measure old-vs-new on the same run.

   Soundness direction matters, same as before.  A cache must never
   *merge* two states that behave differently; merging too little only
   costs cache hits.  The incremental key is a hash, so distinct states
   can collide in principle — 63-bit mixes per component, 4 components,
   audited against the full digest (see test_explore.ml); the DPOR
   cache additionally only prunes subtrees that a previous visit with
   the same key explored, so a collision can at worst skip work that
   re-checking would duplicate, within the same depth bound.  The
   deliberate exclusions are unchanged and documented in
   docs/EXPLORATION.md:

   - step/space bookkeeping (read/write counters, the written-register
     set) is *excluded*: it does not affect behaviour, and including
     it would make commuted schedules never merge;
   - the i/o records are multiset-hashed, so orders that differ only by
     commuted independent steps merge; the property checkers must
     therefore not depend on record order (the bundled ones do not);
   - distinct histories can produce the same local state (a process
     re-reading an unchanged register grows its history without
     changing state), so some genuinely equal states fail to merge —
     a missed optimization, never a missed behaviour. *)

open Shm

(* The flat incremental key: cheap to compare, hash, and store. *)
type key = { k_mem : int; k_locals : int; k_in : int; k_out : int }

let key_equal (a : key) (b : key) =
  a.k_mem = b.k_mem && a.k_locals = b.k_locals && a.k_in = b.k_in && a.k_out = b.k_out

let key_hash (k : key) =
  let h = Value.mix k.k_mem k.k_locals in
  Value.mix (Value.mix h k.k_in) k.k_out land max_int

let pp_key ppf k =
  Fmt.pf ppf "%x.%x.%x.%x"
    (k.k_mem land max_int) (k.k_locals land max_int)
    (k.k_in land max_int) (k.k_out land max_int)

type t = {
  obs : int array;               (* per-pid observation hash *)
  digests : string array option; (* per-pid MD5 digests, audit mode only *)
  key : key;                     (* incrementally maintained state key *)
}

let mix = Value.mix

(* Per-component summands.  Domain-separation constants keep e.g. a
   read of v from register r distinct from a write of v to r. *)
let mem_slot r v = mix (mix 0x6d r) (Value.hash v)

let local_slot pid obs instance = mix (mix (mix 0x1c pid) obs) instance

let io_slot pid instance v = mix (mix (mix 0x2e pid) instance) (Value.hash v)

let obs0 = 0x5eed

let create ?(audit = false) config =
  let n = Config.n config in
  let mem = Config.mem config in
  let size = Memory.size mem in
  let k_mem = ref 0 in
  Memory.scan mem ~off:0 ~len:size
  |> Array.iteri (fun r v -> k_mem := !k_mem + mem_slot r v);
  let k_locals = ref 0 in
  for pid = 0 to n - 1 do
    k_locals := !k_locals + local_slot pid obs0 (Config.instance config pid)
  done;
  let io_sum records =
    List.fold_left (fun acc (pid, inst, v) -> acc + io_slot pid inst v) 0 records
  in
  {
    obs = Array.make n obs0;
    digests = (if audit then Some (Array.make n (Digest.string "init")) else None);
    key =
      {
        k_mem = !k_mem;
        k_locals = !k_locals;
        k_in = io_sum (Config.inputs config);
        k_out = io_sum (Config.outputs config);
      };
  }

(* Fold one event into the stepping process's observation hash.
   [after] is the configuration *after* the step: scans need their
   result vector, which the event does not carry; a scan does not
   change memory, so reading it back from [after] reproduces what the
   process saw. *)
let fold_obs obs after ev =
  match ev with
  | Event.Invoke { instance; input; _ } ->
    mix (mix (mix obs 0x11) instance) (Value.hash input)
  | Event.Did_read { reg; value; _ } ->
    mix (mix (mix obs 0x12) reg) (Value.hash value)
  | Event.Did_write { reg; value; _ } ->
    mix (mix (mix obs 0x13) reg) (Value.hash value)
  | Event.Did_scan { off; len; _ } ->
    let h = ref (mix (mix (mix obs 0x14) off) len) in
    Memory.scan (Config.mem after) ~off ~len
    |> Array.iter (fun v -> h := mix !h (Value.hash v));
    !h
  | Event.Output { instance; value; _ } ->
    mix (mix (mix obs 0x15) instance) (Value.hash value)

(* The audit-mode MD5 fold — byte-for-byte the original per-step digest
   (the old hot path the perf benchmark measures as its reference). *)
let fold_digest digest after ev =
  let buf = Buffer.create 64 in
  Buffer.add_string buf digest;
  (match ev with
  | Event.Invoke { instance; input; _ } ->
    Buffer.add_string buf (Fmt.str "I%d=%s" instance (Value.to_string input))
  | Event.Did_read { reg; value; _ } ->
    Buffer.add_string buf (Fmt.str "r%d=%s" reg (Value.to_string value))
  | Event.Did_write { reg; value; _ } ->
    Buffer.add_string buf (Fmt.str "w%d=%s" reg (Value.to_string value))
  | Event.Did_scan { off; len; _ } ->
    Buffer.add_string buf (Fmt.str "s%d+%d=" off len);
    Memory.scan (Config.mem after) ~off ~len
    |> Array.iter (fun v ->
           Buffer.add_string buf (Value.to_string v);
           Buffer.add_char buf ';')
  | Event.Output { instance; value; _ } ->
    Buffer.add_string buf (Fmt.str "O%d=%s" instance (Value.to_string value)));
  Digest.string (Buffer.contents buf)

let record t ~before after ev =
  let pid = Event.pid ev in
  let obs' = fold_obs t.obs.(pid) after ev in
  let k = t.key in
  (* locals: replace this pid's summand (instance can change on Invoke) *)
  let k_locals =
    k.k_locals
    - local_slot pid t.obs.(pid) (Config.instance before pid)
    + local_slot pid obs' (Config.instance after pid)
  in
  (* memory: only a write changes it, by exactly one register *)
  let k_mem =
    match ev with
    | Event.Did_write { reg; value; _ } ->
      let old = Memory.read (Config.mem before) reg in
      k.k_mem - mem_slot reg old + mem_slot reg value
    | Event.Invoke _ | Event.Did_read _ | Event.Did_scan _ | Event.Output _ -> k.k_mem
  in
  let k_in, k_out =
    match ev with
    | Event.Invoke { instance; input; _ } -> (k.k_in + io_slot pid instance input, k.k_out)
    | Event.Output { instance; value; _ } -> (k.k_in, k.k_out + io_slot pid instance value)
    | Event.Did_read _ | Event.Did_write _ | Event.Did_scan _ -> (k.k_in, k.k_out)
  in
  let obs = Array.copy t.obs in
  obs.(pid) <- obs';
  let digests =
    Option.map
      (fun ds ->
        let ds = Array.copy ds in
        ds.(pid) <- fold_digest ds.(pid) after ev;
        ds)
      t.digests
  in
  { obs; digests; key = { k_mem; k_locals; k_in; k_out } }

let key t = t.key

(* ---- the full-digest reference path (audit mode) ---- *)

let compare_io (p1, i1, v1) (p2, i2, v2) =
  let c = Stdlib.compare (p1 : int) p2 in
  if c <> 0 then c
  else
    let c = Stdlib.compare (i1 : int) i2 in
    if c <> 0 then c else Value.compare v1 v2

(* The uncompressed canonical form; [full_key] is its MD5.  Exposed so
   the test suite can certify that the incremental keys partition an
   enumerated state space exactly as the full canonical forms do. *)
let repr t config =
  let digests =
    match t.digests with
    | Some ds -> ds
    | None -> invalid_arg "Statehash.repr: create with ~audit:true for the full digest"
  in
  let buf = Buffer.create 256 in
  let mem = Config.mem config in
  let size = Memory.size mem in
  Buffer.add_string buf (Fmt.str "mem%d:" size);
  Memory.scan mem ~off:0 ~len:size
  |> Array.iter (fun v ->
         Buffer.add_string buf (Value.to_string v);
         Buffer.add_char buf ';');
  Buffer.add_string buf "|locals:";
  Array.iteri
    (fun pid d ->
      Buffer.add_string buf (Digest.to_hex d);
      Buffer.add_string buf (Fmt.str "#%d;" (Config.instance config pid)))
    digests;
  let add_io tag io =
    Buffer.add_string buf tag;
    List.sort compare_io io
    |> List.iter (fun (pid, inst, v) ->
           Buffer.add_string buf (Fmt.str "%d.%d=%s;" pid inst (Value.to_string v)))
  in
  add_io "|in:" (Config.inputs config);
  add_io "|out:" (Config.outputs config);
  Buffer.contents buf

let full_key t config = Digest.string (repr t config)
