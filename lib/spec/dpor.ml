(* Exploration engine v2: partial-order reduction, state caching, and
   multi-domain exploration of the schedule tree.

   The naive checker (Spec.Modelcheck.exhaustive) enumerates every
   schedule of length ≤ depth — n^depth nodes.  This engine exploits
   the structure of the shared-memory model to explore one
   representative per equivalence class of schedules instead, without
   weakening the verdict for the bundled (record-order-insensitive)
   properties:

   - Independence / local-step priority.  Two steps of different
     processes commute when neither writes a register the other
     touches (Program.independent on Config.footprint).  A step with
     an *empty* footprint (an invocation, an output) commutes with
     everything forever, so when some process is poised at one, it is
     a singleton persistent ("ample") set: exploring only that branch
     loses no behaviour — every execution is trace-equivalent to one
     that takes the local step first, and frontier completion performs
     any postponed local steps deterministically.

   - Sleep sets.  When several memory-touching steps are enabled, all
     are branched on, but a branch that merely re-orders independent
     steps already covered by an earlier sibling is pruned: after
     exploring pid p, p joins the "sleep set" of the later siblings'
     subtrees and stays there while the steps taken commute with p's.

   - State caching.  A canonical key of the reached state
     (Spec.Statehash) memoizes explored states, so different
     interleavings of independent steps that converge to the same
     state are explored once.  An entry may only short-circuit a new
     visit if it had at least as much remaining depth budget and was
     explored with a sleep set no larger than the current one — both
     guards are required for soundness (docs/EXPLORATION.md).

   - Parallel domains.  The schedule tree is sharded across OCaml 5
     domains with work-stealing deques: each domain runs depth-first
     over its own deque and steals the oldest (largest-subtree) half
     of a victim's deque when empty.  Caches and counters are
     domain-local (no contention); counters merge at the end, and the
     first violation found wins via a compare-and-set flag.

     With the journaled memory backend (Shm.Memory.Journaled) a
     configuration's register array is shared by its whole version
     family, and reading it reroots mutable journal cells — so a
     config may only ever be touched by the domain that built it.
     Stealing therefore replays instead of sharing: each domain gets
     its own unshared copy of the root (built before spawning), every
     node records its owning domain and its schedule, and a domain
     that picks up a foreign node rebuilds the configuration by
     replaying the schedule on its own root.  Replay is deterministic
     (same programs, same inputs, same pids), costs O(depth) once per
     stolen node, and never dereferences the foreign config at all.
     The observation hashes, sleep sets, and schedules carried by a
     node are immutable and shared freely.

   Caveat, stated once and repeated in the docs: under a *finite*
   depth bound, reduction changes which length-≤-depth prefixes exist,
   so naive and reduced engines complete slightly different frontier
   sets.  Every class explored is genuine (violations are real and
   re-checkable); a violation reachable only at the very edge of the
   bound can require a slightly larger depth under reduction. *)

open Shm
module Iset = Set.Make (Int)

type stats = {
  explored : int;      (* nodes visited (interior + frontier) *)
  leaves : int;        (* frontier configurations completed and checked *)
  max_depth : int;
  cache_hits : int;    (* nodes short-circuited by the state cache *)
  sleep_pruned : int;  (* branches pruned by sleep sets *)
  refined : int;       (* sleep retentions owed to ?static_indep alone *)
  steals : int;        (* successful steals (work-migration events) *)
  domains : int;
}

type outcome = Complete of stats | Violation of Counterex.t * stats

let pp_outcome ppf = function
  | Complete { explored; leaves; cache_hits; sleep_pruned; _ } ->
    Fmt.pf ppf "no violation (%d nodes, %d completions checked, %d cache hits, %d sleep-pruned)"
      explored leaves cache_hits sleep_pruned
  | Violation (ce, { explored; _ }) ->
    Fmt.pf ppf "counterexample after %d nodes — %a" explored Counterex.pp ce

(* ---- exploration nodes and per-domain work deques ---- *)

type node = {
  config : Config.t;
  hash : Statehash.t;      (* per-pid observation hashes, for the cache *)
  depth : int;
  sched : int list;        (* pids stepped so far, reversed *)
  sleep : Iset.t;          (* pids whose branches are covered elsewhere *)
  owner : int;             (* domain that built [config] (journal ownership) *)
}

type deque = { lock : Mutex.t; mutable items : node list (* head = freshest *) }

let push_deque dq n =
  Mutex.lock dq.lock;
  dq.items <- n :: dq.items;
  Mutex.unlock dq.lock

(* Pop up to [k] of the freshest nodes under one lock acquisition —
   batched frontier expansion (PR 10).  With [k = 1] this is the
   classic pop; larger batches amortize the lock and process a run of
   sibling nodes back-to-back (they were pushed together, so their
   configurations share structure and stay cache-warm).  The returned
   list is freshest-first, preserving DFS order. *)
let pop_deque_batch dq k =
  Mutex.lock dq.lock;
  let rec take k items acc =
    if k = 0 then (List.rev acc, items)
    else
      match items with
      | [] -> (List.rev acc, [])
      | n :: rest -> take (k - 1) rest (n :: acc)
  in
  let taken, rest = take k dq.items [] in
  dq.items <- rest;
  Mutex.unlock dq.lock;
  taken

(* A thief takes the *oldest* half — shallow nodes with the largest
   subtrees — leaving the owner its freshest (cache-warm) half. *)
let steal_deque dq =
  Mutex.lock dq.lock;
  let stolen =
    match dq.items with
    | [] -> []
    | [ n ] ->
      dq.items <- [];
      [ n ]
    | items ->
      let keep = List.length items / 2 in
      let rec split i = function
        | rest when i = 0 -> ([], rest)
        | x :: rest ->
          let kept, taken = split (i - 1) rest in
          (x :: kept, taken)
        | [] -> ([], [])
      in
      let kept, taken = split keep items in
      dq.items <- kept;
      taken
  in
  Mutex.unlock dq.lock;
  stolen

(* ---- the engine ---- *)

(* Cache keys: the incremental Statehash key (the fast default), or
   the original full MD5 digest (the audited reference path, also the
   perf benchmark's old-cost arm). *)
type key_mode = [ `Incremental | `Full ]

type ckey = Kinc of Statehash.key | Kfull of Digest.t

type ctx = {
  bound : int;
  batch : int;  (* nodes popped per deque lock acquisition *)
  completion_steps : int;
  inputs : pid:int -> instance:int -> Value.t option;
  check : Config.t -> (unit, string) result;
  use_cache : bool;
  key_mode : key_mode;
  (* conditional-independence refinement: may the poised ops of two
     processes be swapped in the state whose memory is [mem] without
     changing the resulting configuration?  [None] = footprints only. *)
  static_indep : (mem:Memory.t -> Program.op -> Program.op -> bool) option;
  replay : bool;          (* journaled backend + several domains *)
  roots : Config.t array; (* per-domain root copies (replay mode) *)
  deques : deque array;
  pending : int Atomic.t;             (* nodes queued or in flight *)
  found : Counterex.t option Atomic.t;
  (* -- observability (all optional, zero-cost when absent) -- *)
  trace : Obs.Trace.t option;   (* ambient collector, captured at explore *)
  troot : Obs.Trace.ctx option; (* the run's root span *)
  (* worker id -> domain id, written once by each worker at startup; a
     thief reads its victim's slot to attribute the out-side of a steal
     flow (a stale read only misplaces one arrow, never corrupts) *)
  doms : int array;
  profiling : bool;
  series : Obs.Prof.Series.t option;
}

type acc = {
  mutable explored : int;
  mutable leaves : int;
  mutable max_depth : int;
  mutable cache_hits : int;
  mutable sleep_pruned : int;
  mutable refined : int;
  mutable steals : int;
}

(* Per-worker observability state: the phase profile (merged into the
   caller's after the join) and the strided sampling countdown. *)
type wobs = { prof : Obs.Prof.t; mutable until_sample : int }

(* Sampling stride for the time series and coverage counter tracks:
   cheap enough to leave on whenever a trace/series is requested, fine
   enough to resolve exploration shape. *)
let sample_stride = 64

let report ctx ce = ignore (Atomic.compare_and_set ctx.found None (Some ce))

(* Cache lookup-or-insert.  Skipping a revisit is sound only against an
   entry that (a) had at least as much remaining budget and (b) was
   explored with a sleep set no larger than ours — a smaller sleep set
   means *more* branches were explored there, covering ours. *)
let cache_covers ctx cache node ~remaining acc =
  match cache with
  | None -> false
  | Some tbl ->
    let key =
      match ctx.key_mode with
      | `Incremental -> Kinc (Statehash.key node.hash)
      | `Full -> Kfull (Statehash.full_key node.hash node.config)
    in
    let entries = Option.value (Hashtbl.find_opt tbl key) ~default:[] in
    if List.exists (fun (r, sl) -> r >= remaining && Iset.subset sl node.sleep) entries
    then begin
      acc.cache_hits <- acc.cache_hits + 1;
      true
    end
    else begin
      let entries = (remaining, node.sleep) :: entries in
      let entries =
        if List.length entries > 8 then List.filteri (fun i _ -> i < 8) entries
        else entries
      in
      Hashtbl.replace tbl key entries;
      false
    end

(* Rebuild a foreign node's configuration by replaying its schedule on
   this domain's own root copy (see the journal-ownership note above).
   Invocation inputs are re-derived from [ctx.inputs] — the same values
   the original execution consumed. *)
let replay_config ctx ~id sched =
  List.fold_left
    (fun config pid ->
      match Config.proc config pid with
      | Program.Await _ ->
        let inst = Config.instance config pid + 1 in
        Stdlib.fst (Config.invoke config pid (Option.get (ctx.inputs ~pid ~instance:inst)))
      | Program.Stop -> assert false (* replay of a valid schedule *)
      | Program.Op _ | Program.Yield _ -> Stdlib.fst (Config.step config pid))
    ctx.roots.(id) (List.rev sched)

(* Strided observability sampling: time-series row plus the coverage
   and frontier counter tracks.  Runs every [sample_stride] nodes and
   only when a series or trace is requested, so the hot path pays one
   decrement-and-test per node. *)
let sample ctx acc node =
  let frontier () =
    (* unlocked reads: [items] is a mutable field holding an immutable
       list, so a racy read sees some recent snapshot — fine at stride *)
    Array.fold_left (fun t dq -> t + List.length dq.items) 0 ctx.deques
  in
  (match ctx.series with
  | Some s ->
    Obs.Prof.Series.add s ~ts_ns:(Obs.Prof.now_ns ()) ~nodes:acc.explored
      ~frontier:(frontier ()) ~cache_hits:acc.cache_hits ~sleep_hits:acc.sleep_pruned
  | None -> ());
  match ctx.trace with
  | Some tr ->
    Obs.Trace.counter tr ~track:Obs.Coverage.track_covered
      (float_of_int (Obs.Coverage.num_covered node.config));
    Obs.Trace.counter tr ~track:Obs.Coverage.track_written
      (float_of_int (Obs.Coverage.num_written node.config));
    Obs.Trace.counter tr ~track:"frontier" (float_of_int (frontier ()))
  | None -> ()

let process ctx cache acc ~id ~push w node =
  acc.explored <- acc.explored + 1;
  if node.depth > acc.max_depth then acc.max_depth <- node.depth;
  let profiling = ctx.profiling in
  let prof = w.prof in
  let node =
    if (not ctx.replay) || node.owner = id then node
    else begin
      (* foreign node: rebuild on our own root (journal ownership) *)
      let t0 = if profiling then Obs.Prof.now_ns () else 0 in
      let sctx =
        match ctx.trace with
        | Some tr ->
          Some (tr, Obs.Trace.begin_span tr ?parent:ctx.troot ~cat:"dpor" "replay")
        | None -> None
      in
      let config = replay_config ctx ~id node.sched in
      (match sctx with
      | Some (tr, c) ->
        Obs.Trace.end_span tr ~args:[ ("depth", Obs.Json.Int node.depth) ] c
      | None -> ());
      if profiling then Obs.Prof.add prof Obs.Prof.Replay (Obs.Prof.now_ns () - t0);
      { node with config; owner = id }
    end
  in
  if ctx.series <> None || ctx.trace <> None then begin
    w.until_sample <- w.until_sample - 1;
    if w.until_sample <= 0 then begin
      w.until_sample <- sample_stride;
      sample ctx acc node
    end
  end;
  let config = node.config in
  let has_input pid inst = Option.is_some (ctx.inputs ~pid ~instance:inst) in
  let t0 = if profiling then Obs.Prof.now_ns () else 0 in
  let runnable =
    List.filter
      (fun pid -> Config.runnable config ~has_input pid)
      (List.init (Config.n config) Fun.id)
  in
  if profiling then Obs.Prof.add prof Obs.Prof.Footprint (Obs.Prof.now_ns () - t0);
  let t0 = if profiling then Obs.Prof.now_ns () else 0 in
  let covered = cache_covers ctx cache node ~remaining:(ctx.bound - node.depth) acc in
  if profiling then Obs.Prof.add prof Obs.Prof.Cache (Obs.Prof.now_ns () - t0);
  if covered then ()
  else
    let leaf () =
      acc.leaves <- acc.leaves + 1;
      let t0 = if profiling then Obs.Prof.now_ns () else 0 in
      let final =
        Counterex.complete ~inputs:ctx.inputs ~max_steps:ctx.completion_steps config
      in
      let verdict = ctx.check final in
      if profiling then Obs.Prof.add prof Obs.Prof.Check (Obs.Prof.now_ns () - t0);
      match verdict with
      | Ok () -> ()
      | Error error ->
        (match ctx.trace with
        | Some tr ->
          Obs.Trace.instant tr ~cat:"dpor"
            ~args:[ ("error", Obs.Json.String error) ]
            "violation"
        | None -> ());
        report ctx { Counterex.schedule = List.rev node.sched; error; config = final }
    in
    match runnable with
    | [] -> leaf ()
    | _ when node.depth >= ctx.bound -> leaf ()
    | _ ->
      let fp pid = Config.footprint config pid in
      let t0 = if profiling then Obs.Prof.now_ns () else 0 in
      (* a local (empty-footprint) step is a singleton persistent set *)
      let ample =
        match List.find_opt (fun pid -> Program.footprint_is_local (fp pid)) runnable with
        | Some p -> [ p ]
        | None -> runnable
      in
      let branches = List.filter (fun p -> not (Iset.mem p node.sleep)) ample in
      if profiling then Obs.Prof.add prof Obs.Prof.Footprint (Obs.Prof.now_ns () - t0);
      acc.sleep_pruned <- acc.sleep_pruned + (List.length ample - List.length branches);
      let _, children =
        List.fold_left
          (fun (explored_siblings, children) pid ->
            (* siblings explored before [pid] go to sleep in its
               subtree, as long as the steps taken commute with theirs *)
            let t0 = if profiling then Obs.Prof.now_ns () else 0 in
            let sleep =
              Iset.filter
                (fun q ->
                  Program.independent (fp q) (fp pid)
                  ||
                  (* conditional refinement: footprints collide, but the
                     two poised ops commute to the identical state in
                     the *current* memory (e.g. equal-value writes, a
                     no-op write against a read) — sound here precisely
                     because sleep sets only need commutation at this
                     node, unlike the persistent ample-set choice *)
                  match ctx.static_indep with
                  | None -> false
                  | Some refine -> (
                    match
                      ( Program.poised_op (Config.proc config q),
                        Program.poised_op (Config.proc config pid) )
                    with
                    | Some oq, Some opid
                      when refine ~mem:(Config.mem config) oq opid ->
                      acc.refined <- acc.refined + 1;
                      true
                    | _ -> false))
                (Iset.union node.sleep explored_siblings)
            in
            if profiling then
              Obs.Prof.add prof Obs.Prof.Footprint (Obs.Prof.now_ns () - t0);
            let t0 = if profiling then Obs.Prof.now_ns () else 0 in
            let config', ev =
              match Config.proc config pid with
              | Program.Await _ ->
                let inst = Config.instance config pid + 1 in
                Config.invoke config pid (Option.get (ctx.inputs ~pid ~instance:inst))
              | Program.Stop -> assert false (* not runnable *)
              | Program.Op _ | Program.Yield _ -> Config.step config pid
            in
            if profiling then Obs.Prof.add prof Obs.Prof.Interp (Obs.Prof.now_ns () - t0);
            let t0 = if profiling then Obs.Prof.now_ns () else 0 in
            let hash = Statehash.record node.hash ~before:config config' ev in
            if profiling then Obs.Prof.add prof Obs.Prof.Hash (Obs.Prof.now_ns () - t0);
            let child =
              {
                config = config';
                hash;
                depth = node.depth + 1;
                sched = pid :: node.sched;
                sleep;
                owner = id;
              }
            in
            (Iset.add pid explored_siblings, child :: children))
          (Iset.empty, []) branches
      in
      (* children is highest-pid-first; pushing in that order leaves the
         lowest pid on top of the deque, so DFS visits pids ascending *)
      List.iter push children

let worker ctx id =
  let cache = if ctx.use_cache then Some (Hashtbl.create 4096) else None in
  let acc =
    {
      explored = 0;
      leaves = 0;
      max_depth = 0;
      cache_hits = 0;
      sleep_pruned = 0;
      refined = 0;
      steals = 0;
    }
  in
  let w = { prof = Obs.Prof.create (); until_sample = sample_stride } in
  ctx.doms.(id) <- (Domain.self () :> int);
  (* the worker's whole lifetime is one span on its own domain's row *)
  let wspan =
    match ctx.trace with
    | Some tr ->
      Some
        ( tr,
          Obs.Trace.begin_span tr ?parent:ctx.troot ~cat:"dpor"
            ~args:[ ("worker", Obs.Json.Int id) ]
            (Fmt.str "worker %d" id) )
    | None -> None
  in
  let my = ctx.deques.(id) in
  let push n =
    Atomic.incr ctx.pending;
    push_deque my n
  in
  let jobs = Array.length ctx.deques in
  let profiling = ctx.profiling in
  let try_steal () =
    let t0 = if profiling then Obs.Prof.now_ns () else 0 in
    let rec go i =
      if i >= jobs then None
      else
        let victim = (id + i) mod jobs in
        match steal_deque ctx.deques.(victim) with
        | [] -> go (i + 1)
        | n :: rest ->
          (* stolen nodes are already counted in [pending] *)
          List.iter (push_deque my) rest;
          acc.steals <- acc.steals + 1;
          (match ctx.trace with
          | Some tr ->
            (* the handoff arrow: out on the victim's row, in on ours *)
            let flow = Obs.Trace.fresh_flow tr in
            Obs.Trace.instant tr ~cat:"dpor" ~dom:ctx.doms.(victim)
              ~flow:(flow, `Out)
              ~args:[ ("thief", Obs.Json.Int id) ]
              "steal.out";
            Obs.Trace.instant tr ~cat:"dpor"
              ~flow:(flow, `In)
              ~args:
                [
                  ("victim", Obs.Json.Int victim);
                  ("nodes", Obs.Json.Int (1 + List.length rest));
                  ("depth", Obs.Json.Int n.depth);
                ]
              "steal.in"
          | None -> ());
          Some n
    in
    let r = go 1 in
    if profiling then Obs.Prof.add w.prof Obs.Prof.Steal (Obs.Prof.now_ns () - t0);
    r
  in
  let rec loop () =
    if Atomic.get ctx.found <> None then ()
    else
      match pop_deque_batch my ctx.batch with
      | _ :: _ as nodes ->
        (* every popped node must be drained from [pending], even the
           ones skipped because a violation landed mid-batch *)
        List.iter
          (fun node ->
            if Atomic.get ctx.found = None then
              process ctx cache acc ~id ~push w node;
            Atomic.decr ctx.pending)
          nodes;
        loop ()
      | [] ->
        if Atomic.get ctx.pending = 0 then ()
        else begin
          (match try_steal () with
          | Some node ->
            process ctx cache acc ~id ~push w node;
            Atomic.decr ctx.pending
          | None -> Domain.cpu_relax ());
          loop ()
        end
  in
  loop ();
  (match wspan with
  | Some (tr, c) ->
    Obs.Trace.end_span tr
      ~args:
        [
          ("explored", Obs.Json.Int acc.explored);
          ("leaves", Obs.Json.Int acc.leaves);
          ("steals", Obs.Json.Int acc.steals);
        ]
      c
  | None -> ());
  (acc, w.prof)

let merge_stats ~domains accs =
  Array.fold_left
    (fun (s : stats) (a : acc) ->
      {
        explored = s.explored + a.explored;
        leaves = s.leaves + a.leaves;
        max_depth = max s.max_depth a.max_depth;
        cache_hits = s.cache_hits + a.cache_hits;
        sleep_pruned = s.sleep_pruned + a.sleep_pruned;
        refined = s.refined + a.refined;
        steals = s.steals + a.steals;
        domains = s.domains;
      })
    {
      explored = 0;
      leaves = 0;
      max_depth = 0;
      cache_hits = 0;
      sleep_pruned = 0;
      refined = 0;
      steals = 0;
      domains;
    }
    accs

(* Merge the final counters into a metrics registry, one counter per
   stat (per-domain counts were summed above). *)
let export_metrics m (stats : stats) =
  let bump name v = Obs.Metrics.Counter.incr ~by:v (Obs.Metrics.counter m name) in
  bump "explore.nodes" stats.explored;
  bump "explore.leaves" stats.leaves;
  bump "explore.cache_hits" stats.cache_hits;
  bump "explore.sleep_pruned" stats.sleep_pruned;
  bump "explore.refined" stats.refined;
  bump "explore.steals" stats.steals;
  Obs.Metrics.Gauge.set (Obs.Metrics.gauge m "explore.domains") (float_of_int stats.domains)

let explore ~depth ?(cache = true) ?(jobs = 1) ?(batch = 1) ?(key = `Incremental)
    ?(completion_steps = 50_000) ?static_indep ?metrics ?prof ?series ~inputs
    ~check config =
  if depth < 0 then invalid_arg "Dpor.explore: negative depth";
  let jobs = max 1 jobs in
  let batch = max 1 batch in
  let deques = Array.init jobs (fun _ -> { lock = Mutex.create (); items = [] }) in
  (* A journaled config can only be touched by the domain that owns its
     version family; with several domains every worker gets its own
     unshared root copy (built here, sequentially, before any domain
     runs) and rebuilds foreign nodes by schedule replay. *)
  let replay =
    jobs > 1 && Memory.backend (Config.mem config) = Memory.Journaled
  in
  let roots =
    if replay then Array.init jobs (fun _ -> Config.unshare config)
    else Array.make jobs config
  in
  let root =
    {
      config;
      hash = Statehash.create ~audit:(key = `Full) config;
      depth = 0;
      sched = [];
      sleep = Iset.empty;
      (* in replay mode no domain owns the original root config: whoever
         pops it rebuilds from its own copy (replay of []) *)
      owner = (if replay then -1 else 0);
    }
  in
  deques.(0).items <- [ root ];
  (* capture the ambient collector once: workers must all see the same
     collector (or none) for the run's lifetime *)
  let trace = Obs.Trace.attached () in
  let espan =
    match trace with
    | Some tr ->
      Some
        (Obs.Trace.begin_span tr ~cat:"dpor"
           ~args:
             [
               ("depth", Obs.Json.Int depth);
               ("jobs", Obs.Json.Int jobs);
               ("cache", Obs.Json.Bool cache);
               ("replay", Obs.Json.Bool replay);
             ]
           "explore")
    | None -> None
  in
  let ctx =
    {
      bound = depth;
      batch;
      completion_steps;
      inputs;
      check;
      use_cache = cache;
      key_mode = key;
      static_indep;
      replay;
      roots;
      deques;
      pending = Atomic.make 1;
      found = Atomic.make None;
      trace;
      troot = espan;
      doms = Array.make jobs 0;
      profiling = prof <> None;
      series;
    }
  in
  let results =
    if jobs = 1 then [| worker ctx 0 |]
    else begin
      let others =
        Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker ctx (i + 1)))
      in
      let mine = worker ctx 0 in
      Array.append [| mine |] (Array.map Domain.join others)
    end
  in
  let accs = Array.map Stdlib.fst results in
  let stats = merge_stats ~domains:jobs accs in
  Option.iter
    (fun into -> Array.iter (fun (_, p) -> Obs.Prof.merge_into ~into p) results)
    prof;
  (match (trace, espan) with
  | Some tr, Some c ->
    Obs.Trace.end_span tr
      ~args:
        [
          ("explored", Obs.Json.Int stats.explored);
          ("leaves", Obs.Json.Int stats.leaves);
          ("steals", Obs.Json.Int stats.steals);
        ]
      c
  | _ -> ());
  Option.iter (fun m -> export_metrics m stats) metrics;
  match Atomic.get ctx.found with
  | Some ce -> Violation (ce, stats)
  | None -> Complete stats
