(** A Wing–Gong-style linearizability checker for snapshot histories.

    A history is a set of update/scan operations with real-time
    intervals.  Intervals are abstract — any monotone integer clock
    works — so the same checker grades simulator histories (global step
    counters) and native multicore histories (monotonic-clock
    nanoseconds).  The checker searches for a total order that respects
    real time and is a legal sequential snapshot history (each scan
    returns exactly the latest value of every component, ⊥ if none).

    Partial histories are supported: a {e pending} operation (invoked,
    no response observed — e.g. its process crashed mid-operation) may
    have taken effect at any point after its invocation, or never; the
    search enumerates its possible completion points. *)

type op =
  | Update of { i : int; v : Shm.Value.t }
  | Scan of { view : Shm.Value.t array }

type event = {
  pid : int;
  op : op;
  start : int;   (** clock value at invocation (steps or ns) *)
  finish : int;  (** clock value at response; [max_int] if pending *)
}

val pp_event : Format.formatter -> event -> unit

(** [check ~components events] is true iff the (complete) history is
    linearizable as an atomic snapshot object.  Memoized DFS; intended
    for histories of tens of operations. *)
val check : components:int -> event list -> bool

(** [check_partial ~components ~pending completed] additionally allows
    each pending operation to be linearized anywhere after its start,
    or dropped.  Pending scans are always droppable (nobody observed
    their view) and are ignored. *)
val check_partial : components:int -> pending:event list -> event list -> bool

(** [witness ~components ?pending completed] is the
    legal-sequential-witness mode: [Some order] gives the operations —
    all completed ones plus any linearized pending ones — in a legal
    linearization order; [None] iff the history is not linearizable. *)
val witness :
  components:int -> ?pending:event list -> event list -> event list option

(** {1 Harness support}

    Tester processes announce each completed operation with an [Output]
    event carrying one of these encodings; {!history_of_trace} then
    reconstructs operations and intervals from a recorded trace. *)

val encode_update : i:int -> v:Shm.Value.t -> Shm.Value.t
val encode_scan : Shm.Value.t array -> Shm.Value.t
val decode_marker : Shm.Value.t -> op option
val history_of_trace : Shm.Event.t list -> event list
