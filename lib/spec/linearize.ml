(* A Wing–Gong-style linearizability checker for snapshot histories.

   A history is a set of operations — updates and scans — with real-time
   intervals.  Intervals are abstract: any monotone integer clock works,
   so the same checker grades simulator histories (global step counters)
   and native multicore histories (monotonic-clock nanoseconds captured
   by Conform.Recorder).  The checker searches for a total order that
   (a) respects real time (if o1 finishes before o2 starts, o1 precedes
   o2) and (b) is a legal sequential snapshot history (each scan returns
   exactly the latest value written to every component, ⊥ if none).

   Operations divide into *completed* ones (response observed; both
   endpoints known) and *pending* ones (invocation observed, no
   response — e.g. the process crashed mid-operation).  A pending
   operation may have taken effect at any point after its invocation, or
   never; the search enumerates completion points by treating pending
   operations as optional candidates with an infinite finish time.  This
   is the standard completion-point enumeration of Wing–Gong extended to
   partial histories.

   Histories produced by the test harnesses are small (tens of
   operations), so a memoized depth-first search is ample. *)

open Shm

type op =
  | Update of { i : int; v : Value.t }
  | Scan of { view : Value.t array }

type event = {
  pid : int;
  op : op;
  start : int;   (* clock value at invocation (steps or ns) *)
  finish : int;  (* clock value at response; [max_int] if pending *)
}

let pp_event ppf e =
  let pp_iv ppf (s, f) =
    if f = max_int then Fmt.pf ppf "[%d,pending]" s else Fmt.pf ppf "[%d,%d]" s f
  in
  match e.op with
  | Update { i; v } ->
    Fmt.pf ppf "p%d: update(%d,%a) %a" e.pid i Value.pp v pp_iv (e.start, e.finish)
  | Scan { view } ->
    Fmt.pf ppf "p%d: scan->[%a] %a" e.pid
      Fmt.(array ~sep:(any ";") Value.pp)
      view pp_iv (e.start, e.finish)

(* [witness ~components ?pending events] searches for a linearization:
   a total order of all completed [events] plus any subset of [pending]
   operations that respects real time and snapshot semantics.  Returns
   the order (completed and linearized-pending operations interleaved)
   or [None].  Pending scans are droppable without loss of generality —
   nobody observed their view — so they are discarded up front. *)
let witness ~components ?(pending = []) completed =
  let pending =
    List.filter (fun e -> match e.op with Update _ -> true | Scan _ -> false) pending
  in
  let events = Array.of_list (completed @ pending) in
  let nc = List.length completed in
  let n = Array.length events in
  let finish_of j = if j < nc then events.(j).finish else max_int in
  (* The memo key must pair the linearized set with the component state:
     two different orders of same-component updates cover the same set
     but leave different states, and only one of them may admit a
     completion. *)
  let module Key = struct
    type t = bool array * Value.t array

    let equal = ( = )
    let hash (k : t) = Hashtbl.hash k
  end in
  let module Memo = Hashtbl.Make (Key) in
  let failed = Memo.create 97 in
  (* state: current component values; done_: linearized set; [remaining]
     counts completed operations only — pending ones need not linearize.
     [acc] is the order built so far, reversed. *)
  let rec search done_ state remaining acc =
    if remaining = 0 then Some (List.rev_map (fun j -> events.(j)) acc)
    else if Memo.mem failed (done_, state) then None
    else begin
      (* earliest finish among not-yet-linearized ops: nothing that
         starts after it may be linearized before it *)
      let min_finish = ref max_int in
      for j = 0 to n - 1 do
        if (not done_.(j)) && finish_of j < !min_finish then min_finish := finish_of j
      done;
      let result = ref None in
      let j = ref 0 in
      while Option.is_none !result && !j < n do
        let idx = !j in
        incr j;
        if (not done_.(idx)) && events.(idx).start <= !min_finish then begin
          let dec = if idx < nc then 1 else 0 in
          (* events.(idx) may be linearized next *)
          match events.(idx).op with
          | Update { i; v } ->
            let prev = state.(i) in
            state.(i) <- v;
            done_.(idx) <- true;
            (match search done_ state (remaining - dec) (idx :: acc) with
            | Some _ as w -> result := w
            | None ->
              done_.(idx) <- false;
              state.(i) <- prev)
          | Scan { view } ->
            let matches =
              Array.length view = components
              &&
              let rec go i =
                i >= components || (Value.equal view.(i) state.(i) && go (i + 1))
              in
              go 0
            in
            if matches then begin
              done_.(idx) <- true;
              match search done_ state (remaining - dec) (idx :: acc) with
              | Some _ as w -> result := w
              | None -> done_.(idx) <- false
            end
        end
      done;
      if Option.is_none !result then Memo.add failed (Array.copy done_, Array.copy state) ();
      !result
    end
  in
  search (Array.make n false) (Array.make components Value.bot) nc []

let check ~components events = Option.is_some (witness ~components events)

let check_partial ~components ~pending completed =
  Option.is_some (witness ~components ~pending completed)

(* Harness support: extract a snapshot history from a recorded trace of
   tester processes.  Testers announce each completed operation with an
   [Output] event whose value encodes the operation (see
   [encode_update]/[encode_scan]); the operation's interval is the span
   of the process's shared-memory steps since its previous marker. *)

let encode_update ~i ~v = Value.list [ Value.str "U"; Value.int i; v ]

let encode_scan view = Value.list [ Value.str "S"; Value.list (Array.to_list view) ]

let decode_marker marker =
  match Value.view marker with
  | Value.List [ tag; i; v ]
    when (match Value.view tag with Value.Str "U" -> true | _ -> false)
         && (match Value.view i with Value.Int _ -> true | _ -> false) ->
    Some (Update { i = Value.to_int i; v })
  | Value.List [ tag; view ]
    when (match Value.view tag with Value.Str "S" -> true | _ -> false)
         && (match Value.view view with Value.List _ -> true | _ -> false) ->
    Some (Scan { view = Array.of_list (Value.to_list view) })
  | _ -> None

let history_of_trace trace =
  (* per-process: first/last memory-step indices since last marker *)
  let spans = Hashtbl.create 7 in
  let events = ref [] in
  List.iteri
    (fun time ev ->
      let pid = Event.pid ev in
      match ev with
      | Event.Did_read _ | Event.Did_write _ | Event.Did_scan _ ->
        let first, _ = try Hashtbl.find spans pid with Not_found -> (time, time) in
        Hashtbl.replace spans pid (first, time)
      | Event.Output { value; _ } -> (
        match decode_marker value with
        | Some op ->
          let start, finish =
            try Hashtbl.find spans pid with Not_found -> (time, time)
          in
          Hashtbl.remove spans pid;
          events := { pid; op; start; finish } :: !events
        | None -> ())
      | Event.Invoke _ -> ())
    trace;
  List.rev !events
