(* Bounded model checking of the simulated system: one front door over
   two engines.

   Because configurations are pure values and processes are
   deterministic, the only nondeterminism is the schedule; exploring all
   schedules up to a depth bound therefore covers *every* reachable
   configuration prefix.  After the bound, each frontier configuration
   is driven to quiescence with a deterministic completion schedule,
   and the property is evaluated there — so the check covers "all
   executions that diverge in their first [depth] steps".

   Two engines implement that contract:

   - [Naive] (also available directly as [exhaustive]): literal
     enumeration of every schedule — n^depth nodes, the reference
     semantics, and the engine whose counterexamples are
     lexicographically first;
   - [Dpor] (Spec.Dpor): partial-order reduction + state caching +
     optional parallel domains — orders of magnitude fewer nodes, same
     class coverage (see docs/EXPLORATION.md for the bounded-depth
     caveat).

   For small n the naive engine is a proof (up to the depth bound)
   rather than a sample, and it finds minimal counterexample schedules,
   reported as the list of pids stepped. *)

open Shm

type stats = {
  explored : int;        (* interior nodes visited *)
  leaves : int;          (* frontier configurations checked *)
  max_depth : int;
  cache_hits : int;      (* Dpor only: nodes short-circuited by the cache *)
  pruned : int;          (* Dpor only: branches pruned by sleep sets *)
  steals : int;          (* Dpor only: work-stealing migrations *)
}

type outcome =
  | Ok_bounded of stats
  | Counterexample of {
      schedule : int list;  (* pids, in step order, up to the frontier *)
      error : string;
      config : Config.t;
      stats : stats;
    }

let pp_outcome ppf = function
  | Ok_bounded { explored; leaves; _ } ->
    Fmt.pf ppf "no violation (%d nodes, %d completions checked)" explored leaves
  | Counterexample { schedule; error; _ } ->
    Fmt.pf ppf "counterexample schedule [%a]: %s"
      Fmt.(list ~sep:comma int)
      schedule error

(* Extract the counterexample as the common currency of the stack, for
   shrinking and replay. *)
let counterex_of = function
  | Ok_bounded _ -> None
  | Counterexample { schedule; error; config; _ } ->
    Some { Counterex.schedule; error; config }

(* Drive [config] to quiescence deterministically (solo bursts). *)
let complete ~inputs ~max_steps config = Counterex.complete ~inputs ~max_steps config

(* [exhaustive ~depth ~inputs ~check config] explores every schedule of
   length ≤ depth, completes each frontier, and applies [check].  Stops
   at the first violation. *)
let exhaustive ~depth ~inputs ?(completion_steps = 50_000) ~check config =
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let explored = ref 0 and leaves = ref 0 and deepest = ref 0 in
  let exception Found of int list * string * Config.t in
  let check_leaf schedule config =
    incr leaves;
    let final = complete ~inputs ~max_steps:completion_steps config in
    match check final with
    | Ok () -> ()
    | Error e -> raise (Found (List.rev schedule, e, final))
  in
  let rec go config d schedule =
    incr explored;
    if d > !deepest then deepest := d;
    let n = Config.n config in
    let runnable =
      List.filter (fun pid -> Config.runnable config ~has_input pid) (List.init n Fun.id)
    in
    match runnable with
    | [] -> check_leaf schedule config
    | _ when d >= depth -> check_leaf schedule config
    | _ ->
      runnable
      |> List.iter (fun pid ->
             let config' =
               match Config.proc config pid with
               | Program.Await _ ->
                 let inst = Config.instance config pid + 1 in
                 fst (Config.invoke config pid (Option.get (inputs ~pid ~instance:inst)))
               | Program.Stop -> config
               | Program.Op _ | Program.Yield _ -> fst (Config.step config pid)
             in
             go config' (d + 1) (pid :: schedule))
  in
  let stats () =
    { explored = !explored; leaves = !leaves; max_depth = !deepest;
      cache_hits = 0; pruned = 0; steals = 0 }
  in
  try
    go config 0 [];
    Ok_bounded (stats ())
  with Found (schedule, error, config) ->
    Counterexample { schedule; error; config; stats = stats () }

(* ---- engine dispatch ---- *)

type engine = Naive | Dpor of { cache : bool; jobs : int }

let engine_name = function
  | Naive -> "naive"
  | Dpor { cache; jobs } ->
    Fmt.str "dpor%s%s"
      (if cache then "+cache" else "")
      (if jobs > 1 then Fmt.str " (%d domains)" jobs else "")

(* Export an outcome's counters into a metrics registry, same names as
   Dpor.explore uses (so --stats output is uniform across engines). *)
let export_metrics m (stats : stats) =
  let bump name v = Obs.Metrics.Counter.incr ~by:v (Obs.Metrics.counter m name) in
  bump "explore.nodes" stats.explored;
  bump "explore.leaves" stats.leaves;
  bump "explore.cache_hits" stats.cache_hits;
  bump "explore.sleep_pruned" stats.pruned

let stats_of = function Ok_bounded s -> s | Counterexample { stats; _ } -> stats

let run ~engine ~depth ?key ~inputs ?completion_steps ?static_indep ?metrics
    ?prof ?series ~check config =
  match engine with
  | Naive ->
    let out = exhaustive ~depth ~inputs ?completion_steps ~check config in
    Option.iter (fun m -> export_metrics m (stats_of out)) metrics;
    out
  | Dpor { cache; jobs } -> (
    let to_stats (s : Dpor.stats) =
      {
        explored = s.Dpor.explored;
        leaves = s.Dpor.leaves;
        max_depth = s.Dpor.max_depth;
        cache_hits = s.Dpor.cache_hits;
        pruned = s.Dpor.sleep_pruned;
        steals = s.Dpor.steals;
      }
    in
    match
      Dpor.explore ~depth ~cache ~jobs ?key ?completion_steps ?static_indep
        ?metrics ?prof ?series ~inputs ~check config
    with
    | Dpor.Complete s -> Ok_bounded (to_stats s)
    | Dpor.Violation (ce, s) ->
      Counterexample
        {
          schedule = ce.Counterex.schedule;
          error = ce.Counterex.error;
          config = ce.Counterex.config;
          stats = to_stats s;
        })

(* ---- the same front door over the bytecode engine ---- *)

(* [run_vm] is [run] for first-order protocols executed by [Shm.Vm]:
   [Naive] maps to Vmexplore with the reduction off (literal schedule
   enumeration, the reference), [Dpor {cache; jobs}] to the reduced
   engine.  The check is applied to decoded i/o records
   (Properties.check_safety_io fits directly); outcomes and metric
   names match [run], so callers switch engines without reshaping
   results. *)
let run_vm ~engine ~depth ?batch ?rounds ?completion_steps ?metrics ?prof
    ?series ~inputs ~check p =
  let to_stats (s : Vmexplore.stats) =
    {
      explored = s.Vmexplore.explored;
      leaves = s.Vmexplore.leaves;
      max_depth = s.Vmexplore.max_depth;
      cache_hits = s.Vmexplore.cache_hits;
      pruned = s.Vmexplore.sleep_pruned;
      steals = 0;  (* the vm engine splits statically: no stealing *)
    }
  in
  let outcome =
    match engine with
    | Naive ->
      Vmexplore.explore ~depth ~reduce:false ~cache:false ~jobs:1 ?batch
        ?rounds ?completion_steps ?metrics ?prof ?series ~inputs ~check p
    | Dpor { cache; jobs } ->
      Vmexplore.explore ~depth ~reduce:true ~cache ~jobs ?batch ?rounds
        ?completion_steps ?metrics ?prof ?series ~inputs ~check p
  in
  match outcome with
  | Vmexplore.Complete s -> Ok_bounded (to_stats s)
  | Vmexplore.Violation (ce, s) ->
    Counterexample
      {
        schedule = ce.Counterex.schedule;
        error = ce.Counterex.error;
        config = ce.Counterex.config;
        stats = to_stats s;
      }
