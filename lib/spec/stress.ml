(* Randomized safety stress: hammer a system builder with seeded
   schedules and report any safety violation found.

   This is the shared engine behind the E9/E12 frontier probes and the
   negative-control tests: unlike the model checker it scales to any n,
   and unlike the constructions of lib/lowerbound it needs no theory —
   just schedules.  A [Broken] verdict carries a replayable witness
   (builder + seed + schedule family); [Survived] is evidence, not
   proof. *)

open Shm

type family = Bursty | Uniform | M_bounded of int

let family_name = function
  | Bursty -> "bursty"
  | Uniform -> "uniform"
  | M_bounded m -> Fmt.str "m-bounded(%d)" m

let sched_of family ~seed ~n =
  match family with
  | Bursty -> Schedule.bursty_random ~seed (List.init n Fun.id)
  | Uniform -> Schedule.random ~seed n
  | M_bounded m -> Schedule.m_bounded ~seed ~m ~prefix:(40 + (seed mod 60)) n

type verdict =
  | Survived of { runs : int }
  | Broken of {
      seed : int;
      family : family;
      error : string;
      config : Config.t;
      schedule : int list;  (* the pid sequence that produced it *)
    }

let pp_verdict ppf = function
  | Survived { runs } -> Fmt.pf ppf "no violation in %d runs" runs
  | Broken { seed; family; error; schedule; _ } ->
    Fmt.pf ppf "VIOLATION (%s schedule, seed %d, %d steps): %s" (family_name family)
      seed (List.length schedule) error

(* The witness as the stack's common counterexample currency, ready for
   Counterex.replay (no completion — stress checks the raw final
   configuration) and Shrink.minimize. *)
let counterex_of = function
  | Survived _ -> None
  | Broken { error; config; schedule; _ } ->
    Some { Counterex.schedule; error; config }

(* [run ~k ~n ~build ~inputs ()] stress-tests the system produced by
   [build] (fresh per run): [runs] seeds per schedule family, each run
   capped at [max_steps]; stops at the first safety violation.  Runs
   record their trace, so a violation carries the pid schedule that
   produced it — every event is one scheduler pick, so the projection
   of the trace onto pids replays the run exactly. *)
let run ?(runs = 100) ?(max_steps = 60_000) ?(families = [ Bursty; Uniform ]) ~k ~n
    ~build ~inputs () =
  let exception Found of verdict in
  try
    let total = ref 0 in
    List.iter
      (fun family ->
        for seed = 0 to runs - 1 do
          incr total;
          let config = (build () : Config.t) in
          let sched = sched_of family ~seed ~n in
          let res = Exec.run ~record:true ~sched ~inputs ~max_steps config in
          match Properties.check_safety ~k res.Exec.config with
          | Ok () -> ()
          | Error error ->
            let schedule = List.map Event.pid res.Exec.trace in
            raise
              (Found (Broken { seed; family; error; config = res.Exec.config; schedule }))
        done)
      families;
    Survived { runs = !total }
  with Found v -> v
