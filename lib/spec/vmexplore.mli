(** Exploration engine v3: DPOR over bytecode-compiled protocols
    ({!Shm.Vm}), with batched frontier expansion over contiguous
    arenas.

    Applies the same reduction as {!Dpor} — singleton ample sets for
    local steps, sleep sets, state caching guarded by remaining depth
    and sleep-subset inclusion — to first-order protocols executed by
    the bytecode engine: a configuration is a flat slice of an int
    arena, a child node is one [Array.blit] plus one in-place
    [Vm.step], and the cache key is read off the slice (maintained
    incrementally by the vm, hashing the machine state itself — see
    [Shm.Vm.key]).  The
    frontier is expanded [batch] nodes per pass so successor slices
    are bump-allocated consecutively — the cache-friendly layout the
    interpreter's heap configurations cannot offer.

    With [reduce:false] the engine enumerates every schedule — the
    vm analogue of {!Modelcheck.exhaustive}, and the naive arm of the
    vm differential tests.  With [jobs > 1] the root is expanded
    breadth-first until the frontier feeds every domain, then each
    domain drains its share on a {e private} arena (snapshots are
    plain ints, so distribution is a blit at spawn time and workers
    share no mutable state; the split is static — no stealing).

    Soundness mirrors [Dpor]'s, with one engine-specific caveat: the
    vm executes compiled first-order protocols only, and its semantic
    agreement with the free-monad interpreter is enforced by the
    fuzzer's [vm] oracle and the QCheck equivalence suite rather than
    assumed.  Violations are replayed through the interpreter before
    being reported, so every {!Counterex.t} that leaves this module
    has been independently re-executed by the reference engine. *)

type stats = {
  explored : int;  (** nodes visited (interior + frontier) *)
  leaves : int;  (** frontier configurations completed and checked *)
  max_depth : int;
  cache_hits : int;  (** nodes short-circuited by the state cache *)
  sleep_pruned : int;  (** branches pruned by sleep sets *)
  batches : int;  (** frontier passes (≤ [batch] nodes each) *)
  arena_hwm_words : int;  (** peak arena footprint, ints, summed over domains *)
  domains : int;
}

type outcome = Complete of stats | Violation of Counterex.t * stats

val pp_outcome : Format.formatter -> outcome -> unit

(** [explore ~depth ~inputs ~check p] compiles [p] and explores one
    representative schedule per equivalence class up to [depth] steps,
    completing each frontier configuration deterministically (the
    [Counterex.complete] schedule, budget [completion_steps], default
    50k) and applying [check] to the decoded i/o records
    ({!Properties.check_safety_io} fits directly).

    [reduce] (default [true]) enables the partial-order reduction;
    [cache] (default [true]) the state cache; [batch] (default 8) is
    the frontier batch size; [rounds] (default 1) bounds invocations
    per process.  [metrics] receives the merged [explore.*] counters
    (including [explore.batches] and [explore.arena_hwm_words]);
    [prof] the per-phase breakdown ([vm.step], [vm.batch], [cache],
    [check]); [series] strided frontier samples.

    Raises [Invalid_argument] when [p] has more than 62 processes
    (sleep sets are int bitmasks) or fails to compile. *)
val explore :
  depth:int ->
  ?reduce:bool ->
  ?cache:bool ->
  ?jobs:int ->
  ?batch:int ->
  ?rounds:int ->
  ?completion_steps:int ->
  ?metrics:Obs.Metrics.t ->
  ?prof:Obs.Prof.t ->
  ?series:Obs.Prof.Series.t ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  check:
    (inputs:(int * int * Shm.Value.t) list ->
     outputs:(int * int * Shm.Value.t) list ->
     (unit, string) result) ->
  Shm.Vm.proto ->
  outcome
