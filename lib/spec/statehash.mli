(** Canonical hashing of configurations, for exploration-time state
    caching.

    A process's local state is an OCaml closure, so it cannot be
    hashed structurally — but processes are deterministic, so the local
    state is a function of the initial program and the sequence of
    values the process has consumed.  A value of type {!t} threads one
    digest per process over exactly those observations; {!key} combines
    them with the memory contents, instance counters, and the (sorted)
    input/output records into a canonical state key.

    The key never merges states that behave differently; it may fail
    to merge states that do behave the same (a missed cache hit, never
    a missed behaviour).  Bookkeeping (step counters, the
    written-register set) is excluded on purpose, and the i/o records
    are sorted, so schedules that differ only in the order of
    independent steps produce equal keys.  Caveats are documented in
    [docs/EXPLORATION.md]. *)

type t

(** Fresh digests for the initial configuration (no observations). *)
val create : Shm.Config.t -> t

(** [record t config ev] folds the event into the stepping process's
    digest.  [config] must be the configuration {e after} the step
    ([record] re-reads scan results from it; scans do not change
    memory). *)
val record : t -> Shm.Config.t -> Shm.Event.t -> t

(** The uncompressed canonical form behind {!key} — exposed so tests
    can certify key collisions are absent over an enumerated state
    space. *)
val repr : t -> Shm.Config.t -> string

(** MD5 of {!repr}: the cache key for this state. *)
val key : t -> Shm.Config.t -> Digest.t
