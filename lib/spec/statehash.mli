(** Canonical hashing of configurations, for exploration-time state
    caching — maintained incrementally across steps.

    A process's local state is an OCaml closure, so it cannot be
    hashed structurally — but processes are deterministic, so the local
    state is a function of the initial program and the sequence of
    values the process has consumed.  A value of type {!t} threads one
    observation hash per process over exactly those observations and
    maintains the combined state {!key} (memory contents, observation
    hashes and instance counters, i/o record multisets) incrementally:
    O(1) per step, O(len) for scans — no full-configuration digest per
    explored node.

    The key never merges states that behave differently except by hash
    collision; it may fail to merge states that do behave the same (a
    missed cache hit, never a missed behaviour).  Bookkeeping (step
    counters, the written-register set) is excluded on purpose, and the
    i/o records are multiset-hashed, so schedules that differ only in
    the order of independent steps produce equal keys.  Collisions are
    audited against the original full MD5 digest, kept available behind
    [~audit:true] ({!repr}/{!full_key}).  Caveats are documented in
    [docs/EXPLORATION.md]. *)

type t

(** The flat incremental state key. *)
type key

val key_equal : key -> key -> bool
val key_hash : key -> int
val pp_key : Format.formatter -> key -> unit

(** Fresh hashes for a starting configuration (no observations yet;
    memory, instances, and i/o records are folded from the
    configuration itself).  With [~audit:true] the per-process MD5
    digests of the original implementation are maintained alongside,
    enabling {!repr} and {!full_key}. *)
val create : ?audit:bool -> Shm.Config.t -> t

(** [record t ~before after ev] folds the event into the stepping
    process's observation hash and updates the state key.  [before] and
    [after] are the configurations around the step ([before] supplies
    the overwritten register value, [after] the scan result vectors;
    scans do not change memory). *)
val record : t -> before:Shm.Config.t -> Shm.Config.t -> Shm.Event.t -> t

(** The incrementally maintained canonical key — O(1). *)
val key : t -> key

(** The uncompressed canonical form behind {!full_key} — exposed so
    tests can certify the incremental keys partition an enumerated
    state space exactly as the full canonical forms do.  Requires
    [create ~audit:true]. *)
val repr : t -> Shm.Config.t -> string

(** MD5 of {!repr}: the original full-digest cache key (the perf
    benchmark's reference arm).  Requires [create ~audit:true]. *)
val full_key : t -> Shm.Config.t -> Digest.t
