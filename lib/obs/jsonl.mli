(** JSONL trace export and reload: one event per line, so traces can be
    captured from [sa_run --trace-out t.jsonl], inspected offline with
    standard tools, and replayed into {!Shm.Analysis} and property
    checks.  The schema is documented in DESIGN.md §Observability. *)

(** {1 Encoding} *)

val json_of_value : Shm.Value.t -> Json.t

(** Exact inverse of {!json_of_value}. *)
val value_of_json : Json.t -> (Shm.Value.t, string) result

val json_of_event : Shm.Event.t -> Json.t
val event_of_json : Json.t -> (Shm.Event.t, string) result

(** One compact line, no trailing newline. *)
val line_of_event : Shm.Event.t -> string

val event_of_line : string -> (Shm.Event.t, string) result

(** {1 Channels and files}

    Files and streams open with a schema header line
    [{"jsonl":"sa-events","schema":N}].  Readers skip a valid header,
    reject one declaring a schema major newer than {!schema_version},
    and tolerate headerless files written before the header existed. *)

val schema_version : int

(** Write the header line (callers composing their own streams). *)
val write_header : out_channel -> unit

(** A sink writing one line per event as it happens — O(1) memory.
    Writes the header immediately. *)
val sink_to_channel : out_channel -> Sink.t

val write_channel : out_channel -> Shm.Event.t list -> unit

(** Reads to end of channel; blank lines are skipped. *)
val read_channel : in_channel -> (Shm.Event.t list, string) result

val save : string -> Shm.Event.t list -> unit
val load : string -> (Shm.Event.t list, string) result

(** Stream a trace file through a fold without materializing the event
    list — the offline counterpart of a live sink. *)
val fold_file :
  string -> init:'a -> f:('a -> Shm.Event.t -> 'a) -> ('a, string) result
