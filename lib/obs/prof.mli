(** Phase-attribution profiling of the exploration hot path.

    Attribution ({!add}) is two array stores — allocation-free — so a
    profiling run can bracket every phase of every node without
    distorting what it measures.  Callers use explicit clock reads,
    never closure-based helpers (closures allocate):

    {[
      let t0 = if profiling then Prof.now_ns () else 0 in
      (* ... work ... *)
      if profiling then Prof.add p Prof.Interp (Prof.now_ns () - t0)
    ]} *)

(** Where exploration time goes (see {!describe}).  [Vm_step] and
    [Vm_batch] attribute the bytecode engine's time: stepping (state
    key maintenance included) vs frontier batching (arena snapshots,
    stack bookkeeping). *)
type phase =
  | Interp
  | Footprint
  | Hash
  | Cache
  | Replay
  | Steal
  | Check
  | Vm_step
  | Vm_batch

val phases : phase list
val name : phase -> string
val describe : phase -> string

type t

val create : unit -> t

(** Alias of {!Trace.now_ns}. *)
val now_ns : unit -> int

(** [add t phase dns] attributes [dns] nanoseconds (and one hit) to
    [phase].  Allocation-free. *)
val add : t -> phase -> int -> unit

val ns : t -> phase -> int
val count : t -> phase -> int
val total_ns : t -> int

(** Fold per-worker profiles into a run profile. *)
val merge_into : into:t -> t -> unit

val merge : t list -> t
val is_empty : t -> bool
val to_json : t -> Json.t

(** Breakdown table: per-phase milliseconds, hits, share of total. *)
val pp : Format.formatter -> t -> unit

(** Strided time series of an exploration's shape: frontier depth,
    nodes processed, cache hits, sleep-set prunes. *)
module Series : sig
  type row = {
    ts_ns : int;
    nodes : int;
    frontier : int;
    cache_hits : int;
    sleep_hits : int;
  }

  type t

  val create : unit -> t

  val add :
    t -> ts_ns:int -> nodes:int -> frontier:int -> cache_hits:int -> sleep_hits:int -> unit

  (** Samples in timestamp order. *)
  val rows : t -> row list

  val length : t -> int
  val to_json : t -> Json.t

  (** Replay the series into counter tracks of a trace collector so the
      exported Chrome trace plots them alongside worker spans. *)
  val to_trace : t -> Trace.t -> unit

  val pp : Format.formatter -> t -> unit
end
