(** Streaming event sinks.

    A sink is a callback invoked on every execution event.
    {!Shm.Exec.run} accepts one as [?sink] and calls it once per step,
    so observers run in O(1) memory regardless of schedule length.  The
    in-memory trace of [~record:true] is just the {!recorder} sink. *)

type t = Shm.Event.t -> unit

(** Discards every event. *)
val null : t

val emit : t -> Shm.Event.t -> unit

val of_fn : (Shm.Event.t -> unit) -> t

(** Broadcast each event to every sink, in order. *)
val tee : t list -> t

(** Forward only events satisfying the predicate. *)
val filter : (Shm.Event.t -> bool) -> t -> t

(** Forward only events of one process. *)
val on_pid : int -> t -> t

(** [recorder ()] is a list-accumulating sink and a function returning
    the events seen so far, in chronological order. *)
val recorder : unit -> t * (unit -> Shm.Event.t list)

(** [counter ()] counts events. *)
val counter : unit -> t * (unit -> int)
