(** Per-propose spans: one span per (pid, instance) from its [Invoke]
    to its [Output], measured in global scheduler steps.  The latency
    of a propose is how many steps of the whole system elapsed while it
    was pending, so contention and starvation are directly visible. *)

type span = {
  pid : int;
  instance : int;
  start_step : int;
  end_step : int;  (** exclusive; latency = [end_step - start_step] *)
}

val latency : span -> int

type t

val create : unit -> t

(** The tracking sink; feed it every event of a run. *)
val sink : t -> Sink.t

(** Completed spans, in completion order. *)
val completed : t -> span list

val completed_count : t -> int

(** Invocations with no output yet. *)
val open_count : t -> int

(** Latency distribution over completed spans, in steps. *)
val histogram : t -> Metrics.Histogram.t

val p50 : t -> float
val p90 : t -> float
val p99 : t -> float
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
