(* Machine-readable bench output: BENCH_*.json files.

   Every experiment that prints a human table can also emit a JSON
   document next to it, so results diff across PRs and feed dashboards.
   The format is one object per file:

     { "experiment": "<id>",
       "schema": 1,
       "rows": [ { ...per-measurement fields... }, ... ] }

   Row fields are experiment-specific; rows about a parameter point
   carry "n"/"m"/"k", bound comparisons carry "bound"/"measured"/"ok",
   and latency distributions carry the histogram object of
   [Metrics.Histogram.to_json] (count/min/max/mean/p50/p90/p99). *)

let schema_version = 1

let document ~experiment rows =
  Json.Obj
    [
      ("experiment", Json.String experiment);
      ("schema", Json.Int schema_version);
      ("rows", Json.Arr rows);
    ]

let write_file path json =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_pretty_string json);
      output_char oc '\n')

let write ~experiment ~path rows = write_file path (document ~experiment rows)

(* Reload a BENCH_*.json document, refusing schema majors newer than
   this reader — a future writer bumping the major means "fields moved;
   do not guess". *)

type doc = { experiment : string; schema : int; rows : Json.t list }

let of_json j =
  let ( let* ) = Result.bind in
  let* experiment =
    match Json.member "experiment" j with
    | Some (Json.String s) -> Ok s
    | _ -> Error "missing string \"experiment\""
  in
  let* schema =
    match Json.member "schema" j with
    | Some (Json.Int v) -> Ok v
    | _ -> Error "missing integer \"schema\""
  in
  let* () =
    if schema > schema_version then
      Error
        (Fmt.str "bench schema %d is newer than supported major %d" schema
           schema_version)
    else Ok ()
  in
  let* rows =
    match Json.member "rows" j with
    | Some (Json.Arr rows) -> Ok rows
    | _ -> Error "missing \"rows\" array"
  in
  Ok { experiment; schema; rows }

let read path =
  try
    let ( let* ) = Result.bind in
    let* j = Json.of_string (In_channel.with_open_text path In_channel.input_all) in
    of_json j
  with Sys_error e -> Error e

(* Span percentiles as row fields, for the common latency columns. *)
let span_fields span =
  [
    ("spans", Json.Int (Span.completed_count span));
    ("span_p50", Json.Float (Span.p50 span));
    ("span_p99", Json.Float (Span.p99 span));
  ]
