(** Append-only bench history ([BENCH_history.jsonl]) — the repo's perf
    trajectory, one JSONL entry per [bench table] run — plus the diff
    and floor-checking logic behind [bench diff] / [bench check].

    Entries come in two kinds: ["run"] (measurement rows, the same rows
    written to [BENCH_<id>.json]) and ["floors"] (committed baseline:
    selector fields plus [metric]/[min], enforced by [bench check]).
    Floors gate machine-independent metrics — same-binary speedup
    ratios — so one committed baseline holds across hardware.

    The module is subprocess- and unix-free: callers supply timestamps
    and git revisions. *)

val schema_version : int

type entry = {
  schema : int;
  ts : float;  (** unix seconds, [0.] when unknown *)
  rev : string;
  experiment : string;
  kind : string;  (** ["run"] or ["floors"] *)
  smoke : bool;
  rows : Json.t list;
}

val make :
  ?ts:float ->
  ?rev:string ->
  ?kind:string ->
  ?smoke:bool ->
  experiment:string ->
  Json.t list ->
  entry

val json_of_entry : entry -> Json.t

(** Rejects entries whose schema major exceeds {!schema_version}. *)
val entry_of_json : Json.t -> (entry, string) result

(** Append one line, creating the file if needed. *)
val append : path:string -> entry -> unit

(** All entries, oldest first; fails on unparsable lines or a
    too-new schema. *)
val load : string -> (entry list, string) result

(** {1 Diff} *)

(** A row's identity: its string-valued fields, in field order. *)
val row_key : Json.t -> string

(** A row's numeric fields. *)
val metrics_of_row : Json.t -> (string * float) list

type delta = { d_key : string; d_metric : string; base : float; cur : float }

val delta_pct : delta -> float

(** Metrics that changed between rows present in both entries. *)
val diff : entry -> entry -> delta list

val pp_delta : Format.formatter -> delta -> unit

(** {1 Floors} *)

type floor = {
  selector : (string * string) list;  (** string fields a row must match *)
  metric : string;
  min : float;
}

val floor_row : floor -> Json.t
val floors_of_entry : entry -> floor list

(** Most recent ["floors"] entry for [experiment]. *)
val latest_floors : entry list -> experiment:string -> entry option

type verdict = {
  v_floor : floor;
  actual : float option;  (** [None]: no matching row / metric absent *)
}

val violated : verdict -> bool

(** One verdict per floor; a floor matching no row is a violation. *)
val check_floors : floors:floor list -> Json.t list -> verdict list

val pp_verdict : Format.formatter -> verdict -> unit
val pp_entry : Format.formatter -> entry -> unit
