(* Metrics registry: counters, gauges, and log-bucketed histograms.

   Histograms bucket observations by octave (powers of two) and
   interpolate linearly inside a bucket, so quantile estimates cost
   O(1) memory per histogram and are exact to within one octave —
   plenty for step-latency distributions that span six orders of
   magnitude across (n, m, k). *)

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }

  (* [add] is the hot path: event sinks bump counters once per
     simulator step, so it must not allocate.  [incr ~by] boxes its
     optional argument at every call site that supplies it — keep it
     for convenience, route per-event code through [add]. *)
  let add t by = t.n <- t.n + by
  let incr ?(by = 1) t = add t by
  let value t = t.n
end

module Gauge = struct
  type t = { mutable v : float }

  let create () = { v = 0. }
  let set t v = t.v <- v
  let value t = t.v
end

module Histogram = struct
  (* bucket 0 holds v <= 0; bucket i >= 1 holds v in [2^(i-1), 2^i). *)
  let buckets = 63

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : int;
    mutable min : int;
    mutable max : int;
  }

  let create () =
    { counts = Array.make buckets 0; count = 0; sum = 0; min = max_int; max = min_int }

  (* module-level so [bucket_of] — called on every observation — is a
     plain tail-recursive call with no per-call closure *)
  let rec bits acc n = if n = 0 then acc else bits (acc + 1) (n lsr 1)

  let bucket_of v = if v <= 0 then 0 else min (bits 0 v) (buckets - 1)

  (* allocation-free: integer field mutations only *)
  let observe t v =
    let b = bucket_of v in
    t.counts.(b) <- t.counts.(b) + 1;
    t.count <- t.count + 1;
    t.sum <- t.sum + v;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v

  let count t = t.count
  let sum t = t.sum
  let min_value t = if t.count = 0 then 0 else t.min
  let max_value t = if t.count = 0 then 0 else t.max
  let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

  (* Quantile by cumulative bucket counts, linear inside the bucket,
     clamped to the observed [min, max]. *)
  let quantile t q =
    if t.count = 0 then 0.
    else begin
      let q = Float.max 0. (Float.min 1. q) in
      let rank = q *. float_of_int (t.count - 1) in
      let target = int_of_float (Float.round rank) in
      let rec find b cum =
        if b >= buckets then float_of_int t.max
        else
          let cum' = cum + t.counts.(b) in
          if cum' > target then begin
            let lo = if b = 0 then 0. else float_of_int (1 lsl (b - 1)) in
            let hi = if b = 0 then 1. else float_of_int (1 lsl b) in
            let within =
              if t.counts.(b) <= 1 then 0.5
              else float_of_int (target - cum) /. float_of_int (t.counts.(b) - 1)
            in
            lo +. (within *. (hi -. lo))
          end
          else find (b + 1) cum'
      in
      let est = find 0 0 in
      Float.max (float_of_int t.min) (Float.min (float_of_int t.max) est)
    end

  let p50 t = quantile t 0.5
  let p90 t = quantile t 0.9
  let p99 t = quantile t 0.99

  let to_json t =
    Json.Obj
      [
        ("count", Json.Int t.count);
        ("sum", Json.Int t.sum);
        ("min", Json.Int (min_value t));
        ("max", Json.Int (max_value t));
        ("mean", Json.Float (mean t));
        ("p50", Json.Float (p50 t));
        ("p90", Json.Float (p90 t));
        ("p99", Json.Float (p99 t));
      ]

  let pp ppf t =
    Fmt.pf ppf "count=%d min=%d p50=%.0f p90=%.0f p99=%.0f max=%d mean=%.1f" t.count
      (min_value t) (p50 t) (p90 t) (p99 t) (max_value t) (mean t)
end

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type t = { tbl : (string, metric) Hashtbl.t; mutable order : string list (* reversed *) }

let create () = { tbl = Hashtbl.create 16; order = [] }

(* Lookups are written out per kind rather than through a generic
   [find_or_add ~make ~cast]: sinks resolve metrics by name inside
   per-event handlers, and the closure pair the generic version
   allocates on every call shows up in allocation profiles.  The hit
   path below allocates nothing ([Hashtbl.find] + exception, avoiding
   [find_opt]'s [Some]). *)

let register t name m =
  Hashtbl.add t.tbl name m;
  t.order <- name :: t.order

let counter t name =
  match Hashtbl.find t.tbl name with
  | M_counter c -> c
  | M_gauge _ | M_histogram _ ->
    invalid_arg (Fmt.str "Metrics.counter: %S is not a counter" name)
  | exception Not_found ->
    let c = Counter.create () in
    register t name (M_counter c);
    c

let gauge t name =
  match Hashtbl.find t.tbl name with
  | M_gauge g -> g
  | M_counter _ | M_histogram _ ->
    invalid_arg (Fmt.str "Metrics.gauge: %S is not a gauge" name)
  | exception Not_found ->
    let g = Gauge.create () in
    register t name (M_gauge g);
    g

let histogram t name =
  match Hashtbl.find t.tbl name with
  | M_histogram h -> h
  | M_counter _ | M_gauge _ ->
    invalid_arg (Fmt.str "Metrics.histogram: %S is not a histogram" name)
  | exception Not_found ->
    let h = Histogram.create () in
    register t name (M_histogram h);
    h

let names t = List.rev t.order

let to_json t =
  Json.Obj
    (names t
    |> List.map (fun name ->
           let v =
             match Hashtbl.find t.tbl name with
             | M_counter c -> Json.Int (Counter.value c)
             | M_gauge g -> Json.Float (Gauge.value g)
             | M_histogram h -> Histogram.to_json h
           in
           (name, v)))

let pp ppf t =
  let field ppf name =
    match Hashtbl.find t.tbl name with
    | M_counter c -> Fmt.pf ppf "%s: %d" name (Counter.value c)
    | M_gauge g -> Fmt.pf ppf "%s: %g" name (Gauge.value g)
    | M_histogram h -> Fmt.pf ppf "%s: %a" name Histogram.pp h
  in
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut field) (names t)
