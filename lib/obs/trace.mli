(** Hierarchical, causally-linked spans with cross-domain context
    propagation.

    A {e span} is a named interval of monotonic time.  Opening a span
    returns a {!ctx} — two plain integers — which can cross domains
    (through a work-stealing deque, a [Domain.spawn] closure) and be
    closed over there; the collector records both the opening and the
    closing domain.  Span ids come from one atomic counter, so they are
    globally unique and monotone in creation order; {!spans} sorts by
    [(start_ns, id)], which guarantees a parent precedes its children
    in the merged output even across domains.

    The collector can be {e attached} as the ambient collector for the
    process.  Instrumented hot paths guard every emission with
    {!enabled} — a single atomic load — so with nothing attached the
    instrumentation allocates zero words per event (pinned by a
    Gc-measured test). *)

(** Current monotonic time, in nanoseconds (arbitrary epoch). *)
val now_ns : unit -> int

(** A handle on a live or past span: safe to copy across domains. *)
type ctx = { trace_id : int; span_id : int }

type span = {
  id : int;
  parent : int;  (** 0 = root (no parent) *)
  name : string;
  cat : string;
  dom : int;  (** domain that opened the span *)
  close_dom : int;  (** domain that closed it; [<> dom] after a steal *)
  start_ns : int;
  dur_ns : int;
  args : (string * Json.t) list;
}

type flow_dir = Flow_none | Flow_out | Flow_in

(** A point event, optionally part of a cross-domain flow (rendered as
    an arrow between domain timelines in Perfetto). *)
type instant = {
  i_name : string;
  i_cat : string;
  i_dom : int;
  i_ts_ns : int;
  i_flow : int;  (** 0 = not part of a flow *)
  i_dir : flow_dir;
  i_args : (string * Json.t) list;
}

(** One point of a named counter track (e.g. registers covered). *)
type sample = { track : string; s_dom : int; s_ts_ns : int; value : float }

type t

val create : ?trace_id:int -> unit -> t
val trace_id : t -> int

(** Monotonic timestamp taken at {!create}; Chrome export offsets
    against it. *)
val epoch_ns : t -> int

(** A parentless context of this trace, for seeding propagation. *)
val root : t -> ctx

(** {1 The ambient collector}

    Instrumentation sites never take a [t] — they consult the ambient
    collector so that instrumented libraries stay zero-cost when
    nothing is attached. *)

val attach : t -> unit
val detach : unit -> unit

(** One atomic load, no allocation: the guard for every
    instrumentation site. *)
val enabled : unit -> bool

val attached : unit -> t option

(** [with_attached t f] attaches [t] around [f], detaching on any
    exit. *)
val with_attached : t -> (unit -> 'a) -> 'a

(** {1 Recording} *)

(** Open a span on the calling domain.  The returned {!ctx} may be
    passed to — and closed on — any domain. *)
val begin_span :
  t -> ?parent:ctx -> ?cat:string -> ?args:(string * Json.t) list -> string -> ctx

(** Close a span (idempotent: closing twice, or closing a ctx this
    collector never opened, is a no-op).  [args] are appended to the
    opening args. *)
val end_span : t -> ?args:(string * Json.t) list -> ctx -> unit

val with_span :
  t ->
  ?parent:ctx ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  (ctx -> 'a) ->
  'a

(** Allocate a fresh flow id linking an [`Out] instant to an [`In]
    instant on another domain. *)
val fresh_flow : t -> int

(** [dom] overrides the attributed domain (e.g. a thief recording the
    victim side of a steal handoff on the victim's timeline). *)
val instant :
  t ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  ?flow:int * [ `Out | `In ] ->
  ?dom:int ->
  string ->
  unit

(** Append one sample to counter track [track] on the calling domain's
    timeline.  [ts_ns]/[dom] override the stamp — how
    {!Prof.Series.to_trace} replays a series collected elsewhere. *)
val counter : t -> ?ts_ns:int -> ?dom:int -> track:string -> float -> unit

(** {1 Reading} *)

(** Completed spans sorted by [(start_ns, id)] — parents before
    children. *)
val spans : t -> span list

val instants : t -> instant list
val samples : t -> sample list
val span_count : t -> int

(** Spans opened but not yet closed. *)
val open_count : t -> int

val find_span : t -> string -> span option

(** {1 JSONL export}

    Line 1 is a header [{"jsonl":"sa-trace","schema":N,...}]; the
    reader rejects files whose schema major exceeds
    {!schema_version}. *)

val schema_version : int

val to_jsonl_channel : out_channel -> t -> unit
val save_jsonl : string -> t -> unit

type reloaded = {
  r_trace_id : int;
  r_spans : span list;
  r_instants : instant list;
  r_samples : sample list;
}

val load_jsonl : string -> (reloaded, string) result

val pp_span : Format.formatter -> span -> unit
val pp : Format.formatter -> t -> unit
