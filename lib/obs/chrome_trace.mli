(** Chrome trace-event JSON export of an {!Trace} collector.

    The output loads in Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing]: each OCaml domain becomes a named thread row,
    spans become complete ("X") slices, cross-domain flows become
    arrows between rows, and counter samples (the register-coverage
    timeline) become counter ("C") tracks.  Timestamps are
    microseconds relative to the collector's epoch. *)

(** The [traceEvents] array. *)
val events : ?process_name:string -> Trace.t -> Json.t list

(** Full trace-event document (object form, with metadata). *)
val to_json : ?process_name:string -> Trace.t -> Json.t

(** Write the document, pretty-printed, to [path]. *)
val save : ?process_name:string -> string -> Trace.t -> unit
