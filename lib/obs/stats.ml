(* Built-in execution statistics, as a streaming sink.

   Subsumes and extends [Shm.Analysis]: everything [Analysis.of_trace]
   derives from a recorded trace is accumulated here live via
   [Analysis.feed] — O(n + registers) memory however long the run —
   plus named aggregate counters in a [Metrics] registry (events by
   kind, scheduler decisions) and per-register scan coverage for the
   heat/contention view. *)

type t = {
  n : int;
  registers : int;
  acc : Shm.Analysis.acc;  (* steps/process, reads+scans and writes/register *)
  scans_per_register : int array;  (* scan coverage alone, for the heat split *)
  registry : Metrics.t;
  decisions : Metrics.Counter.t;  (* scheduler decisions = events seen *)
  invokes : Metrics.Counter.t;
  reads : Metrics.Counter.t;
  writes : Metrics.Counter.t;
  scans : Metrics.Counter.t;
  outputs : Metrics.Counter.t;
}

let create ?registry ~n ~registers () =
  let registry = match registry with Some r -> r | None -> Metrics.create () in
  let decisions = Metrics.counter registry "sched.decisions" in
  let invokes = Metrics.counter registry "events.invoke" in
  let reads = Metrics.counter registry "events.read" in
  let writes = Metrics.counter registry "events.write" in
  let scans = Metrics.counter registry "events.scan" in
  let outputs = Metrics.counter registry "events.output" in
  {
    n;
    registers;
    acc = Shm.Analysis.create ~n ~registers;
    scans_per_register = Array.make registers 0;
    registry;
    decisions;
    invokes;
    reads;
    writes;
    scans;
    outputs;
  }

let sink t : Sink.t =
 fun ev ->
  Shm.Analysis.feed t.acc ev;
  Metrics.Counter.incr t.decisions;
  match ev with
  | Shm.Event.Invoke _ -> Metrics.Counter.incr t.invokes
  | Shm.Event.Did_read _ -> Metrics.Counter.incr t.reads
  | Shm.Event.Did_write _ -> Metrics.Counter.incr t.writes
  | Shm.Event.Output _ -> Metrics.Counter.incr t.outputs
  | Shm.Event.Did_scan { off; len; _ } ->
    Metrics.Counter.incr t.scans;
    for r = max 0 off to min (off + len) t.registers - 1 do
      t.scans_per_register.(r) <- t.scans_per_register.(r) + 1
    done

let to_analysis t = Shm.Analysis.snapshot t.acc

let registry t = t.registry

let total_steps t = Metrics.Counter.value t.decisions

let scans_per_register t = Array.copy t.scans_per_register

(* Register heat: reads (incl. scan coverage) + writes per register. *)
let register_heat t =
  let a = to_analysis t in
  Array.init t.registers (fun r ->
      a.Shm.Analysis.reads_per_register.(r) + a.Shm.Analysis.writes_per_register.(r))

let write_skew t = Shm.Analysis.write_skew (to_analysis t)

let to_json t =
  let a = to_analysis t in
  let ints arr = Json.Arr (Array.to_list arr |> List.map (fun i -> Json.Int i)) in
  Json.Obj
    [
      ("n", Json.Int t.n);
      ("registers", Json.Int t.registers);
      ("total_steps", Json.Int a.Shm.Analysis.total_steps);
      ("steps_per_process", ints a.Shm.Analysis.steps_per_process);
      ("writes_per_register", ints a.Shm.Analysis.writes_per_register);
      ("reads_per_register", ints a.Shm.Analysis.reads_per_register);
      ("scans_per_register", ints t.scans_per_register);
      ("register_heat", ints (register_heat t));
      ("write_skew", Json.Float (write_skew t));
      ("metrics", Metrics.to_json t.registry);
    ]

let pp ppf t =
  let a = to_analysis t in
  Fmt.pf ppf "@[<v>%a@,write skew: %.2f@,%a@]" Shm.Analysis.pp a (write_skew t)
    Metrics.pp t.registry
