(* Minimal JSON: exactly what the observability layer needs — compact
   one-line encoding for JSONL traces, pretty printing for BENCH_*.json
   files, and a parser for reloading both.  No external dependency; the
   opam file stays as it is. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Floats must stay valid JSON: no nan/infinity, and keep a marker
   ('.', 'e') so they reload as floats, not ints. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec add_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | Arr vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add_compact buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add_compact buf v;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_repr f)
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    add_escaped buf s;
    Fmt.string ppf (Buffer.contents buf)
  | Arr [] -> Fmt.string ppf "[]"
  | Arr vs ->
    Fmt.pf ppf "@[<v 2>[@,%a@;<0 -2>]@]" (Fmt.list ~sep:(Fmt.any ",@,") pp) vs
  | Obj [] -> Fmt.string ppf "{}"
  | Obj kvs ->
    let field ppf (k, v) =
      let buf = Buffer.create (String.length k + 2) in
      add_escaped buf k;
      Fmt.pf ppf "@[<hov 2>%s: %a@]" (Buffer.contents buf) pp v
    in
    Fmt.pf ppf "@[<v 2>{@,%a@;<0 -2>}@]" (Fmt.list ~sep:(Fmt.any ",@,") field) kvs

let to_pretty_string v = Fmt.str "%a" pp v

(* ---- parsing ---- *)

exception Parse_error of string

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Fmt.str "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Fmt.str "bad literal (expected %s)" lit)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let cp =
              (hex_digit s.[!pos + 1] lsl 12)
              lor (hex_digit s.[!pos + 2] lsl 8)
              lor (hex_digit s.[!pos + 3] lsl 4)
              lor hex_digit s.[!pos + 4]
            in
            pos := !pos + 5;
            add_utf8 buf cp
          | c -> fail (Fmt.str "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Fmt.str "bad number %S" lit))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_lit ())
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let field () =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields (kv :: acc)
          | Some '}' ->
            incr pos;
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Fmt.str "unexpected character %C" c)
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Fmt.str "trailing input at offset %d" !pos) else Ok v
  with Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
