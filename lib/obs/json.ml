(* Minimal JSON: exactly what the observability layer needs — compact
   one-line encoding for JSONL traces, pretty printing for BENCH_*.json
   files, and a parser for reloading both.  No external dependency; the
   opam file stays as it is. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- printing ---- *)

(* OCaml strings are arbitrary bytes, but a JSON document must be
   valid UTF-8 — emitting non-ASCII bytes raw produces output that
   strict parsers (and Perfetto) reject.  The encoder validates UTF-8
   as it walks: well-formed scalar sequences pass through, every byte
   that is not part of one (stray continuation bytes, overlong
   encodings, encoded surrogates, truncated sequences) is escaped as
   a *surrogate escape* [\udcXX] — the lone-low-surrogate convention
   (PEP 383) — which the parser below maps back to the raw byte.
   Encode/decode is therefore the identity on arbitrary byte strings;
   a QCheck property in test_obs.ml pins it. *)
let add_escaped buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let byte j = Char.code (String.unsafe_get s j) in
  let cont j = j < n && byte j land 0xC0 = 0x80 in
  let i = ref 0 in
  let escape_byte () =
    Buffer.add_string buf (Printf.sprintf "\\udc%02x" (byte !i));
    incr i
  in
  while !i < n do
    match String.unsafe_get s !i with
    | '"' -> Buffer.add_string buf "\\\""; incr i
    | '\\' -> Buffer.add_string buf "\\\\"; incr i
    | '\n' -> Buffer.add_string buf "\\n"; incr i
    | '\r' -> Buffer.add_string buf "\\r"; incr i
    | '\t' -> Buffer.add_string buf "\\t"; incr i
    | c when Char.code c < 0x20 ->
      Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c));
      incr i
    | c when Char.code c < 0x80 -> Buffer.add_char buf c; incr i
    | _ ->
      let b0 = byte !i in
      if b0 land 0xE0 = 0xC0 && cont (!i + 1) then begin
        (* 2-byte sequence; reject overlong (cp < 0x80) *)
        let cp = ((b0 land 0x1F) lsl 6) lor (byte (!i + 1) land 0x3F) in
        if cp >= 0x80 then begin
          Buffer.add_substring buf s !i 2;
          i := !i + 2
        end
        else escape_byte ()
      end
      else if b0 land 0xF0 = 0xE0 && cont (!i + 1) && cont (!i + 2) then begin
        (* 3-byte; reject overlong and encoded surrogates *)
        let cp =
          ((b0 land 0x0F) lsl 12)
          lor ((byte (!i + 1) land 0x3F) lsl 6)
          lor (byte (!i + 2) land 0x3F)
        in
        if cp >= 0x800 && not (cp >= 0xD800 && cp <= 0xDFFF) then begin
          Buffer.add_substring buf s !i 3;
          i := !i + 3
        end
        else escape_byte ()
      end
      else if b0 land 0xF8 = 0xF0 && cont (!i + 1) && cont (!i + 2) && cont (!i + 3)
      then begin
        (* 4-byte; reject overlong and beyond U+10FFFF *)
        let cp =
          ((b0 land 0x07) lsl 18)
          lor ((byte (!i + 1) land 0x3F) lsl 12)
          lor ((byte (!i + 2) land 0x3F) lsl 6)
          lor (byte (!i + 3) land 0x3F)
        in
        if cp >= 0x10000 && cp <= 0x10FFFF then begin
          Buffer.add_substring buf s !i 4;
          i := !i + 4
        end
        else escape_byte ()
      end
      else escape_byte ()
  done;
  Buffer.add_char buf '"'

(* Floats must stay valid JSON: no nan/infinity, and keep a marker
   ('.', 'e') so they reload as floats, not ints. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec add_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> add_escaped buf s
  | Arr vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        add_compact buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add_compact buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add_compact buf v;
  Buffer.contents buf

let rec pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Bool b -> Fmt.string ppf (if b then "true" else "false")
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_repr f)
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    add_escaped buf s;
    Fmt.string ppf (Buffer.contents buf)
  | Arr [] -> Fmt.string ppf "[]"
  | Arr vs ->
    Fmt.pf ppf "@[<v 2>[@,%a@;<0 -2>]@]" (Fmt.list ~sep:(Fmt.any ",@,") pp) vs
  | Obj [] -> Fmt.string ppf "{}"
  | Obj kvs ->
    let field ppf (k, v) =
      let buf = Buffer.create (String.length k + 2) in
      add_escaped buf k;
      Fmt.pf ppf "@[<hov 2>%s: %a@]" (Buffer.contents buf) pp v
    in
    Fmt.pf ppf "@[<v 2>{@,%a@;<0 -2>}@]" (Fmt.list ~sep:(Fmt.any ",@,") field) kvs

let to_pretty_string v = Fmt.str "%a" pp v

(* ---- parsing ---- *)

exception Parse_error of string

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Fmt.str "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Fmt.str "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Fmt.str "bad literal (expected %s)" lit)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let cp =
              (hex_digit s.[!pos + 1] lsl 12)
              lor (hex_digit s.[!pos + 2] lsl 8)
              lor (hex_digit s.[!pos + 3] lsl 4)
              lor hex_digit s.[!pos + 4]
            in
            pos := !pos + 5;
            (* Surrogate handling, mirroring add_escaped: a high
               surrogate pairs with a following \uDCxx-range low
               surrogate into one supplementary-plane scalar; a lone
               \udcXX in 0xDC80–0xDCFF is a surrogate-escaped raw
               byte; any other lone surrogate decodes to U+FFFD
               rather than producing ill-formed UTF-8. *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              let lo =
                if !pos + 5 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then
                  let l =
                    (hex_digit s.[!pos + 2] lsl 12)
                    lor (hex_digit s.[!pos + 3] lsl 8)
                    lor (hex_digit s.[!pos + 4] lsl 4)
                    lor hex_digit s.[!pos + 5]
                  in
                  if l >= 0xDC00 && l <= 0xDFFF then Some l else None
                else None
              in
              match lo with
              | Some l ->
                pos := !pos + 6;
                add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (l - 0xDC00))
              | None -> add_utf8 buf 0xFFFD
            end
            else if cp >= 0xDC80 && cp <= 0xDCFF then
              Buffer.add_char buf (Char.chr (cp land 0xFF))
            else if cp >= 0xDC00 && cp <= 0xDFFF then add_utf8 buf 0xFFFD
            else add_utf8 buf cp
          | c -> fail (Fmt.str "bad escape \\%c" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt lit with
      | Some f -> Float f
      | None -> fail (Fmt.str "bad number %S" lit))
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (string_lit ())
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else
        let rec elems acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elems (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elems [])
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else
        let field () =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields (kv :: acc)
          | Some '}' ->
            incr pos;
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Fmt.str "unexpected character %C" c)
  in
  try
    let v = value () in
    skip_ws ();
    if !pos <> n then Error (Fmt.str "trailing input at offset %d" !pos) else Ok v
  with Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
