(* Append-only bench history: BENCH_history.jsonl.

   Every `bench table <id>` run appends one line — an *entry*: schema
   version, wall-clock timestamp, git revision, experiment id, smoke
   flag, and the full row set that also went to BENCH_<id>.json.  The
   file is the perf trajectory of the repo: `bench diff` compares two
   entries, `bench check` compares a fresh run against *floor* entries
   committed in the repository's own BENCH_history.jsonl and exits
   non-zero on regression.

   Two entry kinds share the line format:
   - kind "run":    rows are measurement rows (Bench_out schema);
   - kind "floors": rows are floor specs — string-valued selector
     fields plus {"metric": <name>, "min": <float>} — the committed
     baseline `bench check` enforces.  Floors gate machine-independent
     metrics (same-binary speedup ratios), so the committed baseline
     holds across hardware.

   This module stays subprocess- and unix-free: callers supply the
   timestamp and git revision. *)

let schema_version = 1

type entry = {
  schema : int;
  ts : float;  (* unix seconds, 0. when unknown *)
  rev : string;
  experiment : string;
  kind : string;  (* "run" | "floors" *)
  smoke : bool;
  rows : Json.t list;
}

let make ?(ts = 0.) ?(rev = "unknown") ?(kind = "run") ?(smoke = false) ~experiment
    rows =
  { schema = schema_version; ts; rev; experiment; kind; smoke; rows }

let json_of_entry e =
  Json.Obj
    [
      ("schema", Json.Int e.schema);
      ("ts", Json.Float e.ts);
      ("rev", Json.String e.rev);
      ("experiment", Json.String e.experiment);
      ("kind", Json.String e.kind);
      ("smoke", Json.Bool e.smoke);
      ("rows", Json.Arr e.rows);
    ]

let entry_of_json j =
  let ( let* ) = Result.bind in
  let* schema =
    match Json.member "schema" j with
    | Some (Json.Int v) -> Ok v
    | _ -> Error "entry missing integer \"schema\""
  in
  (* the major-version gate of the satellite: refuse to misread a
     future format rather than silently dropping fields *)
  let* () =
    if schema > schema_version then
      Error
        (Fmt.str "history schema %d is newer than supported major %d" schema
           schema_version)
    else Ok ()
  in
  let str k d = match Json.member k j with Some (Json.String s) -> s | _ -> d in
  let ts =
    match Json.member "ts" j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.
  in
  let smoke = match Json.member "smoke" j with Some (Json.Bool b) -> b | _ -> false in
  let* rows =
    match Json.member "rows" j with
    | Some (Json.Arr rows) -> Ok rows
    | _ -> Error "entry missing \"rows\" array"
  in
  Ok
    {
      schema;
      ts;
      rev = str "rev" "unknown";
      experiment = str "experiment" "";
      kind = str "kind" "run";
      smoke;
      rows;
    }

let append ~path e =
  let oc = Out_channel.open_gen [ Open_append; Open_creat; Open_text ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> Out_channel.close oc)
    (fun () ->
      output_string oc (Json.to_string (json_of_entry e));
      output_char oc '\n')

let load path =
  let ( let* ) = Result.bind in
  try
    In_channel.with_open_text path (fun ic ->
        let rec go lineno acc =
          match In_channel.input_line ic with
          | None -> Ok (List.rev acc)
          | Some "" -> go (lineno + 1) acc
          | Some line ->
            let parsed =
              let* j = Json.of_string line in
              entry_of_json j
            in
            (match parsed with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error e -> Error (Fmt.str "%s:%d: %s" path lineno e))
        in
        go 1 [])
  with Sys_error e -> Error e

(* ---- row keys and metrics (for diff) ---- *)

(* A row's identity is its string-valued fields ("bench", "arm",
   "engine", ...), in field order; its metrics are the numeric
   fields. *)
let row_key row =
  match row with
  | Json.Obj fields ->
    fields
    |> List.filter_map (fun (k, v) ->
           match v with
           | Json.String s when k <> "metric" -> Some (Fmt.str "%s=%s" k s)
           | _ -> None)
    |> String.concat " "
  | _ -> ""

let metrics_of_row row =
  match row with
  | Json.Obj fields ->
    List.filter_map
      (fun (k, v) ->
        match v with
        | Json.Float f -> Some (k, f)
        | Json.Int i -> Some (k, float_of_int i)
        | _ -> None)
      fields
  | _ -> []

type delta = { d_key : string; d_metric : string; base : float; cur : float }

let delta_pct d =
  if d.base = 0. then if d.cur = 0. then 0. else Float.infinity
  else 100. *. (d.cur -. d.base) /. Float.abs d.base

(* Rows matched by key, metrics by name; rows or metrics present on
   only one side are skipped (diff reports drift, not schema change). *)
let diff base cur =
  let index e =
    List.filter_map
      (fun row ->
        match row_key row with "" -> None | key -> Some (key, metrics_of_row row))
      e.rows
  in
  let base_rows = index base in
  index cur
  |> List.concat_map (fun (key, cur_metrics) ->
         match List.assoc_opt key base_rows with
         | None -> []
         | Some base_metrics ->
           cur_metrics
           |> List.filter_map (fun (metric, cur_v) ->
                  match List.assoc_opt metric base_metrics with
                  | Some base_v when base_v <> cur_v ->
                    Some { d_key = key; d_metric = metric; base = base_v; cur = cur_v }
                  | _ -> None))

let pp_delta ppf d =
  Fmt.pf ppf "%-46s %-18s %14g -> %-14g %+.1f%%" d.d_key d.d_metric d.base d.cur
    (delta_pct d)

(* ---- floors (for check) ---- *)

type floor = { selector : (string * string) list; metric : string; min : float }

let floor_row f =
  Json.Obj
    (List.map (fun (k, v) -> (k, Json.String v)) f.selector
    @ [ ("metric", Json.String f.metric); ("min", Json.Float f.min) ])

let floor_of_row row =
  match row with
  | Json.Obj fields ->
    let selector =
      List.filter_map
        (fun (k, v) ->
          match v with Json.String s when k <> "metric" -> Some (k, s) | _ -> None)
        fields
    in
    let metric =
      match Json.member "metric" row with Some (Json.String s) -> Some s | _ -> None
    in
    let min =
      match Json.member "min" row with
      | Some (Json.Float f) -> Some f
      | Some (Json.Int i) -> Some (float_of_int i)
      | _ -> None
    in
    (match (metric, min) with
    | Some metric, Some min -> Some { selector; metric; min }
    | _ -> None)
  | _ -> None

let floors_of_entry e = List.filter_map floor_of_row e.rows

(* Latest floors entry for [experiment], if any. *)
let latest_floors entries ~experiment =
  List.fold_left
    (fun acc e -> if e.kind = "floors" && e.experiment = experiment then Some e else acc)
    None entries

let row_matches selector row =
  List.for_all
    (fun (k, v) ->
      match Json.member k row with Some (Json.String s) -> s = v | _ -> false)
    selector

type verdict = {
  v_floor : floor;
  actual : float option;  (* None: no row matched or metric absent *)
}

let violated v = match v.actual with None -> true | Some a -> a < v.v_floor.min

(* Every floor yields a verdict; a floor whose selector matches no
   current row is a violation (the gated bench disappeared). *)
let check_floors ~floors rows =
  List.map
    (fun f ->
      let actual =
        List.find_opt (row_matches f.selector) rows
        |> Option.map (fun row -> List.assoc_opt f.metric (metrics_of_row row))
        |> Option.join
      in
      { v_floor = f; actual })
    floors

let pp_selector ppf selector =
  Fmt.pf ppf "%a"
    Fmt.(list ~sep:(any " ") (fun ppf (k, v) -> Fmt.pf ppf "%s=%s" k v))
    selector

let pp_verdict ppf v =
  let f = v.v_floor in
  match v.actual with
  | None -> Fmt.pf ppf "FAIL %a: no row carries metric %S" pp_selector f.selector f.metric
  | Some a ->
    Fmt.pf ppf "%s %a: %s = %g (floor %g)"
      (if a < f.min then "FAIL" else "ok  ")
      pp_selector f.selector f.metric a f.min

let pp_entry ppf e =
  Fmt.pf ppf "%s %s%s rev %s (%d rows%s)" e.kind e.experiment
    (if e.smoke then " [smoke]" else "")
    e.rev (List.length e.rows)
    (if e.ts = 0. then "" else Fmt.str ", ts %.0f" e.ts)
