(** Machine-readable bench output: [BENCH_*.json] files, one document
    per experiment — [{ "experiment"; "schema"; "rows": [...] }] — so
    results diff across PRs.  The format is documented in DESIGN.md
    §Observability. *)

val schema_version : int

(** The document envelope. *)
val document : experiment:string -> Json.t list -> Json.t

(** Pretty-print a JSON document to [path] (trailing newline). *)
val write_file : string -> Json.t -> unit

(** [write ~experiment ~path rows] writes the standard envelope. *)
val write : experiment:string -> path:string -> Json.t list -> unit

(** {1 Reading} *)

type doc = { experiment : string; schema : int; rows : Json.t list }

(** Decode a document, rejecting schema majors newer than
    {!schema_version}. *)
val of_json : Json.t -> (doc, string) result

(** Load and decode a [BENCH_*.json] file. *)
val read : string -> (doc, string) result

(** Common latency columns of a span tracker:
    [spans]/[span_p50]/[span_p99]. *)
val span_fields : Span.t -> (string * Json.t) list
