(* Causally-linked spans with cross-domain context propagation.

   A span is a named interval of wall-clock (monotonic) time attributed
   to the domain that opened it; spans nest through an explicit parent
   context, and a context is two plain integers — so it can be handed
   to another domain (through a work-stealing deque, a Domain.spawn
   closure, a queue) and the span closed over there.  One collector
   gathers everything under a mutex; ids come from a single atomic
   counter, so they are unique across domains and monotone in
   allocation order.

   The collector is *attachable*: instrumented hot paths (the DPOR
   workers, the native operations, the execution runner) guard every
   emission with [enabled ()], which is one atomic load — when nothing
   is attached the instrumentation allocates nothing and calls no
   clock.  test_obs.ml pins that with a Gc-measured test.

   Besides spans the collector records:
   - instants: point events (a steal, a crash, a cache milestone),
     optionally carrying a flow id that links an emitting and a
     receiving instant across domains (rendered as arrows in Perfetto);
   - samples: named counter tracks (registers covered, frontier depth,
     cache hit-rate) — the register-coverage timeline of the paper's
     covering argument is exported this way (Obs.Coverage).

   Export: Chrome trace-event JSON via {!Chrome_trace} (loadable in
   Perfetto / chrome://tracing) and a JSONL span log (schema-versioned,
   reloadable) here. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

type ctx = { trace_id : int; span_id : int }

type span = {
  id : int;
  parent : int;  (* 0 = no parent *)
  name : string;
  cat : string;
  dom : int;       (* domain that opened the span *)
  close_dom : int; (* domain that closed it (= dom unless stolen) *)
  start_ns : int;
  dur_ns : int;
  args : (string * Json.t) list;
}

type flow_dir = Flow_none | Flow_out | Flow_in

type instant = {
  i_name : string;
  i_cat : string;
  i_dom : int;
  i_ts_ns : int;
  i_flow : int;  (* 0 = not part of a flow *)
  i_dir : flow_dir;
  i_args : (string * Json.t) list;
}

type sample = { track : string; s_dom : int; s_ts_ns : int; value : float }

type open_span = {
  o_parent : int;
  o_name : string;
  o_cat : string;
  o_dom : int;
  o_start_ns : int;
  o_args : (string * Json.t) list;
}

type t = {
  trace_id : int;
  t0_ns : int;
  next_id : int Atomic.t;  (* span and flow ids; 0 reserved for "none" *)
  mu : Mutex.t;
  open_tbl : (int, open_span) Hashtbl.t;
  mutable spans : span list;       (* completed, reversed *)
  mutable span_count : int;
  mutable instants : instant list; (* reversed *)
  mutable samples : sample list;   (* reversed *)
}

let next_trace_id = Atomic.make 1

let create ?trace_id () =
  let trace_id =
    match trace_id with Some i -> i | None -> Atomic.fetch_and_add next_trace_id 1
  in
  {
    trace_id;
    t0_ns = now_ns ();
    next_id = Atomic.make 1;
    mu = Mutex.create ();
    open_tbl = Hashtbl.create 64;
    spans = [];
    span_count = 0;
    instants = [];
    samples = [];
  }

let trace_id t = t.trace_id
let epoch_ns t = t.t0_ns

let root t = { trace_id = t.trace_id; span_id = 0 }

(* ---- the ambient collector ---- *)

(* The option cell is written once per attach/detach, so [enabled] is a
   single atomic load with no allocation — the guard every instrumented
   hot path uses. *)
let current : t option Atomic.t = Atomic.make None

let attach t = Atomic.set current (Some t)
let detach () = Atomic.set current None
let attached () = Atomic.get current
let enabled () = Atomic.get current != None

let with_attached t f =
  attach t;
  Fun.protect ~finally:detach f

let self_dom () = (Domain.self () :> int)

(* ---- spans ---- *)

let fresh_id t = Atomic.fetch_and_add t.next_id 1

let begin_span t ?parent ?(cat = "") ?(args = []) name =
  let id = fresh_id t in
  let parent_id = match parent with Some c -> c.span_id | None -> 0 in
  let o =
    {
      o_parent = parent_id;
      o_name = name;
      o_cat = cat;
      o_dom = self_dom ();
      o_start_ns = now_ns ();
      o_args = args;
    }
  in
  Mutex.lock t.mu;
  Hashtbl.replace t.open_tbl id o;
  Mutex.unlock t.mu;
  { trace_id = t.trace_id; span_id = id }

let end_span t ?(args = []) ctx =
  let finish = now_ns () in
  let close_dom = self_dom () in
  Mutex.lock t.mu;
  (match Hashtbl.find_opt t.open_tbl ctx.span_id with
  | None -> ()  (* double close or foreign ctx: drop rather than corrupt *)
  | Some o ->
    Hashtbl.remove t.open_tbl ctx.span_id;
    let s =
      {
        id = ctx.span_id;
        parent = o.o_parent;
        name = o.o_name;
        cat = o.o_cat;
        dom = o.o_dom;
        close_dom;
        start_ns = o.o_start_ns;
        dur_ns = max 0 (finish - o.o_start_ns);
        args = o.o_args @ args;
      }
    in
    t.spans <- s :: t.spans;
    t.span_count <- t.span_count + 1);
  Mutex.unlock t.mu

let with_span t ?parent ?cat ?args name f =
  let ctx = begin_span t ?parent ?cat ?args name in
  Fun.protect ~finally:(fun () -> end_span t ctx) (fun () -> f ctx)

(* ---- instants, flows, counter samples ---- *)

let fresh_flow t = fresh_id t

(* [dom] overrides the attributed domain: a thief records the victim
   side of a steal handoff on the victim's timeline. *)
let instant t ?(cat = "") ?(args = []) ?flow ?dom name =
  let flow_id, dir =
    match flow with
    | None -> (0, Flow_none)
    | Some (id, `Out) -> (id, Flow_out)
    | Some (id, `In) -> (id, Flow_in)
  in
  let i =
    {
      i_name = name;
      i_cat = cat;
      i_dom = (match dom with Some d -> d | None -> self_dom ());
      i_ts_ns = now_ns ();
      i_flow = flow_id;
      i_dir = dir;
      i_args = args;
    }
  in
  Mutex.lock t.mu;
  t.instants <- i :: t.instants;
  Mutex.unlock t.mu

let counter t ?ts_ns ?dom ~track value =
  let s =
    {
      track;
      s_dom = (match dom with Some d -> d | None -> self_dom ());
      s_ts_ns = (match ts_ns with Some ts -> ts | None -> now_ns ());
      value;
    }
  in
  Mutex.lock t.mu;
  t.samples <- s :: t.samples;
  Mutex.unlock t.mu

(* ---- reading the collector ---- *)

(* Merged-output ordering guarantee: spans sort by (start_ns, id).  Ids
   are allocated monotonically from one atomic counter and a parent is
   always opened before its children, so in the sorted output a parent
   precedes every child even when their clock timestamps tie (the tie
   breaks on the smaller id).  test_trace.ml pins this under real
   domains. *)
let compare_span a b =
  match compare a.start_ns b.start_ns with 0 -> compare a.id b.id | c -> c

let spans t =
  Mutex.lock t.mu;
  let l = t.spans in
  Mutex.unlock t.mu;
  List.sort compare_span l

let instants t =
  Mutex.lock t.mu;
  let l = t.instants in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.i_ts_ns b.i_ts_ns) l

let samples t =
  Mutex.lock t.mu;
  let l = t.samples in
  Mutex.unlock t.mu;
  List.sort (fun a b -> compare a.s_ts_ns b.s_ts_ns) l

let span_count t =
  Mutex.lock t.mu;
  let n = t.span_count in
  Mutex.unlock t.mu;
  n

let open_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.open_tbl in
  Mutex.unlock t.mu;
  n

let find_span t name =
  List.find_opt (fun s -> s.name = name) (spans t)

(* ---- JSONL export / reload ---- *)

(* One header line then one record per span/instant/sample.  The header
   carries the format name and schema version; the reader rejects a
   major it does not know (same discipline as Obs.Bench_out). *)

let schema_version = 1

let header t =
  Json.Obj
    [
      ("jsonl", Json.String "sa-trace");
      ("schema", Json.Int schema_version);
      ("trace_id", Json.Int t.trace_id);
      ("epoch_ns", Json.Int t.t0_ns);
    ]

let json_of_span s =
  Json.Obj
    [
      ("rec", Json.String "span");
      ("id", Json.Int s.id);
      ("parent", Json.Int s.parent);
      ("name", Json.String s.name);
      ("cat", Json.String s.cat);
      ("dom", Json.Int s.dom);
      ("close_dom", Json.Int s.close_dom);
      ("start_ns", Json.Int s.start_ns);
      ("dur_ns", Json.Int s.dur_ns);
      ("args", Json.Obj s.args);
    ]

let json_of_instant i =
  Json.Obj
    [
      ("rec", Json.String "instant");
      ("name", Json.String i.i_name);
      ("cat", Json.String i.i_cat);
      ("dom", Json.Int i.i_dom);
      ("ts_ns", Json.Int i.i_ts_ns);
      ("flow", Json.Int i.i_flow);
      ( "dir",
        Json.String
          (match i.i_dir with Flow_none -> "" | Flow_out -> "out" | Flow_in -> "in") );
      ("args", Json.Obj i.i_args);
    ]

let json_of_sample s =
  Json.Obj
    [
      ("rec", Json.String "sample");
      ("track", Json.String s.track);
      ("dom", Json.Int s.s_dom);
      ("ts_ns", Json.Int s.s_ts_ns);
      ("value", Json.Float s.value);
    ]

let to_jsonl_channel oc t =
  let line j =
    output_string oc (Json.to_string j);
    output_char oc '\n'
  in
  line (header t);
  List.iter (fun s -> line (json_of_span s)) (spans t);
  List.iter (fun i -> line (json_of_instant i)) (instants t);
  List.iter (fun s -> line (json_of_sample s)) (samples t)

let save_jsonl path t =
  Out_channel.with_open_text path (fun oc -> to_jsonl_channel oc t)

(* -- reload -- *)

let int_field j k =
  match Json.member k j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Fmt.str "missing integer field %S" k)

let str_field j k =
  match Json.member k j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Fmt.str "missing string field %S" k)

let args_field j =
  match Json.member "args" j with
  | Some (Json.Obj kvs) -> Ok kvs
  | None -> Ok []
  | Some _ -> Error "malformed \"args\""

let span_of_json j =
  let ( let* ) = Result.bind in
  let* id = int_field j "id" in
  let* parent = int_field j "parent" in
  let* name = str_field j "name" in
  let* cat = str_field j "cat" in
  let* dom = int_field j "dom" in
  let* close_dom = int_field j "close_dom" in
  let* start_ns = int_field j "start_ns" in
  let* dur_ns = int_field j "dur_ns" in
  let* args = args_field j in
  Ok { id; parent; name; cat; dom; close_dom; start_ns; dur_ns; args }

let instant_of_json j =
  let ( let* ) = Result.bind in
  let* i_name = str_field j "name" in
  let* i_cat = str_field j "cat" in
  let* i_dom = int_field j "dom" in
  let* i_ts_ns = int_field j "ts_ns" in
  let* i_flow = int_field j "flow" in
  let* dir = str_field j "dir" in
  let* i_dir =
    match dir with
    | "" -> Ok Flow_none
    | "out" -> Ok Flow_out
    | "in" -> Ok Flow_in
    | d -> Error (Fmt.str "unknown flow direction %S" d)
  in
  let* i_args = args_field j in
  Ok { i_name; i_cat; i_dom; i_ts_ns; i_flow; i_dir; i_args }

let sample_of_json j =
  let ( let* ) = Result.bind in
  let* track = str_field j "track" in
  let* s_dom = int_field j "dom" in
  let* s_ts_ns = int_field j "ts_ns" in
  let* value =
    match Json.member "value" j with
    | Some (Json.Float f) -> Ok f
    | Some (Json.Int i) -> Ok (float_of_int i)
    | _ -> Error "missing \"value\""
  in
  Ok { track; s_dom; s_ts_ns; value }

type reloaded = {
  r_trace_id : int;
  r_spans : span list;
  r_instants : instant list;
  r_samples : sample list;
}

(* Rejects files whose header declares a schema major newer than this
   reader ([schema_version]); missing header is an error too — every
   writer since the format existed emits one. *)
let load_jsonl path =
  let ( let* ) = Result.bind in
  try
    In_channel.with_open_text path (fun ic ->
        let* hdr =
          match In_channel.input_line ic with
          | None -> Error "empty trace file"
          | Some line -> Json.of_string line
        in
        let* () =
          match (Json.member "jsonl" hdr, Json.member "schema" hdr) with
          | Some (Json.String "sa-trace"), Some (Json.Int v) ->
            if v > schema_version then
              Error
                (Fmt.str "trace schema %d is newer than supported major %d" v
                   schema_version)
            else Ok ()
          | _ -> Error "not an sa-trace JSONL file (missing header)"
        in
        let r_trace_id =
          match Json.member "trace_id" hdr with Some (Json.Int i) -> i | _ -> 0
        in
        let rec go lineno acc =
          match In_channel.input_line ic with
          | None -> Ok acc
          | Some "" -> go (lineno + 1) acc
          | Some line -> (
            let* j = Json.of_string line in
            let dec =
              match Json.member "rec" j with
              | Some (Json.String "span") ->
                Result.map (fun s -> `Span s) (span_of_json j)
              | Some (Json.String "instant") ->
                Result.map (fun i -> `Instant i) (instant_of_json j)
              | Some (Json.String "sample") ->
                Result.map (fun s -> `Sample s) (sample_of_json j)
              | _ -> Error "missing or unknown \"rec\" tag"
            in
            match dec with
            | Ok r -> go (lineno + 1) (r :: acc)
            | Error e -> Error (Fmt.str "line %d: %s" lineno e))
        in
        let* records = go 2 [] in
        let split (sp, ins, sa) = function
          | `Span s -> (s :: sp, ins, sa)
          | `Instant i -> (sp, i :: ins, sa)
          | `Sample s -> (sp, ins, s :: sa)
        in
        let sp, ins, sa = List.fold_left split ([], [], []) records in
        Ok
          {
            r_trace_id;
            r_spans = List.sort compare_span sp;
            r_instants = List.sort (fun a b -> compare a.i_ts_ns b.i_ts_ns) ins;
            r_samples = List.sort (fun a b -> compare a.s_ts_ns b.s_ts_ns) sa;
          })
  with Sys_error e -> Error e

let pp_span ppf s =
  Fmt.pf ppf "[%d<-%d] %s%s dom %d%s %d ns" s.id s.parent s.name
    (if s.cat = "" then "" else Fmt.str " (%s)" s.cat)
    s.dom
    (if s.close_dom <> s.dom then Fmt.str "->%d" s.close_dom else "")
    s.dur_ns

let pp ppf t =
  Fmt.pf ppf "trace %d: %d spans (%d open), %d instants, %d samples" t.trace_id
    (span_count t) (open_count t)
    (List.length (instants t))
    (List.length (samples t))
