(** Built-in execution statistics, as a streaming sink.

    Subsumes and extends {!Shm.Analysis}: the same per-process and
    per-register aggregates are accumulated live in O(n + registers)
    memory, plus named aggregate counters in a {!Metrics} registry and
    per-register scan coverage for the heat/contention view. *)

type t

(** [create ~n ~registers ()] allocates the accumulator.  Pass
    [?registry] to share one registry across several observers. *)
val create : ?registry:Metrics.t -> n:int -> registers:int -> unit -> t

(** The accumulating sink; feed it every event of a run. *)
val sink : t -> Sink.t

(** The classic {!Shm.Analysis.t} view of what was seen so far. *)
val to_analysis : t -> Shm.Analysis.t

val registry : t -> Metrics.t
val total_steps : t -> int

(** Scan coverage alone (reads_per_register of {!to_analysis} already
    includes it). *)
val scans_per_register : t -> int array

(** Reads (incl. scan coverage) + writes, per register. *)
val register_heat : t -> int array

(** 0. when no register was written; see {!Shm.Analysis.write_skew}. *)
val write_skew : t -> float

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
