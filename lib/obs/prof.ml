(* Phase-attribution profiling of the exploration hot path.

   A [t] is a pair of fixed int arrays — nanoseconds and hit counts per
   phase — so attribution is two array stores and allocates nothing.
   The caller brackets work with explicit clock reads, never closures
   (closures allocate):

     let t0 = if profiling then Prof.now_ns () else 0 in
     ... work ...
     if profiling then Prof.add p Prof.Interp (Prof.now_ns () - t0)

   Each DPOR worker owns one [t]; after the join the per-worker
   profiles merge into the run breakdown that [sa_run --stats] and
   [sa_run trace --stats] print.

   [Series] is the companion time series: strided samples of frontier
   depth, nodes processed, cache hits and sleep-set prunes, for
   plotting an exploration's shape over time. *)

type phase =
  | Interp
  | Footprint
  | Hash
  | Cache
  | Replay
  | Steal
  | Check
  | Vm_step
  | Vm_batch

let n_phases = 9

let index = function
  | Interp -> 0
  | Footprint -> 1
  | Hash -> 2
  | Cache -> 3
  | Replay -> 4
  | Steal -> 5
  | Check -> 6
  | Vm_step -> 7
  | Vm_batch -> 8

let phases = [ Interp; Footprint; Hash; Cache; Replay; Steal; Check; Vm_step; Vm_batch ]

let name = function
  | Interp -> "interp"
  | Footprint -> "footprint"
  | Hash -> "hash"
  | Cache -> "cache"
  | Replay -> "replay"
  | Steal -> "steal"
  | Check -> "check"
  | Vm_step -> "vm.step"
  | Vm_batch -> "vm.batch"

let describe = function
  | Interp -> "step interpretation (Config.step / invoke)"
  | Footprint -> "footprint + independence computation"
  | Hash -> "state hashing / key construction"
  | Cache -> "seen-state cache lookup + insert"
  | Replay -> "rebuilding stolen nodes by schedule replay"
  | Steal -> "deque operations + steal attempts"
  | Check -> "leaf completion + property checking"
  | Vm_step -> "bytecode stepping (Vm.step, key maintenance included)"
  | Vm_batch -> "vm frontier batching (arena snapshots, stack ops)"

type t = { ns : int array; count : int array }

let create () = { ns = Array.make n_phases 0; count = Array.make n_phases 0 }

let now_ns = Trace.now_ns

(* Allocation-free: the hot-path attribution primitive. *)
let add t phase dns =
  let i = index phase in
  t.ns.(i) <- t.ns.(i) + dns;
  t.count.(i) <- t.count.(i) + 1

let ns t phase = t.ns.(index phase)
let count t phase = t.count.(index phase)
let total_ns t = Array.fold_left ( + ) 0 t.ns

let merge_into ~into t =
  for i = 0 to n_phases - 1 do
    into.ns.(i) <- into.ns.(i) + t.ns.(i);
    into.count.(i) <- into.count.(i) + t.count.(i)
  done

let merge ts =
  let acc = create () in
  List.iter (fun t -> merge_into ~into:acc t) ts;
  acc

let is_empty t = total_ns t = 0 && Array.fold_left ( + ) 0 t.count = 0

let to_json t =
  Json.Obj
    (List.map
       (fun p ->
         ( name p,
           Json.Obj [ ("ns", Json.Int (ns t p)); ("count", Json.Int (count t p)) ] ))
       phases)

let pp ppf t =
  let total = max 1 (total_ns t) in
  Fmt.pf ppf "%-10s %12s %10s %6s@." "phase" "time (ms)" "hits" "share";
  List.iter
    (fun p ->
      if count t p > 0 || ns t p > 0 then
        Fmt.pf ppf "%-10s %12.3f %10d %5.1f%%@." (name p)
          (float_of_int (ns t p) /. 1e6)
          (count t p)
          (100. *. float_of_int (ns t p) /. float_of_int total))
    phases;
  Fmt.pf ppf "%-10s %12.3f" "total" (float_of_int (total_ns t) /. 1e6)

module Series = struct
  type row = {
    ts_ns : int;
    nodes : int;
    frontier : int;
    cache_hits : int;
    sleep_hits : int;
  }

  type nonrec t = { mu : Mutex.t; mutable rows : row list (* reversed *) }

  let create () = { mu = Mutex.create (); rows = [] }

  let add t ~ts_ns ~nodes ~frontier ~cache_hits ~sleep_hits =
    let r = { ts_ns; nodes; frontier; cache_hits; sleep_hits } in
    Mutex.lock t.mu;
    t.rows <- r :: t.rows;
    Mutex.unlock t.mu

  let rows t =
    Mutex.lock t.mu;
    let l = t.rows in
    Mutex.unlock t.mu;
    List.sort (fun a b -> compare a.ts_ns b.ts_ns) l

  let length t =
    Mutex.lock t.mu;
    let n = List.length t.rows in
    Mutex.unlock t.mu;
    n

  let to_json t =
    Json.Arr
      (List.map
         (fun r ->
           Json.Obj
             [
               ("ts_ns", Json.Int r.ts_ns);
               ("nodes", Json.Int r.nodes);
               ("frontier", Json.Int r.frontier);
               ("cache_hits", Json.Int r.cache_hits);
               ("sleep_hits", Json.Int r.sleep_hits);
             ])
         (rows t))

  (* Feed the series into a trace's counter tracks so Perfetto plots
     frontier depth and cache hit-rate alongside the worker spans. *)
  let to_trace t tr =
    List.iter
      (fun r ->
        let ts_ns = r.ts_ns in
        Trace.counter tr ~ts_ns ~track:"frontier" (float_of_int r.frontier);
        Trace.counter tr ~ts_ns ~track:"nodes" (float_of_int r.nodes);
        Trace.counter tr ~ts_ns ~track:"cache hits" (float_of_int r.cache_hits);
        Trace.counter tr ~ts_ns ~track:"sleep hits" (float_of_int r.sleep_hits))
      (rows t)

  let pp ppf t =
    let rs = rows t in
    match rs with
    | [] -> Fmt.pf ppf "(no samples)"
    | first :: _ ->
      Fmt.pf ppf "%-10s %10s %10s %12s %12s@." "t (ms)" "nodes" "frontier"
        "cache hits" "sleep hits";
      List.iter
        (fun r ->
          Fmt.pf ppf "%-10.2f %10d %10d %12d %12d@."
            (float_of_int (r.ts_ns - first.ts_ns) /. 1e6)
            r.nodes r.frontier r.cache_hits r.sleep_hits)
        rs;
      Fmt.pf ppf "%d samples" (List.length rs)
end
