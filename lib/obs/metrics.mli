(** Metrics registry: counters, gauges, and log-bucketed histograms.

    Histograms bucket observations by octave (powers of two) and
    interpolate linearly inside a bucket: O(1) memory per histogram,
    quantiles exact to within one octave. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit

  (** [add t n] is [incr ~by:n t] without the optional-argument boxing:
      the allocation-free path for per-event code. *)
  val add : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val create : unit -> t

  (** Record one (non-negative) observation. *)
  val observe : t -> int -> unit

  val count : t -> int
  val sum : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  (** [quantile t q] for [q] in [0,1]; 0 on an empty histogram. *)
  val quantile : t -> float -> float

  val p50 : t -> float
  val p90 : t -> float
  val p99 : t -> float
  val to_json : t -> Json.t
  val pp : Format.formatter -> t -> unit
end

(** A named registry.  [counter]/[gauge]/[histogram] get-or-create;
    asking for an existing name with a different kind raises
    [Invalid_argument]. *)
type t

val create : unit -> t
val counter : t -> string -> Counter.t
val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

(** Registered names, in registration order. *)
val names : t -> string list

val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
