(* The paper-grounded view of an execution: which registers are
   *covered* (some process is poised to write them — the covering
   argument of Delporte-Gallet et al.) and which have been *written*
   (Memory.written_set, the space measure) at each step.

   [probe] adapts a trace collector to the [?probe] hook of
   [Shm.Exec.run]: after every event it appends one sample to the
   "registers covered" and "registers written" counter tracks of the
   executing domain, plus a per-write instant; with [~sets:true] each
   event also carries the covered-register set itself, so the JSONL
   export reconstructs the full covering timeline, not just its
   cardinality. *)

open Shm
module IS = Set.Make (Int)

(* Registers covered in [config]: distinct registers some process is
   poised to write.  Several processes poised at the same register is
   precisely a block-write in formation — the set is deduplicated, the
   multiplicity is visible in [covering]. *)
let covering config =
  let n = Config.n config in
  let rec go pid acc =
    if pid >= n then List.rev acc
    else
      match Program.poised_write (Config.proc config pid) with
      | Some reg -> go (pid + 1) ((pid, reg) :: acc)
      | None -> go (pid + 1) acc
  in
  go 0 []

let covered config =
  List.sort_uniq compare (List.map snd (covering config))

let num_covered config = List.length (covered config)

let written config = Memory.written_set (Config.mem config)
let num_written config = Memory.num_written (Config.mem config)

let json_of_int_list l = Json.Arr (List.map (fun i -> Json.Int i) l)

let track_covered = "registers covered"
let track_written = "registers written"

let probe ?(sets = false) tr ~step ev config =
  (match ev with
  | Event.Did_write { pid; reg; value = _ } ->
    Trace.instant tr ~cat:"coverage"
      ~args:[ ("pid", Json.Int pid); ("reg", Json.Int reg); ("step", Json.Int step) ]
      "write"
  | _ -> ());
  if sets then
    Trace.instant tr ~cat:"coverage"
      ~args:
        [
          ("step", Json.Int step);
          ("covered", json_of_int_list (covered config));
          ("written", json_of_int_list (IS.elements (written config)));
        ]
      "cov";
  Trace.counter tr ~track:track_covered (float_of_int (num_covered config));
  Trace.counter tr ~track:track_written (float_of_int (num_written config))

(* The Exec.run probe, bound to the ambient collector if any.  Returns
   None when disabled so Exec's hoisted hook stays zero-cost. *)
let ambient_probe ?sets () =
  match Trace.attached () with
  | None -> None
  | Some tr -> Some (fun ~step ev config -> probe ?sets tr ~step ev config)
