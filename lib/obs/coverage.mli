(** Register-coverage timelines — the paper's view of an execution.

    A register is {e covered} when some process is poised to write it
    (the covering argument); it is {e written} once some write to it
    has occurred ([Memory.written_set], the space measure).  This
    module turns those two sets, observed per event, into trace
    counter tracks and instants. *)

(** [(pid, reg)] pairs: every process poised at a write, with its
    target.  Multiple pids on one reg = a block write in formation. *)
val covering : Shm.Config.t -> (int * int) list

(** Distinct covered registers, sorted. *)
val covered : Shm.Config.t -> int list

val num_covered : Shm.Config.t -> int
val written : Shm.Config.t -> Set.Make(Int).t
val num_written : Shm.Config.t -> int

(** Counter-track names used by {!probe}. *)
val track_covered : string

val track_written : string

(** [probe tr ~step ev config] records the coverage state after [ev]:
    counter samples on both tracks, an instant per write, and — with
    [~sets:true] — an instant carrying the covered/written sets
    themselves. *)
val probe :
  ?sets:bool -> Trace.t -> step:int -> Shm.Event.t -> Shm.Config.t -> unit

(** {!probe} bound to the ambient collector: [None] when no collector
    is attached, so callers can hoist the hook out of the hot loop. *)
val ambient_probe :
  ?sets:bool -> unit -> (step:int -> Shm.Event.t -> Shm.Config.t -> unit) option
