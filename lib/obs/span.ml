(* Per-propose spans: one span per (pid, instance) from its Invoke to
   its Output, measured in global scheduler steps.  The latency of a
   propose is how many steps of the whole system elapsed while it was
   pending — contention and starvation show up directly, which per-
   process step totals cannot express. *)

type span = {
  pid : int;
  instance : int;
  start_step : int;
  end_step : int;  (* exclusive; latency = end_step - start_step *)
}

let latency s = s.end_step - s.start_step

type t = {
  mutable clock : int;  (* global steps seen so far *)
  open_ : (int * int, int) Hashtbl.t;  (* (pid, instance) -> start step *)
  hist : Metrics.Histogram.t;
  mutable completed : span list;  (* reversed *)
  mutable completed_count : int;
}

let create () =
  {
    clock = 0;
    open_ = Hashtbl.create 16;
    hist = Metrics.Histogram.create ();
    completed = [];
    completed_count = 0;
  }

let sink t : Sink.t =
 fun ev ->
  t.clock <- t.clock + 1;
  match ev with
  | Shm.Event.Invoke { pid; instance; _ } ->
    Hashtbl.replace t.open_ (pid, instance) (t.clock - 1)
  | Shm.Event.Output { pid; instance; _ } -> (
    match Hashtbl.find_opt t.open_ (pid, instance) with
    | None -> ()  (* output without a seen invoke: replayed suffix, ignore *)
    | Some start_step ->
      Hashtbl.remove t.open_ (pid, instance);
      let s = { pid; instance; start_step; end_step = t.clock } in
      Metrics.Histogram.observe t.hist (latency s);
      t.completed <- s :: t.completed;
      t.completed_count <- t.completed_count + 1)
  | Shm.Event.Did_read _ | Shm.Event.Did_write _ | Shm.Event.Did_scan _ -> ()

let completed t = List.rev t.completed

let completed_count t = t.completed_count

let open_count t = Hashtbl.length t.open_

let histogram t = t.hist

let p50 t = Metrics.Histogram.p50 t.hist
let p90 t = Metrics.Histogram.p90 t.hist
let p99 t = Metrics.Histogram.p99 t.hist

let to_json t =
  Json.Obj
    [
      ("completed", Json.Int t.completed_count);
      ("open", Json.Int (open_count t));
      ("latency_steps", Metrics.Histogram.to_json t.hist);
    ]

let pp ppf t =
  Fmt.pf ppf "spans: %d completed, %d open; latency %a" t.completed_count
    (open_count t) Metrics.Histogram.pp t.hist
