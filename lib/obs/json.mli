(** Minimal JSON for the observability layer: compact one-line encoding
    for JSONL traces, pretty printing for [BENCH_*.json] files, and a
    parser for reloading both.  No external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Arr of t list
  | Obj of (string * t) list

(** Compact single-line rendering (the JSONL form).  Output is always
    valid UTF-8: string bytes that are not part of a well-formed UTF-8
    scalar sequence are emitted as surrogate escapes ([\udcXX]), which
    {!of_string} maps back to the raw bytes — so encode/decode is the
    identity on arbitrary byte strings. *)
val to_string : t -> string

(** Indented multi-line rendering (the [BENCH_*.json] form). *)
val to_pretty_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a complete JSON document.  Non-finite floats serialize as
    [null], so [of_string (to_string v) = Ok v] for all finite values. *)
val of_string : string -> (t, string) result

(** {1 Accessors} *)

(** Field of an [Obj], or [None]. *)
val member : string -> t -> t option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
