(* JSONL trace export and reload: one event per line.

   Schema (documented in DESIGN.md §Observability):
     {"ev":"invoke","pid":P,"inst":I,"in":V}
     {"ev":"read","pid":P,"reg":R,"val":V}
     {"ev":"write","pid":P,"reg":R,"val":V}
     {"ev":"scan","pid":P,"off":O,"len":L}
     {"ev":"output","pid":P,"inst":I,"val":V}
   where values V are: null = ⊥, integers and strings themselves,
   {"pair":[a,b]} for pairs, [..] for lists.  The pair wrapper keeps
   pairs and 2-element lists distinct, so decoding is exact. *)

open Shm

let rec json_of_value v =
  match Value.view v with
  | Value.Bot -> Json.Null
  | Value.Int i -> Json.Int i
  | Value.Str s -> Json.String s
  | Value.Pair (a, b) -> Json.Obj [ ("pair", Json.Arr [ json_of_value a; json_of_value b ]) ]
  | Value.List vs -> Json.Arr (List.map json_of_value vs)

let rec value_of_json = function
  | Json.Null -> Ok Value.bot
  | Json.Int i -> Ok (Value.int i)
  | Json.String s -> Ok (Value.str s)
  | Json.Obj [ ("pair", Json.Arr [ a; b ]) ] -> (
    match (value_of_json a, value_of_json b) with
    | Ok a, Ok b -> Ok (Value.pair a b)
    | (Error _ as e), _ | _, (Error _ as e) -> e)
  | Json.Arr vs ->
    let rec go acc = function
      | [] -> Ok (Value.list (List.rev acc))
      | v :: rest -> (
        match value_of_json v with Ok v -> go (v :: acc) rest | Error _ as e -> e)
    in
    go [] vs
  | j -> Error (Fmt.str "not a register value: %s" (Json.to_string j))

let json_of_event ev =
  let open Json in
  match ev with
  | Event.Invoke { pid; instance; input } ->
    Obj
      [ ("ev", String "invoke"); ("pid", Int pid); ("inst", Int instance);
        ("in", json_of_value input) ]
  | Event.Did_read { pid; reg; value } ->
    Obj
      [ ("ev", String "read"); ("pid", Int pid); ("reg", Int reg);
        ("val", json_of_value value) ]
  | Event.Did_write { pid; reg; value } ->
    Obj
      [ ("ev", String "write"); ("pid", Int pid); ("reg", Int reg);
        ("val", json_of_value value) ]
  | Event.Did_scan { pid; off; len } ->
    Obj [ ("ev", String "scan"); ("pid", Int pid); ("off", Int off); ("len", Int len) ]
  | Event.Output { pid; instance; value } ->
    Obj
      [ ("ev", String "output"); ("pid", Int pid); ("inst", Int instance);
        ("val", json_of_value value) ]

let event_of_json j =
  let ( let* ) r f = Result.bind r f in
  let int_field k =
    match Json.member k j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Fmt.str "missing integer field %S in %s" k (Json.to_string j))
  in
  let value_field k =
    match Json.member k j with
    | Some v -> value_of_json v
    | None -> Error (Fmt.str "missing field %S in %s" k (Json.to_string j))
  in
  match Json.member "ev" j with
  | Some (Json.String "invoke") ->
    let* pid = int_field "pid" in
    let* instance = int_field "inst" in
    let* input = value_field "in" in
    Ok (Event.Invoke { pid; instance; input })
  | Some (Json.String "read") ->
    let* pid = int_field "pid" in
    let* reg = int_field "reg" in
    let* value = value_field "val" in
    Ok (Event.Did_read { pid; reg; value })
  | Some (Json.String "write") ->
    let* pid = int_field "pid" in
    let* reg = int_field "reg" in
    let* value = value_field "val" in
    Ok (Event.Did_write { pid; reg; value })
  | Some (Json.String "scan") ->
    let* pid = int_field "pid" in
    let* off = int_field "off" in
    let* len = int_field "len" in
    Ok (Event.Did_scan { pid; off; len })
  | Some (Json.String "output") ->
    let* pid = int_field "pid" in
    let* instance = int_field "inst" in
    let* value = value_field "val" in
    Ok (Event.Output { pid; instance; value })
  | _ -> Error (Fmt.str "missing or unknown \"ev\" tag in %s" (Json.to_string j))

let line_of_event ev = Json.to_string (json_of_event ev)

let event_of_line line = Result.bind (Json.of_string line) event_of_json

(* ---- schema header ----

   Writers open every file/stream with one header line

     {"jsonl":"sa-events","schema":1}

   so a reader can refuse a future major version instead of misreading
   it.  Readers skip a valid header, reject a header declaring a newer
   major or a different format name, and tolerate headerless files
   (traces written before the header existed). *)

let schema_version = 1

let header_json =
  Json.Obj [ ("jsonl", Json.String "sa-events"); ("schema", Json.Int schema_version) ]

let write_header oc =
  output_string oc (Json.to_string header_json);
  output_char oc '\n'

(* [`Skip]: valid header, consume the line; [`Event]: not a header,
   parse the line as an event (legacy file). *)
let classify_first_line line =
  match Json.of_string line with
  | Ok j -> (
    match Json.member "jsonl" j with
    | Some (Json.String "sa-events") -> (
      match Json.member "schema" j with
      | Some (Json.Int v) when v > schema_version ->
        Error (Fmt.str "event schema %d is newer than supported major %d" v schema_version)
      | Some (Json.Int _) -> Ok `Skip
      | _ -> Error "header missing integer \"schema\"")
    | Some (Json.String other) ->
      Error (Fmt.str "not an sa-events file (format %S)" other)
    | Some _ -> Error "malformed header"
    | None -> Ok `Event)
  | Error _ -> Ok `Event

(* ---- channels and files ---- *)

let sink_to_channel oc : Sink.t =
  write_header oc;
  fun ev ->
    output_string oc (line_of_event ev);
    output_char oc '\n'

let write_channel oc trace =
  let sink ev =
    output_string oc (line_of_event ev);
    output_char oc '\n'
  in
  List.iter (Sink.emit sink) trace

(* Streaming read: [emit] per event, header handled on the first
   non-blank line. *)
let fold_channel ic ~init ~f =
  let rec go lineno ~first acc =
    match In_channel.input_line ic with
    | None -> Ok acc
    | Some "" -> go (lineno + 1) ~first acc
    | Some line when first -> (
      match classify_first_line line with
      | Error e -> Error (Fmt.str "line %d: %s" lineno e)
      | Ok `Skip -> go (lineno + 1) ~first:false acc
      | Ok `Event -> (
        match event_of_line line with
        | Ok ev -> go (lineno + 1) ~first:false (f acc ev)
        | Error e -> Error (Fmt.str "line %d: %s" lineno e)))
    | Some line -> (
      match event_of_line line with
      | Ok ev -> go (lineno + 1) ~first (f acc ev)
      | Error e -> Error (Fmt.str "line %d: %s" lineno e))
  in
  go 1 ~first:true init

let read_channel ic =
  Result.map List.rev (fold_channel ic ~init:[] ~f:(fun acc ev -> ev :: acc))

let save path trace =
  Out_channel.with_open_text path (fun oc ->
      write_header oc;
      write_channel oc trace)

let load path =
  try In_channel.with_open_text path read_channel
  with Sys_error e -> Error e

(* [fold_file] streams the file through [f] without materializing the
   event list — the offline counterpart of a live sink. *)
let fold_file path ~init ~f =
  try In_channel.with_open_text path (fun ic -> fold_channel ic ~init ~f)
  with Sys_error e -> Error e
