(* Streaming event sinks.

   A sink is just a callback on execution events.  [Shm.Exec.run] calls
   the sink once per step, so observers (metrics, spans, JSONL export)
   run in O(1) memory regardless of schedule length — the in-memory
   trace of [~record:true] is recovered by [recorder], which is the
   list-accumulating sink. *)

type t = Shm.Event.t -> unit

let null : t = ignore

let emit (sink : t) ev = sink ev

let of_fn f : t = f

let tee sinks : t =
 fun ev -> List.iter (fun (s : t) -> s ev) sinks

let filter pred (sink : t) : t = fun ev -> if pred ev then sink ev

let on_pid pid sink = filter (fun ev -> Shm.Event.pid ev = pid) sink

(* The list-accumulating sink: what [~record:true] does, as a sink. *)
let recorder () =
  let acc = ref [] in
  let sink ev = acc := ev :: !acc in
  (sink, fun () -> List.rev !acc)

let counter () =
  let n = ref 0 in
  let sink _ = incr n in
  (sink, fun () -> !n)
