(* Chrome trace-event JSON export of an Obs.Trace collector, loadable
   in Perfetto (https://ui.perfetto.dev) or chrome://tracing.

   Mapping:
   - one Perfetto "process" per trace (pid = trace id); each OCaml
     domain becomes a "thread" (tid = domain id) with a metadata row
     naming it "domain N";
   - spans -> ph "X" complete events (ts/dur in microseconds, relative
     to the collector's epoch so timestamps start near 0);
   - instants -> ph "i" (thread scope); instants that carry a flow id
     additionally emit ph "s"/"f" flow events, which Perfetto renders
     as arrows between domain timelines (steal handoffs);
   - counter samples -> ph "C" events, one counter track per sample
     track name (the register-coverage timeline uses these).

   A span opened on one domain and closed on another is attributed to
   the opening domain's row (Chrome "X" events cannot change thread);
   the closing domain is preserved as a "close_dom" arg. *)

let us_of_ns ns = float_of_int ns /. 1e3

let event ~ph ~name ~cat ~pid ~tid ~ts ?dur ?id ?bp ?(args = []) () =
  let base =
    [
      ("name", Json.String name);
      ("cat", Json.String (if cat = "" then "sa" else cat));
      ("ph", Json.String ph);
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Float ts);
    ]
  in
  let base = match dur with Some d -> base @ [ ("dur", Json.Float d) ] | None -> base in
  let base = match id with Some i -> base @ [ ("id", Json.Int i) ] | None -> base in
  (* "bp":"e" lets flow-start events bind to the enclosing slice end. *)
  let base = match bp with Some b -> base @ [ ("bp", Json.String b) ] | None -> base in
  let base =
    match args with [] -> base | kvs -> base @ [ ("args", Json.Obj kvs) ]
  in
  Json.Obj base

let meta ~pid ?tid ~name value =
  let base =
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int pid);
    ]
  in
  let base = match tid with Some t -> base @ [ ("tid", Json.Int t) ] | None -> base in
  Json.Obj (base @ [ ("args", Json.Obj [ ("name", Json.String value) ]) ])

let domains_of t =
  let module IS = Set.Make (Int) in
  let s = IS.empty in
  let s = List.fold_left (fun s (sp : Trace.span) -> IS.add sp.dom s) s (Trace.spans t) in
  let s =
    List.fold_left (fun s (i : Trace.instant) -> IS.add i.i_dom s) s (Trace.instants t)
  in
  let s =
    List.fold_left (fun s (sa : Trace.sample) -> IS.add sa.s_dom s) s (Trace.samples t)
  in
  IS.elements s

let events ?(process_name = "set_agreement") t =
  let pid = Trace.trace_id t in
  let t0 = Trace.epoch_ns t in
  let ts ns = us_of_ns (ns - t0) in
  let metas =
    meta ~pid ~name:"process_name" process_name
    :: List.map
         (fun d -> meta ~pid ~tid:d ~name:"thread_name" (Fmt.str "domain %d" d))
         (domains_of t)
  in
  let span_ev (s : Trace.span) =
    let args =
      (("span_id", Json.Int s.id) :: ("parent", Json.Int s.parent) :: s.args)
      @ (if s.close_dom <> s.dom then [ ("close_dom", Json.Int s.close_dom) ] else [])
    in
    event ~ph:"X" ~name:s.name ~cat:s.cat ~pid ~tid:s.dom ~ts:(ts s.start_ns)
      ~dur:(us_of_ns s.dur_ns) ~args ()
  in
  let instant_evs (i : Trace.instant) =
    let base =
      event ~ph:"i" ~name:i.i_name ~cat:i.i_cat ~pid ~tid:i.i_dom ~ts:(ts i.i_ts_ns)
        ~args:(("s", Json.String "t") :: i.i_args)
        ()
    in
    match i.i_dir with
    | Trace.Flow_none -> [ base ]
    | Trace.Flow_out ->
      [
        base;
        event ~ph:"s" ~name:i.i_name ~cat:i.i_cat ~pid ~tid:i.i_dom ~ts:(ts i.i_ts_ns)
          ~id:i.i_flow ();
      ]
    | Trace.Flow_in ->
      [
        base;
        event ~ph:"f" ~name:i.i_name ~cat:i.i_cat ~pid ~tid:i.i_dom ~ts:(ts i.i_ts_ns)
          ~id:i.i_flow ~bp:"e" ();
      ]
  in
  let sample_ev (s : Trace.sample) =
    event ~ph:"C" ~name:s.track ~cat:"counter" ~pid ~tid:s.s_dom ~ts:(ts s.s_ts_ns)
      ~args:[ ("value", Json.Float s.value) ]
      ()
  in
  metas
  @ List.map span_ev (Trace.spans t)
  @ List.concat_map instant_evs (Trace.instants t)
  @ List.map sample_ev (Trace.samples t)

let to_json ?process_name t =
  Json.Obj
    [
      ("traceEvents", Json.Arr (events ?process_name t));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("format", Json.String "sa-chrome-trace");
            ("schema", Json.Int Trace.schema_version);
          ] );
    ]

let save ?process_name path t =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_pretty_string (to_json ?process_name t));
      output_char oc '\n')
