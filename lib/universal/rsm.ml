(* A universal construction: replicated state machines from repeated
   agreement.

   This is the application the paper's introduction motivates repeated
   set agreement with (Herlihy's universal construction [8]): a sequence
   of independent agreement instances, one per command slot.  With k = 1
   (consensus) every replica applies the same command sequence and the
   replicated object is linearizable; the space cost of the agreement
   layer is the paper's min(n+2m−k, n) registers *total*, independent of
   how many commands are executed.

   With k > 1 the construction degrades gracefully into a k-branching
   machine (see Ledger): each slot commits at most k alternative
   commands, and each replica follows one committed branch.  This is the
   object k-set agreement is "universal" for.

   The machine is a pure fold over decided commands; replication runs
   the Figure 4 algorithm underneath. *)

open Shm

type 'state machine = {
  init : 'state;
  apply : 'state -> Value.t -> 'state;  (* apply one committed command *)
}

type 'state replica = {
  pid : int;
  log : Value.t list;     (* commands this replica learned, slot order *)
  state : 'state;         (* init folded over log *)
}

type 'state run = {
  replicas : 'state replica list;
  steps : int;
  registers : int;        (* registers the agreement layer wrote *)
  quiescent : bool;
}

(* Outputs of process [pid], in instance order — the branch this replica
   follows. *)
let log_of config pid =
  Config.outputs config
  |> List.filter_map (fun (p, inst, v) -> if p = pid then Some (inst, v) else None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* [replicate params machine ~commands ~slots] runs [slots] instances of
   repeated agreement; process pid proposes [commands pid slot] for each
   slot and applies the decided command.  Uses the default solo-burst
   schedule unless [sched] is given. *)
let replicate ?sched ?(max_steps = 5_000_000) (params : Agreement.Params.t) machine
    ~commands ~slots =
  let n = params.Agreement.Params.n in
  let sched =
    match sched with
    | Some s -> s
    | None -> Schedule.quantum_round_robin ~quantum:800 n
  in
  let impl = Agreement.Instances.space_optimal_impl params in
  let result =
    Agreement.Runner.run_repeated ~impl ~sched ~rounds:slots ~max_steps
      ~input_fn:(fun pid slot -> commands pid slot)
      params
  in
  let config = result.Exec.config in
  let replicas =
    List.init n (fun pid ->
        let log = log_of config pid in
        { pid; log; state = List.fold_left machine.apply machine.init log })
  in
  {
    replicas;
    steps = result.Exec.steps;
    registers = Agreement.Runner.registers_used result;
    quiescent = result.Exec.stopped = Exec.All_quiescent;
  }

(* Incremental slot-at-a-time stepping.  A stepper owns a repeated
   (Figure 4) configuration and advances it one agreement instance per
   call.  Because configurations are persistent, "advance" is just
   re-running [Exec.run] on the stored config with the inputs window
   widened by one instance: processes offered no proposal for the new
   slot simply stay idle, and the run quiesces once every proposer has
   decided.  This is the serving layer's engine: a shard holds one
   stepper and feeds it one batch per slot, forever, in min(n+2m−k, n)
   registers total. *)
module Stepper = struct
  type t = {
    params : Agreement.Params.t;
    config : Config.t;
    slot : int;   (* instances decided so far; next instance is slot+1 *)
    steps : int;  (* simulator steps across all slots *)
    max_steps_per_slot : int;
  }

  type outcome = {
    stepper : t;
    decisions : (int * Value.t) list;  (* (pid, decided), completion order *)
    quiescent : bool;
  }

  let create ?impl ?backend ?(max_steps_per_slot = 2_000_000)
      (params : Agreement.Params.t) =
    let impl =
      match impl with
      | Some i -> i
      | None -> Agreement.Instances.space_optimal_impl params
    in
    let config = Agreement.Instances.repeated ~impl ?backend params in
    { params; config; slot = 0; steps = 0; max_steps_per_slot }

  let slot t = t.slot
  let config t = t.config
  let steps t = t.steps
  let params t = t.params
  let registers_used t = Memory.num_written (Config.mem t.config)
  let unshare t = { t with config = Config.unshare t.config }

  let step_slot ?sched t ~proposals =
    let n = t.params.Agreement.Params.n in
    let sched =
      match sched with
      | Some s -> s
      | None -> Schedule.quantum_round_robin ~quantum:800 n
    in
    let instance = t.slot + 1 in
    let inputs ~pid ~instance:i =
      if i = instance then proposals pid else None
    in
    let result =
      Exec.run ~sched ~inputs ~max_steps:t.max_steps_per_slot t.config
    in
    let config = result.Exec.config in
    let decisions =
      Config.outputs config
      |> List.filter_map (fun (pid, inst, v) ->
             if inst = instance then Some (pid, v) else None)
    in
    let stepper =
      { t with config; slot = instance; steps = t.steps + result.Exec.steps }
    in
    { stepper; decisions; quiescent = result.Exec.stopped = Exec.All_quiescent }
end

(* With consensus underneath, all replicas must agree on the whole log;
   [agreement_log] returns it (and None if replicas diverged — possible
   only if k > 1 or the layer below is broken). *)
let agreement_log run =
  match run.replicas with
  | [] -> Some []
  | r0 :: rest ->
    if
      List.for_all
        (fun r -> List.length r.log = List.length r0.log
                  && List.for_all2 Value.equal r.log r0.log)
        rest
    then Some r0.log
    else None
