(** A universal construction: replicated state machines from repeated
    agreement — the application the paper's introduction motivates
    (Herlihy [8]).  With k = 1 every replica applies the same command
    sequence; with k > 1 the construction degrades gracefully into a
    k-branching machine (see {!Ledger}).  The agreement layer's space
    cost is min(n+2m−k, n) registers total, independent of the number
    of commands executed. *)

type 'state machine = {
  init : 'state;
  apply : 'state -> Shm.Value.t -> 'state;  (** apply one committed command *)
}

type 'state replica = {
  pid : int;
  log : Shm.Value.t list;  (** commands this replica learned, slot order *)
  state : 'state;          (** [init] folded over [log] *)
}

type 'state run = {
  replicas : 'state replica list;
  steps : int;
  registers : int;   (** registers the agreement layer wrote *)
  quiescent : bool;
}

(** Outputs of one process in instance order — its branch of the log. *)
val log_of : Shm.Config.t -> int -> Shm.Value.t list

(** [replicate params machine ~commands ~slots] runs [slots] instances
    of repeated agreement over the space-optimal snapshot choice;
    process [pid] proposes [commands pid slot] and applies what was
    decided.  Default schedule: solo bursts (guaranteed termination). *)
val replicate :
  ?sched:Shm.Schedule.t ->
  ?max_steps:int ->
  Agreement.Params.t ->
  'state machine ->
  commands:(int -> int -> Shm.Value.t) ->
  slots:int ->
  'state run

(** Incremental slot-at-a-time stepping: a persistent handle on a
    repeated (Figure 4) configuration that advances one agreement
    instance per call.  This is the serving layer's engine
    ({!Service.Shard}): the instance space is unbounded in time but the
    register footprint stays min(n+2m−k, n) — {!Stepper.registers_used}
    is constant across slots. *)
module Stepper : sig
  type t

  (** One slot's result: the advanced stepper, the slot's decisions as
      [(pid, decided)] pairs in completion order, and whether the run
      quiesced ([false] means the per-slot step budget ran out with
      proposers still undecided — the slot must be treated as stuck). *)
  type outcome = {
    stepper : t;
    decisions : (int * Shm.Value.t) list;
    quiescent : bool;
  }

  (** [create params] builds a fresh repeated-agreement instance space.
      Defaults: the space-optimal snapshot choice, the default memory
      backend, a 2M-step budget per slot. *)
  val create :
    ?impl:Agreement.Instances.impl ->
    ?backend:Shm.Memory.backend ->
    ?max_steps_per_slot:int ->
    Agreement.Params.t ->
    t

  (** Slots decided so far; the next [step_slot] runs instance
      [slot t + 1]. *)
  val slot : t -> int

  (** The underlying configuration (for conformance checking). *)
  val config : t -> Shm.Config.t

  (** Simulator steps consumed across all slots so far. *)
  val steps : t -> int

  val params : t -> Agreement.Params.t

  (** Registers the agreement layer has written — the space measure;
      stays ≤ min(n+2m−k, n) no matter how many slots have run. *)
  val registers_used : t -> int

  (** Detach the stepper's journaled memory from its creating domain
      (see {!Shm.Config.unshare}); call once when handing a stepper to
      a worker domain. *)
  val unshare : t -> t

  (** [step_slot t ~proposals] runs one more agreement instance.
      [proposals pid] is the value pid proposes for this slot, or
      [None] to sit the slot out (a crashed or idle replica — pair
      with a schedule over the live pids so the run can quiesce).
      Default schedule: solo bursts over all n processes. *)
  val step_slot :
    ?sched:Shm.Schedule.t -> t -> proposals:(int -> Shm.Value.t option) -> outcome
end

(** The common log when all replicas agree (always, under k = 1);
    [None] if replicas diverged. *)
val agreement_log : 'state run -> Shm.Value.t list option
