(* A small catalog of state machines for the universal construction —
   the objects one actually replicates with it.

   Commands are Shm.Value encodings so they travel through the
   agreement layer unchanged; each machine documents its command
   grammar.  [counter] and [register] are the textbook examples;
   [fifo_queue] is the object Herlihy's paper uses to motivate
   universality (queues have no wait-free register implementation, yet
   the construction replicates one); [bank] exercises conditional
   commands (withdrawals can fail deterministically, and every replica
   agrees on which did). *)

open Shm

(* Commands are ("tag", arg) pairs; [tagged] is the shared decoder. *)
let tagged cmd =
  match Value.view cmd with
  | Value.Pair (tag, arg) -> (
    match Value.view tag with Value.Str s -> Some (s, arg) | _ -> None)
  | _ -> None

(* counter: commands ("add", x) *)
let counter =
  {
    Rsm.init = 0;
    apply =
      (fun s cmd ->
        match tagged cmd with
        | Some ("add", x) -> s + Value.to_int x
        | _ -> s);
  }

let add x = Value.pair (Value.str "add") (Value.int x)

(* last-writer-wins register: commands ("write", v) *)
let register =
  {
    Rsm.init = Value.bot;
    apply =
      (fun s cmd ->
        match tagged cmd with Some ("write", v) -> v | _ -> s);
  }

let write v = Value.pair (Value.str "write") v

(* FIFO queue: commands ("enq", v) and ("deq", _).  The state is
   (queue contents, dequeued-so-far), both in order; dequeue on empty
   is a no-op recorded as ⊥. *)
type queue_state = { items : Value.t list; dequeued : Value.t list }

let fifo_queue =
  {
    Rsm.init = { items = []; dequeued = [] };
    apply =
      (fun s cmd ->
        match tagged cmd with
        | Some ("enq", v) -> { s with items = s.items @ [ v ] }
        | Some ("deq", _) -> (
          match s.items with
          | [] -> { s with dequeued = s.dequeued @ [ Value.bot ] }
          | x :: rest -> { items = rest; dequeued = s.dequeued @ [ x ] })
        | _ -> s);
  }

let enq v = Value.pair (Value.str "enq") v
let deq = Value.pair (Value.str "deq") Value.bot

(* bank account: ("deposit", x) always applies; ("withdraw", x) applies
   only when covered.  Balance can therefore never go negative, on any
   replica, regardless of proposal interleaving. *)
let bank =
  {
    Rsm.init = 0;
    apply =
      (fun balance cmd ->
        match tagged cmd with
        | Some ("deposit", x) -> balance + Value.to_int x
        | Some ("withdraw", x) when Value.to_int x <= balance ->
          balance - Value.to_int x
        | _ -> balance);
  }

let deposit x = Value.pair (Value.str "deposit") (Value.int x)
let withdraw x = Value.pair (Value.str "withdraw") (Value.int x)
