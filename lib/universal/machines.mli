(** A catalog of state machines for the universal construction, with
    their command constructors.  Commands are Shm.Value encodings so
    they travel through the agreement layer unchanged. *)

(** Decode a command into its [(tag, argument)] pair, if it is one. *)
val tagged : Shm.Value.t -> (string * Shm.Value.t) option

(** Counter; commands {!add}. *)
val counter : int Rsm.machine

val add : int -> Shm.Value.t

(** Last-writer-wins register; commands {!write}. *)
val register : Shm.Value.t Rsm.machine

val write : Shm.Value.t -> Shm.Value.t

type queue_state = { items : Shm.Value.t list; dequeued : Shm.Value.t list }

(** FIFO queue — the object Herlihy's universality paper motivates
    with; commands {!enq} and {!deq} (dequeue of empty records ⊥). *)
val fifo_queue : queue_state Rsm.machine

val enq : Shm.Value.t -> Shm.Value.t
val deq : Shm.Value.t

(** Bank account: deposits always apply, withdrawals only when covered
    — the balance is never negative on any replica. *)
val bank : int Rsm.machine

val deposit : int -> Shm.Value.t
val withdraw : int -> Shm.Value.t
