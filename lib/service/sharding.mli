(** Key → shard routing.

    Clients address the service by key; keys hash onto independent
    repeated-agreement shards.  Routing is pure: the same key maps to
    the same shard in every run, on every domain (Value hashes are
    structural), so a replayed load run exercises the same shards. *)

(** [shard_of_key ~shards key] in [\[0, shards)].  Raises
    [Invalid_argument] if [shards <= 0]. *)
val shard_of_key : shards:int -> Shm.Value.t -> int

(** [shard_of_int ~shards i] routes the integer key [i] — the common
    case for generated load. *)
val shard_of_int : shards:int -> int -> int
