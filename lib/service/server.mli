(** The serving facade: route, admit, decide, reply.

    A server owns [shards] independent repeated-agreement instance
    spaces and (optionally) a pool of worker domains stepping them.
    Clients submit [(key, command)] pairs; the key routes to a shard
    ({!Sharding}), the command joins that shard's next batch, one
    agreement slot decides the batch, and the ticket resolves with the
    application's reply.  Total shared-memory cost:
    [shards × min(n+2m−k, n)] registers, independent of how many
    commands are ever served.

    Two progress modes: [domains > 0] spawns a {!Pool} on {!start}
    (shard [i] stepped by worker [i mod domains]); [domains = 0] means
    the caller drives progress with {!pump} — single-domain and fully
    deterministic, the mode seeded replay uses. *)

type t

(** [create ~shards ~domains params] builds a stopped server.
    Defaults: batches of ≤ 16 commands per slot, a 64-command
    in-flight window per shard, the register app, history recording
    on, seed 0.  [patience] is per-shard group commit — see
    {!Shard.create}. *)
val create :
  ?batch_max:int ->
  ?window:int ->
  ?impl:Agreement.Instances.impl ->
  ?max_steps_per_slot:int ->
  ?quantum:int ->
  ?patience:int ->
  ?history:bool ->
  ?app:App.t ->
  ?seed:int ->
  shards:int ->
  domains:int ->
  Agreement.Params.t ->
  t

val params : t -> Agreement.Params.t
val app : t -> App.t
val app_name : t -> string
val shard_count : t -> int
val domains : t -> int
val seed : t -> int

(** Completion hook, called (from the stepping domain) once per ticket
    after its slot commits.  Set it before {!start}. *)
val set_on_complete : t -> (Session.ticket -> unit) -> unit

(** The shard a key routes to. *)
val route : t -> Shm.Value.t -> int

(** Submit without blocking; [None] when the target shard's window is
    full (backpressure). *)
val try_submit : t -> key:Shm.Value.t -> ?tag:int -> Shm.Value.t -> Session.ticket option

(** Submit, blocking while the target shard's window is full. *)
val submit : t -> key:Shm.Value.t -> ?tag:int -> Shm.Value.t -> Session.ticket

(** Block until the ticket's slot commits; returns the reply. *)
val await : t -> Session.ticket -> Shm.Value.t

(** A bound session: submit/await closures fixed to one key and tag. *)
val connect : t -> key:Shm.Value.t -> tag:int -> Session.t

(** Spawn the worker pool (no-op when [domains = 0] or already
    started). *)
val start : t -> unit

(** Step every shard once on the calling domain; [true] if any slot
    was decided.  Only meaningful with [domains = 0]. *)
val pump : t -> bool

(** Block until no commands are in flight anywhere. *)
val drain : t -> unit

(** {!drain}, then stop and join the pool. *)
val stop : t -> unit

(** Fail-stop replica [pid] of one shard from its next slot on;
    [false] if it was already dead or the last one standing. *)
val crash_replica : t -> shard:int -> pid:int -> bool

val stats : t -> Shard.stats list
val shard : t -> int -> Shard.t
val metrics : t -> (int * Obs.Metrics.t) list

(** Registers written across all shards — the space bill of the whole
    service. *)
val registers_used : t -> int

(** Grade every shard with the conformance oracles: validity +
    k-agreement of the layer below always; register linearizability of
    the recorded command history when the app is the register.
    [max_ops] (default 400) caps the per-shard Wing–Gong search.  Call
    only on a stopped (or never-started) server. *)
val verdict : ?max_ops:int -> t -> (unit, string list) result
