(* A fixed pool of worker domains running one work function each.

   The work function returns whether it made progress; idle workers
   spin on Domain.cpu_relax rather than sleeping — the pool exists for
   closed-loop benchmarking, where the next batch is rarely far away
   and wake-up latency would dominate. *)

type t = {
  workers : unit Domain.t list;
  stop_flag : bool Atomic.t;
}

let spawn ~domains ~work =
  if domains <= 0 then invalid_arg "Pool.spawn: domains must be positive";
  let stop_flag = Atomic.make false in
  let workers =
    List.init domains (fun worker ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop_flag) do
              if not (work ~worker) then Domain.cpu_relax ()
            done))
  in
  { workers; stop_flag }

let size t = List.length t.workers

let stop t =
  Atomic.set t.stop_flag true;
  List.iter Domain.join t.workers
