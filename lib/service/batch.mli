(** Batch encoding: many client commands, one agreement proposal.

    Commands drained from a shard's queue are packed into a single
    [("batch", [cmd; ...])] value; one agreement instance decides the
    whole batch.  Since every live replica proposes the same batch,
    validity pins the decision — one decided slot commits the batch in
    submission order. *)

(** Pack commands, in order, into one proposal value. *)
val encode : Shm.Value.t list -> Shm.Value.t

(** Inverse of {!encode}; [None] if the value is not a batch. *)
val decode : Shm.Value.t -> Shm.Value.t list option

(** Number of commands in a batch value; 0 if not a batch. *)
val size : Shm.Value.t -> int

(** Fold a decided batch through an application: final state and the
    per-command replies, in batch order. *)
val apply_all :
  App.t -> Shm.Value.t -> Shm.Value.t list -> Shm.Value.t * Shm.Value.t list
