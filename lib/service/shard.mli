(** One shard: a bounded command queue in front of one
    repeated-agreement instance space ({!Universal.Rsm.Stepper}).

    Each call to {!run_slot} drains up to [batch_max] queued commands,
    packs them into one {!Batch} proposal, decides one agreement slot
    with every live replica proposing that batch, applies the committed
    commands to the application state, and resolves their tickets.
    [window] bounds in-flight commands: {!try_admit} refuses above it
    ({!admit} blocks) — the shard's backpressure.

    Threading: submission, await, and control calls are safe from any
    domain; {!run_slot} must only ever be called by the shard's single
    owning worker (shards are statically partitioned over the pool and
    never migrate).  {!config}, {!log}, {!history}, and {!app_state}
    read worker-owned state and are only safe once the shard is idle
    and the pool stopped (the verdict path). *)

type t

type stats = {
  shard : int;
  slots : int;       (** agreement slots decided *)
  committed : int;   (** commands committed *)
  steps : int;       (** simulator steps across all slots *)
  registers : int;   (** registers written — stays ≤ min(n+2m−k, n) *)
  alive : int;       (** live replicas *)
  pending : int;     (** in-flight commands *)
  stuck : bool;
}

(** [create ~id ~batch_max ~window params ~app ()] builds an idle
    shard.  Defaults: space-optimal snapshot choice, 2M steps per
    slot, 800-step solo bursts, patience 8, history recording on.
    [patience] is the group-commit knob: a worker pass that finds
    fewer than [batch_max] queued commands skips the slot up to
    [patience] consecutive times before deciding the thin batch
    anyway, letting batches fatten instead of burning one agreement
    slot per command.  Raises [Invalid_argument] if [batch_max <= 0]
    or [window < batch_max]. *)
val create :
  ?impl:Agreement.Instances.impl ->
  ?max_steps_per_slot:int ->
  ?quantum:int ->
  ?patience:int ->
  ?history:bool ->
  id:int ->
  batch_max:int ->
  window:int ->
  Agreement.Params.t ->
  app:App.t ->
  unit ->
  t

val id : t -> int
val params : t -> Agreement.Params.t

(** The shard's metric registry ([service.slots], [service.commands],
    [service.steps], [service.batch_size], [service.in_flight]). *)
val metrics : t -> Obs.Metrics.t

(** Admit a ticket unless the in-flight window is full. *)
val try_admit : t -> Session.ticket -> bool

(** Admit, blocking while the window is full. *)
val admit : t -> Session.ticket -> unit

(** Block until the ticket commits; returns the reply.  Raises
    [Failure] if the shard got stuck.  Needs a running pool (or
    interleaved {!run_slot} calls) to make progress. *)
val await : t -> Session.ticket -> Shm.Value.t

(** In-flight commands right now. *)
val pending : t -> int

(** Block until no commands are in flight. *)
val wait_idle : t -> unit

(** Fail-stop a replica from the next slot on: it no longer proposes
    and is never scheduled again.  Refuses (returns [false]) to crash
    the last live replica. *)
val crash_replica : t -> int -> bool

val alive : t -> int list

(** Decide one slot (worker only).  [None] if the queue was empty, or
    if the batch was thin and patience has not run out yet (group
    commit); otherwise the tickets resolved by this slot, in batch
    order.  [force] decides whatever is queued immediately, ignoring
    patience — the deterministic [pump] path uses it. *)
val run_slot : ?force:bool -> t -> Session.ticket list option

val stats : t -> stats
val is_stuck : t -> bool

(** {2 Quiesced inspection — stop the pool first} *)

(** The underlying configuration, for
    {!Conform.Rsm_history.check_agreement}. *)
val config : t -> Shm.Config.t

(** Application state after every committed command. *)
val app_state : t -> Shm.Value.t

(** Committed commands, oldest first. *)
val log : t -> Shm.Value.t list

(** Per-command records (when history recording is on), oldest first —
    feed {!Conform.Rsm_history.check_register}. *)
val history : t -> Conform.Rsm_history.record list

val records_history : t -> bool
