(* The serving facade: route, admit, decide, reply.

   A server owns [shards] independent repeated-agreement shards and an
   optional pool of worker domains that steps them (shard i belongs to
   worker i mod domains).  With domains = 0 no pool exists and the
   caller drives progress with [pump] — the fully deterministic mode
   (single domain, no scheduling noise) that seeded replay tests use. *)

open Shm

type t = {
  params : Agreement.Params.t;
  app : App.t;
  shards : Shard.t array;
  domains : int;
  seed : int;
  uid : int Atomic.t;
  on_complete : (Session.ticket -> unit) option Atomic.t;
  mutable pool : Pool.t option;
}

let create ?(batch_max = 16) ?(window = 64) ?impl ?max_steps_per_slot ?quantum
    ?patience ?(history = true) ?(app = App.register) ?(seed = 0) ~shards
    ~domains (params : Agreement.Params.t) =
  if shards <= 0 then invalid_arg "Server.create: shards must be positive";
  if domains < 0 then invalid_arg "Server.create: domains must be >= 0";
  let rng = Rng.create seed in
  let shards =
    Array.init shards (fun id ->
        (* per-shard quantum rotation seedable later; today the seed
           only decorrelates ids, slot schedules are solo-burst *)
        ignore (Rng.int rng 1_000_000);
        Shard.create ?impl ?max_steps_per_slot ?quantum ?patience ~history ~id
          ~batch_max ~window params ~app ())
  in
  {
    params;
    app;
    shards;
    domains;
    seed;
    uid = Atomic.make 0;
    on_complete = Atomic.make None;
    pool = None;
  }

let params t = t.params
let app t = t.app
let app_name t = t.app.App.name
let shard_count t = Array.length t.shards
let domains t = t.domains
let seed t = t.seed
let set_on_complete t f = Atomic.set t.on_complete (Some f)

let route t key = Sharding.shard_of_key ~shards:(Array.length t.shards) key

let make_ticket t ~tag ~shard cmd =
  Session.make_ticket
    ~uid:(Atomic.fetch_and_add t.uid 1)
    ~tag ~shard ~cmd ~submit_ns:(Conform.Clock.now_ns ())

let try_submit t ~key ?(tag = -1) cmd =
  let shard = route t key in
  let ticket = make_ticket t ~tag ~shard cmd in
  if Shard.try_admit t.shards.(shard) ticket then Some ticket else None

let submit t ~key ?(tag = -1) cmd =
  let shard = route t key in
  let ticket = make_ticket t ~tag ~shard cmd in
  Shard.admit t.shards.(shard) ticket;
  ticket

let await t (ticket : Session.ticket) = Shard.await t.shards.(ticket.Session.shard) ticket

let connect t ~key ~tag =
  {
    Session.tag;
    key;
    submit = (fun cmd -> submit t ~key ~tag cmd);
    try_submit = (fun cmd -> try_submit t ~key ~tag cmd);
    await = (fun ticket -> await t ticket);
  }

(* --- progress --- *)

let complete t tickets =
  match Atomic.get t.on_complete with
  | None -> ()
  | Some f -> List.iter f tickets

let step_shard ?force t shard =
  match Shard.run_slot ?force shard with
  | None -> false
  | Some tickets ->
    complete t tickets;
    true

(* pump forces: the caller is the only engine, so group-commit skips
   would just respin the pump loop without fattening any batch *)
let pump t =
  Array.fold_left
    (fun progress shard -> step_shard ~force:true t shard || progress)
    false t.shards

let start t =
  if t.domains > 0 && t.pool = None then
    t.pool <-
      Some
        (Pool.spawn ~domains:t.domains ~work:(fun ~worker ->
             let progress = ref false in
             Array.iteri
               (fun i shard ->
                 if i mod t.domains = worker then
                   if step_shard t shard then progress := true)
               t.shards;
             !progress))

let drain t =
  match t.pool with
  | Some _ -> Array.iter Shard.wait_idle t.shards
  | None -> while pump t do () done

let stop t =
  drain t;
  match t.pool with
  | None -> ()
  | Some pool ->
    Pool.stop pool;
    t.pool <- None

(* --- control and inspection --- *)

let crash_replica t ~shard ~pid =
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Server.crash_replica: no such shard";
  Shard.crash_replica t.shards.(shard) pid

let stats t = Array.to_list (Array.map Shard.stats t.shards)
let shard t i = t.shards.(i)
let metrics t = Array.to_list (Array.mapi (fun i s -> (i, Shard.metrics s)) t.shards)

let registers_used t =
  Array.fold_left (fun acc s -> acc + (Shard.stats s).Shard.registers) 0 t.shards

(* Verdict: grade every shard with the conformance oracles.  Agreement
   (validity + k-agreement per decided instance) always applies; the
   register linearizability check applies when the app is the register
   and histories were recorded.  [max_ops] caps the Wing–Gong search
   per shard (the checker is exponential in overlap). *)
let verdict ?(max_ops = 400) t =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  Array.iter
    (fun shard ->
      let id = Shard.id shard in
      (match
         Conform.Rsm_history.check_agreement ~k:t.params.Agreement.Params.k
           (Shard.config shard)
       with
      | Ok () -> ()
      | Error e -> err "shard %d agreement: %s" id e);
      if Shard.is_stuck shard then err "shard %d is stuck" id;
      if t.app.App.name = "register" && Shard.records_history shard then begin
        let records = Shard.history shard in
        let truncated =
          if List.length records > max_ops then List.filteri (fun i _ -> i < max_ops) records
          else records
        in
        match Conform.Rsm_history.check_register truncated with
        | Ok () -> ()
        | Error e -> err "shard %d linearizability: %s" id e
      end)
    t.shards;
  match !errors with [] -> Ok () | es -> Error (List.rev es)
