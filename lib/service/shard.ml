(* One shard: a bounded command queue in front of one repeated-agreement
   instance space (Rsm.Stepper).

   Concurrency protocol.  All mutable fields are guarded by [mutex],
   with two exceptions: [stepper] and [adopted] are touched only by the
   single worker that owns the shard (shards are statically partitioned
   over the pool's domains and never migrate), and Obs metrics are
   updated only by that worker too.  Submitters and awaiters block on
   [changed], which is broadcast after every commit.

   Backpressure.  [window] bounds in-flight commands (admitted, not yet
   committed): [try_admit] refuses above it, [admit] blocks.  Since a
   slot commits at most [batch_max] commands, the window also bounds
   how far a client can run ahead of the decided log.

   Space.  The stepper's register footprint is min(n+2m−k, n) and does
   not grow with slots — the shard serves forever in constant shared
   memory.  Queue/log/history are local bookkeeping, not registers. *)

open Shm
open Universal

type stats = {
  shard : int;
  slots : int;
  committed : int;
  steps : int;
  registers : int;
  alive : int;
  pending : int;
  stuck : bool;
}

type t = {
  id : int;
  params : Agreement.Params.t;
  app : App.t;
  batch_max : int;
  window : int;
  quantum : int;
  patience : int;
  mutable skips : int;  (* consecutive thin-batch skips (worker-owned) *)
  mutex : Mutex.t;
  changed : Condition.t;
  queue : Session.ticket Queue.t;
  mutable in_flight : int;
  mutable stepper : Rsm.Stepper.t;
  mutable adopted : bool;  (* journaled memory detached onto the worker *)
  mutable alive : int list;
  mutable app_state : Value.t;
  mutable committed : int;
  (* mirrors of worker-owned stepper counters, published under [mutex]
     so [stats] never touches the stepper from another domain *)
  mutable slots : int;
  mutable steps_total : int;
  mutable registers : int;
  mutable stuck : bool;
  mutable log_rev : Value.t list;
  record_history : bool;
  mutable history_rev : Conform.Rsm_history.record list;
  metrics : Obs.Metrics.t;
  m_slots : Obs.Metrics.Counter.t;
  m_commands : Obs.Metrics.Counter.t;
  m_steps : Obs.Metrics.Counter.t;
  m_batch : Obs.Metrics.Histogram.t;
  m_in_flight : Obs.Metrics.Gauge.t;
}

let create ?impl ?(max_steps_per_slot = 2_000_000) ?(quantum = 800)
    ?(patience = 8) ?(history = true) ~id ~batch_max ~window
    (params : Agreement.Params.t) ~app () =
  if batch_max <= 0 then invalid_arg "Shard.create: batch_max must be positive";
  if window < batch_max then
    invalid_arg "Shard.create: window must be at least batch_max";
  let metrics = Obs.Metrics.create () in
  {
    id;
    params;
    app;
    batch_max;
    window;
    quantum;
    patience;
    skips = 0;
    mutex = Mutex.create ();
    changed = Condition.create ();
    queue = Queue.create ();
    in_flight = 0;
    stepper = Rsm.Stepper.create ?impl ~max_steps_per_slot params;
    adopted = false;
    alive = List.init params.Agreement.Params.n Fun.id;
    app_state = app.App.init;
    committed = 0;
    slots = 0;
    steps_total = 0;
    registers = 0;
    stuck = false;
    log_rev = [];
    record_history = history;
    history_rev = [];
    metrics;
    m_slots = Obs.Metrics.counter metrics "service.slots";
    m_commands = Obs.Metrics.counter metrics "service.commands";
    m_steps = Obs.Metrics.counter metrics "service.steps";
    m_batch = Obs.Metrics.histogram metrics "service.batch_size";
    m_in_flight = Obs.Metrics.gauge metrics "service.in_flight";
  }

let id t = t.id
let params t = t.params
let metrics t = t.metrics

(* --- submission side (any domain) --- *)

let try_admit t ticket =
  Mutex.lock t.mutex;
  let ok = (not t.stuck) && t.in_flight < t.window in
  if ok then begin
    t.in_flight <- t.in_flight + 1;
    Queue.push ticket t.queue
  end;
  Mutex.unlock t.mutex;
  ok

let admit t ticket =
  Mutex.lock t.mutex;
  while t.in_flight >= t.window && not t.stuck do
    Condition.wait t.changed t.mutex
  done;
  if t.stuck then begin
    Mutex.unlock t.mutex;
    failwith (Printf.sprintf "service: shard %d is stuck" t.id)
  end;
  t.in_flight <- t.in_flight + 1;
  Queue.push ticket t.queue;
  Mutex.unlock t.mutex

let await t (ticket : Session.ticket) =
  Mutex.lock t.mutex;
  let rec loop () =
    match ticket.Session.state with
    | Session.Done d ->
      Mutex.unlock t.mutex;
      d.reply
    | Session.Failed msg ->
      Mutex.unlock t.mutex;
      failwith ("service: " ^ msg)
    | Session.Pending ->
      Condition.wait t.changed t.mutex;
      loop ()
  in
  loop ()

let pending t =
  Mutex.lock t.mutex;
  let p = t.in_flight in
  Mutex.unlock t.mutex;
  p

let wait_idle t =
  Mutex.lock t.mutex;
  while t.in_flight > 0 && not t.stuck do
    Condition.wait t.changed t.mutex
  done;
  Mutex.unlock t.mutex

(* --- control plane --- *)

let crash_replica t pid =
  Mutex.lock t.mutex;
  let crashed = List.mem pid t.alive && List.length t.alive > 1 in
  if crashed then t.alive <- List.filter (fun p -> p <> pid) t.alive;
  Mutex.unlock t.mutex;
  crashed

let alive t =
  Mutex.lock t.mutex;
  let a = t.alive in
  Mutex.unlock t.mutex;
  a

(* --- worker side (single owning domain) --- *)

(* Deterministic per-slot schedule: solo bursts over the live pids,
   rotated by slot number so successive slots favor different leaders.
   Solo bursts keep termination guaranteed (obstruction-freedom), and
   the rotation point doubles as the determinism hook for replay. *)
let slot_sched t ~alive ~slot =
  let a = Array.of_list alive in
  let len = Array.length a in
  let rot = slot mod len in
  let groups =
    List.init len (fun i -> [ a.((i + rot) mod len) ])
  in
  Schedule.alternating ~burst:t.quantum groups

let fail_tickets t tickets msg =
  Mutex.lock t.mutex;
  t.stuck <- true;
  t.slots <- Rsm.Stepper.slot t.stepper;
  t.steps_total <- Rsm.Stepper.steps t.stepper;
  List.iter
    (fun (tk : Session.ticket) -> tk.Session.state <- Session.Failed msg)
    tickets;
  t.in_flight <- t.in_flight - List.length tickets;
  Condition.broadcast t.changed;
  Mutex.unlock t.mutex

let run_slot ?(force = false) t =
  if not t.adopted then begin
    t.stepper <- Rsm.Stepper.unshare t.stepper;
    t.adopted <- true
  end;
  Mutex.lock t.mutex;
  let queued = Queue.length t.queue in
  if queued = 0 || t.stuck then begin
    Mutex.unlock t.mutex;
    None
  end
  else if (not force) && queued < t.batch_max && t.skips < t.patience then begin
    (* group commit: an agreement slot is the expensive unit, so let a
       thin batch fatten for a few worker passes before deciding *)
    t.skips <- t.skips + 1;
    Mutex.unlock t.mutex;
    None
  end
  else begin
    t.skips <- 0;
    let batch_n = min t.batch_max (Queue.length t.queue) in
    let tickets = List.init batch_n (fun _ -> Queue.pop t.queue) in
    let alive = t.alive in
    Mutex.unlock t.mutex;
    let cmds = List.map (fun (tk : Session.ticket) -> tk.Session.cmd) tickets in
    let proposal = Batch.encode cmds in
    let sched = slot_sched t ~alive ~slot:(Rsm.Stepper.slot t.stepper) in
    let proposals pid = if List.mem pid alive then Some proposal else None in
    let tr = Obs.Trace.attached () in
    let span =
      match tr with
      | None -> None
      | Some tr ->
        Some
          ( tr,
            Obs.Trace.begin_span tr ~cat:"service"
              ~args:
                [
                  ("shard", Obs.Json.Int t.id);
                  ("slot", Obs.Json.Int (Rsm.Stepper.slot t.stepper + 1));
                  ("batch", Obs.Json.Int batch_n);
                ]
              "service.slot" )
    in
    let outcome = Rsm.Stepper.step_slot ~sched t.stepper ~proposals in
    (match span with
    | None -> ()
    | Some (tr, ctx) ->
      Obs.Trace.end_span tr
        ~args:
          [
            ( "steps",
              Obs.Json.Int
                (Rsm.Stepper.steps outcome.Rsm.Stepper.stepper
                - Rsm.Stepper.steps t.stepper) );
          ]
        ctx);
    let slot_steps =
      Rsm.Stepper.steps outcome.Rsm.Stepper.stepper - Rsm.Stepper.steps t.stepper
    in
    t.stepper <- outcome.Rsm.Stepper.stepper;
    if not outcome.Rsm.Stepper.quiescent then begin
      fail_tickets t tickets
        (Printf.sprintf "shard %d: slot %d exhausted its step budget" t.id
           (Rsm.Stepper.slot t.stepper));
      Some tickets
    end
    else begin
      (* All live replicas proposed the same batch, so by validity every
         decision is that batch; take the first and decode defensively. *)
      let decided =
        match outcome.Rsm.Stepper.decisions with
        | (_, v) :: _ -> Batch.decode v
        | [] -> None
      in
      match decided with
      | Some committed_cmds
        when List.length committed_cmds = List.length tickets ->
        let slot_no = Rsm.Stepper.slot t.stepper in
        let state', replies = Batch.apply_all t.app t.app_state committed_cmds in
        let finish_ns = Conform.Clock.now_ns () in
        Mutex.lock t.mutex;
        t.app_state <- state';
        t.committed <- t.committed + List.length committed_cmds;
        t.slots <- slot_no;
        t.steps_total <- Rsm.Stepper.steps t.stepper;
        t.registers <- Rsm.Stepper.registers_used t.stepper;
        List.iter2
          (fun (tk : Session.ticket) reply ->
            tk.Session.state <- Session.Done { reply; slot = slot_no; finish_ns };
            if t.record_history then
              t.history_rev <-
                {
                  Conform.Rsm_history.cmd = tk.Session.cmd;
                  reply;
                  start = tk.Session.submit_ns;
                  finish = finish_ns;
                }
                :: t.history_rev)
          tickets replies;
        t.in_flight <- t.in_flight - List.length tickets;
        t.log_rev <- List.rev_append committed_cmds t.log_rev;
        let in_flight_now = t.in_flight in
        Condition.broadcast t.changed;
        Mutex.unlock t.mutex;
        Obs.Metrics.Counter.add t.m_slots 1;
        Obs.Metrics.Counter.add t.m_commands (List.length committed_cmds);
        Obs.Metrics.Counter.add t.m_steps slot_steps;
        Obs.Metrics.Histogram.observe t.m_batch (List.length committed_cmds);
        Obs.Metrics.Gauge.set t.m_in_flight (float_of_int in_flight_now);
        Some tickets
      | _ ->
        fail_tickets t tickets
          (Printf.sprintf "shard %d: slot decided a non-batch value" t.id);
        Some tickets
    end
  end

(* --- inspection (quiesced or lock-protected reads) --- *)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      shard = t.id;
      slots = t.slots;
      committed = t.committed;
      steps = t.steps_total;
      registers = t.registers;
      alive = List.length t.alive;
      pending = t.in_flight;
      stuck = t.stuck;
    }
  in
  Mutex.unlock t.mutex;
  s

let config t = Rsm.Stepper.config t.stepper
let app_state t = t.app_state
let log t = List.rev t.log_rev
let history t = List.rev t.history_rev
let records_history t = t.record_history
let is_stuck t = t.stuck
