(** Replicated applications served by the shards.

    An application is a sequential state machine with replies: [apply
    state cmd] returns the next state and the reply the submitting
    client receives when the command commits.  Every replica of a shard
    applies the same committed sequence, so with consensus underneath
    (k = 1) the replies are those of an atomic object.

    Commands follow the {!Universal.Machines} convention —
    [("tag", arg)] pairs — so the Machines constructors
    ([Machines.add], [Machines.write]) build service commands too. *)

type t = {
  name : string;
  init : Shm.Value.t;
  apply : Shm.Value.t -> Shm.Value.t -> Shm.Value.t * Shm.Value.t;
      (** [apply state cmd] = (state', reply) *)
}

(** The [("read", ⊥)] command, understood by every catalog app: reply
    the current state, leave it unchanged. *)
val read : Shm.Value.t

(** Integer counter: [("add", x)] replies the new total. *)
val counter : t

(** Last-writer-wins register: [("write", v)] replies the previous
    value; [("read", _)] replies the current one.  The linearizability
    vehicle — see {!Conform.Rsm_history.check_register}. *)
val register : t

val all : t list
val by_name : string -> t option
