(** Client sessions and tickets — the async submission surface.

    Submitting a command yields a {!ticket} immediately; the command
    commits later, when its shard's next agreement slot decides a batch
    containing it.  A {!t} is a connected session: a key (fixing the
    shard), a client tag, and the submit/await closures bound to one
    server ({!Server.connect}). *)

type state =
  | Pending  (** submitted, not yet decided *)
  | Done of { reply : Shm.Value.t; slot : int; finish_ns : int }
      (** committed in [slot]; [reply] is the application's answer *)
  | Failed of string  (** the shard could not commit it (stuck slot) *)

type ticket = {
  uid : int;           (** unique per server *)
  tag : int;           (** caller's correlation id (e.g. client index) *)
  shard : int;         (** shard the command was routed to *)
  cmd : Shm.Value.t;
  submit_ns : int;     (** monotonic ns at submission *)
  mutable state : state;
      (** owned by shard [shard]: written, and safely read, only under
          that shard's lock or from its completion callback *)
}

type t = {
  tag : int;
  key : Shm.Value.t;
  submit : Shm.Value.t -> ticket;             (** blocks on backpressure *)
  try_submit : Shm.Value.t -> ticket option;  (** [None] when the window is full *)
  await : ticket -> Shm.Value.t;              (** blocks until committed *)
}

val make_ticket :
  uid:int -> tag:int -> shard:int -> cmd:Shm.Value.t -> submit_ns:int -> ticket

val is_done : ticket -> bool
val reply : ticket -> Shm.Value.t option

(** Submission-to-commit latency, once done. *)
val latency_ns : ticket -> int option

(** The slot that committed the ticket, once done. *)
val slot : ticket -> int option
