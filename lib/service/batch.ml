(* Batch encoding: many client commands, one agreement proposal.

   A slot's proposal is ("batch", [cmd; ...]).  Every live replica of a
   shard proposes the same drained batch, so by validity the decided
   value is that batch regardless of k — deciding one agreement
   instance commits batch_max commands at once.  This is where the
   space result earns its keep: the per-slot proposal grows with the
   batch, but the agreement layer's register footprint does not. *)

open Shm

let tag = Value.str "batch"

let encode cmds = Value.pair tag (Value.list cmds)

let decode v =
  match Value.view v with
  | Value.Pair (t, rest) when Value.equal t tag -> (
      match Value.view rest with Value.List cmds -> Some cmds | _ -> None)
  | _ -> None

let size v = match decode v with Some cmds -> List.length cmds | None -> 0

let apply_all (app : App.t) state cmds = List.fold_left_map app.App.apply state cmds
