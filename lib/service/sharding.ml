(* Key → shard routing.  Value hashes are structural and precomputed
   (hash-consing), so routing is O(1), deterministic across runs and
   across domains, and independent of interning order.  One extra mix
   round decorrelates the shard index from the raw hash, which callers
   also use for other purposes (state keys, interning). *)

open Shm

let salt = 0x5e47_a9c3

let shard_of_key ~shards key =
  if shards <= 0 then invalid_arg "Sharding.shard_of_key: shards must be positive";
  let h = Value.mix salt (Value.hash key) in
  h land max_int mod shards

let shard_of_int ~shards i = shard_of_key ~shards (Value.int i)
