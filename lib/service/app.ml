(* Replicated applications: what a shard's state machine does with each
   committed command.  Unlike Universal.Machines (a pure fold), a
   service application also produces a reply per command — the value
   the client's ticket resolves to.

   Command encodings reuse the Machines convention: ("tag", arg) pairs,
   so Machines.add / Machines.write build service commands too. *)

open Shm

type t = {
  name : string;
  init : Value.t;
  apply : Value.t -> Value.t -> Value.t * Value.t;
}

let read = Value.pair (Value.str "read") Value.bot

let counter =
  {
    name = "counter";
    init = Value.int 0;
    apply =
      (fun state cmd ->
        match Universal.Machines.tagged cmd with
        | Some ("add", x) ->
          let state' = Value.int (Value.to_int state + Value.to_int x) in
          (state', state')
        | Some ("read", _) -> (state, state)
        | _ -> (state, Value.bot));
  }

let register =
  {
    name = "register";
    init = Value.bot;
    apply =
      (fun state cmd ->
        match Universal.Machines.tagged cmd with
        | Some ("write", v) -> (v, state)
        | Some ("read", _) -> (state, state)
        | _ -> (state, Value.bot));
  }

let all = [ counter; register ]
let by_name name = List.find_opt (fun a -> a.name = name) all
