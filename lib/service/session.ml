(* Client sessions and tickets.

   A ticket is the async handle for one submitted command.  Its state
   field is mutable but owned by the shard it was routed to: every
   write (and every await-read) happens under that shard's mutex, and
   completion callbacks run after the state is published, so readers on
   other domains are synchronized through the same lock or through the
   callback queue's lock. *)

open Shm

type state =
  | Pending
  | Done of { reply : Value.t; slot : int; finish_ns : int }
  | Failed of string

type ticket = {
  uid : int;
  tag : int;
  shard : int;
  cmd : Value.t;
  submit_ns : int;
  mutable state : state;
}

type t = {
  tag : int;
  key : Value.t;
  submit : Value.t -> ticket;
  try_submit : Value.t -> ticket option;
  await : ticket -> Value.t;
}

let make_ticket ~uid ~tag ~shard ~cmd ~submit_ns =
  { uid; tag; shard; cmd; submit_ns; state = Pending }

let is_done ticket = match ticket.state with Done _ -> true | _ -> false

let reply ticket = match ticket.state with Done d -> Some d.reply | _ -> None

let latency_ns ticket =
  match ticket.state with
  | Done d -> Some (d.finish_ns - ticket.submit_ns)
  | _ -> None

let slot ticket = match ticket.state with Done d -> Some d.slot | _ -> None
