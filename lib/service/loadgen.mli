(** Closed-loop load generation with Zipfian key skew.

    Simulates [clients] independent clients from one driver thread:
    each client has a fixed key drawn once from a Zipf distribution
    (hot keys make hot shards), keeps exactly one command in flight,
    and submits its next command the moment the previous one commits.
    Everything derives from the seed, so runs are replayable — in pump
    mode (a [domains = 0] server) byte-for-byte, including every
    shard's committed log. *)

(** Zipf(θ) over [0..keys-1]: weight of key i ∝ 1/(i+1)^θ; θ = 0 is
    uniform. *)
module Zipf : sig
  type t

  (** Normalized weights — the distribution tests check against. *)
  val pmf : keys:int -> theta:float -> float array

  val create : keys:int -> theta:float -> seed:int -> t

  (** Draw one key (deterministic per seed). *)
  val sample : t -> int
end

type config = {
  clients : int;
  ops_per_client : int;
  keys : int;    (** key-space size (keys hash onto shards) *)
  theta : float; (** Zipf skew; 0 = uniform *)
  seed : int;
}

type report = {
  ops : int;              (** commands committed *)
  wall_ns : int;
  throughput_cps : float; (** committed commands per second *)
  p50_ns : float;         (** submit-to-commit latency quantiles *)
  p99_ns : float;
  max_ns : int;
  mean_ns : float;
  stalls : int;           (** submissions initially refused by backpressure *)
}

(** The default command stream for the counter app: [("add", 1)]. *)
val counter_workload : Shm.Rng.t -> client:int -> op:int -> Shm.Value.t

(** A read/write mix for the register app ([read_pct]% reads, default
    50); writes carry a unique [(client, op)] payload. *)
val register_workload :
  ?read_pct:int -> unit -> Shm.Rng.t -> client:int -> op:int -> Shm.Value.t

(** [run server cfg] starts the server (if it has domains), drives the
    closed loop to completion, and reports.  With a [domains = 0]
    server the driver pumps shards itself.  [command] overrides the
    app-matched default workload. *)
val run :
  ?command:(Shm.Rng.t -> client:int -> op:int -> Shm.Value.t) ->
  Server.t ->
  config ->
  report
