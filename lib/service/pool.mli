(** A fixed pool of worker domains.

    [spawn ~domains ~work] starts [domains] OCaml 5 domains; each loops
    calling [work ~worker] (with its index) until {!stop}.  [work]
    returns whether it made progress; idle workers spin politely
    ([Domain.cpu_relax]).  The server partitions shards statically over
    workers (shard [i] belongs to worker [i mod domains]), so a shard
    is only ever stepped by one domain. *)

type t

(** Raises [Invalid_argument] if [domains <= 0]. *)
val spawn : domains:int -> work:(worker:int -> bool) -> t

val size : t -> int

(** Signal all workers to finish their current iteration and join
    them.  Does not drain queues — see {!Server.stop}. *)
val stop : t -> unit
