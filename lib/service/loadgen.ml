(* Closed-loop load generation with Zipfian key skew.

   One driver thread simulates [clients] independent clients, each with
   a fixed key (drawn once from the Zipf distribution — hot keys make
   hot shards) and a private command stream.  Closed loop: a client has
   at most one command in flight and submits its next the moment the
   previous one completes.  Everything is derived from one seed, so a
   run is replayable: same seed, same keys, same commands, and — in
   pump mode (domains = 0) — the same committed logs.

   Completions arrive from worker domains via the server's on_complete
   hook; the hook only enqueues the client index under the driver's
   lock, and the driver does all accounting (latency histogram,
   resubmission), so no metric is ever touched concurrently. *)

open Shm

module Zipf = struct
  type t = { cdf : float array; rng : Rng.t }

  let pmf ~keys ~theta =
    if keys <= 0 then invalid_arg "Zipf.pmf: keys must be positive";
    let w = Array.init keys (fun i -> 1.0 /. (float_of_int (i + 1) ** theta)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    Array.map (fun x -> x /. total) w

  let create ~keys ~theta ~seed =
    let pmf = pmf ~keys ~theta in
    let cdf = Array.make keys 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i p ->
        acc := !acc +. p;
        cdf.(i) <- !acc)
      pmf;
    cdf.(keys - 1) <- 1.0;
    { cdf; rng = Rng.create seed }

  let sample t =
    let u = float_of_int (Rng.int t.rng 1_073_741_824) /. 1_073_741_824.0 in
    (* first index with cdf >= u *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
end

type config = {
  clients : int;
  ops_per_client : int;
  keys : int;
  theta : float;
  seed : int;
}

type report = {
  ops : int;
  wall_ns : int;
  throughput_cps : float;
  p50_ns : float;
  p99_ns : float;
  max_ns : int;
  mean_ns : float;
  stalls : int;
}

let counter_workload _rng ~client:_ ~op:_ = Universal.Machines.add 1

let register_workload ?(read_pct = 50) () rng ~client ~op =
  if Rng.int rng 100 < read_pct then App.read
  else Universal.Machines.write (Value.pair (Value.int client) (Value.int op))

let default_command server =
  match Server.app_name server with
  | "counter" -> counter_workload
  | _ -> register_workload ()

let run ?command server cfg =
  if cfg.clients <= 0 then invalid_arg "Loadgen.run: clients must be positive";
  if cfg.ops_per_client < 0 then invalid_arg "Loadgen.run: ops_per_client < 0";
  let command =
    match command with Some c -> c | None -> default_command server
  in
  let pump_mode = Server.domains server = 0 in
  let total = cfg.clients * cfg.ops_per_client in
  let latencies = Obs.Metrics.Histogram.create () in
  let master = Rng.create cfg.seed in
  let zipf = Zipf.create ~keys:(max 1 cfg.keys) ~theta:cfg.theta ~seed:(cfg.seed + 17) in
  let keys = Array.init cfg.clients (fun _ -> Value.int (Zipf.sample zipf)) in
  let rngs = Array.init cfg.clients (fun _ -> Rng.split master) in
  let done_ops = Array.make cfg.clients 0 in
  let pending = Array.make cfg.clients None in
  let completed = ref 0 in
  let stalls = ref 0 in
  let ready = Queue.create () in
  let parked = Queue.create () in
  let mutex = Mutex.create () in
  let nonempty = Condition.create () in
  Server.set_on_complete server (fun ticket ->
      Mutex.lock mutex;
      Queue.push ticket.Session.tag ready;
      Condition.signal nonempty;
      Mutex.unlock mutex);
  (* The command for op [i] is drawn exactly once — a backpressure
     retry re-submits the same stored command, so the per-client
     command stream is a pure function of the seed. *)
  let submit_next client =
    let op = done_ops.(client) in
    let cmd = command rngs.(client) ~client ~op in
    match Server.try_submit server ~key:keys.(client) ~tag:client cmd with
    | Some ticket -> pending.(client) <- Some ticket
    | None ->
      incr stalls;
      Queue.push (client, cmd) parked
  in
  let start_ns = Conform.Clock.now_ns () in
  if cfg.ops_per_client > 0 then begin
    Server.start server;
    for client = 0 to cfg.clients - 1 do
      submit_next client
    done;
    while !completed < total do
      (* reap completions *)
      Mutex.lock mutex;
      let batch = Queue.create () in
      Queue.transfer ready batch;
      Mutex.unlock mutex;
      if Queue.is_empty batch then begin
        if pump_mode then ignore (Server.pump server)
        else begin
          Mutex.lock mutex;
          while Queue.is_empty ready do
            Condition.wait nonempty mutex
          done;
          Mutex.unlock mutex
        end
      end
      else
        Queue.iter
          (fun client ->
            (match pending.(client) with
            | Some ticket -> (
                match Session.latency_ns ticket with
                | Some ns -> Obs.Metrics.Histogram.observe latencies ns
                | None -> ())
            | None -> ());
            pending.(client) <- None;
            done_ops.(client) <- done_ops.(client) + 1;
            incr completed;
            if done_ops.(client) < cfg.ops_per_client then submit_next client)
          batch;
      (* retry clients parked on backpressure (windows may have freed) *)
      let n_parked = Queue.length parked in
      for _ = 1 to n_parked do
        let client, cmd = Queue.pop parked in
        match Server.try_submit server ~key:keys.(client) ~tag:client cmd with
        | Some ticket -> pending.(client) <- Some ticket
        | None -> Queue.push (client, cmd) parked
      done
    done
  end;
  let wall_ns = max 1 (Conform.Clock.now_ns () - start_ns) in
  {
    ops = !completed;
    wall_ns;
    throughput_cps = float_of_int !completed /. (float_of_int wall_ns /. 1e9);
    p50_ns = Obs.Metrics.Histogram.p50 latencies;
    p99_ns = Obs.Metrics.Histogram.p99 latencies;
    max_ns = Obs.Metrics.Histogram.max_value latencies;
    mean_ns = Obs.Metrics.Histogram.mean latencies;
    stalls = !stalls;
  }
