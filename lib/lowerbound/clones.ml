(* The executable anonymous lower-bound construction (Section 5,
   Lemma 9 / Theorem 10), for groups of size m = 1.

   Idea of the paper's proof: in an anonymous system, fix for every
   input-value set V an execution α(V) by m processes that outputs all
   of V (Lemma 1), and let R(V) be the sequence of distinct registers it
   writes, in first-write order.  If an algorithm used only r registers,
   one could find c = ⌈(k+1)/m⌉ disjoint sets V₁..V_c whose α's share
   the same register sequence, and glue the α's together so that each is
   invisible to the others: clones paused before the last write to each
   register perform block writes that reset the registers between
   fragments.  The glued execution outputs cm ≥ k+1 values — a
   contradiction — unless n < ⌈(k+1)/m⌉(m + (r²−r)/2), i.e. unless
   r > √(m(n/k − 2)).

   This module *executes* that gluing against a register-starved
   anonymous algorithm, with singleton groups (m = 1, so α(Vℓ) is just a
   solo run and Lemma 1 is deterministic):

   - the "clone paused just before ℓ's last write to register x" is
     realized by saving process ℓ's local program state whenever it is
     poised to write x, and planting that state into a fresh process
     slot when the block write is due (Config.plant; see the equivalence
     argument in Config.clone_proc's comment — anonymity makes the
     planted slot indistinguishable from a literal step-shadowing
     clone);
   - the induction over the common register prefix is run forward:
     round j lets every group advance to the point where it is poised to
     write its (j+1)-st distinct register, after a clone block write has
     restored registers R₁..R_{j−1} to that group's own last values.

   Every group therefore runs exactly its solo execution α(Vℓ) and
   outputs its own input: k+1 distinct outputs in a one-shot k-set
   agreement — certified by the checker.  Against an algorithm with
   enough registers the construction runs out of clone slots, matching
   the theorem's process-count threshold. *)

open Shm

type outcome =
  | Violation of {
      outputs : Value.t list;    (* distinct outputs of the one instance *)
      config : Config.t;
      clones_used : int;
      registers_written : int list;  (* the common sequence R₁, R₂, ... *)
    }
  | Out_of_slots of { clones_used : int; slots : int; round : int }
      (* ran out of clone room: expected against well-provisioned
         algorithms, whose register count beats the √(m(n/k−2)) bound *)
  | Prefix_mismatch of { group : int; expected : int; got : int }
      (* groups' register sequences diverged (Lemma 9 would re-choose
         the value sets; with our deterministic algorithms the solo
         schedules align and this does not occur) *)
  | Stuck of string

(* Drive group [pid] solo, taking poised-write snapshots, until it is
   poised at a register outside [discovered] or outputs.  Returns the
   updated configuration, snapshots, and what stopped us. *)
let advance ~inputs config pid ~discovered ~snapshots ~max_steps =
  let rec go config snapshots steps =
    if steps > max_steps then `Stuck
    else
      match Config.proc config pid with
      | Program.Await _ ->
        let inst = Config.instance config pid + 1 in
        (match inputs ~pid ~instance:inst with
        | Some v ->
          let config, _ = Config.invoke config pid v in
          go config snapshots (steps + 1)
        | None -> `Stuck)
      | Program.Stop -> `Decided (config, snapshots)
      | Program.Yield _ ->
        let config, _ = Config.step config pid in
        `Decided (config, snapshots)
      | Program.Op (Program.Write (reg, _), _) as prog ->
        let snapshots = (reg, (prog, Config.instance config pid)) :: snapshots in
        if List.mem reg discovered then
          let config, _ = Config.step config pid in
          go config snapshots (steps + 1)
        else `Poised (config, snapshots, reg)
      | Program.Op ((Program.Read _ | Program.Scan _), _) ->
        let config, _ = Config.step config pid in
        go config snapshots (steps + 1)
  in
  go config snapshots 0

(* Latest snapshot of [group] poised at [reg], if any. *)
let snapshot_for snapshots reg =
  List.find_opt (fun (r, _) -> r = reg) snapshots |> Option.map snd

let attack ~params ~registers ~slots ~make_config ?(max_steps = 200_000) () =
  let k = params.Agreement.Params.k in
  let c = k + 1 in
  (* group ℓ = process slot ℓ, proposing value 1000 + ℓ *)
  let inputs ~pid ~instance =
    if instance = 1 && pid < c then Some (Value.int (1000 + pid)) else None
  in
  let config = (make_config ~registers ~slots : Config.t) in
  let next_slot = ref c in
  let clones_used = ref 0 in
  let exception Stop_attack of outcome in
  (* Clone block write: restore [discovered] minus the group's poised
     register to the group's own last-written values. *)
  let block_reset config snapshots ~group ~upto =
    List.fold_left
      (fun config reg ->
        match snapshot_for snapshots reg with
        | None ->
          (* The common-prefix property of Lemma 9 says every live group
             has written every earlier register; a gap means the chosen
             executions do not share a register sequence. *)
          raise
            (Stop_attack (Prefix_mismatch { group; expected = reg; got = -1 }))
        | Some (prog, inst) ->
          if !next_slot >= slots then
            raise
              (Stop_attack
                 (Out_of_slots
                    { clones_used = !clones_used; slots; round = List.length upto }));
          let slot = !next_slot in
          incr next_slot;
          incr clones_used;
          let config = Config.plant config ~slot prog ~instance:inst in
          fst (Config.step config slot))
      config upto
  in
  try
    (* Every group is poised at its first write after a write-free
       prefix; groups that decide drop out. *)
    let rec round config ~discovered ~live =
      (* live: (group, snapshots) assoc of undecided groups *)
      match live with
      | [] ->
        let outputs =
          Config.outputs config
          |> List.filter_map (fun (_, inst, v) -> if inst = 1 then Some v else None)
          |> Spec.Properties.distinct_values
        in
        if List.length outputs > k then
          Violation
            {
              outputs;
              config;
              clones_used = !clones_used;
              registers_written = List.rev discovered;
            }
        else Stuck (Fmt.str "only %d distinct outputs" (List.length outputs))
      | _ ->
        (* One induction step: each live group resets and advances. *)
        (* Block writes restore R₁..R_{j−1}; the group's own poised write
           re-establishes R_j (the newest discovered register), so it is
           excluded from the reset. *)
        let older = match discovered with [] -> [] | _ :: tl -> List.rev tl in
        let config, live', new_regs =
          List.fold_left
            (fun (config, live', new_regs) (g, snapshots) ->
              let config = block_reset config snapshots ~group:g ~upto:older in
              match
                advance ~inputs config g ~discovered ~snapshots ~max_steps
              with
              | `Decided (config, _) -> (config, live', new_regs)
              | `Poised (config, snapshots, reg) ->
                (config, (g, snapshots) :: live', (g, reg) :: new_regs)
              | `Stuck ->
                raise (Stop_attack (Stuck (Fmt.str "group %d made no progress" g))))
            (config, [], []) live
        in
        (match new_regs with
        | [] -> round config ~discovered ~live:(List.rev live')
        | (_, r0) :: rest ->
          (* Lemma 9 alignment: every still-live group must be poised at
             the same new register. *)
          List.iter
            (fun (g, r) ->
              if r <> r0 then
                raise (Stop_attack (Prefix_mismatch { group = g; expected = r0; got = r })))
            rest;
          round config ~discovered:(r0 :: discovered) ~live:(List.rev live'))
    in
    let live = List.init c (fun g -> (g, [])) in
    round config ~discovered:[] ~live
  with Stop_attack o -> o

let pp_outcome ppf = function
  | Violation { outputs; clones_used; registers_written; _ } ->
    Fmt.pf ppf "VIOLATION: %d distinct outputs (%a) using %d clones over registers %a"
      (List.length outputs)
      Fmt.(list ~sep:comma Value.pp)
      outputs clones_used
      Fmt.(list ~sep:comma int)
      registers_written
  | Out_of_slots { clones_used; slots; round } ->
    Fmt.pf ppf
      "construction failed: out of clone slots (%d used of %d, round %d) — algorithm \
       resisted"
      clones_used slots round
  | Prefix_mismatch { group; expected; got } ->
    Fmt.pf ppf "register sequences diverged at group %d (R%d vs R%d)" group expected got
  | Stuck msg -> Fmt.pf ppf "construction stuck: %s" msg
