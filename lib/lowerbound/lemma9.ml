(* The general Lemma 9 / Theorem 10 construction, for group size m ≥ 1.

   Section 5's proof glues c = ⌈(k+1)/m⌉ executions α(V₁)..α(V_c) — each
   by a disjoint group of m processes outputting its m values — into one
   execution where all cm ≥ k+1 values are output, using clones to reset
   the registers between fragments.  This module executes that gluing:

   1. Search one α execution for the first group (Alpha.search records
      its schedule).  Anonymity makes the same schedule, pid-renamed,
      the isomorphic α for every other group — which also guarantees
      Lemma 9's common register-sequence requirement by construction.
   2. Interleave the groups round by round: in round j each group, after
      a clone block write restoring R₁..R_{j−1} to its own last-written
      values, replays its schedule up to the first write of a new
      register (the fragments are verified step-by-step against the
      recording; any divergence aborts loudly).
   3. When every group's replay completes, instance 1 has ⌈(k+1)/m⌉·m
      distinct outputs — a k-Agreement violation certified by the
      checker.

   As in the m = 1 special case (Clones), "a clone paused just before
   the last write to register x" is realized by planting the writer's
   saved local state into a fresh slot (see Config.clone_proc's
   equivalence argument).  The slot budget matches the theorem's
   ⌈(k+1)/m⌉(m + (r²−r)/2) count. *)

open Shm

type outcome =
  | Violation of {
      outputs : Value.t list;
      config : Config.t;
      clones_used : int;
      registers_written : int list;
    }
  | Out_of_slots of { clones_used : int; slots : int; round : int }
  | Alpha_failed of string    (* no α execution found by the search *)
  | Diverged of string        (* replay left the recorded execution *)
  | Stuck of string

let pp_outcome ppf = function
  | Violation { outputs; clones_used; registers_written; _ } ->
    Fmt.pf ppf "VIOLATION: %d distinct outputs (%a) using %d clones over registers %a"
      (List.length outputs)
      Fmt.(list ~sep:comma Value.pp)
      outputs clones_used
      Fmt.(list ~sep:comma int)
      registers_written
  | Out_of_slots { clones_used; slots; round } ->
    Fmt.pf ppf
      "construction failed: out of clone slots (%d used of %d, round %d) — algorithm \
       resisted"
      clones_used slots round
  | Alpha_failed msg -> Fmt.pf ppf "no alpha execution found: %s" msg
  | Diverged msg -> Fmt.pf ppf "replay diverged from the recording: %s" msg
  | Stuck msg -> Fmt.pf ppf "construction stuck: %s" msg

type group = {
  members : int list;
  mutable cursor : Alpha.step list;          (* remaining schedule *)
  mutable snapshots : (int * (Program.t * int)) list;
      (* register -> poised state of its last writer (latest first) *)
}

let attack ~params ~registers ~slots ~make_config ?(alpha_tries = 3000)
    ?(max_steps = 30_000) () =
  let m = params.Agreement.Params.m and k = params.Agreement.Params.k in
  let c = (k + m) / m in
  (* group ℓ occupies slots ℓm .. ℓm+m−1; member i proposes 1000ℓ + i *)
  let member l i = (l * m) + i in
  let value l i = Value.int ((1000 * (l + 1)) + i) in
  let inputs ~pid ~instance =
    if instance = 1 && pid < c * m then
      Some (value (pid / m) (pid mod m))
    else None
  in
  (* Phase 1: one recorded α for group 0, on a pristine branch. *)
  let fresh = (make_config ~registers ~slots : Config.t) in
  match
    Alpha.search ~max_steps ~tries:alpha_tries
      ~procs:(List.init m (member 0))
      ~values:(List.init m (value 0))
      fresh
  with
  | None -> Alpha_failed (Fmt.str "no %d-output execution within %d tries" m alpha_tries)
  | Some alpha ->
    (* Phase 2: the glued run. *)
    let groups =
      List.init c (fun l ->
          let rename pid = member l (pid - member 0 0) in
          { members = List.init m (member l);
            cursor = Alpha.map_pids rename alpha.Alpha.schedule;
            snapshots = [] })
    in
    let next_slot = ref (c * m) in
    let clones_used = ref 0 in
    let exception Stop of outcome in
    let plant_reset config g ~older ~round =
      List.fold_left
        (fun config reg ->
          match List.assoc_opt reg g.snapshots with
          | None ->
            raise (Stop (Stuck (Fmt.str "no snapshot for R%d" reg)))
          | Some (prog, inst) ->
            if !next_slot >= slots then
              raise (Stop (Out_of_slots { clones_used = !clones_used; slots; round }));
            let slot = !next_slot in
            incr next_slot;
            incr clones_used;
            let config = Config.plant config ~slot prog ~instance:inst in
            fst (Config.step config slot))
        config older
    in
    (* Replay group [g] until its next step would write a register not
       in [discovered]; returns the poised new register, or None when
       the schedule is exhausted. *)
    let rec advance config g ~discovered =
      match g.cursor with
      | [] -> (config, None)
      | (Alpha.Move (pid, Some (Program.Write (reg, _))) as step) :: rest ->
        (* snapshot the poised writer before the write executes *)
        g.snapshots <- (reg, (Config.proc config pid, Config.instance config pid))
                       :: List.remove_assoc reg g.snapshots;
        if List.mem reg discovered then begin
          let config = Alpha.replay_step ~inputs config step in
          g.cursor <- rest;
          advance config g ~discovered
        end
        else (config, Some reg)
      | step :: rest ->
        let config = Alpha.replay_step ~inputs config step in
        g.cursor <- rest;
        advance config g ~discovered
    in
    (try
       let rec rounds config ~discovered ~round =
         let live = List.filter (fun g -> g.cursor <> []) groups in
         if live = [] then begin
           let outputs =
             Config.outputs config
             |> List.filter_map (fun (_, inst, v) -> if inst = 1 then Some v else None)
             |> Spec.Properties.distinct_values
           in
           if List.length outputs > k then
             Violation
               {
                 outputs;
                 config;
                 clones_used = !clones_used;
                 registers_written = List.rev discovered;
               }
           else Stuck (Fmt.str "only %d distinct outputs" (List.length outputs))
         end
         else begin
           let older = match discovered with [] -> [] | _ :: tl -> List.rev tl in
           let config, new_regs =
             List.fold_left
               (fun (config, new_regs) g ->
                 let config =
                   if round = 0 then config else plant_reset config g ~older ~round
                 in
                 match advance config g ~discovered with
                 | config, Some reg -> (config, reg :: new_regs)
                 | config, None -> (config, new_regs))
               (config, []) live
           in
           match new_regs with
           | [] -> rounds config ~discovered ~round:(round + 1)
           | r0 :: rest ->
             List.iter
               (fun r ->
                 if r <> r0 then
                   raise
                     (Stop
                        (Diverged
                           (Fmt.str "groups poised at different registers R%d/R%d" r0 r))))
               rest;
             rounds config ~discovered:(r0 :: discovered) ~round:(round + 1)
         end
       in
       let config = (make_config ~registers ~slots : Config.t) in
       rounds config ~discovered:[] ~round:0
     with
    | Stop o -> o
    | Alpha.Replay_diverged msg -> Diverged msg)
