(* The executable Theorem 2 adversary.

   Given a (supposed) m-obstruction-free repeated k-set agreement system
   over [registers] registers, this module runs the Figure 2
   construction: it builds the execution

     C0 --α1--> D1 --γ1--> (spliced) --β1--> C1 --α2--> D2 ... --γc-->

   where each αj drives a group Qj until its writes are confined to a
   covered set Aj, βj is a block write to Aj by the poised processes Pj
   (obliterating every trace of the spliced γj), and each γj makes the
   group output |Qj| distinct values in one common fresh instance T.
   Summed over the c = ⌈(k+1)/m⌉ groups that is k+1 distinct outputs in
   instance T — a k-Agreement violation.

   Against an algorithm with r ≤ n+m−k−1 registers the construction
   succeeds (there are enough processes to cover every register).
   Against a correct algorithm (r ≥ n+2m−k) it must fail, and it fails
   in the predicted way: the covered set grows until no replacement
   process q' is available (Out_of_processes) — which is exactly the
   counting step of the proof.

   Deviations from the paper's (non-constructive) proof are listed in
   DESIGN.md (substitutions 3 and 4): bounded δ/γ search, and a fixed
   fresh instance T = icap+1 rather than the a-posteriori s+1.  Any
   Violation this module reports is independently certified: the final
   configuration's output record is checked by Spec.Properties. *)

open Shm

type group = {
  index : int;          (* j *)
  final_q : int list;   (* Qj at loop exit: the spliced-fragment runners *)
  pset : int list;      (* Pj: block writers, in poise order *)
  aset : int list;      (* Aj: covered registers *)
}

type outcome =
  | Violation of {
      instance : int;             (* the attacked instance T *)
      outputs : Value.t list;     (* distinct outputs of instance T *)
      config : Config.t;          (* final configuration of the execution *)
      groups : group list;
    }
  | Out_of_processes of { group : int; aset_size : int; groups_built : int }
      (* the construction ran out of replacement processes — the
         expected outcome against algorithms with enough registers *)
  | Gamma_failed of { group : int; reason : string }
      (* the bounded Lemma 1 search gave up *)

let pp_outcome ppf = function
  | Violation { instance; outputs; _ } ->
    Fmt.pf ppf "VIOLATION: instance %d decided %d distinct values: %a" instance
      (List.length outputs)
      Fmt.(list ~sep:comma Value.pp)
      outputs
  | Out_of_processes { group; aset_size; groups_built } ->
    Fmt.pf ppf
      "construction failed: out of processes at group %d (|A|=%d, %d groups built) — \
       algorithm resisted"
      group aset_size groups_built
  | Gamma_failed { group; reason } ->
    Fmt.pf ppf "construction failed: gamma search for group %d: %s" group reason

(* Inputs of the attacked execution: arbitrary distinct values for the
   ordinary instances, and — in the fresh instance T — each process
   proposes a value derived from its own id, so that distinct deciders
   certify distinct group outputs. *)
let attack_inputs ~icap ~pid ~instance =
  if instance <= icap then Some (Value.int ((instance * 1000) + pid))
  else if instance = icap + 1 then Some (Value.int (1_000_000 + pid))
  else None

let attack ~params ~registers ~make_config ?(icap = 20) ?(delta_steps = 30_000)
    ?(gamma_tries = 1500) () =
  let { Agreement.Params.n; m; k } = params in
  let c = (k + m) / m in
  (* c = ⌈(k+1)/m⌉ since m ≤ k: (k+1+m-1)/m = (k+m)/m *)
  let t = icap + 1 in
  let inputs ~pid ~instance = attack_inputs ~icap ~pid ~instance in
  let all_pids = List.init n Fun.id in
  (* [frozen] are processes whose future steps are already spoken for:
     members of completed groups' final Q sets (their γ was spliced). *)
  let config = (make_config ~registers : Config.t) in
  let exception Stop of outcome in
  let pick_fresh ~avoid ~count ~group =
    let avail = List.filter (fun p -> not (List.mem p avoid)) all_pids in
    if List.length avail < count then
      raise (Stop (Out_of_processes { group; aset_size = 0; groups_built = group - 1 }))
    else List.filteri (fun i _ -> i < count) avail
  in
  try
    let rec build_group j config frozen groups =
      if j > c then (config, List.rev groups, frozen)
      else begin
        let size = if j = 1 then k + 1 - ((c - 1) * m) else m in
        let q0 = pick_fresh ~avoid:frozen ~count:size ~group:j in
        let last = j = c in
        (* The Figure 2 loop: grow (A, P) until the γ probe stays
           confined; the last group is unrestricted. *)
        let rec cover config qset pset aset =
          let allowed reg = last || List.mem reg aset in
          match
            Gamma.build ~allowed ~inputs ~max_steps:delta_steps ~t ~procs:qset
              ~tries:gamma_tries config
          with
          | Gamma.Ok_gamma config' ->
            (config', { index = j; final_q = qset; pset = List.rev pset; aset })
          | Gamma.Failed reason -> raise (Stop (Gamma_failed { group = j; reason }))
          | Gamma.Escape e ->
            (* δ committed: e.pid is poised at register e.reg ∉ A.  Add
               the register to A, move the process to P, bring in a
               fresh replacement. *)
            let aset = e.Explore.reg :: aset in
            let pset = e.Explore.pid :: pset in
            let qset' = List.filter (fun p -> p <> e.Explore.pid) qset in
            let avoid = frozen @ qset' @ pset in
            (match pick_fresh ~avoid ~count:1 ~group:j with
            | [ q' ] -> cover e.Explore.config (q' :: qset') pset aset
            | _ -> assert false
            | exception Stop (Out_of_processes _) ->
              raise
                (Stop
                   (Out_of_processes
                      { group = j; aset_size = List.length aset; groups_built = j - 1 })))
        in
        let config, group = cover config q0 [] [] in
        (* βj: the block write by Pj obliterates the γj traces (skipped
           for the last group, which runs at the end of the execution). *)
        let config =
          if last then config
          else fst (Config.block_write config group.pset)
        in
        build_group (j + 1) config (frozen @ group.final_q) (group :: groups)
      end
    in
    let config, groups, _ = build_group 1 config [] [] in
    let outputs =
      Gamma.distinct_at config ~procs:all_pids ~t
    in
    if List.length outputs > k then Violation { instance = t; outputs; config; groups }
    else
      Gamma_failed
        {
          group = c;
          reason =
            Fmt.str "only %d distinct outputs at instance %d" (List.length outputs) t;
        }
  with Stop outcome -> outcome
