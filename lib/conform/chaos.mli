(** Seeded, replayable chaos injection for native runs: yield storms,
    long mid-operation stalls, and crash aborts, all decided by a
    per-domain PRNG derived from (plan seed, pid). *)

type profile = Calm | Yields | Stalls | Crashes | Mixed

(** Raised by {!crash_point} to abort the current operation; the
    harness records the operation as pending and stops the domain. *)
exception Crashed

val profile_name : profile -> string
val profile_of_string : string -> profile option
val all_profiles : profile list

(** A disturbance plan: profile + seed.  Same plan, same decisions. *)
type plan

val plan : profile -> seed:int -> plan

(** A domain's private chaos stream. *)
type handle

val handle : plan -> pid:int -> handle

(** Disturbance point inside an operation — may burn a yield storm or a
    long stall; never raises. *)
val point : handle -> unit

(** Crash point around an operation's effect — may raise {!Crashed}. *)
val crash_point : handle -> unit
