(* Seeded chaos injection for native runs.

   A plan is a profile plus a seed; every domain derives its own
   deterministic PRNG stream from (seed, pid), so the *decisions* of
   the chaos layer — when to storm, how long to stall, when to crash —
   replay exactly from the seed.  (Physical timing of course does not
   replay; the seed pins down the disturbance plan, which in practice
   re-provokes the same class of interleaving.)

   Two kinds of injection point:

   - [point]: called at instrumentation points inside operations (the
     double-collect window, between a torn update's two stores, per
     propose iteration).  Never raises; it may burn a yield storm
     (cpu_relax bursts, which on OCaml 5 also services safepoints) or a
     long busy-wait stall — the "process paused mid-operation for an
     adversarial amount of time" schedules of the paper's model.

   - [crash_point]: called by the harness around an operation's effect;
     may raise {!Crashed} to model a mid-operation process crash.  The
     harness records the operation as pending and stops that domain,
     exactly a crash in the wait-free model. *)

type profile = Calm | Yields | Stalls | Crashes | Mixed

exception Crashed

let profile_name = function
  | Calm -> "calm"
  | Yields -> "yields"
  | Stalls -> "stalls"
  | Crashes -> "crashes"
  | Mixed -> "mixed"

let all_profiles = [ Calm; Yields; Stalls; Crashes; Mixed ]

let profile_of_string s =
  List.find_opt (fun p -> profile_name p = s) all_profiles

type plan = { profile : profile; seed : int }

let plan profile ~seed = { profile; seed }

type handle = { profile : profile; rng : Shm.Rng.t }

let handle { profile; seed } ~pid =
  { profile; rng = Shm.Rng.create (seed + (0x9e3779b9 * (pid + 1))) }

let yield_storm rng =
  (* 1 in 4: a burst of 1–256 cpu_relax's — enough to slide the domain
     off its intended interleaving without dominating the run *)
  if Shm.Rng.int rng 4 = 0 then
    for _ = 1 to 1 + Shm.Rng.int rng 256 do
      Domain.cpu_relax ()
    done

let long_stall rng =
  (* 1 in 32: freeze mid-operation for 20–520 µs — several orders of
     magnitude longer than an update/scan, so every other domain runs
     many operations over the stalled one's open interval *)
  if Shm.Rng.int rng 32 = 0 then Clock.busy_wait_ns (20_000 + Shm.Rng.int rng 500_000)

let point h =
  match h.profile with
  | Calm | Crashes -> ()
  | Yields -> yield_storm h.rng
  | Stalls -> long_stall h.rng
  | Mixed ->
    yield_storm h.rng;
    long_stall h.rng

let crash_point h =
  match h.profile with
  | Calm | Yields | Stalls -> ()
  | Crashes | Mixed ->
    (* ~1 crash per few hundred crash points: most iterations complete,
       some histories carry genuinely pending operations *)
    if Shm.Rng.int h.rng 400 = 0 then raise Crashed
