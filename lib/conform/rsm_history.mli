(** Adapter from serving-layer ({!Service}) command histories to the
    existing checkers.

    A shard of the serving layer records one {!record} per committed
    command: the command value, the reply the application produced, and
    the command's real-time interval (submission to completion, in
    monotonic nanoseconds).  This module grades those histories with
    the same oracles the conformance harness uses: {!Spec.Linearize}
    for per-object linearizability and {!Spec.Properties} for the
    agreement layer underneath. *)

type record = {
  cmd : Shm.Value.t;    (** the submitted command, a [("tag", arg)] pair *)
  reply : Shm.Value.t;  (** what the application replied on commit *)
  start : int;          (** monotonic ns at submission *)
  finish : int;         (** monotonic ns at completion *)
}

(** Register reading of one record: [("write", v)] is an update of
    component 0, [("read", _)] is a scan whose view is the reply;
    [None] for any other command shape. *)
val classify : record -> Spec.Linearize.op option

(** The register events of a history, in record order, with the record
    index as the event pid.  Records {!classify} cannot read are
    dropped — use {!check_register} when that must be an error. *)
val events_of_records : record list -> Spec.Linearize.event list

(** [check_register records] is [Ok ()] iff every record is a register
    command and the history linearizes as a single atomic register
    (initial value ⊥).  Wing–Gong search underneath: intended for
    histories of at most a few hundred operations. *)
val check_register : record list -> (unit, string) result

(** Grade the agreement layer below a shard: validity and k-agreement
    of every decided instance, straight from the configuration's
    recorded input/output relation ({!Spec.Properties.check_safety}). *)
val check_agreement : k:int -> Shm.Config.t -> (unit, string) result
