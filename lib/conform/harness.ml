(* The conformance harness: real multicore histories, checked.

   One iteration = one fresh object + one domain per pid, each running
   a seeded random workload of updates and scans under a chaos plan,
   every operation's invoke/response interval captured by Recorder.
   After the domains join, the merged history goes through the
   Spec.Linearize real-time checker (pending operations from crashes
   handled by completion-point enumeration).  A non-linearizable
   history is a conformance violation: it is shrunk to a 1-minimal
   failing sub-history through the Spec.Shrink ddmin pipeline, with
   event indices as the schedule currency.

   Everything is derived from integer seeds — workload choices, chaos
   decisions, per-iteration seeds — so a violation at iteration i
   replays by re-running with that iteration's seed (physical timing
   varies, but the workload and disturbance plan are pinned). *)

type config = {
  domains : int;
  components : int;
  ops : int;             (* operations per domain *)
  profile : Chaos.profile;
  seed : int;
  iters : int;
}

let default_config =
  { domains = 4; components = 4; ops = 12; profile = Chaos.Calm; seed = 0; iters = 100 }

type violation = {
  iter : int;
  iter_seed : int;        (* replay: run one iteration with this seed *)
  error : string;
  completed : Spec.Linearize.event list;
  pending : Spec.Linearize.event list;
  shrunk : Spec.Linearize.event list;  (* 1-minimal failing sub-history *)
  shrink_replays : int;
}

type outcome =
  | Pass of { iters : int; ops : int }
  | Fail of violation

let pp_violation ppf v =
  Fmt.pf ppf
    "@[<v>iteration %d (seed %d): %s@,\
     history: %d completed + %d pending ops@,\
     shrunk witness (%d ops, 1-minimal, %d checker replays):@,\
     @[<v 2>  %a@]@]"
    v.iter v.iter_seed v.error (List.length v.completed) (List.length v.pending)
    (List.length v.shrunk) v.shrink_replays
    Fmt.(list ~sep:cut Spec.Linearize.pp_event)
    v.shrunk

let pp_outcome ppf = function
  | Pass { iters; ops } ->
    Fmt.pf ppf "conform: OK — %d iterations, %d operations, all histories linearizable"
      iters ops
  | Fail v -> Fmt.pf ppf "@[<v>conform: VIOLATION@,%a@]" pp_violation v

(* Derive the per-iteration seed; a big odd multiplier keeps seeds
   0,1,2,... from producing overlapping per-domain streams. *)
let iter_seed ~seed ~iter = seed + (1_000_003 * iter)

(* --------------------------------------------------------------- *)
(* Snapshot conformance                                             *)

(* One domain's workload: [ops] seeded random operations, ~1/3 scans,
   updates spread over all components with globally unique values
   (unique values make the checker's job unambiguous).  Returns when
   done or when the chaos plan crashes the domain. *)
let snapshot_workload ~cfg ~iseed ~inst ~recorder ~plan pid =
  let hr = Recorder.handle recorder ~pid in
  let hc = Chaos.handle plan ~pid in
  let h = inst.Sut.handle ~pid ~pause:(fun () -> Chaos.point hc) in
  let rng = Shm.Rng.create (iseed + (7919 * (pid + 1))) in
  let counter = ref 0 in
  try
    for _ = 1 to cfg.ops do
      Chaos.point hc;
      if Shm.Rng.int rng 3 = 0 then begin
        (* scan: a crash before the response is observed just drops the
           operation — a pending scan constrains nothing *)
        let t0 = Recorder.now hr in
        Chaos.crash_point hc;
        let view = h.Sut.scan () in
        Chaos.crash_point hc;
        Recorder.completed hr ~start:t0 ~finish:(Recorder.now hr)
          (Spec.Linearize.Scan { view })
      end
      else begin
        incr counter;
        let i = Shm.Rng.int rng cfg.components in
        let v = Shm.Value.int ((1_000_000 * (pid + 1)) + !counter) in
        let op = Spec.Linearize.Update { i; v } in
        let t0 = Recorder.now hr in
        match
          Chaos.crash_point hc;
          h.Sut.update i v;
          Chaos.crash_point hc
        with
        | () -> Recorder.completed hr ~start:t0 ~finish:(Recorder.now hr) op
        | exception Chaos.Crashed ->
          (* the store may or may not have landed: record the update as
             pending so the checker enumerates both completions *)
          Recorder.pending hr ~start:t0 op;
          raise Chaos.Crashed
      end
    done
  with Chaos.Crashed -> ()

(* Shrink a failing history to a 1-minimal sub-history: the schedule
   fed to the ddmin pipeline is the list of completed-event indices,
   and the replay oracle re-checks linearizability of the surviving
   subset (pending ops ride along unshrunk — they only ever make the
   checker more permissive).

   A candidate must stay *closed*: every non-⊥ value some kept scan
   returns must still have its writing update in the candidate (or
   among the pending ops).  Without this, ddmin deletes the updates a
   scan's view refers to and "minimizes" to a vacuous witness — a scan
   of values nobody wrote, failing for a reason the original history
   never exhibited.  Non-closed candidates count as not failing. *)
let closed ~pending sub =
  let written = Hashtbl.create 97 in
  let add e =
    match e.Spec.Linearize.op with
    | Spec.Linearize.Update { v; _ } -> Hashtbl.replace written v ()
    | Spec.Linearize.Scan _ -> ()
  in
  List.iter add pending;
  List.iter add sub;
  List.for_all
    (fun e ->
      match e.Spec.Linearize.op with
      | Spec.Linearize.Update _ -> true
      | Spec.Linearize.Scan { view } ->
        Array.for_all
          (fun v -> Shm.Value.is_bot v || Hashtbl.mem written v)
          view)
    sub

let shrink_history ~components ~pending completed =
  let all = Array.of_list completed in
  let replay idxs =
    let sub = List.map (fun j -> all.(j)) idxs in
    if not (closed ~pending sub) then None
    else
      match Spec.Linearize.witness ~components ~pending sub with
      | Some _ -> None
      | None -> Some "still non-linearizable"
  in
  match
    Spec.Shrink.minimize_generic ~replay (List.init (Array.length all) Fun.id)
  with
  | Some r ->
    (List.map (fun j -> all.(j)) r.Spec.Shrink.schedule, r.Spec.Shrink.g_replays)
  | None -> (completed, 0)  (* unreproducible shrink start: keep the original *)

let observe_latencies ~metrics completed =
  let upd = Obs.Metrics.histogram metrics "conform.update_ns" in
  let scn = Obs.Metrics.histogram metrics "conform.scan_ns" in
  List.iter
    (fun e ->
      let lat = e.Spec.Linearize.finish - e.Spec.Linearize.start in
      match e.Spec.Linearize.op with
      | Spec.Linearize.Update _ -> Obs.Metrics.Histogram.observe upd lat
      | Spec.Linearize.Scan _ -> Obs.Metrics.Histogram.observe scn lat)
    completed

(* Span bracket used by both harnesses: [f] runs inside a span when a
   collector is attached, bare otherwise.  The ctx may have been opened
   on a different domain (the iteration span parents the per-domain
   workload spans — exactly the cross-domain propagation Obs.Trace is
   for). *)
let spanned tr ?parent ~args name f =
  match tr with
  | None -> f ()
  | Some t ->
    let c = Obs.Trace.begin_span t ?parent ~cat:"conform" ~args name in
    Fun.protect ~finally:(fun () -> Obs.Trace.end_span t c) f

let run_snapshot ?(metrics = Obs.Metrics.create ()) ~sut (cfg : config) =
  let tr = Obs.Trace.attached () in
  let iters_c = Obs.Metrics.counter metrics "conform.iters" in
  let ops_c = Obs.Metrics.counter metrics "conform.ops" in
  let checks_c = Obs.Metrics.counter metrics "conform.checks" in
  let check_ns_c = Obs.Metrics.counter metrics "conform.check_ns" in
  let crashes_c = Obs.Metrics.counter metrics "conform.crashes" in
  let violations_c = Obs.Metrics.counter metrics "conform.violations" in
  let shrink_replays_c = Obs.Metrics.counter metrics "conform.shrink_replays" in
  let rec iterate iter =
    if iter >= cfg.iters then
      Pass { iters = cfg.iters; ops = Obs.Metrics.Counter.value ops_c }
    else begin
      let iseed = iter_seed ~seed:cfg.seed ~iter in
      let inst = sut.Sut.create ~components:cfg.components in
      let recorder = Recorder.create ~domains:cfg.domains in
      let plan = Chaos.plan cfg.profile ~seed:iseed in
      let ispan =
        match tr with
        | Some t ->
          Some
            (Obs.Trace.begin_span t ~cat:"conform"
               ~args:[ ("iter", Obs.Json.Int iter); ("seed", Obs.Json.Int iseed) ]
               "iteration")
        | None -> None
      in
      let workers =
        Array.init cfg.domains (fun pid ->
            Domain.spawn (fun () ->
                spanned tr ?parent:ispan
                  ~args:[ ("pid", Obs.Json.Int pid) ]
                  "workload"
                  (fun () -> snapshot_workload ~cfg ~iseed ~inst ~recorder ~plan pid)))
      in
      Array.iter Domain.join workers;
      let completed, pending = Recorder.history recorder in
      Obs.Metrics.Counter.incr iters_c;
      Obs.Metrics.Counter.add ops_c (List.length completed);
      Obs.Metrics.Counter.add crashes_c (List.length pending);
      observe_latencies ~metrics completed;
      let t0 = Clock.now_ns () in
      let w =
        spanned tr ?parent:ispan
          ~args:[ ("ops", Obs.Json.Int (List.length completed)) ]
          "linearize"
          (fun () -> Spec.Linearize.witness ~components:cfg.components ~pending completed)
      in
      Obs.Metrics.Counter.incr checks_c;
      Obs.Metrics.Counter.add check_ns_c (Clock.now_ns () - t0);
      (match (tr, ispan) with
      | Some t, Some c -> Obs.Trace.end_span t c
      | _ -> ());
      match w with
      | Some _ -> iterate (iter + 1)
      | None ->
        Obs.Metrics.Counter.incr violations_c;
        let error =
          Fmt.str
            "history of %d ops (+%d pending) is not linearizable as an atomic \
             %d-component snapshot (%s)"
            (List.length completed) (List.length pending) cfg.components
            sut.Sut.name
        in
        let shrunk, shrink_replays =
          shrink_history ~components:cfg.components ~pending completed
        in
        Obs.Metrics.Counter.add shrink_replays_c shrink_replays;
        Fail
          { iter; iter_seed = iseed; error; completed; pending; shrunk; shrink_replays }
    end
  in
  iterate 0

(* --------------------------------------------------------------- *)
(* Agreement conformance: Figure 3 one-shot under chaos             *)

type agreement_violation = { iter : int; iter_seed : int; error : string }

type agreement_outcome =
  | Agree_pass of { iters : int; decided : int; crashed : int }
  | Agree_fail of agreement_violation

let pp_agreement_outcome ppf = function
  | Agree_pass { iters; decided; crashed } ->
    Fmt.pf ppf
      "conform: OK — %d instances, %d decisions (%d crashed proposers), validity and \
       k-agreement hold"
      iters decided crashed
  | Agree_fail { iter; iter_seed; error } ->
    Fmt.pf ppf "conform: VIOLATION@,iteration %d (seed %d): %s" iter iter_seed error

(* Safety of one native instance: validity (every decision is some
   process's input) and k-agreement over the processes that decided.
   Crashed proposers decide nothing — that is a legal crash, not a
   violation (the object is obstruction-free, not wait-free). *)
let check_decisions ~k ~inputs decisions =
  let decided =
    Array.to_list decisions |> List.filter_map (fun d -> d)
  in
  let invalid =
    List.filter (fun d -> not (Array.exists (Shm.Value.equal d) inputs)) decided
  in
  if invalid <> [] then
    Error
      (Fmt.str "validity violated: decision %a is no process's input" Shm.Value.pp
         (List.hd invalid))
  else
    let distinct = Spec.Properties.distinct_values decided in
    if List.length distinct > k then
      Error
        (Fmt.str "%d-agreement violated: %d distinct decisions {%a}" k
           (List.length distinct)
           Fmt.(list ~sep:comma Shm.Value.pp)
           distinct)
    else Ok ()

let run_agreement ?(metrics = Obs.Metrics.create ()) ~(params : Agreement.Params.t)
    ~profile ~seed ~iters () =
  let iters_c = Obs.Metrics.counter metrics "conform.agreement_iters" in
  let decided_c = Obs.Metrics.counter metrics "conform.agreement_decided" in
  let crashed_c = Obs.Metrics.counter metrics "conform.agreement_crashed" in
  let violations_c = Obs.Metrics.counter metrics "conform.violations" in
  let propose_h = Obs.Metrics.histogram metrics "conform.propose_ns" in
  let tr = Obs.Trace.attached () in
  let n = params.Agreement.Params.n in
  let k = params.Agreement.Params.k in
  let rec iterate iter =
    if iter >= iters then
      Agree_pass
        {
          iters;
          decided = Obs.Metrics.Counter.value decided_c;
          crashed = Obs.Metrics.Counter.value crashed_c;
        }
    else begin
      let iseed = iter_seed ~seed ~iter in
      let t = Native.Native_agreement.create ~params in
      let plan = Chaos.plan profile ~seed:iseed in
      let inputs = Array.init n (fun pid -> Shm.Value.int ((1000 * (iter + 1)) + pid)) in
      let ispan =
        match tr with
        | Some t ->
          Some
            (Obs.Trace.begin_span t ~cat:"conform"
               ~args:[ ("iter", Obs.Json.Int iter); ("seed", Obs.Json.Int iseed) ]
               "iteration")
        | None -> None
      in
      let workers =
        Array.init n (fun pid ->
            Domain.spawn (fun () ->
                spanned tr ?parent:ispan
                  ~args:[ ("pid", Obs.Json.Int pid) ]
                  "propose"
                  (fun () ->
                    let hc = Chaos.handle plan ~pid in
                    let chaos () =
                      Chaos.point hc;
                      Chaos.crash_point hc
                    in
                    let t0 = Clock.now_ns () in
                    match
                      Native.Native_agreement.propose ~chaos t ~pid ~seed:iseed
                        inputs.(pid)
                    with
                    | w -> Some (w, Clock.now_ns () - t0)
                    | exception Chaos.Crashed -> None)))
      in
      let results = Array.map Domain.join workers in
      (match (tr, ispan) with
      | Some t, Some c -> Obs.Trace.end_span t c
      | _ -> ());
      Obs.Metrics.Counter.incr iters_c;
      let decisions =
        Array.map
          (function
            | Some (w, lat) ->
              Obs.Metrics.Counter.incr decided_c;
              Obs.Metrics.Histogram.observe propose_h lat;
              Some w
            | None ->
              Obs.Metrics.Counter.incr crashed_c;
              None)
          results
      in
      match check_decisions ~k ~inputs decisions with
      | Ok () -> iterate (iter + 1)
      | Error error ->
        Obs.Metrics.Counter.incr violations_c;
        Agree_fail { iter; iter_seed = iseed; error }
    end
  in
  iterate 0
