(* Low-overhead history capture for native runs.

   One recorder per run, one handle per domain.  A handle owns a
   private growable buffer that only its domain ever touches — no
   locks, no atomics, no cross-domain traffic on the hot path (the
   whole-run structure is published to the spawned domains before they
   start and read back after they join, so the OCaml memory model makes
   the hand-off safe).  Timestamps are monotonic-clock nanoseconds
   rebased to the recorder's creation so intervals stay small and
   printable.

   Completed operations carry [invoke, response] intervals; pending
   operations (the domain crashed mid-operation) carry their invoke
   time and [finish = max_int], which is exactly how Spec.Linearize
   marks an operation whose effect point must be enumerated. *)

type buf = {
  pid : int;
  mutable events : Spec.Linearize.event list;  (* newest first *)
  mutable pending : Spec.Linearize.event list;
  mutable count : int;
}

type t = { base : int; bufs : buf array }

type handle = { recorder : t; buf : buf }

let create ~domains =
  {
    base = Clock.now_ns ();
    bufs = Array.init domains (fun pid -> { pid; events = []; pending = []; count = 0 });
  }

let handle t ~pid = { recorder = t; buf = t.bufs.(pid) }

(* Nanoseconds since the recorder was created. *)
let now h = Clock.now_ns () - h.recorder.base

let completed h ~start ~finish op =
  let b = h.buf in
  b.events <- { Spec.Linearize.pid = b.pid; op; start; finish } :: b.events;
  b.count <- b.count + 1

let pending h ~start op =
  let b = h.buf in
  b.pending <- { Spec.Linearize.pid = b.pid; op; start; finish = max_int } :: b.pending;
  b.count <- b.count + 1

(* Merge after every recording domain has been joined.  Completed
   events are sorted by invocation time — the order the checker's DFS
   tries candidates in, which makes the common (linearizable) case
   fast. *)
let history t =
  let completed =
    Array.fold_left (fun acc b -> List.rev_append b.events acc) [] t.bufs
    |> List.sort (fun a b -> compare a.Spec.Linearize.start b.Spec.Linearize.start)
  in
  let pending =
    Array.fold_left (fun acc b -> List.rev_append b.pending acc) [] t.bufs
  in
  (completed, pending)

let ops_recorded t = Array.fold_left (fun acc b -> acc + b.count) 0 t.bufs
