(** Monotonic time for native history capture: CLOCK_MONOTONIC in
    nanoseconds, global across domains, as an OCaml int. *)

val now_ns : unit -> int

(** Busy-wait (never yields the domain) for [ns] nanoseconds. *)
val busy_wait_ns : int -> unit
