(* Systems under test for the snapshot conformance harness.

   [real] is the production object, Native_snapshot, with the chaos
   pause routed into its double-collect window ([on_collect]) and its
   retry backoff ([on_retry]).

   The mutants are deliberately broken variants used by the mutation
   smoke tests: each reintroduces a classic snapshot bug, and the
   harness must *reject* it within a bounded number of seeded runs —
   that is the evidence the checker has teeth.  Both mutants widen
   their own race windows with a short deterministic spin (plus the
   chaos pause), so detection does not depend on a lucky preemption:

   - [single_collect]: scan performs ONE collect, component by
     component, instead of retrying until two collects agree.  A writer
     that completes update(i,v) and then update(j,w) while the scan is
     between components i and j yields a view containing w but missing
     v — the new/old inversion an atomic snapshot can never return.

   - [torn_update]: update writes ⊥ (None) and then the real entry —
     a non-atomic two-step store.  A clean double collect landing
     inside the window observes the component regressed to ⊥ after a
     value was written, which no sequential snapshot history explains
     (nothing ever writes ⊥). *)

type handle = {
  update : int -> Shm.Value.t -> unit;
  scan : unit -> Shm.Value.t array;
}

type instance = { handle : pid:int -> pause:(unit -> unit) -> handle }

type t = {
  name : string;
  mutant : bool;
  create : components:int -> instance;
}

let real =
  {
    name = "native-snapshot";
    mutant = false;
    create =
      (fun ~components ->
        let s = Native.Native_snapshot.create ~components in
        {
          handle =
            (fun ~pid ~pause ->
              let h = Native.Native_snapshot.handle s ~pid in
              {
                update = (fun i v -> Native.Native_snapshot.update h i v);
                scan =
                  (fun () ->
                    Native.Native_snapshot.scan
                      ~on_retry:(fun _ -> Domain.cpu_relax ())
                      ~on_collect:(fun _ -> pause ())
                      h);
              });
        });
  }

(* Shared representation of the mutants: tagged entries in atomics,
   like the real object. *)
type entry = { tag_pid : int; tag_seq : int; v : Shm.Value.t }

let spin n =
  for _ = 1 to n do
    Domain.cpu_relax ()
  done

let value_of = function Some e -> e.v | None -> Shm.Value.bot

let single_collect =
  {
    name = "single-collect";
    mutant = true;
    create =
      (fun ~components ->
        let cells = Array.init components (fun _ -> Atomic.make None) in
        {
          handle =
            (fun ~pid ~pause ->
              let seq = ref 0 in
              {
                update =
                  (fun i v ->
                    incr seq;
                    Atomic.set cells.(i) (Some { tag_pid = pid; tag_seq = !seq; v }));
                scan =
                  (fun () ->
                    (* one collect, a window between component reads *)
                    Array.init components (fun i ->
                        if i > 0 then begin
                          spin 64;
                          pause ()
                        end;
                        value_of (Atomic.get cells.(i))));
              });
        });
  }

let torn_update =
  {
    name = "torn-update";
    mutant = true;
    create =
      (fun ~components ->
        let cells = Array.init components (fun _ -> Atomic.make None) in
        let same a b =
          match (a, b) with
          | None, None -> true
          | Some x, Some y -> x.tag_pid = y.tag_pid && x.tag_seq = y.tag_seq
          | None, Some _ | Some _, None -> false
        in
        {
          handle =
            (fun ~pid ~pause ->
              let seq = ref 0 in
              let collect () = Array.map Atomic.get cells in
              let rec double_collect prev =
                let cur = collect () in
                match prev with
                | Some p when Array.for_all2 same p cur -> Array.map value_of cur
                | _ ->
                  Domain.cpu_relax ();
                  double_collect (Some cur)
              in
              {
                update =
                  (fun i v ->
                    incr seq;
                    (* the bug: a two-step, non-atomic store *)
                    Atomic.set cells.(i) None;
                    spin 200;
                    pause ();
                    Atomic.set cells.(i) (Some { tag_pid = pid; tag_seq = !seq; v }));
                scan = (fun () -> double_collect None);
              });
        });
  }

let mutants = [ single_collect; torn_update ]

let all = real :: mutants

let by_name name = List.find_opt (fun t -> t.name = name) all
