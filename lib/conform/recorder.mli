(** Low-overhead per-domain history capture: invoke/response intervals
    on the monotonic clock, recorded into lock-free per-domain buffers
    and merged post-run into a {!Spec.Linearize} history. *)

type t

(** One buffer per domain, indexed by pid. *)
val create : domains:int -> t

(** A domain's private recording handle; only that domain may use it. *)
type handle

val handle : t -> pid:int -> handle

(** Nanoseconds since the recorder was created (rebased monotonic
    clock); use for both endpoints of an operation. *)
val now : handle -> int

(** Record an operation whose response was observed. *)
val completed : handle -> start:int -> finish:int -> Spec.Linearize.op -> unit

(** Record an operation that was invoked but never responded (crashed
    mid-operation); it becomes a pending op with [finish = max_int]. *)
val pending : handle -> start:int -> Spec.Linearize.op -> unit

(** Merge all buffers — call only after joining every recording
    domain.  Returns (completed sorted by invocation time, pending). *)
val history : t -> Spec.Linearize.event list * Spec.Linearize.event list

val ops_recorded : t -> int
