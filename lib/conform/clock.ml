(* The one clock of the conformance harness: CLOCK_MONOTONIC
   nanoseconds, as an OCaml int (63 bits ≈ 292 years — safe).  All
   history intervals are differences of this clock, which is global
   across domains, so invoke/response intervals captured on different
   cores are directly comparable — exactly the real-time order the
   linearizability checker needs. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Busy-wait for [ns] nanoseconds: chaos stalls must not release the
   domain (Unix.sleepf would let the scheduler tidy everything up and
   hide the interleaving we are trying to provoke). *)
let busy_wait_ns ns =
  let deadline = now_ns () + ns in
  while now_ns () < deadline do
    Domain.cpu_relax ()
  done
