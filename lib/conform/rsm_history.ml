(* Adapter from serving-layer command histories to the existing
   checkers: per-command records (what was submitted, what was replied,
   the real-time interval) become Spec.Linearize events, and a shard's
   underlying configuration is graded by Spec.Properties.check_safety.

   The register application is the linearizability vehicle: a
   ("write", v) command is an Update of component 0, a ("read", _)
   command is a Scan whose one-component view is the reply the service
   returned.  Any other command shape has no register meaning, so
   [check_register] rejects the history rather than silently skipping
   commands that might have mutated the state. *)

open Shm

type record = {
  cmd : Value.t;
  reply : Value.t;
  start : int;
  finish : int;
}

let classify r =
  match Value.view r.cmd with
  | Value.Pair (tag, arg) -> (
      match Value.view tag with
      | Value.Str "write" -> Some (Spec.Linearize.Update { i = 0; v = arg })
      | Value.Str "read" -> Some (Spec.Linearize.Scan { view = [| r.reply |] })
      | _ -> None)
  | _ -> None

let events_of_records records =
  List.mapi
    (fun idx r ->
      match classify r with
      | None -> None
      | Some op ->
        Some { Spec.Linearize.pid = idx; op; start = r.start; finish = r.finish })
    records
  |> List.filter_map Fun.id

let check_register records =
  let events = events_of_records records in
  if List.length events <> List.length records then
    Error "history contains a command that is neither a write nor a read"
  else if Spec.Linearize.check ~components:1 events then Ok ()
  else Error "history is not linearizable as a register"

let check_agreement ~k config = Spec.Properties.check_safety ~k config
