(** The conformance harness: run seeded random workloads on real OCaml
    5 domains against a {!Sut}, capture every operation's
    invoke/response interval, check each merged history for real-time
    linearizability (pending operations from injected crashes handled
    by completion-point enumeration), and shrink failures to 1-minimal
    sub-histories through the {!Spec.Shrink} ddmin pipeline. *)

type config = {
  domains : int;
  components : int;
  ops : int;  (** operations per domain per iteration *)
  profile : Chaos.profile;
  seed : int;
  iters : int;
}

val default_config : config

type violation = {
  iter : int;
  iter_seed : int;  (** replay: re-run one iteration with this seed *)
  error : string;
  completed : Spec.Linearize.event list;
  pending : Spec.Linearize.event list;
  shrunk : Spec.Linearize.event list;  (** 1-minimal failing sub-history *)
  shrink_replays : int;
}

type outcome =
  | Pass of { iters : int; ops : int }
  | Fail of violation

val pp_violation : Format.formatter -> violation -> unit
val pp_outcome : Format.formatter -> outcome -> unit

(** The per-iteration seed derived from (config seed, iteration) —
    exposed so a printed witness can be replayed as a 1-iteration
    run. *)
val iter_seed : seed:int -> iter:int -> int

(** Snapshot conformance: [iters] iterations of [domains] domains each
    performing [ops] random updates/scans under the chaos profile.
    Counters and latency histograms land in [metrics] under
    [conform.*]. *)
val run_snapshot : ?metrics:Obs.Metrics.t -> sut:Sut.t -> config -> outcome

(** {1 Agreement conformance} *)

type agreement_violation = { iter : int; iter_seed : int; error : string }

type agreement_outcome =
  | Agree_pass of { iters : int; decided : int; crashed : int }
  | Agree_fail of agreement_violation

val pp_agreement_outcome : Format.formatter -> agreement_outcome -> unit

(** Figure 3 one-shot on real domains under chaos: validity and
    k-agreement over deciding processes ([Chaos.Crashed] proposers
    legally decide nothing), propose latency into
    [conform.propose_ns]. *)
val run_agreement :
  ?metrics:Obs.Metrics.t ->
  params:Agreement.Params.t ->
  profile:Chaos.profile ->
  seed:int ->
  iters:int ->
  unit ->
  agreement_outcome
