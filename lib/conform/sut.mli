(** Systems under test for the snapshot conformance harness: the real
    {!Native.Native_snapshot} plus deliberately broken mutants
    (single-collect scan, non-atomic two-step update) that the checker
    must reject — the mutation smoke tests' targets. *)

type handle = {
  update : int -> Shm.Value.t -> unit;
  scan : unit -> Shm.Value.t array;
}

type instance = {
  handle : pid:int -> pause:(unit -> unit) -> handle;
      (** [pause] is the chaos injection the implementation calls at
          its internal vulnerable points (double-collect window, torn
          store window). *)
}

type t = {
  name : string;
  mutant : bool;  (** true iff the checker is expected to reject it *)
  create : components:int -> instance;
}

val real : t

(** Scan = one collect; returns new/old-inverted views under
    concurrent multi-component writers. *)
val single_collect : t

(** Update = store ⊥ then the entry; scans can observe a component
    regress to ⊥. *)
val torn_update : t

val mutants : t list
val all : t list
val by_name : string -> t option
