(* sa-run: run any of the set-agreement algorithms under a chosen
   scheduler and report decisions, safety, and space usage — or
   model-check them over *all* schedules with --explore — or audit the
   native multicore layer with the conformance harness (`conform`).

   Examples:
     sa_run -n 5 -m 1 -k 2
     sa_run -n 5 -m 2 -k 3 --algo repeated --rounds 4 --sched random:7
     sa_run -n 4 -m 1 -k 2 --algo anonymous --impl collect --trace
     sa_run -n 6 -m 2 -k 3 --sched m-bounded:7:2 --stats --trace-out t.jsonl
     sa_run -n 3 -m 1 -k 1 --explore dpor:10
     sa_run -n 3 -m 1 -k 1 --registers 3 --explore dpor:14 --shrink
     sa_run -n 3 -m 1 -k 1 --explore dpor:12 --jobs 4 --stats
     sa_run conform --object snapshot --domains 4 --iters 500
     sa_run conform --object snapshot --mutant single-collect --chaos yields
     sa_run conform --object agreement --domains 4 -m 2 -k 2 --chaos crashes *)

open Cmdliner

type algo = One_shot | Repeated | Anonymous | Baseline

let algo_conv =
  Arg.enum
    [ ("oneshot", One_shot); ("repeated", Repeated); ("anonymous", Anonymous);
      ("baseline", Baseline) ]

let impl_conv =
  Arg.enum
    [
      ("atomic", `Atomic);
      ("collect", `Collect);   (* register-level double collect *)
      ("sw", `Sw);             (* n single-writer registers *)
    ]

let backend_conv =
  let parse s =
    match Shm.Memory.backend_of_string s with
    | Some b -> Ok b
    | None ->
      Error
        (`Msg
          (Fmt.str "unknown memory backend %S (expected persistent|map|journal|journaled)"
             s))
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (Shm.Memory.backend_name b))

let memory_backend_arg =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "memory-backend" ] ~docv:"BACKEND"
        ~doc:
          "Simulator register backend: $(b,journaled) (flat array + undo journal, the \
           default) or $(b,persistent) (the reference persistent map).  The test \
           suite pins the two observationally equivalent; switch to persistent when \
           bisecting a suspected backend bug (see docs/PERFORMANCE.md).")

(* Applies process-wide, before any configuration is built. *)
let set_memory_backend = Option.iter Shm.Memory.set_default

(* scheduler spec: name[:arg[:arg]] *)
let sched_specs =
  [ "round-robin"; "quantum[:Q]"; "random[:SEED]"; "solo:P"; "m-bounded:SEED[:M]" ]

let parse_sched spec ~n =
  let ( let* ) r f = Result.bind r f in
  let int_arg what v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None -> Error (Fmt.str "scheduler %S: %s %S is not an integer" spec what v)
  in
  match String.split_on_char ':' spec with
  | [ "round-robin" ] -> Ok (Shm.Schedule.round_robin n)
  | [ "quantum"; q ] ->
    let* q = int_arg "quantum" q in
    Ok (Shm.Schedule.quantum_round_robin ~quantum:q n)
  | [ "quantum" ] -> Ok (Shm.Schedule.quantum_round_robin ~quantum:300 n)
  | [ "random"; s ] ->
    let* s = int_arg "seed" s in
    Ok (Shm.Schedule.random ~seed:s n)
  | [ "random" ] -> Ok (Shm.Schedule.random ~seed:0 n)
  | [ "solo"; p ] ->
    let* p = int_arg "pid" p in
    Ok (Shm.Schedule.solo p)
  | [ "m-bounded"; s ] ->
    let* s = int_arg "seed" s in
    Ok (Shm.Schedule.m_bounded ~seed:s ~m:1 ~prefix:100 n)
  | [ "m-bounded"; s; m ] ->
    let* s = int_arg "seed" s in
    let* m = int_arg "m" m in
    if m < 1 || m > n then
      Error (Fmt.str "scheduler %S: need 1 <= m <= n (n = %d)" spec n)
    else Ok (Shm.Schedule.m_bounded ~seed:s ~m ~prefix:100 n)
  | _ ->
    Error
      (Fmt.str "unknown scheduler %S; valid specs: %s" spec
         (String.concat " | " sched_specs))

(* exploration spec: engine:DEPTH *)
let explore_specs = [ "naive:DEPTH"; "dpor:DEPTH"; "dpor-nocache:DEPTH" ]

let parse_explore spec ~jobs =
  let engine_of = function
    | "naive" -> Some Spec.Modelcheck.Naive
    | "dpor" -> Some (Spec.Modelcheck.Dpor { cache = true; jobs })
    | "dpor-nocache" -> Some (Spec.Modelcheck.Dpor { cache = false; jobs })
    | _ -> None
  in
  match String.split_on_char ':' spec with
  | [ name; d ] -> (
    match (engine_of name, int_of_string_opt d) with
    | Some engine, Some depth when depth >= 0 -> Ok (engine, depth)
    | Some _, _ -> Error (Fmt.str "--explore %S: depth %S is not a non-negative integer" spec d)
    | None, _ ->
      Error
        (Fmt.str "--explore %S: unknown engine %S; valid specs: %s" spec name
           (String.concat " | " explore_specs)))
  | _ ->
    Error
      (Fmt.str "--explore %S: expected engine:DEPTH; valid specs: %s" spec
         (String.concat " | " explore_specs))

(* Shared between the default command and `trace`: the flag-to-impl
   mapping and instance construction. *)
let impl_of = function
  | `Atomic -> Agreement.Instances.Atomic
  | `Collect -> Agreement.Instances.Double_collect
  | `Sw -> Agreement.Instances.Sw_based

let build_config ~algo ~impl ~registers params =
  match algo with
  | One_shot -> Agreement.Instances.oneshot ?r:registers ~impl params
  | Repeated -> Agreement.Instances.repeated ?r:registers ~impl params
  | Baseline ->
    if registers <> None then
      Fmt.epr "note: --registers is ignored for the baseline algorithm@.";
    Agreement.Instances.baseline ~impl params
  | Anonymous ->
    Agreement.Instances.anonymous ?r:registers
      ~anonymous_collect:(impl = Agreement.Instances.Double_collect)
      params

(* Model-check the configured instance over all schedules up to the
   depth bound, instead of running one schedule. *)
let explore_main ~engine ~depth ~shrink ~stats ~k ~inputs config =
  let check = Spec.Properties.check_safety ~k in
  let metrics = Obs.Metrics.create () in
  (* profile only under --stats: phase attribution costs two clock
     reads per phase per node, which we don't charge to plain runs *)
  let prof = if stats then Some (Obs.Prof.create ()) else None in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Spec.Modelcheck.run ~engine ~depth ~inputs ~metrics ?prof ~check config
  in
  let wall = Unix.gettimeofday () -. t0 in
  let s = Spec.Modelcheck.stats_of outcome in
  Fmt.pr "engine: %s, depth bound: %d@." (Spec.Modelcheck.engine_name engine) depth;
  Fmt.pr
    "explored %d nodes (%d completions checked, %d cache hits, %d sleep-set pruned) in \
     %.3fs@."
    s.Spec.Modelcheck.explored s.Spec.Modelcheck.leaves s.Spec.Modelcheck.cache_hits
    s.Spec.Modelcheck.pruned wall;
  (match outcome with
  | Spec.Modelcheck.Ok_bounded _ ->
    Fmt.pr "verdict: no safety violation within the bound@."
  | Spec.Modelcheck.Counterexample { schedule; error; _ } ->
    Fmt.pr "verdict: VIOLATION — %s@." error;
    Fmt.pr "schedule (%d steps): [%s]@." (List.length schedule)
      (String.concat " " (List.map string_of_int schedule));
    if shrink then begin
      let replay s =
        (* fresh copy: Config.t is persistent, replay never mutates [config] *)
        Spec.Counterex.replay ~completion_steps:50_000 ~inputs ~check config s
      in
      match
        Option.bind (Spec.Modelcheck.counterex_of outcome) (fun ce ->
            Spec.Shrink.minimize ~replay ce.Spec.Counterex.schedule)
      with
      | Some r -> Fmt.pr "%a@." Spec.Shrink.pp_result r
      | None -> Fmt.pr "shrink: counterexample did not reproduce under replay@."
    end);
  if stats then begin
    Fmt.pr "--- metrics ---@.%a@." Obs.Metrics.pp metrics;
    match prof with
    | Some p when not (Obs.Prof.is_empty p) ->
      Fmt.pr "--- phase breakdown ---@.%a@." Obs.Prof.pp p
    | _ -> ()
  end;
  match outcome with Spec.Modelcheck.Ok_bounded _ -> () | _ -> exit 1

let run backend algo n m k impl sched_spec rounds trace diagram stats trace_out
    max_steps registers explore jobs shrink =
  set_memory_backend backend;
  let params = Agreement.Params.make ~n ~m ~k in
  let sched =
    match parse_sched sched_spec ~n with
    | Ok s -> s
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
  in
  let impl = impl_of impl in
  let input_fn pid instance = Shm.Value.int ((100 * instance) + pid) in
  let config = build_config ~algo ~impl ~registers params in
  let rounds = match algo with One_shot | Baseline -> 1 | Repeated | Anonymous -> rounds in
  let inputs = Shm.Exec.repeated_inputs ~rounds input_fn in
  match explore with
  | Some spec -> (
    match parse_explore spec ~jobs with
    | Error e ->
      Fmt.epr "%s@." e;
      exit 2
    | Ok (engine, depth) -> explore_main ~engine ~depth ~shrink ~stats ~k ~inputs config)
  | None ->
  (* Streaming observers: spans and stats always (they are O(1) and
     cheap), JSONL export when --trace-out was given. *)
  let registers = Shm.Memory.size (Shm.Config.mem config) in
  let span = Obs.Span.create () in
  let exec_stats = Obs.Stats.create ~n ~registers () in
  let trace_chan =
    Option.map
      (fun path ->
        try open_out path
        with Sys_error e ->
          Fmt.epr "--trace-out: %s@." e;
          exit 2)
      trace_out
  in
  let sink =
    Obs.Sink.tee
      (Obs.Span.sink span :: Obs.Stats.sink exec_stats
      :: (match trace_chan with Some oc -> [ Obs.Jsonl.sink_to_channel oc ] | None -> []))
  in
  let result =
    Shm.Exec.run ~record:(trace || diagram) ~sink ~sched ~inputs ~max_steps config
  in
  Option.iter close_out trace_chan;
  if trace then
    Fmt.pr "@[<v>--- trace ---@,%a@,-------------@]@." Shm.Exec.pp_trace
      result.Shm.Exec.trace;
  if diagram then
    Fmt.pr "@[<v>--- space-time diagram (first 80 steps) ---@,%a@]@."
      (fun ppf -> Shm.Diagram.pp ~len:80 ~n ppf)
      result.Shm.Exec.trace;
  Fmt.pr "algorithm: %s over %s snapshot, scheduler: %s@."
    (match algo with
    | One_shot -> "one-shot (Fig. 3)"
    | Repeated -> "repeated (Fig. 4)"
    | Anonymous -> "anonymous (Fig. 5)"
    | Baseline -> "DFGR'13 baseline")
    (Agreement.Instances.impl_name impl)
    (Shm.Schedule.name sched);
  Spec.Properties.by_instance result.Shm.Exec.config
  |> List.iter (fun (inst, ins, outs) ->
         Fmt.pr "instance %d: in {%a} out {%a}@." inst
           Fmt.(list ~sep:comma Shm.Value.pp)
           (Spec.Properties.distinct_values ins)
           Fmt.(list ~sep:comma Shm.Value.pp)
           (Spec.Properties.distinct_values outs));
  (match Spec.Properties.check_safety ~k result.Shm.Exec.config with
  | Ok () -> Fmt.pr "safety: OK@."
  | Error e -> Fmt.pr "safety: VIOLATED — %s@." e);
  Fmt.pr "stopped: %s after %d steps; registers written: %d@."
    (match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> "quiescent"
    | Shm.Exec.Fuel_exhausted -> "fuel exhausted")
    result.Shm.Exec.steps
    (Agreement.Runner.registers_used result);
  if stats then begin
    Fmt.pr "--- stats ---@.%a@." Obs.Stats.pp exec_stats;
    Fmt.pr "%a@." Obs.Span.pp span
  end;
  Option.iter (fun path -> Fmt.pr "trace written to %s (JSONL)@." path) trace_out

(* ------------------------------------------------------------------ *)
(* The `trace` subcommand: record a causally-linked trace of one run
   (or one exploration) and export it as Chrome trace-event JSON for
   Perfetto, plus optionally the raw span JSONL.  Single-run mode
   records the register-coverage timeline (covered = poised writes,
   written = the space measure) through Exec's probe hook; explore mode
   records per-domain DPOR worker timelines, steal flows, and the
   exploration counter tracks. *)

let trace_main backend algo n m k impl sched_spec rounds registers explore jobs
    max_steps sets out jsonl_out stats =
  set_memory_backend backend;
  let params = Agreement.Params.make ~n ~m ~k in
  let impl = impl_of impl in
  let config = build_config ~algo ~impl ~registers params in
  let rounds =
    match algo with One_shot | Baseline -> 1 | Repeated | Anonymous -> rounds
  in
  let input_fn pid instance = Shm.Value.int ((100 * instance) + pid) in
  let inputs = Shm.Exec.repeated_inputs ~rounds input_fn in
  let tr = Obs.Trace.create () in
  let prof = Obs.Prof.create () in
  let series = Obs.Prof.Series.create () in
  let code =
    Obs.Trace.with_attached tr (fun () ->
        match explore with
        | Some spec -> (
          match parse_explore spec ~jobs with
          | Error e ->
            Fmt.epr "%s@." e;
            exit 2
          | Ok (engine, depth) ->
            let check = Spec.Properties.check_safety ~k in
            let metrics = Obs.Metrics.create () in
            let outcome =
              Spec.Modelcheck.run ~engine ~depth ~inputs ~metrics ~prof ~series
                ~check config
            in
            Fmt.pr "engine: %s, depth bound: %d — %a@."
              (Spec.Modelcheck.engine_name engine)
              depth Spec.Modelcheck.pp_outcome outcome;
            (match outcome with Spec.Modelcheck.Ok_bounded _ -> 0 | _ -> 1))
        | None ->
          let sched =
            match parse_sched sched_spec ~n with
            | Ok s -> s
            | Error e ->
              Fmt.epr "%s@." e;
              exit 2
          in
          (* the coverage probe sees the configuration after each event;
             [--cov-sets] additionally records the sets themselves *)
          let probe = Obs.Coverage.ambient_probe ~sets () in
          let root =
            Obs.Trace.begin_span tr ~cat:"exec"
              ~args:[ ("sched", Obs.Json.String (Shm.Schedule.name sched)) ]
              "run"
          in
          let result = Shm.Exec.run ?probe ~sched ~inputs ~max_steps config in
          Obs.Trace.end_span tr
            ~args:[ ("steps", Obs.Json.Int result.Shm.Exec.steps) ]
            root;
          Fmt.pr "ran %d steps (%s); registers written: %d@."
            result.Shm.Exec.steps
            (match result.Shm.Exec.stopped with
            | Shm.Exec.All_quiescent -> "quiescent"
            | Shm.Exec.Fuel_exhausted -> "fuel exhausted")
            (Obs.Coverage.num_written result.Shm.Exec.config);
          0)
  in
  (try Obs.Chrome_trace.save out tr
   with Sys_error e ->
     Fmt.epr "--out: %s@." e;
     exit 2);
  Fmt.pr "chrome trace written to %s (open in https://ui.perfetto.dev)@." out;
  Option.iter
    (fun path ->
      (try Obs.Trace.save_jsonl path tr
       with Sys_error e ->
         Fmt.epr "--jsonl: %s@." e;
         exit 2);
      Fmt.pr "spans written to %s (JSONL)@." path)
    jsonl_out;
  if stats then begin
    if not (Obs.Prof.is_empty prof) then
      Fmt.pr "--- phase breakdown ---@.%a@." Obs.Prof.pp prof;
    if Obs.Prof.Series.length series > 0 then
      Fmt.pr "--- exploration series ---@.%a@." Obs.Prof.Series.pp series;
    Fmt.pr "--- trace ---@.%a@." Obs.Trace.pp tr
  end;
  exit code

let trace_cmd =
  let algo =
    Arg.(value & opt algo_conv One_shot & info [ "algo"; "a" ] ~doc:"Algorithm to run.")
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of processes.") in
  let m = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Obstruction bound.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement bound.") in
  let impl =
    Arg.(value & opt impl_conv `Atomic & info [ "impl" ] ~doc:"Snapshot implementation.")
  in
  let sched =
    Arg.(
      value & opt string "quantum:300"
      & info [ "sched"; "s" ]
          ~doc:
            "Scheduler (single-run mode): round-robin | quantum[:Q] | random[:SEED] | \
             solo:P | m-bounded:SEED[:M].")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds"; "r" ] ~doc:"Instances (repeated).")
  in
  let registers =
    Arg.(
      value
      & opt (some int) None
      & info [ "registers" ] ~docv:"R" ~doc:"Override the register budget.")
  in
  let explore =
    Arg.(
      value
      & opt (some string) None
      & info [ "explore" ] ~docv:"ENGINE:DEPTH"
          ~doc:
            "Trace a model-checking exploration instead of a single run: naive:DEPTH | \
             dpor:DEPTH | dpor-nocache:DEPTH.  With --jobs > 1 the trace shows \
             per-domain worker timelines and steal flows.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~doc:"Worker domains for --explore dpor (default 1).")
  in
  let max_steps =
    Arg.(value & opt int 500_000 & info [ "max-steps" ] ~doc:"Step budget (single run).")
  in
  let sets =
    Arg.(
      value & flag
      & info [ "cov-sets" ]
          ~doc:
            "Record the covered/written register sets themselves on every write \
             event, not just their sizes (heavier; single-run mode).")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Chrome trace-event output file (load at ui.perfetto.dev).")
  in
  let jsonl_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also dump the raw spans as JSONL.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the phase breakdown, exploration series, and span summary.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record a causal trace — spans, register-coverage timeline, per-domain DPOR \
          worker timelines with steal flows — and export Chrome trace-event JSON \
          loadable in Perfetto.")
    Term.(
      const trace_main $ memory_backend_arg $ algo $ n $ m $ k $ impl $ sched $ rounds
      $ registers $ explore $ jobs $ max_steps $ sets $ out $ jsonl_out $ stats)

(* ------------------------------------------------------------------ *)
(* The `analyze` subcommand: static protocol analyzer (lib/analyze).   *)

let print_diags ~witness diags =
  List.iter
    (fun (d : Analyze.Lint.diag) ->
      if witness then Fmt.pr "  %a@." Analyze.Lint.pp_diag d
      else
        Fmt.pr "  [%s] %s: %s@."
          (Analyze.Lint.severity_name d.Analyze.Lint.severity)
          d.Analyze.Lint.rule d.Analyze.Lint.message)
    diags

let analyze_mutants ~witness ~params =
  Fmt.pr "--- mutants (must be rejected) ---@.";
  List.fold_left
    (fun ok (mu : Analyze.Mutants.mutant) ->
      let summary, diags = Analyze.Mutants.check mu params in
      let rejected = Analyze.Mutants.rejected mu params in
      let static = Analyze.Absint.IntSet.cardinal summary.Analyze.Absint.writes in
      Fmt.pr "%s at %s: static footprint %d, bound %d, lint errors %d -> %s@."
        mu.Analyze.Mutants.name
        (Agreement.Params.to_string params)
        static (mu.Analyze.Mutants.bound params)
        (List.length (Analyze.Lint.errors diags))
        (if rejected then "rejected" else "ACCEPTED (analyzer failure)");
      (* the witness that pins the rejection *)
      (if static > mu.Analyze.Mutants.bound params then
         match
           Analyze.Absint.write_witness summary (mu.Analyze.Mutants.bound params)
         with
         | Some w when witness ->
           Fmt.pr "  witness (write beyond bound):@.    %a@."
             (Fmt.list ~sep:(Fmt.any "@.    ") Fmt.string)
             w
         | Some _ -> Fmt.pr "  witness available (re-run with --witness)@."
         | None -> ());
      print_diags ~witness (Analyze.Lint.errors diags);
      ok && rejected)
    true Analyze.Mutants.all

(* The dataflow engine is versioned with the protocol grammar it
   consumes, so SARIF logs and corpus caches key on the same string. *)
let analyzer_version = Fuzz.Gen.version

let write_text path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* --protocol execution: run or model-check the protocol under the
   selected engine (free-monad interpreter or bytecode vm); both see
   the fuzzer's input space, so the two engines' verdicts are directly
   comparable (the vm oracle enforces run equivalence; this surface
   makes it inspectable by hand). *)
let run_protocol ~engine prog =
  let r = Agreement.Runner.run_proto ~engine prog in
  Fmt.pr "@.run (%s engine): %d steps, %s; %d register(s) written {%a}@."
    (Agreement.Runner.engine_name engine)
    r.Agreement.Runner.steps
    (match r.Agreement.Runner.stopped with
    | Shm.Exec.All_quiescent -> "quiescent"
    | Shm.Exec.Fuel_exhausted -> "fuel exhausted")
    (List.length r.Agreement.Runner.written)
    Fmt.(list ~sep:comma int)
    r.Agreement.Runner.written;
  List.iter
    (fun (pid, inst, v) ->
      Fmt.pr "  p%d decides %a (instance %d)@." pid Shm.Value.pp v inst)
    r.Agreement.Runner.io_outputs

let explore_protocol ~engine ~depth prog =
  let mc_engine = Spec.Modelcheck.Dpor { cache = true; jobs = 1 } in
  let outcome =
    match (engine : Agreement.Runner.engine) with
    | Agreement.Runner.Interp ->
      Spec.Modelcheck.run ~engine:mc_engine ~depth ~inputs:Fuzz.Gen.inputs
        ~check:(Spec.Properties.check_safety ~k:1)
        (Fuzz.Gen.config prog)
    | Agreement.Runner.Vm ->
      Spec.Modelcheck.run_vm ~engine:mc_engine ~depth ~inputs:Fuzz.Gen.inputs
        ~check:(Spec.Properties.check_safety_io ~k:1)
        prog
  in
  Fmt.pr "@.explore (%s engine, depth %d): %a@."
    (Agreement.Runner.engine_name engine)
    depth Spec.Modelcheck.pp_outcome outcome;
  match outcome with Spec.Modelcheck.Ok_bounded _ -> () | _ -> exit 1

(* --protocol mode: run the dataflow engine (lib/analyze IR, not the
   free-monad registry) on one first-order protocol string. *)
let analyze_protocol ~ir ~indep ~optimize ~witness ~sarif_path ~json_path
    ~engine ~run ~explore_depth s =
  let prog =
    match Analyze.Ir.parse s with
    | Ok p -> p
    | Error msg ->
      Fmt.epr "protocol parse error: %s@." msg;
      exit 2
  in
  let artifact = "protocol:" ^ Analyze.Ir.to_string prog in
  let d = Analyze.Dataflow.analyze prog in
  Fmt.pr "%a@." Analyze.Dataflow.pp d;
  if ir then
    Fmt.pr "@.control-flow graph:@.%a@." Analyze.Ir.pp_cfg
      (Analyze.Ir.cfg_of_prog prog);
  let facts = Analyze.Indep.of_dataflow d in
  let flow_diags = Analyze.Indep.lint d in
  if indep then begin
    Fmt.pr "@.independence facts: %a@." Analyze.Indep.pp_facts facts;
    if flow_diags = [] then Fmt.pr "no flow diagnostics@."
    else begin
      Fmt.pr "flow diagnostics:@.";
      print_diags ~witness flow_diags
    end
  end;
  let opt = if optimize then Some (Analyze.Optim.optimize prog) else None in
  Option.iter (fun r -> Fmt.pr "@.%a@." Analyze.Optim.pp r) opt;
  (match sarif_path with
  | None -> ()
  | Some path ->
    write_text path
      (Analyze.Sarif.to_string ~tool_version:analyzer_version
         (List.map (fun dg -> (artifact, dg)) flow_diags));
    Fmt.pr "wrote %s@." path);
  (match json_path with
  | None -> ()
  | Some path ->
    let row =
      Obs.Json.Obj
        ([
           ("kind", Obs.Json.String "protocol");
           ("protocol", Obs.Json.String (Analyze.Ir.to_string prog));
           ("registers", Obs.Json.Int prog.Analyze.Ir.registers);
           ("n", Obs.Json.Int prog.Analyze.Ir.n);
           ("widened", Obs.Json.Bool facts.Analyze.Indep.widened);
           ( "const_regs",
             Obs.Json.Arr
               (List.map
                  (fun (r, _) -> Obs.Json.Int r)
                  facts.Analyze.Indep.const_regs) );
           ( "dead_regs",
             Obs.Json.Arr
               (List.map (fun r -> Obs.Json.Int r) facts.Analyze.Indep.dead_regs)
           );
           ("flow_diags", Obs.Json.Int (List.length flow_diags));
         ]
        @
        match opt with
        | None -> []
        | Some r ->
          [
            ("optimized", Obs.Json.String (Analyze.Ir.to_string r.Analyze.Optim.optimized));
            ("folded", Obs.Json.Int r.Analyze.Optim.folded);
            ("dropped", Obs.Json.Int r.Analyze.Optim.dropped);
          ])
    in
    Obs.Bench_out.write ~experiment:"analyze-protocol" ~path [ row ];
    Fmt.pr "wrote %s@." path);
  if run then run_protocol ~engine prog;
  Option.iter (fun depth -> explore_protocol ~engine ~depth prog) explore_depth

let analyze backend algos all n m k max_n mutants json_path witness no_dynamic
    protocol ir indep optimize sarif_path engine_s run explore_depth =
  set_memory_backend backend;
  let engine =
    match Agreement.Runner.engine_of_string engine_s with
    | Some e -> e
    | None ->
      Fmt.epr "unknown engine %S; valid: interp | vm@." engine_s;
      exit 2
  in
  (match protocol with
  | Some s ->
    analyze_protocol ~ir ~indep ~optimize ~witness ~sarif_path ~json_path
      ~engine ~run ~explore_depth s;
    exit 0
  | None ->
    if optimize then begin
      Fmt.epr "--optimize rewrites first-order protocols; pass one with --protocol@.";
      exit 2
    end;
    if run || explore_depth <> None then begin
      Fmt.epr "--run/--explore-depth execute first-order protocols; pass one \
               with --protocol@.";
      exit 2
    end);
  let algos = match algos with [] -> None | l -> Some l in
  (match algos with
  | Some l ->
    List.iter
      (fun a ->
        if Analyze.Registry.find a = None then begin
          Fmt.epr "unknown algorithm %S; known: %s@." a
            (String.concat " | " Analyze.Registry.names);
          exit 2
        end)
      l
  | None -> ());
  let dynamic = not no_dynamic in
  let rows =
    if all then Analyze.Report.sweep ~dynamic ~max_n ?algos ()
    else
      let p = Agreement.Params.make ~n ~m ~k in
      Analyze.Registry.all
      |> List.filter (fun (e : Analyze.Registry.entry) ->
             (match algos with None -> true | Some l -> List.mem e.name l)
             && e.applicable p)
      |> List.map (fun e -> Analyze.Report.row_for ~dynamic e p)
  in
  Fmt.pr "%a@." Analyze.Report.pp_header ();
  List.iter (fun r -> Fmt.pr "%a@." Analyze.Report.pp_row r) rows;
  (* with --witness in single-triple mode, show the discovered path to
     every register in each algorithm's static footprint *)
  if witness && not all then begin
    let p = Agreement.Params.make ~n ~m ~k in
    Analyze.Registry.all
    |> List.filter (fun (e : Analyze.Registry.entry) ->
           (match algos with None -> true | Some l -> List.mem e.name l)
           && e.applicable p)
    |> List.iter (fun (e : Analyze.Registry.entry) ->
           let summary =
             Analyze.Absint.analyze ~rounds:e.Analyze.Registry.rounds
               (e.Analyze.Registry.config p)
           in
           Fmt.pr "@.%s write witnesses:@." e.Analyze.Registry.name;
           Analyze.Absint.IntSet.iter
             (fun r ->
               match Analyze.Absint.write_witness summary r with
               | Some w ->
                 Fmt.pr "    R%d:@.      %a@." r
                   (Fmt.list ~sep:(Fmt.any "@.      ") Fmt.string)
                   w
               | None -> ())
             summary.Analyze.Absint.writes)
  end;
  let selected p =
    Analyze.Registry.all
    |> List.filter (fun (e : Analyze.Registry.entry) ->
           (match algos with None -> true | Some l -> List.mem e.name l)
           && e.applicable p)
  in
  if ir && not all then begin
    let p = Agreement.Params.make ~n ~m ~k in
    selected p
    |> List.iter (fun (e : Analyze.Registry.entry) ->
           let lowered =
             Analyze.Ir.lower ~rounds:e.Analyze.Registry.rounds
               (e.Analyze.Registry.config p)
           in
           Fmt.pr "@.%s lowered IR:@." e.Analyze.Registry.name;
           Array.iter (fun l -> Fmt.pr "%a@." Analyze.Ir.pp_lowered l) lowered)
  end;
  if indep && not all then begin
    let p = Agreement.Params.make ~n ~m ~k in
    selected p
    |> List.iter (fun (e : Analyze.Registry.entry) ->
           Fmt.pr "@.%s independence facts: %a@." e.Analyze.Registry.name
             Analyze.Indep.pp_facts
             (Analyze.Indep.of_config (e.Analyze.Registry.config p)))
  end;
  (match sarif_path with
  | None -> ()
  | Some path ->
    let results =
      List.concat_map
        (fun (r : Analyze.Report.row) ->
          List.map
            (fun dg -> ("algo:" ^ r.Analyze.Report.algo, dg))
            r.Analyze.Report.diags)
        rows
    in
    write_text path
      (Analyze.Sarif.to_string ~tool_version:analyzer_version results);
    Fmt.pr "wrote %s (%d results)@." path (List.length results));
  let bad = Analyze.Report.violations rows in
  List.iter
    (fun (r : Analyze.Report.row) ->
      Fmt.pr "@.violation: %s at %s (static %d vs bound %d, dynamic within \
              static: %b):@."
        r.Analyze.Report.algo
        (Agreement.Params.to_string r.Analyze.Report.params)
        r.Analyze.Report.static_writes r.Analyze.Report.bound
        r.Analyze.Report.dynamic_within_static;
      print_diags ~witness (Analyze.Lint.errors r.Analyze.Report.diags))
    bad;
  let mutants_ok =
    if mutants then
      analyze_mutants ~witness ~params:(Agreement.Params.make ~n ~m ~k)
    else true
  in
  (match json_path with
  | None -> ()
  | Some path ->
    let mutant_rows =
      if mutants then
        List.map
          (fun (mu : Analyze.Mutants.mutant) ->
            let p = Agreement.Params.make ~n ~m ~k in
            Obs.Json.Obj
              [
                ("kind", Obs.Json.String "mutant");
                ("algo", Obs.Json.String mu.Analyze.Mutants.name);
                ("n", Obs.Json.Int p.Agreement.Params.n);
                ("m", Obs.Json.Int p.Agreement.Params.m);
                ("k", Obs.Json.Int p.Agreement.Params.k);
                ("rejected", Obs.Json.Bool (Analyze.Mutants.rejected mu p));
              ])
          Analyze.Mutants.all
      else []
    in
    let sweep_rows =
      List.map
        (fun r ->
          match Analyze.Report.row_to_json r with
          | Obs.Json.Obj fields ->
            Obs.Json.Obj (("kind", Obs.Json.String "sweep") :: fields)
          | j -> j)
        rows
    in
    Obs.Bench_out.write ~experiment:"analyze" ~path (sweep_rows @ mutant_rows);
    Fmt.pr "wrote %s@." path);
  Fmt.pr "@.%d rows, %d violations%s@." (List.length rows) (List.length bad)
    (if mutants then
       Fmt.str ", mutants %s" (if mutants_ok then "all rejected" else "NOT all rejected")
     else "");
  if bad <> [] || not mutants_ok then exit 1

let analyze_cmd =
  let algos =
    Arg.(
      value & opt_all string []
      & info [ "algo"; "a" ] ~docv:"NAME"
          ~doc:"Algorithm(s) to analyze (repeatable): oneshot | repeated | \
                anonymous | baseline.  Default: all.")
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Sweep the whole parameter grid (n <= $(b,--max-n), 1 <= m <= k \
                < n) instead of one triple.")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Number of processes.") in
  let m = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Obstruction bound.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement bound.") in
  let max_n =
    Arg.(value & opt int 6 & info [ "max-n" ] ~doc:"Grid limit for --all.")
  in
  let mutants =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:"Also analyze the seeded broken protocols; exit 1 unless every \
                one is rejected.")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the rows as a BENCH-style JSON document.")
  in
  let witness =
    Arg.(
      value & flag
      & info [ "witness" ] ~doc:"Print full witness paths for every finding.")
  in
  let no_dynamic =
    Arg.(
      value & flag
      & info [ "no-dynamic" ]
          ~doc:"Skip the concrete runs; static analysis and lints only.")
  in
  let protocol =
    Arg.(
      value
      & opt (some string) None
      & info [ "protocol" ] ~docv:"PROG"
          ~doc:
            "Analyze a first-order protocol string (the fuzz generator's \
             compact form, e.g. 'r2 n2 : R0; W1<-in; D last') with the \
             dataflow engine instead of the registry algorithms.")
  in
  let ir =
    Arg.(
      value & flag
      & info [ "ir" ]
          ~doc:
            "Print the intermediate representation: the protocol's \
             control-flow graph (with --protocol) or each algorithm's \
             abstractly-lowered point trees.")
  in
  let indep =
    Arg.(
      value & flag
      & info [ "indep" ]
          ~doc:
            "Print the conditional-independence facts the DPOR refinement \
             consumes (constant/dead registers, redundant scans), plus the \
             flow/* diagnostics with --protocol.")
  in
  let optimize =
    Arg.(
      value & flag
      & info [ "optimize" ]
          ~doc:
            "Rewrite the protocol (dead-register write elimination, constant \
             folding, redundant-scan collapse) and print the edit list.  \
             Requires --protocol.")
  in
  let sarif_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Write the lint diagnostics as a SARIF 2.1.0 log to FILE.")
  in
  let engine =
    Arg.(
      value & opt string "interp"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Execution engine for --run/--explore-depth: $(b,interp) (the \
             free-monad reference interpreter) or $(b,vm) (the bytecode \
             engine, see docs/PERFORMANCE.md).  Requires --protocol.")
  in
  let run =
    Arg.(
      value & flag
      & info [ "run" ]
          ~doc:
            "Also execute the protocol (round-robin schedule, the fuzzer's \
             input space) under --engine and print steps, written registers \
             and decisions.  Requires --protocol.")
  in
  let explore_depth =
    Arg.(
      value
      & opt (some int) None
      & info [ "explore-depth" ] ~docv:"DEPTH"
          ~doc:
            "Also model-check the protocol (DPOR, 1-agreement safety) to \
             DEPTH scheduler steps under --engine; exits 1 on a violation.  \
             Requires --protocol.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Statically analyze the algorithms: abstract-interpretation register \
          footprints checked against the paper bounds and against dynamically \
          measured registers, plus well-formedness and anonymity lints.  With \
          --protocol, run the dataflow engine (reaching definitions, \
          liveness, value sets) on a first-order protocol instead.  Exits 1 \
          on any violation.")
    Term.(
      const analyze $ memory_backend_arg $ algos $ all $ n $ m $ k $ max_n $ mutants
      $ json_path $ witness $ no_dynamic $ protocol $ ir $ indep $ optimize
      $ sarif_path $ engine $ run $ explore_depth)

(* ------------------------------------------------------------------ *)
(* The `conform` subcommand: native conformance harness (lib/conform). *)

let conform obj domains components ops chaos seed iters mutant m k stats =
  let profile =
    match Conform.Chaos.profile_of_string chaos with
    | Some p -> p
    | None ->
      Fmt.epr "unknown chaos profile %S; valid: %s@." chaos
        (String.concat " | "
           (List.map Conform.Chaos.profile_name Conform.Chaos.all_profiles));
      exit 2
  in
  let metrics = Obs.Metrics.create () in
  let finish code =
    if stats then Fmt.pr "--- metrics ---@.%a@." Obs.Metrics.pp metrics;
    exit code
  in
  match obj with
  | `Snapshot -> (
    let sut =
      match mutant with
      | None -> Conform.Sut.real
      | Some name -> (
        match Conform.Sut.by_name name with
        | Some s -> s
        | None ->
          Fmt.epr "unknown implementation %S; valid: %s@." name
            (String.concat " | " (List.map (fun s -> s.Conform.Sut.name) Conform.Sut.all));
          exit 2)
    in
    let cfg = { Conform.Harness.domains; components; ops; profile; seed; iters } in
    Fmt.pr "object: snapshot (%s), %d domains x %d ops, %d components, chaos %s, seed %d, \
            %d iterations@."
      sut.Conform.Sut.name domains ops components
      (Conform.Chaos.profile_name profile)
      seed iters;
    let outcome = Conform.Harness.run_snapshot ~metrics ~sut cfg in
    Fmt.pr "%a@." Conform.Harness.pp_outcome outcome;
    match outcome with
    | Conform.Harness.Pass _ -> finish 0
    | Conform.Harness.Fail v ->
      (* the seed pins the workload and chaos plan, but the physical
         race still needs retries: give the replay a few dozen
         iterations (sub-second) rather than promising one-shot
         reproduction of a timing-dependent failure *)
      Fmt.pr "replay: sa_run conform --object snapshot%s --domains %d --components %d \
              --ops %d --chaos %s --seed %d --iters 40@."
        (match mutant with Some mu -> " --mutant " ^ mu | None -> "")
        domains components ops
        (Conform.Chaos.profile_name profile)
        v.Conform.Harness.iter_seed;
      finish 1)
  | `Agreement -> (
    if mutant <> None then begin
      Fmt.epr "--mutant applies to --object snapshot only@.";
      exit 2
    end;
    let params = Agreement.Params.make ~n:domains ~m ~k in
    Fmt.pr "object: agreement (Fig. 3 native, %s), chaos %s, seed %d, %d instances@."
      (Agreement.Params.to_string params)
      (Conform.Chaos.profile_name profile)
      seed iters;
    let outcome =
      Conform.Harness.run_agreement ~metrics ~params ~profile ~seed ~iters ()
    in
    Fmt.pr "%a@." Conform.Harness.pp_agreement_outcome outcome;
    match outcome with
    | Conform.Harness.Agree_pass _ -> finish 0
    | Conform.Harness.Agree_fail _ -> finish 1)

let conform_cmd =
  let obj =
    Arg.(
      value
      & opt (enum [ ("snapshot", `Snapshot); ("agreement", `Agreement) ]) `Snapshot
      & info [ "object" ] ~doc:"Object to audit: snapshot | agreement.")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~doc:"OCaml domains (= processes).")
  in
  let components =
    Arg.(value & opt int 4 & info [ "components" ] ~doc:"Snapshot components.")
  in
  let ops =
    Arg.(value & opt int 12 & info [ "ops" ] ~doc:"Operations per domain per iteration.")
  in
  let chaos =
    Arg.(
      value & opt string "calm"
      & info [ "chaos" ]
          ~doc:"Chaos profile: calm | yields | stalls | crashes | mixed.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed (replayable).") in
  let iters =
    Arg.(value & opt int 100 & info [ "iters" ] ~doc:"Iterations (fresh object each).")
  in
  let mutant =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            "Audit a deliberately broken snapshot instead of the real one: \
             single-collect | torn-update.  The harness must reject it.")
  in
  let m = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Obstruction bound (agreement).") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement bound (agreement).") in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the conform.* metrics registry.")
  in
  Cmd.v
    (Cmd.info "conform"
       ~doc:
         "Audit the native multicore layer: capture real histories, check real-time \
          linearizability (chaos injection, crash-pending completion), shrink failures \
          to 1-minimal witnesses")
    Term.(
      const conform $ obj $ domains $ components $ ops $ chaos $ seed $ iters $ mutant
      $ m $ k $ stats)

(* ------------------------------------------------------------------ *)
(* The `serve` subcommand: sharded batched serving layer (lib/service). *)

let serve backend shards domains clients ops keys theta seed app_name batch
    window n m k trace_out stats =
  set_memory_backend backend;
  let app =
    match Service.App.by_name app_name with
    | Some app -> app
    | None ->
      Fmt.epr "unknown app %S; valid: %s@." app_name
        (String.concat " | "
           (List.map (fun a -> a.Service.App.name) Service.App.all));
      exit 2
  in
  let params =
    try Agreement.Params.make ~n ~m ~k
    with Invalid_argument msg ->
      Fmt.epr "%s@." msg;
      exit 2
  in
  let server =
    Service.Server.create ~batch_max:batch ~window ~app ~seed ~shards ~domains
      params
  in
  let cfg =
    { Service.Loadgen.clients; ops_per_client = ops; keys; theta; seed }
  in
  Fmt.pr "serve: %d shards x %s, %d domains (%s), app %s, %d clients x %d ops, \
          zipf theta %.2f, seed %d@."
    shards
    (Agreement.Params.to_string params)
    domains
    (if domains = 0 then "caller-pumped" else "pool")
    app.Service.App.name clients ops theta seed;
  let tr = Option.map (fun _ -> Obs.Trace.create ()) trace_out in
  let report =
    match tr with
    | None -> Service.Loadgen.run server cfg
    | Some tr -> Obs.Trace.with_attached tr (fun () -> Service.Loadgen.run server cfg)
  in
  Fmt.pr "committed %d commands in %.1f ms: %.0f cmds/s, p50 %.1f us, p99 %.1f us, \
          %d backpressure stalls@."
    report.Service.Loadgen.ops
    (float_of_int report.Service.Loadgen.wall_ns /. 1e6)
    report.Service.Loadgen.throughput_cps
    (report.Service.Loadgen.p50_ns /. 1e3)
    (report.Service.Loadgen.p99_ns /. 1e3)
    report.Service.Loadgen.stalls;
  Fmt.pr "space: %d registers total (%d shards x min(n+2m-k, n) = %d each)@."
    (Service.Server.registers_used server)
    shards
    (min (n + (2 * m) - k) n);
  if stats then
    List.iter
      (fun (s : Service.Shard.stats) ->
        Fmt.pr "  shard %d: %d slots, %d commands, %d steps, %d registers, %d alive%s@."
          s.Service.Shard.shard s.Service.Shard.slots s.Service.Shard.committed
          s.Service.Shard.steps s.Service.Shard.registers s.Service.Shard.alive
          (if s.Service.Shard.stuck then " [stuck]" else ""))
      (Service.Server.stats server);
  (match (trace_out, tr) with
  | Some out, Some tr ->
    (try Obs.Chrome_trace.save out tr
     with Sys_error e ->
       Fmt.epr "--trace-out: %s@." e;
       exit 2);
    Fmt.pr "chrome trace written to %s (open in https://ui.perfetto.dev)@." out
  | _ -> ());
  match Service.Server.verdict server with
  | Ok () ->
    Fmt.pr "verdict: ok (every shard passes validity + %d-agreement%s)@." k
      (if app.Service.App.name = "register" then " + linearizability" else "");
    exit 0
  | Error errors ->
    List.iter (Fmt.epr "verdict: %s@.") errors;
    exit 1

let serve_cmd =
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Independent agreement shards.")
  in
  let domains =
    Arg.(
      value & opt int 2
      & info [ "domains" ]
          ~doc:"Worker domains stepping the shards; 0 = deterministic caller-pumped mode.")
  in
  let clients =
    Arg.(value & opt int 32 & info [ "clients" ] ~doc:"Closed-loop clients.")
  in
  let ops =
    Arg.(value & opt int 8 & info [ "ops" ] ~doc:"Commands per client.")
  in
  let keys =
    Arg.(value & opt int 1024 & info [ "keys" ] ~doc:"Key-space size (keys hash onto shards).")
  in
  let theta =
    Arg.(
      value & opt float 0.9
      & info [ "skew"; "theta" ] ~doc:"Zipf skew theta; 0 = uniform keys.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed (replayable).") in
  let app_arg =
    Arg.(
      value & opt string "register"
      & info [ "app" ] ~doc:"Replicated application: register | counter.")
  in
  let batch =
    Arg.(value & opt int 16 & info [ "batch" ] ~doc:"Max commands per agreement slot.")
  in
  let window =
    Arg.(
      value & opt int 64
      & info [ "window" ] ~doc:"Per-shard in-flight window (backpressure bound).")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"Replicas per shard.") in
  let m = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Obstruction bound.") in
  let k = Arg.(value & opt int 1 & info [ "k" ] ~doc:"Agreement bound.") in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Record per-slot service spans and write a Chrome trace-event file \
             (load at ui.perfetto.dev).")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the per-shard breakdown.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a replicated application over sharded, batched repeated set \
          agreement: Zipfian closed-loop load, per-shard backpressure, and a \
          conformance verdict (validity + k-agreement + linearizability) at the \
          end.  Exits 1 if any shard fails its verdict.")
    Term.(
      const serve $ memory_backend_arg $ shards $ domains $ clients $ ops $ keys
      $ theta $ seed $ app_arg $ batch $ window $ n $ m $ k $ trace_out $ stats)

(* ------------------------------------------------------------------ *)
(* The `fuzz` subcommand: coverage-guided differential fuzzing of the
   simulator stack (lib/fuzz). *)

(* Corpus files are `credit | program | schedule` lines (see
   --corpus-out); `#` lines and blanks are comments.  Malformed lines
   are skipped with a warning rather than failing the campaign — a
   stale cache from an older generator grammar should degrade, not
   break, and CI keys the cache on Fuzz.Gen.version anyway. *)
let read_corpus path =
  let ic = open_in path in
  let seeds = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = String.trim (input_line ic) in
       incr lineno;
       if line <> "" && line.[0] <> '#' then
         match String.split_on_char '|' line with
         | [ _credit; prog_s; sched_s ] -> (
           match
             ( Fuzz.Gen.parse (String.trim prog_s),
               Fuzz.Gen.schedule_of_string (String.trim sched_s) )
           with
           | Ok p, Ok s -> seeds := (p, s) :: !seeds
           | Error msg, _ | _, Error msg ->
             Fmt.epr "%s:%d: skipping corpus line (%s)@." path !lineno msg)
         | _ ->
           Fmt.epr "%s:%d: skipping malformed corpus line@." path !lineno
     done
   with End_of_file -> close_in ic);
  List.rev !seeds

let fuzz_one ~budget ~seed ~corpus_in ~corpus_out oracle =
  let replay =
    match corpus_in with
    | None -> []
    | Some path ->
      let seeds = read_corpus path in
      Fmt.pr "replaying %d corpus seed(s) from %s@." (List.length seeds) path;
      seeds
  in
  let outcome = Fuzz.Driver.run ~replay ~oracle ~budget ~seed () in
  Fmt.pr "%a@." Fuzz.Driver.pp_stats outcome.Fuzz.Driver.stats;
  Option.iter
    (fun path ->
      let oc = open_out path in
      List.iter
        (fun (e : Fuzz.Corpus.entry) ->
          Printf.fprintf oc "%d | %s | %s\n" e.Fuzz.Corpus.credit
            (Fuzz.Gen.to_string e.Fuzz.Corpus.program)
            (Fuzz.Gen.schedule_to_string e.Fuzz.Corpus.schedule))
        outcome.Fuzz.Driver.corpus;
      close_out oc;
      Fmt.pr "corpus (%d entries) written to %s@."
        (List.length outcome.Fuzz.Driver.corpus)
        path)
    corpus_out;
  match outcome.Fuzz.Driver.witness with
  | None -> true
  | Some w ->
    Fmt.pr "%a@." Fuzz.Driver.pp_witness w;
    false

let fuzz oracle_s budget seed corpus_in corpus_out mutants =
  if mutants then begin
    let results = Fuzz.Oracle.mutant_sweep ~budget ~seed in
    let ok =
      List.fold_left
        (fun ok (r : Fuzz.Oracle.mutant_result) ->
          Fmt.pr "%-28s %s  %s@." r.Fuzz.Oracle.mutant
            (if r.Fuzz.Oracle.caught then "caught " else "MISSED ")
            r.Fuzz.Oracle.detail;
          ok && r.Fuzz.Oracle.caught)
        true results
    in
    exit (if ok then 0 else 1)
  end;
  let oracles =
    if String.lowercase_ascii oracle_s = "all" then Fuzz.Oracle.all
    else
      match Fuzz.Oracle.of_string oracle_s with
      | Some o -> [ o ]
      | None ->
        Fmt.epr "unknown oracle %S; valid: all %s@." oracle_s
          (String.concat " " (List.map Fuzz.Oracle.name Fuzz.Oracle.all));
        exit 2
  in
  let ok =
    List.fold_left
      (fun ok o -> fuzz_one ~budget ~seed ~corpus_in ~corpus_out o && ok)
      true oracles
  in
  exit (if ok then 0 else 1)

let fuzz_cmd =
  let oracle =
    Arg.(
      value & opt string "all"
      & info [ "oracle" ]
          ~doc:
            "Differential oracle to judge inputs with: analyzer | backend | \
             linearize | determinism | indep | optim | all.")
  in
  let budget =
    Arg.(
      value & opt int 200
      & info [ "budget" ] ~doc:"Inputs to generate and judge (executions).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ]
          ~doc:
            "Campaign seed.  A campaign is deterministic in (oracle, budget, \
             seed): re-running reproduces the same witness.")
  in
  let corpus_in =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-in" ] ~docv:"FILE"
          ~doc:
            "Replay a previous campaign's corpus file before generating: \
             seeds consume budget, earn coverage, and the interesting ones \
             re-enter the corpus so mutation builds on them.  This is how CI \
             persists fuzz progress across runs (cache keyed on the \
             generator version).")
  in
  let corpus_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-out" ] ~docv:"FILE"
          ~doc:"Write the final corpus (credit | program | schedule) to FILE.")
  in
  let mutants =
    Arg.(
      value & flag
      & info [ "mutants" ]
          ~doc:
            "Run the seeded-mutant regression sweep instead of fuzzing: every \
             analyzer and conformance mutant must be caught within the budget.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided differential fuzzing of the simulator stack: random \
          protocols + schedules, coverage feedback from state keys and analyzer \
          footprints, and joint 1-minimal shrinking of any divergence.  Exits 1 \
          with a replayable witness on divergence.")
    Term.(const fuzz $ oracle $ budget $ seed $ corpus_in $ corpus_out $ mutants)

let cmd =
  let algo =
    Arg.(value & opt algo_conv One_shot & info [ "algo"; "a" ] ~doc:"Algorithm to run.")
  in
  let n = Arg.(value & opt int 5 & info [ "n" ] ~doc:"Number of processes.") in
  let m = Arg.(value & opt int 1 & info [ "m" ] ~doc:"Obstruction bound.") in
  let k = Arg.(value & opt int 2 & info [ "k" ] ~doc:"Agreement bound.") in
  let impl =
    Arg.(value & opt impl_conv `Atomic & info [ "impl" ] ~doc:"Snapshot implementation.")
  in
  let sched =
    Arg.(
      value & opt string "quantum:300"
      & info [ "sched"; "s" ]
          ~doc:
            "Scheduler: round-robin | quantum[:Q] | random[:SEED] | solo:P | \
             m-bounded:SEED[:M].")
  in
  let rounds = Arg.(value & opt int 3 & info [ "rounds"; "r" ] ~doc:"Instances (repeated).") in
  let trace = Arg.(value & flag & info [ "trace"; "t" ] ~doc:"Print the full trace.") in
  let diagram =
    Arg.(value & flag & info [ "diagram"; "d" ] ~doc:"Print a space-time diagram.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print streaming metrics and span summary.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Stream the event trace to $(docv) as JSONL, one event per line.")
  in
  let max_steps =
    Arg.(value & opt int 500_000 & info [ "max-steps" ] ~doc:"Step budget.")
  in
  let registers =
    Arg.(
      value
      & opt (some int) None
      & info [ "registers" ] ~docv:"R"
          ~doc:
            "Override the register budget (components) of the instance.  Fewer than \
             n+2m-k voids the correctness argument — that is the point: combine with \
             --explore to exhibit violations of register-starved instances.")
  in
  let explore =
    Arg.(
      value
      & opt (some string) None
      & info [ "explore" ] ~docv:"ENGINE:DEPTH"
          ~doc:
            "Model-check over all schedules up to DEPTH instead of running one \
             schedule: naive:DEPTH | dpor:DEPTH | dpor-nocache:DEPTH.  Exits 1 on a \
             violation.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~doc:"Worker domains for --explore dpor (default 1).")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"Minimize the counterexample schedule found by --explore before printing.")
  in
  Cmd.group
    ~default:
      Term.(
        const run $ memory_backend_arg $ algo $ n $ m $ k $ impl $ sched $ rounds
        $ trace $ diagram $ stats $ trace_out $ max_steps $ registers $ explore $ jobs
        $ shrink)
    (Cmd.info "sa_run"
       ~doc:
         "Run m-obstruction-free k-set agreement in the simulator, or audit the native \
          layer with `conform'")
    [ conform_cmd; analyze_cmd; trace_cmd; serve_cmd; fuzz_cmd ]

let () = exit (Cmd.eval cmd)
