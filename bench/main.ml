(* The experiment harness: regenerates the paper's evaluation.

   The paper's results are Figure 1 (the bounds table) and the claims
   around it; each experiment below corresponds to a row of the
   per-experiment index in DESIGN.md (E1–E12) and prints the paper's
   expected numbers next to measured ones.  Bechamel microbenchmarks
   (B1–B7) measure per-propose latency of every algorithm/snapshot
   combination.

   Usage:
     main.exe                 run every table, series and microbench
     main.exe table <id>      one table: fig1-upper fig1-lower
                              fig1-anon-upper fig1-anon-nonblocking
                              fig1-anon-lower anon-frontier
                              conjecture-probe baseline
                              consensus-exact snapshot-ablation
                              explore conform analyze
     main.exe series <id>     one series: progress-vs-m steps-vs-n
                              diversity-vs-workload
     main.exe bechamel        microbenchmarks only *)

open Agreement
open Lowerbound

let section title = Fmt.pr "@.=== %s ===@." title

let check_mark ok = if ok then "ok" else "MISMATCH"

let perf_smoke = ref false

(* ------------------------------------------------------------------ *)
(* Bench history: every table run appends one JSONL entry (schema
   version, git rev, rows) to BENCH_history.jsonl, the repo's perf
   trajectory.  `diff` compares the last two runs of an experiment;
   `check` re-runs the perf table and gates it against the committed
   floors entry (machine-independent speedup ratios). *)

let history_path = "BENCH_history.jsonl"

(* Obs.History is subprocess-free by design; resolving the revision is
   the harness's job.  CI exposes GITHUB_SHA; locally ask git. *)
let git_rev () =
  match Sys.getenv_opt "GITHUB_SHA" with
  | Some s when String.length s >= 7 -> String.sub s 0 7
  | Some s -> s
  | None -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "unknown" in
      match Unix.close_process_in ic with Unix.WEXITED 0 -> line | _ -> "unknown"
    with _ -> "unknown")

(* The rows of the most recent write_bench, so `check` can gate the run
   it just performed without re-reading files. *)
let last_bench : (string * Obs.Json.t list) option ref = ref None

(* Machine-readable output: every table that prints paper-vs-measured
   numbers also writes BENCH_<id>.json next to it (schema in DESIGN.md
   §Observability), so results diff across PRs and CI archives them —
   and appends the same rows to the history. *)
let write_bench ~experiment ~file rows =
  Obs.Bench_out.write ~experiment ~path:file rows;
  last_bench := Some (experiment, rows);
  Obs.History.append ~path:history_path
    (Obs.History.make ~ts:(Unix.time ()) ~rev:(git_rev ()) ~smoke:!perf_smoke
       ~experiment rows);
  Fmt.pr "wrote %s (%d rows; history: %s)@." file (List.length rows) history_path

let point_fields ~n ~m ~k =
  [ ("n", Obs.Json.Int n); ("m", Obs.Json.Int m); ("k", Obs.Json.Int k) ]

(* ------------------------------------------------------------------ *)
(* E1: Figure 1, repeated non-anonymous upper bound min(n+2m−k, n).   *)

let fig1_upper () =
  section "E1  Figure 1 upper bound (non-anonymous repeated): min(n+2m-k, n)";
  Fmt.pr "%-12s %-8s %-10s %-8s@." "(n,m,k)" "bound" "measured" "status";
  let mismatches = ref 0 in
  let rows = ref [] in
  for n = 4 to 9 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let bound = Params.registers_upper p in
        let impl =
          if Params.r_oneshot p <= n then Instances.Atomic else Instances.Sw_based
        in
        let span = Obs.Span.create () in
        let result =
          Runner.run_repeated ~impl ~rounds:2 ~sink:(Obs.Span.sink span)
            ~sched:(Shm.Schedule.quantum_round_robin ~quantum:500 n)
            ~max_steps:3_000_000 p
        in
        let measured = Runner.registers_used result in
        let ok = measured <= bound in
        if not ok then incr mismatches;
        rows :=
          Obs.Json.Obj
            (point_fields ~n ~m ~k
            @ [
                ("bound", Obs.Json.Int bound);
                ("measured", Obs.Json.Int measured);
                ("ok", Obs.Json.Bool ok);
                ("steps", Obs.Json.Int result.Shm.Exec.steps);
              ]
            @ Obs.Bench_out.span_fields span)
          :: !rows;
        if k <= 3 || measured <> bound then
          Fmt.pr "%-12s %-8d %-10d %-8s@." (Params.to_string p) bound measured
            (check_mark ok)
      done
    done
  done;
  Fmt.pr "(rows with k>3 and measured = bound elided) mismatches: %d@." !mismatches;
  write_bench ~experiment:"fig1-upper" ~file:"BENCH_fig1.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E2: Theorem 2 adversary on starved and correct instances.           *)

let fig1_lower () =
  section "E2  Figure 1 lower bound (Theorem 2): n+m-k registers are necessary";
  Fmt.pr "%-12s %-12s %-44s@." "(n,m,k)" "registers" "Figure 2 construction outcome";
  let cases = [ (4, 1, 1); (5, 1, 1); (5, 1, 2); (5, 2, 2); (6, 1, 3); (6, 2, 3) ] in
  cases
  |> List.iter (fun (n, m, k) ->
         let p = Params.make ~n ~m ~k in
         let run registers =
           Theorem2.attack ~params:p ~registers
             ~make_config:(fun ~registers -> Instances.repeated ~r:registers p)
             ~icap:4 ()
         in
         let starved = Params.registers_lower p - 1 in
         Fmt.pr "%-12s %-12s %-44s@." (Params.to_string p)
           (Fmt.str "%d (=lo-1)" starved)
           (Fmt.str "%a" Theorem2.pp_outcome (run starved));
         let correct = Params.r_oneshot p in
         Fmt.pr "%-12s %-12s %-44s@." "" (Fmt.str "%d (=up)" correct)
           (Fmt.str "%a" Theorem2.pp_outcome (run correct)))

(* ------------------------------------------------------------------ *)
(* E3: anonymous repeated upper bound (m+1)(n−k)+m²+1.                 *)

let fig1_anon_upper () =
  section "E3  Figure 1 anonymous upper bound: (m+1)(n-k)+m^2+1 registers";
  Fmt.pr "%-12s %-8s %-10s %-8s@." "(n,m,k)" "bound" "measured" "status";
  let rows = ref [] in
  for n = 4 to 7 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let bound = Params.r_anonymous p + 1 in
        let span = Obs.Span.create () in
        let result =
          Runner.run_anonymous ~rounds:2 ~sink:(Obs.Span.sink span)
            ~sched:(Shm.Schedule.quantum_round_robin ~quantum:800 n)
            ~max_steps:4_000_000 p
        in
        let measured = Runner.registers_used result in
        rows :=
          Obs.Json.Obj
            (point_fields ~n ~m ~k
            @ [
                ("bound", Obs.Json.Int bound);
                ("measured", Obs.Json.Int measured);
                ("ok", Obs.Json.Bool (measured <= bound));
                ("steps", Obs.Json.Int result.Shm.Exec.steps);
              ]
            @ Obs.Bench_out.span_fields span)
          :: !rows;
        Fmt.pr "%-12s %-8d %-10d %-8s@." (Params.to_string p) bound measured
          (check_mark (measured <= bound))
      done
    done
  done;
  write_bench ~experiment:"fig1-anon-upper" ~file:"BENCH_fig1_anon.json"
    (List.rev !rows)

(* E3b: the same algorithm over the honest *non-blocking* anonymous
   snapshot (what Theorem 11 actually has available [7]) — register
   counts unchanged, step cost much higher, H earns its keep. *)
let fig1_anon_nonblocking () =
  section "E3b Anonymous repeated over the non-blocking snapshot (register parity)";
  Fmt.pr "%-12s %-8s %-14s %-14s %-14s@." "(n,m,k)" "bound" "atomic regs" "collect regs"
    "steps (atomic/collect)";
  [ (4, 1, 2); (4, 2, 2); (5, 1, 3); (5, 2, 3) ]
  |> List.iter (fun (n, m, k) ->
         let p = Params.make ~n ~m ~k in
         let run ~anonymous_collect =
           Runner.run_anonymous ~anonymous_collect ~rounds:2
             ~sched:(Shm.Schedule.quantum_round_robin ~quantum:4000 n)
             ~max_steps:8_000_000 p
         in
         let a = run ~anonymous_collect:false in
         let c = run ~anonymous_collect:true in
         Fmt.pr "%-12s %-8d %-14d %-14d %d / %d@." (Params.to_string p)
           (Params.r_anonymous p + 1)
           (Runner.registers_used a) (Runner.registers_used c) a.Shm.Exec.steps
           c.Shm.Exec.steps)

(* ------------------------------------------------------------------ *)
(* E4: anonymous one-shot lower bound via the clone construction.      *)

let fig1_anon_lower () =
  section
    "E4  Anonymous one-shot lower bound (Theorem 10): clones break r <= sqrt(m(n/k-2))";
  Fmt.pr "%-6s %-4s %-12s %-46s@." "r" "k" "slots" "clone construction outcome";
  [ (2, 1); (3, 1); (4, 1); (3, 2) ]
  |> List.iter (fun (r, k) ->
         let c = k + 1 in
         let slots = c * (1 + (((r * r) - r) / 2)) in
         let p = Params.make ~n:slots ~m:1 ~k in
         let run slots =
           Clones.attack ~params:p ~registers:r ~slots
             ~make_config:(fun ~registers ~slots ->
               Instances.anonymous_oneshot ~r:registers ~slots p)
             ()
         in
         Fmt.pr "%-6d %-4d %-12s %-46s@." r k
           (Fmt.str "%d (=bound)" slots)
           (Fmt.str "%a" Clones.pp_outcome (run slots));
         Fmt.pr "%-6s %-4s %-12s %-46s@." "" ""
           (Fmt.str "%d (<bound)" (slots - 1))
           (Fmt.str "%a" Clones.pp_outcome (run (slots - 1))));
  (* general m ≥ 2 gluing (Lemma9): groups of two *)
  [ (3, 2, 3); (3, 2, 2) ]
  |> List.iter (fun (r, m, k) ->
         let c = (k + m) / m in
         let slots = c * (m + (((r * r) - r) / 2)) in
         let p = Params.make ~n:slots ~m ~k in
         let outcome =
           Lemma9.attack ~params:p ~registers:r ~slots
             ~make_config:(fun ~registers ~slots ->
               Instances.anonymous_oneshot ~r:registers ~slots p)
             ()
         in
         Fmt.pr "%-6d %-4s %-12s %-46s@." r
           (Fmt.str "%d,m=%d" k m)
           (Fmt.str "%d (=bound)" slots)
           (Fmt.str "%a" Lemma9.pp_outcome outcome))

(* ------------------------------------------------------------------ *)
(* E9: the Section 7 open question, probed empirically: between the    *)
(* √(m(n/k−2)) lower bound and the quadratic anonymous upper bound,    *)
(* where does the breakable/unbreakable frontier actually sit for the  *)
(* clone construction and for randomized stress?                       *)

let anon_frontier () =
  section
    "E9  (§7 probe) Anonymous one-shot frontier: clone-breakable r vs the paper's bounds \
     (m=1, k=1)";
  Fmt.pr "%-4s %-12s %-14s %-18s %-12s@." "n" "sqrt lower" "clone-max r"
    "stress-safe r" "paper upper";
  [ 6; 8; 10; 12 ]
  |> List.iter (fun n ->
         let p = Params.make ~n ~m:1 ~k:1 in
         (* largest r the clone counting can break with n processes:
            n >= 2(1 + (r²−r)/2)  ⇔  r²−r+2 <= n *)
         let rec max_breakable r =
           if ((r + 1) * (r + 1)) - (r + 1) + 2 <= n then max_breakable (r + 1) else r
         in
         let rb = max_breakable 1 in
         let clone_attack r =
           Clones.attack ~params:p ~registers:r ~slots:n
             ~make_config:(fun ~registers ~slots ->
               Instances.anonymous_oneshot ~r:registers ~slots p)
             ()
         in
         let verdict r =
           match clone_attack r with
           | Clones.Violation _ -> "broken"
           | Clones.Out_of_slots _ | Clones.Prefix_mismatch _ | Clones.Stuck _ ->
             "resists"
         in
         (* randomized stress: does any of 100 bursty schedules break
            safety at this register count? *)
         let stress_breaks r =
           let bad = ref false in
           (try
              for seed = 0 to 99 do
                let config = Instances.anonymous_oneshot ~r ~slots:n p in
                let inputs =
                  Shm.Exec.oneshot_inputs (Array.init n (fun pid -> Shm.Value.int pid))
                in
                let sched = Shm.Schedule.bursty_random ~seed (List.init n Fun.id) in
                let res = Shm.Exec.run ~sched ~inputs ~max_steps:50_000 config in
                match Spec.Properties.check_safety ~k:1 res.Shm.Exec.config with
                | Ok () -> ()
                | Error _ ->
                  bad := true;
                  raise Exit
              done
            with Exit -> ());
           !bad
         in
         (* smallest r that survives the stress — this algorithm's
            empirical safety frontier (the paper guarantees r = 2n−1;
            the gap to √n is the open question of §7) *)
         let rec stress_safe r =
           if r > Params.r_anonymous p then r
           else if stress_breaks r then stress_safe (r + 1)
           else r
         in
         Fmt.pr "%-4d %-12.2f %-14s %-18d %-12d@." n
           (Params.anon_lower_bound p)
           (Fmt.str "%d (%s)" rb (verdict rb))
           (stress_safe (rb + 1))
           (Params.r_anonymous p))

(* ------------------------------------------------------------------ *)
(* E12: the other §7 conjecture — "the upper bound could perhaps be    *)
(* improved to n+m−k".  Between n+m−k and n+2m−k−1 registers the       *)
(* Theorem 2 adversary cannot run (not enough processes), so we probe  *)
(* the gap against Figure 4 with randomized stress and, where n is     *)
(* tiny, exhaustive model checking.                                    *)

let conjecture_probe () =
  section
    "E12 (§7 probe) The gap n+m-k .. n+2m-k: is Figure 4 safe below its proven budget?";
  Fmt.pr "%-12s %-8s %-12s %-26s@." "(n,m,k)" "r" "region" "stress (200 bursty runs)";
  let stress p r =
    let n = p.Params.n in
    let bad = ref 0 in
    for seed = 0 to 199 do
      let config = Instances.repeated ~r p in
      let inputs =
        Shm.Exec.repeated_inputs ~rounds:2 (fun pid i -> Shm.Value.int ((100 * i) + pid))
      in
      let sched = Shm.Schedule.bursty_random ~seed (List.init n Fun.id) in
      let res = Shm.Exec.run ~sched ~inputs ~max_steps:60_000 config in
      match Spec.Properties.check_safety ~k:p.Params.k res.Shm.Exec.config with
      | Ok () -> ()
      | Error _ -> incr bad
    done;
    if !bad = 0 then "no violation found" else Fmt.str "%d VIOLATIONS" !bad
  in
  [ (4, 2, 2); (5, 2, 2); (5, 2, 3); (6, 2, 3); (6, 3, 3) ]
  |> List.iter (fun (n, m, k) ->
         let p = Params.make ~n ~m ~k in
         let lo = Params.registers_lower p and hi = Params.r_oneshot p in
         for r = lo - 1 to hi do
           let region =
             if r < lo then "below lo"
             else if r = lo then "at lo"
             else if r = hi then "proven"
             else "gap"
           in
           Fmt.pr "%-12s %-8d %-12s %-26s@." (Params.to_string p) r region (stress p r)
         done)

(* ------------------------------------------------------------------ *)
(* E13: exploration engines — naive enumeration vs DPOR vs DPOR with   *)
(* state caching, at equal depth, on the Figure 3 one-shot.  The       *)
(* headline number: DPOR+cache explores orders of magnitude fewer      *)
(* states than the naive engine with the same verdict.                 *)

let explore_table () =
  section
    "E13 Exploration engines on Figure 3 one-shot: naive vs dpor vs dpor+cache at equal \
     depth";
  let engines =
    [
      ("naive", Spec.Modelcheck.Naive);
      ("dpor", Spec.Modelcheck.Dpor { cache = false; jobs = 1 });
      ("dpor+cache", Spec.Modelcheck.Dpor { cache = true; jobs = 1 });
    ]
  in
  (* (case label, n, k, r override, depth); r = None means the correct
     n+2m−k budget.  Depths chosen so naive stays tractable; the
     starved case needs depth 14 for its concurrency-only violation. *)
  let cases =
    [
      ("correct", 3, 1, None, 8);
      ("correct", 3, 1, None, 10);
      ("starved-r3", 3, 1, Some 3, 14);
    ]
  in
  Fmt.pr "%-12s %-6s %-12s %-10s %-10s %-8s %-8s %-10s %-10s@." "case" "depth" "engine"
    "explored" "leaves" "hits" "pruned" "verdict" "wall ms";
  let rows = ref [] in
  List.iter
    (fun (case, n, k, r, depth) ->
      let p = Params.make ~n ~m:1 ~k in
      let r = Option.value r ~default:(Params.r_oneshot p) in
      let inputs =
        Shm.Exec.oneshot_inputs (Array.init n (fun pid -> Shm.Value.int (pid + 1)))
      in
      let check = Spec.Properties.check_safety ~k in
      let naive_explored = ref 0 in
      List.iter
        (fun (name, engine) ->
          let t0 = Unix.gettimeofday () in
          let outcome =
            Spec.Modelcheck.run ~engine ~depth ~inputs ~check (Instances.oneshot ~r p)
          in
          let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
          let s = Spec.Modelcheck.stats_of outcome in
          let verdict, ce_len =
            match outcome with
            | Spec.Modelcheck.Ok_bounded _ -> ("ok", None)
            | Spec.Modelcheck.Counterexample { schedule; _ } ->
              ("violation", Some (List.length schedule))
          in
          if name = "naive" then naive_explored := s.Spec.Modelcheck.explored;
          let reduction =
            float_of_int !naive_explored /. float_of_int s.Spec.Modelcheck.explored
          in
          rows :=
            Obs.Json.Obj
              (point_fields ~n ~m:1 ~k
              @ [
                  ("case", Obs.Json.String case);
                  ("registers", Obs.Json.Int r);
                  ("engine", Obs.Json.String name);
                  ("depth", Obs.Json.Int depth);
                  ("explored", Obs.Json.Int s.Spec.Modelcheck.explored);
                  ("leaves", Obs.Json.Int s.Spec.Modelcheck.leaves);
                  ("cache_hits", Obs.Json.Int s.Spec.Modelcheck.cache_hits);
                  ("pruned", Obs.Json.Int s.Spec.Modelcheck.pruned);
                  ("verdict", Obs.Json.String verdict);
                  ( "ce_len",
                    match ce_len with Some l -> Obs.Json.Int l | None -> Obs.Json.Null );
                  ("reduction_vs_naive", Obs.Json.Float reduction);
                  ("wall_ms", Obs.Json.Float wall_ms);
                ])
            :: !rows;
          Fmt.pr "%-12s %-6d %-12s %-10d %-10d %-8d %-8d %-10s %-10.1f@." case depth name
            s.Spec.Modelcheck.explored s.Spec.Modelcheck.leaves
            s.Spec.Modelcheck.cache_hits s.Spec.Modelcheck.pruned verdict wall_ms)
        engines)
    cases;
  write_bench ~experiment:"explore" ~file:"BENCH_explore.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E19: static conditional independence for DPOR — the dataflow        *)
(* engine's refinement (Analyze.Indep) vs the dynamic-footprint        *)
(* baseline, same engine and depth per case.  Two case families:       *)
(*                                                                     *)
(* - the E13 oneshot grid (correct + starved), kept for verdict        *)
(*   identity and as an honest negative result: Figure 3 writes        *)
(*   pid-tagged pairs and scans everything, so its conflicts are       *)
(*   almost never conditionally independent — the refinement holds     *)
(*   verdicts and prunes ~nothing there;                               *)
(* - first-order protocols with provable redundancy (constant and      *)
(*   re-written registers — the patterns flow/constant-register and    *)
(*   the no-op-write rule certify), where conditional independence     *)
(*   carries real weight.                                              *)
(*                                                                     *)
(* The gate is the aggregate explored-state ratio (base/refined) plus  *)
(* verdict identity — a refinement that changes any verdict is         *)
(* unsound, not fast.                                                  *)

let indep_table () =
  section
    "E19 Static conditional independence (lib/analyze dataflow): dpor+cache \
     baseline vs dpor+cache with ?static_indep, on the E13 grid and on \
     redundancy-bearing first-order protocols";
  let oneshot_cases =
    if !perf_smoke then
      [ ("correct", 3, 1, None, 8); ("starved-r3", 3, 1, Some 3, 10) ]
    else
      [
        ("correct", 3, 1, None, 8);
        ("correct", 3, 1, None, 10);
        ("starved-r3", 3, 1, Some 3, 14);
      ]
  in
  (* Every process runs the same text, so constant stores collide only
     with equal values — exactly what the WW-equal and no-op-write
     rules license the engine to commute. *)
  let proto_cases =
    if !perf_smoke then
      [
        ("proto-const", "r3 n3 : W0<-7; L2[W1<-7; R0]; D last", 12);
        ("proto-noop", "r2 n3 : W0<-3; L3[W0<-3; R0]; D last", 12);
      ]
    else
      [
        ("proto-const", "r3 n3 : W0<-7; L2[W1<-7; R0]; D last", 14);
        ("proto-noop", "r2 n3 : W0<-3; L3[W0<-3; R0]; D last", 14);
        ("proto-scan", "r2 n3 : W0<-4; S0+2; L2[W1<-4; S0+2]; D 4", 14);
      ]
  in
  Fmt.pr "%-12s %-6s %-10s %-10s %-10s %-10s %-10s %-10s@." "case" "depth" "arm"
    "explored" "pruned" "refined" "verdict" "wall ms";
  let rows = ref [] in
  let total_base = ref 0 and total_refined = ref 0 in
  let verdicts_match = ref true in
  let engine = Spec.Modelcheck.Dpor { cache = true; jobs = 1 } in
  (* One case: run both arms at equal depth, record per-arm rows, fold
     the explored counts and verdicts into the table-wide gate. *)
  let run_case ~case ~depth ~facts ~inputs ~check ~fields mk_config =
    let arms =
      [ ("base", None); ("refined", Some (Analyze.Indep.refinement ~facts ())) ]
    in
    let base_explored = ref 0 in
    let base_verdict = ref "" in
    List.iter
      (fun (arm, static_indep) ->
        let metrics = Obs.Metrics.create () in
        let t0 = Unix.gettimeofday () in
        let outcome =
          Spec.Modelcheck.run ~engine ~depth ~inputs ~check ?static_indep
            ~metrics (mk_config ())
        in
        let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
        let s = Spec.Modelcheck.stats_of outcome in
        let refined_count =
          Obs.Metrics.Counter.value (Obs.Metrics.counter metrics "explore.refined")
        in
        let verdict =
          match outcome with
          | Spec.Modelcheck.Ok_bounded _ -> "ok"
          | Spec.Modelcheck.Counterexample _ -> "violation"
        in
        (if arm = "base" then begin
           base_explored := s.Spec.Modelcheck.explored;
           total_base := !total_base + s.Spec.Modelcheck.explored
         end
         else total_refined := !total_refined + s.Spec.Modelcheck.explored);
        (* verdict identity is checked per case: both arms must agree *)
        if arm = "base" then base_verdict := verdict
        else if !base_verdict <> verdict then verdicts_match := false;
        rows :=
          Obs.Json.Obj
            (fields
            @ [
                ("bench", Obs.Json.String "indep-dpor");
                ("case", Obs.Json.String case);
                ("depth", Obs.Json.Int depth);
                ("arm", Obs.Json.String arm);
                ("explored", Obs.Json.Int s.Spec.Modelcheck.explored);
                ("pruned", Obs.Json.Int s.Spec.Modelcheck.pruned);
                ("refined", Obs.Json.Int refined_count);
                ("verdict", Obs.Json.String verdict);
                ( "states_ratio",
                  if arm = "refined" && s.Spec.Modelcheck.explored > 0 then
                    Obs.Json.Float
                      (float_of_int !base_explored
                      /. float_of_int s.Spec.Modelcheck.explored)
                  else Obs.Json.Null );
                ("wall_ms", Obs.Json.Float wall_ms);
              ])
          :: !rows;
        Fmt.pr "%-12s %-6d %-10s %-10d %-10d %-10d %-10s %-10.1f@." case depth
          arm s.Spec.Modelcheck.explored s.Spec.Modelcheck.pruned refined_count
          verdict wall_ms)
      arms
  in
  List.iter
    (fun (case, n, k, r, depth) ->
      let p = Params.make ~n ~m:1 ~k in
      let r = Option.value r ~default:(Params.r_oneshot p) in
      let inputs =
        Shm.Exec.oneshot_inputs (Array.init n (fun pid -> Shm.Value.int (pid + 1)))
      in
      run_case ~case ~depth
        ~facts:(Analyze.Indep.of_config (Instances.oneshot ~r p))
        ~inputs
        ~check:(Spec.Properties.check_safety ~k)
        ~fields:(point_fields ~n ~m:1 ~k @ [ ("registers", Obs.Json.Int r) ])
        (fun () -> Instances.oneshot ~r p))
    oneshot_cases;
  List.iter
    (fun (case, text, depth) ->
      let prog =
        match Analyze.Ir.parse text with
        | Ok p -> p
        | Error msg -> Fmt.failwith "E19 protocol %s: %s" case msg
      in
      let inputs = Fuzz.Gen.inputs in
      let facts =
        Analyze.Indep.of_prog
          ~inputs:
            (List.filter_map
               (fun pid -> inputs ~pid ~instance:1)
               (List.init prog.Analyze.Ir.n Fun.id))
          prog
      in
      (* agreement-only: these protocols decide certified constants, so
         validity (output ∈ inputs) is vacuously false and would stop
         exploration at the first leaf; k-agreement is the verdict that
         exercises the full bounded state space *)
      let check_agreement config =
        match Spec.Properties.agreement_errors ~k:1 config with
        | [] -> Ok ()
        | e :: _ -> Error e
      in
      run_case ~case ~depth ~facts ~inputs ~check:check_agreement
        ~fields:
          [
            ("protocol", Obs.Json.String (Analyze.Ir.to_string prog));
            ("n", Obs.Json.Int prog.Analyze.Ir.n);
            ("registers", Obs.Json.Int prog.Analyze.Ir.registers);
          ]
        (fun () -> Fuzz.Gen.config prog))
    proto_cases;
  let ratio =
    if !total_refined = 0 then 1.0
    else float_of_int !total_base /. float_of_int !total_refined
  in
  rows :=
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "indep-total");
        ("explored_base", Obs.Json.Int !total_base);
        ("explored_refined", Obs.Json.Int !total_refined);
        ("states_ratio", Obs.Json.Float ratio);
        ("verdict_match", Obs.Json.Float (if !verdicts_match then 1.0 else 0.0));
      ]
    :: !rows;
  Fmt.pr "total: base %d, refined %d, ratio %.3f, verdicts %s@." !total_base
    !total_refined ratio
    (if !verdicts_match then "identical" else "DIVERGED");
  write_bench ~experiment:"indep" ~file:"BENCH_indep.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E14: native conformance harness — linearizability-checker           *)
(* throughput and native op latency under each chaos profile.          *)

let conform_table () =
  section
    "E14 Native conformance (lib/conform): op latency and checker throughput per chaos \
     profile (4 domains x 16 ops, 150 histories)";
  Fmt.pr "%-10s %-8s %-10s %-12s %-12s %-12s %-12s %-14s %-10s@." "profile" "iters"
    "ops" "upd p50 ns" "upd p99 ns" "scan p50 ns" "scan p99 ns" "check ops/s" "wall ms";
  let rows = ref [] in
  Conform.Chaos.all_profiles
  |> List.iter (fun profile ->
         let metrics = Obs.Metrics.create () in
         let cfg =
           {
             Conform.Harness.domains = 4;
             components = 4;
             ops = 16;
             profile;
             seed = 42;
             iters = 150;
           }
         in
         let t0 = Unix.gettimeofday () in
         let outcome = Conform.Harness.run_snapshot ~metrics ~sut:Conform.Sut.real cfg in
         let wall_ms = 1000. *. (Unix.gettimeofday () -. t0) in
         let counter name =
           Obs.Metrics.Counter.value (Obs.Metrics.counter metrics name)
         in
         let hist name = Obs.Metrics.histogram metrics name in
         let ops = counter "conform.ops" in
         let check_ns = counter "conform.check_ns" in
         let violations = counter "conform.violations" in
         (* checker throughput: operations graded per second of checker
            time (the checker sees every completed op of every history) *)
         let check_ops_per_s =
           if check_ns = 0 then 0. else float_of_int ops /. (float_of_int check_ns /. 1e9)
         in
         let upd = hist "conform.update_ns" and scn = hist "conform.scan_ns" in
         let ok = match outcome with Conform.Harness.Pass _ -> true | _ -> false in
         rows :=
           Obs.Json.Obj
             [
               ("object", Obs.Json.String "snapshot");
               ("impl", Obs.Json.String Conform.Sut.real.Conform.Sut.name);
               ("profile", Obs.Json.String (Conform.Chaos.profile_name profile));
               ("domains", Obs.Json.Int cfg.Conform.Harness.domains);
               ("components", Obs.Json.Int cfg.Conform.Harness.components);
               ("ops_per_domain", Obs.Json.Int cfg.Conform.Harness.ops);
               ("iters", Obs.Json.Int cfg.Conform.Harness.iters);
               ("ops", Obs.Json.Int ops);
               ("pending", Obs.Json.Int (counter "conform.crashes"));
               ("violations", Obs.Json.Int violations);
               ("linearizable", Obs.Json.Bool ok);
               ("update_p50_ns", Obs.Json.Float (Obs.Metrics.Histogram.p50 upd));
               ("update_p99_ns", Obs.Json.Float (Obs.Metrics.Histogram.p99 upd));
               ("scan_p50_ns", Obs.Json.Float (Obs.Metrics.Histogram.p50 scn));
               ("scan_p99_ns", Obs.Json.Float (Obs.Metrics.Histogram.p99 scn));
               ("check_ns_total", Obs.Json.Int check_ns);
               ("check_ops_per_s", Obs.Json.Float check_ops_per_s);
               ("wall_ms", Obs.Json.Float wall_ms);
             ]
           :: !rows;
         Fmt.pr "%-10s %-8d %-10d %-12.0f %-12.0f %-12.0f %-12.0f %-14.0f %-10.1f@."
           (Conform.Chaos.profile_name profile)
           cfg.Conform.Harness.iters ops
           (Obs.Metrics.Histogram.p50 upd)
           (Obs.Metrics.Histogram.p99 upd)
           (Obs.Metrics.Histogram.p50 scn)
           (Obs.Metrics.Histogram.p99 scn)
           check_ops_per_s wall_ms;
         if not ok then
           Fmt.pr "  !! unexpected violation on the real implementation@.");
  write_bench ~experiment:"conform" ~file:"BENCH_conform.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E16: simulator hot-path performance — the journaled memory backend  *)
(* and incremental state keys vs the persistent-map + full-MD5-digest  *)
(* reference, measured in the same run on the Figure 3 one-shot        *)
(* (n=4, m=1, k=1).  Schema in EXPERIMENTS.md §E16.                    *)

(* --smoke (CI): same arms and schema, small iteration counts. *)
let perf_table () =
  section
    (Fmt.str "E16 Simulator hot path: journaled + incremental keys vs persistent + \
              full digests (Figure 3, n=4 m=1 k=1%s)"
       (if !perf_smoke then ", smoke" else ""));
  let p = Params.make ~n:4 ~m:1 ~k:1 in
  let n = p.Params.n in
  let inputs = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> Shm.Value.int (pid + 1))) in
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let rows = ref [] in
  (* -- simulator stepping, exploration-style: every step also updates
     the state hash and derives the node's cache key, exactly the
     per-node work of the engines' DFS.  Reference arm = persistent
     backend + audited MD5 digests + full-digest key (the old hot
     path); new arm = journaled backend + incremental key. *)
  let sim_arm ~backend ~full ~iters =
    let steps = ref 0 and sink = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      let config = ref (Instances.oneshot ~backend p) in
      let hash = ref (Spec.Statehash.create ~audit:full !config) in
      let quiescent = ref false in
      while not !quiescent do
        let stepped = ref false in
        for pid = 0 to n - 1 do
          if Shm.Config.runnable !config ~has_input pid then (
            let before = !config in
            let config', ev =
              match Shm.Config.proc before pid with
              | Shm.Program.Await _ ->
                let inst = Shm.Config.instance before pid + 1 in
                Shm.Config.invoke before pid (Option.get (inputs ~pid ~instance:inst))
              | Shm.Program.Stop -> assert false
              | Shm.Program.Op _ | Shm.Program.Yield _ -> Shm.Config.step before pid
            in
            let hash' = Spec.Statehash.record !hash ~before config' ev in
            (sink :=
               !sink
               +
               if full then String.length (Spec.Statehash.full_key hash' config')
               else Spec.Statehash.key_hash (Spec.Statehash.key hash'));
            config := config';
            hash := hash';
            stepped := true;
            incr steps)
        done;
        if not !stepped then quiescent := true
      done
    done;
    ignore (Sys.opaque_identity !sink);
    (!steps, Unix.gettimeofday () -. t0)
  in
  let sim_iters = if !perf_smoke then 200 else 2_000 in
  let sim_row ~arm ~backend ~full =
    let steps, wall = sim_arm ~backend ~full ~iters:sim_iters in
    let per_s = float_of_int steps /. wall in
    (per_s,
     fun ratio ->
       Obs.Json.Obj
         [
           ("bench", Obs.Json.String "sim-steps");
           ("arm", Obs.Json.String arm);
           ("backend", Obs.Json.String (Shm.Memory.backend_name backend));
           ("keying", Obs.Json.String (if full then "full-digest" else "incremental"));
           ("iters", Obs.Json.Int sim_iters);
           ("steps", Obs.Json.Int steps);
           ("wall_ms", Obs.Json.Float (1000. *. wall));
           ("steps_per_s", Obs.Json.Float per_s);
           ("ratio_vs_reference", Obs.Json.Float ratio);
         ])
  in
  let ref_per_s, ref_row = sim_row ~arm:"reference" ~backend:Shm.Memory.Persistent ~full:true in
  let new_per_s, new_row = sim_row ~arm:"new" ~backend:Shm.Memory.Journaled ~full:false in
  let sim_ratio = new_per_s /. ref_per_s in
  rows := [ new_row sim_ratio; ref_row 1.0 ];
  Fmt.pr "%-12s %-12s %-12s %-14s %-10s@." "bench" "arm" "backend" "per-second" "ratio";
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10s@." "sim-steps" "reference" "persistent"
    ref_per_s "1.00";
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10.2f@." "sim-steps" "new" "journaled" new_per_s
    sim_ratio;
  (* -- DPOR: same engine, old vs new cache key and backend.  States
     per second over a fixed-depth exploration of the same instance.
     This measures the exploration core — per-node state hashing, cache
     lookups, footprints, successor construction on each backend — so
     frontier completion is excluded ([completion_steps:0]): that cost
     is plain simulator stepping, identical in both arms, and the
     sim-steps rows above already measure it end to end. *)
  let dpor_depth = if !perf_smoke then 9 else 12 in
  let dpor_arm ~arm ~backend ~key =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Spec.Modelcheck.run
        ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 })
        ~depth:dpor_depth ~key ~completion_steps:0 ~inputs
        ~check:(Spec.Properties.check_safety ~k:1)
        (Instances.oneshot ~backend p)
    in
    let wall = Unix.gettimeofday () -. t0 in
    let s = Spec.Modelcheck.stats_of outcome in
    let explored = s.Spec.Modelcheck.explored in
    let per_s = float_of_int explored /. wall in
    (per_s,
     fun ratio ->
       Obs.Json.Obj
         [
           ("bench", Obs.Json.String "dpor-states");
           ("arm", Obs.Json.String arm);
           ("backend", Obs.Json.String (Shm.Memory.backend_name backend));
           ( "keying",
             Obs.Json.String
               (match key with `Full -> "full-digest" | `Incremental -> "incremental") );
           ("depth", Obs.Json.Int dpor_depth);
           ("explored", Obs.Json.Int explored);
           ("wall_ms", Obs.Json.Float (1000. *. wall));
           ("states_per_s", Obs.Json.Float per_s);
           ("ratio_vs_reference", Obs.Json.Float ratio);
         ])
  in
  let dref_per_s, dref_row =
    dpor_arm ~arm:"reference" ~backend:Shm.Memory.Persistent ~key:`Full
  in
  let dnew_per_s, dnew_row =
    dpor_arm ~arm:"new" ~backend:Shm.Memory.Journaled ~key:`Incremental
  in
  let dpor_ratio = dnew_per_s /. dref_per_s in
  rows := dnew_row dpor_ratio :: dref_row 1.0 :: !rows;
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10s@." "dpor-states" "reference" "persistent"
    dref_per_s "1.00";
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10.2f@." "dpor-states" "new" "journaled" dnew_per_s
    dpor_ratio;
  (* -- E20: the bytecode vm vs the free-monad interpreter on the same
     first-order workload.  The reference arm is the PR-5 winner —
     journaled backend + incremental keys — driving the free-monad
     form of the protocol with per-step key maintenance; the vm arm
     executes the compiled form (key maintenance happens inside
     [Vm.step]).  Same workload, schedule, and key recipe, so the
     ratio isolates engine cost: free-monad dispatch + closure
     allocation + pointer chasing vs a match on an int opcode over a
     flat int slice.  Methodology in EXPERIMENTS.md §E20 and
     docs/PERFORMANCE.md. *)
  (* The workload is a collect loop over 62 registers — the paper's
     space bound (m+1)(n-k)+m^2+1 at n=10, m=4, k=1 — because that is
     the shape the exhaustive Figure-5 sweeps actually execute:
     repeated full-array scans punctuated by writes.  Scans are where
     the engines differ most (the interpreter allocates a view and
     hashes every component per scan; the vm reads one slot and does
     O(1) key work), so the register width is the paper's, not a toy
     value that would understate the gap. *)
  let proto : Shm.Vm.proto =
    {
      Shm.Vm.registers = 62;
      n = 4;
      steps =
        [
          Shm.Vm.Write (0, Shm.Vm.Input);
          Shm.Vm.Loop
            ( 12,
              [
                Shm.Vm.Scan (0, 62);
                Shm.Vm.Scan (0, 62);
                Shm.Vm.Scan (0, 62);
                Shm.Vm.Write (1, Shm.Vm.Last);
              ] );
          Shm.Vm.Decide Shm.Vm.Last;
        ];
    }
  in
  let vn = proto.Shm.Vm.n in
  let proto_inputs ~pid ~instance =
    if instance = 1 then Some (Shm.Value.int (pid + 1)) else None
  in
  let proto_has_input pid inst = Option.is_some (proto_inputs ~pid ~instance:inst) in
  let vm_iters = if !perf_smoke then 300 else 3_000 in
  let proto_interp_arm ~iters =
    let steps = ref 0 and sink = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      let config = ref (Shm.Vm.config ~backend:Shm.Memory.Journaled proto) in
      let hash = ref (Spec.Statehash.create ~audit:false !config) in
      let quiescent = ref false in
      while not !quiescent do
        let stepped = ref false in
        for pid = 0 to vn - 1 do
          if Shm.Config.runnable !config ~has_input:proto_has_input pid then (
            let before = !config in
            let config', ev =
              match Shm.Config.proc before pid with
              | Shm.Program.Await _ ->
                let inst = Shm.Config.instance before pid + 1 in
                Shm.Config.invoke before pid
                  (Option.get (proto_inputs ~pid ~instance:inst))
              | Shm.Program.Stop -> assert false
              | Shm.Program.Op _ | Shm.Program.Yield _ -> Shm.Config.step before pid
            in
            let hash' = Spec.Statehash.record !hash ~before config' ev in
            sink := !sink + Spec.Statehash.key_hash (Spec.Statehash.key hash');
            config := config';
            hash := hash';
            stepped := true;
            incr steps)
        done;
        if not !stepped then quiescent := true
      done
    done;
    ignore (Sys.opaque_identity !sink);
    (!steps, Unix.gettimeofday () -. t0)
  in
  let proto_vm_arm ~iters =
    let e = Shm.Vm.env (Shm.Vm.compile proto) ~inputs:proto_inputs in
    let st = Shm.Vm.make_state e in
    let steps = ref 0 and sink = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Shm.Vm.init e st 0;
      let quiescent = ref false in
      while not !quiescent do
        let stepped = ref false in
        for pid = 0 to vn - 1 do
          if Shm.Vm.runnable e st 0 pid then begin
            Shm.Vm.step e st 0 pid;
            sink := !sink + Shm.Vm.key_hash e st 0;
            stepped := true;
            incr steps
          end
        done;
        if not !stepped then quiescent := true
      done
    done;
    ignore (Sys.opaque_identity !sink);
    (!steps, Unix.gettimeofday () -. t0)
  in
  let vm_row ~bench ~arm ~engine ~iters (count, wall) =
    let per_s = float_of_int count /. wall in
    (per_s,
     fun ratio ->
       Obs.Json.Obj
         [
           ("bench", Obs.Json.String bench);
           ("arm", Obs.Json.String arm);
           ("engine", Obs.Json.String engine);
           ("workload", Obs.Json.String (Analyze.Ir.to_string proto));
           ("iters", Obs.Json.Int iters);
           ("steps", Obs.Json.Int count);
           ("wall_ms", Obs.Json.Float (1000. *. wall));
           ("steps_per_s", Obs.Json.Float per_s);
           ("ratio_vs_reference", Obs.Json.Float ratio);
         ])
  in
  (* Best-of-3 after a warm-up pass: the arms are short (especially
     under --smoke), so scheduler noise easily shadows the engine
     difference; the fastest repetition is the least-disturbed
     measurement of each arm's actual cost. *)
  let best_of arm =
    ignore (arm ~iters:(max 1 (vm_iters / 10)));
    let best = ref (0, infinity) in
    for _ = 1 to 3 do
      let steps, wall = arm ~iters:vm_iters in
      if wall < snd !best then best := (steps, wall)
    done;
    !best
  in
  let vref_per_s, vref_row =
    vm_row ~bench:"vm-sim-steps" ~arm:"reference" ~engine:"interp" ~iters:vm_iters
      (best_of proto_interp_arm)
  in
  let vm_per_s, vm_arm_row =
    vm_row ~bench:"vm-sim-steps" ~arm:"vm" ~engine:"vm" ~iters:vm_iters
      (best_of proto_vm_arm)
  in
  let vm_ratio = vm_per_s /. vref_per_s in
  rows := vm_arm_row vm_ratio :: vref_row 1.0 :: !rows;
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10s@." "vm-sim" "reference" "interp" vref_per_s
    "1.00";
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10.2f@." "vm-sim" "vm" "bytecode" vm_per_s
    vm_ratio;
  (* -- vm DPOR: reduced exploration of the same protocol, interpreter
     engine ([Dpor] on the journaled backend + incremental keys) vs the
     bytecode engine ([Vmexplore]: arena states, batched expansion,
     keys read off the slice).  The check always passes so both arms
     sweep the full reduced space; completion is excluded as above. *)
  let vm_dpor_depth = if !perf_smoke then 10 else 13 in
  let vm_dpor_interp () =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Spec.Modelcheck.run
        ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 })
        ~depth:vm_dpor_depth ~key:`Incremental ~completion_steps:0
        ~inputs:proto_inputs
        ~check:(fun _ -> Ok ())
        (Shm.Vm.config ~backend:Shm.Memory.Journaled proto)
    in
    let wall = Unix.gettimeofday () -. t0 in
    ((Spec.Modelcheck.stats_of outcome).Spec.Modelcheck.explored, wall)
  in
  let vm_dpor_vm () =
    let t0 = Unix.gettimeofday () in
    let outcome =
      Spec.Modelcheck.run_vm
        ~engine:(Spec.Modelcheck.Dpor { cache = true; jobs = 1 })
        ~depth:vm_dpor_depth ~completion_steps:0 ~inputs:proto_inputs
        ~check:(fun ~inputs:_ ~outputs:_ -> Ok ())
        proto
    in
    let wall = Unix.gettimeofday () -. t0 in
    ((Spec.Modelcheck.stats_of outcome).Spec.Modelcheck.explored, wall)
  in
  let vm_dpor_row ~arm ~engine (explored, wall) =
    let per_s = float_of_int explored /. wall in
    (per_s,
     fun ratio ->
       Obs.Json.Obj
         [
           ("bench", Obs.Json.String "vm-dpor-states");
           ("arm", Obs.Json.String arm);
           ("engine", Obs.Json.String engine);
           ("workload", Obs.Json.String (Analyze.Ir.to_string proto));
           ("depth", Obs.Json.Int vm_dpor_depth);
           ("explored", Obs.Json.Int explored);
           ("wall_ms", Obs.Json.Float (1000. *. wall));
           ("states_per_s", Obs.Json.Float per_s);
           ("ratio_vs_reference", Obs.Json.Float ratio);
         ])
  in
  let vdref_per_s, vdref_row =
    vm_dpor_row ~arm:"reference" ~engine:"interp" (vm_dpor_interp ())
  in
  let vdvm_per_s, vdvm_row = vm_dpor_row ~arm:"vm" ~engine:"vm" (vm_dpor_vm ()) in
  let vdpor_ratio = vdvm_per_s /. vdref_per_s in
  rows := vdvm_row vdpor_ratio :: vdref_row 1.0 :: !rows;
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10s@." "vm-dpor" "reference" "interp"
    vdref_per_s "1.00";
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10.2f@." "vm-dpor" "vm" "bytecode" vdvm_per_s
    vdpor_ratio;
  (* -- linearizability checker throughput (tracked so a regression in
     the checker shows up here; memory backend is irrelevant to it). *)
  let metrics = Obs.Metrics.create () in
  let cfg =
    {
      Conform.Harness.domains = 4;
      components = 4;
      ops = 16;
      profile = Conform.Chaos.Calm;
      seed = 42;
      iters = (if !perf_smoke then 20 else 150);
    }
  in
  let lin_ok =
    match Conform.Harness.run_snapshot ~metrics ~sut:Conform.Sut.real cfg with
    | Conform.Harness.Pass _ -> true
    | _ -> false
  in
  let ops = Obs.Metrics.Counter.value (Obs.Metrics.counter metrics "conform.ops") in
  let check_ns =
    Obs.Metrics.Counter.value (Obs.Metrics.counter metrics "conform.check_ns")
  in
  let check_ops_per_s =
    if check_ns = 0 then 0. else float_of_int ops /. (float_of_int check_ns /. 1e9)
  in
  rows :=
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "linearize");
        ("arm", Obs.Json.String "checker");
        ("iters", Obs.Json.Int cfg.Conform.Harness.iters);
        ("ops", Obs.Json.Int ops);
        ("linearizable", Obs.Json.Bool lin_ok);
        ("check_ns_total", Obs.Json.Int check_ns);
        ("checks_per_s", Obs.Json.Float check_ops_per_s);
      ]
    :: !rows;
  Fmt.pr "%-12s %-12s %-12s %-14.0f %-10s@." "linearize" "checker" "-" check_ops_per_s
    "-";
  Fmt.pr "speedups: sim %.2fx, dpor %.2fx (targets: >=5x, >=3x)@." sim_ratio dpor_ratio;
  write_bench ~experiment:"perf" ~file:"BENCH_perf.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E5: DFGR'13 baseline comparison (Section 4.1).                      *)

let baseline_table () =
  section "E5  Baseline: DFGR'13 2(n-k) registers vs Figure 3's n-k+2 (m=1, n=10)";
  Fmt.pr "%-4s %-16s %-16s %-14s %-14s@." "k" "DFGR13 regs" "Fig.3 regs" "DFGR13 steps"
    "Fig.3 steps";
  let n = 10 in
  for k = 1 to n - 2 do
    let p = Params.make ~n ~m:1 ~k in
    let sched () = Shm.Schedule.quantum_round_robin ~quantum:400 n in
    let b = Runner.run_baseline ~sched:(sched ()) ~max_steps:2_000_000 p in
    let o = Runner.run_oneshot ~sched:(sched ()) ~max_steps:2_000_000 p in
    Fmt.pr "%-4d %-16s %-16s %-14d %-14d@." k
      (Fmt.str "%d (used %d)" (Params.r_dfgr13 p) (Runner.registers_used b))
      (Fmt.str "%d (used %d)" (Params.r_oneshot p) (Runner.registers_used o))
      b.Shm.Exec.steps o.Shm.Exec.steps
  done

(* ------------------------------------------------------------------ *)
(* E15: static analyzer — abstract footprints vs paper bounds vs       *)
(* dynamically measured registers, plus the mutation tests.            *)

let analyze_table () =
  section
    "E15 Static analyzer: abstract footprint <= paper bound, dynamic subset \
     of static (n <= 6), mutants rejected";
  let t0 = Unix.gettimeofday () in
  let rows = Analyze.Report.sweep ~max_n:6 () in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Fmt.pr "%a@." Analyze.Report.pp_header ();
  List.iter (fun r -> Fmt.pr "%a@." Analyze.Report.pp_row r) rows;
  let bad = Analyze.Report.violations rows in
  Fmt.pr "%d rows, %d violations, %.0f ms@." (List.length rows)
    (List.length bad) wall_ms;
  let p = Params.make ~n:4 ~m:1 ~k:2 in
  let mutant_rows =
    List.map
      (fun (mu : Analyze.Mutants.mutant) ->
        let rejected = Analyze.Mutants.rejected mu p in
        Fmt.pr "mutant %-20s at %s: %s@." mu.Analyze.Mutants.name
          (Params.to_string p)
          (if rejected then "rejected" else "ACCEPTED (analyzer failure)");
        Obs.Json.Obj
          [
            ("kind", Obs.Json.String "mutant");
            ("algo", Obs.Json.String mu.Analyze.Mutants.name);
            ("n", Obs.Json.Int p.Params.n);
            ("m", Obs.Json.Int p.Params.m);
            ("k", Obs.Json.Int p.Params.k);
            ("rejected", Obs.Json.Bool rejected);
          ])
      Analyze.Mutants.all
  in
  let sweep_rows =
    List.map
      (fun r ->
        match Analyze.Report.row_to_json r with
        | Obs.Json.Obj fields ->
          Obs.Json.Obj (("kind", Obs.Json.String "sweep") :: fields)
        | j -> j)
      rows
  in
  write_bench ~experiment:"analyze" ~file:"BENCH_analyze.json"
    (sweep_rows @ mutant_rows)

(* ------------------------------------------------------------------ *)
(* E6: repeated consensus needs exactly n registers (m = k = 1).       *)

let consensus_exact () =
  section "E6  Repeated consensus (m=k=1) needs exactly n registers";
  Fmt.pr "%-4s %-18s %-46s@." "n" "upper (measured)" "lower (adversary at n-1 registers)";
  for n = 3 to 7 do
    let p = Params.make ~n ~m:1 ~k:1 in
    (* upper: r_oneshot = n+1 > n, so the SW-based snapshot gives n *)
    let result =
      Runner.run_repeated ~impl:Instances.Sw_based ~rounds:2
        ~sched:(Shm.Schedule.quantum_round_robin ~quantum:800 n)
        ~max_steps:4_000_000 p
    in
    let outcome =
      Theorem2.attack ~params:p ~registers:(n - 1)
        ~make_config:(fun ~registers -> Instances.repeated ~r:registers p)
        ~icap:4 ()
    in
    Fmt.pr "%-4d %-18s %-46s@." n
      (Fmt.str "n=%d, used %d" n (Runner.registers_used result))
      (Fmt.str "%a" Theorem2.pp_outcome outcome)
  done

(* ------------------------------------------------------------------ *)
(* E7: snapshot implementation ablation.                               *)

let snapshot_ablation () =
  section "E7  Snapshot ablation: one-shot (n=5,m=1,k=2) over three implementations";
  Fmt.pr "%-16s %-10s %-10s %-10s %-10s@." "implementation" "steps" "registers" "reads"
    "writes";
  [ Instances.Atomic; Instances.Double_collect; Instances.Sw_based ]
  |> List.iter (fun impl ->
         let p = Params.make ~n:5 ~m:1 ~k:2 in
         let result =
           Runner.run_oneshot ~impl
             ~sched:(Shm.Schedule.quantum_round_robin ~quantum:2000 5)
             ~max_steps:4_000_000 p
         in
         let mem = Shm.Config.mem result.Shm.Exec.config in
         Fmt.pr "%-16s %-10d %-10d %-10d %-10d@." (Instances.impl_name impl)
           result.Shm.Exec.steps (Runner.registers_used result)
           (Shm.Memory.read_count mem) (Shm.Memory.write_count mem))

(* ------------------------------------------------------------------ *)
(* E8: progress vs m (the meaning of m-obstruction-freedom).           *)

let progress_vs_m () =
  section "E8  Steps to quiescence vs m (n=8, k=4, m-bounded adversary, 20 seeds)";
  Fmt.pr "%-4s %-14s %-14s %-10s@." "m" "mean steps" "max steps" "decided";
  let rows = ref [] in
  for m = 1 to 4 do
    let p = Params.make ~n:8 ~m ~k:4 in
    let span = Obs.Span.create () in
    let steps = ref [] and decided = ref 0 in
    for seed = 0 to 19 do
      let sched = Shm.Schedule.m_bounded ~seed ~m ~prefix:60 8 in
      let result =
        Runner.run_oneshot ~sched ~sink:(Obs.Span.sink span) ~max_steps:400_000 p
      in
      steps := result.Shm.Exec.steps :: !steps;
      if result.Shm.Exec.stopped = Shm.Exec.All_quiescent then incr decided
    done;
    let l = !steps in
    let mean = float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l) in
    let mx = List.fold_left max 0 l in
    rows :=
      Obs.Json.Obj
        (point_fields ~n:8 ~m ~k:4
        @ [
            ("seeds", Obs.Json.Int 20);
            ("mean_steps", Obs.Json.Float mean);
            ("max_steps", Obs.Json.Int mx);
            ("decided", Obs.Json.Int !decided);
          ]
        @ Obs.Bench_out.span_fields span)
      :: !rows;
    Fmt.pr "%-4d %-14.1f %-14d %d/20@." m mean mx !decided
  done;
  write_bench ~experiment:"progress-vs-m" ~file:"BENCH_progress_vs_m.json"
    (List.rev !rows)

(* Decision diversity vs input workload: how many distinct values an
   election actually commits, depending on the proposal pattern and the
   contention regime.  (Extra analysis — not a figure of the paper.) *)
let diversity_vs_workload () =
  section "E11 Decision diversity vs workload (n=8, m=2, k=4; 20 schedules per cell)";
  Fmt.pr "%-18s %-10s %-14s %-14s %-12s@." "workload" "inputs" "calm mean" "bursty mean"
    "max seen";
  Agreement.Workload.all
  |> List.iter (fun w ->
         let n = 8 in
         let p = Params.make ~n ~m:2 ~k:4 in
         let inputs = Agreement.Workload.inputs w ~n in
         let run sched =
           let result = Runner.run_oneshot ~sched ~inputs ~max_steps:400_000 p in
           List.length
             (Spec.Properties.distinct_values
                (Runner.outputs_of_instance result ~instance:1))
         in
         let mean_over f =
           let total = ref 0 in
           for seed = 0 to 19 do
             total := !total + f seed
           done;
           float_of_int !total /. 20.
         in
         let calm seed = run (Shm.Schedule.m_bounded ~seed ~m:1 ~prefix:30 n) in
         let bursty seed = run (Shm.Schedule.bursty_random ~seed (List.init n Fun.id)) in
         let max_seen = ref 0 in
         for seed = 0 to 19 do
           max_seen := max !max_seen (max (calm seed) (bursty seed))
         done;
         Fmt.pr "%-18s %-10d %-14.2f %-14.2f %-12d@." (Agreement.Workload.name w)
           (Agreement.Workload.distinct_inputs w ~n)
           (mean_over calm) (mean_over bursty) !max_seen)

let steps_vs_n () =
  section "E8b Steps to quiescence vs n (m=1, k=1, solo-burst schedule)";
  Fmt.pr "%-4s %-12s %-12s@." "n" "steps" "regs";
  let rows = ref [] in
  for n = 3 to 12 do
    let p = Params.make ~n ~m:1 ~k:1 in
    let impl = if Params.r_oneshot p <= n then Instances.Atomic else Instances.Sw_based in
    let span = Obs.Span.create () in
    let result =
      Runner.run_oneshot ~impl ~sink:(Obs.Span.sink span)
        ~sched:(Shm.Schedule.quantum_round_robin ~quantum:1500 n)
        ~max_steps:6_000_000 p
    in
    rows :=
      Obs.Json.Obj
        (point_fields ~n ~m:1 ~k:1
        @ [
            ("steps", Obs.Json.Int result.Shm.Exec.steps);
            ("registers", Obs.Json.Int (Runner.registers_used result));
          ]
        @ Obs.Bench_out.span_fields span)
      :: !rows;
    Fmt.pr "%-4d %-12d %-12d@." n result.Shm.Exec.steps (Runner.registers_used result)
  done;
  write_bench ~experiment:"steps-vs-n" ~file:"BENCH_steps_vs_n.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks (B1–B6).                                   *)

let bechamel_benches () =
  section "B1-B7  Bechamel microbenchmarks (time per fully solved instance)";
  let open Bechamel in
  let bench_oneshot ~name ?impl p =
    Test.make ~name
      (Staged.stage (fun () ->
           let n = p.Params.n in
           ignore
             (Runner.run_oneshot ?impl
                ~sched:(Shm.Schedule.quantum_round_robin ~quantum:2000 n)
                ~max_steps:4_000_000 p)))
  in
  let bench_repeated ~name p =
    Test.make ~name
      (Staged.stage (fun () ->
           let n = p.Params.n in
           ignore
             (Runner.run_repeated ~rounds:3
                ~sched:(Shm.Schedule.quantum_round_robin ~quantum:2000 n)
                ~max_steps:4_000_000 p)))
  in
  let bench_anonymous ~name p =
    Test.make ~name
      (Staged.stage (fun () ->
           let n = p.Params.n in
           ignore
             (Runner.run_anonymous ~rounds:2
                ~sched:(Shm.Schedule.quantum_round_robin ~quantum:2000 n)
                ~max_steps:4_000_000 p)))
  in
  let bench_baseline ~name p =
    Test.make ~name
      (Staged.stage (fun () ->
           let n = p.Params.n in
           ignore
             (Runner.run_baseline
                ~sched:(Shm.Schedule.quantum_round_robin ~quantum:2000 n)
                ~max_steps:4_000_000 p)))
  in
  let bench_native ~name p =
    Test.make ~name
      (Staged.stage (fun () ->
           let inputs =
             Array.init p.Params.n (fun pid -> Shm.Value.int (pid + 1))
           in
           ignore (Native.Native_agreement.run_instance ~params:p inputs)))
  in
  let p512 = Params.make ~n:5 ~m:1 ~k:2 in
  let p523 = Params.make ~n:5 ~m:2 ~k:3 in
  let p813 = Params.make ~n:8 ~m:1 ~k:3 in
  let tests =
    Test.make_grouped ~name:"set-agreement"
      [
        bench_oneshot ~name:"B1 oneshot atomic n=5 m=1 k=2" p512;
        bench_oneshot ~name:"B2 oneshot atomic n=5 m=2 k=3" p523;
        bench_oneshot ~name:"B3 oneshot atomic n=8 m=1 k=3" p813;
        bench_oneshot ~name:"B4 oneshot double-collect n=5 m=1 k=2"
          ~impl:Instances.Double_collect p512;
        bench_oneshot ~name:"B4b oneshot sw-snapshot n=5 m=1 k=2"
          ~impl:Instances.Sw_based p512;
        bench_repeated ~name:"B5 repeated (3 rounds) n=5 m=1 k=2" p512;
        bench_anonymous ~name:"B6 anonymous (2 rounds) n=5 m=1 k=2" p512;
        bench_baseline ~name:"B5b baseline DFGR13 n=5 m=1 k=2" p512;
        bench_native ~name:"B7 native multicore (4 domains) n=4 m=2 k=2"
          (Params.make ~n:4 ~m:2 ~k:2);
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.6) ~kde:None () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Fmt.pr "%-50s %-16s %-8s@." "benchmark" "time/run" "r^2";
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, ols) ->
         let est =
           match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
         in
         let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> nan in
         let pretty =
           if est > 1e9 then Fmt.str "%.2f s" (est /. 1e9)
           else if est > 1e6 then Fmt.str "%.2f ms" (est /. 1e6)
           else if est > 1e3 then Fmt.str "%.2f us" (est /. 1e3)
           else Fmt.str "%.0f ns" est
         in
         Fmt.pr "%-50s %-16s %-8.3f@." name pretty r2)

(* ------------------------------------------------------------------ *)
(* E17: the serving layer (lib/service).  Three sections, one schema:
   - service-scaling: closed-loop throughput/latency over a
     domains × shards grid (the scaling curve);
   - service-throughput: same-binary batched (batch_max 16) vs
     reference (batch_max 1) arms on one shard — the floor-gated
     machine-independent ratio;
   - service-verdict: a crash-chaos run whose per-shard histories are
     graded by the Conform linearizability/k-agreement oracles ("ok"
     is 1.0 or 0.0, and floor-gated to 1.0). *)

let service_table () =
  section
    (Fmt.str "E17: set-agreement-as-a-service — sharded batched serving%s"
       (if !perf_smoke then ", smoke" else ""));
  let params = Agreement.Params.make ~n:4 ~m:1 ~k:1 in
  let clients = if !perf_smoke then 48 else 192 in
  let ops = if !perf_smoke then 4 else 12 in
  let keys = 1024 in
  let theta = 0.9 in
  let seed = 0x5e17 in
  let rows = ref [] in
  let loadrun ~domains ~shards ~batch_max ~window ~app ~history =
    let server =
      Service.Server.create ~batch_max ~window ~app ~history ~seed ~shards
        ~domains params
    in
    let report =
      Service.Loadgen.run server
        { Service.Loadgen.clients; ops_per_client = ops; keys; theta; seed }
    in
    Service.Server.stop server;
    (server, report)
  in
  let totals server =
    List.fold_left
      (fun (slots, cmds) (s : Service.Shard.stats) ->
        (slots + s.Service.Shard.slots, cmds + s.Service.Shard.committed))
      (0, 0) (Service.Server.stats server)
  in
  (* scaling curve: domains × shards *)
  let grid =
    if !perf_smoke then [ (1, 1); (1, 4); (2, 4); (4, 8) ]
    else
      List.concat_map
        (fun domains -> List.map (fun shards -> (domains, shards)) [ 1; 2; 4; 8 ])
        [ 1; 2; 4 ]
  in
  Fmt.pr "%-8s %-8s %-14s %-12s %-12s %-8s@." "domains" "shards" "cmds/s" "p50 us"
    "p99 us" "slots";
  List.iter
    (fun (domains, shards) ->
      let server, report =
        loadrun ~domains ~shards ~batch_max:16 ~window:64 ~app:Service.App.counter
          ~history:false
      in
      let slots, cmds = totals server in
      Fmt.pr "%-8d %-8d %-14.0f %-12.1f %-12.1f %-8d@." domains shards
        report.Service.Loadgen.throughput_cps
        (report.Service.Loadgen.p50_ns /. 1e3)
        (report.Service.Loadgen.p99_ns /. 1e3)
        slots;
      rows :=
        Obs.Json.Obj
          [
            ("bench", Obs.Json.String "service-scaling");
            ("domains", Obs.Json.Int domains);
            ("shards", Obs.Json.Int shards);
            ("clients", Obs.Json.Int clients);
            ("commands", Obs.Json.Int cmds);
            ("slots", Obs.Json.Int slots);
            ("batch_max", Obs.Json.Int 16);
            ("window", Obs.Json.Int 64);
            ("theta", Obs.Json.Float theta);
            ("throughput_cps", Obs.Json.Float report.Service.Loadgen.throughput_cps);
            ("p50_ns", Obs.Json.Float report.Service.Loadgen.p50_ns);
            ("p99_ns", Obs.Json.Float report.Service.Loadgen.p99_ns);
            ("stalls", Obs.Json.Int report.Service.Loadgen.stalls);
            ("registers", Obs.Json.Int (Service.Server.registers_used server));
          ]
        :: !rows)
    grid;
  (* batched vs reference: the same binary, one shard, one domain; the
     floor gates the machine-independent ratio *)
  let _, ref_report =
    loadrun ~domains:1 ~shards:1 ~batch_max:1 ~window:64 ~app:Service.App.counter
      ~history:false
  in
  let _, batched_report =
    loadrun ~domains:1 ~shards:1 ~batch_max:16 ~window:64
      ~app:Service.App.counter ~history:false
  in
  let ratio =
    batched_report.Service.Loadgen.throughput_cps
    /. ref_report.Service.Loadgen.throughput_cps
  in
  Fmt.pr "@.batching: reference %.0f cmds/s, batched %.0f cmds/s (%.1fx)@."
    ref_report.Service.Loadgen.throughput_cps
    batched_report.Service.Loadgen.throughput_cps ratio;
  let arm_row name report r =
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "service-throughput");
        ("arm", Obs.Json.String name);
        ("throughput_cps", Obs.Json.Float report.Service.Loadgen.throughput_cps);
        ("p99_ns", Obs.Json.Float report.Service.Loadgen.p99_ns);
        ("ratio_vs_reference", Obs.Json.Float r);
      ]
  in
  rows := arm_row "batched" batched_report ratio :: arm_row "reference" ref_report 1.0 :: !rows;
  (* chaos verdict: a crash-profile run on the register app, graded by
     the Conform oracles per shard *)
  let shards = 4 in
  let server =
    Service.Server.create ~batch_max:4 ~window:16 ~app:Service.App.register
      ~history:true ~seed ~shards ~domains:0 params
  in
  let rng = Shm.Rng.create seed in
  let rounds = if !perf_smoke then 16 else 48 in
  for round = 1 to rounds do
    for client = 0 to 15 do
      let cmd =
        if Shm.Rng.bool rng then Service.App.read
        else
          Universal.Machines.write
            (Shm.Value.pair (Shm.Value.int client) (Shm.Value.int round))
      in
      ignore
        (Service.Server.try_submit server
           ~key:(Shm.Value.int (Shm.Rng.int rng keys))
           ~tag:client cmd)
    done;
    ignore (Service.Server.pump server);
    (* fail-stop a replica on some shard every few rounds *)
    if round mod (rounds / 4) = 0 then
      ignore
        (Service.Server.crash_replica server
           ~shard:(Shm.Rng.int rng shards)
           ~pid:(Shm.Rng.int rng params.Agreement.Params.n))
  done;
  Service.Server.drain server;
  let verdict = Service.Server.verdict server in
  let _, chaos_cmds = totals server in
  let crashed =
    List.fold_left
      (fun acc (s : Service.Shard.stats) ->
        acc + (params.Agreement.Params.n - s.Service.Shard.alive))
      0 (Service.Server.stats server)
  in
  (match verdict with
  | Ok () ->
    Fmt.pr "chaos verdict: ok (%d commands, %d shards, %d crashed replicas)@."
      chaos_cmds shards crashed
  | Error errs ->
    Fmt.pr "chaos verdict: MISMATCH@.";
    List.iter (fun e -> Fmt.pr "  %s@." e) errs);
  rows :=
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "service-verdict");
        ("arm", Obs.Json.String "chaos");
        ("shards", Obs.Json.Int shards);
        ("commands", Obs.Json.Int chaos_cmds);
        ("crashed_replicas", Obs.Json.Int crashed);
        ("ok", Obs.Json.Float (match verdict with Ok () -> 1.0 | Error _ -> 0.0));
      ]
    :: !rows;
  write_bench ~experiment:"service" ~file:"BENCH_service.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)
(* E18: coverage-guided fuzzing (lib/fuzz) — execs/s and the coverage
   curve per oracle, plus the seeded-mutant regression sweep.  The
   gated metrics are machine-independent verdicts (clean campaign,
   every mutant caught) and the deterministic coverage-bit count; the
   throughput column is informational.  Schema in EXPERIMENTS.md §E18. *)

let fuzz_table () =
  let budget = if !perf_smoke then 100 else 600 in
  let mutant_budget = if !perf_smoke then 200 else 400 in
  let seed = 0x5eed in
  section
    (Fmt.str
       "E18 Coverage-guided fuzzing (lib/fuzz): %d execs per oracle, seed %d%s"
       budget seed
       (if !perf_smoke then ", smoke" else ""));
  Fmt.pr "%-14s %-8s %-10s %-12s %-10s %-10s %-12s %-10s@." "oracle" "execs"
    "interest" "corpus" "cov bits" "diverge" "execs/s" "wall ms";
  let rows = ref [] in
  List.iter
    (fun oracle ->
      let t0 = Unix.gettimeofday () in
      let outcome = Fuzz.Driver.run ~oracle ~budget ~seed () in
      let wall = Unix.gettimeofday () -. t0 in
      let s = outcome.Fuzz.Driver.stats in
      let execs_per_s =
        if wall <= 0. then 0. else float_of_int s.Fuzz.Driver.execs /. wall
      in
      let curve =
        Obs.Json.Arr
          (List.map
             (fun (x, b) ->
               Obs.Json.Obj [ ("exec", Obs.Json.Int x); ("bits", Obs.Json.Int b) ])
             s.Fuzz.Driver.curve)
      in
      rows :=
        Obs.Json.Obj
          [
            ("bench", Obs.Json.String "fuzz-oracle");
            ("oracle", Obs.Json.String (Fuzz.Oracle.name oracle));
            ("budget", Obs.Json.Int s.Fuzz.Driver.budget);
            ("seed", Obs.Json.Int s.Fuzz.Driver.seed);
            ("execs", Obs.Json.Int s.Fuzz.Driver.execs);
            ("interesting", Obs.Json.Int s.Fuzz.Driver.interesting);
            ("corpus_size", Obs.Json.Int s.Fuzz.Driver.corpus_size);
            ("coverage_bits", Obs.Json.Int s.Fuzz.Driver.coverage_bits);
            ("coverage_curve", curve);
            ("divergences", Obs.Json.Int s.Fuzz.Driver.divergences);
            ("execs_per_s", Obs.Json.Float execs_per_s);
            ("wall_ms", Obs.Json.Float (1000. *. wall));
            ( "ok",
              Obs.Json.Float (if s.Fuzz.Driver.divergences = 0 then 1.0 else 0.0)
            );
          ]
        :: !rows;
      Fmt.pr "%-14s %-8d %-10d %-12d %-10d %-10d %-12.0f %-10.1f@."
        (Fuzz.Oracle.name oracle) s.Fuzz.Driver.execs s.Fuzz.Driver.interesting
        s.Fuzz.Driver.corpus_size s.Fuzz.Driver.coverage_bits
        s.Fuzz.Driver.divergences execs_per_s (1000. *. wall);
      match outcome.Fuzz.Driver.witness with
      | None -> ()
      | Some w -> Fmt.pr "  !! %a@." Fuzz.Driver.pp_witness w)
    Fuzz.Oracle.all;
  let t0 = Unix.gettimeofday () in
  let results = Fuzz.Oracle.mutant_sweep ~budget:mutant_budget ~seed:42 in
  let wall = Unix.gettimeofday () -. t0 in
  let caught =
    List.length (List.filter (fun r -> r.Fuzz.Oracle.caught) results)
  in
  let total = List.length results in
  rows :=
    Obs.Json.Obj
      [
        ("bench", Obs.Json.String "fuzz-mutants");
        ("budget", Obs.Json.Int mutant_budget);
        ("seed", Obs.Json.Int 42);
        ("mutants", Obs.Json.Int total);
        ("caught", Obs.Json.Int caught);
        ( "caught_ratio",
          Obs.Json.Float
            (if total = 0 then 1.0 else float_of_int caught /. float_of_int total)
        );
        ( "witness_sizes",
          Obs.Json.Arr
            (List.map
               (fun r ->
                 Obs.Json.Obj
                   [
                     ("mutant", Obs.Json.String r.Fuzz.Oracle.mutant);
                     ("caught", Obs.Json.Bool r.Fuzz.Oracle.caught);
                     ("witness_size", Obs.Json.Int r.Fuzz.Oracle.witness_size);
                   ])
               results) );
        ("wall_ms", Obs.Json.Float (1000. *. wall));
      ]
    :: !rows;
  Fmt.pr "mutants: %d/%d caught in %.1f ms@." caught total (1000. *. wall);
  write_bench ~experiment:"fuzz" ~file:"BENCH_fuzz.json" (List.rev !rows)

(* ------------------------------------------------------------------ *)

let tables =
  [
    ("fig1-upper", fig1_upper);
    ("fig1-lower", fig1_lower);
    ("fig1-anon-upper", fig1_anon_upper);
    ("fig1-anon-nonblocking", fig1_anon_nonblocking);
    ("fig1-anon-lower", fig1_anon_lower);
    ("anon-frontier", anon_frontier);
    ("conjecture-probe", conjecture_probe);
    ("baseline", baseline_table);
    ("consensus-exact", consensus_exact);
    ("snapshot-ablation", snapshot_ablation);
    ("explore", explore_table);
    ("indep", indep_table);
    ("conform", conform_table);
    ("analyze", analyze_table);
    ("perf", perf_table);
    ("service", service_table);
    ("fuzz", fuzz_table);
  ]

let series =
  [
    ("progress-vs-m", progress_vs_m);
    ("steps-vs-n", steps_vs_n);
    ("diversity-vs-workload", diversity_vs_workload);
  ]

let run_all () =
  List.iter (fun (_, f) -> f ()) tables;
  List.iter (fun (_, f) -> f ()) series;
  bechamel_benches ()

(* ------------------------------------------------------------------ *)
(* History subcommands: diff, check, floors.                           *)

let load_history () =
  match Obs.History.load history_path with
  | Ok entries -> entries
  | Error e ->
    Fmt.epr "%s: %s@." history_path e;
    exit 2

(* `diff [experiment]`: metric drift between the last two recorded runs
   of an experiment (default: perf). *)
let diff_cmd experiment =
  let runs =
    load_history ()
    |> List.filter (fun (e : Obs.History.entry) ->
           e.Obs.History.experiment = experiment && e.Obs.History.kind = "run")
  in
  match List.rev runs with
  | cur :: base :: _ ->
    Fmt.pr "%s: %a -> %a@." experiment Obs.History.pp_entry base
      Obs.History.pp_entry cur;
    (match Obs.History.diff base cur with
    | [] -> Fmt.pr "no shared metric changed@."
    | deltas -> List.iter (fun d -> Fmt.pr "%a@." Obs.History.pp_delta d) deltas)
  | _ ->
    Fmt.epr "need at least two %S run entries in %s (run `bench table %s` twice)@."
      experiment history_path experiment;
    exit 2

(* The committed baseline: floors on the machine-independent speedup
   ratios of E16 (same-binary reference vs new arms), the PR-5 targets.
   `floors` (re)generates the entry; `check` enforces it. *)
let perf_floors =
  [
    {
      Obs.History.selector =
        [ ("bench", "sim-steps"); ("arm", "new") ];
      metric = "ratio_vs_reference";
      min = 5.0;
    };
    {
      Obs.History.selector =
        [ ("bench", "dpor-states"); ("arm", "new") ];
      metric = "ratio_vs_reference";
      min = 3.0;
    };
    (* E20: the bytecode engine must stay >=5x the PR-5 journal +
       incremental-key arm on the shared collect workload (measured
       7-8x; the floor is the acceptance bar), and the vm DPOR driver
       must keep a real margin over interpreted DPOR (measured
       1.9-2.6x; floored conservatively against scheduler noise). *)
    {
      Obs.History.selector =
        [ ("bench", "vm-sim-steps"); ("arm", "vm") ];
      metric = "ratio_vs_reference";
      min = 5.0;
    };
    {
      Obs.History.selector =
        [ ("bench", "vm-dpor-states"); ("arm", "vm") ];
      metric = "ratio_vs_reference";
      min = 1.3;
    };
  ]

(* Floors for E17: the batching speedup is a same-binary ratio (so it
   holds across hardware), and the chaos verdict must be clean — a
   history that stops linearizing is a regression like any other. *)
let service_floors =
  [
    {
      Obs.History.selector =
        [ ("bench", "service-throughput"); ("arm", "batched") ];
      metric = "ratio_vs_reference";
      min = 2.0;
    };
    {
      Obs.History.selector = [ ("bench", "service-verdict"); ("arm", "chaos") ];
      metric = "ok";
      min = 1.0;
    };
  ]

(* Every floor-gated experiment: its committed floors and the table
   that regenerates the gated rows. *)
(* Floors for E18: verdict floors are exact (a clean campaign and a
   full mutant catch are both 1.0 by construction, on any machine);
   the coverage floor is a conservative bound on the deterministic
   bit count at the smoke budget — a generator or coverage regression
   that guts feedback shows up as a collapse here. *)
let fuzz_floors =
  List.map
    (fun oracle ->
      {
        Obs.History.selector =
          [ ("bench", "fuzz-oracle"); ("oracle", Fuzz.Oracle.name oracle) ];
        metric = "ok";
        min = 1.0;
      })
    Fuzz.Oracle.all
  @ [
      {
        Obs.History.selector =
          [ ("bench", "fuzz-oracle"); ("oracle", "analyzer") ];
        metric = "coverage_bits";
        min = 500.0;
      };
      {
        Obs.History.selector = [ ("bench", "fuzz-mutants") ];
        metric = "caught_ratio";
        min = 1.0;
      };
    ]

(* Floors for E19: the state reduction is a same-binary ratio of
   explored-state counts (machine-independent), and verdict identity
   is exact — the refinement must never flip a verdict. *)
let indep_floors =
  [
    {
      Obs.History.selector = [ ("bench", "indep-total") ];
      metric = "states_ratio";
      min = 1.1;
    };
    {
      Obs.History.selector = [ ("bench", "indep-total") ];
      metric = "verdict_match";
      min = 1.0;
    };
  ]

let gated_experiments =
  [
    ("perf", (perf_floors, perf_table));
    ("service", (service_floors, service_table));
    ("fuzz", (fuzz_floors, fuzz_table));
    ("indep", (indep_floors, indep_table));
  ]

let floors_cmd () =
  List.iter
    (fun (experiment, (floors, _)) ->
      let entry =
        Obs.History.make ~ts:(Unix.time ()) ~rev:(git_rev ()) ~kind:"floors"
          ~experiment
          (List.map Obs.History.floor_row floors)
      in
      Obs.History.append ~path:history_path entry;
      Fmt.pr "appended floors entry to %s: %a@." history_path Obs.History.pp_entry
        entry)
    gated_experiments

(* `check [--smoke] [--fault]`: run each gated table and gate its rows
   against the committed floors.  Exit 1 on any violation.  --fault
   synthetically regresses every gated metric (divides it by 100)
   before checking — CI uses it to prove the gate actually fails. *)
let check_experiment ~fault ~experiment ~run_table () =
  let floors =
    match Obs.History.latest_floors (load_history ()) ~experiment with
    | Some e -> Obs.History.floors_of_entry e
    | None ->
      Fmt.epr "no committed floors entry for %S in %s (run `bench floors`)@."
        experiment history_path;
      exit 2
  in
  run_table ();
  let rows =
    match !last_bench with
    | Some (e, rows) when e = experiment -> rows
    | _ ->
      Fmt.epr "internal error: %s table did not record its rows@." experiment;
      exit 2
  in
  let rows =
    if not fault then rows
    else
      List.map
        (function
          | Obs.Json.Obj fields ->
            Obs.Json.Obj
              (List.map
                 (fun (k, v) ->
                   match v with
                   | Obs.Json.Float x
                     when List.exists
                            (fun (f : Obs.History.floor) -> f.Obs.History.metric = k)
                            floors ->
                     (k, Obs.Json.Float (x /. 100.))
                   | _ -> (k, v))
                 fields)
          | row -> row)
        rows
  in
  if fault then Fmt.pr "--fault: gated metrics synthetically regressed 100x@.";
  let verdicts = Obs.History.check_floors ~floors rows in
  List.iter (fun v -> Fmt.pr "%a@." Obs.History.pp_verdict v) verdicts;
  verdicts

let check_cmd ~fault () =
  let verdicts =
    List.concat_map
      (fun (experiment, (_, run_table)) ->
        check_experiment ~fault ~experiment ~run_table ())
      gated_experiments
  in
  let bad = List.filter Obs.History.violated verdicts in
  if bad <> [] then begin
    Fmt.pr "bench check: FAIL (%d of %d floors violated)@." (List.length bad)
      (List.length verdicts);
    exit 1
  end;
  Fmt.pr "bench check: ok (%d floors)@." (List.length verdicts)

let () =
  (* --smoke anywhere on the line switches E16 to CI-sized iteration
     counts (same arms, same schema); --fault makes `check` regress the
     gated metrics synthetically. *)
  let fault = ref false in
  let argv =
    Array.to_list Sys.argv
    |> List.filter (fun a ->
           if a = "--smoke" then (
             perf_smoke := true;
             false)
           else if a = "--fault" then (
             fault := true;
             false)
           else true)
  in
  match argv with
  | [ _ ] | [ _; "all" ] -> run_all ()
  | [ _; "bechamel" ] -> bechamel_benches ()
  | [ _; "table"; id ] -> (
    match List.assoc_opt id tables with
    | Some f -> f ()
    | None ->
      Fmt.epr "unknown table %S; available: %a@." id
        Fmt.(list ~sep:sp string)
        (List.map fst tables);
      exit 2)
  | [ _; "series"; id ] -> (
    match List.assoc_opt id series with
    | Some f -> f ()
    | None ->
      Fmt.epr "unknown series %S; available: %a@." id
        Fmt.(list ~sep:sp string)
        (List.map fst series);
      exit 2)
  | [ _; "diff" ] -> diff_cmd "perf"
  | [ _; "diff"; experiment ] -> diff_cmd experiment
  | [ _; "check" ] -> check_cmd ~fault:!fault ()
  | [ _; "floors" ] -> floors_cmd ()
  | _ ->
    Fmt.epr
      "usage: main.exe [all | bechamel | table <id> | series <id> | diff \
       [<experiment>] | check [--smoke] [--fault] | floors]@.";
    exit 2
