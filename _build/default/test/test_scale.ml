(* Scale and soak tests: larger systems, long repeated runs, and the
   structural facts that should be scale-invariant (constant space,
   linear solo cost). *)

open Helpers
open Agreement

let big_oneshot () =
  [ 12; 16; 24 ]
  |> List.iter (fun n ->
         let p = Params.make ~n ~m:2 ~k:3 in
         let impl = Instances.space_optimal_impl p in
         (* the closed-form quantum counts atomic snapshot steps; the
            register-level SW snapshot expands each op into O(n)
            collects, so scale accordingly *)
         let q = Bounds.Complexity.sufficient_quantum ~r:(Params.r_oneshot p) in
         let q = match impl with Instances.Sw_based -> q * 20 * n | _ -> q in
         let result =
           Runner.run_oneshot ~impl
             ~sched:(Shm.Schedule.quantum_round_robin ~quantum:q n)
             ~max_steps:5_000_000 p
         in
         assert_all_done ~ops:1 result;
         assert_safe ~k:3 result;
         Alcotest.(check bool)
           (Printf.sprintf "n=%d within bound" n)
           true
           (Runner.registers_used result <= Params.registers_upper p))

let long_repeated_soak () =
  let p = Params.make ~n:6 ~m:1 ~k:2 in
  let rounds = 30 in
  let result =
    Runner.run_repeated ~rounds
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:400 6)
      ~max_steps:10_000_000 p
  in
  assert_all_done ~ops:rounds result;
  assert_safe ~k:2 result;
  (* space stays put no matter how many instances ran *)
  Alcotest.(check bool) "constant space over 30 rounds" true
    (Runner.registers_used result <= Params.r_oneshot p)

let long_anonymous_soak () =
  let p = Params.make ~n:4 ~m:1 ~k:2 in
  let rounds = 12 in
  let result =
    Runner.run_anonymous ~rounds
      ~sched:(Shm.Schedule.quantum_round_robin ~quantum:800 4)
      ~max_steps:10_000_000 p
  in
  assert_all_done ~ops:rounds result;
  assert_safe ~k:2 result

(* Mixed chaos soak: random schedule with crashes and an eventual
   2-process survivor set; safety plus survivor progress. *)
let chaos_soak () =
  for seed = 0 to 9 do
    let n = 8 in
    let p = Params.make ~n ~m:2 ~k:4 in
    let sched =
      Shm.Schedule.with_crashes
        ~crashes:[ (1, 100 + seed); (4, 200 + seed) ]
        (Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:500 n)
    in
    let result = Runner.run_repeated ~rounds:3 ~sched ~max_steps:3_000_000 p in
    assert_safe ~k:4 result
  done

(* poor-man's substring search, avoiding a regex dependency *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Diagram rendering sanity: right shape, right symbols. *)
let diagram_render () =
  let p = Params.make ~n:2 ~m:1 ~k:1 in
  let config = Instances.oneshot p in
  let inputs = Shm.Exec.oneshot_inputs [| vi 1; vi 2 |] in
  let res =
    Shm.Exec.run ~record:true ~sched:(Shm.Schedule.solo 0) ~inputs ~max_steps:100
      config
  in
  let s = Shm.Diagram.to_string ~n:2 res.Shm.Exec.trace in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "two rows" 2 (List.length lines);
  Alcotest.(check bool) "row 0 has invoke" true (contains (List.nth lines 0) "I");
  Alcotest.(check bool) "row 0 has output" true (contains (List.nth lines 0) "O");
  Alcotest.(check bool) "row 1 all idle" true
    (not (contains (List.nth lines 1) "w"))

let suite =
  [
    slow_test "one-shot at n=12/16/24" big_oneshot;
    slow_test "repeated soak: 30 rounds constant space" long_repeated_soak;
    slow_test "anonymous soak: 12 rounds" long_anonymous_soak;
    slow_test "chaos soak: crashes + m-bounded" chaos_soak;
    test "diagram rendering" diagram_render;
  ]
