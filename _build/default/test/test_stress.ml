(* Tests for the stress harness and the Workload generators. *)

open Helpers
open Agreement

let oneshot_inputs n = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi pid))

(* Correct systems survive. *)
let correct_survives () =
  let p = Params.make ~n:5 ~m:2 ~k:2 in
  match
    Spec.Stress.run ~runs:30 ~k:2 ~n:5
      ~build:(fun () -> Instances.oneshot p)
      ~inputs:(oneshot_inputs 5) ()
  with
  | Spec.Stress.Survived { runs } -> Alcotest.(check int) "all runs" 60 runs
  | Spec.Stress.Broken _ as v ->
    Alcotest.failf "correct system broke: %a" Spec.Stress.pp_verdict v

(* Register-starved systems are caught, with a replayable witness. *)
let starved_is_caught () =
  let p = Params.make ~n:5 ~m:2 ~k:2 in
  match
    Spec.Stress.run ~runs:100 ~k:2 ~n:5
      ~build:(fun () -> Instances.oneshot ~r:2 p)
      ~inputs:(oneshot_inputs 5) ()
  with
  | Spec.Stress.Broken { config; error; _ } ->
    Alcotest.(check bool) "error mentions agreement" true
      (String.length error > 0);
    (* the witness config independently re-checks *)
    Alcotest.(check bool) "witness re-checks" true
      (Spec.Properties.check_safety ~k:2 config |> Result.is_error)
  | Spec.Stress.Survived _ -> Alcotest.fail "starved system survived stress"

(* The m-bounded family also respects safety on correct systems. *)
let m_bounded_family () =
  let p = Params.make ~n:4 ~m:1 ~k:2 in
  match
    Spec.Stress.run ~runs:20
      ~families:[ Spec.Stress.M_bounded 1 ]
      ~k:2 ~n:4
      ~build:(fun () -> Instances.oneshot p)
      ~inputs:(oneshot_inputs 4) ()
  with
  | Spec.Stress.Survived _ -> ()
  | Spec.Stress.Broken _ as v -> Alcotest.failf "%a" Spec.Stress.pp_verdict v

(* ---- workloads ---- *)

let workload_shapes () =
  let n = 10 in
  Alcotest.(check int) "distinct has n values" n
    (Workload.distinct_inputs Workload.Distinct ~n);
  Alcotest.(check int) "identical has 1" 1
    (Workload.distinct_inputs Workload.Identical ~n);
  Alcotest.(check int) "two camps has 2" 2
    (Workload.distinct_inputs Workload.Two_camps ~n);
  Alcotest.(check bool) "skewed has a majority" true
    (let inputs = Workload.inputs Workload.Skewed ~n in
     Agreement.View.count (Shm.Value.equal (vi 100)) inputs > n / 2);
  Alcotest.(check bool) "binary has <= 2" true
    (Workload.distinct_inputs (Workload.Binary_random 3) ~n <= 2)

let workloads_all_safe () =
  Workload.all
  |> List.iter (fun w ->
         let n = 6 in
         let p = Params.make ~n ~m:1 ~k:2 in
         let inputs = Workload.inputs w ~n in
         for seed = 0 to 9 do
           let result =
             Runner.run_oneshot ~inputs ~sched:(Shm.Schedule.random ~seed n) p
           in
           assert_safe ~k:2 result
         done)

let workload_names_unique () =
  let names = List.map Workload.name Workload.all in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [
    test "stress: correct system survives" correct_survives;
    test "stress: starved system caught with witness" starved_is_caught;
    test "stress: m-bounded family" m_bounded_family;
    test "workload shapes" workload_shapes;
    test "all workloads safe" workloads_all_safe;
    test "workload names unique" workload_names_unique;
  ]
