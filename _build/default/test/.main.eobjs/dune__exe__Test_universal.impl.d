test/test_universal.ml: Agreement Alcotest Helpers Ledger List Machines Printf Rsm Shm Universal
