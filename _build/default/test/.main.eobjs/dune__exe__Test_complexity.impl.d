test/test_complexity.ml: Agreement Alcotest Array Bounds Helpers Instances List Params Printf Runner Shm Spec
