test/test_lemma1.ml: Agreement Alcotest Explore Gamma Helpers Instances Lemma1 List Lowerbound Params Printf Shm Spec
