test/test_anonymous.ml: Agreement Alcotest Helpers Instances Params Runner Shm Spec
