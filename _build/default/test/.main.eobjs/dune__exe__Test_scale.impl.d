test/test_scale.ml: Agreement Alcotest Bounds Helpers Instances List Params Printf Runner Shm String
