test/test_anonymity.ml: Agreement Alcotest Fun Helpers Instances List Params Shm
