test/test_theorem2_more.ml: Agreement Alcotest Fmt Helpers Instances List Lowerbound Params Printf Shm Spec Theorem2
