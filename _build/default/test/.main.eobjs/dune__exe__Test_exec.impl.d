test/test_exec.ml: Alcotest Array Config Event Exec Helpers List Memory Option Program Schedule Shm Value
