test/test_theorem2.ml: Agreement Alcotest Helpers Instances List Lowerbound Params Printf Spec Theorem2
