test/main.mli:
