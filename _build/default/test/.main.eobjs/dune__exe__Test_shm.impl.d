test/test_shm.ml: Alcotest Array Config Event Fun Helpers List Memory Program Rng Shm Value
