test/test_alpha.ml: Agreement Alcotest Alpha Helpers Instances List Lowerbound Params Shm
