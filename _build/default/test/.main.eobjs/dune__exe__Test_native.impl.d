test/test_native.ml: Agreement Alcotest Array Domain Helpers List Native Params Printf Shm Spec
