test/test_snapshot_units.ml: Alcotest Array Config Event Exec Helpers List Program Schedule Shm Snapshot Value
