test/test_props.ml: Agreement Array Exec Fun List Lowerbound Memory QCheck QCheck_alcotest Random Schedule Shm Spec Value
