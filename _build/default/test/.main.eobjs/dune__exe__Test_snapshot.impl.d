test/test_snapshot.ml: Agreement Alcotest Array Config Exec Fmt Helpers List Program Rng Schedule Shm Snapshot Spec Value
