test/test_linearize.ml: Alcotest Array Helpers Shm Spec
