test/test_stress.ml: Agreement Alcotest Array Helpers Instances List Params Result Runner Shm Spec String Workload
