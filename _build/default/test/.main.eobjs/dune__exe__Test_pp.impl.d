test/test_pp.ml: Agreement Alcotest Config Diagram Event Fmt Helpers Program Rng Schedule Shm Snapshot Value
