test/test_baseline.ml: Agreement Alcotest Baseline_dfgr13 Helpers Params Printf Runner Shm
