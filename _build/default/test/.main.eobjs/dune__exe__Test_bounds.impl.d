test/test_bounds.ml: Agreement Alcotest Bounds Fun Helpers List Params Shm
