test/test_repeated.ml: Agreement Alcotest Helpers Instances List Params Printf Runner Shm Spec
