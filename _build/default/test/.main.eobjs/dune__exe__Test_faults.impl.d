test/test_faults.ml: Agreement Alcotest Array Fun Helpers Instances List Params Printf Runner Shm Spec
