test/test_errata.ml: Agreement Alcotest Array Helpers List Oneshot Params Printf Runner Shm Snapshot Spec
