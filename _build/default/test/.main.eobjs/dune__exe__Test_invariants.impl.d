test/test_invariants.ml: Agreement Alcotest Array Helpers Instances Params Shm Spec
