test/test_clones.ml: Agreement Alcotest Clones Helpers Instances List Lowerbound Params Spec
