test/helpers.ml: Agreement Alcotest Exec Shm Spec String Value
