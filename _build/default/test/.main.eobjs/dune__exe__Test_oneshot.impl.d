test/test_oneshot.ml: Agreement Alcotest Array Helpers List Params Runner Shm
