test/test_lemma9.ml: Agreement Alcotest Clones Helpers Instances Lemma9 List Lowerbound Params Spec
