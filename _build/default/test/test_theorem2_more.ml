(* Wider Theorem 2 adversary coverage: the m = 3 group case, sweeps of
   intermediate register budgets, and structural facts about the
   construction. *)

open Helpers
open Agreement
open Lowerbound

let attack ?(icap = 4) ?(gamma_tries = 3000) p ~registers =
  Theorem2.attack ~params:p ~registers
    ~make_config:(fun ~registers -> Instances.repeated ~r:registers p)
    ~icap ~gamma_tries ()

(* m = 3, k = 3, n = 7: lower bound 7; attack with 6 registers.  Groups
   of sizes 1 and 3; the size-3 γ needs the bursty Lemma 1 search. *)
let breaks_m3 () =
  let p = Params.make ~n:7 ~m:3 ~k:3 in
  let registers = Params.registers_lower p - 1 in
  match attack p ~registers with
  | Theorem2.Violation { outputs; config; _ } ->
    Alcotest.(check bool) "k+1 = 4 outputs" true (List.length outputs >= 4);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:3 config <> []);
    Alcotest.(check (list string)) "validity holds" []
      (Spec.Properties.validity_errors config)
  | o -> Alcotest.failf "expected violation, got: %a" Theorem2.pp_outcome o

(* Every register budget strictly below the bound is breakable (not
   just lower−1). *)
let all_starved_budgets_break () =
  let p = Params.make ~n:5 ~m:1 ~k:2 in
  for registers = 1 to Params.registers_lower p - 1 do
    match attack p ~registers with
    | Theorem2.Violation _ -> ()
    | o ->
      Alcotest.failf "registers=%d should break: %a" registers Theorem2.pp_outcome o
  done

(* The groups of a successful attack satisfy the proof's structure:
   sizes per property 3/4, disjoint final Q sets, covered sets within
   the register range. *)
let group_structure () =
  let p = Params.make ~n:6 ~m:2 ~k:3 in
  let registers = Params.registers_lower p - 1 in
  match attack p ~registers with
  | Theorem2.Violation { groups; _ } ->
    let c = (p.Params.k + p.Params.m) / p.Params.m in
    Alcotest.(check int) "c groups" c (List.length groups);
    List.iteri
      (fun idx g ->
        let expect =
          if idx = 0 then p.Params.k + 1 - ((c - 1) * p.Params.m) else p.Params.m
        in
        Alcotest.(check int)
          (Printf.sprintf "group %d size" (idx + 1))
          expect
          (List.length g.Theorem2.final_q);
        List.iter
          (fun r ->
            Alcotest.(check bool) "register in range" true (r >= 0 && r < registers))
          g.Theorem2.aset)
      groups;
    (* final Q sets pairwise disjoint *)
    let all_q = List.concat_map (fun g -> g.Theorem2.final_q) groups in
    Alcotest.(check int) "Q sets disjoint" (List.length all_q)
      (List.length (List.sort_uniq compare all_q))
  | o -> Alcotest.failf "expected violation: %a" Theorem2.pp_outcome o

(* The fresh instance really is fresh: its inputs are the adversary's
   id-derived values, disjoint from all earlier instances. *)
let fresh_instance_inputs () =
  let p = Params.make ~n:4 ~m:1 ~k:1 in
  match attack p ~registers:(Params.registers_lower p - 1) with
  | Theorem2.Violation { instance; config; _ } ->
    Spec.Properties.by_instance config
    |> List.iter (fun (inst, ins, _) ->
           ins
           |> List.iter (fun v ->
                  let x = Shm.Value.to_int v in
                  if inst = instance then
                    Alcotest.(check bool) "fresh input domain" true (x >= 1_000_000)
                  else Alcotest.(check bool) "ordinary input domain" true (x < 1_000_000)))
  | o -> Alcotest.failf "expected violation: %a" Theorem2.pp_outcome o

(* Attacks are deterministic: running twice gives identical outcomes. *)
let attack_deterministic () =
  let p = Params.make ~n:5 ~m:2 ~k:2 in
  let registers = Params.registers_lower p - 1 in
  let show o = Fmt.str "%a" Theorem2.pp_outcome o in
  Alcotest.(check string) "same outcome" (show (attack p ~registers))
    (show (attack p ~registers))

let suite =
  [
    slow_test "breaks m=3 k=3 with n+m-k-1 registers" breaks_m3;
    slow_test "every starved budget breaks" all_starved_budgets_break;
    slow_test "group structure matches the proof" group_structure;
    slow_test "fresh instance has its own input domain" fresh_instance_inputs;
    slow_test "attack is deterministic" attack_deterministic;
  ]
