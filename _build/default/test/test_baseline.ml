(* Tests for the DFGR'13 baseline reconstruction and the register-count
   comparison the paper makes in Section 4.1. *)

open Helpers
open Agreement

let baseline_solves_k_set_agreement () =
  for n = 4 to 7 do
    for k = 1 to n - 2 do
      let p = Params.make ~n ~m:1 ~k in
      let result =
        Runner.run_baseline ~sched:(Shm.Schedule.quantum_round_robin ~quantum:400 n) p
      in
      assert_all_done ~ops:1 result;
      assert_safe ~k result
    done
  done

let baseline_safe_under_random () =
  let p = Params.make ~n:5 ~m:1 ~k:2 in
  for seed = 0 to 19 do
    let result = Runner.run_baseline ~sched:(Shm.Schedule.random ~seed 5) p in
    assert_safe ~k:2 result
  done

let baseline_obstruction_free () =
  for seed = 0 to 9 do
    let p = Params.make ~n:5 ~m:1 ~k:2 in
    let sched = Shm.Schedule.m_bounded ~seed ~m:1 ~prefix:50 5 in
    let result = Runner.run_baseline ~sched p in
    match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> ()
    | Shm.Exec.Fuel_exhausted -> Alcotest.failf "seed %d: solo survivor stuck" seed
  done

(* The paper's claim: ours uses n−k+2 registers where [4] uses 2(n−k);
   strictly fewer whenever n−k > 2, equal at n−k = 2. *)
let register_comparison () =
  for n = 4 to 12 do
    for k = 1 to n - 2 do
      let p = Params.make ~n ~m:1 ~k in
      let baseline = Params.r_dfgr13 p in
      let ours = Params.r_oneshot p in
      Alcotest.(check int) "baseline count" (2 * (n - k)) baseline;
      Alcotest.(check int) "our count" (n - k + 2) ours;
      if n - k > 2 then
        Alcotest.(check bool)
          (Printf.sprintf "n=%d k=%d: ours wins" n k)
          true (ours < baseline)
    done
  done

(* Both algorithms stay within their declared budgets at runtime. *)
let measured_registers () =
  let p = Params.make ~n:6 ~m:1 ~k:2 in
  let b = Runner.run_baseline ~sched:(Shm.Schedule.random ~seed:4 6) p in
  Alcotest.(check bool) "baseline within 2(n-k)" true
    (Runner.registers_used b <= Params.r_dfgr13 p);
  let o = Runner.run_oneshot ~sched:(Shm.Schedule.random ~seed:4 6) p in
  Alcotest.(check bool) "ours within n-k+2" true
    (Runner.registers_used o <= Params.r_oneshot p)

let unsupported_corner_rejected () =
  (* n = k+1: the reconstruction refuses (the paper's remaining gap) *)
  Alcotest.(check bool) "n-k=1 unsupported" false (Baseline_dfgr13.supported ~n:4 ~k:3);
  Alcotest.(check bool) "n-k=2 supported" true (Baseline_dfgr13.supported ~n:4 ~k:2)

let suite =
  [
    test "baseline solves 1-obstruction-free k-set agreement" baseline_solves_k_set_agreement;
    test "baseline safe under random schedules" baseline_safe_under_random;
    test "baseline is obstruction-free" baseline_obstruction_free;
    test "register counts: 2(n-k) vs n-k+2" register_comparison;
    test "measured registers within budgets" measured_registers;
    test "n=k+1 corner is rejected" unsupported_corner_rejected;
  ]
