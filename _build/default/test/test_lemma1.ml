(* Tests for the executable Lemma 1 and the exploration primitives it
   rests on. *)

open Helpers
open Agreement
open Lowerbound

(* Lemma 1 for m = 1 is solo termination with own value. *)
let lemma1_m1 () =
  let p = Params.make ~n:4 ~m:1 ~k:2 in
  let config = Instances.oneshot p in
  match Lemma1.find ~procs:[ 2 ] ~values:[ vi 77 ] config with
  | Lemma1.Found { outputs; _ } ->
    Alcotest.(check int) "one output" 1 (List.length outputs);
    check_value "own value" (vi 77) (List.hd outputs)
  | Lemma1.Search_failed msg -> Alcotest.failf "search failed: %s" msg

(* Lemma 1 for m = 2: two processes, two values, both output. *)
let lemma1_m2 () =
  let p = Params.make ~n:5 ~m:2 ~k:2 in
  let config = Instances.oneshot p in
  match Lemma1.find ~procs:[ 0; 3 ] ~values:[ vi 10; vi 20 ] config with
  | Lemma1.Found { config; outputs } ->
    Alcotest.(check int) "two distinct outputs" 2 (List.length outputs);
    (* only the chosen processes stepped: nobody else invoked *)
    List.iter
      (fun pid ->
        if pid <> 0 && pid <> 3 then
          Alcotest.(check int)
            (Printf.sprintf "p%d idle" pid)
            0
            (Spec.Properties.completed_ops config pid))
      [ 0; 1; 2; 3; 4 ]
  | Lemma1.Search_failed msg -> Alcotest.failf "search failed: %s" msg

(* Lemma 1 for m = 3 on the repeated algorithm. *)
let lemma1_m3_repeated () =
  let p = Params.make ~n:6 ~m:3 ~k:3 in
  let config = Instances.repeated p in
  match
    Lemma1.find ~procs:[ 1; 2; 5 ] ~values:[ vi 1; vi 2; vi 3 ] ~tries:5000
      ~max_steps:8_000 config
  with
  | Lemma1.Found { outputs; _ } ->
    Alcotest.(check int) "three distinct outputs" 3 (List.length outputs)
  | Lemma1.Search_failed msg -> Alcotest.failf "search failed: %s" msg

(* The m ≤ k boundary (Section 2.1): an algorithm for m-obstruction-free
   k-set agreement need not terminate when m+1 processes run forever.
   The adaptive spoiler keeps two processes of the m=1 algorithm from
   ever deciding, while safety still holds on the diverging run. *)
let m_boundary_non_termination () =
  let p = Params.make ~n:4 ~m:1 ~k:1 in
  let config = Instances.oneshot p in
  let inputs ~pid ~instance = if instance = 1 then Some (vi (pid + 1)) else None in
  match Lemma1.spoiler_witness ~horizon:20_000 ~a:0 ~b:1 ~inputs config with
  | Some config -> (
    match Spec.Properties.check_safety ~k:1 config with
    | Ok () -> ()
    | Error e -> Alcotest.failf "diverging run broke safety: %s" e)
  | None ->
    Alcotest.fail "expected a non-terminating 2-survivor schedule against m=1"

(* With m = 2 the same spoiler fails: two survivors always decide, as
   m-obstruction-freedom demands. *)
let m2_terminates_with_two () =
  let p = Params.make ~n:4 ~m:2 ~k:2 in
  let config = Instances.oneshot p in
  let inputs ~pid ~instance = if instance = 1 then Some (vi (pid + 1)) else None in
  match Lemma1.spoiler_witness ~horizon:50_000 ~a:0 ~b:1 ~inputs config with
  | None -> ()
  | Some _ -> Alcotest.fail "m=2 algorithm diverged under the spoiler"

(* ---- direct tests of the exploration primitives ---- *)

let explore_detects_poised_write () =
  let p = Params.make ~n:3 ~m:1 ~k:1 in
  let config = Instances.oneshot p in
  let inputs ~pid ~instance = if instance = 1 then Some (vi pid) else None in
  (* nothing allowed: the very first write escapes *)
  match
    Explore.run ~allowed:(fun _ -> false) ~inputs ~sched:(Shm.Schedule.solo 0)
      ~max_steps:100 config
  with
  | Explore.Escaped e ->
    Alcotest.(check int) "process 0" 0 e.Explore.pid;
    Alcotest.(check bool) "some register" true (e.Explore.reg >= 0);
    (* the write did NOT execute: memory still empty *)
    Alcotest.(check int) "no register written" 0
      (Shm.Memory.num_written (Shm.Config.mem e.Explore.config))
  | _ -> Alcotest.fail "expected escape"

let explore_stop_predicate () =
  let p = Params.make ~n:3 ~m:1 ~k:1 in
  let config = Instances.oneshot p in
  let inputs ~pid ~instance = if instance = 1 then Some (vi pid) else None in
  let stop c = Spec.Properties.completed_ops c 1 >= 1 in
  match
    Explore.run ~allowed:(fun _ -> true) ~inputs ~sched:(Shm.Schedule.solo 1)
      ~max_steps:10_000 ~stop config
  with
  | Explore.Stopped c -> Alcotest.(check int) "p1 decided" 1 (Spec.Properties.completed_ops c 1)
  | _ -> Alcotest.fail "expected stop"

let gamma_distinct_at () =
  let p = Params.make ~n:3 ~m:1 ~k:2 in
  let config = Instances.oneshot p in
  let inputs ~pid ~instance = if instance = 1 then Some (vi (100 + pid)) else None in
  match
    Gamma.build ~allowed:(fun _ -> true) ~inputs ~max_steps:10_000 ~t:1 ~procs:[ 2 ]
      config
  with
  | Gamma.Ok_gamma c ->
    let outs = Gamma.distinct_at c ~procs:[ 2 ] ~t:1 in
    Alcotest.(check int) "one distinct" 1 (List.length outs);
    check_value "solo decides own" (vi 102) (List.hd outs)
  | Gamma.Escape _ | Gamma.Failed _ -> Alcotest.fail "expected success"

let permutations_complete () =
  let perms = Gamma.permutations [ 1; 2; 3 ] in
  Alcotest.(check int) "3! = 6" 6 (List.length perms);
  Alcotest.(check int) "all distinct" 6
    (List.length (List.sort_uniq compare perms))

let suite =
  [
    test "Lemma 1, m=1 (solo)" lemma1_m1;
    test "Lemma 1, m=2 (two distinct outputs)" lemma1_m2;
    slow_test "Lemma 1, m=3 on repeated algorithm" lemma1_m3_repeated;
    test "m+1 survivors can loop forever (m<=k boundary)" m_boundary_non_termination;
    test "m=2 with two survivors terminates" m2_terminates_with_two;
    test "explore detects poised writes before they execute" explore_detects_poised_write;
    test "explore stop predicate" explore_stop_predicate;
    test "gamma: distinct outputs accounting" gamma_distinct_at;
    test "gamma: permutations helper" permutations_complete;
  ]
