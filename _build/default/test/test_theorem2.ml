(* Tests for the executable Theorem 2 lower-bound adversary. *)

open Helpers
open Agreement
open Lowerbound

let make_config p ~registers =
  Instances.repeated ~r:registers p

(* The headline demonstration: for r = n+m−k−1 (one register below the
   lower bound) the Figure 2 construction produces an execution in which
   one instance outputs k+1 distinct values. *)
let attack p ~registers =
  Theorem2.attack ~params:p ~registers ~make_config:(fun ~registers ->
      make_config p ~registers)
    ~icap:4 ()

let breaks_starved_consensus () =
  (* m = k = 1: lower bound says n registers; attack n−1. *)
  let p = Params.make ~n:4 ~m:1 ~k:1 in
  let registers = Params.registers_lower p - 1 in
  match attack p ~registers with
  | Theorem2.Violation { instance; outputs; config; _ } ->
    Alcotest.(check bool) "more than k outputs" true (List.length outputs > 1);
    (* certify independently with the checker *)
    let errs = Spec.Properties.agreement_errors ~k:1 config in
    Alcotest.(check bool) "checker confirms violation" true (errs <> []);
    (* and validity must hold: the adversary builds a *legal* execution *)
    Alcotest.(check (list string)) "validity holds" []
      (Spec.Properties.validity_errors config);
    Alcotest.(check int) "violated instance is the fresh one" 5 instance
  | o -> Alcotest.failf "expected violation, got: %a" Theorem2.pp_outcome o

let breaks_starved_set_agreement_m1 () =
  (* m = 1, k = 2, n = 5: lower bound 4; attack with 3 registers. *)
  let p = Params.make ~n:5 ~m:1 ~k:2 in
  let registers = Params.registers_lower p - 1 in
  match attack p ~registers with
  | Theorem2.Violation { outputs; config; _ } ->
    Alcotest.(check bool) "k+1 outputs" true (List.length outputs >= 3);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:2 config <> []);
    Alcotest.(check (list string)) "validity holds" []
      (Spec.Properties.validity_errors config)
  | o -> Alcotest.failf "expected violation, got: %a" Theorem2.pp_outcome o

let breaks_starved_m2 () =
  (* m = 2, k = 2, n = 5: lower bound n+m−k = 5; attack with 4. *)
  let p = Params.make ~n:5 ~m:2 ~k:2 in
  let registers = Params.registers_lower p - 1 in
  match attack p ~registers with
  | Theorem2.Violation { outputs; config; _ } ->
    Alcotest.(check bool) "k+1 outputs" true (List.length outputs >= 3);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:2 config <> [])
  | o -> Alcotest.failf "expected violation, got: %a" Theorem2.pp_outcome o

(* Against correctly-provisioned algorithms the construction must fail,
   and fail the way the proof's counting predicts: it runs out of
   replacement processes while trying to cover the registers. *)
let correct_algorithm_resists () =
  let cases = [ (4, 1, 1); (5, 1, 2); (5, 2, 2); (6, 2, 3) ] in
  cases
  |> List.iter (fun (n, m, k) ->
         let p = Params.make ~n ~m ~k in
         let registers = Params.r_oneshot p in
         match attack p ~registers with
         | Theorem2.Out_of_processes _ -> ()
         | Theorem2.Violation _ ->
           Alcotest.failf "(n=%d,m=%d,k=%d): violated a correct algorithm!" n m k
         | Theorem2.Gamma_failed { reason; _ } ->
           Alcotest.failf "(n=%d,m=%d,k=%d): unexpected gamma failure: %s" n m k reason)

(* The covered-register sets grow as the proof describes: each escape
   adds one register and one block-writer, |Pj| = |Aj|. *)
let covering_invariants () =
  let p = Params.make ~n:5 ~m:1 ~k:2 in
  match attack p ~registers:3 with
  | Theorem2.Violation { groups; _ } ->
    groups
    |> List.iter (fun g ->
           Alcotest.(check int)
             (Printf.sprintf "group %d: |P|=|A|" g.Theorem2.index)
             (List.length g.Theorem2.aset)
             (List.length g.Theorem2.pset));
    Alcotest.(check int) "c = k+1 groups for m=1" 3 (List.length groups)
  | o -> Alcotest.failf "expected violation, got: %a" Theorem2.pp_outcome o

let suite =
  [
    slow_test "breaks consensus with n-1 registers" breaks_starved_consensus;
    slow_test "breaks k=2 m=1 with n+m-k-1 registers" breaks_starved_set_agreement_m1;
    slow_test "breaks k=2 m=2 with n+m-k-1 registers" breaks_starved_m2;
    slow_test "correct register counts resist the attack" correct_algorithm_resists;
    slow_test "covering invariants |P|=|A|" covering_invariants;
  ]
