(* Tests for the α-execution recorder/replayer underlying Lemma 9. *)

open Helpers
open Agreement
open Lowerbound

let fresh ?(r = 3) ?(slots = 6) () =
  let p = Params.make ~n:slots ~m:1 ~k:1 in
  (p, Instances.anonymous_oneshot ~r ~slots p)

let search_solo () =
  let _, config = fresh () in
  match Alpha.search ~procs:[ 0 ] ~values:[ vi 9 ] config with
  | Some alpha ->
    Alcotest.(check (list int)) "register order 0,1,2" [ 0; 1; 2 ]
      alpha.Alpha.reg_order;
    (match alpha.Alpha.outputs with
    | [ v ] -> check_value "solo outputs own" (vi 9) v
    | _ -> Alcotest.fail "one output expected");
    (* schedule starts with the invocation *)
    (match alpha.Alpha.schedule with
    | Alpha.Inv 0 :: _ -> ()
    | _ -> Alcotest.fail "schedule must start with Inv")
  | None -> Alcotest.fail "solo alpha must exist"

(* Replaying the recorded schedule on a fresh configuration reproduces
   the execution exactly (same outputs, same memory). *)
let replay_reproduces () =
  let _, config = fresh () in
  let inputs ~pid ~instance = if pid = 0 && instance = 1 then Some (vi 9) else None in
  match Alpha.search ~procs:[ 0 ] ~values:[ vi 9 ] config with
  | None -> Alcotest.fail "alpha must exist"
  | Some alpha ->
    let final =
      List.fold_left (Alpha.replay_step ~inputs) config alpha.Alpha.schedule
    in
    (match Shm.Config.outputs final with
    | [ (0, 1, v) ] -> check_value "same output" (vi 9) v
    | _ -> Alcotest.fail "replay lost the output");
    Alcotest.(check int) "all registers written" 3
      (Shm.Memory.num_written (Shm.Config.mem final))

(* Renamed schedules run isomorphically on another slot. *)
let renamed_replay () =
  let _, config = fresh () in
  match Alpha.search ~procs:[ 0 ] ~values:[ vi 9 ] config with
  | None -> Alcotest.fail "alpha must exist"
  | Some alpha ->
    let schedule = Alpha.map_pids (fun _ -> 3) alpha.Alpha.schedule in
    let inputs ~pid ~instance =
      if pid = 3 && instance = 1 then Some (vi 77) else None
    in
    let final = List.fold_left (Alpha.replay_step ~inputs) config schedule in
    (match Shm.Config.outputs final with
    | [ (3, 1, v) ] -> check_value "renamed output" (vi 77) v
    | _ -> Alcotest.fail "renamed replay lost the output")

(* Divergence is detected: replaying against a configuration whose
   memory was tampered with (changing the process's control flow)
   raises rather than silently producing a different execution. *)
let divergence_detected () =
  let _, config = fresh () in
  match Alpha.search ~procs:[ 0 ] ~values:[ vi 9 ] config with
  | None -> Alcotest.fail "alpha must exist"
  | Some alpha ->
    (* mismatched pid: slot 1 is idle, stepping it as Move must raise *)
    let bad = Alpha.map_pids (fun _ -> 1) alpha.Alpha.schedule in
    let inputs ~pid:_ ~instance:_ = Some (vi 1) in
    (match bad with
    | _inv :: move :: _ -> (
      (* skip the invocation, then try the first move on an IDLE slot *)
      match move with
      | Alpha.Move _ -> (
        try
          ignore (Alpha.replay_step ~inputs config move);
          Alcotest.fail "expected divergence"
        with Alpha.Replay_diverged _ -> ())
      | Alpha.Inv _ -> Alcotest.fail "unexpected schedule shape")
    | _ -> Alcotest.fail "schedule too short")

let reg_order_helper () =
  let s =
    [
      Alpha.Inv 0;
      Alpha.Move (0, Some (Shm.Program.Write (2, vi 1)));
      Alpha.Move (0, Some (Shm.Program.Scan (0, 3)));
      Alpha.Move (0, Some (Shm.Program.Write (0, vi 1)));
      Alpha.Move (0, Some (Shm.Program.Write (2, vi 1)));
    ]
  in
  Alcotest.(check (list int)) "first-write order" [ 2; 0 ] (Alpha.reg_order_of s)

let suite =
  [
    test "search records a solo alpha" search_solo;
    test "replay reproduces the execution" replay_reproduces;
    test "renamed schedules replay isomorphically" renamed_replay;
    test "divergence is detected" divergence_detected;
    test "register-order helper" reg_order_helper;
  ]
