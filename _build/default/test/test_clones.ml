(* Tests for the anonymous lower-bound (Section 5) clone construction. *)

open Helpers
open Agreement
open Lowerbound

let make p ~registers ~slots =
  Instances.anonymous_oneshot ~r:registers ~slots p

let attack ?(slots = 16) p ~registers =
  Clones.attack ~params:p ~registers ~slots
    ~make_config:(fun ~registers ~slots -> make p ~registers ~slots)
    ()

(* Consensus (k = 1) with 3 registers among enough processes: the glued
   execution outputs two distinct values. *)
let breaks_starved_anonymous_consensus () =
  let p = Params.make ~n:8 ~m:1 ~k:1 in
  match attack ~slots:8 p ~registers:3 with
  | Clones.Violation { outputs; config; clones_used; registers_written } ->
    Alcotest.(check int) "two distinct outputs" 2 (List.length outputs);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:1 config <> []);
    Alcotest.(check (list string)) "validity holds" []
      (Spec.Properties.validity_errors config);
    (* The paper's counting: c·(m + (r²−r)/2) processes suffice; with
       c = 2, m = 1, r = 3 that is 8 = 2 mains + 6 clones. *)
    Alcotest.(check int) "6 clones as the bound predicts" 6 clones_used;
    Alcotest.(check (list int)) "registers discovered in order" [ 0; 1; 2 ]
      registers_written
  | o -> Alcotest.failf "expected violation, got: %a" Clones.pp_outcome o

(* k = 2: three groups, 3 registers, needs 3·(1+3) = 12 slots. *)
let breaks_starved_k2 () =
  let p = Params.make ~n:12 ~m:1 ~k:2 in
  match attack ~slots:12 p ~registers:3 with
  | Clones.Violation { outputs; config; _ } ->
    Alcotest.(check int) "three distinct outputs" 3 (List.length outputs);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:2 config <> [])
  | o -> Alcotest.failf "expected violation, got: %a" Clones.pp_outcome o

(* Too few slots: the construction must fail by running out of clone
   room, not by violating anything. *)
let not_enough_processes_resists () =
  let p = Params.make ~n:7 ~m:1 ~k:1 in
  match attack ~slots:7 p ~registers:3 with
  | Clones.Out_of_slots _ -> ()
  | o -> Alcotest.failf "expected out-of-slots, got: %a" Clones.pp_outcome o

(* A properly-provisioned algorithm (its r beats √(m(n/k−2))) resists
   because the clone count grows quadratically in r. *)
let correct_register_count_resists () =
  let p = Params.make ~n:8 ~m:1 ~k:1 in
  let proper_r = Params.r_anonymous p in
  match attack ~slots:8 p ~registers:proper_r with
  | Clones.Out_of_slots _ -> ()
  | Clones.Violation _ -> Alcotest.fail "violated a well-provisioned algorithm!"
  | o -> Alcotest.failf "unexpected outcome: %a" Clones.pp_outcome o

(* The theorem's threshold is tight in our construction: with r = 2 and
   k = 1 the bound asks for 2·(1+1) = 4 processes; 4 slots succeed and 3
   fail. *)
let threshold_is_sharp () =
  let attack_with ~slots ~n =
    let p = Params.make ~n ~m:1 ~k:1 in
    attack ~slots p ~registers:2
  in
  (match attack_with ~slots:4 ~n:4 with
  | Clones.Violation _ -> ()
  | o -> Alcotest.failf "4 slots should break r=2: %a" Clones.pp_outcome o);
  match attack_with ~slots:3 ~n:3 with
  | Clones.Out_of_slots _ -> ()
  | o -> Alcotest.failf "3 slots should not suffice: %a" Clones.pp_outcome o

let suite =
  [
    test "glued execution breaks anonymous consensus, r=3" breaks_starved_anonymous_consensus;
    test "glued execution breaks k=2, r=3" breaks_starved_k2;
    test "not enough processes: attack fails safely" not_enough_processes_resists;
    test "proper register count resists" correct_register_count_resists;
    test "process threshold matches the counting" threshold_is_sharp;
  ]
