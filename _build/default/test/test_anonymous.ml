(* Unit tests for the Figure 5 anonymous algorithm. *)

open Helpers
open Agreement

let run ?r ?anonymous_collect ?seed ?sched ?rounds ?input_fn p =
  Runner.run_anonymous ?r ?anonymous_collect ?seed ?sched ?rounds ?input_fn p

let basic_round_robin () =
  let p = Params.make ~n:4 ~m:1 ~k:2 in
  let result = run ~rounds:2 p in
  assert_all_done ~ops:2 result;
  assert_safe ~k:2 result

let all_params_safe () =
  for n = 2 to 5 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let result = run ~rounds:2 p in
        assert_all_done ~ops:2 result;
        assert_safe ~k result
      done
    done
  done

let random_schedules_safe () =
  let p = Params.make ~n:4 ~m:2 ~k:3 in
  for seed = 0 to 19 do
    let result = run ~rounds:2 ~sched:(Shm.Schedule.random ~seed 4) p in
    assert_safe ~k:3 result
  done

let m_bounded_survivors_finish () =
  for seed = 0 to 9 do
    let p = Params.make ~n:4 ~m:2 ~k:2 in
    let sched = Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:60 4 in
    let result = run ~rounds:2 ~sched p in
    (match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> ()
    | Shm.Exec.Fuel_exhausted -> Alcotest.failf "seed %d: survivors stuck" seed);
    assert_safe ~k:2 result
  done

(* The non-blocking snapshot case Figure 5 is designed for: scans are
   honest double collects that can retry; the run must still be safe
   and quiesce under round-robin. *)
let non_blocking_snapshot_safe () =
  let p = Params.make ~n:3 ~m:1 ~k:2 in
  let result = run ~anonymous_collect:true ~rounds:2 p in
  assert_all_done ~ops:2 result;
  assert_safe ~k:2 result

(* Register H rescues a process starved by the non-blocking snapshot:
   after fast processes complete instance 1, a laggard completes its own
   instance 1 purely by reading H. *)
let h_register_rescues_starved () =
  let p = Params.make ~n:3 ~m:2 ~k:2 in
  let config = Instances.anonymous ~anonymous_collect:true p in
  let inputs = Shm.Exec.repeated_inputs ~rounds:2 (fun pid i -> vi ((10 * i) + pid)) in
  let res1 =
    Shm.Exec.run
      ~sched:(Shm.Schedule.only [ 1; 2 ])
      ~inputs ~max_steps:200_000 config
  in
  Alcotest.(check int) "p1 finished" 2 (Spec.Properties.completed_ops res1.Shm.Exec.config 1);
  let res2 =
    Shm.Exec.run ~sched:(Shm.Schedule.solo 0) ~inputs ~max_steps:200_000
      res1.Shm.Exec.config
  in
  Alcotest.(check int) "p0 finished via H or snapshot" 2
    (Spec.Properties.completed_ops res2.Shm.Exec.config 0);
  assert_safe ~k:2 res2

(* Space: components + the one register H. *)
let registers_within_bound () =
  for n = 3 to 5 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let result = run ~rounds:2 ~sched:(Shm.Schedule.random ~seed:(3 * n) n) p in
        let used = Runner.registers_used result in
        let bound = Params.r_anonymous p + 1 in
        if used > bound then
          Alcotest.failf "%s: used %d > %d" (Params.to_string p) used bound
      done
    done
  done

let suite =
  [
    test "two rounds, n=4 m=1 k=2" basic_round_robin;
    test "safe for all (n,m,k), n<=5" all_params_safe;
    test "safe under random schedules" random_schedules_safe;
    test "m-bounded survivors finish" m_bounded_survivors_finish;
    test "safe over non-blocking anonymous snapshot" non_blocking_snapshot_safe;
    test "H register rescues starved process" h_register_rescues_starved;
    test "stays within (m+1)(n-k)+m^2+1 registers" registers_within_bound;
  ]
