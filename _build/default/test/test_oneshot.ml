(* Unit tests for the Figure 3 one-shot algorithm. *)

open Helpers
open Agreement

let run ?impl ?sched ?inputs p = Runner.run_oneshot ?impl ?sched ?inputs p

(* Solo execution: obstruction-freedom's base case — a process running
   alone decides its own input. *)
let solo_decides_own () =
  let p = Params.make ~n:3 ~m:1 ~k:1 in
  let result = run ~sched:(Shm.Schedule.solo 1) p in
  let outs = distinct_outputs result ~instance:1 in
  Alcotest.(check int) "one output" 1 (List.length outs);
  check_value "decides own input" (vi 2) (List.hd outs);
  assert_safe ~k:1 result

let round_robin_consensus () =
  let p = Params.make ~n:4 ~m:1 ~k:1 in
  let result = run p in
  assert_all_done ~ops:1 result;
  assert_safe ~k:1 result;
  let outs = distinct_outputs result ~instance:1 in
  Alcotest.(check int) "consensus: one value" 1 (List.length outs)

let all_params_safe_under_round_robin () =
  for n = 2 to 7 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let result = run p in
        assert_all_done ~ops:1 result;
        assert_safe ~k result
      done
    done
  done

(* Under a uniform random scheduler all n processes keep taking steps,
   so m-obstruction-freedom promises nothing about termination (n > m);
   safety must hold regardless, decided or not. *)
let random_schedules_safe () =
  let p = Params.make ~n:5 ~m:2 ~k:3 in
  for seed = 0 to 49 do
    let result = run ~sched:(Shm.Schedule.random ~seed 5) p in
    assert_safe ~k:3 result
  done

let m_bounded_schedules_terminate () =
  (* m-obstruction-freedom: when at most m processes keep running, every
     process still running completes.  The m survivors must decide. *)
  for seed = 0 to 19 do
    let p = Params.make ~n:5 ~m:2 ~k:2 in
    let sched = Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:40 5 in
    let result = run ~sched p in
    (match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> ()
    | Shm.Exec.Fuel_exhausted ->
      Alcotest.failf "seed %d: survivors did not terminate" seed);
    assert_safe ~k:2 result
  done

let identical_inputs_decide_it () =
  let p = Params.make ~n:4 ~m:2 ~k:2 in
  let inputs = Array.make 4 (vi 7) in
  let result = run ~inputs ~sched:(Shm.Schedule.random ~seed:3 4) p in
  assert_safe ~k:2 result;
  let outs = distinct_outputs result ~instance:1 in
  Alcotest.(check int) "single value" 1 (List.length outs);
  check_value "the common input" (vi 7) (List.hd outs)

let contention_adversary_safe () =
  let p = Params.make ~n:6 ~m:2 ~k:4 in
  let sched = Shm.Schedule.alternating ~burst:3 [ [ 0; 1; 2 ]; [ 3; 4; 5 ] ] in
  let result = run ~sched p in
  assert_safe ~k:4 result

let registers_used_at_most_r () =
  for n = 3 to 7 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let result = run ~sched:(Shm.Schedule.random ~seed:(n + k + m) n) p in
        let used = Runner.registers_used result in
        if used > Params.r_oneshot p then
          Alcotest.failf "%s: used %d > r=%d" (Params.to_string p) used
            (Params.r_oneshot p)
      done
    done
  done

let suite =
  [
    test "solo run decides own input" solo_decides_own;
    test "round-robin consensus decides one value" round_robin_consensus;
    test "safe for all (n,m,k), n<=7, round-robin" all_params_safe_under_round_robin;
    test "safe under 50 random schedules" random_schedules_safe;
    test "m-bounded schedules terminate" m_bounded_schedules_terminate;
    test "identical inputs decide that value" identical_inputs_decide_it;
    test "safe under contention adversary" contention_adversary_safe;
    test "never writes more than r registers" registers_used_at_most_r;
  ]
