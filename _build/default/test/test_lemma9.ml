(* Tests for the general (m ≥ 1) Lemma 9 clone-gluing construction. *)

open Helpers
open Agreement
open Lowerbound

let attack p ~registers ~slots =
  Lemma9.attack ~params:p ~registers ~slots
    ~make_config:(fun ~registers ~slots ->
      Instances.anonymous_oneshot ~r:registers ~slots p)
    ()

(* m = 2, k = 3, r = 3: two groups of two; the glued execution outputs
   4 > k values.  Slot budget: ⌈(k+1)/m⌉(m + (r²−r)/2) = 2·(2+3) = 10. *)
let breaks_m2_k3 () =
  let p = Params.make ~n:10 ~m:2 ~k:3 in
  match attack p ~registers:3 ~slots:10 with
  | Lemma9.Violation { outputs; config; clones_used; registers_written } ->
    Alcotest.(check int) "four distinct outputs" 4 (List.length outputs);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:3 config <> []);
    Alcotest.(check (list string)) "validity holds" []
      (Spec.Properties.validity_errors config);
    (* c·(r²−r)/2 = 2·3 clones *)
    Alcotest.(check int) "clone count matches the theorem" 6 clones_used;
    Alcotest.(check int) "full register sequence" 3 (List.length registers_written)
  | o -> Alcotest.failf "expected violation, got: %a" Lemma9.pp_outcome o

(* m = 2, k = 2: c = 2 groups (sizes 2 and 2 would give 4 > 3 = k+1…
   c = ⌈3/2⌉ = 2, outputs 4 > k = 2). *)
let breaks_m2_k2 () =
  let p = Params.make ~n:10 ~m:2 ~k:2 in
  match attack p ~registers:3 ~slots:10 with
  | Lemma9.Violation { outputs; config; _ } ->
    Alcotest.(check bool) "more than k outputs" true (List.length outputs > 2);
    Alcotest.(check bool) "checker confirms" true
      (Spec.Properties.agreement_errors ~k:2 config <> [])
  | o -> Alcotest.failf "expected violation, got: %a" Lemma9.pp_outcome o

(* The m = 1 special case agrees with the dedicated Clones module. *)
let m1_matches_clones () =
  let p = Params.make ~n:8 ~m:1 ~k:1 in
  (match attack p ~registers:3 ~slots:8 with
  | Lemma9.Violation { outputs; clones_used; _ } ->
    Alcotest.(check int) "two outputs" 2 (List.length outputs);
    Alcotest.(check int) "six clones" 6 clones_used
  | o -> Alcotest.failf "lemma9 m=1 failed: %a" Lemma9.pp_outcome o);
  match
    Clones.attack ~params:p ~registers:3 ~slots:8
      ~make_config:(fun ~registers ~slots ->
        Instances.anonymous_oneshot ~r:registers ~slots p)
      ()
  with
  | Clones.Violation { clones_used; _ } ->
    Alcotest.(check int) "same clone count" 6 clones_used
  | o -> Alcotest.failf "clones m=1 failed: %a" Clones.pp_outcome o

(* Sharpness: one slot fewer and the construction runs out of clones. *)
let threshold_sharp_m2 () =
  let p = Params.make ~n:9 ~m:2 ~k:3 in
  match attack p ~registers:3 ~slots:9 with
  | Lemma9.Out_of_slots _ -> ()
  | o -> Alcotest.failf "expected out-of-slots, got: %a" Lemma9.pp_outcome o

(* A well-provisioned anonymous algorithm resists. *)
let proper_r_resists () =
  let p = Params.make ~n:10 ~m:2 ~k:3 in
  let proper = Params.r_anonymous p in
  match attack p ~registers:proper ~slots:10 with
  | Lemma9.Out_of_slots _ | Lemma9.Alpha_failed _ -> ()
  | Lemma9.Violation _ -> Alcotest.fail "violated a well-provisioned algorithm!"
  | o -> Alcotest.failf "unexpected outcome: %a" Lemma9.pp_outcome o

let suite =
  [
    slow_test "breaks m=2 k=3 with 3 registers" breaks_m2_k3;
    slow_test "breaks m=2 k=2 with 3 registers" breaks_m2_k2;
    slow_test "m=1 agrees with the Clones module" m1_matches_clones;
    slow_test "slot threshold is sharp at m=2" threshold_sharp_m2;
    slow_test "proper register count resists" proper_r_resists;
  ]
