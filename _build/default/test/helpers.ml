(* Shared test utilities. *)

open Shm

let value = Alcotest.testable Value.pp Value.equal

let check_value = Alcotest.check value

let vi i = Value.Int i

(* Distinct outputs of one instance of a finished run. *)
let distinct_outputs result ~instance =
  Spec.Properties.distinct_values
    (Agreement.Runner.outputs_of_instance result ~instance)

(* Assert the run satisfies Validity and k-Agreement. *)
let assert_safe ~k result =
  match Spec.Properties.check_safety ~k result.Exec.config with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "safety violated: %s" msg

(* Assert the run quiesced with every process completing [ops] operations. *)
let assert_all_done ~ops result =
  (match result.Exec.stopped with
  | Exec.All_quiescent -> ()
  | Exec.Fuel_exhausted -> Alcotest.failf "run did not quiesce in %d steps" result.Exec.steps);
  match Spec.Properties.termination_errors ~expected:(fun _ -> ops) result.Exec.config with
  | [] -> ()
  | errs -> Alcotest.failf "termination: %s" (String.concat "; " errs)

let test name f = Alcotest.test_case name `Quick f

let slow_test name f = Alcotest.test_case name `Slow f
