(* Exact verification of the step-complexity closed forms. *)

open Helpers
open Agreement

(* Fresh solo one-shot Propose costs exactly 2r + 2 steps. *)
let solo_cost_exact () =
  for n = 3 to 9 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let r = Params.r_oneshot p in
        let result = Runner.run_oneshot ~sched:(Shm.Schedule.solo 0) p in
        Alcotest.(check int)
          (Printf.sprintf "%s: solo steps" (Params.to_string p))
          (Bounds.Complexity.solo_oneshot_steps ~r)
          result.Shm.Exec.steps
      done
    done
  done

let solo_baseline_exact () =
  for n = 4 to 9 do
    for k = 1 to n - 2 do
      let p = Params.make ~n ~m:1 ~k in
      let result = Runner.run_baseline ~sched:(Shm.Schedule.solo 0) p in
      Alcotest.(check int)
        (Printf.sprintf "baseline n=%d k=%d" n k)
        (Bounds.Complexity.solo_baseline_steps ~n ~k)
        result.Shm.Exec.steps
    done
  done

(* From any reachable state, a solo continuation finishes within the
   bound: random prefixes, then run one process alone and count. *)
let solo_completion_bounded () =
  let p = Params.make ~n:5 ~m:2 ~k:3 in
  let r = Params.r_oneshot p in
  let bound = Bounds.Complexity.solo_completion_bound ~r in
  for seed = 0 to 49 do
    let config = Instances.oneshot p in
    let inputs = Shm.Exec.oneshot_inputs (Array.init 5 (fun pid -> vi (pid + 1))) in
    (* random prefix of 0..120 steps *)
    let prefix_len = (seed * 7) mod 120 in
    let res1 =
      Shm.Exec.run ~sched:(Shm.Schedule.random ~seed 5) ~inputs ~max_steps:prefix_len
        config
    in
    (* pick a process that has not decided yet *)
    let survivor =
      List.find_opt
        (fun pid -> Spec.Properties.completed_ops res1.Shm.Exec.config pid = 0)
        [ 0; 1; 2; 3; 4 ]
    in
    match survivor with
    | None -> ()
    | Some pid ->
      let res2 =
        Shm.Exec.run ~sched:(Shm.Schedule.solo pid) ~inputs ~max_steps:(bound + 1)
          res1.Shm.Exec.config
      in
      if Spec.Properties.completed_ops res2.Shm.Exec.config pid < 1 then
        Alcotest.failf "seed %d: p%d needed more than %d solo steps" seed pid bound
  done

(* The sufficient quantum really suffices: quantum round-robin with it
   terminates for every parameter triple. *)
let sufficient_quantum_suffices () =
  for n = 3 to 7 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let r = Params.r_oneshot p in
        let q = Bounds.Complexity.sufficient_quantum ~r in
        let result =
          Runner.run_oneshot ~sched:(Shm.Schedule.quantum_round_robin ~quantum:q n) p
        in
        assert_all_done ~ops:1 result;
        assert_safe ~k result
      done
    done
  done

(* Solo cost grows linearly in r: the measured deltas match 2 steps per
   extra component. *)
let solo_cost_linear_in_r () =
  let p = Params.make ~n:6 ~m:1 ~k:1 in
  let base = Params.r_oneshot p in
  let steps_for r =
    (Runner.run_oneshot ~r ~sched:(Shm.Schedule.solo 2) p).Shm.Exec.steps
  in
  let s0 = steps_for base in
  Alcotest.(check int) "r+1 costs +2" (s0 + 2) (steps_for (base + 1));
  Alcotest.(check int) "r+5 costs +10" (s0 + 10) (steps_for (base + 5))

let suite =
  [
    test "solo one-shot costs exactly 2r+2 steps" solo_cost_exact;
    test "solo baseline costs exactly 2(2(n-k))+2 steps" solo_baseline_exact;
    test "solo completion from any state within bound" solo_completion_bounded;
    test "sufficient quantum guarantees termination" sufficient_quantum_suffices;
    test "solo cost is linear in r" solo_cost_linear_in_r;
  ]
