(* Unit tests for the Figure 4 repeated algorithm. *)

open Helpers
open Agreement

let run ?impl ?sched ?rounds ?input_fn p =
  Runner.run_repeated ?impl ?sched ?rounds ?input_fn p

(* Plain round-robin can livelock legitimately (all n processes run
   forever in lockstep, and n > m, so m-obstruction-freedom promises
   nothing); quantum round-robin gives each process solo bursts long
   enough that obstruction-freedom forces every operation to finish. *)
let bursty n = Shm.Schedule.quantum_round_robin ~quantum:300 n

(* Each instance decides; all instances safe; every process finishes
   all rounds under bursty round-robin. *)
let basic_three_rounds () =
  let p = Params.make ~n:4 ~m:1 ~k:2 in
  let result = run ~sched:(bursty 4) ~rounds:3 p in
  assert_all_done ~ops:3 result;
  assert_safe ~k:2 result;
  for inst = 1 to 3 do
    let outs = distinct_outputs result ~instance:inst in
    Alcotest.(check bool)
      (Printf.sprintf "instance %d decided" inst)
      true
      (List.length outs >= 1)
  done

let all_params_safe () =
  for n = 2 to 6 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let result = run ~sched:(bursty n) ~rounds:3 p in
        assert_all_done ~ops:3 result;
        assert_safe ~k result
      done
    done
  done

let random_schedules_safe () =
  let p = Params.make ~n:5 ~m:2 ~k:3 in
  for seed = 0 to 29 do
    let result = run ~rounds:4 ~sched:(Shm.Schedule.random ~seed 5) p in
    assert_safe ~k:3 result
  done

(* m-obstruction-freedom for the repeated task: survivors complete all
   their rounds even though the others froze mid-instance. *)
let m_bounded_survivors_finish () =
  for seed = 0 to 19 do
    let p = Params.make ~n:5 ~m:2 ~k:2 in
    let sched = Shm.Schedule.m_bounded ~seed ~m:2 ~prefix:60 5 in
    let result = run ~rounds:3 ~sched p in
    (match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> ()
    | Shm.Exec.Fuel_exhausted -> Alcotest.failf "seed %d: survivors stuck" seed);
    assert_safe ~k:2 result
  done

(* Instances are independent: instance 2's outputs come from instance
   2's inputs even though instance 1 used disjoint values. *)
let instances_independent () =
  let p = Params.make ~n:4 ~m:2 ~k:2 in
  let input_fn pid instance = vi ((1000 * instance) + pid) in
  let result = run ~rounds:3 ~input_fn ~sched:(Shm.Schedule.random ~seed:7 4) p in
  assert_safe ~k:2 result;
  Spec.Properties.by_instance result.Shm.Exec.config
  |> List.iter (fun (inst, _, outs) ->
         outs
         |> List.iter (fun v ->
                let i = Shm.Value.to_int v in
                Alcotest.(check int)
                  (Printf.sprintf "output of instance %d is from its domain" inst)
                  inst (i / 1000)))

(* The history shortcut: a process lagging behind adopts outputs from a
   fast process's history rather than re-running old instances.  We
   force p0 to lag by running others first for many rounds solo-ish. *)
let laggard_catches_up () =
  let p = Params.make ~n:3 ~m:1 ~k:1 in
  (* Phase 1: only p1, p2 run (5 rounds each); then p0 runs alone. *)
  let sched = Shm.Schedule.eventually_only ~seed:5 ~survivors:[ 0 ] ~prefix:0 3 in
  (* First let p1 finish everything via a custom two-phase schedule:
     run p1 solo to quiescence, then p0. *)
  let config = Instances.repeated p in
  let inputs = Shm.Exec.repeated_inputs ~rounds:5 (fun pid i -> vi ((10 * i) + pid)) in
  let res1 =
    Shm.Exec.run ~sched:(Shm.Schedule.solo 1) ~inputs ~max_steps:100_000 config
  in
  (* p1 finished its 5 rounds alone. *)
  Alcotest.(check int) "p1 did 5 ops" 5
    (Spec.Properties.completed_ops res1.Shm.Exec.config 1);
  let res2 =
    Shm.Exec.run ~sched ~inputs ~max_steps:100_000 res1.Shm.Exec.config
  in
  Alcotest.(check int) "p0 did 5 ops" 5
    (Spec.Properties.completed_ops res2.Shm.Exec.config 0);
  (* Consensus (k=1): p0 must output exactly p1's decisions. *)
  assert_safe ~k:1 res2;
  for inst = 1 to 5 do
    let outs = distinct_outputs res2 ~instance:inst in
    Alcotest.(check int) (Printf.sprintf "instance %d: single value" inst) 1
      (List.length outs)
  done

(* Repeated consensus (m = k = 1): the headline special case. *)
let repeated_consensus () =
  for seed = 0 to 9 do
    let p = Params.make ~n:4 ~m:1 ~k:1 in
    let sched = Shm.Schedule.m_bounded ~seed ~m:1 ~prefix:50 4 in
    let result = run ~rounds:4 ~sched p in
    assert_safe ~k:1 result;
    match result.Shm.Exec.stopped with
    | Shm.Exec.All_quiescent -> ()
    | Shm.Exec.Fuel_exhausted -> Alcotest.failf "seed %d: no progress" seed
  done

(* Space: never writes outside the r = n+2m−k components. *)
let registers_within_bound () =
  for n = 3 to 6 do
    for k = 1 to n - 1 do
      for m = 1 to k do
        let p = Params.make ~n ~m ~k in
        let result = run ~rounds:3 ~sched:(Shm.Schedule.random ~seed:(7 * n) n) p in
        let used = Runner.registers_used result in
        if used > Params.r_oneshot p then
          Alcotest.failf "%s: used %d > %d" (Params.to_string p) used (Params.r_oneshot p)
      done
    done
  done

let suite =
  [
    test "three rounds, n=4 m=1 k=2" basic_three_rounds;
    test "safe for all (n,m,k), n<=6, 3 rounds" all_params_safe;
    test "safe under random schedules" random_schedules_safe;
    test "m-bounded survivors finish all rounds" m_bounded_survivors_finish;
    test "instances are independent" instances_independent;
    test "laggard adopts history of fast process" laggard_catches_up;
    test "repeated consensus m=k=1" repeated_consensus;
    test "stays within n+2m-k registers" registers_within_bound;
  ]
