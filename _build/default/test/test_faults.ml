(* Failure-injection tests: crashes at adversarial moments must never
   endanger safety, and survivors must keep their progress guarantees.

   In the register model a crash is indistinguishable from never being
   scheduled again; what makes these runs interesting is that a crashed
   process may die *poised mid-operation*, leaving a stale pair in the
   snapshot forever — exactly the situation the stale-duplicate erratum
   (EXPERIMENTS.md) is about. *)

open Helpers
open Agreement

let crash_times ~seed ~n ~victims =
  let rng = Shm.Rng.create seed in
  List.init victims (fun i -> ((i * 2) mod n, 5 + Shm.Rng.int rng 60))

(* One-shot: crash up to n−1 processes at random times; the rest decide
   (the survivor count may exceed m, so use solo-burst scheduling which
   obstruction-freedom turns into termination). *)
let oneshot_with_crashes () =
  for seed = 0 to 19 do
    let n = 5 in
    let p = Params.make ~n ~m:1 ~k:2 in
    let crashes = crash_times ~seed ~n ~victims:2 in
    let sched =
      Shm.Schedule.with_crashes ~crashes
        (Shm.Schedule.quantum_round_robin ~quantum:300 n)
    in
    let result = Runner.run_oneshot ~sched p in
    assert_safe ~k:2 result;
    (* every non-crashed process decided *)
    let victims = List.map fst crashes in
    List.init n Fun.id
    |> List.iter (fun pid ->
           if not (List.mem pid victims) then
             Alcotest.(check int)
               (Printf.sprintf "seed %d: p%d decided" seed pid)
               1
               (Spec.Properties.completed_ops result.Shm.Exec.config pid))
  done

(* Repeated: crashes mid-instance leave stale lower-instance tuples;
   later instances must still be safe and survivors complete all
   rounds. *)
let repeated_with_crashes () =
  for seed = 0 to 14 do
    let n = 4 in
    let p = Params.make ~n ~m:1 ~k:2 in
    let crashes = [ (1, 12 + seed); (3, 40 + (2 * seed)) ] in
    let sched =
      Shm.Schedule.with_crashes ~crashes
        (Shm.Schedule.quantum_round_robin ~quantum:300 n)
    in
    let result = Runner.run_repeated ~rounds:4 ~sched p in
    assert_safe ~k:2 result;
    [ 0; 2 ]
    |> List.iter (fun pid ->
           Alcotest.(check int)
             (Printf.sprintf "seed %d: survivor p%d finished" seed pid)
             4
             (Spec.Properties.completed_ops result.Shm.Exec.config pid))
  done

(* A single survivor after everyone else crashes poised mid-write: the
   obstruction-free core case, with maximal garbage in the snapshot. *)
let lone_survivor_decides () =
  for victim_time = 1 to 30 do
    let n = 4 in
    let p = Params.make ~n ~m:1 ~k:1 in
    let crashes = [ (0, victim_time); (1, victim_time); (2, victim_time) ] in
    let sched = Shm.Schedule.with_crashes ~crashes (Shm.Schedule.round_robin n) in
    let result = Runner.run_oneshot ~sched p in
    assert_safe ~k:1 result;
    Alcotest.(check int)
      (Printf.sprintf "t=%d: p3 decided" victim_time)
      1
      (Spec.Properties.completed_ops result.Shm.Exec.config 3)
  done

(* Anonymous algorithm under crashes. *)
let anonymous_with_crashes () =
  for seed = 0 to 9 do
    let n = 4 in
    let p = Params.make ~n ~m:2 ~k:2 in
    let crashes = [ (0, 15 + seed) ] in
    let sched =
      Shm.Schedule.with_crashes ~crashes
        (Shm.Schedule.quantum_round_robin ~quantum:600 n)
    in
    let result = Runner.run_anonymous ~rounds:2 ~sched p in
    assert_safe ~k:2 result;
    [ 1; 2; 3 ]
    |> List.iter (fun pid ->
           Alcotest.(check int)
             (Printf.sprintf "seed %d: p%d finished" seed pid)
             2
             (Spec.Properties.completed_ops result.Shm.Exec.config pid))
  done

(* Trace analysis sanity on a crashy run: crashed processes take no
   steps after their crash time; survivors account for the rest. *)
let analysis_of_crashy_run () =
  let n = 4 in
  let p = Params.make ~n ~m:1 ~k:1 in
  let crashes = [ (0, 10); (1, 10) ] in
  let sched =
    Shm.Schedule.with_crashes ~crashes (Shm.Schedule.quantum_round_robin ~quantum:200 n)
  in
  let config = Instances.oneshot p in
  let inputs = Shm.Exec.oneshot_inputs (Array.init n (fun pid -> vi pid)) in
  let res = Shm.Exec.run ~record:true ~sched ~inputs ~max_steps:100_000 config in
  let a =
    Shm.Analysis.of_trace ~n ~registers:(Params.r_oneshot p) res.Shm.Exec.trace
  in
  Alcotest.(check int) "trace length consistent" res.Shm.Exec.steps a.Shm.Analysis.total_steps;
  Alcotest.(check bool) "survivors stepped most" true
    (a.Shm.Analysis.steps_per_process.(2) + a.Shm.Analysis.steps_per_process.(3)
    > a.Shm.Analysis.steps_per_process.(0) + a.Shm.Analysis.steps_per_process.(1));
  Alcotest.(check bool) "write skew sane" true (Shm.Analysis.write_skew a >= 1.0)

let suite =
  [
    test "one-shot survives random crashes" oneshot_with_crashes;
    test "repeated survives mid-instance crashes" repeated_with_crashes;
    test "lone survivor decides at every crash time" lone_survivor_decides;
    test "anonymous survives crashes" anonymous_with_crashes;
    test "trace analysis of crashy run" analysis_of_crashy_run;
  ]
