(* A universal construction: replicated state machines from repeated
   agreement.

   This is the application the paper's introduction motivates repeated
   set agreement with (Herlihy's universal construction [8]): a sequence
   of independent agreement instances, one per command slot.  With k = 1
   (consensus) every replica applies the same command sequence and the
   replicated object is linearizable; the space cost of the agreement
   layer is the paper's min(n+2m−k, n) registers *total*, independent of
   how many commands are executed.

   With k > 1 the construction degrades gracefully into a k-branching
   machine (see Ledger): each slot commits at most k alternative
   commands, and each replica follows one committed branch.  This is the
   object k-set agreement is "universal" for.

   The machine is a pure fold over decided commands; replication runs
   the Figure 4 algorithm underneath. *)

open Shm

type 'state machine = {
  init : 'state;
  apply : 'state -> Value.t -> 'state;  (* apply one committed command *)
}

type 'state replica = {
  pid : int;
  log : Value.t list;     (* commands this replica learned, slot order *)
  state : 'state;         (* init folded over log *)
}

type 'state run = {
  replicas : 'state replica list;
  steps : int;
  registers : int;        (* registers the agreement layer wrote *)
  quiescent : bool;
}

(* Outputs of process [pid], in instance order — the branch this replica
   follows. *)
let log_of config pid =
  Config.outputs config
  |> List.filter_map (fun (p, inst, v) -> if p = pid then Some (inst, v) else None)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(* [replicate params machine ~commands ~slots] runs [slots] instances of
   repeated agreement; process pid proposes [commands pid slot] for each
   slot and applies the decided command.  Uses the default solo-burst
   schedule unless [sched] is given. *)
let replicate ?sched ?(max_steps = 5_000_000) (params : Agreement.Params.t) machine
    ~commands ~slots =
  let n = params.Agreement.Params.n in
  let sched =
    match sched with
    | Some s -> s
    | None -> Schedule.quantum_round_robin ~quantum:800 n
  in
  let impl = Agreement.Instances.space_optimal_impl params in
  let result =
    Agreement.Runner.run_repeated ~impl ~sched ~rounds:slots ~max_steps
      ~input_fn:(fun pid slot -> commands pid slot)
      params
  in
  let config = result.Exec.config in
  let replicas =
    List.init n (fun pid ->
        let log = log_of config pid in
        { pid; log; state = List.fold_left machine.apply machine.init log })
  in
  {
    replicas;
    steps = result.Exec.steps;
    registers = Agreement.Runner.registers_used result;
    quiescent = result.Exec.stopped = Exec.All_quiescent;
  }

(* With consensus underneath, all replicas must agree on the whole log;
   [agreement_log] returns it (and None if replicas diverged — possible
   only if k > 1 or the layer below is broken). *)
let agreement_log run =
  match run.replicas with
  | [] -> Some []
  | r0 :: rest ->
    if
      List.for_all
        (fun r -> List.length r.log = List.length r0.log
                  && List.for_all2 Value.equal r.log r0.log)
        rest
    then Some r0.log
    else None
