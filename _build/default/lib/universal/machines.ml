(* A small catalog of state machines for the universal construction —
   the objects one actually replicates with it.

   Commands are Shm.Value encodings so they travel through the
   agreement layer unchanged; each machine documents its command
   grammar.  [counter] and [register] are the textbook examples;
   [fifo_queue] is the object Herlihy's paper uses to motivate
   universality (queues have no wait-free register implementation, yet
   the construction replicates one); [bank] exercises conditional
   commands (withdrawals can fail deterministically, and every replica
   agrees on which did). *)

open Shm

(* counter: commands ("add", x) *)
let counter =
  {
    Rsm.init = 0;
    apply =
      (fun s cmd ->
        match cmd with
        | Value.Pair (Value.Str "add", Value.Int x) -> s + x
        | _ -> s);
  }

let add x = Value.Pair (Value.Str "add", Value.Int x)

(* last-writer-wins register: commands ("write", v) *)
let register =
  {
    Rsm.init = Value.Bot;
    apply =
      (fun s cmd ->
        match cmd with Value.Pair (Value.Str "write", v) -> v | _ -> s);
  }

let write v = Value.Pair (Value.Str "write", v)

(* FIFO queue: commands ("enq", v) and ("deq", _).  The state is
   (queue contents, dequeued-so-far), both in order; dequeue on empty
   is a no-op recorded as ⊥. *)
type queue_state = { items : Value.t list; dequeued : Value.t list }

let fifo_queue =
  {
    Rsm.init = { items = []; dequeued = [] };
    apply =
      (fun s cmd ->
        match cmd with
        | Value.Pair (Value.Str "enq", v) -> { s with items = s.items @ [ v ] }
        | Value.Pair (Value.Str "deq", _) -> (
          match s.items with
          | [] -> { s with dequeued = s.dequeued @ [ Value.Bot ] }
          | x :: rest -> { items = rest; dequeued = s.dequeued @ [ x ] })
        | _ -> s);
  }

let enq v = Value.Pair (Value.Str "enq", v)
let deq = Value.Pair (Value.Str "deq", Value.Bot)

(* bank account: ("deposit", x) always applies; ("withdraw", x) applies
   only when covered.  Balance can therefore never go negative, on any
   replica, regardless of proposal interleaving. *)
let bank =
  {
    Rsm.init = 0;
    apply =
      (fun balance cmd ->
        match cmd with
        | Value.Pair (Value.Str "deposit", Value.Int x) -> balance + x
        | Value.Pair (Value.Str "withdraw", Value.Int x) when x <= balance ->
          balance - x
        | _ -> balance);
  }

let deposit x = Value.Pair (Value.Str "deposit", Value.Int x)
let withdraw x = Value.Pair (Value.Str "withdraw", Value.Int x)
