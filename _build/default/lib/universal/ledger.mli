(** Branch analysis for k-branching replicated machines (k > 1): which
    commands each slot committed, who follows which branch, and how
    many distinct replica views exist. *)

type slot_info = {
  slot : int;
  branches : Shm.Value.t list;  (** distinct committed commands, ≤ k *)
  followers : (Shm.Value.t * int list) list;  (** branch → replica pids *)
}

val slot_infos : Shm.Config.t -> slot_info list

(** Number of pairwise-distinct replica logs. *)
val distinct_views : 'a Rsm.run -> int

(** The widest slot (must be ≤ k). *)
val max_branching : slot_info list -> int

val pp_slot : Format.formatter -> slot_info -> unit
