(* Branch analysis for k-branching replicated machines (k > 1).

   Each slot of a k-set agreement log may commit up to k alternative
   commands; replicas follow the branch they learned.  This module
   reports the branch structure of a finished run: committed command
   sets per slot, which replicas follow which branch, and the total
   number of distinct replica views. *)

open Shm

type slot_info = {
  slot : int;
  branches : Value.t list;   (* distinct committed commands, ≤ k *)
  followers : (Value.t * int list) list;  (* branch -> replica pids *)
}

let slot_infos config =
  Spec.Properties.by_instance config
  |> List.map (fun (slot, _, _) ->
         let per_replica =
           Config.outputs config
           |> List.filter_map (fun (pid, inst, v) ->
                  if inst = slot then Some (pid, v) else None)
         in
         let branches =
           Spec.Properties.distinct_values (List.map snd per_replica)
         in
         let followers =
           List.map
             (fun b ->
               ( b,
                 per_replica
                 |> List.filter_map (fun (pid, v) ->
                        if Value.equal v b then Some pid else None)
                 |> List.sort compare ))
             branches
         in
         { slot; branches; followers })

(* Replicas holding pairwise-distinct logs (≤ number of leaf branches). *)
let distinct_views (run : 'a Rsm.run) =
  List.fold_left
    (fun acc (r : 'a Rsm.replica) ->
      if
        List.exists
          (fun log ->
            List.length log = List.length r.Rsm.log
            && List.for_all2 Value.equal log r.Rsm.log)
          acc
      then acc
      else r.Rsm.log :: acc)
    [] run.Rsm.replicas
  |> List.length

(* Every slot respects the k bound. *)
let max_branching infos =
  List.fold_left (fun acc i -> max acc (List.length i.branches)) 0 infos

let pp_slot ppf i =
  Fmt.pf ppf "slot %d: %a" i.slot
    Fmt.(
      list ~sep:(any " | ") (fun ppf (b, pids) ->
          pf ppf "%a <- {%a}" Value.pp b (list ~sep:comma int) pids))
    i.followers
