(** A universal construction: replicated state machines from repeated
    agreement — the application the paper's introduction motivates
    (Herlihy [8]).  With k = 1 every replica applies the same command
    sequence; with k > 1 the construction degrades gracefully into a
    k-branching machine (see {!Ledger}).  The agreement layer's space
    cost is min(n+2m−k, n) registers total, independent of the number
    of commands executed. *)

type 'state machine = {
  init : 'state;
  apply : 'state -> Shm.Value.t -> 'state;  (** apply one committed command *)
}

type 'state replica = {
  pid : int;
  log : Shm.Value.t list;  (** commands this replica learned, slot order *)
  state : 'state;          (** [init] folded over [log] *)
}

type 'state run = {
  replicas : 'state replica list;
  steps : int;
  registers : int;   (** registers the agreement layer wrote *)
  quiescent : bool;
}

(** Outputs of one process in instance order — its branch of the log. *)
val log_of : Shm.Config.t -> int -> Shm.Value.t list

(** [replicate params machine ~commands ~slots] runs [slots] instances
    of repeated agreement over the space-optimal snapshot choice;
    process [pid] proposes [commands pid slot] and applies what was
    decided.  Default schedule: solo bursts (guaranteed termination). *)
val replicate :
  ?sched:Shm.Schedule.t ->
  ?max_steps:int ->
  Agreement.Params.t ->
  'state machine ->
  commands:(int -> int -> Shm.Value.t) ->
  slots:int ->
  'state run

(** The common log when all replicas agree (always, under k = 1);
    [None] if replicas diverged. *)
val agreement_log : 'state run -> Shm.Value.t list option
