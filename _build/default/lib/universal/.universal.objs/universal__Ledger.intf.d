lib/universal/ledger.mli: Format Rsm Shm
