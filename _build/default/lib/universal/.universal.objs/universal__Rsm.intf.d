lib/universal/rsm.mli: Agreement Shm
