lib/universal/machines.mli: Rsm Shm
