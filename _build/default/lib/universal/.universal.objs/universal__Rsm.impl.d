lib/universal/rsm.ml: Agreement Config Exec List Schedule Shm Value
