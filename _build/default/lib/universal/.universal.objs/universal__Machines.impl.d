lib/universal/machines.ml: Rsm Shm Value
