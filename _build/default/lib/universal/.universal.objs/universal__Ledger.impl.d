lib/universal/ledger.ml: Config Fmt List Rsm Shm Spec Value
