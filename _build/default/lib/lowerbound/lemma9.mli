(** The general Lemma 9 / Theorem 10 construction, for group size
    m ≥ 1: glue c = ⌈(k+1)/m⌉ recorded α executions — one per disjoint
    group of m anonymous processes — with clone block-writes so that one
    one-shot instance outputs cm ≥ k+1 distinct values.

    One α schedule is searched once and pid-renamed for every group
    (anonymity makes the renamed execution isomorphic, which also
    guarantees the common register-sequence prefix Lemma 9 requires);
    replays are verified step-by-step against the recording.  The slot
    budget matches the theorem's ⌈(k+1)/m⌉(m + (r²−r)/2). *)

type outcome =
  | Violation of {
      outputs : Shm.Value.t list;
      config : Shm.Config.t;
      clones_used : int;
      registers_written : int list;
    }
  | Out_of_slots of { clones_used : int; slots : int; round : int }
  | Alpha_failed of string
  | Diverged of string
  | Stuck of string

val pp_outcome : Format.formatter -> outcome -> unit

val attack :
  params:Agreement.Params.t ->
  registers:int ->
  slots:int ->
  make_config:(registers:int -> slots:int -> Shm.Config.t) ->
  ?alpha_tries:int ->
  ?max_steps:int ->
  unit ->
  outcome
