lib/lowerbound/gamma.ml: Config Explore Fmt List Schedule Shm Spec
