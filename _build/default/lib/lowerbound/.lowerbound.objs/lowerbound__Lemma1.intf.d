lib/lowerbound/lemma1.mli: Shm
