lib/lowerbound/lemma9.mli: Agreement Format Shm
