lib/lowerbound/explore.ml: Config List Option Program Schedule Shm
