lib/lowerbound/theorem2.mli: Agreement Format Shm
