lib/lowerbound/explore.mli: Shm
