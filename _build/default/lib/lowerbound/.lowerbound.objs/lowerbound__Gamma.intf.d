lib/lowerbound/gamma.mli: Explore Shm
