lib/lowerbound/alpha.ml: Config Fmt List Option Program Schedule Shm Spec Value
