lib/lowerbound/lemma9.ml: Agreement Alpha Config Fmt List Program Shm Spec Value
