lib/lowerbound/clones.ml: Agreement Config Fmt List Option Program Shm Spec Value
