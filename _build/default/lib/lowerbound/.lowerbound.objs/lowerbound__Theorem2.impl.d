lib/lowerbound/theorem2.ml: Agreement Config Explore Fmt Fun Gamma List Shm Value
