lib/lowerbound/lemma1.ml: Config Gamma List Option Program Shm Spec Value
