lib/lowerbound/clones.mli: Agreement Format Shm
