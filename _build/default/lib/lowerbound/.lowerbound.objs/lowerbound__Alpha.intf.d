lib/lowerbound/alpha.mli: Shm
