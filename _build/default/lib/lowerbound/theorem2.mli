(** The executable Theorem 2 adversary: the Figure 2 construction run
    against a (supposed) m-obstruction-free repeated k-set agreement
    system over a given register count.

    Against r ≤ n+m−k−1 registers it builds a legal execution in which
    one instance outputs k+1 distinct values; against a correct
    algorithm it fails by running out of replacement processes — the
    counting step of the paper's proof.  Deviations from the
    non-constructive proof (bounded δ/γ search, fixed fresh instance)
    are listed in DESIGN.md; any reported Violation is certified
    independently by the property checker. *)

type group = {
  index : int;          (** j *)
  final_q : int list;   (** Qj at loop exit: the spliced-fragment runners *)
  pset : int list;      (** Pj: block writers, in poise order *)
  aset : int list;      (** Aj: covered registers *)
}

type outcome =
  | Violation of {
      instance : int;            (** the attacked fresh instance T *)
      outputs : Shm.Value.t list;(** distinct outputs of instance T *)
      config : Shm.Config.t;     (** final configuration *)
      groups : group list;
    }
  | Out_of_processes of { group : int; aset_size : int; groups_built : int }
  | Gamma_failed of { group : int; reason : string }

val pp_outcome : Format.formatter -> outcome -> unit

(** The inputs of the attacked execution (exposed for checking): fresh
    instance icap+1 proposes 1,000,000 + pid. *)
val attack_inputs : icap:int -> pid:int -> instance:int -> Shm.Value.t option

(** [attack ~params ~registers ~make_config ()] runs the construction.
    [icap] caps ordinary instances (the fresh instance is icap+1);
    [delta_steps] bounds each guarded fragment; [gamma_tries] bounds
    the Lemma 1 search. *)
val attack :
  params:Agreement.Params.t ->
  registers:int ->
  make_config:(registers:int -> Shm.Config.t) ->
  ?icap:int ->
  ?delta_steps:int ->
  ?gamma_tries:int ->
  unit ->
  outcome
