(** The executable anonymous lower-bound construction (Section 5,
    Lemma 9 / Theorem 10), for singleton groups (m = 1).

    Glues together per-group solo executions of a register-starved
    anonymous one-shot algorithm: clone processes — planted snapshots
    of a group's local state at its last write to each register —
    perform block writes that reset the registers between fragments, so
    each group runs exactly its solo execution and outputs its own
    input: k+1 distinct outputs in one one-shot instance.  The process
    count needed matches Theorem 10's ⌈(k+1)/m⌉(m + (r²−r)/2) threshold
    exactly, and the construction fails safely (out of clone slots)
    below it or against well-provisioned algorithms. *)

type outcome =
  | Violation of {
      outputs : Shm.Value.t list;
      config : Shm.Config.t;
      clones_used : int;
      registers_written : int list;  (** the common sequence R₁, R₂, … *)
    }
  | Out_of_slots of { clones_used : int; slots : int; round : int }
  | Prefix_mismatch of { group : int; expected : int; got : int }
      (** groups' register sequences diverged (Lemma 9 would re-choose
          the value sets) *)
  | Stuck of string

val pp_outcome : Format.formatter -> outcome -> unit

(** [attack ~params ~registers ~slots ~make_config ()]: run the gluing
    against an anonymous one-shot system with [registers] registers and
    [slots] process slots (k+1 group mains + clone room). *)
val attack :
  params:Agreement.Params.t ->
  registers:int ->
  slots:int ->
  make_config:(registers:int -> slots:int -> Shm.Config.t) ->
  ?max_steps:int ->
  unit ->
  outcome
