(** Guarded execution: run processes while watching for a step that
    would write outside an allowed register set — the primitive of the
    Figure 2 construction (proof of Theorem 2).  The escaping process
    is returned still {e poised} at the offending write, exactly what
    the construction needs to add it to the block-writer set. *)

type escape = {
  config : Shm.Config.t;  (** state with [pid] poised at the write *)
  pid : int;
  reg : int;
}

type outcome =
  | Escaped of escape
  | Stopped of Shm.Config.t    (** the [stop] predicate became true *)
  | Quiescent of Shm.Config.t  (** nothing runnable for the scheduler *)
  | Fuel of Shm.Config.t       (** step budget exhausted *)

(** [run ~allowed ~inputs ~sched ~max_steps ~stop config]: drive under
    [sched]; before every write, check its target against [allowed];
    evaluate [stop] between steps (default: never). *)
val run :
  allowed:(int -> bool) ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  sched:Shm.Schedule.t ->
  max_steps:int ->
  ?stop:(Shm.Config.t -> bool) ->
  Shm.Config.t ->
  outcome

(** δ-search: try several schedules over [procs] (group round-robin,
    per-process solos, seeded randoms) until one escapes. *)
val find_escape :
  allowed:(int -> bool) ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  procs:int list ->
  max_steps:int ->
  seeds:int list ->
  Shm.Config.t ->
  escape option
