(** Lemma 1, executable: for any set V of m values and any set Q of m
    processes, find an execution in which only Q takes steps and all of
    V is output.  The paper derives existence from the set-agreement
    impossibility; here it is a schedule search, and the m ≤ k boundary
    it rests on is demonstrated by an adaptive adversary. *)

type outcome =
  | Found of { config : Shm.Config.t; outputs : Shm.Value.t list }
  | Search_failed of string

(** [find ~procs ~values config]: drive only [procs], process i
    proposing [values]'s i-th element, until all of [values] appear
    among the outputs of instance 1.  The system must be fresh. *)
val find :
  ?max_steps:int ->
  ?tries:int ->
  procs:int list ->
  values:Shm.Value.t list ->
  Shm.Config.t ->
  outcome

(** The valency-style adaptive adversary against a 1-obstruction-free
    algorithm: runs [a] alone and, exactly when a's next scan would
    decide (detected on a cloned configuration), interleaves one
    write(+scan) of [b].  Returns the diverging configuration after
    [horizon] steps — a witness that m+1 perpetually-running processes
    need not terminate — or [None] if some process decided (which is
    what happens when the algorithm is run with m ≥ 2). *)
val spoiler_witness :
  ?horizon:int ->
  a:int ->
  b:int ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  Shm.Config.t ->
  Shm.Config.t option
