(** γ-fragment construction (proof of Theorem 2): from a configuration,
    a group Q of processes runs — alone — until each completes every
    instance below the fresh instance [t], then executes its [t]-th
    Propose so that the group outputs |Q| distinct values (Lemma 1).
    Every step is guarded: an escape is returned to the caller, which
    treats it as the δ-fragment of the Figure 2 loop. *)

type result =
  | Ok_gamma of Shm.Config.t   (** |Q| distinct outputs at instance [t] *)
  | Escape of Explore.escape   (** poised write outside the allowed set *)
  | Failed of string           (** bounded search exhausted *)

(** Scheduling directives for the distinct-output search plans. *)
type directive =
  | Burst of int * int  (** pid, raw step budget (stops early if done) *)
  | Finish of int       (** pid runs solo until [t] operations complete *)

val run_plan :
  allowed:(int -> bool) ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  max_steps:int ->
  t:int ->
  directive list ->
  Shm.Config.t ->
  [ `Done of Shm.Config.t | `Escape of Explore.escape | `Stuck of Shm.Config.t ]

(** Distinct values output at instance [t] by processes in [procs]. *)
val distinct_at : Shm.Config.t -> procs:int list -> t:int -> Shm.Value.t list

(** All permutations of a list (plan enumeration helper). *)
val permutations : 'a list -> 'a list list

(** [build ~allowed ~inputs ~max_steps ~t ~procs config]: the full γ
    fragment.  [tries] bounds the randomized fallback (default 60). *)
val build :
  allowed:(int -> bool) ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  max_steps:int ->
  t:int ->
  procs:int list ->
  ?tries:int ->
  Shm.Config.t ->
  result
