(* γ-fragment construction (proof of Theorem 2, final paragraphs):
   from a configuration D, a group Q of at most m processes runs — alone
   — until each has completed every instance below the designated fresh
   instance T, and then executes its T-th Propose with its own (unique)
   input so that the group outputs |Q| distinct values.

   Lemma 1 guarantees such an execution exists for any correct
   m-obstruction-free algorithm; it is non-constructive, so we search:
   solo completion runs for the catch-up phase, then a family of
   staggered interleavings plus randomized schedules for the
   distinct-output phase (DESIGN.md, substitution 4).  Every step is
   guarded by the allowed-register predicate: an escape is returned to
   the caller, which treats it as the δ-fragment of the Figure 2 loop.

   For m = 1 the search is deterministic: a solo process at a fresh
   instance can only ever see (and by Validity only ever output) its own
   input. *)

open Shm

type result =
  | Ok_gamma of Config.t       (* group done; |Q| distinct outputs at T *)
  | Escape of Explore.escape   (* poised write outside the allowed set *)
  | Failed of string           (* search budget exhausted *)

(* Phase 1: run [pid] solo until it has completed [ops] operations. *)
let complete_ops ~allowed ~inputs ~max_steps pid ~ops config =
  let stop config = Spec.Properties.completed_ops config pid >= ops in
  Explore.run ~allowed ~inputs ~sched:(Schedule.solo pid) ~max_steps ~stop config

(* A plan is a sequence of scheduling directives executed under guard. *)
type directive =
  | Burst of int * int  (* pid, raw step count (skipped when done) *)
  | Finish of int       (* pid runs solo until T operations complete *)

let run_plan ~allowed ~inputs ~max_steps ~t plan config =
  let rec go config = function
    | [] -> `Done config
    | Burst (pid, steps) :: rest -> (
      let stop c = Spec.Properties.completed_ops c pid >= t in
      match
        Explore.run ~allowed ~inputs ~sched:(Schedule.solo pid) ~max_steps:steps ~stop
          config
      with
      | Explore.Escaped e -> `Escape e
      | Explore.Stopped c | Explore.Quiescent c | Explore.Fuel c -> go c rest)
    | Finish pid :: rest -> (
      match complete_ops ~allowed ~inputs ~max_steps pid ~ops:t config with
      | Explore.Escaped e -> `Escape e
      | Explore.Stopped c -> go c rest
      | Explore.Quiescent c | Explore.Fuel c -> `Stuck c)
  in
  go config plan

(* Distinct values output at instance [t] by processes in [procs]. *)
let distinct_at config ~procs ~t =
  Config.outputs config
  |> List.filter_map (fun (pid, inst, v) ->
         if inst = t && List.mem pid procs then Some v else None)
  |> Spec.Properties.distinct_values

let permutations xs =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: ys as l -> (x :: l) :: List.map (fun r -> y :: r) (insert x ys)
  in
  List.fold_left (fun acc x -> List.concat_map (insert x) acc) [ [] ] xs

(* Candidate plans for the distinct-output phase.  The staggered family
   plants early entries for the trailing processes so that their own
   tuples are already duplicated when they take their deciding scan;
   randomized interleavings cover the rest. *)
let candidate_plans ~procs =
  let staggered =
    List.concat_map
      (fun perm ->
        List.map
          (fun burst ->
            let heads =
              List.mapi (fun i pid -> Burst (pid, burst * (i + 1))) (List.tl perm)
            in
            heads @ List.map (fun pid -> Finish pid) perm)
          [ 1; 2; 3; 4; 6; 9; 14 ])
      (permutations procs)
  in
  let solo_orders =
    List.map (fun perm -> List.map (fun p -> Finish p) perm) (permutations procs)
  in
  solo_orders @ staggered

(* Randomized fallback: drive the group until everyone finished instance
   [t], under either a uniform random scheduler or a bursty-random one —
   the bursts produce the plant-then-fill interleavings that yield many
   distinct outputs. *)
let random_attempt ~allowed ~inputs ~max_steps ~t ~procs ~seed config =
  let stop c = List.for_all (fun pid -> Spec.Properties.completed_ops c pid >= t) procs in
  let sched =
    if seed mod 3 = 0 then Schedule.eventually_only ~seed ~survivors:procs ~prefix:0 1
    else Schedule.bursty_random ~seed ~burst_max:(3 + (seed mod 10)) procs
  in
  match Explore.run ~allowed ~inputs ~sched ~max_steps ~stop config with
  | Explore.Escaped e -> `Escape e
  | Explore.Stopped c -> `Done c
  | Explore.Quiescent c | Explore.Fuel c -> `Stuck c

(* Build the full γ fragment.  [t] is the fresh instance; [want] is the
   number of distinct outputs required (|Q|, from Lemma 1). *)
let build ~allowed ~inputs ~max_steps ~t ~procs ?(tries = 60) config =
  let want = List.length procs in
  (* Phase 1: catch up to instance t−1, one process at a time. *)
  let rec catch_up config = function
    | [] -> `Done config
    | pid :: rest -> (
      match complete_ops ~allowed ~inputs ~max_steps pid ~ops:(t - 1) config with
      | Explore.Escaped e -> `Escape e
      | Explore.Stopped c -> catch_up c rest
      | Explore.Quiescent c | Explore.Fuel c ->
        if Spec.Properties.completed_ops c pid >= t - 1 then catch_up c rest
        else `Stuck pid)
  in
  match catch_up config procs with
  | `Escape e -> Escape e
  | `Stuck pid -> Failed (Fmt.str "p%d could not complete %d instances" pid (t - 1))
  | `Done config -> (
    (* Phase 2: find an interleaving of the T-th Proposes with [want]
       distinct outputs.  Escapes at this phase are still δ-fragments
       for the caller. *)
    let check c = List.length (distinct_at c ~procs ~t) >= want in
    let rec try_plans escape_seen = function
      | [] -> (
        (* randomized fallback *)
        let rec try_seeds seed =
          if seed >= tries then
            match escape_seen with
            | Some e -> Escape e
            | None -> Failed "no interleaving with enough distinct outputs found"
          else
            match random_attempt ~allowed ~inputs ~max_steps ~t ~procs ~seed config with
            | `Escape e -> Escape e
            | `Done c when check c -> Ok_gamma c
            | `Done _ | `Stuck _ -> try_seeds (seed + 1)
        in
        try_seeds 0)
      | plan :: rest -> (
        match run_plan ~allowed ~inputs ~max_steps ~t plan config with
        | `Escape e ->
          (* Remember the escape but keep trying: another interleaving
             may stay confined and succeed; if nothing succeeds the
             caller gets this escape as its δ. *)
          let escape_seen = match escape_seen with Some _ -> escape_seen | None -> Some e in
          try_plans escape_seen rest
        | `Done c when check c -> Ok_gamma c
        | `Done _ | `Stuck _ -> try_plans escape_seen rest)
    in
    try_plans None (candidate_plans ~procs))
