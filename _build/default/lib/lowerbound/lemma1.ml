(* Lemma 1, executable: "for any set V of m input values and any set Q
   of m processes, there is an execution in which only processes in Q
   take steps and all values in V are output."

   The paper derives this non-constructively from the wait-free
   impossibility of (m−1)-set agreement among m processes [2,10,11]; we
   realize it as a schedule search (the same engine the Theorem 2
   adversary uses for its γ fragments).  [find] returns a concrete
   execution — a configuration whose output record contains all of V —
   or reports that the bounded search failed.

   The dual boundary is also observable: an algorithm tuned for
   m-obstruction-freedom need not terminate when m+1 processes run
   forever (k-set agreement has no m-obstruction-free solution for
   m > k, Section 2.1), and [non_termination_witness] searches for a
   schedule exhibiting exactly that. *)

open Shm

type outcome =
  | Found of { config : Config.t; outputs : Value.t list }
  | Search_failed of string

(* [find ~procs ~values config]: drive only [procs], process i proposing
   values.(i), until all of [values] appear among the outputs of
   instance 1.  The system must be fresh (no invocations yet). *)
let find ?(max_steps = 30_000) ?(tries = 80) ~procs ~values config =
  if List.length procs <> List.length values then
    invalid_arg "Lemma1.find: |procs| must equal |values|";
  let inputs ~pid ~instance =
    if instance = 1 then
      List.assoc_opt pid (List.combine procs values)
    else None
  in
  match
    Gamma.build ~allowed:(fun _ -> true) ~inputs ~max_steps ~t:1 ~procs ~tries config
  with
  | Gamma.Ok_gamma config ->
    Found { config; outputs = Gamma.distinct_at config ~procs ~t:1 }
  | Gamma.Escape _ -> assert false (* allowed is total *)
  | Gamma.Failed msg -> Search_failed msg

(* [spoiler_witness ~a ~b config]: the textbook valency-style adaptive
   adversary against a 1-obstruction-free algorithm, demonstrating that
   m+1 = 2 perpetually-running processes need not terminate (the m ≤ k
   boundary of Section 2.1).

   Oblivious schedules (lockstep, random, bursts) almost always converge
   against Figure 3, so the adversary must be *adaptive*: it runs [a]
   alone — obstruction-freedom means a would decide — and, exactly when
   a's next scan would make it decide (detected by stepping a cloned
   configuration), it interleaves one write-plus-scan of [b].  The fresh
   foreign pair makes a's scan see two distinct pairs again (> m = 1),
   so a never decides; b's own scan happens right after its write, when
   the memory is mixed, so b never decides either.  Both take infinitely
   many steps; neither terminates.  Returns the diverging configuration
   after [horizon] steps, or None if the adversary failed (some process
   decided — which is what happens when the algorithm is run with
   m ≥ 2). *)
let spoiler_witness ?(horizon = 20_000) ~a ~b ~inputs config =
  (* stepping [pid]'s poised scan on a clone: would it decide? *)
  let decide_imminent config pid =
    match Config.proc config pid with
    | Program.Op (Program.Scan _, _) ->
      let c, _ = Config.step config pid in
      (match Config.proc c pid with
      | Program.Yield _ -> true
      | Program.Stop | Program.Op _ | Program.Await _ -> false)
    | Program.Stop | Program.Op _ | Program.Yield _ | Program.Await _ -> false
  in
  let invoke_if_idle config pid =
    match Config.proc config pid with
    | Program.Await _ ->
      let inst = Config.instance config pid + 1 in
      fst (Config.invoke config pid (Option.get (inputs ~pid ~instance:inst)))
    | Program.Stop | Program.Op _ | Program.Yield _ -> config
  in
  let config = invoke_if_idle (invoke_if_idle config a) b in
  let decided config pid = Spec.Properties.completed_ops config pid > 0 in
  (* Interrupt: let b perform its poised write, and its following scan
     only if that scan would not decide (so b stays poised at a write
     for the next interrupt).  Returns None when b cannot safely move —
     the adversary has lost and a will be allowed to decide. *)
  let interrupt config =
    match Config.proc config b with
    | Program.Op (Program.Write _, _) ->
      let config, _ = Config.step config b in
      if decide_imminent config b then Some config
      else (
        match Config.proc config b with
        | Program.Op (Program.Scan _, _) -> Some (fst (Config.step config b))
        | Program.Stop | Program.Op _ | Program.Yield _ | Program.Await _ -> Some config)
    | Program.Stop | Program.Op _ | Program.Yield _ | Program.Await _ -> None
  in
  let rec go config steps =
    if decided config a || decided config b then None
    else if steps >= horizon then Some config
    else if decide_imminent config a then begin
      match interrupt config with
      | Some config' when not (decide_imminent config' a) -> go config' (steps + 2)
      | Some _ | None ->
        (* cannot avert the decision: a decides, the adversary loses *)
        let config, _ = Config.step config a in
        go config (steps + 1)
    end
    else
      let config, _ = Config.step config a in
      go config (steps + 1)
  in
  go config 0
