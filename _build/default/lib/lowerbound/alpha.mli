(** α(V)-execution search with schedule recording (Section 5/Lemma 9).

    The Lemma 9 gluing replays fragments of a fixed execution α(V)
    inside another configuration, so this search records the exact step
    sequence of the execution it finds and can replay it with
    divergence checking. *)

type step =
  | Inv of int                              (** invoke pid's next operation *)
  | Move of int * Shm.Program.op option     (** step pid; expected poised op *)

type alpha = {
  schedule : step list;        (** the full recorded execution *)
  reg_order : int list;        (** distinct registers, first-write order *)
  outputs : Shm.Value.t list;  (** distinct outputs of instance 1 *)
}

exception Replay_diverged of string

(** First-write register order of a recorded schedule. *)
val reg_order_of : step list -> int list

(** [search config ~procs ~values]: find and record an execution by
    [procs] (proposing [values] pointwise) that outputs all of [values]
    in instance 1. *)
val search :
  ?max_steps:int ->
  ?tries:int ->
  procs:int list ->
  values:Shm.Value.t list ->
  Shm.Config.t ->
  alpha option

(** Rename the processes of a schedule; anonymity makes the renamed
    schedule isomorphic when run by identically-programmed processes. *)
val map_pids : (int -> int) -> step list -> step list

(** Replay one recorded step, verifying the poised operation matches
    the recording.  Raises {!Replay_diverged} on mismatch. *)
val replay_step :
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  Shm.Config.t ->
  step ->
  Shm.Config.t
