(* Guarded execution: run a set of processes while watching for a step
   that would write outside an allowed register set.

   This is the primitive of the Figure 2 construction (proof of
   Theorem 2): "let δ be an execution fragment starting from Dj by Qj
   until some process q ∈ Qj is poised for the first time to write to a
   register that is not in Aj".  The returned configuration is the one
   in which the escaping process is still *poised* (its write has not
   executed), exactly what the construction needs to add q to the block-
   writer set Pj. *)

open Shm

type escape = {
  config : Config.t;  (* state with [pid] poised at the offending write *)
  pid : int;
  reg : int;
}

type outcome =
  | Escaped of escape
  | Stopped of Config.t    (* the [stop] predicate became true *)
  | Quiescent of Config.t  (* nothing runnable for the scheduler *)
  | Fuel of Config.t       (* step budget exhausted *)

(* [run ~allowed ~inputs ~sched ~max_steps ~stop config] drives [config]
   under [sched]; before every shared-memory write it checks the target
   register against [allowed].  [stop] is evaluated between steps. *)
let run ~allowed ~inputs ~sched ~max_steps ?(stop = fun _ -> false) config =
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let rec go config step =
    if stop config then Stopped config
    else if step >= max_steps then Fuel config
    else
      let runnable pid = Config.runnable config ~has_input pid in
      match sched.Schedule.next ~step ~runnable with
      | None -> Quiescent config
      | Some pid -> (
        match Config.proc config pid with
        | Program.Await _ ->
          let inst = Config.instance config pid + 1 in
          let input = Option.get (inputs ~pid ~instance:inst) in
          let config, _ = Config.invoke config pid input in
          go config (step + 1)
        | Program.Op (Program.Write (reg, _), _) when not (allowed reg) ->
          Escaped { config; pid; reg }
        | Program.Stop -> go config (step + 1)
        | Program.Op _ | Program.Yield _ ->
          let config, _ = Config.step config pid in
          go config (step + 1))
  in
  go config 0

(* δ-search: try several schedules over the process set [procs] until
   one produces an escape.  Because the processes are deterministic, the
   only nondeterminism is the interleaving; [Schedule.only] plus per-
   process solo runs plus a few randomized interleavings cover the
   reachable first-writes in practice (DESIGN.md, substitution 3). *)
let find_escape ~allowed ~inputs ~procs ~max_steps ~seeds config =
  let scheds =
    (Schedule.only procs :: List.map Schedule.solo procs)
    @ List.map
        (fun seed -> Schedule.eventually_only ~seed ~survivors:procs ~prefix:0 1)
        seeds
  in
  let rec try_scheds = function
    | [] -> None
    | sched :: rest -> (
      match run ~allowed ~inputs ~sched ~max_steps config with
      | Escaped e -> Some e
      | Stopped _ | Quiescent _ | Fuel _ -> try_scheds rest)
  in
  try_scheds scheds
