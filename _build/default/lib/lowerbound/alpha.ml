(* α(V)-execution search with schedule recording (Section 5 / Lemma 9).

   Lemma 9 fixes, for every m-element value set V, an execution α(V) by
   m processes that outputs all of V, and glues such executions
   together.  The gluing replays fragments of α(V) inside another
   configuration, so unlike the Lemma 1 search — which only needs the
   final configuration — this module records the *schedule* (the exact
   step sequence) of the execution it finds, and can replay it.

   A recorded step also carries the shared-memory operation the process
   was poised at, so replays verify they have not diverged from the
   original execution: the gluing's correctness rests on each fragment
   being byte-for-byte the original α(V), and a divergence would mean
   the block-write resets failed to restore the group's view. *)

open Shm

type step =
  | Inv of int                         (* invoke pid's next operation *)
  | Move of int * Program.op option    (* step pid; expected poised op *)

type alpha = {
  schedule : step list;      (* the full recorded execution *)
  reg_order : int list;      (* distinct registers in first-write order *)
  outputs : Value.t list;    (* distinct outputs of instance 1 *)
}

exception Replay_diverged of string

(* Drive [config] under [sched], recording steps, until [stop] or the
   budget runs out.  Only used for the search; replay is separate. *)
let record_run ~inputs ~sched ~max_steps ~stop config =
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let rec go config steps acc =
    if stop config then Some (config, List.rev acc)
    else if steps >= max_steps then None
    else
      let runnable pid = Config.runnable config ~has_input pid in
      match sched.Schedule.next ~step:steps ~runnable with
      | None -> if stop config then Some (config, List.rev acc) else None
      | Some pid -> (
        match Config.proc config pid with
        | Program.Await _ ->
          let inst = Config.instance config pid + 1 in
          let config, _ = Config.invoke config pid (Option.get (inputs ~pid ~instance:inst)) in
          go config (steps + 1) (Inv pid :: acc)
        | Program.Stop -> go config (steps + 1) acc
        | Program.Op (op, _) ->
          let config, _ = Config.step config pid in
          go config (steps + 1) (Move (pid, Some op) :: acc)
        | Program.Yield _ ->
          let config, _ = Config.step config pid in
          go config (steps + 1) (Move (pid, None) :: acc))
  in
  go config 0 []

let reg_order_of schedule =
  List.fold_left
    (fun acc s ->
      match s with
      | Move (_, Some (Program.Write (reg, _))) when not (List.mem reg acc) -> reg :: acc
      | Move _ | Inv _ -> acc)
    [] schedule
  |> List.rev

(* [search config ~procs ~values]: find an execution by [procs] (each
   proposing its value) outputting all of [values] in instance 1, and
   record it.  Tries bursty and uniform random schedules. *)
let search ?(max_steps = 30_000) ?(tries = 3000) ~procs ~values config =
  let inputs ~pid ~instance =
    if instance = 1 then List.assoc_opt pid (List.combine procs values) else None
  in
  let want = List.length values in
  let stop c =
    List.for_all (fun pid -> Spec.Properties.completed_ops c pid >= 1) procs
  in
  let distinct c =
    Config.outputs c
    |> List.filter_map (fun (pid, inst, v) ->
           if inst = 1 && List.mem pid procs then Some v else None)
    |> Spec.Properties.distinct_values
  in
  let rec try_seed seed =
    if seed >= tries then None
    else
      let sched =
        if seed mod 3 = 0 then
          Schedule.eventually_only ~seed ~survivors:procs ~prefix:0 1
        else Schedule.bursty_random ~seed ~burst_max:(3 + (seed mod 10)) procs
      in
      match record_run ~inputs ~sched ~max_steps ~stop config with
      | Some (c, schedule) when List.length (distinct c) >= want ->
        Some
          {
            schedule;
            reg_order = reg_order_of schedule;
            outputs = distinct c;
          }
      | Some _ | None -> try_seed (seed + 1)
  in
  try_seed 0

(* Rename the processes of a recorded schedule — anonymity makes the
   renamed schedule produce the isomorphic execution when the new
   processes run the same (identical) program with their own inputs. *)
let map_pids f schedule =
  List.map
    (function Inv pid -> Inv (f pid) | Move (pid, op) -> Move (f pid, op))
    schedule

(* Replay one step on [config]; verifies the poised operation matches
   the recording (same kind and same target register for writes). *)
let replay_step ~inputs config step =
  match step with
  | Inv pid -> (
    match Config.proc config pid with
    | Program.Await _ ->
      let inst = Config.instance config pid + 1 in
      fst (Config.invoke config pid (Option.get (inputs ~pid ~instance:inst)))
    | _ -> raise (Replay_diverged (Fmt.str "p%d should be idle" pid)))
  | Move (pid, expected) -> (
    match (Config.proc config pid, expected) with
    | Program.Op (Program.Write (r1, _), _), Some (Program.Write (r2, _)) when r1 = r2
      ->
      fst (Config.step config pid)
    | Program.Op (Program.Read r1, _), Some (Program.Read r2) when r1 = r2 ->
      fst (Config.step config pid)
    | Program.Op (Program.Scan (o1, l1), _), Some (Program.Scan (o2, l2))
      when o1 = o2 && l1 = l2 ->
      fst (Config.step config pid)
    | Program.Yield _, None -> fst (Config.step config pid)
    | actual, _ ->
      raise
        (Replay_diverged
           (Fmt.str "p%d poised at %s, recording disagrees" pid
              (match Program.poised_op actual with
              | Some op -> Fmt.str "%a" Program.pp_op op
              | None -> "response/idle"))))
