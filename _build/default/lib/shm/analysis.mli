(** Trace analysis: aggregate statistics over recorded executions, for
    the bench harness (register heat maps, contention metrics) and for
    tests asserting structural facts about executions. *)

type t = {
  steps_per_process : int array;
  writes_per_register : int array;
  reads_per_register : int array;  (** scans count one read per register *)
  invocations : int;
  outputs : int;
  total_steps : int;
}

val of_trace : n:int -> registers:int -> Event.t list -> t

(** Processes that took at least one step. *)
val active_processes : t -> int list

(** Write imbalance across written registers: max/mean (1.0 = even). *)
val write_skew : t -> float

val pp : Format.formatter -> t -> unit
