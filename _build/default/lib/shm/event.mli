(** Execution events, recorded for trace inspection and property
    checking.  [instance] numbers operations per process starting at 1,
    matching the paper's "i-th invocation of Propose". *)

type t =
  | Invoke of { pid : int; instance : int; input : Value.t }
  | Did_read of { pid : int; reg : int; value : Value.t }
  | Did_write of { pid : int; reg : int; value : Value.t }
  | Did_scan of { pid : int; off : int; len : int }
  | Output of { pid : int; instance : int; value : Value.t }

(** The process performing the event. *)
val pid : t -> int

val pp : Format.formatter -> t -> unit
