(** Deterministic SplitMix64 pseudo-random generator.

    Every randomized schedule in the simulator draws from this PRNG so
    that runs are reproducible from a single integer seed, independent
    of the OCaml stdlib [Random] state. *)

type t

(** [create seed] returns a fresh generator. *)
val create : int -> t

(** An independent copy: advancing one does not affect the other. *)
val copy : t -> t

(** The raw 64-bit output stream. *)
val next_int64 : t -> int64

(** [pure_step state] is one SplitMix64 step as a pure function —
    returns the output and the advanced state.  Used where PRNG state
    must be a persistent value (programs that the lower-bound machinery
    clones). *)
val pure_step : int64 -> int64 * int64

(** [int t bound] is uniform in [\[0, bound)].  Raises
    [Invalid_argument] if [bound <= 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** Derive an independent stream (per-process local randomness). *)
val split : t -> t

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** Uniform element of a non-empty list. *)
val pick : t -> 'a list -> 'a
