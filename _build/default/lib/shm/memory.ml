(* Shared register memory with exact space accounting.

   The memory is a persistent map from register index to value, so that
   configurations can be cloned and replayed — the lower-bound adversary
   of Theorem 2 depends on this.  [written] records the set of registers
   that have ever been written, which is the space measure the paper
   reports: an algorithm "uses" a register iff some execution writes it
   (registers that are only read never need to exist distinctly). *)

module Imap = Map.Make (Int)
module Iset = Set.Make (Int)

type t = {
  size : int;              (* number of allocated registers *)
  regs : Value.t Imap.t;   (* sparse: absent entries read as ⊥ *)
  written : Iset.t;        (* registers written at least once *)
  write_count : int;       (* total number of write steps *)
  read_count : int;        (* total number of read steps (scan = len reads) *)
}

let create size =
  if size < 0 then invalid_arg "Memory.create: negative size";
  { size; regs = Imap.empty; written = Iset.empty; write_count = 0; read_count = 0 }

let size t = t.size

let check t r op =
  if r < 0 || r >= t.size then
    invalid_arg (Fmt.str "Memory.%s: register %d out of range [0,%d)" op r t.size)

let read t r =
  check t r "read";
  match Imap.find_opt r t.regs with Some v -> v | None -> Value.Bot

let write t r v =
  check t r "write";
  {
    t with
    regs = Imap.add r v t.regs;
    written = Iset.add r t.written;
    write_count = t.write_count + 1;
  }

(* Atomic multi-read of [len] consecutive registers starting at [off];
   used to give snapshot objects their atomic-scan semantics. *)
let scan t ~off ~len =
  if len < 0 then invalid_arg "Memory.scan: negative length";
  if off < 0 || off + len > t.size then
    invalid_arg (Fmt.str "Memory.scan: range [%d,%d) out of [0,%d)" off (off + len) t.size);
  Array.init len (fun i ->
      match Imap.find_opt (off + i) t.regs with Some v -> v | None -> Value.Bot)

let count_read t n = { t with read_count = t.read_count + n }

let written_set t = t.written

let num_written t = Iset.cardinal t.written

let write_count t = t.write_count

let read_count t = t.read_count

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  for r = 0 to t.size - 1 do
    let v = match Imap.find_opt r t.regs with Some v -> v | None -> Value.Bot in
    Fmt.pf ppf "R%d = %a@," r Value.pp v
  done;
  Fmt.pf ppf "@]"
