(** Universal register value type.

    Every simulated register holds a value of this single type, so
    configurations are first-class, comparable, printable data.  The
    paper's algorithms store tuples such as [(pref, id)] (Figure 3) or
    [(pref, id, t, history)] (Figure 4); encode them with {!Pair} and
    {!List}. *)

type t =
  | Bot  (** the initial value ⊥ of every register *)
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(** {1 Constructors} *)

val bot : t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

(** [tuple vs] encodes a small tuple; a singleton list is the value
    itself, anything else a {!List}. *)
val tuple : t list -> t

(** {1 Comparison and printing} *)

(** Structural equality; matches the paper's tuple equality. *)
val equal : t -> t -> bool

(** A total order consistent with {!equal} (used for sorting and
    deduplication; the order itself is arbitrary but fixed). *)
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Accessors}

    These fail loudly ([Invalid_argument]) on encoding bugs. *)

val is_bot : t -> bool
val to_int : t -> int

(** First component of a {!Pair}. *)
val fst : t -> t

(** Second component of a {!Pair}. *)
val snd : t -> t

(** Elements of a {!List}. *)
val to_list : t -> t list
