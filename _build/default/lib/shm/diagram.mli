(** ASCII space-time diagrams of executions: one row per process, one
    column per step (I invoke, wN write, rN read, s scan, O output,
    . idle).  For small traces — CLI [--diagram], debugging the
    lower-bound constructions; window long traces with [from]/[len]. *)

val symbol : Event.t -> string

(** Render rows for processes [0..n-1]. *)
val pp : ?from:int -> ?len:int -> n:int -> Format.formatter -> Event.t list -> unit

val to_string : ?from:int -> ?len:int -> n:int -> Event.t list -> string
