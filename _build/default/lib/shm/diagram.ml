(* ASCII space-time diagrams of executions.

   Renders a recorded trace as one row per process and one column per
   step, the classic whiteboard picture of a shared-memory execution:

     p0 |I w0    r0     s    O|
     p1 |   I  w1    s     O  |

   Symbols: I invoke, wN write to register N, rN read of register N,
   s scan, O output, . idle.  Multi-digit register indices widen their
   column.  Intended for small traces (CLI --diagram, debugging the
   lower-bound constructions); long traces can be windowed with
   [?from]/[?len]. *)


let symbol = function
  | Event.Invoke _ -> "I"
  | Event.Did_read { reg; _ } -> Fmt.str "r%d" reg
  | Event.Did_write { reg; _ } -> Fmt.str "w%d" reg
  | Event.Did_scan _ -> "s"
  | Event.Output _ -> "O"

(* The grid: rows indexed by pid, columns by step. *)
let grid ~n trace =
  let cols = List.length trace in
  let g = Array.make_matrix n cols "" in
  List.iteri
    (fun t ev ->
      let pid = Event.pid ev in
      if pid < n then g.(pid).(t) <- symbol ev)
    trace;
  g

let pp ?(from = 0) ?len ~n ppf trace =
  let trace = List.filteri (fun i _ -> i >= from) trace in
  let trace =
    match len with Some l -> List.filteri (fun i _ -> i < l) trace | None -> trace
  in
  let g = grid ~n trace in
  let cols = match g with [||] -> 0 | _ -> Array.length g.(0) in
  (* column widths *)
  let width = Array.make cols 1 in
  Array.iter
    (Array.iteri (fun c cell -> if String.length cell > width.(c) then width.(c) <- String.length cell))
    g;
  for pid = 0 to n - 1 do
    Fmt.pf ppf "p%d |" pid;
    for c = 0 to cols - 1 do
      let cell = if g.(pid).(c) = "" then "." else g.(pid).(c) in
      Fmt.pf ppf "%-*s" (width.(c) + 1) cell
    done;
    Fmt.pf ppf "|@,"
  done

let to_string ?from ?len ~n trace =
  Fmt.str "@[<v>%a@]" (fun ppf -> pp ?from ?len ~n ppf) trace
