(** The scheduler zoo.

    A scheduler is the adversary of the asynchronous model: at each
    step it picks which runnable process moves.  Schedulers are
    stateful (cursors, PRNGs, phase counters) but constructed fresh per
    run, so runs remain reproducible from their seeds.

    The progress-condition schedulers matter most for this paper:
    {!m_bounded} produces executions in which, after an arbitrary
    finite prefix, at most [m] processes take infinitely many steps —
    exactly the hypothesis of m-obstruction-freedom. *)

type t = {
  name : string;
  next : step:int -> runnable:(int -> bool) -> int option;
      (** [next ~step ~runnable] picks a runnable pid, or [None] to end
          the run (nothing this scheduler is willing to run is
          runnable). *)
}

val name : t -> string

(** First runnable pid of a list, if any. *)
val first_runnable : runnable:(int -> bool) -> int list -> int option

(** Round-robin over all [n] processes, skipping unrunnable ones. *)
val round_robin : int -> t

(** Round-robin where each process takes [quantum] consecutive steps.
    Large quanta approximate solo runs, which obstruction-freedom turns
    into a termination guarantee. *)
val quantum_round_robin : quantum:int -> int -> t

(** Only [pid] ever runs — the solo executions of obstruction-freedom. *)
val solo : int -> t

(** Run exactly these processes, round-robin in list order. *)
val only : int list -> t

(** Uniformly random runnable process among [0..n-1]. *)
val random : seed:int -> int -> t

(** The m-obstruction-freedom adversary: a random prefix of [prefix]
    steps over all [n] processes, after which only a random set of [m]
    processes keeps running. *)
val m_bounded : seed:int -> m:int -> prefix:int -> int -> t

(** Like {!m_bounded} with an explicit surviving set. *)
val eventually_only : seed:int -> survivors:int list -> prefix:int -> int -> t

(** Random scheduler with random-length bursts (1..[burst_max]) over
    [procs]; produces the partially-sequential interleavings the
    Lemma 1 search relies on. *)
val bursty_random : seed:int -> ?burst_max:int -> int list -> t

(** Contention adversary: alternates [burst]-step turns of the process
    groups. *)
val alternating : burst:int -> int list list -> t

(** Crash adversary: wraps [inner]; process [p] is never scheduled once
    the global step count reaches its crash time [(p, at)]. *)
val with_crashes : crashes:(int * int) list -> t -> t
