(* Execution events, recorded for trace inspection and property checking.

   [instance] numbers operations per process, starting at 1 for the
   first invocation, matching the paper's "i-th invocation of Propose". *)

type t =
  | Invoke of { pid : int; instance : int; input : Value.t }
  | Did_read of { pid : int; reg : int; value : Value.t }
  | Did_write of { pid : int; reg : int; value : Value.t }
  | Did_scan of { pid : int; off : int; len : int }
  | Output of { pid : int; instance : int; value : Value.t }

let pid = function
  | Invoke { pid; _ }
  | Did_read { pid; _ }
  | Did_write { pid; _ }
  | Did_scan { pid; _ }
  | Output { pid; _ } -> pid

let pp ppf = function
  | Invoke { pid; instance; input } ->
    Fmt.pf ppf "p%d: invoke #%d Propose(%a)" pid instance Value.pp input
  | Did_read { pid; reg; value } ->
    Fmt.pf ppf "p%d: read R%d -> %a" pid reg Value.pp value
  | Did_write { pid; reg; value } ->
    Fmt.pf ppf "p%d: write R%d := %a" pid reg Value.pp value
  | Did_scan { pid; off; len } ->
    Fmt.pf ppf "p%d: scan [%d..%d]" pid off (off + len - 1)
  | Output { pid; instance; value } ->
    Fmt.pf ppf "p%d: output #%d -> %a" pid instance Value.pp value
