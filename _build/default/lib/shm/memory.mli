(** Shared register memory with exact space accounting.

    The memory is a persistent map from register index to value, so
    configurations can be cloned and replayed — the Theorem 2 adversary
    depends on this.  The space measure reported by the experiments is
    {!num_written}: an algorithm "uses" a register iff some execution
    writes it. *)

type t

(** [create size] allocates registers [0 .. size-1], all holding ⊥. *)
val create : int -> t

val size : t -> int

(** [read t r] is the current value of register [r].  Bounds-checked. *)
val read : t -> int -> Value.t

(** [write t r v] is the memory after the write; [t] is unchanged. *)
val write : t -> int -> Value.t -> t

(** [scan t ~off ~len] is an atomic multi-read of [len] consecutive
    registers starting at [off] — the primitive behind atomic snapshot
    objects. *)
val scan : t -> off:int -> len:int -> Value.t array

(** [count_read t n] bumps the read counter by [n] (bookkeeping only). *)
val count_read : t -> int -> t

(** {1 Space and step accounting} *)

(** Registers written at least once. *)
val written_set : t -> Set.Make(Int).t

(** |{!written_set}| — the paper's space measure. *)
val num_written : t -> int

val write_count : t -> int
val read_count : t -> int

val pp : Format.formatter -> t -> unit
