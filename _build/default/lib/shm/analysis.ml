(* Trace analysis: aggregate statistics over recorded executions.

   Used by the bench harness (register heat maps, contention metrics)
   and by tests that assert structural facts about executions — e.g.
   that a solo run touches every component, or that crash survivors
   account for all late steps. *)

type t = {
  steps_per_process : int array;   (* shared-memory + response steps *)
  writes_per_register : int array;
  reads_per_register : int array;  (* scans count one read per covered register *)
  invocations : int;
  outputs : int;
  total_steps : int;
}

let of_trace ~n ~registers trace =
  let steps = Array.make n 0 in
  let writes = Array.make registers 0 in
  let reads = Array.make registers 0 in
  let invocations = ref 0 and outputs = ref 0 and total = ref 0 in
  List.iter
    (fun ev ->
      incr total;
      let pid = Event.pid ev in
      if pid < n then steps.(pid) <- steps.(pid) + 1;
      match ev with
      | Event.Invoke _ -> incr invocations
      | Event.Output _ -> incr outputs
      | Event.Did_write { reg; _ } -> if reg < registers then writes.(reg) <- writes.(reg) + 1
      | Event.Did_read { reg; _ } -> if reg < registers then reads.(reg) <- reads.(reg) + 1
      | Event.Did_scan { off; len; _ } ->
        for r = off to min (off + len) registers - 1 do
          reads.(r) <- reads.(r) + 1
        done)
    trace;
  {
    steps_per_process = steps;
    writes_per_register = writes;
    reads_per_register = reads;
    invocations = !invocations;
    outputs = !outputs;
    total_steps = !total;
  }

(* Processes that took at least one step. *)
let active_processes t =
  Array.to_list t.steps_per_process
  |> List.mapi (fun pid s -> (pid, s))
  |> List.filter (fun (_, s) -> s > 0)
  |> List.map fst

(* Contention metric: the write-count imbalance across registers —
   max writes / mean writes over written registers (1.0 = perfectly
   even).  Register-efficient algorithms cycle evenly. *)
let write_skew t =
  let written = Array.to_list t.writes_per_register |> List.filter (fun w -> w > 0) in
  match written with
  | [] -> 0.
  | _ ->
    let total = List.fold_left ( + ) 0 written in
    let mean = float_of_int total /. float_of_int (List.length written) in
    float_of_int (List.fold_left max 0 written) /. mean

let pp ppf t =
  Fmt.pf ppf "@[<v>steps/process: %a@,writes/register: %a@,invocations: %d, outputs: %d@]"
    Fmt.(array ~sep:(any " ") int)
    t.steps_per_process
    Fmt.(array ~sep:(any " ") int)
    t.writes_per_register t.invocations t.outputs
