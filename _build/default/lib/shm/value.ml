(* Universal register value type.

   Registers in the simulated shared memory hold values of this single
   type so that configurations are first-class, comparable, printable
   data.  The algorithms in the paper store tuples such as [(pref, id)]
   (Figure 3) or [(pref, id, t, history)] (Figure 4); these are encoded
   with [Pair] and [List]. *)

type t =
  | Bot                       (* the initial value ⊥ of every register *)
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

let bot = Bot

let int i = Int i

let str s = Str s

let pair a b = Pair (a, b)

let list vs = List vs

(* Encoding of small tuples as right-nested pairs, so that structural
   equality matches the paper's tuple equality. *)
let tuple = function
  | [] -> List []
  | [ v ] -> v
  | vs -> List vs

let rec equal a b =
  match a, b with
  | Bot, Bot -> true
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
  | List xs, List ys ->
    (try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | (Bot | Int _ | Str _ | Pair _ | List _), _ -> false

let rec compare a b =
  let tag = function
    | Bot -> 0
    | Int _ -> 1
    | Str _ -> 2
    | Pair _ -> 3
    | List _ -> 4
  in
  match a, b with
  | Bot, Bot -> 0
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, y1), Pair (x2, y2) ->
    let c = compare x1 x2 in
    if c <> 0 then c else compare y1 y2
  | List xs, List ys -> List.compare compare xs ys
  | _, _ -> Stdlib.compare (tag a) (tag b)

let rec pp ppf = function
  | Bot -> Fmt.string ppf "⊥"
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a,%a)" pp a pp b
  | List vs -> Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any ";") pp) vs

let to_string v = Fmt.str "%a" pp v

let is_bot = function Bot -> true | Int _ | Str _ | Pair _ | List _ -> false

(* Accessors used by the algorithms; they fail loudly on encoding bugs. *)

let to_int = function
  | Int i -> i
  | v -> invalid_arg (Fmt.str "Value.to_int: %a" pp v)

let fst = function
  | Pair (a, _) -> a
  | v -> invalid_arg (Fmt.str "Value.fst: %a" pp v)

let snd = function
  | Pair (_, b) -> b
  | v -> invalid_arg (Fmt.str "Value.snd: %a" pp v)

let to_list = function
  | List vs -> vs
  | v -> invalid_arg (Fmt.str "Value.to_list: %a" pp v)
