lib/shm/rng.mli:
