lib/shm/event.ml: Fmt Value
