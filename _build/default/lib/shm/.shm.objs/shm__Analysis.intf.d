lib/shm/analysis.mli: Event Format
