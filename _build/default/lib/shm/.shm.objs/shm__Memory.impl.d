lib/shm/memory.ml: Array Fmt Int Map Set Value
