lib/shm/diagram.ml: Array Event Fmt List String
