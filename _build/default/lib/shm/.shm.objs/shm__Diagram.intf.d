lib/shm/diagram.mli: Event Format
