lib/shm/value.mli: Format
