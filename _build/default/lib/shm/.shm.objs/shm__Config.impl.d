lib/shm/config.ml: Array Event Fmt List Memory Program Value
