lib/shm/memory.mli: Format Int Set Value
