lib/shm/exec.ml: Array Config Event Fmt List Option Program Schedule
