lib/shm/event.mli: Format Value
