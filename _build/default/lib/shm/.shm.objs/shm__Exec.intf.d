lib/shm/exec.mli: Config Event Format Schedule Value
