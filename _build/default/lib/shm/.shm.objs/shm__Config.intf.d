lib/shm/config.mli: Event Format Memory Program Value
