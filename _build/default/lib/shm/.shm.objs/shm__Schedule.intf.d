lib/shm/schedule.mli:
