lib/shm/program.ml: Fmt Value
