lib/shm/schedule.ml: Array Fmt List Rng
