lib/shm/rng.ml: Array Int64 List
