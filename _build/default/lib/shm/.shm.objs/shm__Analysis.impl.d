lib/shm/analysis.ml: Array Event Fmt List
