lib/shm/value.ml: Fmt List Stdlib String
