lib/shm/program.mli: Format Value
