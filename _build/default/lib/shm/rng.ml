(* Deterministic SplitMix64 pseudo-random generator.

   Every randomized schedule in the simulator is driven by this PRNG so
   that runs are reproducible from a single integer seed, independent of
   the OCaml stdlib Random state.  SplitMix64 is the standard seeding
   generator of Vigna; it has a full 2^64 period and passes BigCrush. *)

let golden = 0x9E3779B97F4A7C15L

(* Pure one-step variant: returns the output and the advanced state.
   Used where PRNG state must be a persistent value (programs that the
   lower-bound machinery clones). *)
let pure_step state =
  let state' = Int64.add state golden in
  let z = state' in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (Int64.logxor z (Int64.shift_right_logical z 31), state')

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let v, state = pure_step t.state in
  t.state <- state;
  v

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem r (Int64.of_int bound))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Derive an independent stream; used to give each process its own
   deterministic local source (e.g. anonymous freshness nonces). *)
let split t =
  let s = next_int64 t in
  { state = Int64.mul s 0x2545F4914F6CDD1DL }

let shuffle t arr =
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))
