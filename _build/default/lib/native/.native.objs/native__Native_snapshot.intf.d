lib/native/native_snapshot.mli: Shm
