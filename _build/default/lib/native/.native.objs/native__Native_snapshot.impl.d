lib/native/native_snapshot.ml: Array Atomic Shm
