lib/native/native_agreement.mli: Agreement Shm
