lib/native/native_repeated.mli: Agreement Shm
