lib/native/native_repeated.ml: Agreement Array Domain List Native_snapshot Shm
