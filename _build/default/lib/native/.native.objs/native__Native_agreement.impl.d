lib/native/native_agreement.ml: Agreement Array Domain Native_snapshot Shm
