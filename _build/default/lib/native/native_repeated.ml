(* Figure 4 on real multicore shared memory: repeated k-set agreement
   across OCaml 5 domains.

   As with Native_agreement, the decision logic is shared with the
   simulator — Agreement.Repeated's encode/decode and the find_higher /
   decide_check / adopt_check predicates are applied to views returned
   by the native double-collect snapshot.  Each domain keeps the
   persistent locals of Figure 4 (location i, instance t, history) in
   its own heap; the shared state is exactly the r = n+2m−k atomics. *)

type t = {
  snap : Native_snapshot.t;
  m : int;
  n : int;
  k : int;
}

let create ~(params : Agreement.Params.t) =
  {
    snap = Native_snapshot.create ~components:(Agreement.Params.r_oneshot params);
    m = params.Agreement.Params.m;
    n = params.Agreement.Params.n;
    k = params.Agreement.Params.k;
  }

let registers t = Native_snapshot.components t.snap

(* Per-domain session carrying Figure 4's persistent locals. *)
type session = {
  obj : t;
  h : Native_snapshot.handle;
  pid : int;
  rng : Shm.Rng.t;
  mutable i : int;
  mutable t_inst : int;
  mutable history : Shm.Value.t list;
}

let session obj ~pid ~seed =
  {
    obj;
    h = Native_snapshot.handle obj.snap ~pid;
    pid;
    rng = Shm.Rng.create (seed + (97 * pid));
    i = 0;
    t_inst = 0;
    history = [];
  }

let nth_output history t =
  match List.nth_opt history (t - 1) with
  | Some w -> w
  | None -> invalid_arg "Native_repeated: adopted history shorter than instance"

(* One Propose, following Figure 4 with backoff between full cycles. *)
let propose s v =
  let r = registers s.obj in
  s.t_inst <- s.t_inst + 1;
  let t = s.t_inst in
  if List.length s.history >= t then nth_output s.history t
  else begin
    let backoff_window = ref 1 in
    let backoff () =
      for _ = 1 to (Shm.Rng.int s.rng !backoff_window + 1) * 50 do
        Domain.cpu_relax ()
      done;
      if !backoff_window < 4096 then backoff_window := !backoff_window * 2
    in
    let rec loop pref iters =
      let own =
        { Agreement.Repeated.pref; id = s.pid; t; history = s.history }
      in
      Native_snapshot.update s.h s.i (Agreement.Repeated.encode own);
      let view = Native_snapshot.scan ~on_retry:(fun _ -> Domain.cpu_relax ()) s.h in
      match Agreement.Repeated.find_higher ~t view with
      | Some tu ->
        s.history <- tu.Agreement.Repeated.history;
        nth_output tu.Agreement.Repeated.history t
      | None -> (
        match Agreement.Repeated.decide_check ~m:s.obj.m ~t view with
        | Some w ->
          s.history <- s.history @ [ w ];
          w
        | None ->
          let pref =
            match Agreement.Repeated.adopt_check ~own ~i:s.i ~t view with
            | Some w -> w
            | None ->
              s.i <- (s.i + 1) mod r;
              pref
          in
          if iters mod r = r - 1 then backoff ();
          loop pref (iters + 1))
    in
    loop v 0
  end

(* Run [rounds] instances across n domains; returns decisions as
   [| pid |].(round-1). *)
let run ?(seed = 0) ~(params : Agreement.Params.t) ~rounds input =
  let obj = create ~params in
  let domains =
    Array.init obj.n (fun pid ->
        Domain.spawn (fun () ->
            let s = session obj ~pid ~seed in
            Array.init rounds (fun j -> propose s (input ~pid ~round:(j + 1)))))
  in
  (obj, Array.map Domain.join domains)
