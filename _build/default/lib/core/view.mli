(** Predicates on scan views shared by the algorithms of Figures 3–5.
    A "view" is the vector returned by a snapshot scan; the paper's
    decision and adoption rules are counting arguments on such vectors. *)

(** |{s\[j\] : 0 ≤ j < r}| — the number of distinct entries. *)
val distinct_count : Shm.Value.t array -> int

val contains_bot : Shm.Value.t array -> bool

(** min\{j1 : ∃ j2 > j1 such that s\[j1\] = s\[j2\]\} — the index both
    Figure 3 (line 12) and Figure 4 (line 23) use to pick a duplicated
    entry deterministically.  [eligible] restricts which entries may
    serve as the j1 candidate (Figure 4 requires duplicated
    {e t-tuples}). *)
val min_duplicate_index :
  ?eligible:(Shm.Value.t -> bool) -> Shm.Value.t array -> int option

(** Number of entries satisfying the predicate. *)
val count : (Shm.Value.t -> bool) -> Shm.Value.t array -> int

(** Entries satisfying the predicate, with multiplicity, index order. *)
val filter : (Shm.Value.t -> bool) -> Shm.Value.t array -> Shm.Value.t list

(** Most frequent projection of the entries; ties broken by first
    occurrence (Figure 5 line 24).  [None] on the empty view. *)
val most_frequent :
  project:(Shm.Value.t -> Shm.Value.t) -> Shm.Value.t array -> Shm.Value.t option
