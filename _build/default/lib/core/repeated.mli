(** Figure 4: repeated m-obstruction-free k-set agreement over the same
    r = n + 2m − k component snapshot as Figure 3.

    Entries are tuples (pref, id, t, history); persistent locals i, t
    and history survive across Propose invocations.  A process decides
    instance t only when every entry is a tuple of instance exactly t
    and at most m distinct tuples are present — or by adopting the
    history of a process seen in a higher instance (line 15's
    shortcut). *)

type tuple = { pref : Shm.Value.t; id : int; t : int; history : Shm.Value.t list }

val encode : tuple -> Shm.Value.t

(** [None] on ⊥; raises on non-tuple junk. *)
val decode : Shm.Value.t -> tuple option

(** Line 15: the entry of the highest instance > t, if any. *)
val find_higher : t:int -> Shm.Value.t array -> tuple option

(** Line 17: [Some w] iff the view decides instance [t] with output
    [w]. *)
val decide_check : m:int -> t:int -> Shm.Value.t array -> Shm.Value.t option

(** Line 22 (with the Figure 3 erratum repair): [Some w] iff the
    process adopts [w]. *)
val adopt_check :
  own:tuple -> i:int -> t:int -> Shm.Value.t array -> Shm.Value.t option

(** The full process program: one [Await] per Propose, forever. *)
val program : m:int -> pid:int -> api:Snapshot.Snap_api.t -> Shm.Program.t
