(** One-shot anonymous m-obstruction-free k-set agreement: Figure 5
    specialized to a single instance, as Section 6's closing remark
    describes — no register H, no watcher thread, entries are bare
    preference values.  Uses r = (m+1)(n−k) + m² components. *)

(** [Some w] iff the view decides (all components non-⊥, ≤ m distinct
    values), with the most frequent value [w]. *)
val decide_check : m:int -> Shm.Value.t array -> Shm.Value.t option

(** The value to adopt, if the current preference has fewer than ℓ
    copies and some other value has at least ℓ. *)
val adoption :
  ell:int -> pref:Shm.Value.t -> Shm.Value.t array -> Shm.Value.t option

(** The process program — identical for every process. *)
val program : params:Params.t -> api:Snapshot.Snap_api.t -> Shm.Program.t
