(** Figure 3: one-shot m-obstruction-free k-set agreement over a
    snapshot object with r = n + 2m − k components.

    Processes store (pref, id) pairs, scan, and either decide (≤ m
    distinct pairs, no ⊥ — output the smallest-index duplicated pair's
    value), adopt a duplicated pair's value, or advance their location.
    One pseudocode erratum is repaired; see the [adopt_check] comment
    in the implementation and EXPERIMENTS.md, "pseudocode errata". *)

(** The (pref, id) pair as stored in the snapshot. *)
val pair : pref:Shm.Value.t -> pid:int -> Shm.Value.t

(** Lines 9–10: [Some w] iff the view decides, with output [w]. *)
val decide_check : m:int -> Shm.Value.t array -> Shm.Value.t option

(** Lines 11–13 (with the erratum repair): [Some w] iff the process
    adopts [w ≠ pref]. *)
val adopt_check :
  pid:int -> pref:Shm.Value.t -> i:int -> Shm.Value.t array -> Shm.Value.t option

(** Lines 11–13 exactly as printed in the paper, which may "adopt" a
    value equal to pref.  Kept so the erratum is executable (see
    test_errata.ml). *)
val adopt_check_paper_literal :
  pid:int -> pref:Shm.Value.t -> i:int -> Shm.Value.t array -> Shm.Value.t option

(** The body of Propose(v); [finish w] is what runs after outputting.
    [adopt] selects the adoption rule (repaired one by default). *)
val propose :
  ?adopt:
    (pid:int -> pref:Shm.Value.t -> i:int -> Shm.Value.t array -> Shm.Value.t option) ->
  m:int ->
  pid:int ->
  api:Snapshot.Snap_api.t ->
  Shm.Value.t ->
  finish:(Shm.Value.t -> Shm.Program.t) ->
  unit ->
  Shm.Program.t

(** The full one-shot process program: await one invocation, run
    Propose, halt. *)
val program : m:int -> pid:int -> api:Snapshot.Snap_api.t -> Shm.Program.t

(** The program under the paper's literal adoption rule — livelocks on
    stale duplicated pairs; used by the erratum regression test. *)
val program_paper_literal :
  m:int -> pid:int -> api:Snapshot.Snap_api.t -> Shm.Program.t
