(* Predicates on scan views shared by the algorithms of Figures 3–5.

   A "view" is the vector returned by a snapshot scan.  The paper's
   decision and adoption rules are all phrased as counting arguments on
   such vectors; keeping them here, named after the pseudocode lines
   they implement, keeps the algorithm modules close to the paper. *)

open Shm

(* Number of distinct entries |{s[j] : 0 ≤ j < r}|. *)
let distinct_count view =
  let rec add seen v =
    match seen with
    | [] -> [ v ]
    | w :: _ when Value.equal w v -> seen
    | w :: rest -> w :: add rest v
  in
  List.length (Array.fold_left add [] view)

let contains_bot view = Array.exists Value.is_bot view

(* min{j1 : ∃ j2 > j1 such that s[j1] = s[j2]} — the index the paper
   uses to pick a duplicated entry deterministically (Fig. 3 line 10,
   Fig. 4 line 18). *)
let min_duplicate_index ?(eligible = fun _ -> true) view =
  let r = Array.length view in
  let rec outer j1 =
    if j1 >= r then None
    else if
      eligible view.(j1)
      &&
      let rec inner j2 =
        j2 < r && (Value.equal view.(j1) view.(j2) || inner (j2 + 1))
      in
      inner (j1 + 1)
    then Some j1
    else outer (j1 + 1)
  in
  outer 0

(* Number of components whose entry satisfies [p]. *)
let count p view = Array.fold_left (fun acc v -> if p v then acc + 1 else acc) 0 view

(* Entries satisfying [p], with multiplicity, by index order. *)
let filter p view = List.filter p (Array.to_list view)

(* The most frequent entry among those satisfying [p]; ties broken by
   first occurrence (Fig. 5 line 24's "most common frequent value",
   applied to the projection chosen by the caller). *)
let most_frequent ~project view =
  let keys = Array.to_list (Array.map project view) in
  let rec tally acc = function
    | [] -> acc
    | key :: rest ->
      let acc =
        let rec bump = function
          | [] -> [ (key, 1) ]
          | (k0, c) :: tl when Value.equal k0 key -> (k0, c + 1) :: tl
          | kv :: tl -> kv :: bump tl
        in
        bump acc
      in
      tally acc rest
  in
  match tally [] keys with
  | [] -> None
  | (k0, c0) :: rest ->
    let best, _ =
      List.fold_left
        (fun (bk, bc) (k1, c1) -> if c1 > bc then (k1, c1) else (bk, bc))
        (k0, c0) rest
    in
    Some best
