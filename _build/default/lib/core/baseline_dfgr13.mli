(** The DFGR'13 baseline: 1-obstruction-free k-set agreement with
    2(n−k) registers (Delporte-Gallet, Fauconnier, Gafni, Rajsbaum,
    NETYS 2013), reconstructed as the Figure 3 machinery run with m = 1
    over 2(n−k) components — the same algorithm family with the
    register budget the paper compares against in Section 4.1.

    The reconstruction is correct whenever 2(n−k) ≥ n−k+2, i.e.
    n−k ≥ 2; the corner n = k+1 (where DFGR'13 needs only 2 registers)
    is the gap the paper's conclusion leaves open. *)

(** 2(n−k). *)
val components : n:int -> k:int -> int

(** Whether the reconstruction applies (n−k ≥ 2). *)
val supported : n:int -> k:int -> bool

(** The process program; raises [Invalid_argument] outside the
    supported domain. *)
val program :
  n:int -> k:int -> pid:int -> api:Snapshot.Snap_api.t -> Shm.Program.t
