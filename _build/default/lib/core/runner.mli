(** High-level run helpers: one call from parameters to a finished
    execution, for tests, examples and the bench harness. *)

(** Default inputs: pid+1 in instance 1, 100·instance + pid later, so
    instances have disjoint input domains. *)
val default_input : pid:int -> instance:int -> Shm.Value.t

(** Run the one-shot algorithm (Figure 3).  Defaults: atomic snapshot,
    round-robin schedule, inputs pid+1, 200k step budget. *)
val run_oneshot :
  ?impl:Instances.impl ->
  ?r:int ->
  ?sched:Shm.Schedule.t ->
  ?max_steps:int ->
  ?inputs:Shm.Value.t array ->
  Params.t ->
  Shm.Exec.result

(** Run the repeated algorithm (Figure 4) for [rounds] instances. *)
val run_repeated :
  ?impl:Instances.impl ->
  ?r:int ->
  ?sched:Shm.Schedule.t ->
  ?max_steps:int ->
  ?rounds:int ->
  ?input_fn:(int -> int -> Shm.Value.t) ->
  Params.t ->
  Shm.Exec.result

(** Run the DFGR'13 baseline. *)
val run_baseline :
  ?impl:Instances.impl ->
  ?sched:Shm.Schedule.t ->
  ?max_steps:int ->
  ?inputs:Shm.Value.t array ->
  Params.t ->
  Shm.Exec.result

(** Run the anonymous repeated algorithm (Figure 5). *)
val run_anonymous :
  ?r:int ->
  ?anonymous_collect:bool ->
  ?seed:int ->
  ?sched:Shm.Schedule.t ->
  ?max_steps:int ->
  ?rounds:int ->
  ?input_fn:(int -> int -> Shm.Value.t) ->
  Params.t ->
  Shm.Exec.result

(** Outputs of one instance, with multiplicity, in completion order. *)
val outputs_of_instance : Shm.Exec.result -> instance:int -> Shm.Value.t list

(** Registers actually written during the run — the space measure. *)
val registers_used : Shm.Exec.result -> int
