(** Input workload generators: named proposal patterns for the bench
    harness and tests (identical inputs collapse instantly, two-camp
    inputs maximize preference flapping, distinct inputs exercise
    adoption chains). *)

type t =
  | Distinct                (** every process proposes its own value *)
  | Identical               (** everyone proposes the same value *)
  | Two_camps               (** half propose A, half propose B *)
  | Skewed                  (** ~80% popular value, rest distinct *)
  | Binary_random of int    (** seeded coin flip per process *)

val name : t -> string
val all : t list

(** Proposal vector for a one-shot task over [n] processes. *)
val inputs : t -> n:int -> Shm.Value.t array

(** Number of distinct values in the workload. *)
val distinct_inputs : t -> n:int -> int
