lib/core/anonymous.mli: Params Shm Snapshot
