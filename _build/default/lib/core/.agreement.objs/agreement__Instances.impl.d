lib/core/instances.ml: Anonymous Anonymous_oneshot Array Baseline_dfgr13 Oneshot Option Params Repeated Shm Snapshot
