lib/core/runner.ml: Array Config Exec Instances List Memory Option Params Schedule Shm Value
