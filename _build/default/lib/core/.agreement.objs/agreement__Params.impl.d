lib/core/params.ml: Float Fmt
