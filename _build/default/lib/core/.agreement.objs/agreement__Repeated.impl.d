lib/core/repeated.ml: Array Fmt List Program Shm Snapshot Value View
