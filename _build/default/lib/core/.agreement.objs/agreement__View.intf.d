lib/core/view.mli: Shm
