lib/core/anonymous_oneshot.mli: Params Shm Snapshot
