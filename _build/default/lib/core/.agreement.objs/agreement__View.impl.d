lib/core/view.ml: Array List Shm Value
