lib/core/anonymous.ml: Array Fmt List Params Program Shm Snapshot Value View
