lib/core/workload.ml: Array Fmt List Rng Shm Value
