lib/core/baseline_dfgr13.mli: Shm Snapshot
