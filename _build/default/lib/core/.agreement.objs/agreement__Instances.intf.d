lib/core/instances.mli: Params Shm Snapshot
