lib/core/oneshot.ml: Array Program Shm Snapshot Value View
