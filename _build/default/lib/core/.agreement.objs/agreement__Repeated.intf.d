lib/core/repeated.mli: Shm Snapshot
