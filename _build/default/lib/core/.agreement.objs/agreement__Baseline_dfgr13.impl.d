lib/core/baseline_dfgr13.ml: Fmt Oneshot
