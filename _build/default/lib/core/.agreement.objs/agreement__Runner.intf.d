lib/core/runner.mli: Instances Params Shm
