lib/core/anonymous_oneshot.ml: Array Fun Params Program Shm Snapshot Value View
