lib/core/oneshot.mli: Shm Snapshot
