lib/core/workload.mli: Shm
