(* Baseline: the 1-obstruction-free k-set agreement algorithm of
   Delporte-Gallet, Fauconnier, Gafni and Rajsbaum [4] ("Black art:
   obstruction-free k-set agreement with |MWMR registers| < |processes|",
   NETYS 2013), which uses 2(n − k) registers.

   The paper under reproduction states (Section 4.1) that Figure 3 "is
   an improvement on the algorithm of [4], which was designed for the
   special case where m = 1 and uses 2(n−k) registers, compared to the
   n−k+2 registers used by ours", i.e. the two algorithms belong to the
   same family — store-(pref,id)/scan/adopt-on-duplicate — and differ in
   the register budget.  We reconstruct the baseline accordingly: the
   Figure 3 machinery run with m = 1 over 2(n−k) components.  That is
   faithful in space (the quantity benchmarked in experiment E5) and in
   progress condition, and is correct whenever 2(n−k) ≥ n−k+2, i.e.
   n−k ≥ 2.  The corner case n = k+1 (where [4] needs only 2 registers
   and our reconstruction refuses to run) is exactly the case the
   paper's conclusion singles out as the remaining gap. *)

let components ~n ~k = 2 * (n - k)

let supported ~n ~k = n - k >= 2

let program ~n ~k ~pid ~api =
  if not (supported ~n ~k) then
    invalid_arg
      (Fmt.str
         "Baseline_dfgr13.program: reconstruction requires n-k >= 2 (n=%d k=%d); see \
          module comment"
         n k);
  Oneshot.program ~m:1 ~pid ~api
