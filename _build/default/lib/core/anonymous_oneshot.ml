(* One-shot anonymous m-obstruction-free k-set agreement.

   This is Figure 5 specialized to a single instance, as Section 6's
   closing remark describes: register H and the watcher thread are not
   required, instance numbers and histories disappear, so entries are
   bare preference values.  It uses a snapshot object with
   r = (m+1)(n−k) + m² components (Theorem 11 minus the one register).

   Rules per iteration (cf. Figure 5 lines 18–29):
   - decide when every component is non-⊥ and at most m distinct values
     are present: output the most frequent value;
   - adopt value [new] when fewer than ℓ = n+m−k components hold the
     current preference but at least ℓ hold [new];
   - the location i advances every iteration. *)

open Shm

let decide_check ~m view =
  if (not (View.contains_bot view)) && View.distinct_count view <= m then
    View.most_frequent view ~project:Fun.id
  else None

let count_value view v0 = View.count (Value.equal v0) view

let adoption ~ell ~pref view =
  if count_value view pref >= ell then None
  else
    let r = Array.length view in
    let rec go j =
      if j >= r then None
      else
        let v = view.(j) in
        if (not (Value.is_bot v)) && count_value view v >= ell then Some v
        else go (j + 1)
    in
    go 0

(* The process program — identical for every process (no id anywhere). *)
let program ~params ~api =
  let ell = Params.ell params in
  let m = params.Params.m in
  let r = api.Snapshot.Snap_api.components in
  Program.await @@ fun v ->
  let rec loop (api : Snapshot.Snap_api.t) pref i =
    api.update i pref @@ fun api ->
    api.scan @@ fun api view ->
    match decide_check ~m view with
    | Some w -> Program.yield w Program.stop
    | None ->
      let pref = match adoption ~ell ~pref view with Some w -> w | None -> pref in
      loop api pref ((i + 1) mod r)
  in
  loop api v 0
