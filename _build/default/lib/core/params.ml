(* Problem parameters (n, m, k) and the register counts from Figure 1.

   Throughout: n processes, m-obstruction-freedom, k-set agreement, with
   the paper's standing assumption 1 ≤ m ≤ k < n (Section 2.1: the
   problem is unsolvable for m > k and trivial for k ≥ n). *)

type t = { n : int; m : int; k : int }

let validate { n; m; k } =
  if n <= 1 then Error (Fmt.str "need n > 1, got n=%d" n)
  else if m < 1 then Error (Fmt.str "need m >= 1, got m=%d" m)
  else if m > k then Error (Fmt.str "need m <= k, got m=%d k=%d (unsolvable otherwise)" m k)
  else if k >= n then Error (Fmt.str "need k < n, got k=%d n=%d (trivial otherwise)" k n)
  else Ok ()

let make ~n ~m ~k =
  let t = { n; m; k } in
  match validate t with Ok () -> t | Error msg -> invalid_arg ("Params.make: " ^ msg)

(* Snapshot components used by the Figure 3 / Figure 4 algorithms. *)
let r_oneshot { n; m; k } = n + (2 * m) - k

(* ℓ = n + m − k: the paper ensures the *last* ℓ deciding processes
   output at most m values; also the Theorem 2 lower bound. *)
let ell { n; m; k } = n + m - k

(* Components used by the anonymous Figure 5 algorithm (plus 1 register
   for H in the repeated case). *)
let r_anonymous { n; m; k } = ((m + 1) * (n - k)) + (m * m)

(* Upper bound actually achievable with registers: Theorem 7/8. *)
let registers_upper t = min (r_oneshot t) t.n

(* Theorem 2 lower bound for repeated k-set agreement. *)
let registers_lower t = ell t

(* Theorem 10 anonymous one-shot lower bound: strictly more than
   sqrt(m(n/k − 2)) registers. *)
let anon_lower_bound { n; m; k } =
  (* the bound is vacuous (≤ 0) when n ≤ 2k *)
  sqrt (Float.max 0. (float_of_int m *. ((float_of_int n /. float_of_int k) -. 2.)))

(* DFGR'13 baseline register count (1-obstruction-free only). *)
let r_dfgr13 { n; k; _ } = 2 * (n - k)

let pp ppf { n; m; k } = Fmt.pf ppf "(n=%d,m=%d,k=%d)" n m k

let to_string t = Fmt.str "%a" pp t
