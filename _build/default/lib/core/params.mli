(** Problem parameters (n, m, k) and the register counts of Figure 1.

    Throughout: [n] processes, m-obstruction-freedom, k-set agreement,
    with the paper's standing assumption 1 ≤ m ≤ k < n (the problem is
    unsolvable for m > k and trivial for k ≥ n). *)

type t = { n : int; m : int; k : int }

(** [Ok ()] iff 1 ≤ m ≤ k < n and n > 1. *)
val validate : t -> (unit, string) result

(** Validating constructor; raises [Invalid_argument] on bad triples. *)
val make : n:int -> m:int -> k:int -> t

(** Snapshot components of the Figure 3/4 algorithms: n + 2m − k. *)
val r_oneshot : t -> int

(** ℓ = n + m − k: the paper's "last ℓ deciders output ≤ m values"
    threshold, and the Theorem 2 lower bound. *)
val ell : t -> int

(** Components of the anonymous Figure 5 algorithm, (m+1)(n−k) + m²
    (plus one register H in the repeated case). *)
val r_anonymous : t -> int

(** Theorem 7/8 upper bound: min(n+2m−k, n). *)
val registers_upper : t -> int

(** Theorem 2 lower bound for repeated k-set agreement: n+m−k. *)
val registers_lower : t -> int

(** Theorem 10 anonymous one-shot lower bound, √(m(n/k − 2)) (0 when
    vacuous, i.e. n ≤ 2k). *)
val anon_lower_bound : t -> float

(** DFGR'13 baseline register count 2(n−k) (m = 1 only). *)
val r_dfgr13 : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
