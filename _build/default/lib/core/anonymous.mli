(** Figure 5: anonymous m-obstruction-free repeated k-set agreement
    with r = (m+1)(n−k) + m² snapshot components plus one register H.

    No identifiers anywhere: entries are (pref, t, history), and every
    process runs the same program text.  Each Propose races two
    threads — the set-agreement loop and a watcher of H, where fast
    processes publish their histories — interleaved fairly at
    shared-memory-step granularity ([par]); the first to output wins
    the operation.  The watcher is what keeps starving processes live
    over the merely non-blocking anonymous snapshot. *)

type tuple = { pref : Shm.Value.t; t : int; history : Shm.Value.t list }

val encode : tuple -> Shm.Value.t
val decode : Shm.Value.t -> tuple option

(** Fair interleaving of two programs; the first [Yield] wins. *)
val par : Shm.Program.t -> Shm.Program.t -> Shm.Program.t

(** Line 23: [Some w] iff the view decides instance [t] with the most
    frequent value [w]. *)
val decide_check : m:int -> t:int -> Shm.Value.t array -> Shm.Value.t option

(** Lines 27–28: the first value with ≥ ℓ copies when the current
    preference has fewer than ℓ. *)
val adoption :
  ell:int -> t:int -> pref:Shm.Value.t -> Shm.Value.t array -> Shm.Value.t option

(** The process program.  [h_reg] is the index of register H.  The same
    program text serves every process; the only per-process distinction
    is the freshness seed hidden inside an anonymous snapshot [api],
    which the algorithm itself never observes. *)
val program :
  params:Params.t -> api:Snapshot.Snap_api.t -> h_reg:int -> Shm.Program.t
