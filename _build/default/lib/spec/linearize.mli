(** A Wing–Gong-style linearizability checker for snapshot histories.

    A history is a set of completed update/scan operations with
    real-time intervals from the simulator's global step counter.  The
    checker searches for a total order that respects real time and is a
    legal sequential snapshot history (each scan returns exactly the
    latest value of every component, ⊥ if none). *)

type op =
  | Update of { i : int; v : Shm.Value.t }
  | Scan of { view : Shm.Value.t array }

type event = {
  pid : int;
  op : op;
  start : int;   (** global step index of the operation's first step *)
  finish : int;  (** global step index of its last step *)
}

val pp_event : Format.formatter -> event -> unit

(** [check ~components events] is true iff the history is linearizable
    as an atomic snapshot object.  Memoized DFS; intended for histories
    of tens of operations. *)
val check : components:int -> event list -> bool

(** {1 Harness support}

    Tester processes announce each completed operation with an [Output]
    event carrying one of these encodings; {!history_of_trace} then
    reconstructs operations and intervals from a recorded trace. *)

val encode_update : i:int -> v:Shm.Value.t -> Shm.Value.t
val encode_scan : Shm.Value.t array -> Shm.Value.t
val decode_marker : Shm.Value.t -> op option
val history_of_trace : Shm.Event.t list -> event list
