lib/spec/stress.ml: Config Exec Fmt Fun List Properties Schedule Shm
