lib/spec/linearize.mli: Format Shm
