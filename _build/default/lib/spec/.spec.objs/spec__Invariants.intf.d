lib/spec/invariants.mli: Format Shm
