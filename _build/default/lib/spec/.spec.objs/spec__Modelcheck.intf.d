lib/spec/modelcheck.mli: Format Shm
