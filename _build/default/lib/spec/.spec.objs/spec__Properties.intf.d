lib/spec/properties.mli: Shm
