lib/spec/invariants.ml: Array Event Fmt Hashtbl List Shm Value
