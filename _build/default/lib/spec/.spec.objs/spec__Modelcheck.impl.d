lib/spec/modelcheck.ml: Config Exec Fmt Fun List Option Program Schedule Shm
