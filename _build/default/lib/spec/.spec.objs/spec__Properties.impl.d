lib/spec/properties.ml: Config Fmt Fun List Shm String Value
