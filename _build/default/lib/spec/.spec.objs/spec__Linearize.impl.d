lib/spec/linearize.ml: Array Event Fmt Hashtbl List Shm Value
