lib/spec/stress.mli: Format Shm
