(** Bounded exhaustive model checking.

    Configurations are pure values and processes deterministic, so the
    only nondeterminism is the schedule; exploring all schedules up to
    a depth bound covers every reachable configuration prefix.  Each
    frontier configuration is driven to quiescence deterministically
    and the property evaluated there — a proof (up to the bound) rather
    than a sample, with minimal counterexample schedules. *)

type stats = { explored : int; leaves : int; max_depth : int }

type outcome =
  | Ok_bounded of stats
  | Counterexample of {
      schedule : int list;  (** pids, in step order, up to the frontier *)
      error : string;
      config : Shm.Config.t;
      stats : stats;
    }

val pp_outcome : Format.formatter -> outcome -> unit

(** Drive a configuration to quiescence deterministically. *)
val complete :
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  max_steps:int ->
  Shm.Config.t ->
  Shm.Config.t

(** [exhaustive ~depth ~inputs ~check config] explores every schedule
    of length ≤ depth, completes each frontier (budget
    [completion_steps], default 50k), and applies [check]; stops at the
    first violation. *)
val exhaustive :
  depth:int ->
  inputs:(pid:int -> instance:int -> Shm.Value.t option) ->
  ?completion_steps:int ->
  check:(Shm.Config.t -> (unit, string) result) ->
  Shm.Config.t ->
  outcome
