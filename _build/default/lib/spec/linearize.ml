(* A Wing–Gong-style linearizability checker for snapshot histories.

   A history is a set of completed operations — updates and scans — with
   real-time intervals taken from the simulator's global step counter.
   The checker searches for a total order that (a) respects real time
   (if o1 finishes before o2 starts, o1 precedes o2) and (b) is a legal
   sequential snapshot history (each scan returns exactly the latest
   value written to every component, ⊥ if none).

   Histories produced by the test harnesses are small (tens of
   operations), so a memoized depth-first search is ample. *)

open Shm

type op =
  | Update of { i : int; v : Value.t }
  | Scan of { view : Value.t array }

type event = {
  pid : int;
  op : op;
  start : int;   (* global step index of the operation's first step *)
  finish : int;  (* global step index of its last step *)
}

let pp_event ppf e =
  match e.op with
  | Update { i; v } ->
    Fmt.pf ppf "p%d: update(%d,%a) @[%d,%d]" e.pid i Value.pp v e.start e.finish
  | Scan { view } ->
    Fmt.pf ppf "p%d: scan->[%a] @[%d,%d]" e.pid
      Fmt.(array ~sep:(any ";") Value.pp)
      view e.start e.finish

(* [check ~components events] returns true iff the history is
   linearizable as an atomic snapshot object. *)
let check ~components events =
  let events = Array.of_list events in
  let n = Array.length events in
  (* The memo key must pair the linearized set with the component state:
     two different orders of same-component updates cover the same set
     but leave different states, and only one of them may admit a
     completion. *)
  let module Key = struct
    type t = bool array * Value.t array

    let equal = ( = )
    let hash (k : t) = Hashtbl.hash k
  end in
  let module Memo = Hashtbl.Make (Key) in
  let failed = Memo.create 97 in
  (* state: current component values; done_: linearized set *)
  let rec search done_ state remaining =
    if remaining = 0 then true
    else if Memo.mem failed (done_, state) then false
    else begin
      (* earliest finish among not-yet-linearized ops *)
      let min_finish = ref max_int in
      for j = 0 to n - 1 do
        if (not done_.(j)) && events.(j).finish < !min_finish then
          min_finish := events.(j).finish
      done;
      let ok = ref false in
      let j = ref 0 in
      while (not !ok) && !j < n do
        let idx = !j in
        incr j;
        if (not done_.(idx)) && events.(idx).start <= !min_finish then begin
          (* events.(idx) may be linearized next *)
          match events.(idx).op with
          | Update { i; v } ->
            let prev = state.(i) in
            state.(i) <- v;
            done_.(idx) <- true;
            if search done_ state (remaining - 1) then ok := true
            else begin
              done_.(idx) <- false;
              state.(i) <- prev
            end
          | Scan { view } ->
            let matches =
              Array.length view = components
              &&
              let rec go i =
                i >= components || (Value.equal view.(i) state.(i) && go (i + 1))
              in
              go 0
            in
            if matches then begin
              done_.(idx) <- true;
              if search done_ state (remaining - 1) then ok := true
              else done_.(idx) <- false
            end
        end
      done;
      if not !ok then Memo.add failed (Array.copy done_, Array.copy state) ();
      !ok
    end
  in
  search (Array.make n false) (Array.make components Value.Bot) n

(* Harness support: extract a snapshot history from a recorded trace of
   tester processes.  Testers announce each completed operation with an
   [Output] event whose value encodes the operation (see
   [encode_update]/[encode_scan]); the operation's interval is the span
   of the process's shared-memory steps since its previous marker. *)

let encode_update ~i ~v = Value.List [ Value.Str "U"; Value.Int i; v ]

let encode_scan view = Value.List [ Value.Str "S"; Value.List (Array.to_list view) ]

let decode_marker = function
  | Value.List [ Value.Str "U"; Value.Int i; v ] -> Some (Update { i; v })
  | Value.List [ Value.Str "S"; Value.List view ] ->
    Some (Scan { view = Array.of_list view })
  | _ -> None

let history_of_trace trace =
  (* per-process: first/last memory-step indices since last marker *)
  let spans = Hashtbl.create 7 in
  let events = ref [] in
  List.iteri
    (fun time ev ->
      let pid = Event.pid ev in
      match ev with
      | Event.Did_read _ | Event.Did_write _ | Event.Did_scan _ ->
        let first, _ = try Hashtbl.find spans pid with Not_found -> (time, time) in
        Hashtbl.replace spans pid (first, time)
      | Event.Output { value; _ } -> (
        match decode_marker value with
        | Some op ->
          let start, finish =
            try Hashtbl.find spans pid with Not_found -> (time, time)
          in
          Hashtbl.remove spans pid;
          events := { pid; op; start; finish } :: !events
        | None -> ())
      | Event.Invoke _ -> ())
    trace;
  List.rev !events
