(** Runtime checks of the paper's key data-structure invariants, over
    recorded traces: Lemma 3 (one-shot: all pairs in A with the same id
    carry the same value) and Lemma 12 (repeated: all t-tuples in A
    with the same id are identical), evaluated after every write. *)

type violation = { at_step : int; register : int; message : string }

val pp_violation : Format.formatter -> violation -> unit

(** Replay a trace over [registers] registers, calling [check] on the
    register state after every write. *)
val replay :
  registers:int ->
  check:(Shm.Value.t array -> string option) ->
  Shm.Event.t list ->
  violation list

(** Lemma 3 on a register state (one-shot (value, id) pairs). *)
val lemma3_pairs : Shm.Value.t array -> string option

(** Lemma 12 on a register state (repeated 4-tuples). *)
val lemma12_tuples : Shm.Value.t array -> string option

val check_lemma3 : registers:int -> Shm.Event.t list -> violation list
val check_lemma12 : registers:int -> Shm.Event.t list -> violation list
