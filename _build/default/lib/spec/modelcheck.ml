(* Bounded exhaustive model checking of the simulated system.

   Because configurations are pure values and processes are
   deterministic, the only nondeterminism is the schedule; exploring all
   schedules up to a depth bound therefore covers *every* reachable
   configuration prefix.  After the bound, each frontier configuration
   is optionally driven to quiescence with a deterministic completion
   schedule, and the property is evaluated there — so the check covers
   "all executions that diverge in their first [depth] steps".

   This complements the randomized tests: for small n it is a proof (up
   to the depth bound) rather than a sample, and it finds minimal
   counterexample schedules, reported as the list of pids stepped. *)

open Shm

type stats = {
  explored : int;        (* interior nodes visited *)
  leaves : int;          (* frontier configurations checked *)
  max_depth : int;
}

type outcome =
  | Ok_bounded of stats
  | Counterexample of {
      schedule : int list;  (* pids, in step order, up to the frontier *)
      error : string;
      config : Config.t;
      stats : stats;
    }

let pp_outcome ppf = function
  | Ok_bounded { explored; leaves; _ } ->
    Fmt.pf ppf "no violation (%d nodes, %d completions checked)" explored leaves
  | Counterexample { schedule; error; _ } ->
    Fmt.pf ppf "counterexample schedule [%a]: %s"
      Fmt.(list ~sep:comma int)
      schedule error

(* Drive [config] to quiescence deterministically (solo bursts). *)
let complete ~inputs ~max_steps config =
  let n = Config.n config in
  let sched = Schedule.quantum_round_robin ~quantum:2000 n in
  (Exec.run ~sched ~inputs ~max_steps config).Exec.config

(* [exhaustive ~depth ~inputs ~check config] explores every schedule of
   length ≤ depth, completes each frontier, and applies [check].  Stops
   at the first violation. *)
let exhaustive ~depth ~inputs ?(completion_steps = 50_000) ~check config =
  let has_input pid inst = Option.is_some (inputs ~pid ~instance:inst) in
  let explored = ref 0 and leaves = ref 0 and deepest = ref 0 in
  let exception Found of int list * string * Config.t in
  let check_leaf schedule config =
    incr leaves;
    let final = complete ~inputs ~max_steps:completion_steps config in
    match check final with
    | Ok () -> ()
    | Error e -> raise (Found (List.rev schedule, e, final))
  in
  let rec go config d schedule =
    incr explored;
    if d > !deepest then deepest := d;
    let n = Config.n config in
    let runnable =
      List.filter (fun pid -> Config.runnable config ~has_input pid) (List.init n Fun.id)
    in
    match runnable with
    | [] -> check_leaf schedule config
    | _ when d >= depth -> check_leaf schedule config
    | _ ->
      runnable
      |> List.iter (fun pid ->
             let config' =
               match Config.proc config pid with
               | Program.Await _ ->
                 let inst = Config.instance config pid + 1 in
                 fst (Config.invoke config pid (Option.get (inputs ~pid ~instance:inst)))
               | Program.Stop -> config
               | Program.Op _ | Program.Yield _ -> fst (Config.step config pid)
             in
             go config' (d + 1) (pid :: schedule))
  in
  try
    go config 0 [];
    Ok_bounded { explored = !explored; leaves = !leaves; max_depth = !deepest }
  with Found (schedule, error, config) ->
    Counterexample
      {
        schedule;
        error;
        config;
        stats = { explored = !explored; leaves = !leaves; max_depth = !deepest };
      }
