lib/bounds/complexity.mli:
