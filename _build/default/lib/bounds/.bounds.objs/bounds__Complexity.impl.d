lib/bounds/complexity.ml:
