lib/bounds/formulas.ml: Agreement
