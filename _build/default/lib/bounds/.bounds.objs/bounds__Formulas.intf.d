lib/bounds/formulas.mli: Agreement
