(* Step-complexity facts about the Figure 3 family, stated as closed
   forms and verified exactly by the test suite.

   The paper proves space bounds; step complexity is not its focus, but
   the solo (uncontended) costs fall out of the algorithm's structure
   and make good executable documentation:

   - A solo process on a fresh one-shot system performs exactly
     r iterations (update + scan) before its deciding scan: it writes
     each of the r components once, and the r-th scan is the first with
     no ⊥.  With the invocation and the response step that is
     2r + 2 simulator steps.

   - From an arbitrary reachable state, a process that runs alone
     decides within at most (r + 2) iterations: at most one adoption
     (after which its preference equals a duplicated value and the
     erratum rule advances i forever) plus a full cycle overwriting
     every component, plus the deciding iteration.  Hence at most
     2(r + 2) + 2 steps including invocation and response.  This is the
     quantitative content of m-obstruction-freedom for m = 1. *)

(* Exact solo cost of a fresh one-shot Propose (simulator steps,
   including the Invoke and the Output steps). *)
let solo_oneshot_steps ~r = (2 * r) + 2

(* Upper bound on the solo cost of finishing a Propose from any
   reachable configuration. *)
let solo_completion_bound ~r = (2 * (r + 2)) + 2

(* The baseline uses the same loop over 2(n−k) components. *)
let solo_baseline_steps ~n ~k = solo_oneshot_steps ~r:(2 * (n - k))

(* Quantum needed by [Schedule.quantum_round_robin] so that every burst
   completes at least one operation — what the tests and examples use
   to turn obstruction-freedom into guaranteed termination. *)
let sufficient_quantum ~r = solo_completion_bound ~r + 2
