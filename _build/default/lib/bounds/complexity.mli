(** Step-complexity facts about the Figure 3 family, stated as closed
    forms and verified exactly by the test suite (see the
    implementation comment for the derivations). *)

(** Exact solo cost of a fresh one-shot Propose: 2r + 2 simulator steps
    including the Invoke and Output steps. *)
val solo_oneshot_steps : r:int -> int

(** Upper bound on finishing a Propose solo from any reachable
    configuration: 2(r+2) + 2 steps — the quantitative content of
    obstruction-freedom. *)
val solo_completion_bound : r:int -> int

(** The DFGR'13 baseline's solo cost (same loop, 2(n−k) components). *)
val solo_baseline_steps : n:int -> k:int -> int

(** A round-robin quantum large enough that every burst completes at
    least one operation. *)
val sufficient_quantum : r:int -> int
