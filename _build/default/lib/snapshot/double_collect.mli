(** Non-blocking multi-writer snapshot by double collect.

    Each component register holds a (unique tag, value) pair; a scan
    repeatedly collects all components until two consecutive collects
    are identical, and then linearizes between them.  Updates are
    single writes.  Scans are only non-blocking — a concurrent writer
    can starve a scanner, which is exactly the behaviour Figure 5's
    register H exists to mask. *)

(** [make ~off ~len ~pid ()] tags writes with (pid, local sequence
    number).  [max_retries] makes a scan fail loudly after that many
    unequal double collects (surfacing livelock in tests); default is
    to retry forever. *)
val make : off:int -> len:int -> pid:int -> ?max_retries:int -> unit -> Snap_api.t

(** [make_anonymous ~off ~len ~seed ()] draws tags from a per-process
    deterministic PRNG stream plus a local sequence number: identical
    program text for every process, fresh tags with overwhelming
    probability — the practical realization of Guerraoui–Ruppert [7]
    anonymous snapshots (DESIGN.md, substitution 5). *)
val make_anonymous :
  off:int -> len:int -> seed:int -> ?max_retries:int -> unit -> Snap_api.t

val footprint : len:int -> Snap_api.footprint
