(** Abstract snapshot-object interface, in continuation-passing style.

    Every set-agreement algorithm in this repository is written against
    this interface and can therefore run over any implementation:
    {!Atomic} (the paper's cost model), {!Double_collect} (honest
    register-level, non-blocking), or {!Mw_from_sw} (wait-free from n
    single-writer registers — the [min(·, n)] branch of Theorem 7).

    The API value is threaded through continuations so implementations
    can carry purely functional local state — sequence numbers, cached
    rows — without mutation; programs stay clonable values, which the
    lower-bound machinery requires. *)

type t = {
  components : int;
      (** number of snapshot components, indexed [0 .. components-1] *)
  update : int -> Shm.Value.t -> (t -> Shm.Program.t) -> Shm.Program.t;
      (** [update i v k]: write [v] to component [i], continue with [k]
          applied to the (possibly state-advanced) API. *)
  scan : (t -> Shm.Value.t array -> Shm.Program.t) -> Shm.Program.t;
      (** [scan k]: pass an atomic view of all components to [k]. *)
}

(** How many raw registers an implementation consumes, for the
    space-accounting experiments. *)
type footprint = { registers : int; wait_free : bool; description : string }
