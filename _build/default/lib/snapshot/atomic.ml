(* Atomic snapshot: each component is one register, scans are one atomic
   simulator step.  This is the object the paper's algorithms are
   specified against; its register footprint is exactly the component
   count, which is what Figure 1's upper bounds report. *)

let rec make ~off ~len : Snap_api.t =
  let update i v k =
    if i < 0 || i >= len then invalid_arg "Atomic.update: component out of range";
    Shm.Program.write (off + i) v (fun () -> k (make ~off ~len))
  in
  let scan k = Shm.Program.scan ~off ~len (fun view -> k (make ~off ~len) view) in
  { Snap_api.components = len; update; scan }

let footprint ~len =
  {
    Snap_api.registers = len;
    wait_free = true;
    description = "atomic snapshot (components = registers, scan atomic)";
  }
