(** Wait-free r-component multi-writer snapshot from n single-writer
    registers — the [min(n+2m−k, n)] branch of Theorems 7 and 8.

    Each process's single-writer segment holds its row of timestamped
    last-writes to every component (Vitányi–Awerbuch-style timestamps)
    under an {!Afek} single-writer snapshot; component values are the
    maximum-(ts, pid) entries across rows.  Linearizable and wait-free;
    register footprint exactly [n]. *)

(** [make ~off ~n ~components ~pid] is process [pid]'s handle on the
    shared object living in registers [off .. off+n-1]. *)
val make : off:int -> n:int -> components:int -> pid:int -> Snap_api.t

val footprint : n:int -> Snap_api.footprint
