(** Atomic snapshot: each component is one register, scans are a single
    atomic simulator step.  This is the object the paper's algorithms
    are specified against; its register footprint is exactly the
    component count, which is what Figure 1's upper bounds report. *)

(** [make ~off ~len] is a [len]-component snapshot over registers
    [off .. off+len-1]. *)
val make : off:int -> len:int -> Snap_api.t

val footprint : len:int -> Snap_api.footprint
